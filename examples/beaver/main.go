// Beaver: generate Delphi-style matrix multiplication triples for a small
// neural network's linear layers (the paper's §V-B.4 workload), then use
// one in the cleartext online phase.
package main

import (
	"fmt"
	"log"

	"cham"
	"cham/internal/apps/beaver"
)

func main() {
	params := cham.MustParams(1024)
	rng := cham.NewRNG(99)
	sk := params.KeyGen(rng)

	gen, err := beaver.NewGenerator(params, rng, sk, 256)
	if err != nil {
		log.Fatal(err)
	}

	// Three linear layers of a toy network.
	dims := []struct{ m, n int }{{64, 256}, {32, 64}, {10, 32}}
	layers := make([][][]uint64, len(dims))
	for l, d := range dims {
		layers[l] = make([][]uint64, d.m)
		for i := range layers[l] {
			layers[l][i] = make([]uint64, d.n)
			for j := range layers[l][i] {
				layers[l][i][j] = uint64(rng.Intn(int(params.T.Q)))
			}
		}
	}

	clients, servers, err := gen.GenerateBatch(rng, sk, layers)
	if err != nil {
		log.Fatal(err)
	}
	for l := range layers {
		if err := beaver.Verify(params, layers[l], clients[l], servers[l]); err != nil {
			log.Fatalf("layer %d: %v", l, err)
		}
		fmt.Printf("layer %d (%dx%d): triple verified (c + s = W·r mod t)\n",
			l, dims[l].m, dims[l].n)
	}

	// Online phase on layer 0: shares of W·x from cleartext arithmetic.
	x := make([]uint64, dims[0].n)
	for i := range x {
		x[i] = uint64(rng.Intn(int(params.T.Q)))
	}
	cOut, sOut, err := beaver.OnlineLinear(params, layers[0], x, clients[0], servers[0])
	if err != nil {
		log.Fatal(err)
	}
	want := cham.PlainMatVec(params, layers[0], x)
	ok := true
	for i := range want {
		if params.T.Add(cOut[i], sOut[i]) != want[i] {
			ok = false
		}
	}
	fmt.Printf("online phase: shares of W·x reconstruct correctly: %v\n", ok)
	fmt.Printf("(preprocessing used %d homomorphic HMVPs; the online phase used none)\n", len(layers))
}
