// Quickstart: encrypt a vector, run a homomorphic matrix-vector product
// through the full CHAM pipeline (dot products, LWE extraction, packing),
// decrypt, and check against the cleartext result.
package main

import (
	"fmt"
	"log"

	"cham"
)

func main() {
	// The paper's parameter family at a laptop-friendly degree. Use 4096
	// for the production parameter set.
	params := cham.MustParams(1024)
	rng := cham.NewRNG(42)
	sk := params.KeyGen(rng)

	const m, n = 8, 1024
	matrix := make([][]uint64, m)
	for i := range matrix {
		matrix[i] = make([]uint64, n)
		for j := range matrix[i] {
			matrix[i][j] = uint64(rng.Intn(1000))
		}
	}
	vector := make([]uint64, n)
	for j := range vector {
		vector[j] = uint64(rng.Intn(1000))
	}

	// Party A encrypts her vector and ships it to party B, who owns the
	// matrix (the paper's two-party model, §II-F).
	ev, err := cham.NewEvaluator(params, rng, sk, m)
	if err != nil {
		log.Fatal(err)
	}
	ctV := cham.EncryptVector(params, rng, sk, vector)
	fmt.Printf("encrypted %d-element vector into %d ciphertext(s)\n", n, len(ctV))

	res, err := ev.MatVec(matrix, ctV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HMVP done: %d dot products packed into %d result ciphertext(s)\n",
		m, len(res.Packed))

	got := cham.DecryptResult(params, res, sk)
	want := cham.PlainMatVec(params, matrix, vector)
	for i := range want {
		status := "ok"
		if got[i] != want[i] {
			status = "MISMATCH"
		}
		fmt.Printf("  row %d: homomorphic=%6d  cleartext=%6d  %s\n", i, got[i], want[i], status)
	}
}
