// Serve: the networked HMVP quickstart. Starts a chamserve instance on a
// loopback listener, then acts as a tenant: generate keys client-side,
// install the packing keys, register a matrix by content hash, stream
// encrypted vectors at it, and decrypt the packed results. The secret key
// never leaves the client — the server sees only switching keys,
// ciphertexts, and the cleartext matrix it was asked to serve.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"cham"
	"cham/internal/client"
	"cham/internal/lwe"
	"cham/internal/server"
)

func main() {
	params := cham.MustParams(256)

	// --- server side: normally `chamserve -addr :7316` in its own process.
	srv, err := server.New(server.Config{Params: params, MaxBatch: 8})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)

	// --- client side: keys stay here, only switching keys are shipped.
	rng := cham.NewRNG(7)
	sk := params.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(params, rng, sk, params.R.N)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: params})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	hash, err := cl.SetupKeys(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed packing keys %x...\n", hash[:8])

	// Register a 16x256 matrix; the returned handle is its content hash.
	A := make([][]uint64, 16)
	for i := range A {
		A[i] = make([]uint64, 256)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % params.T.Q
		}
	}
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %dx%d matrix as %x... (%d chunk, %d tile)\n",
		handle.Rows, handle.Cols, handle.ID[:8], handle.Chunks, handle.Tiles)

	// Stream encrypted vectors and decrypt the packed results.
	for round := 0; round < 3; round++ {
		v := make([]uint64, 256)
		for j := range v {
			v[j] = rng.Uint64() % params.T.Q
		}
		res, err := cl.Apply(handle.ID, cham.EncryptVector(params, rng, sk, v))
		if err != nil {
			log.Fatal(err)
		}
		got := cham.DecryptResult(params,
			&cham.Result{M: int(res.M), N: int(res.N), Packed: res.Packed}, sk)
		want := cham.PlainMatVec(params, A, v)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("round %d row %d: got %d want %d", round, i, got[i], want[i])
			}
		}
		fmt.Printf("round %d: A·v over the wire matches the cleartext product (%d rows)\n",
			round, len(got))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
