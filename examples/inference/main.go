// Inference: Delphi-style private neural-network inference. The offline
// phase generates one Beaver triple per linear layer with a CHAM HMVP;
// the online phase evaluates the network on secret shares with no
// homomorphic operations at all — the split that makes the paper's
// triple-generation speed-up matter.
package main

import (
	"flag"
	"fmt"
	"log"

	"cham"
	"cham/internal/apps/beaver"
	"cham/internal/apps/inference"
)

func main() {
	workers := flag.Int("workers", 0, "HMVP worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()
	params := cham.MustParams(64)
	rng := cham.NewRNG(11)
	sk := params.KeyGen(rng)
	gen, err := beaver.NewGenerator(params, rng, sk, 64)
	if err != nil {
		log.Fatal(err)
	}
	gen.Ev.Workers = *workers

	// A 8-16-4 MLP with random weights (stand-in for a trained model).
	dims := []int{8, 16, 4}
	var weights [][][]float64
	var biases [][]float64
	for l := 1; l < len(dims); l++ {
		w := make([][]float64, dims[l])
		for i := range w {
			w[i] = make([]float64, dims[l-1])
			for j := range w[i] {
				w[i][j] = rng.Float64()*2 - 1
			}
		}
		weights = append(weights, w)
		biases = append(biases, make([]float64, dims[l]))
	}
	nw, err := inference.NewNetwork(params, 4, weights, biases)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("offline phase: one CHAM HMVP per linear layer...")
	pre, err := nw.Preprocess(gen, rng, sk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d layers preprocessed\n", len(pre.Client))

	fmt.Println("online phase: share arithmetic only (no HE):")
	for trial := 0; trial < 3; trial++ {
		x := make([]float64, dims[0])
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		private, err := nw.Infer(pre, x)
		if err != nil {
			log.Fatal(err)
		}
		ref := nw.InferFloat(x)
		fmt.Printf("  input %d: private argmax=%d, float argmax=%d (logits %.3f vs %.3f)\n",
			trial, argmax(private), argmax(ref), private[argmax(private)], ref[argmax(ref)])
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
