// Inference: multi-layer private inference on the chamnp array tier. A
// batch of inputs is encrypted column-major and pushed through a
// CryptoNets-style two-layer network entirely as array ops:
//
//	h   = square(W1·X + b1)      (square is the interactive recrypt hop)
//	out = W2·h + b2
//
// Each linear layer is one chamnp.MatMul — the prepared weight matrix
// drives every column of the batch through the batched HMVP surface —
// and the bias add lands directly on the packed outputs at their
// strided slots. The non-linear layer is the Delphi-style client hop:
// decrypt, square mod t, re-encrypt (B/FV without relinearization has
// no ciphertext×ciphertext product, and the client holds the key
// anyway). The whole pipeline is verified bit-exact against the same
// composition over the big.Int reference matmul, then re-run with the
// linear layers routed through a loopback chamserve instance.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"cham"
	"cham/internal/chamnp"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/ref"
	"cham/internal/server"
)

func main() {
	n := flag.Int("n", 256, "ring degree (power of two)")
	batch := flag.Int("batch", 3, "inputs inferred at once (encrypted column blocks)")
	hidden := flag.Int("hidden", 16, "hidden layer width")
	classes := flag.Int("classes", 10, "output classes")
	workers := flag.Int("workers", 0, "HMVP worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	params := cham.MustParams(*n)
	rng := cham.NewRNG(31)
	sk := params.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(params, rng, sk, params.R.N)
	if err != nil {
		log.Fatal(err)
	}
	T := params.T

	randMat := func(m, n int) [][]uint64 {
		out := make([][]uint64, m)
		for i := range out {
			out[i] = make([]uint64, n)
			for j := range out[i] {
				out[i][j] = rng.Uint64() % T.Q
			}
		}
		return out
	}
	randVec := func(n int) []uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = rng.Uint64() % T.Q
		}
		return v
	}

	// Random stand-in weights for a d0 → hidden → classes network.
	d0 := *n
	W1, b1 := randMat(*hidden, d0), randVec(*hidden)
	W2, b2 := randMat(*classes, *hidden), randVec(*classes)
	X := randMat(d0, *batch)

	// Cleartext reference: the identical composition over ref.MatMul.
	want, err := ref.MatMul(T.Q, W1, X)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			a := T.Add(want[i][j], b1[i])
			want[i][j] = T.Mul(a, a)
		}
	}
	if want, err = ref.MatMul(T.Q, W2, want); err != nil {
		log.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			want[i][j] = T.Add(want[i][j], b2[i])
		}
	}

	// run pushes the encrypted batch through the network on the given
	// backends, printing per-layer latency.
	run := func(tag string, l1, l2 chamnp.Backend) {
		x, err := chamnp.Array(params, rng, sk, X, chamnp.ColMajor)
		if err != nil {
			log.Fatal(err)
		}
		step := func(name string, f func() (*chamnp.EncMatrix, error)) *chamnp.EncMatrix {
			t0 := time.Now()
			out, err := f()
			if err != nil {
				log.Fatalf("%s %s: %v", tag, name, err)
			}
			fmt.Printf("  %-7s %-12s %8v  noise %5.1f bits\n",
				tag, name, time.Since(t0).Round(time.Microsecond), out.NoiseBits())
			return out
		}
		h := step("matmul1", func() (*chamnp.EncMatrix, error) { return chamnp.MatMul(l1, x) })
		h = step("bias1", func() (*chamnp.EncMatrix, error) { return h.AddVector(b1) })
		h = step("square", func() (*chamnp.EncMatrix, error) { return h.SquareRecrypt(rng, sk) })
		h = step("matmul2", func() (*chamnp.EncMatrix, error) { return chamnp.MatMul(l2, h) })
		h = step("bias2", func() (*chamnp.EncMatrix, error) { return h.AddVector(b2) })
		got := h.Decrypt(sk)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					log.Fatalf("%s: [%d][%d] = %d, want %d", tag, i, j, got[i][j], want[i][j])
				}
			}
		}
		fmt.Printf("  %s: %d-input batch matches the big.Int reference composition\n", tag, *batch)
	}

	// --- leg 1: in-process evaluator.
	ev, err := core.NewEvaluatorFromKeys(params, keys)
	if err != nil {
		log.Fatal(err)
	}
	ev.Workers = *workers
	pm1, err := ev.Prepare(W1)
	if err != nil {
		log.Fatal(err)
	}
	pm2, err := ev.Prepare(W2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %d → %d → %d, batch %d, N=%d\n", d0, *hidden, *classes, *batch, *n)
	run("local", chamnp.Local(pm1), chamnp.Local(pm2))

	// --- leg 2: both linear layers served by a loopback chamserve.
	srv, err := server.New(server.Config{Params: params})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: params})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SetupKeys(keys); err != nil {
		log.Fatal(err)
	}
	h1, err := cl.RegisterMatrix(W1)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := cl.RegisterMatrix(W2)
	if err != nil {
		log.Fatal(err)
	}
	run("remote", chamnp.Remote(cl, h1, params), chamnp.Remote(cl, h2, params))
}
