// Matmul: the FAME-style encrypted matrix-matrix quickstart on the
// chamnp array tier. One cleartext weight matrix W is prepared once and
// then drives every column block of an encrypted X through the batched
// HMVP surface — and, because an HMVP computes W·v, the SAME prepared W
// also serves the row-major product X·Wᵀ without being transposed.
//
// The product runs twice: against the in-process evaluator and against
// a loopback chamserve instance through the wire client. Both paths run
// on the same packing keys, so their packed ciphertexts are
// bit-identical, and both must decrypt to the exact big.Int reference
// product.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"cham"
	"cham/internal/chamnp"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/ref"
	"cham/internal/server"
)

func randMat(rng interface{ Uint64() uint64 }, m, n int, bound uint64) [][]uint64 {
	out := make([][]uint64, m)
	for i := range out {
		out[i] = make([]uint64, n)
		for j := range out[i] {
			out[i][j] = rng.Uint64() % bound
		}
	}
	return out
}

func main() {
	n := flag.Int("n", 256, "ring degree (power of two)")
	batch := flag.Int("batch", 4, "columns of X (encrypted column blocks)")
	workers := flag.Int("workers", 0, "HMVP worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	params := cham.MustParams(*n)
	rng := cham.NewRNG(23)
	sk := params.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(params, rng, sk, params.R.N)
	if err != nil {
		log.Fatal(err)
	}

	// W is rows×n (one chunk per lane, multi-tile when rows > N would be
	// just as valid); X is n×batch, encrypted column-major.
	rows := *n / 4
	if rows < 1 {
		rows = 1
	}
	W := randMat(rng, rows, *n, params.T.Q)
	X := randMat(rng, *n, *batch, params.T.Q)
	want, err := ref.MatMul(params.T.Q, W, X)
	if err != nil {
		log.Fatal(err)
	}

	xm, err := chamnp.Array(params, rng, sk, X, chamnp.ColMajor)
	if err != nil {
		log.Fatal(err)
	}

	// --- leg 1: in-process evaluator on the shared packing keys.
	ev, err := core.NewEvaluatorFromKeys(params, keys)
	if err != nil {
		log.Fatal(err)
	}
	ev.Workers = *workers
	pm, err := ev.Prepare(W)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	local, err := chamnp.MatMul(chamnp.Local(pm), xm)
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	check("local W·X", local.Decrypt(sk), want)
	fmt.Printf("local:  W(%dx%d)·X(%dx%d) in %v (%.0f rows/s), noise %.1f/%.1f bits\n",
		rows, *n, *n, *batch, dt.Round(time.Microsecond),
		float64(rows**batch)/dt.Seconds(), local.NoiseBits(), local.BudgetBits())

	// Transpose-free reuse: the same prepared W serves the row-major
	// product X'·Wᵀ (X' is the transpose view of the SAME ciphertexts).
	xt := xm.T()
	rowMajor, err := chamnp.MatMul(chamnp.Local(pm), xt)
	if err != nil {
		log.Fatal(err)
	}
	wantT, err := ref.MatMul(params.T.Q, ref.Transpose(X), ref.Transpose(W))
	if err != nil {
		log.Fatal(err)
	}
	check("local X'·Wt", rowMajor.Decrypt(sk), wantT)
	fmt.Printf("local:  X'·Wᵀ from the same PreparedMatrix and the same ciphertexts (free transpose)\n")

	// --- leg 2: the same product over the wire against chamserve.
	srv, err := server.New(server.Config{Params: params})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: params})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SetupKeys(keys); err != nil {
		log.Fatal(err)
	}
	h, err := cl.RegisterMatrix(W)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	remote, err := chamnp.MatMul(chamnp.Remote(cl, h, params), xm)
	if err != nil {
		log.Fatal(err)
	}
	dt = time.Since(t0)
	check("remote W·X", remote.Decrypt(sk), want)
	fmt.Printf("remote: same product through chamserve in %v (%.0f rows/s)\n",
		dt.Round(time.Microsecond), float64(rows**batch)/dt.Seconds())

	if local.Lanes() != remote.Lanes() {
		log.Fatalf("lane count %d vs %d", local.Lanes(), remote.Lanes())
	}
	fmt.Println("local and remote decrypt identically to the big.Int reference — OK")
}

func check(name string, got, want [][]uint64) {
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				log.Fatalf("%s: [%d][%d] = %d, want %d", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}
