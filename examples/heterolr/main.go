// HeteroLR: train a vertically partitioned logistic regression with the
// FATE-style protocol (the paper's §V-B.3 application). Party A and party
// B hold disjoint feature sets; gradients are computed as homomorphic
// matrix-vector products over the encrypted residual.
package main

import (
	"fmt"
	"log"

	"cham"
	"cham/internal/apps/heterolr"
)

func main() {
	rng := cham.NewRNG(2024)

	codec, err := heterolr.NewCodec(256, 6) // ring degree 256, 6 fraction bits
	if err != nil {
		log.Fatal(err)
	}
	data, err := heterolr.Synthetic(rng, 256, 6, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d samples; party A holds %d features, party B holds %d + labels\n",
		data.Samples(), data.FeaturesA(), data.FeaturesB())

	trainer, err := heterolr.NewTrainer(codec, rng, 8, 1.2, data.FeaturesA()+data.FeaturesB())
	if err != nil {
		log.Fatal(err)
	}
	model, err := trainer.Train(data)
	if err != nil {
		log.Fatal(err)
	}
	for e, loss := range model.LossHistory {
		fmt.Printf("epoch %d: logistic loss %.4f\n", e+1, loss)
	}
	fmt.Printf("training accuracy: %.1f%%\n", 100*model.Accuracy(data))
	fmt.Println("every gradient was computed under encryption (CRT over two plaintext moduli)")
}
