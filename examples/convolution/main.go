// Convolution: run a 2-D convolution over an encrypted image with a
// cleartext kernel — the paper's extension of coefficient-encoded HMVP to
// convolutions (§II-E), one polynomial multiplication for all outputs.
package main

import (
	"fmt"
	"log"

	"cham"
)

func main() {
	params := cham.MustParams(1024)
	rng := cham.NewRNG(7)
	sk := params.KeyGen(rng)

	// A 16x16 "image" with a bright diagonal, and a 3x3 edge kernel.
	shape := cham.Conv2DShape{H: 16, W: 16, KH: 3, KW: 3}
	img := make([][]uint64, shape.H)
	for i := range img {
		img[i] = make([]uint64, shape.W)
		for j := range img[i] {
			if i == j {
				img[i][j] = 9
			} else {
				img[i][j] = 1
			}
		}
	}
	// Simple blur kernel (all ones) keeps the demo in the positive range.
	kernel := [][]uint64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}

	ipt, err := cham.EncodeImage(params, shape, img)
	if err != nil {
		log.Fatal(err)
	}
	ctImg := params.Encrypt(rng, sk, ipt, params.R.Levels())
	ctOut, err := cham.Conv2D(params, shape, ctImg, kernel)
	if err != nil {
		log.Fatal(err)
	}
	out := cham.DecodeConvOutput(params, shape, params.Decrypt(ctOut, sk))

	fmt.Printf("valid output: %dx%d\n", shape.OutH(), shape.OutW())
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			fmt.Printf("%4d", out[i][j])
		}
		fmt.Println()
	}
	fmt.Println("(diagonal energy spreads into a band — the blur worked, on ciphertext)")
}
