// Cluster: the sharded-serving quickstart. Starts two chamserve shard
// nodes in lazy-tile mode plus a cluster gateway on loopback, then acts
// as an ordinary tenant against the gateway: the client code is exactly
// the single-server quickstart — the scatter/gather across shards is
// invisible, and the gathered results are bit-for-bit what one big
// server would return. Finishes with a graceful drain of the whole tier.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"cham"
	"cham/internal/client"
	"cham/internal/cluster"
	"cham/internal/lwe"
	"cham/internal/server"
)

func main() {
	params := cham.MustParams(256)

	// --- cluster side: normally `chamcluster -addr :7320 -spawn 2`.
	var shards []*server.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		s, err := server.New(server.Config{Params: params, LazyTiles: true})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go s.Serve(ln)
		shards = append(shards, s)
		addrs = append(addrs, ln.Addr().String())
	}
	co, err := cluster.New(cluster.Config{Params: params, Nodes: addrs})
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{Coordinator: co})
	if err != nil {
		log.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go gw.Serve(gln)
	fmt.Printf("cluster: 2 shards behind gateway %s\n", gln.Addr())

	// --- client side: unchanged from the single-server quickstart.
	rng := cham.NewRNG(7)
	sk := params.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(params, rng, sk, params.R.N)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: gln.Addr().String(), Params: params})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	hash, err := cl.SetupKeys(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed packing keys %x... on every shard\n", hash[:8])

	// A 1024-row matrix spans 4 row tiles at N=256, so the ring splits it
	// across both shards.
	A := make([][]uint64, 1024)
	for i := range A {
		A[i] = make([]uint64, 256)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % params.T.Q
		}
	}
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %dx%d matrix as %x... (%d tiles across the ring)\n",
		handle.Rows, handle.Cols, handle.ID[:8], handle.Tiles)

	for round := 0; round < 3; round++ {
		v := make([]uint64, 256)
		for j := range v {
			v[j] = rng.Uint64() % params.T.Q
		}
		res, err := cl.Apply(handle.ID, cham.EncryptVector(params, rng, sk, v))
		if err != nil {
			log.Fatal(err)
		}
		got := cham.DecryptResult(params,
			&cham.Result{M: int(res.M), N: int(res.N), Packed: res.Packed}, sk)
		want := cham.PlainMatVec(params, A, v)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("round %d row %d: got %d want %d", round, i, got[i], want[i])
			}
		}
		fmt.Printf("round %d: scattered A·v gathers to the cleartext product (%d rows)\n",
			round, len(got))
	}

	// Drain the gateway first (clients see the retryable draining code),
	// then the shards.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	for _, s := range shards {
		if err := s.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("cluster drained cleanly")
}
