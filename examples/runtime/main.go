// Runtime: the §III-C software stack in action. A simulated CHAM card is
// configured to misbehave — corrupted register loads, a mid-stream hang,
// intermittent job errors — and the runtime's RAS machinery (read-back
// verified loads, watchdog reset, replay, health monitoring) delivers
// every job anyway.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cham/internal/obs"
	chamrt "cham/internal/runtime"
)

func main() {
	engines := flag.Int("workers", 2, "simulated accelerator engines (parallel job lanes)")
	flag.Parse()
	obs.SetEnabled(true) // the RAS counters below also land in the metrics registry
	faults := chamrt.FaultPlan{
		CorruptWriteEvery: 9,  // every 9th register write flips a bit
		HangAfterJobs:     6,  // the card wedges after job 6
		FailJobEvery:      11, // and sporadically reports job errors
	}
	dev := chamrt.NewDevice(*engines, 300*time.Microsecond, faults)
	rt, err := chamrt.New(dev)
	if err != nil {
		log.Fatal(err)
	}
	rt.JobTimeout = 5 * time.Millisecond

	fmt.Printf("CHAM card up: %d engines, fault plan %+v\n", rt.Engines(), faults)
	const jobs = 20
	for i := 0; i < jobs; i++ {
		desc := &chamrt.HMVPDescriptor{
			Rows: 4096, Cols: 4096,
			MatrixAddr: 0x1000_0000, VectorAddr: 0x2000_0000,
			KeyAddr: 0x3000_0000, ResultAddr: 0x4000_0000,
			PackRowsLog2: 12,
		}
		if err := rt.RunHMVP(desc); err != nil {
			log.Fatalf("job %d lost: %v", i, err)
		}
	}
	sample := rt.HealthCheck()
	fmt.Printf("all %d jobs completed\n", jobs)
	fmt.Printf("RAS counters: %d replays, %d resets, %d recovered register loads\n",
		rt.Replays(), rt.Resets(), rt.Driver().RecoveredWrites())
	fmt.Printf("health: alive=%v temp=%.1fC jobsDone=%d\n",
		sample.Alive, sample.TempC, sample.JobsDone)

	// The same story in Prometheus text, as chamsim -metrics would
	// serve it: just the runtime families.
	fmt.Println("\nruntime metric families:")
	for _, m := range obs.Default().Snapshot() {
		if !strings.HasPrefix(m.Name, "cham_runtime_") {
			continue
		}
		if m.Type == "histogram" {
			fmt.Fprintf(os.Stdout, "  %s%s: %d events, %v s total\n", m.Name, labelsOf(m), m.Count, m.Sum)
		} else {
			fmt.Fprintf(os.Stdout, "  %s%s = %v\n", m.Name, labelsOf(m), m.Value)
		}
	}
}

func labelsOf(m obs.MetricSnapshot) string {
	if len(m.Labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(m.Labels))
	for k, v := range m.Labels {
		parts = append(parts, k+"="+v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
