// Runtime: the §III-C software stack in action. A simulated CHAM card is
// configured to misbehave — corrupted register loads, a mid-stream hang,
// intermittent job errors — and the runtime's RAS machinery (read-back
// verified loads, watchdog reset, replay, health monitoring) delivers
// every job anyway.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	chamrt "cham/internal/runtime"
)

func main() {
	engines := flag.Int("workers", 2, "simulated accelerator engines (parallel job lanes)")
	flag.Parse()
	faults := chamrt.FaultPlan{
		CorruptWriteEvery: 9,  // every 9th register write flips a bit
		HangAfterJobs:     6,  // the card wedges after job 6
		FailJobEvery:      11, // and sporadically reports job errors
	}
	dev := chamrt.NewDevice(*engines, 300*time.Microsecond, faults)
	rt, err := chamrt.New(dev)
	if err != nil {
		log.Fatal(err)
	}
	rt.JobTimeout = 5 * time.Millisecond

	fmt.Printf("CHAM card up: %d engines, fault plan %+v\n", rt.Engines(), faults)
	const jobs = 20
	for i := 0; i < jobs; i++ {
		desc := &chamrt.HMVPDescriptor{
			Rows: 4096, Cols: 4096,
			MatrixAddr: 0x1000_0000, VectorAddr: 0x2000_0000,
			KeyAddr: 0x3000_0000, ResultAddr: 0x4000_0000,
			PackRowsLog2: 12,
		}
		if err := rt.RunHMVP(desc); err != nil {
			log.Fatalf("job %d lost: %v", i, err)
		}
	}
	sample := rt.HealthCheck()
	fmt.Printf("all %d jobs completed\n", jobs)
	fmt.Printf("RAS counters: %d replays, %d resets, %d recovered register loads\n",
		rt.Replays(), rt.Resets(), rt.Driver().RecoveredWrites())
	fmt.Printf("health: alive=%v temp=%.1fC jobsDone=%d\n",
		sample.Alive, sample.TempC, sample.JobsDone)
}
