GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench tier2 fuzz vet-strict

# Tier-1 gate: everything a PR must keep green.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-2 gate: the race detector across the tree, a $(FUZZTIME) smoke on
# every fuzz target, and the stricter vet analyzers the concurrent hot
# path depends on. Benchmarks only run on a tree that has passed it.
tier2: race fuzz vet-strict

vet-strict:
	$(GO) vet -copylocks -loopclosure ./...

fuzz:
	$(GO) test ./internal/mod -run '^$$' -fuzz '^FuzzModReduce$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ntt -run '^$$' -fuzz '^FuzzNTTRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ntt -run '^$$' -fuzz '^FuzzNegacyclicMul$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lwe -run '^$$' -fuzz '^FuzzPackLWEs$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzHMVPDifferential$$' -fuzztime $(FUZZTIME)

# Hot-path benchmarks + the machine-readable BENCH_hmvp.json report.
bench: tier2
	$(GO) test -run xxx -bench 'Software|PreparedMatVec' -benchmem .
	$(GO) run ./cmd/chambench
