GO ?= go

.PHONY: check vet build test race bench

# Tier-1 gate: everything a PR must keep green.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks + the machine-readable BENCH_hmvp.json report.
bench:
	$(GO) test -run xxx -bench 'Software|PreparedMatVec' -benchmem .
	$(GO) run ./cmd/chambench
