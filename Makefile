GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench bench-diff tier2 fuzz vet-strict obs-race metrics-smoke serve-smoke cluster-smoke trace-smoke np-smoke

# Tier-1 gate: everything a PR must keep green.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-2 gate: the race detector across the tree, a $(FUZZTIME) smoke on
# every fuzz target, the stricter vet analyzers the concurrent hot
# path depends on, the telemetry layer under the race detector, and the
# warm-path performance diff against the committed baseline.
# Benchmarks only run on a tree that has passed it.
tier2: race fuzz vet-strict obs-race serve-smoke cluster-smoke trace-smoke np-smoke bench-diff

# Warm-path regression gate: re-measure the chambench shapes and fail if
# any Prepared/warm or Pack/warm ns/op regresses >10% over the committed
# BENCH_hmvp.json or the warm path allocates, then re-measure the sharded
# tier and fail if the 2-shard aggregate speedup drops below the 1.6x
# floor or regresses >25% against the committed cluster section, then
# re-measure the chamnp array tier and fail if the warm batched MatMul
# allocates or its ns/op regresses >10% over the committed np section.
bench-diff:
	$(GO) run ./cmd/chambench -compare BENCH_hmvp.json
	$(GO) run ./cmd/chambench -cluster -compare BENCH_hmvp.json
	$(GO) run ./cmd/chambench -np -compare BENCH_hmvp.json

obs-race:
	$(GO) vet ./internal/obs
	$(GO) test -race -count=1 ./internal/obs

vet-strict:
	$(GO) vet -copylocks -loopclosure ./...

fuzz:
	$(GO) test ./internal/mod -run '^$$' -fuzz '^FuzzModReduce$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ntt -run '^$$' -fuzz '^FuzzNTTRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ntt -run '^$$' -fuzz '^FuzzNegacyclicMul$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ring -run '^$$' -fuzz '^FuzzAutomorphNTT$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lwe -run '^$$' -fuzz '^FuzzPackLWEs$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rlwe -run '^$$' -fuzz '^FuzzDecomposeHoisted$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzHMVPDifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzWireRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzWireClusterDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzWireTraceHeaderDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz '^FuzzShardRouter$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chamnp -run '^$$' -fuzz '^FuzzEncMatrixShapes$$' -fuzztime $(FUZZTIME)

# End-to-end check of the live telemetry endpoint: boot chamsim with
# -metrics, scrape it, and require the stage-latency family.
metrics-smoke:
	$(GO) build -o /tmp/chamsim-smoke ./cmd/chamsim
	/tmp/chamsim-smoke -metrics 127.0.0.1:19099 -hold -repeat 2 hmvp 16 512 256 & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf http://127.0.0.1:19099/metrics > /tmp/chamsim-smoke.metrics 2>/dev/null \
			&& grep -q cham_hmvp_stage_seconds /tmp/chamsim-smoke.metrics; then ok=0; break; fi; \
		sleep 0.2; \
	done; \
	kill $$pid 2>/dev/null; \
	if [ $$ok -ne 0 ]; then echo "metrics-smoke: no cham_hmvp_stage_seconds in scrape"; exit 1; fi; \
	echo "metrics-smoke: ok ($$(grep -c '^cham_' /tmp/chamsim-smoke.metrics) series scraped)"

# End-to-end check of the serving tier: the loopback example exercises
# the full handshake → keys → register → apply → drain flow over TCP,
# and the remote benchmark path is built (not timed).
serve-smoke:
	$(GO) run ./examples/serve
	$(GO) build -o /tmp/chamserve-smoke ./cmd/chamserve
	$(GO) build -o /tmp/chambench-smoke ./cmd/chambench

# End-to-end check of the tracer: boot chamsim with every apply sampled,
# pull /debug/traces, and require the trace JSON to carry the apply span
# and at least one bridged kernel stage span.
trace-smoke:
	$(GO) build -o /tmp/chamsim-trace-smoke ./cmd/chamsim
	/tmp/chamsim-trace-smoke -metrics 127.0.0.1:19098 -trace-sample 1 -hold -repeat 2 hmvp 16 512 256 & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 50); do \
		if curl -sf 'http://127.0.0.1:19098/debug/traces?format=records' > /tmp/chamsim-trace-smoke.json 2>/dev/null \
			&& grep -q '"name":"apply"' /tmp/chamsim-trace-smoke.json \
			&& grep -q '"name":"stage:' /tmp/chamsim-trace-smoke.json; then ok=0; break; fi; \
		sleep 0.2; \
	done; \
	if [ $$ok -eq 0 ] && ! curl -sf 'http://127.0.0.1:19098/debug/traces?format=chrome' | grep -q traceEvents; then ok=1; fi; \
	kill $$pid 2>/dev/null; \
	if [ $$ok -ne 0 ]; then echo "trace-smoke: no apply/stage spans at /debug/traces"; exit 1; fi; \
	echo "trace-smoke: ok ($$(grep -o '"span"' /tmp/chamsim-trace-smoke.json | wc -l) spans exported)"

# End-to-end check of the sharded tier: the loopback cluster example
# scatters a 4-tile matrix across two shard nodes through the gateway,
# verifies every gathered product against the cleartext, and drains the
# whole tier; the cluster binary is built (not run).
cluster-smoke:
	$(GO) run ./examples/cluster
	$(GO) build -o /tmp/chamcluster-smoke ./cmd/chamcluster

# End-to-end check of the chamnp array tier: the matmul example proves
# the prepared-once/transpose-free batched product (local + loopback
# chamserve, bit-exact vs the big.Int reference), and the inference
# example pushes a batch through the two-layer network on both backends.
np-smoke:
	$(GO) run ./examples/matmul -n 128 -batch 3
	$(GO) run ./examples/inference -n 128 -batch 2

# Hot-path benchmarks + the machine-readable BENCH_hmvp.json report.
bench: tier2 metrics-smoke
	$(GO) test -run xxx -bench 'Software|PreparedMatVec' -benchmem .
	$(GO) run ./cmd/chambench
