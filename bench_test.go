package cham

// One benchmark per paper table and figure, plus ablation benchmarks for
// the design choices called out in DESIGN.md. Model-derived quantities
// (device throughput, speed-ups) are attached via b.ReportMetric; the
// Software* benchmarks measure this repository's own CPU implementation —
// the functional baseline the paper's CPU numbers correspond to.

import (
	"math/rand"
	"testing"

	"cham/internal/core"
	"cham/internal/dse"
	"cham/internal/exp"
	"cham/internal/fpga"
	"cham/internal/hetero"
	"cham/internal/lwe"
	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/perfmodel"
	"cham/internal/pipeline"
)

// runExp executes a registered experiment once per iteration.
func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("experiment %q missing", id)
	}
	var tables int
	for i := 0; i < b.N; i++ {
		tables = len(e.Run())
	}
	b.ReportMetric(float64(tables), "tables")
}

// --- Table II: resource utilization ---

func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := fpga.CheckTable2Calibration(); err != nil {
			b.Fatal(err)
		}
	}
	_, total, _ := fpga.Table2(fpga.ChamEngineConfig(), 2)
	b.ReportMetric(float64(total.LUT), "LUT")
	b.ReportMetric(float64(total.BRAM), "BRAM")
}

// --- Table III: single-NTT comparison ---

func BenchmarkTable3NTT(b *testing.B) {
	var rows []fpga.Table3Row
	for i := 0; i < b.N; i++ {
		rows = fpga.Table3(4096, 4)
	}
	b.ReportMetric(float64(rows[0].Latency), "cycles")
	b.ReportMetric(rows[3].ATPLUT, "HEAX-ATP")
}

// --- Fig. 2a: roofline ---

func BenchmarkFig2aRoofline(b *testing.B) {
	var pts []dse.RooflinePoint
	for i := 0; i < b.N; i++ {
		pts = dse.Roofline(fpga.U200)
	}
	b.ReportMetric(pts[len(pts)-1].Intensity, "HMVP-ops/B")
}

// --- Fig. 2b: design-space exploration ---

func BenchmarkFig2bDSE(b *testing.B) {
	var best dse.DesignPoint
	for i := 0; i < b.N; i++ {
		pts := dse.Explore(fpga.VU9P)
		best, _ = dse.Best(pts)
	}
	b.ReportMetric(best.RowsSec, "best-rows/s")
}

// --- Fig. 6: HMVP throughput ---

func BenchmarkFig6Throughput(b *testing.B) {
	runExp(b, "fig6")
	cfg := pipeline.ChamConfig()
	b.ReportMetric(cfg.ThroughputRowsPerSec(8192, 4096), "rows/s")
}

// --- Fig. 7a/7b: HeteroLR ---

func BenchmarkFig7HeteroLR(b *testing.B) {
	runExp(b, "fig7ab")
}

// --- Fig. 7c: Beaver triples ---

func BenchmarkFig7cBeaver(b *testing.B) {
	runExp(b, "fig7c")
}

// --- Fig. 8: HMVP latency ---

func BenchmarkFig8HMVP(b *testing.B) {
	runExp(b, "fig8")
	cpu := perfmodel.Xeon6130()
	p := perfmodel.ChamParams()
	cham := pipeline.ChamConfig().SimulateHMVP(4096, 4096).Seconds(300)
	b.ReportMetric(cpu.HMVPSeconds(p, 4096, 4096)/cham, "speedup-vs-cpu")
}

// --- §V-B.1: key-switch throughput ---

func BenchmarkKeySwitch(b *testing.B) {
	cfg := pipeline.ChamConfig()
	var ops float64
	for i := 0; i < b.N; i++ {
		ops = cfg.KeySwitchOpsPerSec()
	}
	b.ReportMetric(ops, "cham-ks/s")
	b.ReportMetric(cfg.NTTOpsPerSec(), "cham-ntt-ops/s")
}

// --- Headline ---

func BenchmarkHeadline(b *testing.B) {
	runExp(b, "headline")
}

// --- Software baseline measurements (this repo's own CPU implementation) ---

func benchParams(b *testing.B, n int) Params {
	b.Helper()
	p, err := NewParams(n)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkSoftwareNTT4096(b *testing.B) {
	b.ReportAllocs()
	t := ntt.MustTable(4096, mod.ChamQ0)
	a := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = rng.Uint64() % mod.ChamQ0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Forward(a)
		t.Inverse(a)
	}
}

func BenchmarkSoftwareKeySwitch(b *testing.B) {
	b.ReportAllocs()
	p := benchParams(b, 4096)
	rng := rand.New(rand.NewSource(2))
	sk := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, sk.Value)
	ct := p.EncryptZeroSym(rng, sk, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.KeySwitch(ct, swk)
	}
}

func BenchmarkSoftwareHMVP(b *testing.B) {
	b.ReportAllocs()
	p := benchParams(b, 4096)
	rng := rand.New(rand.NewSource(3))
	sk := p.KeyGen(rng)
	const m = 8
	ev, err := NewEvaluator(p, rng, sk, m)
	if err != nil {
		b.Fatal(err)
	}
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, 4096)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, 4096)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := EncryptVector(p, rng, sk, v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MatVec(A, ctV); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m), "rows/op")
}

// BenchmarkPreparedMatVec separates the HMVP's one-time per-matrix work
// (encode + lift + forward NTT of every row) from the per-vector pipeline:
// "cold" pays Prepare on every iteration, "warm" reuses one PreparedMatrix
// and a resident Result, which after warm-up runs allocation-free.
func BenchmarkPreparedMatVec(b *testing.B) {
	p := benchParams(b, 4096)
	rng := rand.New(rand.NewSource(7))
	sk := p.KeyGen(rng)
	const m = 8
	ev, err := NewEvaluator(p, rng, sk, m)
	if err != nil {
		b.Fatal(err)
	}
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, 4096)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, 4096)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := EncryptVector(p, rng, sk, v)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pm, err := ev.Prepare(A)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pm.Apply(ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		pm, err := ev.Prepare(A)
		if err != nil {
			b.Fatal(err)
		}
		res := pm.NewResult()
		if err := pm.ApplyInto(res, ctV); err != nil { // warm the pools
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pm.ApplyInto(res, ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSoftwareEncrypt(b *testing.B) {
	b.ReportAllocs()
	p := benchParams(b, 4096)
	rng := rand.New(rand.NewSource(4))
	sk := p.KeyGen(rng)
	pt := p.NewPlaintext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Encrypt(rng, sk, pt, 3)
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationNTTDataflow: standard in-place CT vs constant-geometry
// ping-pong vs the cycle-checked banked model.
func BenchmarkAblationNTTDataflow(b *testing.B) {
	t := ntt.MustTable(4096, mod.ChamQ0)
	a := make([]uint64, 4096)
	dst := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(5))
	for i := range a {
		a[i] = rng.Uint64() % mod.ChamQ0
	}
	b.Run("cooley-tukey", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Forward(a)
		}
	})
	b.Run("constant-geometry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.ForwardCG(dst, a)
		}
	})
	b.Run("banked-model", func(b *testing.B) {
		u, _ := ntt.NewBankedUnit(t, 4)
		for i := 0; i < b.N; i++ {
			_ = u.Forward(a)
		}
		b.ReportMetric(float64(u.Cycles), "hw-cycles")
	})
}

// BenchmarkAblationModReduction: the paper's shift-add trick vs the
// generic alternatives.
func BenchmarkAblationModReduction(b *testing.B) {
	m := mod.New(mod.ChamQ0)
	rng := rand.New(rand.NewSource(6))
	xs := make([]uint64, 4096)
	ys := make([]uint64, 4096)
	for i := range xs {
		xs[i] = rng.Uint64() % m.Q
		ys[i] = rng.Uint64() % m.Q
	}
	var sink uint64
	b.Run("div64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += m.Mul(xs[i%4096], ys[i%4096])
		}
	})
	b.Run("barrett", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += m.MulBarrett(xs[i%4096], ys[i%4096])
		}
	})
	b.Run("shift-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += m.MulShiftAdd(xs[i%4096], ys[i%4096])
		}
	})
	b.Run("fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += m.MulFold(xs[i%4096], ys[i%4096])
		}
	})
	b.Run("shoup", func(b *testing.B) {
		wp := m.ShoupPrecomp(ys[0])
		for i := 0; i < b.N; i++ {
			sink += m.MulShoup(xs[i%4096], ys[0], wp)
		}
	})
	_ = sink
}

// BenchmarkAblationEncoding: coefficient vs batch-encoded HMVP on the CPU
// cost model — the O(m) vs O(m log N) separation of §II-E.
func BenchmarkAblationEncoding(b *testing.B) {
	cpu := perfmodel.Xeon6130()
	p := perfmodel.ChamParams()
	var coeff, batch float64
	for i := 0; i < b.N; i++ {
		coeff = cpu.HMVPSeconds(p, 4096, 4096)
		batch = batchSeconds(cpu, p, 4096)
	}
	b.ReportMetric(batch/coeff, "batch/coeff")
}

func batchSeconds(cpu perfmodel.CPU, p perfmodel.Params, m int) float64 {
	ops := core.BatchHMVPOps(p.N, p.NormalLevels, p.FullLevels, m)
	return float64(ops.ModMuls(p.N)) / (cpu.ModMulsPerSec * float64(cpu.Threads) * cpu.Efficiency)
}

// BenchmarkAblationFusion: the Fig. 2a motivation — attainable throughput
// of the fused HMVP vs composing standalone operators.
func BenchmarkAblationFusion(b *testing.B) {
	var fused, standalone float64
	for i := 0; i < b.N; i++ {
		pts := dse.Roofline(fpga.U200)
		standalone = pts[0].Attainable // NTT invoked individually
		fused = pts[len(pts)-1].Attainable
	}
	b.ReportMetric(fused/standalone, "fused/standalone")
}

// BenchmarkAblationParetoPoints: the two published Fig. 2b optima.
func BenchmarkAblationParetoPoints(b *testing.B) {
	a := pipeline.ChamConfig()
	c := pipeline.ChamConfig()
	c.NumEngines = 1
	c.Engine.NBF = 8
	c.FreqMHz = 275 // routed clock of the 8-PE design
	var ta, tc float64
	for i := 0; i < b.N; i++ {
		ta = a.ThroughputRowsPerSec(8192, 4096)
		tc = c.ThroughputRowsPerSec(8192, 4096)
	}
	b.ReportMetric(ta, "2x4PE-rows/s")
	b.ReportMetric(tc, "1x8PE-rows/s")
}

// BenchmarkAblationOverlap: Fig. 1b's host/FPGA pipelining vs serial
// offload.
func BenchmarkAblationOverlap(b *testing.B) {
	sys := hetero.ChamSystem()
	cfg := pipeline.ChamConfig()
	cpu := perfmodel.Xeon6130()
	jobs := make([]hetero.Job, 16)
	for i := range jobs {
		jobs[i] = hetero.HMVPJob(cfg, cpu, 1024, 4096)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := sys.Simulate(jobs, false)
		over := sys.Simulate(jobs, true)
		speedup = serial.Makespan / over.Makespan
	}
	b.ReportMetric(speedup, "overlap-speedup")
}

// BenchmarkAblationDiagonal: §II-E's three encodings side by side on the
// CPU cost model — coefficient (Alg. 1) vs diagonal rotations vs
// BSGS-optimized diagonal, in key-switch counts.
func BenchmarkAblationDiagonal(b *testing.B) {
	const slots = 2048 // N/2 at the production degree
	var plain, bsgs int
	for i := 0; i < b.N; i++ {
		plain, bsgs = core.DiagonalKeySwitchEstimate(slots, 45)
	}
	coeff := core.HMVPOps(4096, 2, 3, slots, slots).KeySwitch
	b.ReportMetric(float64(plain), "diag-ks")
	b.ReportMetric(float64(bsgs), "bsgs-ks")
	b.ReportMetric(float64(coeff), "coeff-ks")
}

// BenchmarkSoftwareNTTLazy measures the lazy-reduction forward transform
// against the strict one (BenchmarkAblationNTTDataflow/cooley-tukey).
func BenchmarkSoftwareNTTLazy(b *testing.B) {
	b.ReportAllocs()
	t := ntt.MustTable(4096, mod.ChamQ0)
	a := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(9))
	for i := range a {
		a[i] = rng.Uint64() % mod.ChamQ0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.ForwardLazy(a)
	}
}

// BenchmarkSoftwarePackLWEs measures the Alg. 3 packing tree (m-1
// PACKTWOLWES reductions) in software at production degree.
func BenchmarkSoftwarePackLWEs(b *testing.B) {
	b.ReportAllocs()
	p := benchParams(b, 4096)
	rng := rand.New(rand.NewSource(10))
	sk := p.KeyGen(rng)
	const m = 16
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*lwe.Ciphertext, m)
	for i := range cts {
		ct := p.Encrypt(rng, sk, p.EncodeVector([]uint64{uint64(i)}), 2)
		cts[i] = lwe.Extract(p, ct, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lwe.PackLWEs(p, cts, keys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m-1), "reductions/op")
}

// BenchmarkFig5Floorplan regenerates the floorplan rebalancing.
func BenchmarkFig5Floorplan(b *testing.B) {
	var steps int
	for i := 0; i < b.N; i++ {
		fp := fpga.InitialFloorplan(fpga.VU9P, fpga.ChamEngineConfig(), 2)
		var err error
		steps, err = 0, error(nil)
		if err = fp.Rebalance(); err != nil {
			b.Fatal(err)
		}
		steps = len(fp.History) - 2
	}
	b.ReportMetric(float64(steps), "moves")
}
