// Package cham is a Go reproduction of CHAM, the homomorphic-encryption
// accelerator for fast matrix-vector products (Ren et al., DAC 2023).
//
// The package exposes two halves:
//
//   - A functional HE library: B/FV over the paper's parameter set
//     (N=4096, two 35-bit ciphertext limbs, a 39-bit special modulus,
//     t=65537), coefficient-encoded homomorphic matrix-vector products
//     (Alg. 1) with LWE extraction and repacking (Alg. 2/3), 2-D
//     convolution, and the batch-encoded baseline. Results are genuinely
//     correct ciphertext computations.
//
//   - A hardware model: cycle-level simulation of the CHAM macro-pipeline,
//     FPGA resource estimation calibrated to the paper's Tables II/III,
//     design-space exploration, and calibrated CPU/GPU/Paillier cost
//     models that regenerate every evaluation table and figure (see
//     RunExperiment and cmd/chamsim).
//
// Quick start:
//
//	params := cham.MustParams(4096)
//	rng := cham.NewRNG(1)
//	sk := params.KeyGen(rng)
//	ev, _ := cham.NewEvaluator(params, rng, sk, 1024)
//	ct := cham.EncryptVector(params, rng, sk, vector)
//	res, _ := ev.MatVec(matrix, ct)
//	product := cham.DecryptResult(params, res, sk)
package cham

import (
	"fmt"
	"math/rand"
	"strings"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/dse"
	"cham/internal/exp"
	"cham/internal/fpga"
	"cham/internal/lwe"
	"cham/internal/noise"
	"cham/internal/pipeline"
	"cham/internal/rlwe"
	"cham/internal/security"
)

// Core HE types, re-exported from the implementation packages.
type (
	// Params bundles the ring, the RNS basis and the plaintext modulus.
	Params = bfv.Params
	// Plaintext is an unscaled mod-t polynomial.
	Plaintext = bfv.Plaintext
	// Ciphertext is an RLWE pair (b, a).
	Ciphertext = rlwe.Ciphertext
	// SecretKey is a ternary RLWE secret.
	SecretKey = rlwe.SecretKey
	// PublicKey enables encryption without the secret.
	PublicKey = rlwe.PublicKey
	// LWECiphertext is a single extracted coefficient (Eq. 3).
	LWECiphertext = lwe.Ciphertext
	// Evaluator computes homomorphic matrix-vector products (Alg. 1).
	Evaluator = core.Evaluator
	// Result is a packed HMVP output.
	Result = core.Result
	// Conv2DShape describes a valid 2-D convolution.
	Conv2DShape = core.Conv2DShape
	// BatchEvaluator is the SIMD rotate-and-sum baseline (§II-E).
	BatchEvaluator = core.BatchEvaluator
)

// Hardware-model types.
type (
	// Accelerator is a cycle-level CHAM instance.
	Accelerator = pipeline.Config
	// EngineConfig selects per-engine design parameters.
	EngineConfig = fpga.EngineConfig
	// DesignPoint is one explored configuration (Fig. 2b).
	DesignPoint = dse.DesignPoint
)

// NewParams builds the paper's parameter set at ring degree n (4096 in
// production; smaller powers of two for experimentation).
func NewParams(n int) (Params, error) { return bfv.NewChamParams(n) }

// MustParams panics on error.
func MustParams(n int) Params { return bfv.MustChamParams(n) }

// NewRNG returns a deterministic randomness source for reproducible runs.
// The library is a research prototype: swap in a CSPRNG-backed source
// before protecting real data.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// NewEvaluator prepares packing keys for HMVPs with up to maxRows output
// rows per tile.
func NewEvaluator(p Params, rng *rand.Rand, sk *SecretKey, maxRows int) (*Evaluator, error) {
	return core.NewEvaluator(p, rng, sk, maxRows)
}

// NewBatchEvaluator prepares the SIMD baseline's trace keys.
func NewBatchEvaluator(p Params, rng *rand.Rand, sk *SecretKey) (*BatchEvaluator, error) {
	return core.NewBatchEvaluator(p, rng, sk)
}

// EncryptVector encrypts v into ⌈len(v)/N⌉ augmented ciphertexts.
func EncryptVector(p Params, rng *rand.Rand, sk *SecretKey, v []uint64) []*Ciphertext {
	return core.EncryptVector(p, rng, sk, v)
}

// EncryptVectorPK is EncryptVector under a public key.
func EncryptVectorPK(p Params, rng *rand.Rand, pk *PublicKey, v []uint64) []*Ciphertext {
	return core.EncryptVectorPK(p, rng, pk, v)
}

// DecryptResult reads an HMVP result vector.
func DecryptResult(p Params, res *Result, sk *SecretKey) []uint64 {
	return core.DecryptResult(p, res, sk)
}

// PlainMatVec is the cleartext reference A·v mod t.
func PlainMatVec(p Params, a [][]uint64, v []uint64) []uint64 {
	return core.PlainMatVec(p, a, v)
}

// Conv2D convolves an encrypted image with a cleartext kernel via
// coefficient packing.
func Conv2D(p Params, s Conv2DShape, ctImg *Ciphertext, kernel [][]uint64) (*Ciphertext, error) {
	return core.Conv2D(p, s, ctImg, kernel)
}

// EncodeImage lays an image out for Conv2D.
func EncodeImage(p Params, s Conv2DShape, img [][]uint64) (*Plaintext, error) {
	return core.EncodeImage(p, s, img)
}

// DecodeConvOutput extracts the valid convolution outputs.
func DecodeConvOutput(p Params, s Conv2DShape, pt *Plaintext) [][]uint64 {
	return core.DecodeConvOutput(p, s, pt)
}

// DefaultAccelerator returns the published two-engine CHAM instance.
func DefaultAccelerator() Accelerator { return pipeline.ChamConfig() }

// ExploreDesignSpace re-runs the Fig. 2b exploration on the VU9P.
func ExploreDesignSpace() []DesignPoint { return dse.Explore(fpga.VU9P) }

// Experiments lists the reproducible paper artifacts.
func Experiments() []string {
	var ids []string
	for _, e := range exp.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment regenerates one table/figure by id ("table2", "fig6", ...)
// and returns the rendered text.
func RunExperiment(id string) (string, error) {
	e, ok := exp.Find(id)
	if !ok {
		return "", fmt.Errorf("cham: unknown experiment %q (have %s)",
			id, strings.Join(Experiments(), ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\npaper: %s\n\n", e.ID, e.Title, e.Paper)
	for _, tb := range e.Run() {
		b.WriteString(tb.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// NoiseEstimator returns the analytic noise-budget estimator for the
// parameter set (see internal/noise): predictions are validated against
// measured ciphertext noise in this repository's tests.
func NoiseEstimator(p Params) *noise.Estimator { return noise.New(p) }

// CheckSecurity validates the parameters against the HE standard at
// 128-bit security (ternary secrets). CHAM's production set passes with
// <3 bits of headroom — the paper's "space of 109 bit".
func CheckSecurity(p Params) error { return security.Check(p.Params, security.Level128) }
