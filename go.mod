module cham

go 1.22
