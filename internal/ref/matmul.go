package ref

import (
	"fmt"
	"math/big"
)

// MatMul is the big.Int reference for the matrix-matrix workloads the
// chamnp tier opens: C = A·B mod t, with every inner product accumulated
// exactly in arbitrary precision before a single final reduction, so no
// intermediate wrap can mask an implementation bug. A is m×k, B is k×n
// (both row-major); the result is m×n. Compositions of HMVP batches —
// an encrypted matmul is one HMVP per column block — are verified
// bit-for-bit against compositions of this function.
func MatMul(t uint64, A, B [][]uint64) ([][]uint64, error) {
	m := len(A)
	if m == 0 || len(A[0]) == 0 {
		return nil, fmt.Errorf("ref: empty left matrix")
	}
	k := len(A[0])
	if len(B) != k {
		return nil, fmt.Errorf("ref: inner dimensions %d and %d differ", k, len(B))
	}
	if len(B[0]) == 0 {
		return nil, fmt.Errorf("ref: empty right matrix")
	}
	n := len(B[0])
	for i := range A {
		if len(A[i]) != k {
			return nil, fmt.Errorf("ref: left row %d has %d columns, want %d", i, len(A[i]), k)
		}
	}
	for i := range B {
		if len(B[i]) != n {
			return nil, fmt.Errorf("ref: right row %d has %d columns, want %d", i, len(B[i]), n)
		}
	}
	tBig := new(big.Int).SetUint64(t)
	acc := new(big.Int)
	term := new(big.Int)
	C := make([][]uint64, m)
	for i := range C {
		C[i] = make([]uint64, n)
		for j := 0; j < n; j++ {
			acc.SetUint64(0)
			for l := 0; l < k; l++ {
				term.SetUint64(A[i][l] % t)
				term.Mul(term, new(big.Int).SetUint64(B[l][j]%t))
				acc.Add(acc, term)
			}
			C[i][j] = acc.Mod(acc, tBig).Uint64()
		}
	}
	return C, nil
}

// Transpose returns the row-major transpose of a rectangular matrix —
// the cleartext counterpart of chamnp's free layout-flip transpose,
// used when composing RowMajor MatMul expectations (X·Wᵀ).
func Transpose(A [][]uint64) [][]uint64 {
	if len(A) == 0 || len(A[0]) == 0 {
		return nil
	}
	out := make([][]uint64, len(A[0]))
	for j := range out {
		out[j] = make([]uint64, len(A))
		for i := range A {
			out[j][i] = A[i][j]
		}
	}
	return out
}
