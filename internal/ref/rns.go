package ref

import (
	"math/big"

	"cham/internal/ring"
)

// RNS basis conversion between the optimized ring.Poly representation and
// the reference big-integer form, plus the exact rounding division that
// models RESCALE / ModDown. The CRT reconstruction here is written
// independently of ring.ToBigIntCentered so the two act as cross-checks.

// ModulusProduct returns Π q_l for the given limbs.
func ModulusProduct(moduli []uint64) *big.Int {
	q := big.NewInt(1)
	for _, m := range moduli {
		q.Mul(q, new(big.Int).SetUint64(m))
	}
	return q
}

// Compose reconstructs the reference polynomial from an RNS polynomial over
// the given limb moduli (which must match p's level count): coefficient i
// is the unique X in [0, Πq_l) with X ≡ p.Coeffs[l][i] (mod q_l).
// The input must be in coefficient domain.
func Compose(p *ring.Poly, moduli []uint64) *Poly {
	if p.IsNTT {
		panic("ref: Compose requires coefficient domain")
	}
	if len(moduli) != p.Levels() {
		panic("ref: modulus count does not match poly levels")
	}
	q := ModulusProduct(moduli)
	n := len(p.Coeffs[0])
	out := NewPoly(n, q)
	// CRT weights w_l = (Q/q_l)·[(Q/q_l)^{-1} mod q_l].
	weights := make([]*big.Int, len(moduli))
	for l, ql := range moduli {
		qlBig := new(big.Int).SetUint64(ql)
		qOver := new(big.Int).Quo(q, qlBig)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qOver, qlBig), qlBig)
		weights[l] = qOver.Mul(qOver, inv)
	}
	term := new(big.Int)
	for i := 0; i < n; i++ {
		acc := out.Coeffs[i]
		for l := range moduli {
			term.SetUint64(p.Coeffs[l][i])
			term.Mul(term, weights[l])
			acc.Add(acc, term)
		}
		acc.Mod(acc, q)
	}
	return out
}

// Decompose maps the reference polynomial back to RNS residue rows over the
// given limb moduli: row l holds coefficient values mod q_l.
func Decompose(p *Poly, moduli []uint64) [][]uint64 {
	out := make([][]uint64, len(moduli))
	tmp := new(big.Int)
	for l, ql := range moduli {
		qlBig := new(big.Int).SetUint64(ql)
		row := make([]uint64, len(p.Coeffs))
		for i, c := range p.Coeffs {
			row[i] = tmp.Mod(c, qlBig).Uint64()
		}
		out[l] = row
	}
	return out
}

// MatchesRNS reports whether p decomposes exactly to the RNS polynomial o
// (coefficient domain) over the given moduli.
func (p *Poly) MatchesRNS(o *ring.Poly, moduli []uint64) bool {
	if o.IsNTT || len(moduli) != o.Levels() {
		return false
	}
	rows := Decompose(p, moduli)
	for l := range rows {
		for i := range rows[l] {
			if rows[l][i] != o.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

// centeredScalar returns the centred representative of x mod q, using the
// same convention as the optimized pipeline: residues strictly above q/2
// (integer division, q odd) lift negatively, so the range is
// [-(q-1)/2, (q-1)/2].
func centeredScalar(x *big.Int, q uint64) *big.Int {
	r := new(big.Int).Mod(x, new(big.Int).SetUint64(q))
	if r.Uint64() > q/2 {
		r.Sub(r, new(big.Int).SetUint64(q))
	}
	return r
}

// ModDownScalar performs the exact RESCALE division on a single value:
// given x modulo Q·qLast it returns (x - c)/qLast modulo Q, where c is the
// centred residue of x modulo qLast. (x - c) is divisible by qLast by
// construction, so the division is exact integer arithmetic — this is the
// rounding division the RNS formula in ring.ModDownInto realises limb-wise.
func ModDownScalar(x *big.Int, qLast uint64, newQ *big.Int) *big.Int {
	c := centeredScalar(x, qLast)
	d := new(big.Int).Sub(x, c)
	d.Quo(d, new(big.Int).SetUint64(qLast))
	return d.Mod(d, newQ)
}

// ModDown applies ModDownScalar to every coefficient, dropping the last
// limb of the basis: moduli lists the CURRENT basis of p (so p.Q must equal
// their product) and the result lives modulo the product of moduli[:len-1].
func ModDown(p *Poly, moduli []uint64) *Poly {
	if ModulusProduct(moduli).Cmp(p.Q) != 0 {
		panic("ref: basis does not match poly modulus")
	}
	qLast := moduli[len(moduli)-1]
	newQ := ModulusProduct(moduli[:len(moduli)-1])
	out := NewPoly(len(p.Coeffs), newQ)
	for i, c := range p.Coeffs {
		out.Coeffs[i].Set(ModDownScalar(c, qLast, newQ))
	}
	return out
}

// ModDownTo repeatedly drops the last limb until `levels` limbs remain.
func ModDownTo(p *Poly, moduli []uint64, levels int) *Poly {
	out := p
	for lv := len(moduli); lv > levels; lv-- {
		out = ModDown(out, moduli[:lv])
	}
	return out
}

// ComposeCiphertext composes both halves of an RLWE ciphertext
// (coefficient domain) over the moduli matching its level count.
func ComposeCiphertext(b, a *ring.Poly, moduli []uint64) *Ciphertext {
	return &Ciphertext{B: Compose(b, moduli), A: Compose(a, moduli)}
}
