package ref

import (
	"math/big"

	"cham/internal/ring"
	"cham/internal/rlwe"
)

// Decomposed (hybrid) key switching over big integers, mirroring
// rlwe.DecomposeInto + rlwe.KeySwitchHoistedInto from the definition: the
// a-part is split into one
// centred digit per normal limb, each digit is convolved with the matching
// key row over the FULL (augmented) modulus, and the accumulated pair is
// divided by the special modulus with exact rounding back to the normal
// basis.

// SwitchingKey is a reference-form switching key: one (B_j, A_j) pair per
// normal limb, as coefficient-domain polynomials modulo the full composed
// modulus Q·P.
type SwitchingKey struct {
	Bs, As []*Poly
}

// ComposeSwitchingKey converts an optimized rlwe.SwitchingKey (full basis,
// NTT domain) into reference form. The inverse transform used here is the
// ring's own — key material is an input to the model, not an operation
// under test, and the transform itself is differentially verified against
// ForwardDFT/InverseDFT elsewhere.
func ComposeSwitchingKey(r *ring.Ring, swk *rlwe.SwitchingKey, moduli []uint64) *SwitchingKey {
	out := &SwitchingKey{
		Bs: make([]*Poly, len(swk.Bs)),
		As: make([]*Poly, len(swk.As)),
	}
	for j := range swk.Bs {
		b := swk.Bs[j].Copy()
		a := swk.As[j].Copy()
		r.INTT(b)
		r.INTT(a)
		out.Bs[j] = Compose(b, moduli)
		out.As[j] = Compose(a, moduli)
	}
	return out
}

// decomposeDigit returns digit j of a: each coefficient's residue modulo
// moduli[j], centred into [-(q_j-1)/2, (q_j-1)/2], then re-embedded modulo
// fullQ. This is the RNS digit decomposition of the hybrid key switch.
func decomposeDigit(a *Poly, qj uint64, fullQ *big.Int) *Poly {
	out := NewPoly(len(a.Coeffs), fullQ)
	for i, c := range a.Coeffs {
		out.Coeffs[i].Mod(centeredScalar(c, qj), fullQ)
	}
	return out
}

// KeySwitchDeferred re-encrypts the phase of the bare a-part under the
// switching key with BOTH divisions DEFERRED: it returns the raw digit·key
// accumulations modulo the full basis (c0 = Σ_j d_j·B_j, c1 = Σ_j d_j·A_j,
// un-rescaled). This is the reference form of rlwe.KeySwitchAccumulateNTT —
// the deferred packing tree adds many raw pairs before dividing once per
// part.
func KeySwitchDeferred(a *Poly, swk *SwitchingKey, moduli []uint64, normalLevels int) (*Poly, *Poly) {
	fullQ := ModulusProduct(moduli)
	c0 := NewPoly(len(a.Coeffs), fullQ)
	c1 := NewPoly(len(a.Coeffs), fullQ)
	for j := 0; j < normalLevels; j++ {
		d := decomposeDigit(a, moduli[j], fullQ)
		c0 = c0.Add(d.Mul(swk.Bs[j]))
		c1 = c1.Add(d.Mul(swk.As[j]))
	}
	return c0, c1
}

// KeySwitch re-encrypts the phase of the bare a-part under the switching
// key: it returns the (b, a) contribution pair modulo the normal-basis
// modulus. moduli is the FULL basis; normalLevels counts the normal limbs.
// The caller adds the original b-part, exactly as rlwe.KeySwitchInto does.
func KeySwitch(a *Poly, swk *SwitchingKey, moduli []uint64, normalLevels int) (*Poly, *Poly) {
	c0, c1 := KeySwitchDeferred(a, swk, moduli, normalLevels)
	return ModDownTo(c0, moduli, normalLevels), ModDownTo(c1, moduli, normalLevels)
}

// AutomorphCt applies X -> X^k to the ciphertext and key-switches back
// under the original key (the reference of rlwe.AutomorphCtInto): the
// permuted b-part rides along unchanged and the switched a-part
// contribution is added to it.
func AutomorphCt(ct *Ciphertext, k int, swk *SwitchingKey, moduli []uint64, normalLevels int) *Ciphertext {
	phiB := ct.B.Automorph(k)
	phiA := ct.A.Automorph(k)
	ksB, ksA := KeySwitch(phiA, swk, moduli, normalLevels)
	return &Ciphertext{B: ksB.Add(phiB), A: ksA}
}

// DecryptCoeff decrypts one plaintext coefficient of a ciphertext: it
// computes the phase B + A·s, centres coefficient idx, and applies the BFV
// rounding ⌊t·v/Q⌉ mod t. s is the secret key modulo the ciphertext
// modulus; q is that modulus and t the plaintext modulus.
func DecryptCoeff(ct *Ciphertext, s *Poly, t uint64, idx int) uint64 {
	phase := ct.Phase(s)
	return RoundToT(phase.Centered(idx), phase.Q, t)
}

// RoundToT maps a centred value v modulo q to ⌊t·v/q⌉ mod t — the BFV
// decryption rounding, with the same half-up Euclidean rounding as
// bfv.Decrypt.
func RoundToT(v *big.Int, q *big.Int, t uint64) uint64 {
	tB := new(big.Int).SetUint64(t)
	num := new(big.Int).Mul(v, tB)
	num.Add(num, new(big.Int).Rsh(q, 1))
	num.Div(num, q) // floor division (q > 0)
	num.Mod(num, tB)
	return num.Uint64()
}
