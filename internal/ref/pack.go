package ref

import (
	"fmt"
	"math/big"
)

// Reference EXTRACTLWES (Eq. 3) and the PACKTWOLWES / PACKLWES tree
// (Alg. 2 / Alg. 3), mirroring the optimized lwe package operation for
// operation in exact big-integer arithmetic.

// ExtractAsRLWE extracts plaintext coefficient idx of ct as a slot
// ciphertext in RLWE shape (the fused Extract∘AsRLWE of
// lwe.ExtractAsRLWEInto): the A-part is ct.A·X^{-idx} and the B-part keeps
// only b_idx at its constant coefficient.
func ExtractAsRLWE(ct *Ciphertext, idx int) *Ciphertext {
	var a *Poly
	if idx == 0 {
		a = ct.A.Copy()
	} else {
		a = ct.A.MulMonomial(-idx)
	}
	b := NewPoly(ct.B.N(), ct.B.Q)
	b.Coeffs[0].Set(ct.B.Coeffs[idx])
	return &Ciphertext{B: b, A: a}
}

// PackTwo merges two packed groups of size i (Alg. 2):
//
//	out = (ct_e + X^{N/2i}·ct_o) + φ_{2i+1}(ct_e - X^{N/2i}·ct_o),
//
// with the automorphism realised homomorphically through swk (the key for
// k = 2i+1). moduli is the full basis; the ciphertexts live on the normal
// prefix of normalLevels limbs.
func PackTwo(i int, ctE, ctO *Ciphertext, swk *SwitchingKey, moduli []uint64, normalLevels int) *Ciphertext {
	n := ctE.B.N()
	z := n / (2 * i)
	shifted := ctO.MulMonomial(z)
	sum := ctE.Add(shifted)
	diff := ctE.Sub(shifted)
	return sum.Add(AutomorphCt(diff, 2*i+1, swk, moduli, normalLevels))
}

// PackCiphertexts folds m = len(cts) slot ciphertexts into one (Alg. 3),
// using the same level order as the optimized iterative tree: level with
// group size i merges pair (j, j+count/2). In exact arithmetic the result
// is independent of evaluation order; using the same order keeps the
// correspondence easy to audit. keys maps the automorphism index 2i+1 to
// its reference switching key.
func PackCiphertexts(cts []*Ciphertext, keys map[int]*SwitchingKey, moduli []uint64, normalLevels int) (*Ciphertext, error) {
	m := len(cts)
	if m < 1 || m&(m-1) != 0 {
		return nil, fmt.Errorf("ref: cannot pack %d ciphertexts (need a power of two)", m)
	}
	buf := make([]*Ciphertext, m)
	copy(buf, cts)
	count := m
	for i := 1; i < m; i <<= 1 {
		half := count / 2
		swk := keys[2*i+1]
		if swk == nil {
			return nil, fmt.Errorf("ref: missing packing key for k=%d", 2*i+1)
		}
		for j := 0; j < half; j++ {
			buf[j] = PackTwo(i, buf[j], buf[j+half], swk, moduli, normalLevels)
		}
		count = half
	}
	return buf[0], nil
}

// ZeroCiphertext returns an all-zero ciphertext modulo q.
func ZeroCiphertext(n int, q *big.Int) *Ciphertext {
	return &Ciphertext{B: NewPoly(n, q), A: NewPoly(n, q)}
}
