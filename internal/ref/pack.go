package ref

import (
	"fmt"
	"math/big"
)

// Reference EXTRACTLWES (Eq. 3) and the PACKTWOLWES / PACKLWES tree
// (Alg. 2 / Alg. 3), mirroring the optimized lwe package operation for
// operation in exact big-integer arithmetic — including the NTT-resident
// tree's DEFERRED divisions (DESIGN.md §12): a tree node carries (BT, A)
// with BOTH parts modulo the full basis and true ciphertext
// (ModDownTo(BT), ModDownTo(A)); merges accumulate their key-switch
// contributions un-rescaled, only the gathered difference a-part feeding
// the digit decomposition is rescaled per merge, and the rounding
// divisions run once per tree, at the flush.

// ExtractAsRLWE extracts plaintext coefficient idx of ct as a slot
// ciphertext in RLWE shape (the fused Extract∘AsRLWE of
// lwe.ExtractAsRLWEInto): the A-part is ct.A·X^{-idx} and the B-part keeps
// only b_idx at its constant coefficient.
func ExtractAsRLWE(ct *Ciphertext, idx int) *Ciphertext {
	var a *Poly
	if idx == 0 {
		a = ct.A.Copy()
	} else {
		a = ct.A.MulMonomial(-idx)
	}
	b := NewPoly(ct.B.N(), ct.B.Q)
	b.Coeffs[0].Set(ct.B.Coeffs[idx])
	return &Ciphertext{B: b, A: a}
}

// PackedNode is the reference mirror of lwe.PackNode: both parts modulo
// the FULL basis with the division by the special modulus product
// deferred — the ciphertext it stands for is (ModDownTo(BT), ModDownTo(A)).
type PackedNode struct {
	BT *Poly
	A  *Poly
}

// DeferRLWE lifts a normal-basis ciphertext into deferred form:
// BT = P·b and A = P·a modulo the full basis — exact multiples of the
// special product P, so ModDownTo recovers b and a with zero rounding
// error (the mirror of lwe.ResidentFromRLWE).
func DeferRLWE(ct *Ciphertext, moduli []uint64, normalLevels int) *PackedNode {
	fullQ := ModulusProduct(moduli)
	pProd := ModulusProduct(moduli[normalLevels:])
	lift := func(p *Poly) *Poly {
		out := NewPoly(p.N(), fullQ)
		for i, c := range p.Coeffs {
			out.Coeffs[i].Mul(c, pProd)
			out.Coeffs[i].Mod(out.Coeffs[i], fullQ)
		}
		return out
	}
	return &PackedNode{BT: lift(ct.B), A: lift(ct.A)}
}

// FlushDeferred applies the tree's deferred divisions (one per part),
// leaving a normal-basis ciphertext (the mirror of lwe.FlushInto).
func FlushDeferred(nd *PackedNode, moduli []uint64, normalLevels int) *Ciphertext {
	return &Ciphertext{
		B: ModDownTo(nd.BT, moduli, normalLevels),
		A: ModDownTo(nd.A, moduli, normalLevels),
	}
}

// PackTwoDeferred merges two deferred groups of size i (Alg. 2, deferred
// schedule): the sum/difference/automorphism arithmetic runs on both
// full-basis parts, the switch reads the TRUE a-part of the gathered
// difference (its one per-merge rescale), and both key-switch
// contributions join the accumulators un-rescaled — exactly the per-merge
// work of lwe.PackTwoResident.
func PackTwoDeferred(i int, E, O *PackedNode, swk *SwitchingKey, moduli []uint64, normalLevels int) *PackedNode {
	n := E.A.N()
	z := n / (2 * i)
	k := 2*i + 1
	sBT := O.BT.MulMonomial(z)
	sA := O.A.MulMonomial(z)
	phiBT := E.BT.Sub(sBT).Automorph(k)
	aTrue := ModDownTo(E.A.Sub(sA).Automorph(k), moduli, normalLevels)
	c0, c1 := KeySwitchDeferred(aTrue, swk, moduli, normalLevels)
	return &PackedNode{
		BT: E.BT.Add(sBT).Add(phiBT).Add(c0),
		A:  E.A.Add(sA).Add(c1),
	}
}

// PackTwo merges two packed groups of size i (Alg. 2):
//
//	out = (ct_e + X^{N/2i}·ct_o) + φ_{2i+1}(ct_e - X^{N/2i}·ct_o),
//
// with the automorphism realised homomorphically through swk (the key for
// k = 2i+1). moduli is the full basis; the ciphertexts live on the normal
// prefix of normalLevels limbs. A single merge's deferred divisions are
// exact (the leaves enter as P·b and P·a), so this equals the eager
// schedule bit for bit.
func PackTwo(i int, ctE, ctO *Ciphertext, swk *SwitchingKey, moduli []uint64, normalLevels int) *Ciphertext {
	e := DeferRLWE(ctE, moduli, normalLevels)
	o := DeferRLWE(ctO, moduli, normalLevels)
	return FlushDeferred(PackTwoDeferred(i, e, o, swk, moduli, normalLevels), moduli, normalLevels)
}

// PackDeferred folds m = len(nodes) deferred nodes into one (Alg. 3,
// deferred schedule), using the same level order as the optimized
// iterative tree: level with group size i merges pair (j, j+count/2).
// The b-part rounding order matters here — one division per tree, not per
// merge — so matching lwe.PackResident's schedule keeps the
// correspondence bit-exact, not just plaintext-exact. keys maps the
// automorphism index 2i+1 to its reference switching key.
func PackDeferred(nodes []*PackedNode, keys map[int]*SwitchingKey, moduli []uint64, normalLevels int) (*PackedNode, error) {
	m := len(nodes)
	if m < 1 || m&(m-1) != 0 {
		return nil, fmt.Errorf("ref: cannot pack %d ciphertexts (need a power of two)", m)
	}
	buf := make([]*PackedNode, m)
	copy(buf, nodes)
	count := m
	for i := 1; i < m; i <<= 1 {
		half := count / 2
		swk := keys[2*i+1]
		if swk == nil {
			return nil, fmt.Errorf("ref: missing packing key for k=%d", 2*i+1)
		}
		for j := 0; j < half; j++ {
			buf[j] = PackTwoDeferred(i, buf[j], buf[j+half], swk, moduli, normalLevels)
		}
		count = half
	}
	return buf[0], nil
}

// PackCiphertexts folds m = len(cts) slot ciphertexts into one (Alg. 3):
// each leaf enters the deferred tree as an exact P·(b, a) lift and the
// flush divisions run at the root.
func PackCiphertexts(cts []*Ciphertext, keys map[int]*SwitchingKey, moduli []uint64, normalLevels int) (*Ciphertext, error) {
	nodes := make([]*PackedNode, len(cts))
	for j, ct := range cts {
		nodes[j] = DeferRLWE(ct, moduli, normalLevels)
	}
	root, err := PackDeferred(nodes, keys, moduli, normalLevels)
	if err != nil {
		return nil, err
	}
	return FlushDeferred(root, moduli, normalLevels), nil
}

// ZeroCiphertext returns an all-zero ciphertext modulo q.
func ZeroCiphertext(n int, q *big.Int) *Ciphertext {
	return &Ciphertext{B: NewPoly(n, q), A: NewPoly(n, q)}
}
