package ref

import (
	"fmt"
	"math/big"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// End-to-end reference HMVP (Alg. 1): the same tiling, encoding, per-row
// dot product, scalar-extracted RESCALE, and packing tree as the optimized
// core.Evaluator, evaluated entirely in big-integer arithmetic. The output
// must match core.MatVec / PreparedMatrix.Apply bit for bit after
// decomposition back to RNS.

// Trace records every stage boundary of one reference HMVP, so tests can
// decrypt intermediate results and check noise invariants per stage.
type Trace struct {
	// VectorNTTInput is the composed form of each input vector chunk
	// (stage 0: the fresh augmented ciphertexts).
	Vector []*Ciphertext
	// Slots[tile][row] is the extracted slot ciphertext after stages 1–4
	// (dot product, rescale, extraction), normal basis.
	Slots [][]*Ciphertext
	// Packed[tile] is the final packed ciphertext after stages 5–9.
	Packed []*Ciphertext
}

// Keys converts the optimized packing keys into reference form once.
func Keys(p bfv.Params, keys *lwe.PackingKeys) map[int]*SwitchingKey {
	full := fullModuli(p)
	out := make(map[int]*SwitchingKey, len(keys.Keys))
	for k, swk := range keys.Keys {
		out[k] = ComposeSwitchingKey(p.R, swk, full)
	}
	return out
}

func fullModuli(p bfv.Params) []uint64 {
	out := make([]uint64, p.R.Levels())
	for l, m := range p.R.Moduli {
		out[l] = m.Q
	}
	return out
}

// ComposeSecret composes the secret key over the first `levels` limbs.
func ComposeSecret(p bfv.Params, sk *rlwe.SecretKey, levels int) *Poly {
	trunc := &ring.Poly{Coeffs: sk.Value.Coeffs[:levels], IsNTT: sk.Value.IsNTT}
	return Compose(trunc, fullModuli(p)[:levels])
}

// encodeRow builds the lifted dot-product multiplier of Eq. 1 for one row
// chunk directly over the full modulus: pt^(A_i) = s·A_{i,0} -
// s·Σ_{j≥1} A_{i,j}X^{N-j} with every coefficient reduced mod t, centred,
// and embedded modulo fullQ. scale s is the packing compensation 2^{-ℓ}.
func encodeRow(row []uint64, n int, t uint64, scale *big.Int, fullQ *big.Int) *Poly {
	out := NewPoly(n, fullQ)
	tB := new(big.Int).SetUint64(t)
	set := func(pos int, val uint64, negate bool) {
		c := new(big.Int).SetUint64(val)
		c.Mod(c, tB)
		if negate {
			c.Neg(c)
		}
		c.Mul(c, scale)
		c.Mod(c, tB)
		// Centred lift: residues above t/2 wrap to small negatives.
		if c.Uint64() > t/2 {
			c.Sub(c, tB)
		}
		out.Coeffs[pos].Mod(c, fullQ)
	}
	set(0, row[0], false)
	for j := 1; j < len(row); j++ {
		set(n-j, row[j], true)
	}
	return out
}

// HMVP computes the full reference matrix-vector product: A is the
// cleartext matrix (row-major), ctV the augmented-basis coefficient-domain
// vector ciphertexts from core.EncryptVector, and keys the packing keys in
// reference form (from Keys). It mirrors core.Evaluator's tiling exactly.
func HMVP(p bfv.Params, A [][]uint64, ctV []*rlwe.Ciphertext, keys map[int]*SwitchingKey) (*Trace, error) {
	n := p.R.N
	m := len(A)
	if m == 0 {
		return nil, fmt.Errorf("ref: empty matrix")
	}
	cols := len(A[0])
	chunks := (cols + n - 1) / n
	if chunks != len(ctV) {
		return nil, fmt.Errorf("ref: matrix has %d column chunks but vector has %d ciphertexts", chunks, len(ctV))
	}
	full := fullModuli(p)
	normal := full[:p.NormalLevels]
	fullQ := ModulusProduct(full)
	normalQ := ModulusProduct(normal)
	tB := new(big.Int).SetUint64(p.T.Q)

	tr := &Trace{}
	for c, ct := range ctV {
		if ct.Levels() != len(full) {
			return nil, fmt.Errorf("ref: vector ciphertext %d must carry the augmented basis", c)
		}
		if ct.IsNTT() {
			return nil, fmt.Errorf("ref: vector ciphertext %d must be in coefficient domain", c)
		}
		tr.Vector = append(tr.Vector, ComposeCiphertext(ct.B, ct.A, full))
	}

	for base := 0; base < m; base += n {
		rows := m - base
		if rows > n {
			rows = n
		}
		mPad := nextPow2(rows)
		// scale = 2^{-ℓ} mod t, ℓ = log2(mPad).
		l := 0
		for 1<<l < mPad {
			l++
		}
		scale := new(big.Int).ModInverse(
			new(big.Int).Exp(big.NewInt(2), big.NewInt(int64(l)), tB), tB)

		slots := make([]*Ciphertext, 0, mPad)
		nodes := make([]*PackedNode, 0, mPad)
		for i := 0; i < rows; i++ {
			row := A[base+i]
			accB := NewPoly(n, fullQ)
			accA := NewPoly(n, fullQ)
			for c := 0; c < chunks; c++ {
				lo, hi := c*n, (c+1)*n
				if hi > cols {
					hi = cols
				}
				pt := encodeRow(row[lo:hi], n, p.T.Q, scale, fullQ)
				accB = accB.Add(pt.Mul(tr.Vector[c].B))
				accA = accA.Add(pt.Mul(tr.Vector[c].A))
			}
			// Stage 4: the B-part survives only at its constant coefficient
			// (extraction at index 0). BOTH leaf divisions are DEFERRED:
			// the tree leaf keeps the un-rescaled full-basis constant β and
			// the raw full-basis a accumulator (exactly core's NTT-resident
			// leaf), while the trace's slot view holds the rescaled forms
			// for per-stage noise diagnostics.
			a := ModDownTo(accA, full, p.NormalLevels)
			bt := NewPoly(n, fullQ)
			bt.Coeffs[0].Set(accB.Coeffs[0])
			nodes = append(nodes, &PackedNode{BT: bt, A: accA})

			beta := new(big.Int).Set(accB.Coeffs[0])
			for lv := len(full); lv > p.NormalLevels; lv-- {
				beta = ModDownScalar(beta, full[lv-1], ModulusProduct(full[:lv-1]))
			}
			b := NewPoly(n, normalQ)
			b.Coeffs[0].Set(beta)
			slots = append(slots, &Ciphertext{B: b, A: a})
		}
		for len(nodes) < mPad {
			nodes = append(nodes, &PackedNode{BT: NewPoly(n, fullQ), A: NewPoly(n, fullQ)})
		}
		tr.Slots = append(tr.Slots, slots[:rows])

		root, err := PackDeferred(nodes, keys, full, p.NormalLevels)
		if err != nil {
			return nil, err
		}
		tr.Packed = append(tr.Packed, FlushDeferred(root, full, p.NormalLevels))
	}
	return tr, nil
}

// MatchesResult reports whether the reference packed ciphertexts decompose
// exactly to the optimized result's RNS residues; on mismatch it returns a
// description of the first differing tile.
func (tr *Trace) MatchesResult(p bfv.Params, packed []*rlwe.Ciphertext) error {
	if len(packed) != len(tr.Packed) {
		return fmt.Errorf("ref: %d tiles, optimized produced %d", len(tr.Packed), len(packed))
	}
	normal := fullModuli(p)[:p.NormalLevels]
	for ti, want := range tr.Packed {
		got := packed[ti]
		if !want.B.MatchesRNS(got.B, normal) {
			return fmt.Errorf("ref: tile %d B-part differs from optimized pipeline", ti)
		}
		if !want.A.MatchesRNS(got.A, normal) {
			return fmt.Errorf("ref: tile %d A-part differs from optimized pipeline", ti)
		}
	}
	return nil
}

// DecryptResult reads the packed values back out of the reference trace:
// value i of tile ti sits at coefficient i·(N/mPad).
func (tr *Trace) DecryptResult(p bfv.Params, sk *rlwe.SecretKey) []uint64 {
	s := ComposeSecret(p, sk, p.NormalLevels)
	var out []uint64
	for ti, ct := range tr.Packed {
		rows := len(tr.Slots[ti])
		stride := p.R.N / nextPow2(rows)
		for i := 0; i < rows; i++ {
			out = append(out, DecryptCoeff(ct, s, p.T.Q, i*stride))
		}
	}
	return out
}

func nextPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}
