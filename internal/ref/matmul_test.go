package ref

import (
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/testutil"
)

// TestMatMulHandChecked pins a small case computed by hand.
func TestMatMulHandChecked(t *testing.T) {
	const mod = 17
	A := [][]uint64{{1, 2}, {3, 4}}
	B := [][]uint64{{5, 6}, {7, 8}}
	C, err := MatMul(mod, A, B)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{19 % mod, 22 % mod}, {43 % mod, 50 % mod}}
	for i := range want {
		for j := range want[i] {
			if C[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, C[i][j], want[i][j])
			}
		}
	}
}

// TestMatMulAgainstPlainMatVec: every column of MatMul must equal the
// core package's cleartext mat-vec of that column — the same invariant
// the encrypted tier relies on (a matmul is one HMVP per column).
func TestMatMulAgainstPlainMatVec(t *testing.T) {
	p, err := bfv.NewChamParams(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := testutil.NewRand(t)
	A := testutil.Matrix(rng, 9, 13, p.T.Q)
	B := testutil.Matrix(rng, 13, 5, p.T.Q)
	C, err := MatMul(p.T.Q, A, B)
	if err != nil {
		t.Fatal(err)
	}
	Bt := Transpose(B)
	for j := 0; j < 5; j++ {
		want := core.PlainMatVec(p, A, Bt[j])
		for i := range want {
			if C[i][j] != want[i] {
				t.Fatalf("column %d row %d: %d want %d", j, i, C[i][j], want[i])
			}
		}
	}
}

// TestMatMulShapeErrors: ragged and mismatched inputs are rejected.
func TestMatMulShapeErrors(t *testing.T) {
	if _, err := MatMul(17, nil, nil); err == nil {
		t.Error("empty A: no error")
	}
	if _, err := MatMul(17, [][]uint64{{1, 2}}, [][]uint64{{1}}); err == nil {
		t.Error("inner mismatch: no error")
	}
	if _, err := MatMul(17, [][]uint64{{1, 2}, {3}}, [][]uint64{{1}, {2}}); err == nil {
		t.Error("ragged A: no error")
	}
	if _, err := MatMul(17, [][]uint64{{1}}, [][]uint64{{1, 2}, {3}}); err == nil {
		t.Error("ragged B: no error")
	}
}

// TestTransposeRoundTrip: Transpose∘Transpose is the identity.
func TestTransposeRoundTrip(t *testing.T) {
	rng := testutil.NewRand(t)
	A := testutil.Matrix(rng, 4, 7, 1<<16)
	At := Transpose(A)
	if len(At) != 7 || len(At[0]) != 4 {
		t.Fatalf("transpose shape %dx%d, want 7x4", len(At), len(At[0]))
	}
	Att := Transpose(At)
	for i := range A {
		for j := range A[i] {
			if Att[i][j] != A[i][j] {
				t.Fatalf("round trip differs at %d,%d", i, j)
			}
		}
	}
}
