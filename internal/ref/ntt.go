package ref

import (
	"math/big"
	"math/bits"
)

// Naive DFT-style reference transforms, written directly from the
// definition the ntt package documents: the forward negacyclic NTT
// evaluates the polynomial at the odd powers ψ^(2k+1) of the primitive
// 2N-th root ψ and stores evaluation k at the bit-reversed index brv(k);
// the inverse interpolates back, including the N^{-1} scaling. Everything
// runs in O(N²) big-integer arithmetic.

func brv(x uint, width int) uint {
	return uint(bits.Reverse64(uint64(x)) >> (64 - width))
}

// ForwardDFT returns the negacyclic NTT of a modulo q with primitive 2N-th
// root psi: out[brv(k)] = Σ_n a_n·ψ^{(2k+1)n} mod q.
func ForwardDFT(a []uint64, q, psi uint64) []uint64 {
	n := len(a)
	logN := bits.Len(uint(n)) - 1
	qB := new(big.Int).SetUint64(q)
	psiB := new(big.Int).SetUint64(psi)
	out := make([]uint64, n)
	acc := new(big.Int)
	term := new(big.Int)
	pw := new(big.Int)
	x := new(big.Int)
	for k := 0; k < n; k++ {
		// Evaluation point ψ^(2k+1).
		x.Exp(psiB, new(big.Int).SetInt64(int64(2*k+1)), qB)
		acc.SetInt64(0)
		pw.SetInt64(1)
		for i := 0; i < n; i++ {
			term.SetUint64(a[i])
			term.Mul(term, pw)
			acc.Add(acc, term)
			pw.Mul(pw, x)
			pw.Mod(pw, qB)
		}
		acc.Mod(acc, qB)
		out[brv(uint(k), logN)] = acc.Uint64()
	}
	return out
}

// InverseDFT inverts ForwardDFT: given â with â[brv(k)] = a(ψ^{2k+1}),
// it recovers a_i = N^{-1}·Σ_k â[brv(k)]·ψ^{-(2k+1)i} mod q.
func InverseDFT(ahat []uint64, q, psi uint64) []uint64 {
	n := len(ahat)
	logN := bits.Len(uint(n)) - 1
	qB := new(big.Int).SetUint64(q)
	psiB := new(big.Int).SetUint64(psi)
	psiInv := new(big.Int).ModInverse(psiB, qB)
	nInv := new(big.Int).ModInverse(new(big.Int).SetInt64(int64(n)), qB)
	out := make([]uint64, n)
	acc := new(big.Int)
	term := new(big.Int)
	pw := new(big.Int)
	step := new(big.Int)
	for i := 0; i < n; i++ {
		// ψ^{-(2k+1)i} starts at ψ^{-i} for k=0 and advances by ψ^{-2i}.
		pw.Exp(psiInv, new(big.Int).SetInt64(int64(i)), qB)
		step.Exp(psiInv, new(big.Int).SetInt64(int64(2*i)), qB)
		acc.SetInt64(0)
		for k := 0; k < n; k++ {
			term.SetUint64(ahat[brv(uint(k), logN)])
			term.Mul(term, pw)
			acc.Add(acc, term)
			pw.Mul(pw, step)
			pw.Mod(pw, qB)
		}
		acc.Mul(acc, nInv)
		acc.Mod(acc, qB)
		out[i] = acc.Uint64()
	}
	return out
}
