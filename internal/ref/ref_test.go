package ref

import (
	"math/big"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/ring"
	"cham/internal/testutil"
)

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func moduliOf(r *ring.Ring) []uint64 {
	out := make([]uint64, r.Levels())
	for l, m := range r.Moduli {
		out[l] = m.Q
	}
	return out
}

// TestComposeDecomposeRoundTrip: Compose must invert Decompose and agree
// with the ring's own CRT reconstruction.
func TestComposeDecomposeRoundTrip(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	r := ring.MustNew(32, mod.ChamModuli())
	ms := moduliOf(r)
	for trial := 0; trial < 10; trial++ {
		p := r.NewPoly(r.Levels())
		r.UniformPoly(rng, p)
		big := Compose(p, ms)
		if !big.MatchesRNS(p, ms) {
			t.Fatal("Decompose(Compose(p)) != p")
		}
		// Cross-check against ring.ToBigIntCentered.
		cent := r.ToBigIntCentered(p, r.Levels())
		for i := range cent {
			if big.Centered(i).Cmp(cent[i]) != 0 {
				t.Fatalf("coeff %d: ref centred %v, ring centred %v", i, big.Centered(i), cent[i])
			}
		}
	}
}

// TestNegacyclicMulMatchesRing: the big.Int schoolbook product must match
// both the NTT-based ring product and the per-limb uint64 schoolbook.
func TestNegacyclicMulMatchesRing(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	r := ring.MustNew(32, mod.ChamModuli())
	ms := moduliOf(r)
	for trial := 0; trial < 10; trial++ {
		a := r.NewPoly(r.Levels())
		b := r.NewPoly(r.Levels())
		r.UniformPoly(rng, a)
		r.UniformPoly(rng, b)
		out := r.NewPoly(r.Levels())
		r.MulPoly(out, a, b)
		got := Compose(a, ms).Mul(Compose(b, ms))
		if !got.MatchesRNS(out, ms) {
			t.Fatalf("trial %d: big.Int product differs from ring.MulPoly", trial)
		}
		for l := range ms {
			naive := ntt.NaiveNegacyclicMul(r.Moduli[l], a.Coeffs[l], b.Coeffs[l])
			rows := Decompose(got, ms)
			for i := range naive {
				if naive[i] != rows[l][i] {
					t.Fatalf("trial %d limb %d coeff %d: naive %d, ref %d", trial, l, i, naive[i], rows[l][i])
				}
			}
		}
	}
}

// TestMulKroneckerMatchesSchoolbook: the Kronecker-substitution fast path
// must agree with the plain schoolbook loop on dense random operands, at
// sizes on both sides of the dispatch threshold.
func TestMulKroneckerMatchesSchoolbook(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	r := ring.MustNew(32, mod.ChamModuli())
	ms := moduliOf(r)
	q := ModulusProduct(ms)
	for _, n := range []int{4, 32, 128} {
		for trial := 0; trial < 5; trial++ {
			a := NewPoly(n, q)
			b := NewPoly(n, q)
			for i := 0; i < n; i++ {
				a.Coeffs[i].Rand(rng, q)
				b.Coeffs[i].Rand(rng, q)
			}
			school := a.Mul(b) // below threshold: schoolbook path
			kron := a.mulKronecker(b)
			if !school.Equal(kron) {
				t.Fatalf("n=%d trial %d: Kronecker product differs from schoolbook", n, trial)
			}
		}
	}
}

// TestDFTMatchesTable: ForwardDFT/InverseDFT must agree with the optimized
// transforms (strict, lazy, and constant-geometry) bit for bit.
func TestDFTMatchesTable(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	for _, n := range []int{4, 16, 64} {
		for _, q := range mod.ChamModuli() {
			tb := ntt.MustTable(n, q)
			a := make([]uint64, n)
			for i := range a {
				a[i] = rng.Uint64() % q
			}
			want := ForwardDFT(a, q, tb.Psi)
			got := append([]uint64(nil), a...)
			tb.Forward(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("N=%d q=%d: Forward[%d]=%d, DFT=%d", n, q, i, got[i], want[i])
				}
			}
			back := InverseDFT(want, q, tb.Psi)
			for i := range back {
				if back[i] != a[i] {
					t.Fatalf("N=%d q=%d: InverseDFT[%d]=%d, want %d", n, q, i, back[i], a[i])
				}
			}
		}
	}
}

// TestModDownMatchesRing: the exact rounding division must match the RNS
// RESCALE limb formula.
func TestModDownMatchesRing(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	r := ring.MustNew(32, mod.ChamModuli())
	ms := moduliOf(r)
	for trial := 0; trial < 10; trial++ {
		p := r.NewPoly(r.Levels())
		r.UniformPoly(rng, p)
		want := r.ModDown(p)
		got := ModDown(Compose(p, ms), ms)
		if !got.MatchesRNS(want, ms[:len(ms)-1]) {
			t.Fatalf("trial %d: ref ModDown differs from ring.ModDown", trial)
		}
	}
}

// TestKeySwitchMatchesRlwe: the digit-decomposed big.Int key switch must
// reproduce rlwe.KeySwitch exactly, including the Shoup fast path.
func TestKeySwitchMatchesRlwe(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	p := testParams(t, 32)
	ms := moduliOf(p.R)
	sk := p.KeyGen(rng)
	sk2 := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, sk2.Value)
	refKey := ComposeSwitchingKey(p.R, swk, ms)
	for trial := 0; trial < 4; trial++ {
		ct := p.Encrypt(rng, sk2, p.EncodeVector(testutil.Vector(rng, p.R.N, p.T.Q)), p.NormalLevels)
		want := p.KeySwitch(ct, swk)
		b, a := KeySwitch(Compose(ct.A, ms[:p.NormalLevels]), refKey, ms, p.NormalLevels)
		got := &Ciphertext{B: b.Add(Compose(ct.B, ms[:p.NormalLevels])), A: a}
		if !got.B.MatchesRNS(want.B, ms[:p.NormalLevels]) || !got.A.MatchesRNS(want.A, ms[:p.NormalLevels]) {
			t.Fatalf("trial %d: ref key switch differs from rlwe.KeySwitch", trial)
		}
	}
}

// TestPackMatchesLwe: extraction and the packing tree must match the
// optimized lwe path ciphertext-for-ciphertext.
func TestPackMatchesLwe(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	p := testParams(t, 32)
	ms := moduliOf(p.R)
	normal := ms[:p.NormalLevels]
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	refKeys := make(map[int]*SwitchingKey)
	for k, swk := range keys.Keys {
		refKeys[k] = ComposeSwitchingKey(p.R, swk, ms)
	}

	ct := p.Encrypt(rng, sk, p.EncodeVector(testutil.Vector(rng, p.R.N, p.T.Q)), p.NormalLevels)
	refCt := ComposeCiphertext(ct.B, ct.A, normal)

	// Extraction must agree at every index.
	for _, idx := range []int{0, 1, p.R.N / 2, p.R.N - 1} {
		cts := lwe.Extract(p, ct, idx).AsRLWE(p)
		got := ExtractAsRLWE(refCt, idx)
		if !got.A.MatchesRNS(cts.A, normal) {
			t.Fatalf("extract idx %d: A-part differs", idx)
		}
		// AsRLWE keeps only beta at coefficient 0, same as the fused form.
		if got.B.Coeffs[0].Cmp(Compose(cts.B, normal).Coeffs[0]) != 0 {
			t.Fatalf("extract idx %d: beta differs", idx)
		}
	}

	// Full tree: pack 8 extractions both ways.
	var optimized []*lwe.Ciphertext
	var reference []*Ciphertext
	for i := 0; i < 8; i++ {
		optimized = append(optimized, lwe.Extract(p, ct, i))
		reference = append(reference, ExtractAsRLWE(refCt, i))
	}
	want, err := lwe.PackLWEs(p, optimized, keys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PackCiphertexts(reference, refKeys, ms, p.NormalLevels)
	if err != nil {
		t.Fatal(err)
	}
	if !got.B.MatchesRNS(want.B, normal) || !got.A.MatchesRNS(want.A, normal) {
		t.Fatal("ref packing tree differs from lwe.PackLWEs")
	}
}

// TestHMVPMatchesCore: the end-to-end reference HMVP must match
// core.MatVec bit for bit and decrypt to the cleartext product, at several
// small dense shapes.
func TestHMVPMatchesCore(t *testing.T) {
	t.Parallel()
	rng := testutil.NewRand(t)
	p := testParams(t, 32)
	sk := p.KeyGen(rng)
	ev, err := core.NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	refKeys := Keys(p, ev.Keys)
	for _, s := range []struct{ m, n int }{{1, 32}, {2, 20}, {3, 40}, {5, 70}} {
		A := testutil.Matrix(rng, s.m, s.n, p.T.Q)
		v := testutil.Vector(rng, s.n, p.T.Q)
		ctV := core.EncryptVector(p, rng, sk, v)
		res, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := HMVP(p, A, ctV, refKeys)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.MatchesResult(p, res.Packed); err != nil {
			t.Fatalf("%dx%d: %v", s.m, s.n, err)
		}
		want := core.PlainMatVec(p, A, v)
		got := tr.DecryptResult(p, sk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d row %d: ref decrypts %d, want %d", s.m, s.n, i, got[i], want[i])
			}
		}
	}
}

// TestRoundToT pins the decryption rounding convention on hand-computed
// values.
func TestRoundToT(t *testing.T) {
	t.Parallel()
	q := big.NewInt(1000)
	if got := RoundToT(big.NewInt(300), q, 10); got != 3 {
		t.Fatalf("RoundToT(300/1000·10) = %d, want 3", got)
	}
	if got := RoundToT(big.NewInt(-100), q, 10); got != 9 {
		t.Fatalf("RoundToT(-100/1000·10) = %d, want 9", got)
	}
	if got := RoundToT(big.NewInt(349), q, 10); got != 3 {
		t.Fatalf("round-down case = %d, want 3", got)
	}
	if got := RoundToT(big.NewInt(350), q, 10); got != 4 {
		t.Fatalf("round-half-up case = %d, want 4", got)
	}
}

// TestAutomorphNTTMatchesRef: the ring's NTT-slot permutation tables
// (ring.AutomorphNTT, the gather the resident tree runs per merge) must
// agree with the big-integer reference automorphism for every k = 2i+1
// the packing tree uses, at both the test and production ring degrees.
func TestAutomorphNTTMatchesRef(t *testing.T) {
	t.Parallel()
	for _, n := range []int{256, 4096} {
		p := testParams(t, n)
		r := p.R
		ms := moduliOf(r)
		rng := testutil.NewRand(t)
		a := r.NewPoly(r.Levels())
		r.UniformPoly(rng, a)
		want := Compose(a, ms)
		aHat := r.NewPoly(r.Levels())
		aHat.CopyFrom(a)
		r.NTT(aHat)
		got := r.NewPoly(r.Levels())
		for i := 1; i < n; i <<= 1 {
			k := 2*i + 1
			r.AutomorphNTT(got, aHat, k)
			r.INTT(got)
			if !want.Automorph(k).MatchesRNS(got, ms) {
				t.Fatalf("N=%d k=%d: AutomorphNTT differs from ref.Automorph", n, k)
			}
		}
	}
}
