// Package ref is a slow-but-obviously-correct reference model of the whole
// CHAM software stack, built on math/big integers instead of 64-bit RNS
// residues. Every operation is written from the textbook definition:
// schoolbook negacyclic convolution, naive DFT-style transforms, CRT basis
// compose/decompose, exact rounding division for RESCALE, digit-decomposed
// key switching, LWE extraction, and the PackTwoLWEs/PackLWEs tree — ending
// in an end-to-end HMVP whose outputs must match the optimized
// ring/rlwe/bfv/lwe/core pipeline bit for bit.
//
// Nothing here is meant to be fast. The only concession to speed is that
// the schoolbook convolution skips zero coefficients of its first operand
// (skipping a zero term is still the definition) and splits independent
// output coefficients across goroutines; both leave results exactly equal
// to the serial textbook loop.
package ref

import (
	"math/big"
	"math/bits"
	"runtime"
	"sync"
)

// Poly is a negacyclic polynomial over Z_Q[X]/(X^N+1) with every
// coefficient held as a big integer reduced into [0, Q).
type Poly struct {
	Coeffs []*big.Int
	Q      *big.Int
}

// NewPoly returns the zero polynomial of degree bound n modulo q.
func NewPoly(n int, q *big.Int) *Poly {
	p := &Poly{Coeffs: make([]*big.Int, n), Q: new(big.Int).Set(q)}
	for i := range p.Coeffs {
		p.Coeffs[i] = new(big.Int)
	}
	return p
}

// Copy deep-copies p.
func (p *Poly) Copy() *Poly {
	o := &Poly{Coeffs: make([]*big.Int, len(p.Coeffs)), Q: new(big.Int).Set(p.Q)}
	for i := range p.Coeffs {
		o.Coeffs[i] = new(big.Int).Set(p.Coeffs[i])
	}
	return o
}

// N returns the degree bound.
func (p *Poly) N() int { return len(p.Coeffs) }

// SetCoeff sets coefficient i to v mod Q (v may be negative).
func (p *Poly) SetCoeff(i int, v *big.Int) {
	p.Coeffs[i].Mod(v, p.Q)
}

// Equal reports whether p and o agree coefficient-wise (and share Q).
func (p *Poly) Equal(o *Poly) bool {
	if p.Q.Cmp(o.Q) != 0 || len(p.Coeffs) != len(o.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if p.Coeffs[i].Cmp(o.Coeffs[i]) != 0 {
			return false
		}
	}
	return true
}

// Add returns p + o mod Q.
func (p *Poly) Add(o *Poly) *Poly {
	out := NewPoly(len(p.Coeffs), p.Q)
	for i := range p.Coeffs {
		out.Coeffs[i].Add(p.Coeffs[i], o.Coeffs[i])
		out.Coeffs[i].Mod(out.Coeffs[i], p.Q)
	}
	return out
}

// Sub returns p - o mod Q.
func (p *Poly) Sub(o *Poly) *Poly {
	out := NewPoly(len(p.Coeffs), p.Q)
	for i := range p.Coeffs {
		out.Coeffs[i].Sub(p.Coeffs[i], o.Coeffs[i])
		out.Coeffs[i].Mod(out.Coeffs[i], p.Q)
	}
	return out
}

// Neg returns -p mod Q.
func (p *Poly) Neg() *Poly {
	out := NewPoly(len(p.Coeffs), p.Q)
	for i := range p.Coeffs {
		out.Coeffs[i].Neg(p.Coeffs[i])
		out.Coeffs[i].Mod(out.Coeffs[i], p.Q)
	}
	return out
}

// IsZero reports whether every coefficient is zero.
func (p *Poly) IsZero() bool {
	for _, c := range p.Coeffs {
		if c.Sign() != 0 {
			return false
		}
	}
	return true
}

// Mul returns p·o mod (X^N+1, Q) by schoolbook negacyclic convolution:
//
//	out_k = Σ_{i+j=k} p_i·o_j - Σ_{i+j=k+N} p_i·o_j.
//
// Zero coefficients of p contribute nothing and are skipped; independent
// output coefficients are accumulated on separate goroutines. Both leave
// the result identical to the two-line textbook loop.
func (p *Poly) Mul(o *Poly) *Poly {
	n := len(p.Coeffs)
	out := NewPoly(n, p.Q)
	// Gather the non-zero support of p once; for sparse operands (matrix
	// rows, digit polynomials of zero ciphertexts) this collapses the work.
	support := make([]int, 0, n)
	for i, c := range p.Coeffs {
		if c.Sign() != 0 {
			support = append(support, i)
		}
	}
	if len(support) == 0 {
		return out
	}
	// For dense operands the schoolbook loop is quadratic in N; Kronecker
	// substitution computes the identical convolution through one big.Int
	// product (see mulKronecker). Tests assert both paths agree exactly.
	if len(support)*n >= 1<<18 {
		return p.mulKronecker(o)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			tmp := new(big.Int)
			for k := lo; k < hi; k++ {
				acc := out.Coeffs[k] // starts at zero
				for _, i := range support {
					// p_i pairs with o_j at j = k-i (positive term) or
					// j = k-i+N (negative wrap-around, X^N = -1).
					j := k - i
					if j >= 0 {
						tmp.Mul(p.Coeffs[i], o.Coeffs[j])
						acc.Add(acc, tmp)
					} else {
						tmp.Mul(p.Coeffs[i], o.Coeffs[j+n])
						acc.Sub(acc, tmp)
					}
				}
				acc.Mod(acc, p.Q)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulKronecker evaluates the same negacyclic convolution via Kronecker
// substitution: each polynomial is packed into a single huge integer with
// one fixed-width slot per coefficient, so the one big.Int multiplication
// computes every pairwise product, and slot k of the result is exactly the
// acyclic convolution sum Σ_{i+j=k} p_i·o_j (all terms non-negative, so
// slots never borrow). The negacyclic fold out_k = slot_k - slot_{k+N}
// then reduces modulo X^N + 1. Exactness needs only the slot width to
// exceed 2·bits(Q) + log2(N), which the width computation guarantees; the
// tests additionally assert bit-for-bit agreement with the schoolbook loop.
func (p *Poly) mulKronecker(o *Poly) *Poly {
	n := len(p.Coeffs)
	// Slot width in bytes: each slot holds at most n products of two
	// residues below Q, so 2·bits(Q) + log2(n) bits suffice; +2 bytes of
	// headroom keeps the bound comfortably strict.
	w := (2*p.Q.BitLen()+bits.Len(uint(n)))/8 + 2
	pack := func(x *Poly) *big.Int {
		buf := make([]byte, n*w)
		for i, c := range x.Coeffs {
			b := c.Bytes() // big-endian; right-align inside slot i
			end := len(buf) - i*w
			copy(buf[end-len(b):end], b)
		}
		return new(big.Int).SetBytes(buf)
	}
	z := new(big.Int).Mul(pack(p), pack(o))
	zb := z.Bytes()
	slot := func(i int) *big.Int {
		end := len(zb) - i*w
		if end <= 0 {
			return new(big.Int)
		}
		start := end - w
		if start < 0 {
			start = 0
		}
		return new(big.Int).SetBytes(zb[start:end])
	}
	out := NewPoly(n, p.Q)
	for k := 0; k < n; k++ {
		v := slot(k)
		v.Sub(v, slot(k+n))
		out.Coeffs[k].Mod(v, p.Q)
	}
	return out
}

// MulMonomial returns p·X^e for any integer e, with X^N = -1.
func (p *Poly) MulMonomial(e int) *Poly {
	n := len(p.Coeffs)
	e = ((e % (2 * n)) + 2*n) % (2 * n)
	out := NewPoly(n, p.Q)
	for i, c := range p.Coeffs {
		j := i + e
		v := new(big.Int).Set(c)
		if j >= 2*n {
			j -= 2 * n
		}
		if j >= n {
			j -= n
			v.Neg(v)
		}
		out.Coeffs[j].Mod(v, p.Q)
	}
	return out
}

// Automorph returns p(X^k) for odd k: coefficient i moves to exponent
// i·k mod 2N, with X^N = -1 folding the sign.
func (p *Poly) Automorph(k int) *Poly {
	n := len(p.Coeffs)
	n2 := 2 * n
	kk := ((k % n2) + n2) % n2
	out := NewPoly(n, p.Q)
	for i, c := range p.Coeffs {
		j := i * kk % n2
		v := new(big.Int).Set(c)
		if j >= n {
			j -= n
			v.Neg(v)
		}
		out.Coeffs[j].Mod(v, p.Q)
	}
	return out
}

// Centered returns the centred representative of coefficient i in
// (-Q/2, Q/2].
func (p *Poly) Centered(i int) *big.Int {
	half := new(big.Int).Rsh(p.Q, 1)
	v := new(big.Int).Set(p.Coeffs[i])
	if v.Cmp(half) > 0 {
		v.Sub(v, p.Q)
	}
	return v
}

// Ciphertext is the reference RLWE pair (B, A) over one composed modulus.
type Ciphertext struct {
	B, A *Poly
}

// Copy deep-copies the ciphertext.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{B: ct.B.Copy(), A: ct.A.Copy()}
}

// Equal reports component-wise equality.
func (ct *Ciphertext) Equal(o *Ciphertext) bool {
	return ct.B.Equal(o.B) && ct.A.Equal(o.A)
}

// Add returns the component-wise sum.
func (ct *Ciphertext) Add(o *Ciphertext) *Ciphertext {
	return &Ciphertext{B: ct.B.Add(o.B), A: ct.A.Add(o.A)}
}

// Sub returns the component-wise difference.
func (ct *Ciphertext) Sub(o *Ciphertext) *Ciphertext {
	return &Ciphertext{B: ct.B.Sub(o.B), A: ct.A.Sub(o.A)}
}

// MulMonomial multiplies both halves by X^e.
func (ct *Ciphertext) MulMonomial(e int) *Ciphertext {
	return &Ciphertext{B: ct.B.MulMonomial(e), A: ct.A.MulMonomial(e)}
}

// Phase returns B + A·s, the noisy payload, where s is the secret key as a
// polynomial modulo the ciphertext modulus.
func (ct *Ciphertext) Phase(s *Poly) *Poly {
	return ct.B.Add(ct.A.Mul(s))
}
