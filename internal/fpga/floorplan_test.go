package fpga

import (
	"strings"
	"testing"
)

// TestFloorplanRebalance reproduces §V-A: the initial BRAM-heavy plan
// exceeds the 75% ceiling; converting staging to URAM (and, if needed,
// twiddle ROMs to LUTRAM) brings every class under it.
func TestFloorplanRebalance(t *testing.T) {
	fp := InitialFloorplan(VU9P, ChamEngineConfig(), 2)
	if fp.Fits() {
		t.Fatal("initial floorplan should exceed the ceiling")
	}
	over := fp.Over()
	if len(over) != 1 || over[0] != "BRAM" {
		t.Fatalf("initial congestion on %v, want BRAM (the paper's account)", over)
	}
	if fp.Total.BRAM <= FullDesign(ChamEngineConfig(), 2).BRAM {
		t.Error("initial plan should use more BRAM than the final design")
	}
	if err := fp.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if !fp.Fits() {
		t.Fatal("rebalanced plan still over ceiling")
	}
	for k, v := range fp.utilOf() {
		if v > 75 {
			t.Errorf("%s at %.2f%% after rebalance", k, v)
		}
	}
	if len(fp.History) < 3 {
		t.Error("no rebalancing moves recorded")
	}
	moves := strings.Join(fp.History, "; ")
	if !strings.Contains(moves, "URAM") {
		t.Error("expected staging-to-URAM moves")
	}
}

// TestFloorplanImpossible: a device with no URAM headroom and no ROM
// candidates must fail loudly rather than loop.
func TestFloorplanImpossible(t *testing.T) {
	tiny := VU9P
	tiny.Total.URAM = 600 // barely above the design's 595: no headroom
	fp := InitialFloorplan(tiny, ChamEngineConfig(), 2)
	fp.romBRAM = 0 // and no ROM conversion candidates either
	if err := fp.Rebalance(); err == nil {
		t.Fatal("impossible rebalance reported success")
	}
}

// TestFloorplanROMFallback: when URAM is exhausted, the rebalancer falls
// back to LUTRAM conversions of the twiddle ROMs.
func TestFloorplanROMFallback(t *testing.T) {
	constrained := VU9P
	constrained.Total.URAM = 764 // room for only ~50 staging moves
	fp := InitialFloorplan(constrained, ChamEngineConfig(), 2)
	if err := fp.Rebalance(); err != nil {
		t.Fatalf("ROM fallback failed: %v", err)
	}
	moves := strings.Join(fp.History, "; ")
	if !strings.Contains(moves, "LUTRAM") {
		t.Error("expected twiddle-ROM-to-LUTRAM moves under URAM pressure")
	}
}

// TestFloorplanNonBRAMCongestion: congestion on a class the moves cannot
// fix is reported.
func TestFloorplanNonBRAMCongestion(t *testing.T) {
	small := VU9P
	small.Total.DSP = 2000 // 1986 used: 99%
	fp := InitialFloorplan(small, ChamEngineConfig(), 2)
	err := fp.Rebalance()
	if err == nil || !strings.Contains(err.Error(), "DSP") {
		t.Fatalf("DSP congestion not reported: %v", err)
	}
}
