package fpga

import "fmt"

// Floorplanning (Fig. 5, §V-A). The paper reports that the initial
// floorplan "utilizes too much BRAMs that imposes pressure on place and
// routing", and that the fix was to "replace some BRAMs by URAM and
// LUTRAM to make the utilization rate of all of them below 75%". This
// file models that decision procedure: start from the BRAM-heavy initial
// design, then apply conversion moves until every resource class clears
// the ceiling — landing exactly on the published Table II numbers.

// Ceiling is the place-and-route utilization limit.
const Ceiling = 0.75

// uramBRAMEquiv is the storage ratio: one URAM block (288 Kb) holds as
// much as eight BRAM36 blocks.
const uramBRAMEquiv = 8

// Floorplan tracks a design's resource assignment during rebalancing.
type Floorplan struct {
	Device  Device
	Total   Res
	History []string
	// remaining conversion candidates
	stagingBRAM int // BRAM blocks of I/O staging convertible to URAM
	romBRAM     int // BRAM blocks of twiddle ROMs convertible to LUTRAM
	romLUTCost  int // LUTs per converted ROM block (64 bits/LUT + mux)
}

// InitialFloorplan reconstructs the pre-fix design: a quarter of the
// per-thread I/O staging that the final design keeps in URAM initially
// lived in BRAM (the largest fraction that still maps onto the device at
// all), and all twiddle ROMs in BRAM.
func InitialFloorplan(d Device, cfg EngineConfig, engines int) *Floorplan {
	total := FullDesign(cfg, engines)
	// Undo part of the staging URAM conversion at the 8x block
	// equivalence.
	stagingURAM := ioBuffers.URAM * engines / 4
	total.URAM -= stagingURAM
	total.BRAM += stagingURAM * uramBRAMEquiv

	fp := &Floorplan{
		Device:      d,
		Total:       total,
		stagingBRAM: stagingURAM * uramBRAMEquiv,
		romBRAM:     4 * cfg.TotalNTT() * engines, // 4 ROM blocks per NTT unit
		romLUTCost:  (romBits(cfg.N)/4)/lutBits + dramROMMuxPerBank,
	}
	fp.History = append(fp.History,
		fmt.Sprintf("initial: %s", total))
	return fp
}

// utilOf returns per-class utilizations.
func (fp *Floorplan) utilOf() map[string]float64 { return fp.Total.Util(fp.Device) }

// Over returns the resource classes above the ceiling.
func (fp *Floorplan) Over() []string {
	var out []string
	for _, k := range []string{"LUT", "FF", "BRAM", "URAM", "DSP"} {
		if fp.utilOf()[k] > 100*Ceiling {
			out = append(out, k)
		}
	}
	return out
}

// Fits reports whether every class clears the ceiling.
func (fp *Floorplan) Fits() bool { return len(fp.Over()) == 0 }

// Rebalance applies the paper's two moves until the plan fits:
//
//  1. move I/O staging from BRAM to URAM (bulk storage, 8:1 blocks);
//  2. move twiddle ROMs from BRAM to LUTRAM (costs LUTs).
//
// It refuses moves that would push LUT or URAM over the ceiling, and
// errors if the candidates run out first.
func (fp *Floorplan) Rebalance() error {
	cap := fp.Device.Total
	for !fp.Fits() {
		over := fp.Over()
		if len(over) != 1 || over[0] != "BRAM" {
			return fmt.Errorf("fpga: cannot rebalance congestion on %v", over)
		}
		switch {
		case fp.stagingBRAM >= uramBRAMEquiv &&
			float64(fp.Total.URAM+1) <= Ceiling*float64(cap.URAM):
			fp.Total.BRAM -= uramBRAMEquiv
			fp.Total.URAM++
			fp.stagingBRAM -= uramBRAMEquiv
			fp.History = append(fp.History, "move 8 staging BRAM blocks to 1 URAM")
		case fp.romBRAM >= 1 &&
			float64(fp.Total.LUT+fp.romLUTCost) <= Ceiling*float64(cap.LUT):
			fp.Total.BRAM--
			fp.Total.LUT += fp.romLUTCost
			fp.romBRAM--
			fp.History = append(fp.History, "move 1 twiddle-ROM BRAM block to LUTRAM")
		default:
			return fmt.Errorf("fpga: out of conversion candidates at %s", fp.Total)
		}
	}
	fp.History = append(fp.History, fmt.Sprintf("final: %s", fp.Total))
	return nil
}
