package fpga

import (
	"math"
	"testing"
)

func TestResArithmetic(t *testing.T) {
	a := Res{LUT: 1, FF: 2, BRAM: 3, URAM: 4, DSP: 5}
	b := a.Scale(3)
	if b != (Res{3, 6, 9, 12, 15}) {
		t.Fatalf("Scale: %v", b)
	}
	if a.Add(b) != (Res{4, 8, 12, 16, 20}) {
		t.Fatalf("Add: %v", a.Add(b))
	}
}

func TestFits(t *testing.T) {
	small := Res{LUT: 100, DSP: 10}
	if !small.FitsIn(VU9P) {
		t.Error("small design should fit")
	}
	huge := Res{LUT: 2_000_000}
	if huge.FitsIn(VU9P) {
		t.Error("oversized design should not fit")
	}
	// Ceiling check: exactly 80% of LUTs fails a 75% ceiling.
	r := Res{LUT: int(0.8 * float64(VU9P.Total.LUT))}
	if r.FitsWithCeiling(VU9P, 0.75) {
		t.Error("80% LUT passed 75% ceiling")
	}
	if !r.FitsWithCeiling(VU9P, 0.85) {
		t.Error("80% LUT failed 85% ceiling")
	}
}

// TestTable3Calibration pins the model to the paper's Table III numbers.
func TestTable3Calibration(t *testing.T) {
	if err := CheckTable3Calibration(); err != nil {
		t.Fatal(err)
	}
	rows := Table3(4096, 4)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	close := func(a, b float64) bool { return math.Abs(a-b) < 0.01 }
	// Published ATP ratios.
	if !close(rows[1].ATPLUT, 1.96) {
		t.Errorf("hybrid ATP %.2f, want 1.96", rows[1].ATPLUT)
	}
	if !close(rows[2].ATPLUT, 2.78) {
		t.Errorf("dRAM ATP %.2f, want 2.78", rows[2].ATPLUT)
	}
	if !close(rows[3].ATPLUT, 6.71) {
		t.Errorf("HEAX ATP %.2f, want 6.71", rows[3].ATPLUT)
	}
	if !close(rows[4].ATPMults, 7.36) {
		t.Errorf("F1 ATP %.2f, want 7.36", rows[4].ATPMults)
	}
	// CHAM rows all share the baseline time-multiplier product.
	for i := 0; i < 3; i++ {
		if !close(rows[i].ATPMults, 1.0) {
			t.Errorf("row %d ATPMults %.2f", i, rows[i].ATPMults)
		}
	}
}

// TestTable2Calibration pins the engine composition to Table II.
func TestTable2Calibration(t *testing.T) {
	if err := CheckTable2Calibration(); err != nil {
		t.Fatal(err)
	}
	rows, total, _ := Table2(ChamEngineConfig(), 2)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Res != (Res{LUT: 259318, FF: 89894, BRAM: 640, URAM: 294, DSP: 986}) {
		t.Errorf("engine 0: %v", rows[0].Res)
	}
	if rows[1].Res != (Res{LUT: 259502, FF: 90043, BRAM: 640, URAM: 294, DSP: 986}) {
		t.Errorf("engine 1: %v", rows[1].Res)
	}
	if !total.FitsWithCeiling(VU9P, 0.76) {
		t.Error("published design should sit below the ~75% ceiling")
	}
}

func TestNTTUnitScaling(t *testing.T) {
	// More BFUs: more logic, fewer cycles; ATP stays flat.
	for _, nbf := range []int{2, 4, 8, 16} {
		r := NTTUnit(4096, nbf, BRAMOnly)
		if r.LUT <= 0 || r.DSP != 2*nbf {
			t.Errorf("nbf=%d: %v", nbf, r)
		}
		if NTTLatency(4096, nbf)*nbf != 4096/2*12 {
			t.Errorf("nbf=%d: latency×nbf should be constant", nbf)
		}
	}
	// Strategies trade BRAM for LUT monotonically.
	b := NTTUnit(4096, 4, BRAMOnly)
	h := NTTUnit(4096, 4, Hybrid)
	d := NTTUnit(4096, 4, DRAMOnly)
	if !(b.LUT < h.LUT && h.LUT < d.LUT) {
		t.Error("LUT should increase as memories move to dRAM")
	}
	if !(b.BRAM > h.BRAM && h.BRAM > d.BRAM) {
		t.Error("BRAM should decrease as memories move to dRAM")
	}
}

// TestNTTThroughputClaim checks §V-B.1: 60 NTT units at 300 MHz give the
// throughput regime the paper reports against HEAX and the GPU.
func TestNTTThroughputClaim(t *testing.T) {
	cham := NTTThroughput(4096, 4, 60, 300)
	if cham <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Per unit: 300e6/6144 = 48.8k transforms/s; 60 units ≈ 2.93M. The
	// paper quotes 195k ops/s where an "op" bundles the 15 limb-transforms
	// of one augmented pt×ct multiply (3 fwd + 6 fwd/6 inv): 2.93M/15 ≈ 195k.
	perOp := 15.0
	if got := cham / perOp; got < 180e3 || got > 210e3 {
		t.Errorf("composite NTT ops/s = %.0f, want ≈ 195k", got)
	}
	// HEAX at its published 117k and the GPU at 45k must trail CHAM.
	if cham/perOp <= 117e3 {
		t.Error("CHAM must beat HEAX's 117k ops/s")
	}
}

func TestDevicePeaks(t *testing.T) {
	if VU9P.PeakDSPOps() != 6840*300e6 {
		t.Error("VU9P peak DSP ops wrong")
	}
	if U200.DDRGBps != 77 {
		t.Error("U200 bandwidth wrong")
	}
}

func TestEngineScaling(t *testing.T) {
	base := Engine(ChamEngineConfig())
	cfg8 := ChamEngineConfig()
	cfg8.NBF = 8
	wide := Engine(cfg8)
	if wide.LUT <= base.LUT || wide.DSP <= base.DSP {
		t.Error("8-BFU engine should be larger")
	}
	cfg2 := ChamEngineConfig()
	cfg2.NTTPerStage = 3
	if Engine(cfg2).BRAM >= base.BRAM {
		t.Error("fewer NTT units should use less BRAM")
	}
	// Fig. 2b's second Pareto point: 1 engine with 8-BFU NTTs fits; and
	// 4 engines at default config must NOT fit the 75% ceiling.
	if !FullDesign(cfg8, 1).FitsWithCeiling(VU9P, 0.76) {
		t.Error("1×8-BFU engine should fit")
	}
	if FullDesign(ChamEngineConfig(), 4).FitsWithCeiling(VU9P, 0.76) {
		t.Error("4 engines should not fit")
	}
}

func TestStageAllocAndStrings(t *testing.T) {
	cfg := ChamEngineConfig()
	fwd, inv, pack := cfg.StageAlloc()
	if fwd != 6 || inv != 12 || pack != 12 {
		t.Errorf("StageAlloc = %d/%d/%d, want 6/12/12", fwd, inv, pack)
	}
	if fwd+inv+pack != cfg.TotalNTT() {
		t.Error("stage allocations must sum to the engine total")
	}
	names := map[RAMStrategy]string{
		BRAMOnly: "BRAM only", Hybrid: "BRAM+dRAM", DRAMOnly: "dRAM only",
		RAMStrategy(9): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("String(%d) = %q", s, s.String())
		}
	}
}

func TestMaxUtil(t *testing.T) {
	r := Res{LUT: VU9P.Total.LUT / 2, BRAM: VU9P.Total.BRAM * 9 / 10}
	if u := r.MaxUtil(VU9P); u < 0.89 || u > 0.91 {
		t.Errorf("MaxUtil = %f, want ~0.9 (BRAM-dominated)", u)
	}
}
