package fpga

import "fmt"

// Compute-engine composition (Table II). A CHAM compute engine bundles the
// DOTPRODUCT pipeline (NTT units + polynomial processing units), one
// PACKTWOLWES unit with its reduce buffer, key-switch key caches, and the
// per-thread I/O buffers of the heterogeneous system (Fig. 1b).
//
// Component LUT/FF/DSP splits are calibrated so that the default
// configuration (6 NTT units, 4-BFU NTT, 1 pack unit) reproduces the
// published engine totals exactly; each component then scales with the
// design parameter that drives it, which is what the DSE (Fig. 2b) varies.

// EngineConfig selects the per-engine design parameters. NTTPerStage is
// the Fig.-2b "k×NTT" label: the stage-1 (plaintext forward transform)
// allocation. The macro-pipeline balances stage service times by giving
// the inverse-transform stage and the PACKTWOLWES key switch twice that
// many units each (demand ratio 3:6:9 transforms per row, §III-B), so an
// engine carries 5·NTTPerStage NTT units in total — 30 at the published
// point, 60 per two-engine device (§V-B.1's "60 NTT units").
type EngineConfig struct {
	N           int         // ring degree
	NTTPerStage int         // stage-1 NTT units (paper: 6)
	NBF         int         // butterflies per NTT unit (paper: 4)
	NumPack     int         // PACKTWOLWES units (paper: 1)
	Strategy    RAMStrategy // NTT memory strategy
}

// TotalNTT returns the engine's NTT unit count across all stages.
func (c EngineConfig) TotalNTT() int { return 5 * c.NTTPerStage }

// StageAlloc returns the per-stage NTT unit split (forward, inverse, pack).
func (c EngineConfig) StageAlloc() (fwd, inv, pack int) {
	return c.NTTPerStage, 2 * c.NTTPerStage, 2 * c.NTTPerStage
}

// ChamEngineConfig is the published design point.
func ChamEngineConfig() EngineConfig {
	return EngineConfig{N: 4096, NTTPerStage: 6, NBF: 4, NumPack: 1, Strategy: BRAMOnly}
}

// Calibrated component budgets at the ChamEngineConfig design point.
var (
	ppuBase   = Res{LUT: 70000, FF: 16000, BRAM: 48, DSP: 482}
	packBase  = Res{LUT: 60000, FF: 10000, BRAM: 60, URAM: 150, DSP: 264}
	reduceBuf = Res{BRAM: 24}
	ioBuffers = Res{BRAM: 88, URAM: 144}
	engineCtl = Res{LUT: 29598, FF: 4074}
)

// scaleFrac scales r by num/den, rounding to nearest.
func scaleFrac(r Res, num, den int) Res {
	f := func(x int) int { return (x*num + den/2) / den }
	return Res{f(r.LUT), f(r.FF), f(r.BRAM), f(r.URAM), f(r.DSP)}
}

// Engine returns the resources of one compute engine under cfg.
func Engine(cfg EngineConfig) Res {
	nttBlock := NTTUnit(cfg.N, cfg.NBF, cfg.Strategy).Scale(cfg.TotalNTT())
	// The PPU array's parallelism tracks the butterfly parallelism so the
	// macro-pipeline stages stay balanced (§III-B: P_A = k·P_B).
	ppu := scaleFrac(ppuBase, cfg.NBF, 4)
	pack := packBase.Scale(cfg.NumPack)
	return nttBlock.Add(ppu).Add(pack).Add(reduceBuf).Add(ioBuffers).Add(engineCtl)
}

// Platform is the static Vitis shell plus the in-house DMA/RAS logic —
// constant regardless of the engine configuration.
func Platform() Res {
	return Res{LUT: 234066, FF: 302670, BRAM: 278, URAM: 7, DSP: 14}
}

// placementDelta reflects the small per-instance variance between the two
// placed engine copies in the published bitstream (engine 1 closed timing
// with slightly more logic replication).
var placementDelta = Res{LUT: 184, FF: 149}

// Table2Row is one row of the utilization table.
type Table2Row struct {
	Module string
	Res    Res
}

// Table2 reproduces the paper's Table II for the given number of engines
// at the given config (the paper: two engines, default config, on VU9P).
func Table2(cfg EngineConfig, numEngines int) (rows []Table2Row, total Res, pct map[string]float64) {
	for i := 0; i < numEngines; i++ {
		r := Engine(cfg)
		if i%2 == 1 {
			r = r.Add(placementDelta)
		}
		rows = append(rows, Table2Row{Module: fmt.Sprintf("Compute Engine %d", i), Res: r})
		total = total.Add(r)
	}
	rows = append(rows, Table2Row{Module: "Platform", Res: Platform()})
	total = total.Add(Platform())
	return rows, total, total.Util(VU9P)
}

// FullDesign returns the total footprint of a CHAM instance with the given
// engine count and config, including the platform.
func FullDesign(cfg EngineConfig, numEngines int) Res {
	total := Platform()
	for i := 0; i < numEngines; i++ {
		r := Engine(cfg)
		if i%2 == 1 {
			r = r.Add(placementDelta)
		}
		total = total.Add(r)
	}
	return total
}

// CheckTable2Calibration verifies the composed design reproduces the
// published totals.
func CheckTable2Calibration() error {
	eng := Engine(ChamEngineConfig())
	want := Res{LUT: 259318, FF: 89894, BRAM: 640, URAM: 294, DSP: 986}
	if eng != want {
		return fmt.Errorf("fpga: engine = %v, want %v", eng, want)
	}
	_, total, pct := Table2(ChamEngineConfig(), 2)
	wantTotal := Res{LUT: 752886, FF: 482607, BRAM: 1558, URAM: 595, DSP: 1986}
	if total != wantTotal {
		return fmt.Errorf("fpga: total = %v, want %v", total, wantTotal)
	}
	approx := func(got, want float64) bool { d := got - want; return d < 0.005 && d > -0.005 }
	for k, w := range map[string]float64{"LUT": 63.68, "FF": 20.41, "BRAM": 72.13, "URAM": 61.98, "DSP": 29.04} {
		if !approx(pct[k], w) {
			return fmt.Errorf("fpga: %s utilization %.2f%%, want %.2f%%", k, pct[k], w)
		}
	}
	return nil
}
