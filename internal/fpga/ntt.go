package fpga

import (
	"fmt"

	"cham/internal/ntt"
)

// NTT functional-unit resource model (Table III). Storage needs follow
// from the constant-geometry dataflow of §IV-A: per-BFU twiddle ROM banks
// (Fig. 4), a 2·n_bf-bank ping-pong coefficient buffer, and I/O staging.
// Datapath LUT costs are calibrated at the published (N=4096, n_bf=4)
// design point and scale with n_bf.

// RAMStrategy selects where the NTT unit's memories live — the three rows
// of Table III.
type RAMStrategy int

const (
	// BRAMOnly puts the twiddle ROMs and local buffer in block RAM.
	BRAMOnly RAMStrategy = iota
	// Hybrid keeps the local buffer in BRAM but moves the twiddle ROMs to
	// LUT-based distributed RAM.
	Hybrid
	// DRAMOnly moves both into distributed RAM, freeing all block RAM.
	DRAMOnly
)

func (s RAMStrategy) String() string {
	switch s {
	case BRAMOnly:
		return "BRAM only"
	case Hybrid:
		return "BRAM+dRAM"
	case DRAMOnly:
		return "dRAM only"
	}
	return "unknown"
}

const (
	coeffBits = 35    // ciphertext limb width
	bram18    = 18432 // bits per half BRAM36
	lutBits   = 64    // bits per LUT used as distributed RAM (RAM64X1)

	// Calibrated datapath constants (fit to Table III at N=4096, n_bf=4).
	lutPerBFU   = 660 // shift-add modular multiplier + butterfly add/sub
	lutNTTFixed = 684 // control FSM, address generation, SWAP network
	dspPerBFU   = 2   // the low-Hamming-weight moduli leave only the 27x18 core products on DSPs
	ffPerLUT    = 0.6 // pipeline register density of the datapath

	// Distributed-RAM addressing overhead, calibrated: per-bank read
	// multiplexers for the twiddle ROMs, and the shared-staging trick that
	// lets the dRAM buffer store only one ping-pong half.
	dramROMMuxPerBank = 236
	dramBufFixed      = 500
)

// romBits returns the twiddle ROM footprint: N factors of coeffBits
// (§IV-A.2 "the size of twiddle factors is equal to the size of a
// polynomial").
func romBits(n int) int { return n * coeffBits }

// bufBits returns the ping-pong coefficient buffer footprint.
func bufBits(n int) int { return 2 * n * coeffBits }

// bramBlocks maps a set of equally-sized banks to BRAM36 blocks, packing
// two 18Kb halves per block.
func bramBlocks(banks, bitsPerBank int) int {
	halves := banks * ((bitsPerBank + bram18 - 1) / bram18)
	return (halves + 1) / 2
}

// NTTUnit returns the resources of one NTT module with n_bf butterfly
// units at degree n under the given RAM strategy.
func NTTUnit(n, nbf int, s RAMStrategy) Res {
	r := Res{
		LUT: lutPerBFU*nbf + lutNTTFixed,
		DSP: dspPerBFU * nbf,
	}

	romBanks := nbf
	romPerBank := romBits(n) / nbf
	bufBanks := 2 * 2 * nbf // ping-pong × 2·n_bf read/write banks
	bufPerBank := bufBits(n) / bufBanks

	switch s {
	case BRAMOnly:
		r.BRAM = bramBlocks(romBanks, romPerBank) + bramBlocks(bufBanks, bufPerBank) + 2 // +I/O staging
	case Hybrid:
		r.BRAM = bramBlocks(bufBanks, bufPerBank) - 2 // staging shares buffer blocks
		r.LUT += romBits(n)/lutBits + dramROMMuxPerBank*romBanks
	case DRAMOnly:
		r.LUT += romBits(n)/lutBits + dramROMMuxPerBank*romBanks
		r.LUT += bufBits(n)/(2*lutBits) + dramBufFixed
	}
	r.FF = int(ffPerLUT * float64(r.LUT))
	return r
}

// NTTLatency returns the cycle latency of one transform:
// (N/2·log2 N)/n_bf.
func NTTLatency(n, nbf int) int { return ntt.CGCycles(n, nbf) }

// Table3Row is one comparison row of Table III.
type Table3Row struct {
	Name    string
	Latency int // cycles
	Mults   int // parallel modular multipliers
	LUT     int
	BRAM    int
	// Normalised area-time products (CHAM BRAM-only = 1.0).
	ATPMults float64 // latency × multipliers
	ATPLUT   float64 // latency × LUT
}

// Table3 reproduces the paper's Table III: the three CHAM RAM strategies
// plus the published HEAX and F1 NTT designs.
func Table3(n, nbf int) []Table3Row {
	base := NTTUnit(n, nbf, BRAMOnly)
	baseLat := NTTLatency(n, nbf)
	rows := []Table3Row{
		{Name: "CHAM (BRAM only)", Latency: baseLat, Mults: nbf, LUT: base.LUT, BRAM: base.BRAM},
		{Name: "CHAM (BRAM+dRAM)", Latency: baseLat, Mults: nbf,
			LUT: NTTUnit(n, nbf, Hybrid).LUT, BRAM: NTTUnit(n, nbf, Hybrid).BRAM},
		{Name: "CHAM (dRAM only)", Latency: baseLat, Mults: nbf,
			LUT: NTTUnit(n, nbf, DRAMOnly).LUT, BRAM: NTTUnit(n, nbf, DRAMOnly).BRAM},
		// Published comparators (HEAX on Intel FPGAs with 8-input LUTs and
		// 20Kb BRAMs; F1 is an ASIC — LUT/BRAM not applicable).
		{Name: "HEAX", Latency: 6144, Mults: 4, LUT: 22316, BRAM: 11},
		{Name: "F1", Latency: 202, Mults: 896},
	}
	baseATPm := float64(rows[0].Latency * rows[0].Mults)
	baseATPl := float64(rows[0].Latency * rows[0].LUT)
	for i := range rows {
		rows[i].ATPMults = float64(rows[i].Latency*rows[i].Mults) / baseATPm
		if rows[i].LUT > 0 {
			rows[i].ATPLUT = float64(rows[i].Latency*rows[i].LUT) / baseATPl
		}
	}
	return rows
}

// NTTThroughput returns transforms per second for `units` NTT modules at
// the given clock.
func NTTThroughput(n, nbf, units int, freqMHz float64) float64 {
	return float64(units) * freqMHz * 1e6 / float64(NTTLatency(n, nbf))
}

// CheckTable3Calibration verifies the model reproduces the published
// numbers at the production design point; it is called from tests and
// from `chamsim table3 -verify`.
func CheckTable3Calibration() error {
	want := []struct {
		s   RAMStrategy
		lut int
		br  int
	}{
		{BRAMOnly, 3324, 14},
		{Hybrid, 6508, 6},
		{DRAMOnly, 9248, 0},
	}
	for _, w := range want {
		got := NTTUnit(4096, 4, w.s)
		if got.LUT != w.lut || got.BRAM != w.br {
			return fmt.Errorf("fpga: %v = LUT %d BRAM %d, want LUT %d BRAM %d",
				w.s, got.LUT, got.BRAM, w.lut, w.br)
		}
	}
	if NTTLatency(4096, 4) != 6144 {
		return fmt.Errorf("fpga: latency %d, want 6144", NTTLatency(4096, 4))
	}
	return nil
}
