// Package fpga models the FPGA resources of the CHAM implementation: a
// device catalog (Xilinx VU9P / Alveo U200), per-module resource
// estimators, and the compositions that reproduce the paper's Table II
// (full-design utilization) and Table III (single-NTT comparison).
//
// Storage-derived quantities (BRAM/URAM/LUTRAM counts) follow from bit
// widths and bank structure; pure-logic quantities (LUT/FF/DSP of the
// datapaths) are calibrated against the published design point and scale
// linearly with the unit counts, which is what the design-space
// exploration in package dse varies.
package fpga

import "fmt"

// Res is a vector of FPGA resources.
type Res struct {
	LUT  int
	FF   int
	BRAM int // BRAM36 blocks
	URAM int
	DSP  int
}

// Add returns r + o.
func (r Res) Add(o Res) Res {
	return Res{r.LUT + o.LUT, r.FF + o.FF, r.BRAM + o.BRAM, r.URAM + o.URAM, r.DSP + o.DSP}
}

// Scale returns r scaled by k.
func (r Res) Scale(k int) Res {
	return Res{r.LUT * k, r.FF * k, r.BRAM * k, r.URAM * k, r.DSP * k}
}

// FitsIn reports whether r fits the device entirely.
func (r Res) FitsIn(d Device) bool {
	t := d.Total
	return r.LUT <= t.LUT && r.FF <= t.FF && r.BRAM <= t.BRAM && r.URAM <= t.URAM && r.DSP <= t.DSP
}

// FitsWithCeiling reports whether every resource stays at or below the
// given utilization fraction — the paper's 75% place-and-route ceiling.
func (r Res) FitsWithCeiling(d Device, frac float64) bool {
	t := d.Total
	ok := func(used, total int) bool { return float64(used) <= frac*float64(total) }
	return ok(r.LUT, t.LUT) && ok(r.FF, t.FF) && ok(r.BRAM, t.BRAM) && ok(r.URAM, t.URAM) && ok(r.DSP, t.DSP)
}

// Util returns per-resource utilization percentages on the device.
func (r Res) Util(d Device) map[string]float64 {
	t := d.Total
	pct := func(u, tot int) float64 {
		if tot == 0 {
			return 0
		}
		return 100 * float64(u) / float64(tot)
	}
	return map[string]float64{
		"LUT":  pct(r.LUT, t.LUT),
		"FF":   pct(r.FF, t.FF),
		"BRAM": pct(r.BRAM, t.BRAM),
		"URAM": pct(r.URAM, t.URAM),
		"DSP":  pct(r.DSP, t.DSP),
	}
}

// MaxUtil returns the highest single-resource utilization fraction.
func (r Res) MaxUtil(d Device) float64 {
	max := 0.0
	for _, v := range r.Util(d) {
		if v > max {
			max = v
		}
	}
	return max / 100
}

func (r Res) String() string {
	return fmt.Sprintf("LUT=%d FF=%d BRAM=%d URAM=%d DSP=%d", r.LUT, r.FF, r.BRAM, r.URAM, r.DSP)
}

// Device describes an FPGA card.
type Device struct {
	Name     string
	Total    Res
	FreqMHz  float64 // achieved kernel clock
	DDRGBps  float64 // aggregate DRAM bandwidth
	LUTWidth int     // LUT input width (6 for Xilinx, 8 for Intel Stratix)
	BRAMKbit int     // native block size (36 for Xilinx, 20 for Intel)
}

// PeakDSPOps returns the peak 27x18 multiply throughput in ops/s at the
// device clock — the roofline compute ceiling (Fig. 2a).
func (d Device) PeakDSPOps() float64 {
	return float64(d.Total.DSP) * d.FreqMHz * 1e6
}

// VU9P is the Xilinx Virtex UltraScale+ VU9P, CHAM's production part.
var VU9P = Device{
	Name:     "Xilinx VU9P",
	Total:    Res{LUT: 1182240, FF: 2364480, BRAM: 2160, URAM: 960, DSP: 6840},
	FreqMHz:  300,
	DDRGBps:  77,
	LUTWidth: 6,
	BRAMKbit: 36,
}

// U200 is the Alveo U200 prototyping card (VU9P silicon behind the Vitis
// shell, 4×DDR4-2400 at 77 GB/s).
var U200 = Device{
	Name:     "Xilinx Alveo U200",
	Total:    Res{LUT: 1182240, FF: 2364480, BRAM: 2160, URAM: 960, DSP: 6840},
	FreqMHz:  300,
	DDRGBps:  77,
	LUTWidth: 6,
	BRAMKbit: 36,
}
