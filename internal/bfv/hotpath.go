package bfv

import "cham/internal/ring"

// Allocation-free encode/lift variants used by the prepared-matrix path.

// EncodeRowInto is EncodeRow writing into a caller-owned plaintext,
// overwriting all N coefficients (the gap the row layout skips is zeroed).
func (p Params) EncodeRowInto(pt *Plaintext, a []uint64, scale uint64) {
	n := p.R.N
	if len(a) > n {
		panic("bfv: row longer than N")
	}
	if len(pt.Coeffs) != n {
		panic("bfv: plaintext length mismatch")
	}
	if scale == 0 {
		scale = 1
	}
	pt.Coeffs[0] = p.T.Mul(p.T.Reduce(a[0]), scale)
	for j := 1; j < len(a); j++ {
		pt.Coeffs[n-j] = p.T.Mul(p.T.Neg(p.T.Reduce(a[j])), scale)
	}
	// Positions [1, N-len(a)] are untouched by the layout above.
	gap := pt.Coeffs[1 : n-len(a)+1]
	for i := range gap {
		gap[i] = 0
	}
}

// LiftInto is Lift writing into a caller-owned polynomial. Because t is
// below every limb modulus, the centred lift needs no reduction: x maps to
// x when x ≤ t/2 and to q_l - t + x otherwise.
func (p Params) LiftInto(out *ring.Poly, pt *Plaintext) {
	if len(pt.Coeffs) != p.R.N {
		panic("bfv: plaintext length mismatch")
	}
	t := p.T.Q
	half := t / 2
	for l := range out.Coeffs {
		q := p.R.Moduli[l].Q
		ro := out.Coeffs[l]
		for i, x := range pt.Coeffs {
			if x > half {
				ro[i] = q - t + x
			} else {
				ro[i] = x
			}
		}
	}
	out.IsNTT = false
}
