package bfv

import "fmt"

// Coefficient encoding (CHAM §II-C, Eq. 1) and SIMD slot encoding (§II-E).

// EncodeVector encodes the cleartext vector v as pt^(v) = Σ v_j X^j.
// Values are reduced modulo t. len(v) must not exceed N.
func (p Params) EncodeVector(v []uint64) *Plaintext {
	if len(v) > p.R.N {
		panic("bfv: vector longer than N")
	}
	pt := p.NewPlaintext()
	for j, x := range v {
		pt.Coeffs[j] = p.T.Reduce(x)
	}
	return pt
}

// EncodeRow encodes matrix row a as the dot-product multiplier of Eq. 1:
//
//	pt^(A_i) = A_{i,0} - Σ_{j=1}^{N-1} A_{i,j} X^{N-j},
//
// so that the constant coefficient of pt^(A_i)·pt^(v) is the inner product
// A_i·v (Eq. 2). An optional scale factor (e.g. the inverse 2^ℓ packing
// compensation) is folded into every coefficient.
func (p Params) EncodeRow(a []uint64, scale uint64) *Plaintext {
	if len(a) > p.R.N {
		panic("bfv: row longer than N")
	}
	if scale == 0 {
		scale = 1
	}
	pt := p.NewPlaintext()
	pt.Coeffs[0] = p.T.Mul(p.T.Reduce(a[0]), scale)
	for j := 1; j < len(a); j++ {
		pt.Coeffs[p.R.N-j] = p.T.Mul(p.T.Neg(p.T.Reduce(a[j])), scale)
	}
	return pt
}

// DecodeCoeff returns coefficient i of the plaintext — for dot-product
// results, DecodeCoeff(pt, 0) is the inner product.
func (p Params) DecodeCoeff(pt *Plaintext, i int) uint64 { return pt.Coeffs[i] }

// InvPow2 returns 2^{-ℓ} mod t, the compensation factor for PackLWEs'
// doubling. Panics if t is even.
func (p Params) InvPow2(l int) uint64 {
	if p.T.Q&1 == 0 {
		panic("bfv: 2 is not invertible modulo an even t")
	}
	return p.T.Inv(p.T.Pow(2, uint64(l)))
}

// EncodeSlots places vals into SIMD slots: slot j holds the evaluation of
// the plaintext polynomial at ψ_t^(2·brv(j)+1). Requires CanBatch().
func (p Params) EncodeSlots(vals []uint64) (*Plaintext, error) {
	if p.slotTable == nil {
		return nil, fmt.Errorf("bfv: t=%d does not support batching at N=%d", p.T.Q, p.R.N)
	}
	if len(vals) > p.R.N {
		return nil, fmt.Errorf("bfv: %d values exceed %d slots", len(vals), p.R.N)
	}
	pt := p.NewPlaintext()
	for i, v := range vals {
		pt.Coeffs[i] = p.T.Reduce(v)
	}
	p.slotTable.Inverse(pt.Coeffs)
	return pt, nil
}

// DecodeSlots extracts all N slot values of the plaintext.
func (p Params) DecodeSlots(pt *Plaintext) ([]uint64, error) {
	if p.slotTable == nil {
		return nil, fmt.Errorf("bfv: t=%d does not support batching at N=%d", p.T.Q, p.R.N)
	}
	out := make([]uint64, p.R.N)
	copy(out, pt.Coeffs)
	p.slotTable.Forward(out)
	return out, nil
}

// SlotAutomorphismPermutation returns the slot permutation induced by the
// ring automorphism X -> X^k: perm[j] is the slot index whose value moves
// INTO slot j. Derivation: slot j evaluates at e_j = ψ^(2·brv(j)+1), and
// φ_k(pt)(e_j) = pt(e_j^k), so slot j of φ_k(pt) holds the old slot j'
// with 2·brv(j')+1 ≡ (2·brv(j)+1)·k (mod 2N).
func (p Params) SlotAutomorphismPermutation(k int) ([]int, error) {
	if p.slotTable == nil {
		return nil, fmt.Errorf("bfv: batching unavailable")
	}
	if k%2 == 0 {
		return nil, fmt.Errorf("bfv: automorphism index must be odd")
	}
	n := p.R.N
	n2 := 2 * n
	kk := ((k % n2) + n2) % n2
	// invExp[e] = slot index whose evaluation exponent is e.
	invExp := make(map[int]int, n)
	for j := 0; j < n; j++ {
		invExp[(2*brvInt(j, p.slotTable.LogN)+1)%n2] = j
	}
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		e := (2*brvInt(j, p.slotTable.LogN) + 1) * kk % n2
		src, ok := invExp[e]
		if !ok {
			return nil, fmt.Errorf("bfv: exponent %d has no slot (k=%d not coprime to 2N?)", e, k)
		}
		perm[j] = src
	}
	return perm, nil
}

func brvInt(x, width int) int {
	r := 0
	for i := 0; i < width; i++ {
		r = r<<1 | x&1
		x >>= 1
	}
	return r
}
