// Package bfv implements the Brakerski/Fan-Vercauteren scheme on top of the
// rlwe layer, with the two plaintext encodings the CHAM paper contrasts:
//
//   - coefficient encoding (§II-C, Eq. 1): cleartexts sit directly in
//     polynomial coefficients, making a homomorphic dot product a single
//     polynomial multiplication — the encoding CHAM accelerates; and
//   - batch (SIMD) encoding (§II-E): cleartexts sit in NTT slots modulo t,
//     the encoding used by rotate-and-sum baselines such as GAZELLE.
//
// The default plaintext modulus is t = 65537: prime (so slot encoding
// exists) and odd (so the 2^ℓ factor PackLWEs introduces is invertible).
package bfv

import (
	"fmt"
	"math/big"
	"math/rand"

	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// DefaultT is the default plaintext modulus.
const DefaultT = 65537

// Params bundles the RLWE layer with the plaintext modulus.
type Params struct {
	rlwe.Params
	T mod.Modulus
	// slotTable is non-nil when t supports SIMD batching (t ≡ 1 mod 2N).
	slotTable *ntt.Table
}

// NewParams builds BFV parameters over the given ring. t must be odd and
// smaller than every ciphertext limb.
func NewParams(r *ring.Ring, normalLevels, eta int, t uint64) (Params, error) {
	base, err := rlwe.NewParams(r, normalLevels, eta)
	if err != nil {
		return Params{}, err
	}
	tm, err := mod.TryNew(t)
	if err != nil {
		return Params{}, fmt.Errorf("bfv: bad plaintext modulus: %w", err)
	}
	for _, m := range r.Moduli {
		if t >= m.Q {
			return Params{}, fmt.Errorf("bfv: t=%d not below limb %d", t, m.Q)
		}
	}
	p := Params{Params: base, T: tm}
	if (t-1)%uint64(2*r.N) == 0 && mod.IsPrime(t) {
		st, err := ntt.NewTable(r.N, t)
		if err != nil {
			return Params{}, err
		}
		p.slotTable = st
	}
	return p, nil
}

// NewChamParams returns the paper's production parameter set at degree n
// (n = 4096 for the real system; smaller n keeps unit tests fast):
// basis {q0, q1, p}, CBD noise eta=21 (σ≈3.2), t=65537.
func NewChamParams(n int) (Params, error) {
	r, err := ring.New(n, mod.ChamModuli())
	if err != nil {
		return Params{}, err
	}
	return NewParams(r, 2, 21, DefaultT)
}

// MustChamParams panics on error.
func MustChamParams(n int) Params {
	p, err := NewChamParams(n)
	if err != nil {
		panic(err)
	}
	return p
}

// CanBatch reports whether SIMD slot encoding is available.
func (p Params) CanBatch() bool { return p.slotTable != nil }

// Delta returns ⌊Q_levels/t⌋, the plaintext scale at the given level count.
func (p Params) Delta(levels int) *big.Int {
	d := p.R.Modulus(levels)
	return d.Quo(d, new(big.Int).SetUint64(p.T.Q))
}

// Plaintext is an unscaled plaintext polynomial with coefficients modulo t.
// Scaling by Δ happens at encryption; plaintext multipliers are used as-is.
type Plaintext struct {
	Coeffs []uint64 // length N, values in [0, t)
}

// NewPlaintext returns an all-zero plaintext.
func (p Params) NewPlaintext() *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, p.R.N)}
}

// Lift expands the plaintext into an RNS polynomial with the given level
// count, mapping each coefficient through its centred representative so
// that values near t wrap to small negatives.
func (p Params) Lift(pt *Plaintext, levels int) *ring.Poly {
	out := p.R.NewPoly(levels)
	if len(pt.Coeffs) == p.R.N {
		p.LiftInto(out, pt)
		return out
	}
	vals := make([]int64, len(pt.Coeffs))
	for i, c := range pt.Coeffs {
		vals[i] = p.T.CenterLift(c)
	}
	p.R.SetCentered(out, vals)
	return out
}

// Encrypt encrypts pt under sk at the given level count: ct = Enc(0) + Δ·pt.
func (p Params) Encrypt(rng *rand.Rand, sk *rlwe.SecretKey, pt *Plaintext, levels int) *rlwe.Ciphertext {
	ct := p.EncryptZeroSym(rng, sk, levels)
	scaled := p.Lift(pt, levels)
	p.R.MulScalarBig(scaled, scaled, p.Delta(levels))
	p.R.Add(ct.B, ct.B, scaled)
	return ct
}

// EncryptPK is Encrypt using a public key.
func (p Params) EncryptPK(rng *rand.Rand, pk *rlwe.PublicKey, pt *Plaintext, levels int) *rlwe.Ciphertext {
	ct := p.EncryptZeroPK(rng, pk, levels)
	scaled := p.Lift(pt, levels)
	p.R.MulScalarBig(scaled, scaled, p.Delta(levels))
	p.R.Add(ct.B, ct.B, scaled)
	return ct
}

// Decrypt recovers the plaintext: m = ⌊t·phase/Q⌉ mod t per coefficient.
func (p Params) Decrypt(ct *rlwe.Ciphertext, sk *rlwe.SecretKey) *Plaintext {
	phase := p.Phase(ct, sk)
	levels := ct.Levels()
	vals := p.R.ToBigIntCentered(phase, levels)
	q := p.R.Modulus(levels)
	tBig := new(big.Int).SetUint64(p.T.Q)
	out := p.NewPlaintext()
	num, rem := new(big.Int), new(big.Int)
	halfQ := new(big.Int).Rsh(q, 1)
	for i, v := range vals {
		num.Mul(v, tBig)
		// Round-to-nearest division num/q for signed num.
		num.Add(num, halfQ)
		num.DivMod(num, q, rem)
		num.Mod(num, tBig)
		out.Coeffs[i] = num.Uint64()
	}
	return out
}

// AddPlain homomorphically adds the plaintext to the ciphertext in place:
// ct.B += Δ·pt.
func (p Params) AddPlain(ct *rlwe.Ciphertext, pt *Plaintext) {
	scaled := p.Lift(pt, ct.Levels())
	p.R.MulScalarBig(scaled, scaled, p.Delta(ct.Levels()))
	if ct.B.IsNTT {
		p.R.NTT(scaled)
	}
	p.R.Add(ct.B, ct.B, scaled)
}

// MulScalar homomorphically multiplies the ciphertext by a small cleartext
// scalar c (reduced mod t at decryption); noise scales by c, so keep c
// well below the remaining budget.
func (p Params) MulScalar(out, ct *rlwe.Ciphertext, c uint64) {
	p.R.MulScalar(out.B, ct.B, c)
	p.R.MulScalar(out.A, ct.A, c)
}

// MulPlain homomorphically multiplies ct (coefficient domain) by the
// plaintext multiplier pt (Eq. 2's pt×ct product): stages 1–3 of the
// DOTPRODUCT pipeline. The result is returned in coefficient domain at the
// ciphertext's level count.
func (p Params) MulPlain(ct *rlwe.Ciphertext, pt *Plaintext) *rlwe.Ciphertext {
	levels := ct.Levels()
	ptPoly := p.Lift(pt, levels)
	p.R.NTT(ptPoly)
	b := ct.B.Copy()
	a := ct.A.Copy()
	p.R.NTT(b)
	p.R.NTT(a)
	out := &rlwe.Ciphertext{B: p.R.NewPoly(levels), A: p.R.NewPoly(levels)}
	p.MulPlainNTT(out, &rlwe.Ciphertext{B: b, A: a}, ptPoly)
	p.R.INTT(out.B)
	p.R.INTT(out.A)
	return out
}

// MulPlainRescale is the full augmented flow: multiply an augmented
// ciphertext by a plaintext, then RESCALE by the special modulus back to
// the normal basis (stages 1–4). The ciphertext must carry the full basis.
func (p Params) MulPlainRescale(ct *rlwe.Ciphertext, pt *Plaintext) *rlwe.Ciphertext {
	if ct.Levels() != p.R.Levels() {
		panic("bfv: MulPlainRescale requires an augmented ciphertext")
	}
	return p.Rescale(p.MulPlain(ct, pt))
}
