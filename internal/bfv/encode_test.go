package bfv

import (
	"math/rand"
	"testing"
)

func TestEncodeVector(t *testing.T) {
	p := testParams(t, 64)
	v := []uint64{1, 2, 3, p.T.Q + 5} // last value must reduce mod t
	pt := p.EncodeVector(v)
	if pt.Coeffs[0] != 1 || pt.Coeffs[3] != 5 {
		t.Fatalf("EncodeVector wrong: %v", pt.Coeffs[:4])
	}
	for i := 4; i < p.R.N; i++ {
		if pt.Coeffs[i] != 0 {
			t.Fatal("padding not zero")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized vector accepted")
		}
	}()
	p.EncodeVector(make([]uint64, p.R.N+1))
}

func TestEncodeRowLayout(t *testing.T) {
	p := testParams(t, 16)
	a := []uint64{10, 20, 30}
	pt := p.EncodeRow(a, 1)
	if pt.Coeffs[0] != 10 {
		t.Errorf("constant coefficient %d, want 10", pt.Coeffs[0])
	}
	if pt.Coeffs[p.R.N-1] != p.T.Neg(20) {
		t.Errorf("X^{N-1} coefficient %d, want -20 mod t", pt.Coeffs[p.R.N-1])
	}
	if pt.Coeffs[p.R.N-2] != p.T.Neg(30) {
		t.Errorf("X^{N-2} coefficient %d, want -30 mod t", pt.Coeffs[p.R.N-2])
	}
	// Scale factor folds into every coefficient.
	pt3 := p.EncodeRow(a, 3)
	if pt3.Coeffs[0] != 30 || pt3.Coeffs[p.R.N-1] != p.T.Neg(60) {
		t.Error("scale factor not applied")
	}
}

// TestEncodeRowDotProductIdentity: the plaintext-level product of
// EncodeRow(a) and EncodeVector(v) has constant coefficient a·v (Eq. 2),
// checked for many random vectors without any encryption.
func TestEncodeRowDotProductIdentity(t *testing.T) {
	p := testParams(t, 128)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(p.R.N)
		a := make([]uint64, n)
		v := make([]uint64, n)
		var want uint64
		for j := range a {
			a[j] = rng.Uint64() % p.T.Q
			v[j] = rng.Uint64() % p.T.Q
			want = p.T.Add(want, p.T.Mul(a[j], v[j]))
		}
		conv := bigConv(p, p.EncodeRow(a, 1), p.EncodeVector(v))
		got := p.T.FromCentered(conv[0].Int64() % int64(p.T.Q))
		if got != want {
			t.Fatalf("trial %d (n=%d): constant coefficient %d, want %d", trial, n, got, want)
		}
	}
}

func TestInvPow2(t *testing.T) {
	p := testParams(t, 16)
	for l := 0; l <= 16; l++ {
		inv := p.InvPow2(l)
		if p.T.Mul(inv, p.T.Pow(2, uint64(l))) != 1 {
			t.Errorf("InvPow2(%d) wrong", l)
		}
	}
}

func TestSlotsRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, p.R.N)
	for i := range vals {
		vals[i] = rng.Uint64() % p.T.Q
	}
	pt, err := p.EncodeSlots(vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.DecodeSlots(pt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("slot %d: %d != %d", i, back[i], vals[i])
		}
	}
}

// TestSlotsAreComponentwise: multiplying two slot-encoded plaintexts as
// ring elements multiplies slots componentwise — the SIMD property.
func TestSlotsAreComponentwise(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(8))
	va := make([]uint64, p.R.N)
	vb := make([]uint64, p.R.N)
	for i := range va {
		va[i] = rng.Uint64() % p.T.Q
		vb[i] = rng.Uint64() % p.T.Q
	}
	pa, _ := p.EncodeSlots(va)
	pb, _ := p.EncodeSlots(vb)

	// Ring product mod t via the slot table's convolution theorem.
	prod := make([]uint64, p.R.N)
	copy(prod, pa.Coeffs)
	fb := make([]uint64, p.R.N)
	copy(fb, pb.Coeffs)
	p.slotTable.Forward(prod)
	p.slotTable.Forward(fb)
	for i := range prod {
		prod[i] = p.T.Mul(prod[i], fb[i])
	}
	p.slotTable.Inverse(prod)

	slots, _ := p.DecodeSlots(&Plaintext{Coeffs: prod})
	for i := range slots {
		if slots[i] != p.T.Mul(va[i], vb[i]) {
			t.Fatalf("slot %d not componentwise", i)
		}
	}
}

// TestSlotAutomorphismPermutation: applying a ring automorphism to a
// slot-encoded plaintext must permute slots exactly as predicted.
func TestSlotAutomorphismPermutation(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint64, p.R.N)
	for i := range vals {
		vals[i] = rng.Uint64() % p.T.Q
	}
	pt, _ := p.EncodeSlots(vals)

	for _, k := range []int{3, 5, 25, 2*p.R.N - 1} {
		perm, err := p.SlotAutomorphismPermutation(k)
		if err != nil {
			t.Fatal(err)
		}
		// Apply the automorphism to the plaintext coefficients mod t.
		lift := p.Lift(pt, 1)
		phi := p.R.NewPoly(1)
		p.R.Automorph(phi, lift, k)
		// Read back mod t.
		phiPt := p.NewPlaintext()
		for i := 0; i < p.R.N; i++ {
			phiPt.Coeffs[i] = p.T.FromCentered(p.R.Moduli[0].CenterLift(phi.Coeffs[0][i]))
		}
		got, _ := p.DecodeSlots(phiPt)
		for j := range got {
			if got[j] != vals[perm[j]] {
				t.Fatalf("k=%d: slot %d = %d, want vals[%d] = %d", k, j, got[j], perm[j], vals[perm[j]])
			}
		}
	}

	if _, err := p.SlotAutomorphismPermutation(4); err == nil {
		t.Error("even k accepted")
	}
}
