package bfv

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"cham/internal/mod"
	"cham/internal/ring"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

func testParams(tb testing.TB, n int) Params {
	tb.Helper()
	p, err := NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestNewParamsValidation(t *testing.T) {
	r := ring.MustNew(64, mod.ChamModuli())
	if _, err := NewParams(r, 2, 21, 1<<16); err == nil {
		t.Error("even t accepted")
	}
	if _, err := NewParams(r, 2, 21, mod.ChamQ0); err == nil {
		t.Error("t >= limb accepted")
	}
	p, err := NewParams(r, 2, 21, 65537)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CanBatch() {
		t.Error("t=65537 should support batching at N=64")
	}
	// t = 13: odd prime but 13-1 not divisible by 2N -> no batching.
	p2, err := NewParams(r, 2, 21, 13)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CanBatch() {
		t.Error("t=13 should not support batching")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	pk := p.PublicKeyGen(rng, sk)

	pt := p.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = uint64(i*7919) % p.T.Q
	}
	for _, levels := range []int{2, 3} {
		ct := p.Encrypt(rng, sk, pt, levels)
		dec := p.Decrypt(ct, sk)
		for i := range pt.Coeffs {
			if dec.Coeffs[i] != pt.Coeffs[i] {
				t.Fatalf("levels=%d: symmetric round trip differs at %d: %d vs %d",
					levels, i, dec.Coeffs[i], pt.Coeffs[i])
			}
		}
		ctPK := p.EncryptPK(rng, pk, pt, levels)
		decPK := p.Decrypt(ctPK, sk)
		for i := range pt.Coeffs {
			if decPK.Coeffs[i] != pt.Coeffs[i] {
				t.Fatalf("levels=%d: public-key round trip differs at %d", levels, i)
			}
		}
	}
}

func TestHomomorphicAdd(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	f := func(seed int64) bool {
		r2 := rand.New(rand.NewSource(seed))
		a, b := p.NewPlaintext(), p.NewPlaintext()
		for i := range a.Coeffs {
			a.Coeffs[i] = r2.Uint64() % p.T.Q
			b.Coeffs[i] = r2.Uint64() % p.T.Q
		}
		cta := p.Encrypt(rng, sk, a, 2)
		ctb := p.Encrypt(rng, sk, b, 2)
		p.Add(cta, cta, ctb)
		dec := p.Decrypt(cta, sk)
		for i := range dec.Coeffs {
			if dec.Coeffs[i] != p.T.Add(a.Coeffs[i], b.Coeffs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDotProductViaMulPlain is the heart of Alg. 1 lines 1-2: the constant
// coefficient of Dec(pt^(A_i) × ct^(v)) must equal the inner product.
func TestDotProductViaMulPlain(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	n := p.R.N
	row := make([]uint64, n)
	vec := make([]uint64, n)
	var want uint64
	for j := 0; j < n; j++ {
		row[j] = uint64(rng.Intn(256))
		vec[j] = uint64(rng.Intn(256))
		want = p.T.Add(want, p.T.Mul(row[j], vec[j]))
	}
	ctV := p.Encrypt(rng, sk, p.EncodeVector(vec), 2)
	prod := p.MulPlain(ctV, p.EncodeRow(row, 1))
	dec := p.Decrypt(prod, sk)
	if got := p.DecodeCoeff(dec, 0); got != want {
		t.Fatalf("dot product = %d, want %d", got, want)
	}
}

// TestMulPlainRescale exercises the augmented pipeline (stages 1-4) and
// checks the rescaled result still decrypts to the correct product.
func TestMulPlainRescale(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	n := p.R.N
	row := make([]uint64, n)
	vec := make([]uint64, n)
	var want uint64
	for j := 0; j < n; j++ {
		row[j] = uint64(rng.Intn(1024))
		vec[j] = rng.Uint64() % p.T.Q
		want = p.T.Add(want, p.T.Mul(row[j], vec[j]))
	}
	ctV := p.Encrypt(rng, sk, p.EncodeVector(vec), 3) // augmented
	out := p.MulPlainRescale(ctV, p.EncodeRow(row, 1))
	if out.Levels() != 2 {
		t.Fatalf("rescaled ciphertext has %d limbs, want 2", out.Levels())
	}
	dec := p.Decrypt(out, sk)
	if got := p.DecodeCoeff(dec, 0); got != want {
		t.Fatalf("dot product = %d, want %d", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MulPlainRescale accepted a normal-basis ciphertext")
			}
		}()
		p.MulPlainRescale(out, p.EncodeRow(row, 1))
	}()
}

// TestRescaleReducesNoise quantifies the paper's stage-4 claim: the
// augmented-multiply-then-rescale flow must leave strictly less noise than
// multiplying in the normal basis directly.
func TestRescaleReducesNoise(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	n := p.R.N
	row := make([]uint64, n)
	vec := make([]uint64, n)
	for j := 0; j < n; j++ {
		row[j] = rng.Uint64() % p.T.Q
		vec[j] = rng.Uint64() % p.T.Q
	}
	pt := p.EncodeRow(row, 1)

	ctAug := p.Encrypt(rng, sk, p.EncodeVector(vec), 3)
	outAug := p.MulPlainRescale(ctAug, pt)
	decAug := p.Decrypt(outAug, sk)

	ctNorm := p.Encrypt(rng, sk, p.EncodeVector(vec), 2)
	outNorm := p.MulPlain(ctNorm, pt)
	decNorm := p.Decrypt(outNorm, sk)

	// Both must still decrypt identically (noise below Δ/2 in both paths).
	for i := range decAug.Coeffs {
		if decAug.Coeffs[i] != decNorm.Coeffs[i] {
			t.Fatalf("rescaled and direct products disagree at %d", i)
		}
	}
	// Compare residual noise against exact expected payloads.
	conv := bigConv(p, pt, p.EncodeVector(vec))

	// Normal path payload: Δ₂·conv mod Q₂.
	delta2 := p.Delta(2)
	wantNorm := make([]*big.Int, len(conv))
	for i, c := range conv {
		wantNorm[i] = new(big.Int).Mul(delta2, c)
	}
	nNorm := p.NoiseBits(outNorm, sk, wantNorm)

	// Augmented path payload after rescale: round(Δ₃·conv/P) mod Q₂.
	delta3 := p.Delta(3)
	pBig := new(big.Int).SetUint64(mod.ChamP)
	halfP := new(big.Int).Rsh(pBig, 1)
	wantAug := make([]*big.Int, len(conv))
	for i, c := range conv {
		v := new(big.Int).Mul(delta3, c)
		v.Add(v, halfP)
		v.Div(v, pBig)
		wantAug[i] = v
	}
	nAug := p.NoiseBits(outAug, sk, wantAug)

	if nAug >= nNorm {
		t.Errorf("rescale did not reduce noise: augmented %f bits vs normal %f bits", nAug, nNorm)
	}
	t.Logf("noise: normal-basis multiply %.0f bits, augmented+rescale %.0f bits", nNorm, nAug)
}

// bigConv returns the negacyclic convolution, over the integers, of the
// centred lifts of two plaintexts.
func bigConv(p Params, a, b *Plaintext) []*big.Int {
	n := p.R.N
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < n; i++ {
		ai := p.T.CenterLift(a.Coeffs[i])
		if ai == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			bj := p.T.CenterLift(b.Coeffs[j])
			if bj == 0 {
				continue
			}
			tmp.SetInt64(ai)
			tmp.Mul(tmp, big.NewInt(bj))
			k := i + j
			if k < n {
				out[k].Add(out[k], tmp)
			} else {
				out[k-n].Sub(out[k-n], tmp)
			}
		}
	}
	return out
}

func TestAddPlainAndMulScalar(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	a := p.NewPlaintext()
	b := p.NewPlaintext()
	for i := range a.Coeffs {
		a.Coeffs[i] = rng.Uint64() % p.T.Q
		b.Coeffs[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, a, 2)
	p.AddPlain(ct, b)
	dec := p.Decrypt(ct, sk)
	for i := range dec.Coeffs {
		if dec.Coeffs[i] != p.T.Add(a.Coeffs[i], b.Coeffs[i]) {
			t.Fatalf("AddPlain wrong at %d", i)
		}
	}

	const c = 37
	ct2 := p.Encrypt(rng, sk, a, 2)
	out := &rlwe.Ciphertext{B: p.R.NewPoly(2), A: p.R.NewPoly(2)}
	p.MulScalar(out, ct2, c)
	dec2 := p.Decrypt(out, sk)
	for i := range dec2.Coeffs {
		if dec2.Coeffs[i] != p.T.Mul(a.Coeffs[i], c) {
			t.Fatalf("MulScalar wrong at %d: %d want %d", i, dec2.Coeffs[i], p.T.Mul(a.Coeffs[i], c))
		}
	}
}

// TestHomomorphicLaws property-tests distributivity of the homomorphic
// operations: Dec(c·(ct_a + ct_b) + pt) == c·(a+b) + pt mod t.
func TestHomomorphicLaws(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	f := func(cRaw uint16, seed int64) bool {
		c := uint64(cRaw)%64 + 1 // small scalar keeps noise bounded
		r2 := rand.New(rand.NewSource(seed))
		a, bb := p.NewPlaintext(), p.NewPlaintext()
		for i := range a.Coeffs {
			a.Coeffs[i] = r2.Uint64() % p.T.Q
			bb.Coeffs[i] = r2.Uint64() % p.T.Q
		}
		cta := p.Encrypt(rng, sk, a, 2)
		ctb := p.Encrypt(rng, sk, bb, 2)
		p.Add(cta, cta, ctb)
		out := &rlwe.Ciphertext{B: p.R.NewPoly(2), A: p.R.NewPoly(2)}
		p.MulScalar(out, cta, c)
		p.AddPlain(out, a)
		dec := p.Decrypt(out, sk)
		for i := range dec.Coeffs {
			want := p.T.Add(p.T.Mul(c, p.T.Add(a.Coeffs[i], bb.Coeffs[i])), a.Coeffs[i])
			if dec.Coeffs[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestMustChamParamsPanics(t *testing.T) {
	if p := MustChamParams(64); p.R.N != 64 {
		t.Error("valid params wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustChamParams(3) did not panic")
		}
	}()
	MustChamParams(3)
}

func TestInvPow2EvenTPanics(t *testing.T) {
	// Construct params with t odd is enforced by TryNew, so exercise the
	// guard directly through a hand-built Params would need an even T,
	// which the constructor forbids — assert that instead.
	r := ring.MustNew(16, mod.ChamModuli())
	if _, err := NewParams(r, 2, 21, 4096); err == nil {
		t.Fatal("even plaintext modulus accepted")
	}
}

func TestEncodeSlotsErrors(t *testing.T) {
	p := testParams(t, 64)
	if _, err := p.EncodeSlots(make([]uint64, p.R.N+1)); err == nil {
		t.Error("oversized slot vector accepted")
	}
	r := ring.MustNew(64, mod.ChamModuli())
	noBatch, _ := NewParams(r, 2, 21, 13)
	if _, err := noBatch.EncodeSlots([]uint64{1}); err == nil {
		t.Error("EncodeSlots without batching accepted")
	}
	if _, err := noBatch.DecodeSlots(noBatch.NewPlaintext()); err == nil {
		t.Error("DecodeSlots without batching accepted")
	}
	if _, err := noBatch.SlotAutomorphismPermutation(3); err == nil {
		t.Error("perm without batching accepted")
	}
}
