package wire

// Message bodies of the serving protocol. Encoders are deterministic —
// the same logical message always produces the same bytes — so content
// hashes over encoded payloads (key-set hashes, matrix IDs) are stable
// across clients, processes and platforms. Crypto objects travel in
// internal/codec's self-describing encoding, which already validates
// residues against the parameter set on decode.

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"cham/internal/bfv"
	"cham/internal/codec"
	"cham/internal/lwe"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// Limits on repeated elements; each is far above anything the production
// parameter set produces but keeps a malformed count from driving large
// loops.
const (
	// MaxKeyEntries bounds automorphism keys in one SetupKeys (log2 N max 12
	// needs 12).
	MaxKeyEntries = 64
	// MaxVectorChunks bounds ciphertext chunks per Apply / tiles per Result.
	MaxVectorChunks = 4096
	// MaxErrorDetail bounds the detail string of an Error message.
	MaxErrorDetail = 4096
	// MaxMatrixEntries bounds rows*cols of a RegisterMatrix (a 4096×16384
	// matrix is 64 Mi entries).
	MaxMatrixEntries = 1 << 26
)

// Hello is the parameter handshake a client opens every connection with;
// both ends must agree on the ring and plaintext modulus bit-for-bit.
type Hello struct {
	RingN        uint32
	Levels       uint32
	NormalLevels uint32
	T            uint64
}

// HelloFor extracts the handshake fields from a parameter set.
func HelloFor(p bfv.Params) Hello {
	return Hello{
		RingN:        uint32(p.R.N),
		Levels:       uint32(p.R.Levels()),
		NormalLevels: uint32(p.NormalLevels),
		T:            p.T.Q,
	}
}

// Encode serializes the handshake.
func (h Hello) Encode() []byte {
	b := make([]byte, 0, 20)
	b = appendU32(b, h.RingN)
	b = appendU32(b, h.Levels)
	b = appendU32(b, h.NormalLevels)
	b = appendU64(b, h.T)
	return b
}

// DecodeHello parses a Hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	d := NewReader(payload)
	h := Hello{RingN: d.U32(), Levels: d.U32(), NormalLevels: d.U32(), T: d.U64()}
	return h, d.Done()
}

// HelloOK echoes the server's parameters plus its serving shape.
type HelloOK struct {
	Hello
	Engines  uint32 // accelerator engines behind the queue (0 = software only)
	MaxBatch uint32 // coalescing limit (1 = batching disabled)
}

// Encode serializes the echo.
func (h HelloOK) Encode() []byte {
	b := h.Hello.Encode()
	b = appendU32(b, h.Engines)
	return appendU32(b, h.MaxBatch)
}

// DecodeHelloOK parses a HelloOK payload.
func DecodeHelloOK(payload []byte) (HelloOK, error) {
	d := NewReader(payload)
	h := HelloOK{
		Hello:    Hello{RingN: d.U32(), Levels: d.U32(), NormalLevels: d.U32(), T: d.U64()},
		Engines:  d.U32(),
		MaxBatch: d.U32(),
	}
	return h, d.Done()
}

// EncodeSetupKeys serializes a packing-key set: the tile cap M plus the
// automorphism switching keys in ascending index order (the sort makes the
// encoding canonical, so KeyHash names the key set).
func EncodeSetupKeys(r *ring.Ring, keys *lwe.PackingKeys) []byte {
	idx := make([]int, 0, len(keys.Keys))
	for k := range keys.Keys {
		idx = append(idx, k)
	}
	sort.Ints(idx)
	b := appendU32(nil, uint32(keys.M))
	b = appendU32(b, uint32(len(idx)))
	for _, k := range idx {
		b = appendU32(b, uint32(k))
		b = appendBlob(b, codec.EncodeSwitchingKey(r, keys.Keys[k]))
	}
	return b
}

// DecodeSetupKeys parses and validates a packing-key set against the ring.
func DecodeSetupKeys(r *ring.Ring, payload []byte) (*lwe.PackingKeys, error) {
	d := NewReader(payload)
	m := d.U32()
	count := d.U32()
	if d.Err() == nil && count > MaxKeyEntries {
		return nil, fmt.Errorf("wire: %d key entries exceeds limit %d", count, MaxKeyEntries)
	}
	keys := &lwe.PackingKeys{M: int(m), Keys: map[int]*rlwe.SwitchingKey{}}
	prev := -1
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		k := d.U32()
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		if int(k) <= prev {
			return nil, fmt.Errorf("wire: key indices not strictly ascending at %d", k)
		}
		prev = int(k)
		swk, err := codec.DecodeSwitchingKey(r, blob)
		if err != nil {
			return nil, fmt.Errorf("wire: key %d: %w", k, err)
		}
		keys.Keys[int(k)] = swk
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if m == 0 || m&(m-1) != 0 || int64(m) > int64(r.N) {
		return nil, fmt.Errorf("wire: key-set M=%d is not a power of two in [1,N]", m)
	}
	for i := 1; i < int(m); i <<= 1 {
		if keys.Keys[2*i+1] == nil {
			return nil, fmt.Errorf("wire: key set for M=%d misses automorphism key %d", m, 2*i+1)
		}
	}
	return keys, nil
}

// SetupKeysOK carries the canonical hash of the installed key set.
type SetupKeysOK struct{ KeyHash [32]byte }

// Encode serializes the acknowledgement.
func (s SetupKeysOK) Encode() []byte { return append([]byte(nil), s.KeyHash[:]...) }

// DecodeSetupKeysOK parses the acknowledgement.
func DecodeSetupKeysOK(payload []byte) (SetupKeysOK, error) {
	d := NewReader(payload)
	s := SetupKeysOK{KeyHash: d.Hash()}
	return s, d.Done()
}

// EncodeRegisterMatrix serializes a cleartext matrix row-major. All values
// must already be reduced mod t; decode enforces it.
func EncodeRegisterMatrix(A [][]uint64) ([]byte, error) {
	rows := len(A)
	if rows == 0 || len(A[0]) == 0 {
		return nil, fmt.Errorf("wire: empty matrix")
	}
	cols := len(A[0])
	if int64(rows)*int64(cols) > MaxMatrixEntries {
		return nil, fmt.Errorf("wire: matrix of %d×%d entries exceeds limit %d", rows, cols, MaxMatrixEntries)
	}
	b := make([]byte, 0, 8+8*rows*cols)
	b = appendU32(b, uint32(rows))
	b = appendU32(b, uint32(cols))
	for i, row := range A {
		if len(row) != cols {
			return nil, fmt.Errorf("wire: ragged matrix row %d", i)
		}
		for _, v := range row {
			b = appendU64(b, v)
		}
	}
	return b, nil
}

// DecodeRegisterMatrix parses a matrix, validating shape and that every
// entry is a residue mod t.
func DecodeRegisterMatrix(t uint64, payload []byte) ([][]uint64, error) {
	d := NewReader(payload)
	rows := d.U32()
	cols := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("wire: empty matrix")
	}
	entries := uint64(rows) * uint64(cols) // cannot overflow: both are uint32
	if entries > MaxMatrixEntries {
		return nil, fmt.Errorf("wire: matrix of %d×%d entries exceeds limit %d", rows, cols, MaxMatrixEntries)
	}
	if uint64(len(payload)-8) != 8*entries {
		return nil, fmt.Errorf("wire: matrix payload %d bytes, want %d", len(payload)-8, 8*entries)
	}
	A := make([][]uint64, rows)
	backing := make([]uint64, entries)
	for i := range A {
		A[i], backing = backing[:cols], backing[cols:]
		for j := range A[i] {
			v := d.U64()
			if v >= t {
				return nil, fmt.Errorf("wire: matrix entry (%d,%d)=%d not reduced mod t=%d", i, j, v, t)
			}
			A[i][j] = v
		}
	}
	return A, d.Done()
}

// MatrixID names a matrix by the SHA-256 of its canonical encoding, so
// registration is idempotent and a client can derive the handle offline.
func MatrixID(A [][]uint64) ([32]byte, error) {
	payload, err := EncodeRegisterMatrix(A)
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(payload), nil
}

// KeyHash names a packing-key set by the SHA-256 of its canonical encoding.
func KeyHash(r *ring.Ring, keys *lwe.PackingKeys) [32]byte {
	return sha256.Sum256(EncodeSetupKeys(r, keys))
}

// MatrixHandle is the server's name for a registered prepared matrix:
// the content hash plus the serving geometry a client needs to shape
// requests (chunk count) and results (tile count).
type MatrixHandle struct {
	ID     [32]byte
	Rows   uint32
	Cols   uint32
	Chunks uint32 // vector ciphertexts per Apply
	Tiles  uint32 // packed ciphertexts per Result
}

// Encode serializes the handle.
func (h MatrixHandle) Encode() []byte {
	b := make([]byte, 0, 48)
	b = append(b, h.ID[:]...)
	b = appendU32(b, h.Rows)
	b = appendU32(b, h.Cols)
	b = appendU32(b, h.Chunks)
	return appendU32(b, h.Tiles)
}

// DecodeMatrixHandle parses a handle.
func DecodeMatrixHandle(payload []byte) (MatrixHandle, error) {
	d := NewReader(payload)
	h := MatrixHandle{ID: d.Hash(), Rows: d.U32(), Cols: d.U32(), Chunks: d.U32(), Tiles: d.U32()}
	return h, d.Done()
}

// Apply asks the server to multiply a registered matrix with an encrypted
// vector. DeadlineMicros (0 = server default) bounds queue wait + service
// from the server's receive time.
type Apply struct {
	ID             [32]byte
	DeadlineMicros uint64
	Vector         []*rlwe.Ciphertext
}

// EncodeApply serializes the request.
func EncodeApply(r *ring.Ring, a Apply) []byte {
	b := append([]byte(nil), a.ID[:]...)
	b = appendU64(b, a.DeadlineMicros)
	b = appendU32(b, uint32(len(a.Vector)))
	for _, ct := range a.Vector {
		b = appendBlob(b, codec.EncodeCiphertext(r, ct))
	}
	return b
}

// DecodeApply parses the request, validating each chunk against the ring.
func DecodeApply(r *ring.Ring, payload []byte) (Apply, error) {
	d := NewReader(payload)
	a := Apply{ID: d.Hash(), DeadlineMicros: d.U64()}
	count := d.U32()
	if d.Err() == nil && count > MaxVectorChunks {
		return Apply{}, fmt.Errorf("wire: %d vector chunks exceeds limit %d", count, MaxVectorChunks)
	}
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		ct, err := codec.DecodeCiphertext(r, blob)
		if err != nil {
			return Apply{}, fmt.Errorf("wire: vector chunk %d: %w", i, err)
		}
		a.Vector = append(a.Vector, ct)
	}
	if err := d.Done(); err != nil {
		return Apply{}, err
	}
	return a, nil
}

// Result carries the packed HMVP output: one RLWE ciphertext per row tile.
type Result struct {
	M      uint32 // total result rows
	N      uint32 // ring degree (slot stride computation)
	Packed []*rlwe.Ciphertext
}

// EncodeResult serializes a result.
func EncodeResult(r *ring.Ring, res Result) []byte {
	b := appendU32(nil, res.M)
	b = appendU32(b, res.N)
	b = appendU32(b, uint32(len(res.Packed)))
	for _, ct := range res.Packed {
		b = appendBlob(b, codec.EncodeCiphertext(r, ct))
	}
	return b
}

// DecodeResult parses a result.
func DecodeResult(r *ring.Ring, payload []byte) (Result, error) {
	d := NewReader(payload)
	res := Result{M: d.U32(), N: d.U32()}
	count := d.U32()
	if d.Err() == nil && count > MaxVectorChunks {
		return Result{}, fmt.Errorf("wire: %d result tiles exceeds limit %d", count, MaxVectorChunks)
	}
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		ct, err := codec.DecodeCiphertext(r, blob)
		if err != nil {
			return Result{}, fmt.Errorf("wire: result tile %d: %w", i, err)
		}
		res.Packed = append(res.Packed, ct)
	}
	if err := d.Done(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// EncodePublicKey serializes an encryption public key (full basis, NTT
// domain) — the remaining key material a multi-party deployment ships so
// third parties can encrypt inputs without the secret.
func EncodePublicKey(r *ring.Ring, pk *rlwe.PublicKey) []byte {
	b := appendBlob(nil, codec.EncodePoly(r, pk.B))
	return appendBlob(b, codec.EncodePoly(r, pk.A))
}

// DecodePublicKey parses a public key.
func DecodePublicKey(r *ring.Ring, payload []byte) (*rlwe.PublicKey, error) {
	d := NewReader(payload)
	bBlob := d.Blob()
	aBlob := d.Blob()
	if err := d.Done(); err != nil {
		return nil, err
	}
	b, err := codec.DecodePoly(r, bBlob)
	if err != nil {
		return nil, fmt.Errorf("wire: public key b: %w", err)
	}
	a, err := codec.DecodePoly(r, aBlob)
	if err != nil {
		return nil, fmt.Errorf("wire: public key a: %w", err)
	}
	if b.Levels() != r.Levels() || a.Levels() != r.Levels() || !b.IsNTT || !a.IsNTT {
		return nil, fmt.Errorf("wire: public key must be full-basis NTT domain")
	}
	return &rlwe.PublicKey{B: b, A: a}, nil
}
