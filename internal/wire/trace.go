package wire

// Distributed-tracing extension of the frame protocol (DESIGN.md §9).
//
// A traced frame is protocol revision 2: the same 12-byte header with
// version=2, whose payload is prefixed by a fixed 25-byte trace header
// (traceID 16 + spanID 8 + flags 1). Revision 1 peers reject version 2
// at the frame layer, so a client may only send traced frames after a
// successful capability probe: it sends MsgTraceHello (a new message
// type inside an ordinary v1 frame); a trace-aware server answers
// MsgTraceHelloOK, while an older server answers its generic
// unknown-message CodeBadRequest error and keeps the connection alive —
// the client falls back to plain v1 frames and the request still
// serves. Responses always travel as v1: span data flows out-of-band
// through each node's ring buffer, merged by TraceID in cmd/chamtrace,
// so only the request direction needs the header.
//
// Unsampled requests are sent as plain v1 frames even on a negotiated
// connection — the whole extension costs one branch per hop when idle.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameVersionTraced is the protocol revision whose payloads carry a
// leading trace header.
const FrameVersionTraced = 2

// TraceHeaderLen is traceID(16) + spanID(8) + flags(1).
const TraceHeaderLen = 25

// TraceFlagSampled marks a request whose spans are being recorded.
const TraceFlagSampled = 0x01

// TraceHeader is the propagated trace context of one request frame.
// The zero value means "untraced".
type TraceHeader struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   uint8
}

// Sampled reports whether the request is being recorded.
func (h TraceHeader) Sampled() bool { return h.Flags&TraceFlagSampled != 0 }

// IsZero reports whether the header is absent/untraced.
func (h TraceHeader) IsZero() bool { return h == TraceHeader{} }

// AppendTraceHeader appends the 25-byte trace block.
func AppendTraceHeader(dst []byte, h TraceHeader) []byte {
	dst = append(dst, h.TraceID[:]...)
	dst = append(dst, h.SpanID[:]...)
	return append(dst, h.Flags)
}

// DecodeTraceHeader splits a version-2 payload into its trace header
// and the message body that follows.
func DecodeTraceHeader(payload []byte) (TraceHeader, []byte, error) {
	if len(payload) < TraceHeaderLen {
		return TraceHeader{}, nil, fmt.Errorf("wire: traced frame of %d bytes shorter than trace header", len(payload))
	}
	var h TraceHeader
	copy(h.TraceID[:], payload[0:16])
	copy(h.SpanID[:], payload[16:24])
	h.Flags = payload[24]
	if h.Flags&^TraceFlagSampled != 0 {
		return TraceHeader{}, nil, fmt.Errorf("wire: unknown trace flags %#x", h.Flags)
	}
	return h, payload[TraceHeaderLen:], nil
}

// AppendFrameTraced appends one version-2 framed message carrying th.
func AppendFrameTraced(dst []byte, t MsgType, seq uint16, th TraceHeader, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = FrameVersionTraced
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint16(hdr[6:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(TraceHeaderLen+len(payload)))
	dst = append(dst, hdr[:]...)
	dst = AppendTraceHeader(dst, th)
	return append(dst, payload...)
}

// WriteFrameTraced writes one version-2 framed message.
func WriteFrameTraced(w io.Writer, t MsgType, seq uint16, th TraceHeader, payload []byte) error {
	buf := AppendFrameTraced(make([]byte, 0, frameHeaderLen+TraceHeaderLen+len(payload)), t, seq, th, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrameAny reads one frame accepting both protocol revisions: a
// version-1 frame yields a zero TraceHeader, a version-2 frame has its
// trace block split off the payload. Trace-aware read loops (server,
// gateway) use this in place of ReadFrame; ReadFrame itself stays
// strict v1, preserving the behaviour of pre-tracing peers.
func ReadFrameAny(r io.Reader, max uint32) (MsgType, uint16, TraceHeader, []byte, error) {
	if max == 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, TraceHeader{}, nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != FrameMagic {
		return 0, 0, TraceHeader{}, nil, fmt.Errorf("wire: bad frame magic")
	}
	version := hdr[4]
	if version != FrameVersion && version != FrameVersionTraced {
		return 0, 0, TraceHeader{}, nil, fmt.Errorf("wire: unsupported protocol version %d", version)
	}
	t := MsgType(hdr[5])
	seq := binary.LittleEndian.Uint16(hdr[6:])
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > max {
		return 0, 0, TraceHeader{}, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, TraceHeader{}, nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	if version == FrameVersion {
		return t, seq, TraceHeader{}, payload, nil
	}
	th, body, err := DecodeTraceHeader(payload)
	if err != nil {
		return 0, 0, TraceHeader{}, nil, err
	}
	return t, seq, th, body, nil
}

// TraceHello is the capability probe: the highest frame revision the
// client can speak.
type TraceHello struct {
	MaxVersion uint8
}

// Encode serializes the probe.
func (h TraceHello) Encode() []byte { return []byte{h.MaxVersion} }

// DecodeTraceHello parses a TraceHello payload.
func DecodeTraceHello(payload []byte) (TraceHello, error) {
	d := NewReader(payload)
	h := TraceHello{MaxVersion: d.U8()}
	return h, d.Done()
}

// TraceHelloOK acknowledges the probe with the revision the server
// accepts for this connection.
type TraceHelloOK struct {
	Version uint8
}

// Encode serializes the acknowledgement.
func (h TraceHelloOK) Encode() []byte { return []byte{h.Version} }

// DecodeTraceHelloOK parses a TraceHelloOK payload.
func DecodeTraceHelloOK(payload []byte) (TraceHelloOK, error) {
	d := NewReader(payload)
	h := TraceHelloOK{Version: d.U8()}
	return h, d.Done()
}
