// Package wire is the serving-tier protocol for cham: a versioned,
// deterministic, length-prefixed binary framing over which a client ships
// key material and encrypted vectors to a chamserve instance and receives
// packed HMVP results back (the Delphi-style deployment shape §III-C's
// host/card split implies at datacenter scale).
//
// A connection carries a sequence of frames:
//
//	magic(4) version(1) type(1) seq(2) length(4) payload...
//
// All integers are little-endian. seq is an opaque client-chosen value the
// server echoes on the response, so a client can detect desynchronised
// streams. Crypto payloads (ciphertexts, switching keys) reuse the
// self-describing object encoding of internal/codec; this package adds the
// request/response message layer, key-set and matrix encodings, and the
// content hashes that name registered matrices.
//
// Every decoder is strict and bounds-checked: malformed, truncated, or
// oversized input yields an error, never a panic, and never an allocation
// larger than the input that claimed it (FuzzWireDecode enforces this).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameMagic identifies a cham serving frame ("CHWV" when read as
// little-endian bytes).
const FrameMagic uint32 = 0x56574843

// FrameVersion is the current protocol revision. A server rejects frames
// from any other revision, so incompatible ends fail fast at the Hello.
const FrameVersion = 1

// frameHeaderLen is magic(4)+version(1)+type(1)+seq(2)+length(4).
const frameHeaderLen = 12

// DefaultMaxFrame bounds an accepted frame payload (256 MiB covers the
// largest key set at production parameters with wide margin).
const DefaultMaxFrame uint32 = 1 << 28

// MsgType discriminates frame payloads.
type MsgType uint8

// Message types. Requests are odd commentary aside — each request type has
// a single success response type; any request may instead be answered by
// MsgError.
const (
	MsgHello          MsgType = 1 // client → server: parameter handshake
	MsgHelloOK        MsgType = 2 // server → client: parameter echo
	MsgSetupKeys      MsgType = 3 // client → server: packing (automorphism) keys
	MsgSetupKeysOK    MsgType = 4 // server → client: installed key-set hash
	MsgRegisterMatrix MsgType = 5 // client → server: cleartext matrix
	MsgMatrixHandle   MsgType = 6 // server → client: content-hash handle
	MsgApply          MsgType = 7 // client → server: encrypted vector
	MsgResult         MsgType = 8 // server → client: packed HMVP result
	MsgError          MsgType = 9 // server → client: typed failure
	MsgPing           MsgType = 10
	MsgPong           MsgType = 11
	MsgTileApply      MsgType = 12 // coordinator → shard: tile-subset HMVP job (or warm-up)
	MsgTileResult     MsgType = 13 // shard → coordinator: packed tiles for the subset
	MsgRegistrySync   MsgType = 14 // peer → node: pull or push of the matrix registry
	MsgRegistryState  MsgType = 15 // node → peer: installed keys + matrix payloads
	MsgTraceHello     MsgType = 16 // client → server: trace-capability probe (see trace.go)
	MsgTraceHelloOK   MsgType = 17 // server → client: traced frames accepted
)

// String names the type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgHelloOK:
		return "HelloOK"
	case MsgSetupKeys:
		return "SetupKeys"
	case MsgSetupKeysOK:
		return "SetupKeysOK"
	case MsgRegisterMatrix:
		return "RegisterMatrix"
	case MsgMatrixHandle:
		return "MatrixHandle"
	case MsgApply:
		return "Apply"
	case MsgResult:
		return "Result"
	case MsgError:
		return "Error"
	case MsgPing:
		return "Ping"
	case MsgPong:
		return "Pong"
	case MsgTileApply:
		return "TileApply"
	case MsgTileResult:
		return "TileResult"
	case MsgRegistrySync:
		return "RegistrySync"
	case MsgRegistryState:
		return "RegistryState"
	case MsgTraceHello:
		return "TraceHello"
	case MsgTraceHelloOK:
		return "TraceHelloOK"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// AppendFrame appends one framed message to dst and returns the extended
// slice.
func AppendFrame(dst []byte, t MsgType, seq uint16, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = FrameVersion
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint16(hdr[6:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, t MsgType, seq uint16, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)), t, seq, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame, rejecting payloads above max
// (0 means DefaultMaxFrame) before allocating anything for them.
func ReadFrame(r io.Reader, max uint32) (MsgType, uint16, []byte, error) {
	if max == 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != FrameMagic {
		return 0, 0, nil, fmt.Errorf("wire: bad frame magic")
	}
	if hdr[4] != FrameVersion {
		return 0, 0, nil, fmt.Errorf("wire: unsupported protocol version %d", hdr[4])
	}
	t := MsgType(hdr[5])
	seq := binary.LittleEndian.Uint16(hdr[6:])
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > max {
		return 0, 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return t, seq, payload, nil
}

// --- payload primitives ---

// Reader is an error-sticky, bounds-checked cursor over a payload. Every
// accessor returns the zero value once an error has occurred, so decoders
// read linearly and check Err (or Done) once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

func (d *Reader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// take consumes n bytes or sets the truncation error.
func (d *Reader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated payload (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Reader) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Reader) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Reader) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Reader) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Hash reads a 32-byte content hash.
func (d *Reader) Hash() (h [32]byte) {
	copy(h[:], d.take(32))
	return h
}

// Blob reads a u32-length-prefixed byte string. The length is validated
// against the remaining input before any allocation, so a lying prefix
// cannot trigger a huge make.
func (d *Reader) Blob() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(len(d.buf)-d.off) {
		d.fail("blob of %d bytes exceeds remaining %d", n, len(d.buf)-d.off)
		return nil
	}
	return d.take(int(n))
}

// Err reports the first decoding error.
func (d *Reader) Err() error { return d.err }

// Done returns the first decoding error, or an error if input remains
// unconsumed — strict decoders reject padded frames.
func (d *Reader) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return nil
}

// appendU16/32/64 are the builder-side primitives.
func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// appendBlob writes a u32-length-prefixed byte string.
func appendBlob(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}
