package wire

// Typed protocol failures. The server answers any request with MsgError
// carrying a stable numeric code plus human-readable detail; the client
// surfaces it as *wire.Error so callers can branch with errors.As /
// errors.Is and the retry layer can distinguish transient overload from
// permanent misuse.

import (
	"errors"
	"fmt"
)

// Error codes. Codes are part of the wire contract — append, never renumber.
const (
	CodeBadRequest     uint16 = 1 // malformed or semantically invalid request
	CodeOverloaded     uint16 = 2 // admission queue full; retry with backoff
	CodeUnknownMatrix  uint16 = 3 // Apply names an unregistered matrix
	CodeKeysRequired   uint16 = 4 // request needs SetupKeys first
	CodeKeysConflict   uint16 = 5 // SetupKeys disagrees with the installed set
	CodeDeadline       uint16 = 6 // request deadline expired in queue or service
	CodeDraining       uint16 = 7 // server is shutting down; retry elsewhere
	CodeParamsMismatch uint16 = 8  // Hello parameters disagree with the server's
	CodeInternal       uint16 = 9  // server-side failure
	CodeDegraded       uint16 = 10 // cluster quorum unreachable; partial shard coverage
)

// codeNames maps codes to stable identifiers (also used as metric labels).
var codeNames = map[uint16]string{
	CodeBadRequest:     "bad_request",
	CodeOverloaded:     "overloaded",
	CodeUnknownMatrix:  "unknown_matrix",
	CodeKeysRequired:   "keys_required",
	CodeKeysConflict:   "keys_conflict",
	CodeDeadline:       "deadline",
	CodeDraining:       "draining",
	CodeParamsMismatch: "params_mismatch",
	CodeInternal:       "internal",
	CodeDegraded:       "degraded",
}

// CodeName returns the stable identifier for a code.
func CodeName(code uint16) string {
	if n, ok := codeNames[code]; ok {
		return n
	}
	return fmt.Sprintf("code_%d", code)
}

// Error is a typed protocol failure.
type Error struct {
	Code   uint16
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("cham server: %s: %s", CodeName(e.Code), e.Detail)
}

// Retryable reports whether a fresh attempt may succeed: overload,
// drain, and cluster degradation are transient serving states, everything
// else reflects the request itself.
func (e *Error) Retryable() bool {
	return e.Code == CodeOverloaded || e.Code == CodeDraining || e.Code == CodeDegraded
}

// Is matches two wire errors by code, so errors.Is(err, &wire.Error{Code:
// wire.CodeOverloaded}) works regardless of detail text.
func (e *Error) Is(target error) bool {
	var t *Error
	if !errors.As(target, &t) {
		return false
	}
	return e.Code == t.Code
}

// ErrOverloaded is the sentinel for admission-control rejection.
var ErrOverloaded = &Error{Code: CodeOverloaded, Detail: "admission queue full"}

// Errf builds a typed error with formatted detail.
func Errf(code uint16, format string, args ...any) *Error {
	return &Error{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// Encode serializes the error message.
func (e *Error) Encode() []byte {
	detail := e.Detail
	if len(detail) > MaxErrorDetail {
		detail = detail[:MaxErrorDetail]
	}
	b := appendU16(nil, e.Code)
	return appendBlob(b, []byte(detail))
}

// DecodeError parses an error message.
func DecodeError(payload []byte) (*Error, error) {
	d := NewReader(payload)
	code := d.U16()
	detail := d.Blob()
	if err := d.Done(); err != nil {
		return nil, err
	}
	if len(detail) > MaxErrorDetail {
		return nil, fmt.Errorf("wire: error detail of %d bytes exceeds limit", len(detail))
	}
	return &Error{Code: code, Detail: string(detail)}, nil
}
