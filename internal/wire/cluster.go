package wire

// Cluster-tier messages: the tile-range job a coordinator scatters at a
// shard node, and the registry synchronization a joining node uses to
// pull (or a coordinator to push) the replicated matrix registry before
// the node takes traffic. Both follow the package's rules: deterministic
// encodings, strict bounds-checked decoding that never panics, crypto
// payloads in internal/codec's self-describing form.
//
// Row tiles are the sharding unit because they are the packing unit: a
// prepared matrix yields exactly one packed ciphertext per tile of up to
// N rows, computed independently of every other tile, so a gather that
// places each tile's ciphertext at its index reproduces the single-node
// result bit for bit (the gather-merge invariant DESIGN.md §13 states).

import (
	"fmt"

	"cham/internal/codec"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// MaxRegistryEntries bounds matrices in one RegistrySync/RegistryState
// (the per-frame byte budget MaxFrame is the real limit; this keeps a
// malformed count from driving a large loop).
const MaxRegistryEntries = 1024

// TileApply asks a shard node to multiply only the listed row tiles of a
// registered matrix with an encrypted vector. Warm requests carry no
// vector: the node prepares the tiles (from its replicated registry) and
// acknowledges, so a coordinator can pre-position tiles before traffic.
type TileApply struct {
	ID             [32]byte
	DeadlineMicros uint64
	Warm           bool
	Tiles          []uint32 // strictly ascending row-tile indices
	Vector         []*rlwe.Ciphertext
}

// EncodeTileApply serializes the request.
func EncodeTileApply(r *ring.Ring, a TileApply) []byte {
	b := append([]byte(nil), a.ID[:]...)
	b = appendU64(b, a.DeadlineMicros)
	if a.Warm {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(a.Tiles)))
	for _, t := range a.Tiles {
		b = appendU32(b, t)
	}
	b = appendU32(b, uint32(len(a.Vector)))
	for _, ct := range a.Vector {
		b = appendBlob(b, codec.EncodeCiphertext(r, ct))
	}
	return b
}

// DecodeTileApply parses the request, validating the tile list and each
// vector chunk against the ring.
func DecodeTileApply(r *ring.Ring, payload []byte) (TileApply, error) {
	d := NewReader(payload)
	a := TileApply{ID: d.Hash(), DeadlineMicros: d.U64()}
	switch d.U8() {
	case 0:
	case 1:
		a.Warm = true
	default:
		if d.Err() == nil {
			return TileApply{}, fmt.Errorf("wire: tile apply warm flag not 0/1")
		}
	}
	tiles, err := decodeTileList(d)
	if err != nil {
		return TileApply{}, err
	}
	a.Tiles = tiles
	count := d.U32()
	if d.Err() == nil && count > MaxVectorChunks {
		return TileApply{}, fmt.Errorf("wire: %d vector chunks exceeds limit %d", count, MaxVectorChunks)
	}
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		ct, err := codec.DecodeCiphertext(r, blob)
		if err != nil {
			return TileApply{}, fmt.Errorf("wire: vector chunk %d: %w", i, err)
		}
		a.Vector = append(a.Vector, ct)
	}
	if a.Warm && len(a.Vector) != 0 {
		return TileApply{}, fmt.Errorf("wire: warm tile apply carries a vector")
	}
	if err := d.Done(); err != nil {
		return TileApply{}, err
	}
	return a, nil
}

// decodeTileList reads a strictly ascending u32 tile-index list.
func decodeTileList(d *Reader) ([]uint32, error) {
	count := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count == 0 {
		return nil, fmt.Errorf("wire: empty tile list")
	}
	if count > MaxVectorChunks {
		return nil, fmt.Errorf("wire: %d tiles exceeds limit %d", count, MaxVectorChunks)
	}
	tiles := make([]uint32, 0, count)
	prev := int64(-1)
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		t := d.U32()
		if d.Err() != nil {
			break
		}
		if int64(t) <= prev {
			return nil, fmt.Errorf("wire: tile indices not strictly ascending at %d", t)
		}
		prev = int64(t)
		tiles = append(tiles, t)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return tiles, nil
}

// TileResult carries the packed ciphertexts for the requested tiles, each
// labelled with its tile index so a coordinator can place it directly into
// the gathered result. A warm-up acknowledgement carries zero entries.
type TileResult struct {
	M      uint32 // total matrix rows (the full result's M)
	N      uint32 // ring degree
	Tiles  []uint32
	Packed []*rlwe.Ciphertext // one per entry of Tiles
}

// EncodeTileResult serializes a tile result.
func EncodeTileResult(r *ring.Ring, res TileResult) []byte {
	b := appendU32(nil, res.M)
	b = appendU32(b, res.N)
	b = appendU32(b, uint32(len(res.Tiles)))
	for i, t := range res.Tiles {
		b = appendU32(b, t)
		b = appendBlob(b, codec.EncodeCiphertext(r, res.Packed[i]))
	}
	return b
}

// DecodeTileResult parses a tile result.
func DecodeTileResult(r *ring.Ring, payload []byte) (TileResult, error) {
	d := NewReader(payload)
	res := TileResult{M: d.U32(), N: d.U32()}
	count := d.U32()
	if d.Err() == nil && count > MaxVectorChunks {
		return TileResult{}, fmt.Errorf("wire: %d result tiles exceeds limit %d", count, MaxVectorChunks)
	}
	prev := int64(-1)
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		t := d.U32()
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		if int64(t) <= prev {
			return TileResult{}, fmt.Errorf("wire: result tile indices not strictly ascending at %d", t)
		}
		prev = int64(t)
		ct, err := codec.DecodeCiphertext(r, blob)
		if err != nil {
			return TileResult{}, fmt.Errorf("wire: result tile %d: %w", t, err)
		}
		res.Tiles = append(res.Tiles, t)
		res.Packed = append(res.Packed, ct)
	}
	if err := d.Done(); err != nil {
		return TileResult{}, err
	}
	return res, nil
}

// RegistrySync is the replicated-registry transfer. A pull (Push=false,
// no payloads) asks a node for its registry; a push ships key material
// and matrix payloads for the node to install. Matrix payloads are
// canonical RegisterMatrix encodings, so their SHA-256 is their ID and
// installation is idempotent. Keys is a canonical SetupKeys payload
// (empty = absent).
type RegistrySync struct {
	Push     bool
	Keys     []byte
	Matrices [][]byte
}

// Encode serializes the sync request.
func (s RegistrySync) Encode() []byte {
	var b []byte
	if s.Push {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendBlob(b, s.Keys)
	b = appendU32(b, uint32(len(s.Matrices)))
	for _, m := range s.Matrices {
		b = appendBlob(b, m)
	}
	return b
}

// DecodeRegistrySync parses a sync request.
func DecodeRegistrySync(payload []byte) (RegistrySync, error) {
	d := NewReader(payload)
	var s RegistrySync
	switch d.U8() {
	case 0:
	case 1:
		s.Push = true
	default:
		if d.Err() == nil {
			return RegistrySync{}, fmt.Errorf("wire: registry sync push flag not 0/1")
		}
	}
	keys := d.Blob()
	if len(keys) > 0 {
		s.Keys = append([]byte(nil), keys...)
	}
	mats, err := decodeMatrixPayloads(d)
	if err != nil {
		return RegistrySync{}, err
	}
	s.Matrices = mats
	if err := d.Done(); err != nil {
		return RegistrySync{}, err
	}
	return s, nil
}

// RegistryState is the response to a RegistrySync: the node's installed
// key set (canonical payload + hash; zero hash = no keys yet) and its
// registered matrix payloads. A push is acknowledged with the resulting
// state header only (no payloads echoed back).
type RegistryState struct {
	KeyHash  [32]byte
	Keys     []byte
	Matrices [][]byte
}

// Encode serializes the state.
func (s RegistryState) Encode() []byte {
	b := append([]byte(nil), s.KeyHash[:]...)
	b = appendBlob(b, s.Keys)
	b = appendU32(b, uint32(len(s.Matrices)))
	for _, m := range s.Matrices {
		b = appendBlob(b, m)
	}
	return b
}

// DecodeRegistryState parses the state.
func DecodeRegistryState(payload []byte) (RegistryState, error) {
	d := NewReader(payload)
	s := RegistryState{KeyHash: d.Hash()}
	keys := d.Blob()
	if len(keys) > 0 {
		s.Keys = append([]byte(nil), keys...)
	}
	mats, err := decodeMatrixPayloads(d)
	if err != nil {
		return RegistryState{}, err
	}
	s.Matrices = mats
	if err := d.Done(); err != nil {
		return RegistryState{}, err
	}
	return s, nil
}

// decodeMatrixPayloads reads a bounded list of matrix payload blobs.
func decodeMatrixPayloads(d *Reader) ([][]byte, error) {
	count := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count > MaxRegistryEntries {
		return nil, fmt.Errorf("wire: %d registry entries exceeds limit %d", count, MaxRegistryEntries)
	}
	var mats [][]byte
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		blob := d.Blob()
		if d.Err() != nil {
			break
		}
		mats = append(mats, append([]byte(nil), blob...))
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return mats, nil
}
