package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/ring"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

func testParams(t testing.TB, n int) bfv.Params {
	t.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func samePoly(a, b *ring.Poly) bool {
	if a.Levels() != b.Levels() || a.IsNTT != b.IsNTT {
		return false
	}
	for l := range a.Coeffs {
		for i := range a.Coeffs[l] {
			if a.Coeffs[l][i] != b.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

func sameCiphertext(a, b *rlwe.Ciphertext) bool {
	return samePoly(a.B, b.B) && samePoly(a.A, b.A)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, MsgApply, 42, payload); err != nil {
		t.Fatal(err)
	}
	typ, seq, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgApply || seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type=%v seq=%d payload=%v", typ, seq, got)
	}
}

func TestFrameRejections(t *testing.T) {
	good := AppendFrame(nil, MsgPing, 0, nil)

	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, _, _, err := ReadFrame(bytes.NewReader(bad), 0); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, _, _, err := ReadFrame(bytes.NewReader(bad), 0); err == nil {
		t.Fatal("bad version accepted")
	}

	// Oversized length rejected before the body is read.
	over := AppendFrame(nil, MsgPing, 0, make([]byte, 100))
	if _, _, _, err := ReadFrame(bytes.NewReader(over), 10); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Truncated body.
	if _, _, _, err := ReadFrame(bytes.NewReader(over[:20]), 0); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Truncated header is io.EOF / ErrUnexpectedEOF, never a panic.
	for cut := 0; cut < len(good); cut++ {
		if _, _, _, err := ReadFrame(bytes.NewReader(good[:cut]), 0); err == nil {
			t.Fatalf("header cut at %d accepted", cut)
		}
	}
	_ = io.EOF
}

func TestHelloRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	h := HelloFor(p)
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round trip: %+v != %+v", got, h)
	}
	ok := HelloOK{Hello: h, Engines: 2, MaxBatch: 16}
	gotOK, err := DecodeHelloOK(ok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != ok {
		t.Fatalf("helloOK round trip: %+v != %+v", gotOK, ok)
	}
	if _, err := DecodeHello(append(h.Encode(), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestSetupKeysRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	payload := EncodeSetupKeys(p.R, keys)
	// Deterministic encoding: re-encoding yields the same bytes and hash.
	if !bytes.Equal(payload, EncodeSetupKeys(p.R, keys)) {
		t.Fatal("SetupKeys encoding not deterministic")
	}
	got, err := DecodeSetupKeys(p.R, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != keys.M || len(got.Keys) != len(keys.Keys) {
		t.Fatalf("key set shape: M=%d keys=%d", got.M, len(got.Keys))
	}
	for k, swk := range keys.Keys {
		g := got.Keys[k]
		if g == nil {
			t.Fatalf("missing key %d", k)
		}
		for j := range swk.Bs {
			if !samePoly(swk.Bs[j], g.Bs[j]) || !samePoly(swk.As[j], g.As[j]) {
				t.Fatalf("key %d digit %d mismatch", k, j)
			}
		}
		if g.BsShoup == nil {
			t.Fatalf("key %d decoded without Shoup precomputation", k)
		}
	}
	if KeyHash(p.R, keys) != KeyHash(p.R, got) {
		t.Fatal("key hash not stable across a round trip")
	}

	// A decoded key set must drive a working evaluator.
	ev, err := core.NewEvaluatorFromKeys(p, got)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 4, p.R.N, p.T.Q)
	v := testutil.Vector(rng, p.R.N, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	res, err := ev.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	want := core.PlainMatVec(p, A, v)
	for i, g := range core.DecryptResult(p, res, sk) {
		if g != want[i] {
			t.Fatalf("row %d: got %d want %d", i, g, want[i])
		}
	}
}

func TestSetupKeysRejectsIncompleteSet(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	delete(keys.Keys, 5) // drop the i=2 automorphism key
	payload := EncodeSetupKeys(p.R, keys)
	if _, err := DecodeSetupKeys(p.R, payload); err == nil {
		t.Fatal("incomplete key set accepted")
	}
}

func TestRegisterMatrixRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	A := testutil.Matrix(rng, 5, 70, p.T.Q)
	payload, err := EncodeRegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRegisterMatrix(p.T.Q, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range A {
		for j := range A[i] {
			if got[i][j] != A[i][j] {
				t.Fatalf("entry (%d,%d): %d != %d", i, j, got[i][j], A[i][j])
			}
		}
	}
	id1, _ := MatrixID(A)
	id2, _ := MatrixID(got)
	if id1 != id2 {
		t.Fatal("matrix ID not stable across a round trip")
	}

	// Unreduced entries are rejected.
	A[0][0] = p.T.Q
	bad, err := EncodeRegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRegisterMatrix(p.T.Q, bad); err == nil {
		t.Fatal("unreduced matrix entry accepted")
	}

	// Ragged and empty matrices are rejected at encode time.
	if _, err := EncodeRegisterMatrix([][]uint64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix encoded")
	}
	if _, err := EncodeRegisterMatrix(nil); err == nil {
		t.Fatal("empty matrix encoded")
	}
}

func TestApplyAndResultRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	v := testutil.Vector(rng, 2*p.R.N, p.T.Q) // two chunks
	ctV := core.EncryptVector(p, rng, sk, v)

	a := Apply{DeadlineMicros: 12345, Vector: ctV}
	for i := range a.ID {
		a.ID[i] = byte(i)
	}
	got, err := DecodeApply(p.R, EncodeApply(p.R, a))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != a.ID || got.DeadlineMicros != a.DeadlineMicros || len(got.Vector) != len(ctV) {
		t.Fatalf("apply header mismatch: %+v", got)
	}
	for i := range ctV {
		if !sameCiphertext(got.Vector[i], ctV[i]) {
			t.Fatalf("vector chunk %d mismatch", i)
		}
	}

	res := Result{M: 7, N: uint32(p.R.N), Packed: []*rlwe.Ciphertext{
		p.EncryptZeroSym(rng, sk, p.NormalLevels),
		p.EncryptZeroSym(rng, sk, p.NormalLevels),
	}}
	gotRes, err := DecodeResult(p.R, EncodeResult(p.R, res))
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.M != res.M || gotRes.N != res.N || len(gotRes.Packed) != len(res.Packed) {
		t.Fatalf("result header mismatch: %+v", gotRes)
	}
	for i := range res.Packed {
		if !sameCiphertext(gotRes.Packed[i], res.Packed[i]) {
			t.Fatalf("result tile %d mismatch", i)
		}
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	pk := p.PublicKeyGen(rng, sk)
	got, err := DecodePublicKey(p.R, EncodePublicKey(p.R, pk))
	if err != nil {
		t.Fatal(err)
	}
	if !samePoly(got.B, pk.B) || !samePoly(got.A, pk.A) {
		t.Fatal("public key mismatch after round trip")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := Errf(CodeUnknownMatrix, "no matrix %x", []byte{0xAB})
	got, err := DecodeError(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != e.Code || got.Detail != e.Detail {
		t.Fatalf("error round trip: %+v", got)
	}
	if !errors.Is(got, &Error{Code: CodeUnknownMatrix}) {
		t.Fatal("errors.Is by code failed")
	}
	if got.Retryable() {
		t.Fatal("unknown_matrix must not be retryable")
	}
	if !ErrOverloaded.Retryable() || !(&Error{Code: CodeDraining}).Retryable() {
		t.Fatal("overloaded/draining must be retryable")
	}

	// Detail strings are truncated at encode, bounded at decode.
	long := Errf(CodeInternal, "%s", string(make([]byte, 2*MaxErrorDetail)))
	dec, err := DecodeError(long.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Detail) != MaxErrorDetail {
		t.Fatalf("detail length %d, want %d", len(dec.Detail), MaxErrorDetail)
	}
}

func TestReaderBounds(t *testing.T) {
	d := NewReader([]byte{1, 2})
	if d.U32(); d.Err() == nil {
		t.Fatal("short U32 read succeeded")
	}
	// Lying blob prefix: claims 4 GiB with 1 byte behind it.
	d = NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	if d.Blob(); d.Err() == nil {
		t.Fatal("lying blob length accepted")
	}
	// Trailing input rejected by Done.
	d = NewReader([]byte{1, 2, 3, 4, 5})
	d.U32()
	if err := d.Done(); err == nil {
		t.Fatal("trailing byte accepted by Done")
	}
}
