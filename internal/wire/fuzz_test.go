package wire

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/rlwe"
)

var wireFuzz struct {
	once sync.Once
	p    bfv.Params
	sk   *rlwe.SecretKey
	keys *lwe.PackingKeys
	err  error
}

func wireFuzzSetup() error {
	wireFuzz.once.Do(func() {
		p, err := bfv.NewChamParams(32)
		if err != nil {
			wireFuzz.err = err
			return
		}
		rng := rand.New(rand.NewSource(7))
		sk := p.KeyGen(rng)
		keys, err := lwe.GenPackingKeys(p, rng, sk, 8)
		if err != nil {
			wireFuzz.err = err
			return
		}
		wireFuzz.p, wireFuzz.sk, wireFuzz.keys = p, sk, keys
	})
	return wireFuzz.err
}

// FuzzWireRoundTrip checks encode∘decode identity on fuzz-chosen protocol
// objects: matrices, apply requests, results and errors must survive a
// trip through their encodings bit for bit.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(40), int64(1), uint16(3))
	f.Add(uint8(7), uint8(90), int64(-9), uint16(1))
	f.Add(uint8(1), uint8(1), int64(0), uint16(9))
	f.Fuzz(func(t *testing.T, rowsSel, colsSel uint8, seed int64, code uint16) {
		if err := wireFuzzSetup(); err != nil {
			t.Fatal(err)
		}
		p := wireFuzz.p
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + int(rowsSel)%8
		cols := 1 + int(colsSel)%(3*p.R.N)

		// Matrix: canonical encoding, stable ID, exact values back.
		A := make([][]uint64, rows)
		for i := range A {
			A[i] = make([]uint64, cols)
			for j := range A[i] {
				A[i][j] = rng.Uint64() % p.T.Q
			}
		}
		payload, err := EncodeRegisterMatrix(A)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRegisterMatrix(p.T.Q, payload)
		if err != nil {
			t.Fatal(err)
		}
		for i := range A {
			for j := range A[i] {
				if got[i][j] != A[i][j] {
					t.Fatalf("matrix entry (%d,%d) changed", i, j)
				}
			}
		}
		payload2, _ := EncodeRegisterMatrix(got)
		if !bytes.Equal(payload, payload2) {
			t.Fatal("matrix encoding not canonical")
		}

		// Apply + Result with a real encrypted vector.
		v := make([]uint64, cols)
		for j := range v {
			v[j] = rng.Uint64() % p.T.Q
		}
		ctV := core.EncryptVector(p, rng, wireFuzz.sk, v)
		a := Apply{DeadlineMicros: uint64(seed)}
		a.Vector = ctV
		id, err := MatrixID(A)
		if err != nil {
			t.Fatal(err)
		}
		a.ID = id
		back, err := DecodeApply(p.R, EncodeApply(p.R, a))
		if err != nil {
			t.Fatal(err)
		}
		if back.ID != a.ID || back.DeadlineMicros != a.DeadlineMicros || len(back.Vector) != len(ctV) {
			t.Fatal("apply header changed")
		}
		for c := range ctV {
			if !sameCiphertext(back.Vector[c], ctV[c]) {
				t.Fatalf("apply chunk %d changed", c)
			}
		}
		res := Result{M: uint32(rows), N: uint32(p.R.N), Packed: []*rlwe.Ciphertext{
			p.EncryptZeroSym(rng, wireFuzz.sk, p.NormalLevels),
		}}
		backRes, err := DecodeResult(p.R, EncodeResult(p.R, res))
		if err != nil {
			t.Fatal(err)
		}
		if backRes.M != res.M || backRes.N != res.N || !sameCiphertext(backRes.Packed[0], res.Packed[0]) {
			t.Fatal("result changed")
		}

		// Errors round-trip for any code.
		e := Errf(code, "seed %d", seed)
		backErr, err := DecodeError(e.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if backErr.Code != e.Code || backErr.Detail != e.Detail {
			t.Fatal("error changed")
		}
	})
}

// FuzzWireClusterDecode hammers the cluster-tier codecs: encode∘decode
// identity on fuzz-shaped tile jobs and registry syncs, then every
// cluster decoder over mutations of those bytes — truncation, bit flips,
// and garbage must yield errors, never panics.
func FuzzWireClusterDecode(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(0), []byte{})
	f.Add(int64(7), uint8(1), uint8(0), uint8(1), []byte{0xff, 0x00})
	f.Add(int64(-3), uint8(9), uint8(5), uint8(200), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, seed int64, tileSel, matSel, mutate uint8, raw []byte) {
		if err := wireFuzzSetup(); err != nil {
			t.Fatal(err)
		}
		p := wireFuzz.p
		rng := rand.New(rand.NewSource(seed))

		// Round trip a well-formed TileApply (warm and vector-carrying).
		nTiles := 1 + int(tileSel)%6
		tiles := make([]uint32, nTiles)
		next := uint32(rng.Intn(3))
		for i := range tiles {
			tiles[i] = next
			next += 1 + uint32(rng.Intn(4))
		}
		v := make([]uint64, 1+rng.Intn(2*p.R.N))
		for j := range v {
			v[j] = rng.Uint64() % p.T.Q
		}
		ctV := core.EncryptVector(p, rng, wireFuzz.sk, v)
		ta := TileApply{DeadlineMicros: uint64(seed), Tiles: tiles, Vector: ctV}
		rng.Read(ta.ID[:])
		back, err := DecodeTileApply(p.R, EncodeTileApply(p.R, ta))
		if err != nil {
			t.Fatal(err)
		}
		if back.ID != ta.ID || back.Warm || len(back.Tiles) != nTiles || len(back.Vector) != len(ctV) {
			t.Fatal("tile apply header changed")
		}
		for i := range tiles {
			if back.Tiles[i] != tiles[i] {
				t.Fatalf("tile %d changed", i)
			}
		}
		warm := TileApply{ID: ta.ID, Warm: true, Tiles: tiles}
		backWarm, err := DecodeTileApply(p.R, EncodeTileApply(p.R, warm))
		if err != nil || !backWarm.Warm || len(backWarm.Vector) != 0 {
			t.Fatalf("warm tile apply round trip: %v", err)
		}

		// Round trip a TileResult with real ciphertexts.
		tr := TileResult{M: uint32(8 * nTiles), N: uint32(p.R.N), Tiles: tiles}
		for range tiles {
			tr.Packed = append(tr.Packed, p.EncryptZeroSym(rng, wireFuzz.sk, p.NormalLevels))
		}
		trBytes := EncodeTileResult(p.R, tr)
		backTR, err := DecodeTileResult(p.R, trBytes)
		if err != nil {
			t.Fatal(err)
		}
		if backTR.M != tr.M || backTR.N != tr.N || len(backTR.Packed) != len(tr.Packed) {
			t.Fatal("tile result header changed")
		}
		for i := range tr.Packed {
			if backTR.Tiles[i] != tr.Tiles[i] || !sameCiphertext(backTR.Packed[i], tr.Packed[i]) {
				t.Fatalf("result tile %d changed", i)
			}
		}

		// Round trip a RegistrySync/RegistryState pair.
		nMats := int(matSel) % 4
		var mats [][]byte
		for i := 0; i < nMats; i++ {
			m, err := EncodeRegisterMatrix([][]uint64{{uint64(i), 2}, {3, uint64(rng.Intn(100))}})
			if err != nil {
				t.Fatal(err)
			}
			mats = append(mats, m)
		}
		rs := RegistrySync{Push: seed%2 == 0, Keys: raw, Matrices: mats}
		if len(rs.Keys) == 0 {
			rs.Keys = nil
		}
		backRS, err := DecodeRegistrySync(rs.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if backRS.Push != rs.Push || len(backRS.Matrices) != nMats || !bytes.Equal(backRS.Keys, rs.Keys) {
			t.Fatal("registry sync changed")
		}
		st := RegistryState{Keys: rs.Keys, Matrices: mats}
		rng.Read(st.KeyHash[:])
		backST, err := DecodeRegistryState(st.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if backST.KeyHash != st.KeyHash || len(backST.Matrices) != nMats {
			t.Fatal("registry state changed")
		}

		// Every cluster decoder must be total over mutated encodings.
		for _, data := range [][]byte{EncodeTileApply(p.R, ta), trBytes, rs.Encode(), st.Encode(), raw} {
			if len(data) > 0 && mutate > 0 {
				data = append([]byte(nil), data...)
				for k := 0; k < int(mutate)%8+1; k++ {
					data[rng.Intn(len(data))] ^= byte(1 << (rng.Intn(8)))
				}
				if cut := rng.Intn(len(data) + 1); seed%3 == 0 {
					data = data[:cut]
				}
			}
			_, _ = DecodeTileApply(p.R, data)
			_, _ = DecodeTileResult(p.R, data)
			_, _ = DecodeRegistrySync(data)
			_, _ = DecodeRegistryState(data)
		}
	})
}

// FuzzWireTraceHeaderDecode covers the tracing extension: round-trip
// identity for well-formed traced frames through ReadFrameAny, and
// totality of the trace decoders over arbitrary bytes — truncated or
// garbage trace blocks must error, never panic, and a v1 frame must
// come back with a zero header.
func FuzzWireTraceHeaderDecode(f *testing.F) {
	th := TraceHeader{Flags: TraceFlagSampled}
	for i := range th.TraceID {
		th.TraceID[i] = byte(i + 1)
	}
	for i := range th.SpanID {
		th.SpanID[i] = byte(0xa0 + i)
	}
	f.Add(AppendFrameTraced(nil, MsgApply, 7, th, []byte{1, 2, 3}), []byte{9, 9})
	f.Add(AppendFrame(nil, MsgPing, 1, nil), []byte{})
	f.Add(AppendTraceHeader(nil, th), []byte{0xff})
	f.Add([]byte{0x43, 0x48, 0x57, 0x56, 2, 7, 0, 0, 0, 0, 0, 0}, []byte{1})
	f.Fuzz(func(t *testing.T, data, body []byte) {
		// Totality over arbitrary bytes.
		_, _, _ = DecodeTraceHeader(data)
		_, _ = DecodeTraceHello(data)
		_, _ = DecodeTraceHelloOK(data)
		_, _, _, _, _ = ReadFrameAny(bytes.NewReader(data), 1<<20)

		// A v1 frame read by ReadFrameAny must agree with ReadFrame and
		// carry no trace context.
		v1 := AppendFrame(nil, MsgType(len(data)), uint16(len(body)), body)
		t1, s1, p1, err1 := ReadFrame(bytes.NewReader(v1), 0)
		t2, s2, h2, p2, err2 := ReadFrameAny(bytes.NewReader(v1), 0)
		if (err1 == nil) != (err2 == nil) || t1 != t2 || s1 != s2 || !h2.IsZero() || !bytes.Equal(p1, p2) {
			t.Fatalf("v1 frame disagreement: %v vs %v", err1, err2)
		}

		// Traced round trip: header and body must come back exactly.
		var hdr TraceHeader
		copy(hdr.TraceID[:], data)
		copy(hdr.SpanID[:], body)
		hdr.Flags = TraceFlagSampled
		frame := AppendFrameTraced(nil, MsgTileApply, 3, hdr, body)
		gt, gs, gh, gp, err := ReadFrameAny(bytes.NewReader(frame), 0)
		if err != nil {
			t.Fatalf("traced round trip failed: %v", err)
		}
		if gt != MsgTileApply || gs != 3 || gh != hdr || !bytes.Equal(gp, body) {
			t.Fatal("traced frame changed in flight")
		}
		// And a strict v1 reader must refuse the revision, not panic.
		if _, _, _, err := ReadFrame(bytes.NewReader(frame), 0); err == nil {
			t.Fatal("v1 reader accepted a traced frame")
		}
	})
}

// FuzzWireDecode throws arbitrary bytes at every decoder: truncated,
// oversized, bit-flipped, or garbage frames must yield an error (or a
// semantically valid object), never a panic, and never a huge allocation
// from a lying length prefix.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, MsgPing, 1, nil))
	f.Add(AppendFrame(nil, MsgApply, 2, []byte{0, 1, 2, 3}))
	if err := wireFuzzSetup(); err == nil {
		p := wireFuzz.p
		f.Add(Hello{RingN: 32, Levels: 3, NormalLevels: 2, T: 65537}.Encode())
		f.Add(EncodeSetupKeys(p.R, wireFuzz.keys))
		if m, err := EncodeRegisterMatrix([][]uint64{{1, 2}, {3, 4}}); err == nil {
			f.Add(m)
		}
		rng := rand.New(rand.NewSource(1))
		ctV := core.EncryptVector(p, rng, wireFuzz.sk, []uint64{1, 2, 3})
		f.Add(EncodeApply(p.R, Apply{Vector: ctV}))
		f.Add(EncodeResult(p.R, Result{M: 1, N: 32, Packed: []*rlwe.Ciphertext{
			p.EncryptZeroSym(rng, wireFuzz.sk, p.NormalLevels),
		}}))
		f.Add(Errf(CodeInternal, "boom").Encode())
		f.Add(EncodePublicKey(p.R, p.PublicKeyGen(rng, wireFuzz.sk)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := wireFuzzSetup(); err != nil {
			t.Fatal(err)
		}
		p := wireFuzz.p
		// Frame reader with a small cap so fuzz inputs stay cheap.
		_, _, _, _ = ReadFrame(bytes.NewReader(data), 1<<20)
		// Every payload decoder must be total.
		_, _ = DecodeHello(data)
		_, _ = DecodeHelloOK(data)
		_, _ = DecodeSetupKeys(p.R, data)
		_, _ = DecodeSetupKeysOK(data)
		_, _ = DecodeRegisterMatrix(p.T.Q, data)
		_, _ = DecodeMatrixHandle(data)
		_, _ = DecodeApply(p.R, data)
		_, _ = DecodeResult(p.R, data)
		_, _ = DecodeError(data)
		_, _ = DecodePublicKey(p.R, data)
		_, _ = DecodeTileApply(p.R, data)
		_, _ = DecodeTileResult(p.R, data)
		_, _ = DecodeRegistrySync(data)
		_, _ = DecodeRegistryState(data)
	})
}
