package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPublishedThroughputClaims pins the §V-B.1 numbers: 65k key
// switches/s, 195k composite NTT ops/s from 60 units, 2.93M raw
// transforms/s.
func TestPublishedThroughputClaims(t *testing.T) {
	c := ChamConfig()
	if got := c.KeySwitchOpsPerSec(); math.Abs(got-65104) > 200 {
		t.Errorf("key-switch throughput %.0f ops/s, want ≈ 65k", got)
	}
	if got := c.NTTOpsPerSec(); math.Abs(got-195312) > 500 {
		t.Errorf("NTT throughput %.0f ops/s, want ≈ 195k", got)
	}
	if units := c.NumEngines * c.Engine.TotalNTT(); units != 60 {
		t.Errorf("device has %d NTT units, want 60", units)
	}
	if c.TransformCycles() != 6144 {
		t.Errorf("transform latency %d, want 6144", c.TransformCycles())
	}
}

func TestDotAndMergeCycles(t *testing.T) {
	c := ChamConfig()
	if got := c.DotRowCycles(1); got != 3072 {
		t.Errorf("dot row cycles %d, want 3072 (stage-balanced)", got)
	}
	if got := c.MergeCycles(); got != 9216 {
		t.Errorf("merge cycles %d, want 9216", got)
	}
	// More chunks -> more forward transforms per row.
	if c.DotRowCycles(4) <= c.DotRowCycles(1) {
		t.Error("chunked rows should cost more")
	}
	// A second pack unit does not help an NTT-bound merge...
	c2 := c
	c2.Engine.NumPack = 2
	if c2.MergeCycles() != c.MergeCycles() {
		t.Error("NumPack=2 should not change an NTT-bound merge")
	}
	// ...but does help once the PPU side binds (very wide NTTs).
	c3 := c
	c3.Engine.NBF = 16 // transform latency shrinks; PPU lanes widen less
	c3.Engine.NTTPerStage = 24
	one := c3.MergeCycles()
	c3.Engine.NumPack = 2
	if c3.MergeCycles() >= one {
		t.Error("NumPack=2 should speed up a PPU-bound merge")
	}
}

func TestSimulateTileAccounting(t *testing.T) {
	c := ChamConfig()
	rep := c.SimulateTile(4096, 1)
	if rep.Merges != 4095 {
		t.Errorf("merges = %d, want 4095 (the paper's reduction count)", rep.Merges)
	}
	if rep.DotCycles != 4096*int64(c.DotRowCycles(1)) {
		t.Errorf("dot cycles %d", rep.DotCycles)
	}
	if rep.PackCycles != 4095*int64(c.MergeCycles()) {
		t.Errorf("pack cycles %d", rep.PackCycles)
	}
	// The pack stage is the bottleneck (9216 > 3072), so the makespan is
	// close to the serialized pack work and stalls must be significant.
	if rep.TotalCycles < rep.PackCycles {
		t.Error("makespan below pack work")
	}
	if rep.StallCycles == 0 {
		t.Error("expected reduce-buffer preemption stalls")
	}
	slack := float64(rep.TotalCycles-rep.PackCycles) / float64(rep.TotalCycles)
	if slack > 0.1 {
		t.Errorf("pack-bound tile should be ≥90%% pack-busy (slack %.2f)", slack)
	}
}

func TestSimulateTilePadding(t *testing.T) {
	c := ChamConfig()
	rep := c.SimulateTile(5, 1)
	if rep.Merges != 7 {
		t.Errorf("merges = %d, want 7 (pad 5 -> 8)", rep.Merges)
	}
	one := c.SimulateTile(1, 1)
	if one.Merges != 0 || one.PackCycles != 0 {
		t.Errorf("single row should not pack: %+v", one)
	}
}

func TestSimulateTileGuards(t *testing.T) {
	c := ChamConfig()
	for _, rows := range []int{0, c.N + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rows=%d accepted", rows)
				}
			}()
			c.SimulateTile(rows, 1)
		}()
	}
	c.ReduceBufferSlots = 1
	defer func() {
		if recover() == nil {
			t.Error("1-slot reduce buffer accepted")
		}
	}()
	c.SimulateTile(4, 1)
}

// TestBufferPressure: a tiny reduce buffer must stall the front more than
// a large one, without changing the amount of useful work.
func TestBufferPressure(t *testing.T) {
	small := ChamConfig()
	small.ReduceBufferSlots = 2
	big := ChamConfig()
	big.ReduceBufferSlots = 1024
	rs := small.SimulateTile(1024, 1)
	rb := big.SimulateTile(1024, 1)
	if rs.DotCycles != rb.DotCycles || rs.PackCycles != rb.PackCycles {
		t.Error("work should not depend on buffer size")
	}
	if rs.TotalCycles < rb.TotalCycles {
		t.Error("smaller buffer cannot be faster")
	}
	if rs.StallCycles <= rb.StallCycles {
		t.Error("smaller buffer should stall more")
	}
}

// TestEngineScalingHMVP: two engines double throughput on two tiles.
func TestEngineScalingHMVP(t *testing.T) {
	c := ChamConfig()
	two := c.SimulateHMVP(8192, 4096) // two tiles on two engines
	c1 := c
	c1.NumEngines = 1
	one := c1.SimulateHMVP(8192, 4096)
	if ratio := float64(one.TotalCycles) / float64(two.TotalCycles); math.Abs(ratio-2) > 0.01 {
		t.Errorf("engine scaling ratio %.2f, want 2", ratio)
	}
}

// TestThroughputShape reproduces the qualitative Fig. 6 claims: throughput
// rises near-linearly-then-saturates with m, and collapses when columns
// spill over N (the paper's n ≥ m aggregation penalty).
func TestThroughputShape(t *testing.T) {
	c := ChamConfig()
	t256 := c.ThroughputRowsPerSec(256, 4096)
	t1024 := c.ThroughputRowsPerSec(1024, 4096)
	t4096 := c.ThroughputRowsPerSec(4096, 4096)
	if !(t256 < t1024 && t1024 <= t4096*1.01) {
		t.Errorf("throughput not increasing with m: %f %f %f", t256, t1024, t4096)
	}
	// Column spill: 8192 columns need 2 chunks per row.
	narrow := c.ThroughputRowsPerSec(4096, 4096)
	wide := c.ThroughputRowsPerSec(4096, 8192)
	if wide >= narrow {
		t.Errorf("column spill should reduce throughput: %f vs %f", wide, narrow)
	}
	// But by much less than 2x: aggregation only adds forward transforms.
	if wide < narrow*0.5 {
		t.Errorf("column penalty too harsh: %f vs %f", wide, narrow)
	}
}

// TestAblationParetoPoints compares the paper's two Fig. 2b optima:
// 2 engines with 4-PE NTTs versus 1 engine with 8-PE NTTs. On a
// multi-tile workload their device throughput must be equivalent (that is
// what makes both Pareto-optimal); on a single tile the 8-PE engine wins
// on latency because the 2-engine instance cannot split one packing tree.
func TestAblationParetoPoints(t *testing.T) {
	a := ChamConfig() // 2 engines, 4-PE
	b := ChamConfig()
	b.NumEngines = 1
	b.Engine.NBF = 8

	ta := a.ThroughputRowsPerSec(8192, 4096)
	tb := b.ThroughputRowsPerSec(8192, 4096)
	if ratio := ta / tb; math.Abs(ratio-1) > 0.05 {
		t.Errorf("multi-tile Pareto points diverge: %.0f vs %.0f rows/s (ratio %.2f)", ta, tb, ratio)
	}

	la := a.SimulateHMVP(4096, 4096).TotalCycles
	lb := b.SimulateHMVP(4096, 4096).TotalCycles
	if lb >= la {
		t.Errorf("8-PE single engine should win single-tile latency: %d vs %d", lb, la)
	}
}

// TestPipelineMonotonicity property-tests the simulator's sanity
// invariants: more rows never take fewer cycles, more engines never hurt,
// wider NTTs never hurt, and extra chunks never help.
func TestPipelineMonotonicity(t *testing.T) {
	base := ChamConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := 1 + rng.Intn(4096)
		m2 := m1 + 1 + rng.Intn(4096-1)
		if m2 > 4096 {
			m2 = 4096
		}
		if m2 <= m1 {
			return true
		}
		c1 := base.SimulateTile(m1, 1).TotalCycles
		c2 := base.SimulateTile(m2, 1).TotalCycles
		if c2 < c1 {
			return false
		}
		// Chunks only add work.
		if base.SimulateTile(m1, 2).TotalCycles < c1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}

	one := base
	one.NumEngines = 1
	for _, m := range []int{512, 4096, 8192, 12288} {
		if one.SimulateHMVP(m, 4096).TotalCycles < base.SimulateHMVP(m, 4096).TotalCycles {
			t.Errorf("m=%d: fewer engines finished faster", m)
		}
	}
	wide := base
	wide.Engine.NBF = 8
	for _, m := range []int{512, 4096} {
		if wide.SimulateTile(m, 1).TotalCycles > base.SimulateTile(m, 1).TotalCycles {
			t.Errorf("m=%d: wider butterflies slowed the tile at equal clock", m)
		}
	}
}

// TestSimulateHMVPZeroAndHugeCols: degenerate column counts are clamped.
func TestSimulateHMVPColsEdge(t *testing.T) {
	c := ChamConfig()
	if c.SimulateHMVP(16, 0).Chunks != 1 {
		t.Error("cols=0 should clamp to one chunk")
	}
	if c.SimulateHMVP(16, 3*4096).Chunks != 3 {
		t.Error("3N cols should be 3 chunks")
	}
}
