// Package pipeline is a cycle-level performance model of the CHAM
// accelerator: the 9-stage macro-pipeline of Fig. 1a with per-stage NTT
// unit allocations (forward, inverse, pack key-switch), PPU lanes for the
// coefficient-wise stages, and the reduce buffer whose back-pressure
// preempts the front of the pipeline (§III-A).
//
// Latencies are exact cycle counts derived from the functional-unit
// models; wall-clock numbers follow from the device clock (300 MHz). The
// model reproduces the §V-B throughput claims (65k key switches/s, the
// 195k composite NTT ops/s of the 60-unit device) and generates the CHAM
// series of Figs. 6 and 8.
package pipeline

import (
	"fmt"
	"math/bits"

	"cham/internal/fpga"
)

// Config fixes the simulated hardware instance.
type Config struct {
	N            int
	NormalLevels int // ciphertext limbs (2)
	FullLevels   int // with the special modulus (3)
	Engine       fpga.EngineConfig
	NumEngines   int
	FreqMHz      float64
	// ReduceBufferSlots is the capacity of the pack reduce buffer: how far
	// (in finished dot-product rows) the front of the pipeline may run
	// ahead of the PACKTWOLWES unit before being preempted.
	ReduceBufferSlots int
}

// ChamConfig returns the published instance: 2 engines, 30 NTT units each
// (6 per stage-1 slice), 4-BFU constant-geometry NTTs, 1 pack unit,
// 300 MHz.
func ChamConfig() Config {
	return Config{
		N:                 4096,
		NormalLevels:      2,
		FullLevels:        3,
		Engine:            fpga.ChamEngineConfig(),
		NumEngines:        2,
		FreqMHz:           300,
		ReduceBufferSlots: 16,
	}
}

// TransformCycles is the latency of one single-limb NTT on one unit.
func (c Config) TransformCycles() int { return fpga.NTTLatency(c.N, c.Engine.NBF) }

// ppuLanes is the coefficient-per-cycle width of the PPU array, scaled
// with the butterfly parallelism to keep stages balanced (§III-B).
func (c Config) ppuLanes() int { return 8 * c.Engine.NBF }

// DotRowCycles returns the per-row service time of stages 1-4 for a row
// spanning `chunks` vector ciphertexts: plaintext forward transforms on
// the stage-1 allocation, inverse transforms on the stage-3 allocation,
// and the MULTPOLY/RESCALE/EXTRACT coefficient passes on the PPU lanes;
// the slowest stage paces the row cadence.
func (c Config) DotRowCycles(chunks int) int {
	fwdAlloc, invAlloc, _ := c.Engine.StageAlloc()
	fwd := ceilDiv(c.FullLevels*chunks*c.TransformCycles(), fwdAlloc)
	inv := ceilDiv(2*c.FullLevels*c.TransformCycles(), invAlloc)
	coeffPasses := 2*c.FullLevels*chunks + 2*c.NormalLevels + 1
	ppu := ceilDiv(coeffPasses*c.N, c.ppuLanes())
	return maxInt(maxInt(fwd, inv), ppu)
}

// MergeCycles is the service time of one PACKTWOLWES reduction. The
// hybrid key switch dominates: 18 limb transforms (6 digit forwards, 6
// inverses, 6 staging re-transforms for the next tree level) on the pack
// stage's NTT allocation; monomial multiply, add/sub, the serial
// AUTOMORPH and ModDown run on PPU lanes underneath.
func (c Config) MergeCycles() int {
	_, _, packAlloc := c.Engine.StageAlloc()
	transforms := 3 * c.NormalLevels * c.FullLevels
	ntt := ceilDiv(transforms*c.TransformCycles(), packAlloc)
	coeffPasses := 6 + 2*c.NormalLevels*c.FullLevels + 2*c.NormalLevels
	ppu := ceilDiv(coeffPasses*c.N, c.ppuLanes())
	// Extra PACKTWOLWES units parallelize the coefficient-wise side of
	// independent reductions; the key-switch transforms still serialize on
	// the pack stage's NTT allocation, so NumPack only helps PPU-bound
	// configurations.
	return maxInt(ntt, ceilDiv(ppu, maxInt(c.Engine.NumPack, 1)))
}

// CycleReport describes one simulated HMVP tile or matrix.
type CycleReport struct {
	Rows        int
	Chunks      int
	DotCycles   int64 // aggregate stage 1-4 work
	PackCycles  int64 // aggregate stage 5-9 work
	TotalCycles int64 // simulated makespan, one engine
	StallCycles int64 // dot-product preemption from reduce-buffer pressure
	Merges      int
}

// Seconds converts the makespan to wall-clock time at the configured clock.
func (r CycleReport) Seconds(freqMHz float64) float64 {
	return float64(r.TotalCycles) / (freqMHz * 1e6)
}

// SimulateTile runs one packing tile (rows ≤ N, padded to a power of two)
// through the macro-pipeline of a single engine: rows stream through the
// dot-product stages while the pack unit reduces the binary tree; a row
// may start only when the reduce buffer has space for its LWE, otherwise
// the front of the pipeline stalls (the paper's preemption).
func (c Config) SimulateTile(rows, chunks int) CycleReport {
	if rows < 1 || rows > c.N {
		panic(fmt.Sprintf("pipeline: rows=%d out of range [1,%d]", rows, c.N))
	}
	if chunks < 1 {
		chunks = 1
	}
	mPad := nextPow2(rows)
	if c.ReduceBufferSlots < 2 {
		panic("pipeline: reduce buffer needs at least 2 slots")
	}
	dotT := int64(c.DotRowCycles(chunks))
	mergeT := int64(c.MergeCycles())

	rep := CycleReport{Rows: rows, Chunks: chunks, Merges: mPad - 1}

	// One-time vector forward transforms on the stage-1 allocation.
	fwdAlloc, _, _ := c.Engine.StageAlloc()
	vecT := int64(ceilDiv(2*c.FullLevels*chunks*c.TransformCycles(), fwdAlloc))

	var (
		now      = vecT  // dot-product front clock
		packFree int64   // pack unit busy-until
		held     []int64 // per-level pending partial (0 = empty)
		l0Start  []int64 // start times of level-0 merges, in order
	)
	for i := 0; i < mPad; i++ {
		// Reduce-buffer back-pressure: row i may not start before the
		// level-0 merge consuming row i-slots has begun.
		if k := (i - c.ReduceBufferSlots) / 2; k >= 0 && k < len(l0Start) {
			if s := l0Start[k]; s > now {
				rep.StallCycles += s - now
				now = s
			}
		}
		var ready int64
		if i < rows {
			now += dotT
			rep.DotCycles += dotT
			ready = now
		} else {
			ready = now // zero-pad leaves are free
		}
		// Carry-propagate merges up the binary counter.
		for level := 0; ; level++ {
			if level == len(held) {
				held = append(held, 0)
			}
			if held[level] == 0 {
				held[level] = maxI64(ready, 1)
				break
			}
			start := maxI64(maxI64(held[level], ready), packFree)
			if level == 0 {
				l0Start = append(l0Start, start)
			}
			packFree = start + mergeT
			rep.PackCycles += mergeT
			held[level] = 0
			ready = packFree
		}
	}
	rep.TotalCycles = maxI64(now, packFree)
	return rep
}

// SimulateHMVP runs a full m×cols matrix: tiles of up to N rows, spread
// round-robin over the engines (each tile packs independently).
func (c Config) SimulateHMVP(m, cols int) CycleReport {
	n := c.N
	chunks := ceilDiv(maxInt(cols, 1), n)
	var agg CycleReport
	agg.Chunks = chunks
	agg.Rows = m
	engineLoad := make([]int64, maxInt(c.NumEngines, 1))
	ti := 0
	for base := 0; base < m; base += n {
		rows := minInt(m-base, n)
		rep := c.SimulateTile(rows, chunks)
		agg.DotCycles += rep.DotCycles
		agg.PackCycles += rep.PackCycles
		agg.StallCycles += rep.StallCycles
		agg.Merges += rep.Merges
		engineLoad[ti%len(engineLoad)] += rep.TotalCycles
		ti++
	}
	for _, l := range engineLoad {
		if l > agg.TotalCycles {
			agg.TotalCycles = l
		}
	}
	return agg
}

// ThroughputRowsPerSec returns the device HMVP throughput in matrix rows
// per second.
func (c Config) ThroughputRowsPerSec(m, cols int) float64 {
	rep := c.SimulateHMVP(m, cols)
	return float64(m) / rep.Seconds(c.FreqMHz)
}

// KeySwitchOpsPerSec is the standalone key-switch throughput of the device
// (§V-B.1's 65k ops/s claim: one merge-equivalent key switch per
// MergeCycles per engine).
func (c Config) KeySwitchOpsPerSec() float64 {
	return float64(c.NumEngines) * c.FreqMHz * 1e6 / float64(c.MergeCycles())
}

// NTTOpsPerSec is the composite NTT throughput the paper quotes: the
// device's aggregate transform bandwidth expressed in 15-transform
// pt×ct-multiply bundles (3 plaintext forwards + 6 forwards / 6 inverses
// of the augmented ciphertext).
func (c Config) NTTOpsPerSec() float64 {
	return c.RawTransformsPerSec() / 15
}

// RawTransformsPerSec is the total single-limb transform bandwidth of all
// NTT units on the device.
func (c Config) RawTransformsPerSec() float64 {
	units := c.NumEngines * c.Engine.TotalNTT()
	return float64(units) * c.FreqMHz * 1e6 / float64(c.TransformCycles())
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}
