package ring

import (
	"math"
	"math/big"
)

// RNS basis conversion. CHAM keeps ciphertexts in the basis {q0, q1} and
// temporarily extends to {q0, q1, p} ("augmented" form, §II-F) for
// multiplication and key switching; RESCALE (pipeline stage 4) divides by
// the special modulus p and returns to the normal basis.

// ToBigIntCentered reconstructs the polynomial over the integers via CRT on
// the first `levels` limbs, returning centred representatives in
// (-Q/2, Q/2].
func (r *Ring) ToBigIntCentered(p *Poly, levels int) []*big.Int {
	if levels > p.Levels() {
		panic("ring: not enough limbs")
	}
	q := r.Modulus(levels)
	half := new(big.Int).Rsh(q, 1)

	// Precompute CRT weights w_l = (Q/q_l)·[(Q/q_l)^-1 mod q_l].
	weights := make([]*big.Int, levels)
	for l := 0; l < levels; l++ {
		ql := new(big.Int).SetUint64(r.Moduli[l].Q)
		qOver := new(big.Int).Quo(q, ql)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qOver, ql), ql)
		weights[l] = qOver.Mul(qOver, inv)
	}
	out := make([]*big.Int, r.N)
	acc := new(big.Int)
	term := new(big.Int)
	for i := 0; i < r.N; i++ {
		acc.SetInt64(0)
		for l := 0; l < levels; l++ {
			term.SetUint64(p.Coeffs[l][i])
			term.Mul(term, weights[l])
			acc.Add(acc, term)
		}
		acc.Mod(acc, q)
		v := new(big.Int).Set(acc)
		if v.Cmp(half) > 0 {
			v.Sub(v, q)
		}
		out[i] = v
	}
	return out
}

// FromBigInt writes integer coefficients (any sign/magnitude) into all
// limbs of p.
func (r *Ring) FromBigInt(p *Poly, coeffs []*big.Int) {
	if len(coeffs) > r.N {
		panic("ring: too many coefficients")
	}
	tmp := new(big.Int)
	for l := range p.Coeffs {
		ql := new(big.Int).SetUint64(r.Moduli[l].Q)
		for i := range p.Coeffs[l] {
			if i < len(coeffs) {
				tmp.Mod(coeffs[i], ql)
				p.Coeffs[l][i] = tmp.Uint64()
			} else {
				p.Coeffs[l][i] = 0
			}
		}
	}
	p.IsNTT = false
}

// ModUp extends a coefficient-domain polynomial from its current basis
// {q_0..q_{L-1}} to {q_0..q_L} by appending the residues modulo the next
// limb. It uses the floating-point corrected basis extension of
// Halevi-Polyakov-Shoup: exact for our two-limb source bases.
func (r *Ring) ModUp(p *Poly) *Poly {
	lv := p.Levels()
	if lv >= len(r.Moduli) {
		panic("ring: no limb to extend into")
	}
	if p.IsNTT {
		panic("ring: ModUp requires coefficient domain")
	}
	out := r.NewPoly(lv + 1)
	for l := 0; l < lv; l++ {
		copy(out.Coeffs[l], p.Coeffs[l])
	}
	mp := r.Moduli[lv] // target limb

	// Precompute (Q/q_l)^-1 mod q_l and Q/q_l mod p, plus Q mod p.
	qInv := make([]uint64, lv)   // [(Q/q_l)^-1]_{q_l}
	qOverP := make([]uint64, lv) // (Q/q_l) mod p
	qModP := uint64(1)           // Q mod p
	for l := 0; l < lv; l++ {
		ml := r.Moduli[l]
		prod := uint64(1)
		for k := 0; k < lv; k++ {
			if k != l {
				prod = ml.Mul(prod, r.Moduli[k].Q)
			}
		}
		qInv[l] = ml.Inv(prod)
		prodP := uint64(1)
		for k := 0; k < lv; k++ {
			if k != l {
				prodP = mp.Mul(prodP, r.Moduli[k].Q)
			}
		}
		qOverP[l] = prodP
		qModP = mp.Mul(qModP, mp.Reduce(r.Moduli[l].Q))
	}

	for i := 0; i < r.N; i++ {
		var acc uint64 // Σ y_l·(Q/q_l) mod p
		var frac float64
		for l := 0; l < lv; l++ {
			ml := r.Moduli[l]
			y := ml.Mul(p.Coeffs[l][i], qInv[l])
			acc = mp.Add(acc, mp.Mul(y, qOverP[l]))
			frac += float64(y) / float64(ml.Q)
		}
		k := uint64(math.Round(frac))
		out.Coeffs[lv][i] = mp.Sub(acc, mp.Mul(k, qModP))
	}
	out.IsNTT = false
	return out
}

// ModDown divides p (in the full current basis, last limb = special
// modulus) by that special modulus with rounding, dropping the limb:
// out ≈ round(p / q_last) over the remaining basis. This is the RESCALE
// unit (stage 4) and the closing step of key switching.
func (r *Ring) ModDown(p *Poly) *Poly {
	out := r.NewPoly(p.Levels() - 1)
	r.ModDownInto(out, p)
	return out
}
