package ring

import (
	"encoding/binary"
	"testing"

	"cham/internal/testutil"
)

// nttCopy returns a forward-transformed copy of p.
func nttCopy(r *Ring, p *Poly) *Poly {
	q := p.Copy()
	r.NTT(q)
	return q
}

// TestAutomorphNTTMatchesCoeff: the cached slot gather must equal
// NTT ∘ Automorph ∘ INTT for every automorphism index the packing tree
// uses (k = 2i+1, i a power of two) plus arbitrary odd k, including the
// in-place aliased call.
func TestAutomorphNTTMatchesCoeff(t *testing.T) {
	for _, n := range []int{16, 256} {
		r := chamRing(t, n)
		rng := testutil.NewRand(t)
		a := randPoly(r, rng, 3)
		ks := []int{-3, -1, 1, 7, 2*n - 1}
		for i := 1; i < n; i <<= 1 {
			ks = append(ks, 2*i+1)
		}
		for _, k := range ks {
			want := r.NewPoly(3)
			r.Automorph(want, a, k)
			r.NTT(want)

			aN := nttCopy(r, a)
			got := r.NewPoly(3)
			r.AutomorphNTT(got, aN, k)
			if !got.Equal(want) {
				t.Fatalf("N=%d k=%d: AutomorphNTT != NTT(Automorph)", n, k)
			}
			// Aliased in-place call must agree too.
			r.AutomorphNTT(aN, aN, k)
			if !aN.Equal(want) {
				t.Fatalf("N=%d k=%d: in-place AutomorphNTT differs", n, k)
			}
		}
	}
}

func TestAutomorphNTTRejectsEvenK(t *testing.T) {
	r := chamRing(t, 16)
	p := r.NewPoly(2)
	p.IsNTT = true
	defer func() {
		if recover() == nil {
			t.Fatal("even k accepted")
		}
	}()
	r.AutomorphNTT(p, p, 4)
}

func TestMulMonomialNTTMatchesCoeff(t *testing.T) {
	n := 64
	r := chamRing(t, n)
	rng := testutil.NewRand(t)
	a := randPoly(r, rng, 3)
	for _, e := range []int{0, 1, 5, n - 1, n, n + 3, 2*n - 1, -1, -n, -5} {
		want := r.NewPoly(3)
		r.MulMonomial(want, a, e)
		r.NTT(want)

		aN := nttCopy(r, a)
		got := r.NewPoly(3)
		r.MulMonomialNTT(got, aN, e)
		if !got.Equal(want) {
			t.Fatalf("e=%d: MulMonomialNTT != NTT(MulMonomial)", e)
		}
		r.MulMonomialNTT(aN, aN, e)
		if !aN.Equal(want) {
			t.Fatalf("e=%d: in-place MulMonomialNTT differs", e)
		}
	}
}

// TestModDownNTTMatchesCoeff: the resident RESCALE must be slot-for-slot
// identical to the coefficient-domain ModDownInto bracketed by transforms,
// for both the plain and the fused-accumulate form, across the whole
// {q0,q1,p} → {q0,q1} → {q0} chain.
func TestModDownNTTMatchesCoeff(t *testing.T) {
	n := 128
	r := chamRing(t, n)
	rng := testutil.NewRand(t)
	for lv := 3; lv >= 2; lv-- {
		p := randPoly(r, rng, lv)
		want := r.NewPoly(lv - 1)
		r.ModDownInto(want, p)
		r.NTT(want)

		pN := nttCopy(r, p)
		got := r.NewPoly(lv - 1)
		r.ModDownNTTInto(got, pN)
		if !got.Equal(want) {
			t.Fatalf("lv=%d: ModDownNTTInto != NTT(ModDownInto)", lv)
		}

		// Fused accumulate: out += rescaled p.
		base := randPoly(r, rng, lv-1)
		baseN := nttCopy(r, base)
		sum := r.NewPoly(lv - 1)
		r.Add(sum, baseN, got)
		r.ModDownNTTAddInto(baseN, pN)
		if !baseN.Equal(sum) {
			t.Fatalf("lv=%d: ModDownNTTAddInto != Add(out, ModDownNTTInto)", lv)
		}
	}
}

// FuzzAutomorphNTT: for random polynomials and any valid (odd)
// automorphism index, the NTT-slot permutation must equal the
// coefficient-domain Automorph composed with the transforms.
func FuzzAutomorphNTT(f *testing.F) {
	n := 32
	r := chamRing(f, n)
	f.Add(uint32(1), []byte{1, 2, 3})
	f.Add(uint32(3), []byte{0xff, 0x00, 0x80, 0x7f})
	f.Add(uint32(2*16+1), []byte{9, 9, 9, 9, 9, 9, 9, 9, 1})
	f.Fuzz(func(t *testing.T, kRaw uint32, data []byte) {
		k := int(kRaw)%(2*n) | 1 // force odd, in [1, 2N)
		a := r.NewPoly(3)
		for l := range a.Coeffs {
			q := r.Moduli[l].Q
			for i := range a.Coeffs[l] {
				var w uint64
				if len(data) > 0 {
					off := (l*n + i) * 3 % len(data)
					var buf [8]byte
					copy(buf[:], data[off:])
					w = binary.LittleEndian.Uint64(buf[:])
				}
				a.Coeffs[l][i] = w % q
			}
		}
		want := r.NewPoly(3)
		r.Automorph(want, a, k)
		r.NTT(want)
		aN := nttCopy(r, a)
		got := r.NewPoly(3)
		r.AutomorphNTT(got, aN, k)
		if !got.Equal(want) {
			t.Fatalf("k=%d: AutomorphNTT != NTT(Automorph)", k)
		}
	})
}
