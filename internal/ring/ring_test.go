package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/testutil"
)

// chamRing returns the production ring {q0,q1,p} at a reduced degree for
// fast tests (all properties are degree-independent).
func chamRing(tb testing.TB, n int) *Ring {
	tb.Helper()
	r, err := New(n, mod.ChamModuli())
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func randPoly(r *Ring, rng *rand.Rand, levels int) *Poly {
	p := r.NewPoly(levels)
	r.UniformPoly(rng, p)
	return p
}

func TestNewRejectsBadBases(t *testing.T) {
	if _, err := New(64, nil); err == nil {
		t.Error("empty basis accepted")
	}
	if _, err := New(64, []uint64{mod.ChamQ0, mod.ChamQ0}); err == nil {
		t.Error("duplicate modulus accepted")
	}
	if _, err := New(64, []uint64{97}); err == nil {
		t.Error("non-NTT-friendly modulus accepted")
	}
}

func TestNewPolyBounds(t *testing.T) {
	r := chamRing(t, 16)
	for _, lv := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoly(%d) did not panic", lv)
				}
			}()
			r.NewPoly(lv)
		}()
	}
	if p := r.NewPoly(2); p.Levels() != 2 {
		t.Error("levels mismatch")
	}
}

func TestCopyEqualZero(t *testing.T) {
	r := chamRing(t, 32)
	rng := testutil.NewRand(t)
	p := randPoly(r, rng, 3)
	q := p.Copy()
	if !p.Equal(q) {
		t.Fatal("copy not equal")
	}
	q.Coeffs[1][5]++
	if p.Equal(q) {
		t.Fatal("mutated copy still equal")
	}
	q.Zero()
	for l := range q.Coeffs {
		for _, v := range q.Coeffs[l] {
			if v != 0 {
				t.Fatal("Zero left residue")
			}
		}
	}
	// Domain flag mismatch must break equality.
	q2 := p.Copy()
	q2.IsNTT = true
	if p.Equal(q2) {
		t.Fatal("domain mismatch ignored by Equal")
	}
}

func TestAddSubNegBig(t *testing.T) {
	r := chamRing(t, 32)
	rng := testutil.NewRand(t)
	a, b := randPoly(r, rng, 3), randPoly(r, rng, 3)
	q := r.Modulus(3)

	sum, diff, neg := r.NewPoly(3), r.NewPoly(3), r.NewPoly(3)
	r.Add(sum, a, b)
	r.Sub(diff, a, b)
	r.Neg(neg, a)

	ab, bb := r.ToBigIntCentered(a, 3), r.ToBigIntCentered(b, 3)
	sb, db, nb := r.ToBigIntCentered(sum, 3), r.ToBigIntCentered(diff, 3), r.ToBigIntCentered(neg, 3)
	tmp := new(big.Int)
	for i := 0; i < r.N; i++ {
		if tmp.Sub(sb[i], tmp.Add(ab[i], bb[i])).Mod(tmp, q).Sign() != 0 {
			t.Fatalf("Add wrong at %d", i)
		}
		if tmp.Sub(db[i], tmp.Sub(ab[i], bb[i])).Mod(tmp, q).Sign() != 0 {
			t.Fatalf("Sub wrong at %d", i)
		}
		if tmp.Add(nb[i], ab[i]).Mod(tmp, q).Sign() != 0 {
			t.Fatalf("Neg wrong at %d", i)
		}
	}
}

func TestLevelAndDomainMismatchPanics(t *testing.T) {
	r := chamRing(t, 16)
	a, b := r.NewPoly(2), r.NewPoly(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("level mismatch not caught")
			}
		}()
		r.Add(r.NewPoly(2), a, b)
	}()
	c := r.NewPoly(2)
	c.IsNTT = true
	func() {
		defer func() {
			if recover() == nil {
				t.Error("domain mismatch not caught")
			}
		}()
		r.Add(r.NewPoly(2), a, c)
	}()
}

func TestMulPolyMatchesNaivePerLimb(t *testing.T) {
	r := chamRing(t, 64)
	rng := testutil.NewRand(t)
	a, b := randPoly(r, rng, 3), randPoly(r, rng, 3)
	out := r.NewPoly(3)
	r.MulPoly(out, a, b)
	for l := 0; l < 3; l++ {
		want := ntt.NaiveNegacyclicMul(r.Moduli[l], a.Coeffs[l], b.Coeffs[l])
		for i := range want {
			if out.Coeffs[l][i] != want[i] {
				t.Fatalf("limb %d: product differs at %d", l, i)
			}
		}
	}
}

func TestNTTRoundTripAndCG(t *testing.T) {
	r := chamRing(t, 128)
	rng := testutil.NewRand(t)
	a := randPoly(r, rng, 3)
	b := a.Copy()
	r.NTT(b)
	if !b.IsNTT {
		t.Fatal("flag not set")
	}
	cg := a.Copy()
	r.NTTCG(cg)
	if !b.Equal(cg) {
		t.Fatal("NTTCG differs from NTT")
	}
	r.INTTCG(cg)
	r.INTT(b)
	if !b.Equal(a) || !cg.Equal(a) {
		t.Fatal("round trip failed")
	}
}

func TestNTTDomainGuards(t *testing.T) {
	r := chamRing(t, 16)
	p := r.NewPoly(2)
	r.NTT(p)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double NTT not caught")
			}
		}()
		r.NTT(p)
	}()
	r.INTT(p)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double INTT not caught")
			}
		}()
		r.INTT(p)
	}()
}

func TestMulScalarBig(t *testing.T) {
	r := chamRing(t, 32)
	rng := testutil.NewRand(t)
	a := randPoly(r, rng, 2)
	c := new(big.Int).Lsh(big.NewInt(123456789), 30) // larger than any limb
	out := r.NewPoly(2)
	r.MulScalarBig(out, a, c)
	q := r.Modulus(2)
	ab, ob := r.ToBigIntCentered(a, 2), r.ToBigIntCentered(out, 2)
	tmp := new(big.Int)
	for i := range ab {
		want := tmp.Mul(ab[i], c)
		want.Sub(ob[i], want)
		if want.Mod(want, q).Sign() != 0 {
			t.Fatalf("MulScalarBig wrong at %d", i)
		}
	}
}

func TestSetCenteredAndToBigRoundTrip(t *testing.T) {
	r := chamRing(t, 16)
	vals := []int64{0, 1, -1, 7, -300, 65536, -65537}
	p := r.NewPoly(3)
	r.SetCentered(p, vals)
	got := r.ToBigIntCentered(p, 3)
	for i, v := range vals {
		if got[i].Int64() != v {
			t.Errorf("coefficient %d: got %v want %d", i, got[i], v)
		}
	}
	for i := len(vals); i < r.N; i++ {
		if got[i].Sign() != 0 {
			t.Errorf("padding coefficient %d non-zero", i)
		}
	}
}

func TestFromBigIntRoundTrip(t *testing.T) {
	r := chamRing(t, 32)
	rng := testutil.NewRand(t)
	q := r.Modulus(3)
	half := new(big.Int).Rsh(q, 1)
	coeffs := make([]*big.Int, r.N)
	for i := range coeffs {
		c := new(big.Int).Rand(rng, q)
		c.Sub(c, half) // centred-ish
		coeffs[i] = c
	}
	p := r.NewPoly(3)
	r.FromBigInt(p, coeffs)
	back := r.ToBigIntCentered(p, 3)
	tmp := new(big.Int)
	for i := range coeffs {
		if tmp.Sub(back[i], coeffs[i]).Mod(tmp, q).Sign() != 0 {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestSampling(t *testing.T) {
	r := chamRing(t, 1024)
	rng := testutil.NewRand(t)

	s := r.NewPoly(3)
	r.TernaryPoly(rng, s)
	counts := map[int64]int{}
	for i := 0; i < r.N; i++ {
		v := r.Moduli[0].CenterLift(s.Coeffs[0][i])
		if v < -1 || v > 1 {
			t.Fatalf("ternary coefficient %d out of range", v)
		}
		counts[v]++
		// All limbs must encode the same centred value.
		for l := 1; l < 3; l++ {
			if r.Moduli[l].CenterLift(s.Coeffs[l][i]) != v {
				t.Fatal("limbs disagree")
			}
		}
	}
	for v := int64(-1); v <= 1; v++ {
		if counts[v] < r.N/6 {
			t.Errorf("ternary value %d badly underrepresented: %d/%d", v, counts[v], r.N)
		}
	}

	e := r.NewPoly(3)
	const eta = 21
	r.CBDPoly(rng, e, eta)
	var sum, sumSq float64
	for i := 0; i < r.N; i++ {
		v := float64(r.Moduli[0].CenterLift(e.Coeffs[0][i]))
		if v < -eta || v > eta {
			t.Fatalf("CBD coefficient %f out of range", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(r.N)
	variance := sumSq/float64(r.N) - mean*mean
	if mean > 0.5 || mean < -0.5 {
		t.Errorf("CBD mean %f too far from 0", mean)
	}
	// Var = eta/2 = 10.5; allow generous slack.
	if variance < 8 || variance > 13.5 {
		t.Errorf("CBD variance %f outside [8,13.5]", variance)
	}
}

func TestModUpMatchesBigInt(t *testing.T) {
	r := chamRing(t, 64)
	rng := testutil.NewRand(t)
	for trial := 0; trial < 10; trial++ {
		p := randPoly(r, rng, 2)
		ext := r.ModUp(p)
		if ext.Levels() != 3 {
			t.Fatal("level count")
		}
		// Existing limbs unchanged.
		for l := 0; l < 2; l++ {
			for i := range p.Coeffs[l] {
				if ext.Coeffs[l][i] != p.Coeffs[l][i] {
					t.Fatal("ModUp modified source limbs")
				}
			}
		}
		// New limb must equal the CRT value mod p.
		vals := r.ToBigIntCentered(p, 2)
		mp := new(big.Int).SetUint64(r.Moduli[2].Q)
		tmp := new(big.Int)
		for i := range vals {
			want := tmp.Mod(vals[i], mp).Uint64()
			if ext.Coeffs[2][i] != want {
				t.Fatalf("trial %d coeff %d: ModUp got %d want %d",
					trial, i, ext.Coeffs[2][i], want)
			}
		}
	}
}

func TestModDownIsRoundedDivision(t *testing.T) {
	r := chamRing(t, 64)
	rng := testutil.NewRand(t)
	for trial := 0; trial < 10; trial++ {
		p := randPoly(r, rng, 3)
		down := r.ModDown(p)
		if down.Levels() != 2 {
			t.Fatal("level count")
		}
		vals := r.ToBigIntCentered(p, 3)
		got := r.ToBigIntCentered(down, 2)
		sp := new(big.Int).SetUint64(r.Moduli[2].Q)
		q2 := r.Modulus(2)
		tmp, rem := new(big.Int), new(big.Int)
		for i := range vals {
			// want = round(vals[i]/p): |vals[i] - want*p| <= p/2.
			tmp.QuoRem(vals[i], sp, rem)
			want := new(big.Int).Set(tmp)
			twice := new(big.Int).Abs(rem)
			twice.Lsh(twice, 1)
			if twice.Cmp(sp) > 0 { // |rem| > p/2: round away from zero
				if rem.Sign() >= 0 {
					want.Add(want, big.NewInt(1))
				} else {
					want.Sub(want, big.NewInt(1))
				}
			}
			diff := new(big.Int).Sub(got[i], want)
			diff.Mod(diff, q2)
			if diff.Sign() != 0 {
				// Ties (|rem| == p/2) may legitimately round either way.
				if twice.Cmp(sp) != 0 {
					t.Fatalf("trial %d coeff %d: ModDown got %v want %v", trial, i, got[i], want)
				}
			}
		}
	}
}

func TestModGuards(t *testing.T) {
	r := chamRing(t, 16)
	full := r.NewPoly(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ModUp on full basis not caught")
			}
		}()
		r.ModUp(full)
	}()
	one := r.NewPoly(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ModDown on single limb not caught")
			}
		}()
		r.ModDown(one)
	}()
	nttp := r.NewPoly(2)
	r.NTT(nttp)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ModUp in NTT domain not caught")
			}
		}()
		r.ModUp(nttp)
	}()
}
