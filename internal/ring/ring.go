// Package ring implements the polynomial ring Z_Q[X]/(X^N+1) in RNS
// (residue number system) form, the data structure CHAM's polynomial
// processing units (PPUs) operate on. A polynomial is held as one residue
// row per RNS limb; CHAM's basis is {q0, q1} for normal ciphertexts and
// {q0, q1, p} for augmented ones (§II-F).
//
// The package provides the Table-I PPU operations (MODADD, MODMUL, REV,
// SHIFTNEG, AUTOMORPH), monomial multiplication, NTT-domain conversion,
// noise sampling, and the ModUp/ModDown basis-extension steps used by
// special-modulus key switching and rescaling.
package ring

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"

	"cham/internal/mod"
	"cham/internal/ntt"
)

// Ring bundles the transform tables for a fixed degree N and RNS basis.
// The special modulus, if any, is by convention the LAST limb; a Poly with
// fewer levels than the full basis uses the basis prefix.
type Ring struct {
	N      int
	Moduli []mod.Modulus
	Tables []*ntt.Table

	// polyPools[lv-1] recycles *Poly buffers with lv limbs (GetPoly/PutPoly);
	// scratch recycles single N-word rows for the permutation ops.
	polyPools []sync.Pool
	scratch   sync.Pool

	// modDownInv[sp][l] = q_sp^-1 mod q_l (with its Shoup companion), the
	// RESCALE constants for dropping limb sp into limb l — cached here so
	// ModDown never recomputes a Fermat inversion per call.
	modDownInv, modDownInvShoup [][]uint64

	// autoPerm caches the NTT-slot gather table of the automorphism X→X^k
	// per index k, and monoNTT the per-limb NTT image of X^e (with Shoup
	// companions) per exponent e; see autontt.go. Both are built lazily
	// under their mutexes and read lock-shared on the hot path.
	autoMu   sync.RWMutex
	autoPerm map[int][]uint32
	monoMu   sync.RWMutex
	monoNTT  map[int]*monoTable
}

// New constructs a Ring of degree n over the given prime moduli. Every
// modulus must satisfy q ≡ 1 (mod 2n) and be distinct.
func New(n int, moduli []uint64) (*Ring, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: empty modulus chain")
	}
	r := &Ring{
		N:        n,
		autoPerm: map[int][]uint32{},
		monoNTT:  map[int]*monoTable{},
	}
	seen := map[uint64]bool{}
	for _, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		t, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, err
		}
		r.Moduli = append(r.Moduli, t.M)
		r.Tables = append(r.Tables, t)
	}
	r.polyPools = make([]sync.Pool, len(r.Moduli))
	r.modDownInv = make([][]uint64, len(r.Moduli))
	r.modDownInvShoup = make([][]uint64, len(r.Moduli))
	for sp := 1; sp < len(r.Moduli); sp++ {
		r.modDownInv[sp] = make([]uint64, sp)
		r.modDownInvShoup[sp] = make([]uint64, sp)
		for l := 0; l < sp; l++ {
			ml := r.Moduli[l]
			inv := ml.Inv(ml.Reduce(r.Moduli[sp].Q))
			r.modDownInv[sp][l] = inv
			r.modDownInvShoup[sp][l] = ml.ShoupPrecomp(inv)
		}
	}
	return r, nil
}

// MustNew is New for known-good parameters; it panics on error.
func MustNew(n int, moduli []uint64) *Ring {
	r, err := New(n, moduli)
	if err != nil {
		panic(err)
	}
	return r
}

// Levels returns the number of limbs in the full basis.
func (r *Ring) Levels() int { return len(r.Moduli) }

// Modulus returns the product of the first `levels` limbs as a big integer.
func (r *Ring) Modulus(levels int) *big.Int {
	q := big.NewInt(1)
	for _, m := range r.Moduli[:levels] {
		q.Mul(q, new(big.Int).SetUint64(m.Q))
	}
	return q
}

// Poly is an RNS polynomial: Coeffs[l][i] is coefficient i modulo limb l.
// IsNTT records whether the rows are in NTT (evaluation) domain.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial with the given number of limbs.
func (r *Ring) NewPoly(levels int) *Poly {
	if levels < 1 || levels > len(r.Moduli) {
		panic(fmt.Sprintf("ring: levels %d out of range [1,%d]", levels, len(r.Moduli)))
	}
	c := make([][]uint64, levels)
	backing := make([]uint64, levels*r.N)
	for l := range c {
		c[l], backing = backing[:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: c}
}

// Levels returns the number of RNS limbs p carries.
func (p *Poly) Levels() int { return len(p.Coeffs) }

// Copy returns a deep copy of p.
func (p *Poly) Copy() *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	backing := make([]uint64, len(p.Coeffs)*len(p.Coeffs[0]))
	for l := range p.Coeffs {
		q.Coeffs[l], backing = backing[:len(p.Coeffs[l])], backing[len(p.Coeffs[l]):]
		copy(q.Coeffs[l], p.Coeffs[l])
	}
	return q
}

// Equal reports whether p and o hold identical limbs and domain flags.
func (p *Poly) Equal(o *Poly) bool {
	if p.IsNTT != o.IsNTT || len(p.Coeffs) != len(o.Coeffs) {
		return false
	}
	for l := range p.Coeffs {
		for i := range p.Coeffs[l] {
			if p.Coeffs[l][i] != o.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

// Zero clears all coefficients in place, keeping the domain flag.
func (p *Poly) Zero() {
	for l := range p.Coeffs {
		for i := range p.Coeffs[l] {
			p.Coeffs[l][i] = 0
		}
	}
}

// minLevels panics unless all polys share the level count of the first.
func sameLevels(ps ...*Poly) int {
	lv := ps[0].Levels()
	for _, p := range ps[1:] {
		if p.Levels() != lv {
			panic("ring: level mismatch")
		}
	}
	return lv
}

func sameDomain(ps ...*Poly) {
	d := ps[0].IsNTT
	for _, p := range ps[1:] {
		if p.IsNTT != d {
			panic("ring: NTT-domain mismatch")
		}
	}
}

// Add sets out = a + b (MODADD). All operands must share levels and domain.
func (r *Ring) Add(out, a, b *Poly) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, ro := a.Coeffs[l], b.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Add(ra[i], rb[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (r *Ring) Sub(out, a, b *Poly) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, ro := a.Coeffs[l], b.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Sub(ra[i], rb[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (r *Ring) Neg(out, a *Poly) {
	lv := sameLevels(out, a)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Neg(ra[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeff sets out = a ∘ b, the coefficient-wise product (MODMUL). In NTT
// domain this realises the ring product; in coefficient domain it is the
// plain Hadamard product the PPUs use for masking.
func (r *Ring) MulCoeff(out, a, b *Poly) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, ro := a.Coeffs[l], b.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.MulBarrett(ra[i], rb[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulScalar sets out = a · c for a small scalar c (applied per limb).
func (r *Ring) MulScalar(out, a *Poly, c uint64) {
	lv := sameLevels(out, a)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		cc := m.Reduce(c)
		cp := m.ShoupPrecomp(cc)
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.MulShoup(ra[i], cc, cp)
		}
	}
	out.IsNTT = a.IsNTT
}

// MulScalarBig sets out = a · c where c is a (possibly huge) integer,
// reduced limb-wise. Used for the Δ = ⌊Q/t⌋ plaintext scaling.
func (r *Ring) MulScalarBig(out, a *Poly, c *big.Int) {
	lv := sameLevels(out, a)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		cc := new(big.Int).Mod(c, new(big.Int).SetUint64(m.Q)).Uint64()
		cp := m.ShoupPrecomp(cc)
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.MulShoup(ra[i], cc, cp)
		}
	}
	out.IsNTT = a.IsNTT
}

// NTT transforms p to the evaluation domain in place (lazy-reduction
// fast path; bit-identical to the strict transform). Panics if already
// there.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT of an NTT-domain polynomial")
	}
	for l := range p.Coeffs {
		r.Tables[l].ForwardLazy(p.Coeffs[l])
	}
	p.IsNTT = true
}

// INTT transforms p back to the coefficient domain in place (lazy-reduction
// fast path; bit-identical to the strict transform).
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT of a coefficient-domain polynomial")
	}
	for l := range p.Coeffs {
		r.Tables[l].InverseLazy(p.Coeffs[l])
	}
	p.IsNTT = false
}

// NTTCG and INTTCG are the constant-geometry counterparts (Alg. 4 dataflow);
// results are bit-identical to NTT/INTT.
func (r *Ring) NTTCG(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT of an NTT-domain polynomial")
	}
	for l := range p.Coeffs {
		r.Tables[l].ForwardCG(p.Coeffs[l], p.Coeffs[l])
	}
	p.IsNTT = true
}

func (r *Ring) INTTCG(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT of a coefficient-domain polynomial")
	}
	for l := range p.Coeffs {
		r.Tables[l].InverseCG(p.Coeffs[l], p.Coeffs[l])
	}
	p.IsNTT = false
}

// MulPoly sets out = a · b in the ring (negacyclic convolution), accepting
// coefficient-domain inputs and producing a coefficient-domain output. It
// is a convenience wrapper over NTT ∘ MODMUL ∘ INTT — the DOTPRODUCT
// pipeline stages 1–3.
func (r *Ring) MulPoly(out, a, b *Poly) {
	ac, bc := a.Copy(), b.Copy()
	r.NTT(ac)
	r.NTT(bc)
	r.MulCoeff(out, ac, bc)
	r.INTT(out)
}

// UniformPoly fills p with independent uniform residues.
func (r *Ring) UniformPoly(rng *rand.Rand, p *Poly) {
	for l := range p.Coeffs {
		q := r.Moduli[l].Q
		for i := range p.Coeffs[l] {
			p.Coeffs[l][i] = rng.Uint64() % q
		}
	}
	p.IsNTT = false
}

// TernaryPoly samples a uniform ternary polynomial (coefficients in
// {-1,0,1}), the secret-key distribution, identical across limbs.
func (r *Ring) TernaryPoly(rng *rand.Rand, p *Poly) {
	for i := 0; i < r.N; i++ {
		v := int64(rng.Intn(3)) - 1
		for l := range p.Coeffs {
			p.Coeffs[l][i] = r.Moduli[l].FromCentered(v)
		}
	}
	p.IsNTT = false
}

// CBDPoly samples centred-binomial noise with parameter eta (variance
// eta/2), the discrete-Gaussian stand-in used for encryption noise. eta=21
// gives a standard deviation ≈ 3.24, matching the usual σ = 3.2.
func (r *Ring) CBDPoly(rng *rand.Rand, p *Poly, eta int) {
	for i := 0; i < r.N; i++ {
		v := int64(0)
		for b := 0; b < eta; b++ {
			v += int64(rng.Intn(2)) - int64(rng.Intn(2))
		}
		for l := range p.Coeffs {
			p.Coeffs[l][i] = r.Moduli[l].FromCentered(v)
		}
	}
	p.IsNTT = false
}

// SetCentered writes the same centred integer sequence into every limb.
// vals must have length ≤ N; remaining coefficients are zeroed.
func (r *Ring) SetCentered(p *Poly, vals []int64) {
	if len(vals) > r.N {
		panic("ring: too many coefficients")
	}
	for l := range p.Coeffs {
		m := r.Moduli[l]
		for i := range p.Coeffs[l] {
			if i < len(vals) {
				p.Coeffs[l][i] = m.FromCentered(vals[i])
			} else {
				p.Coeffs[l][i] = 0
			}
		}
	}
	p.IsNTT = false
}
