package ring

// Table-I PPU operations. All of these act on coefficient-domain
// polynomials; they panic on NTT-domain inputs because the coefficient
// permutations they perform are only meaningful there.

func requireCoeffDomain(ps ...*Poly) {
	for _, p := range ps {
		if p.IsNTT {
			panic("ring: operation requires coefficient domain")
		}
	}
}

// Rev sets out = [a_{N-1}, ..., a_1, a_0], the coefficient reversal (REV).
func (r *Ring) Rev(out, a *Poly) {
	sameLevels(out, a)
	requireCoeffDomain(a)
	n := r.N
	for l := range a.Coeffs {
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		for i := 0; i < n/2; i++ {
			lo, hi := ra[i], ra[n-1-i]
			ro[i], ro[n-1-i] = hi, lo
		}
	}
	out.IsNTT = false
}

// ShiftNeg sets out = [a_{N-s}, ..., a_{N-1}, -a_0, ..., -a_{N-s-1}]
// (Table I SHIFTNEG): a circular left rotation by N-s positions with the
// wrapped-around head negated. Algebraically it is multiplication by the
// monomial -X^s = X^{s-N} in Z_q[X]/(X^N+1). s must be in [0, N).
func (r *Ring) ShiftNeg(out, a *Poly, s int) {
	sameLevels(out, a)
	requireCoeffDomain(a)
	if s < 0 || s >= r.N {
		panic("ring: shift out of range")
	}
	n := r.N
	for l := range a.Coeffs {
		m := r.Moduli[l]
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		dst, sp := r.permDst(ro, ra)
		for i := 0; i < s; i++ {
			dst[i] = ra[n-s+i]
		}
		for i := s; i < n; i++ {
			dst[i] = m.Neg(ra[i-s])
		}
		if sp != nil {
			copy(ro, dst)
			r.putScratch(sp)
		}
	}
	out.IsNTT = false
}

// permDst returns the buffer a permutation should write to: ro itself when
// it does not alias ra, or a pooled scratch row (with its pool token) when
// it does, so in-place calls stay correct without a per-call allocation.
func (r *Ring) permDst(ro, ra []uint64) ([]uint64, *[]uint64) {
	if &ro[0] != &ra[0] {
		return ro, nil
	}
	sp := r.getScratch()
	return *sp, sp
}

// MulMonomial sets out = a · X^e where e may be any integer; exponents are
// taken modulo 2N with X^N = -1. It is the primitive underlying MULTMONO,
// RLWE-TO-LWE and LWE-TO-RLWE.
func (r *Ring) MulMonomial(out, a *Poly, e int) {
	sameLevels(out, a)
	requireCoeffDomain(a)
	n := r.N
	e = ((e % (2 * n)) + 2*n) % (2 * n)
	neg := false
	if e >= n {
		e -= n
		neg = true
	}
	for l := range a.Coeffs {
		m := r.Moduli[l]
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		dst, sp := r.permDst(ro, ra)
		// (X^e·a)_k = a_{k-e} for k >= e, -a_{N+k-e} for k < e; the global
		// -1 of e >= N folds into each branch.
		if neg {
			for k := 0; k < e; k++ {
				dst[k] = ra[n+k-e]
			}
			for k := e; k < n; k++ {
				dst[k] = m.Neg(ra[k-e])
			}
		} else {
			for k := 0; k < e; k++ {
				dst[k] = m.Neg(ra[n+k-e])
			}
			copy(dst[e:], ra[:n-e])
		}
		if sp != nil {
			copy(ro, dst)
			r.putScratch(sp)
		}
	}
	out.IsNTT = false
}

// Automorph sets out = a(X^k) for odd k (Table I AUTOMORPH): coefficient
// a_i moves to position i·k mod N with sign (-1)^{⌊i·k/N⌋}. k must be odd
// so the map is a ring automorphism of Z_q[X]/(X^N+1).
func (r *Ring) Automorph(out, a *Poly, k int) {
	sameLevels(out, a)
	requireCoeffDomain(a)
	if k%2 == 0 {
		panic("ring: automorphism index must be odd")
	}
	n := r.N
	kk := ((k % (2 * n)) + 2*n) % (2 * n)
	for l := range a.Coeffs {
		m := r.Moduli[l]
		ra, ro := a.Coeffs[l], out.Coeffs[l]
		dst, sp := r.permDst(ro, ra)
		for i := 0; i < n; i++ {
			j := i * kk % (2 * n)
			if j < n {
				dst[j] = ra[i]
			} else {
				dst[j-n] = m.Neg(ra[i])
			}
		}
		if sp != nil {
			copy(ro, dst)
			r.putScratch(sp)
		}
	}
	out.IsNTT = false
}

// AutomorphismOrbitSize returns the multiplicative order of k modulo 2N —
// how many times Automorph(·, k) must be applied to return to the identity.
func (r *Ring) AutomorphismOrbitSize(k int) int {
	n2 := 2 * r.N
	kk := ((k % n2) + n2) % n2
	cur, ord := kk, 1
	for cur != 1 {
		cur = cur * kk % n2
		ord++
		if ord > n2 {
			panic("ring: k is not invertible mod 2N")
		}
	}
	return ord
}
