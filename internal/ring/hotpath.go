package ring

// Hot-path support: pooled polynomial buffers, fused multiply-accumulate
// kernels, Shoup companion tables for fixed operands, and an in-place
// RESCALE (ModDownInto) with cached per-limb constants. Together these let
// the HMVP pipeline (core.MatVec / core.PreparedMatrix) run with zero heap
// allocations after warm-up, the software analogue of CHAM's
// buffer-resident dataflow.

import "math/bits"

// GetPoly borrows a polynomial with the given limb count from the ring's
// pool. The coefficients are ARBITRARY (not zeroed) and IsNTT is reset to
// false; callers must fully overwrite the rows they use, or call Zero.
// Return the buffer with PutPoly once done.
func (r *Ring) GetPoly(levels int) *Poly {
	if levels < 1 || levels > len(r.Moduli) {
		panic("ring: levels out of range")
	}
	if p, ok := r.polyPools[levels-1].Get().(*Poly); ok {
		p.IsNTT = false
		return p
	}
	return r.NewPoly(levels)
}

// PutPoly returns a polynomial obtained from GetPoly (or NewPoly) to the
// pool. The caller must not use p afterwards.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil {
		return
	}
	r.polyPools[len(p.Coeffs)-1].Put(p)
}

// getScratch borrows one N-word row buffer; see putScratch.
func (r *Ring) getScratch() *[]uint64 {
	if p, ok := r.scratch.Get().(*[]uint64); ok {
		return p
	}
	buf := make([]uint64, r.N)
	return &buf
}

func (r *Ring) putScratch(p *[]uint64) { r.scratch.Put(p) }

// CopyFrom copies o's limbs and domain flag into p. Level counts must match.
func (p *Poly) CopyFrom(o *Poly) {
	if len(p.Coeffs) != len(o.Coeffs) {
		panic("ring: level mismatch")
	}
	for l := range p.Coeffs {
		copy(p.Coeffs[l], o.Coeffs[l])
	}
	p.IsNTT = o.IsNTT
}

// MulCoeffAdd sets out += a ∘ b, the fused multiply-accumulate form of
// MulCoeff. out must already hold reduced residues in the same domain.
func (r *Ring) MulCoeffAdd(out, a, b *Poly) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, ro := a.Coeffs[l], b.Coeffs[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Add(ro[i], m.MulBarrett(ra[i], rb[i]))
		}
	}
}

// ShoupPrecompPoly returns the Shoup companion table of p — one word per
// coefficient — for use as the fixed operand of MulCoeffShoup and
// MulCoeffShoupAdd. Worth computing once whenever p multiplies more than a
// couple of polynomials (switching keys, prepared matrix rows).
func (r *Ring) ShoupPrecompPoly(p *Poly) [][]uint64 {
	out := make([][]uint64, p.Levels())
	backing := make([]uint64, p.Levels()*r.N)
	for l := range out {
		out[l], backing = backing[:r.N], backing[r.N:]
		m := r.Moduli[l]
		for i, v := range p.Coeffs[l] {
			out[l][i] = m.ShoupPrecomp(v)
		}
	}
	return out
}

// ShoupPrecompPolyInto fills dst (one row of at least N words per limb of
// p) with p's Shoup companion table, the allocation-free form of
// ShoupPrecompPoly used when the caller slabs many tables into one
// backing array (prepared-matrix rows).
func (r *Ring) ShoupPrecompPolyInto(dst [][]uint64, p *Poly) {
	if len(dst) < p.Levels() {
		panic("ring: Shoup table level mismatch")
	}
	for l := 0; l < p.Levels(); l++ {
		m := r.Moduli[l]
		row := dst[l][:r.N]
		for i, v := range p.Coeffs[l][:r.N] {
			row[i] = m.ShoupPrecomp(v)
		}
	}
}

// MulCoeffShoup sets out = a ∘ b where bShoup = ShoupPrecompPoly(b).
// Roughly twice the throughput of MulCoeff on the same operands.
func (r *Ring) MulCoeffShoup(out, a, b *Poly, bShoup [][]uint64) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, rs, ro := a.Coeffs[l], b.Coeffs[l], bShoup[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.MulShoup(ra[i], rb[i], rs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffShoupAdd sets out += a ∘ b where bShoup = ShoupPrecompPoly(b).
func (r *Ring) MulCoeffShoupAdd(out, a, b *Poly, bShoup [][]uint64) {
	lv := sameLevels(out, a, b)
	sameDomain(a, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, rs, ro := a.Coeffs[l], b.Coeffs[l], bShoup[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Add(ro[i], m.MulShoup(ra[i], rb[i], rs[i]))
		}
	}
}

// MulCoeffShoupPair sets out = a0 ∘ b0 + a1 ∘ b1 in one sweep — the
// two-digit key-switch accumulation fused so out is written once instead
// of once per digit. s0/s1 are the Shoup companions of b0/b1.
func (r *Ring) MulCoeffShoupPair(out, a0, b0 *Poly, s0 [][]uint64, a1, b1 *Poly, s1 [][]uint64) {
	lv := sameLevels(out, a0, b0, a1, b1)
	sameDomain(a0, b0, a1, b1)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra0, rb0, rs0 := a0.Coeffs[l], b0.Coeffs[l], s0[l]
		ra1, rb1, rs1 := a1.Coeffs[l], b1.Coeffs[l], s1[l]
		ro := out.Coeffs[l]
		for i := range ro {
			ro[i] = m.Add(m.MulShoup(ra0[i], rb0[i], rs0[i]), m.MulShoup(ra1[i], rb1[i], rs1[i]))
		}
	}
	out.IsNTT = a0.IsNTT
}

// MulCoeffShoupPairAdd sets out += a0 ∘ b0 + a1 ∘ b1 in one sweep (the
// accumulating form of MulCoeffShoupPair).
func (r *Ring) MulCoeffShoupPairAdd(out, a0, b0 *Poly, s0 [][]uint64, a1, b1 *Poly, s1 [][]uint64) {
	lv := sameLevels(out, a0, b0, a1, b1)
	sameDomain(a0, b0, a1, b1)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra0, rb0, rs0 := a0.Coeffs[l], b0.Coeffs[l], s0[l]
		ra1, rb1, rs1 := a1.Coeffs[l], b1.Coeffs[l], s1[l]
		ro := out.Coeffs[l]
		for i := range ro {
			t := m.Add(m.MulShoup(ra0[i], rb0[i], rs0[i]), m.MulShoup(ra1[i], rb1[i], rs1[i]))
			ro[i] = m.Add(ro[i], t)
		}
	}
}

// MulCoeffShoupDual multiplies one fixed operand against two polynomials
// in a single sweep: outB = aB ∘ b and outA = aA ∘ b, reading b and its
// Shoup table once — the dot-product MAC of the row apply, where the
// prepared row multiplies both halves of a vector ciphertext.
func (r *Ring) MulCoeffShoupDual(outB, outA, aB, aA, b *Poly, bShoup [][]uint64) {
	lv := sameLevels(outB, outA, aB, aA, b)
	sameDomain(aB, aA, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		rb, ra := aB.Coeffs[l], aA.Coeffs[l]
		rk, rs := b.Coeffs[l], bShoup[l]
		rob, roa := outB.Coeffs[l], outA.Coeffs[l]
		for i := range rob {
			k, s := rk[i], rs[i]
			rob[i] = m.MulShoup(rb[i], k, s)
			roa[i] = m.MulShoup(ra[i], k, s)
		}
	}
	outB.IsNTT, outA.IsNTT = aB.IsNTT, aA.IsNTT
}

// MulCoeffShoupDualAdd is the accumulating form of MulCoeffShoupDual:
// outB += aB ∘ b and outA += aA ∘ b in one sweep.
func (r *Ring) MulCoeffShoupDualAdd(outB, outA, aB, aA, b *Poly, bShoup [][]uint64) {
	lv := sameLevels(outB, outA, aB, aA, b)
	sameDomain(aB, aA, b)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		rb, ra := aB.Coeffs[l], aA.Coeffs[l]
		rk, rs := b.Coeffs[l], bShoup[l]
		rob, roa := outB.Coeffs[l], outA.Coeffs[l]
		for i := range rob {
			k, s := rk[i], rs[i]
			rob[i] = m.Add(rob[i], m.MulShoup(rb[i], k, s))
			roa[i] = m.Add(roa[i], m.MulShoup(ra[i], k, s))
		}
	}
}

// SumRow returns Σ_i p.Coeffs[l][i] mod q_l, accumulated in 128 bits and
// reduced once. For an NTT-domain row, N^-1 times this sum is the constant
// coefficient of the inverse transform (Σ_j ψ^{ij·...} telescopes to zero
// for every i except 0) — the shortcut EXTRACT uses to avoid a full INTT
// when only coefficient 0 is needed.
func (r *Ring) SumRow(p *Poly, l int) uint64 {
	m := r.Moduli[l]
	var hi, lo, c uint64
	for _, v := range p.Coeffs[l] {
		lo, c = bits.Add64(lo, v, 0)
		hi += c
	}
	return m.BarrettReduce128(hi, lo)
}

// ModDownScalar applies the ModDown rounding division to a single
// coefficient position held as per-limb residues: beta[0:lv-1] is
// overwritten with round(x/q_{lv-1}) in the shortened basis, where x is
// the value represented by beta[0:lv]. This is the scalar RESCALE used
// when only one coefficient of a polynomial survives (LWE extraction at
// index 0).
func (r *Ring) ModDownScalar(beta []uint64, lv int) {
	msp := r.Moduli[lv-1]
	x := beta[lv-1]
	halfP := msp.Q / 2
	for l := 0; l < lv-1; l++ {
		ml := r.Moduli[l]
		var d uint64
		if x > halfP {
			d = ml.Add(beta[l], ml.ReduceBarrett(msp.Q-x))
		} else {
			d = ml.Sub(beta[l], ml.ReduceBarrett(x))
		}
		beta[l] = ml.MulShoup(d, r.modDownInv[lv-1][l], r.modDownInvShoup[lv-1][l])
	}
}

// ModDownInto is ModDown writing into a caller-supplied polynomial with one
// fewer limb: out = round(p / q_last) over the remaining basis, using the
// constants cached at ring construction and division-free centred lifts.
// This is the allocation-free RESCALE the pipeline loops call.
func (r *Ring) ModDownInto(out, p *Poly) {
	lv := p.Levels()
	if lv < 2 {
		panic("ring: nothing to drop")
	}
	if p.IsNTT {
		panic("ring: ModDown requires coefficient domain")
	}
	if out.Levels() != lv-1 {
		panic("ring: ModDown level mismatch")
	}
	msp := r.Moduli[lv-1] // the special modulus being divided out
	spRow := p.Coeffs[lv-1][:r.N]
	halfP := msp.Q / 2
	for l := 0; l < lv-1; l++ {
		ml := r.Moduli[l]
		pInv := r.modDownInv[lv-1][l]
		pp := r.modDownInvShoup[lv-1][l]
		twoQ := 2 * ml.Q
		qspL := ml.ReduceBarrett(msp.Q) // q_sp mod q_l
		ra := p.Coeffs[l][:r.N]
		ro := out.Coeffs[l][:r.N]
		for i := range ro {
			// d ≡ x_l - [x_sp centred] in limb l. Branch-free: always
			// subtract the reduced residue of x_sp, then add back q_sp
			// (mod q_l) exactly when the centred lift is negative — the
			// mask is the sign bit of halfP - x, so the 50/50-taken branch
			// of the centred comparison never reaches the predictor.
			// d < 4q (< 2^64 for q < 2^62); MulShoup accepts any uint64
			// and restores canonical form.
			x := spRow[i]
			red := ml.ReduceBarrett(x)
			neg := uint64(int64(halfP-x) >> 63) // all ones iff x > halfP
			d := ra[i] + twoQ - red + (neg & qspL)
			ro[i] = ml.MulShoup(d, pInv, pp)
		}
	}
	out.IsNTT = false
}
