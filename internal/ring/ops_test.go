package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cham/internal/ntt"
)

func TestRevExplicitAndInvolution(t *testing.T) {
	r := chamRing(t, 16)
	vals := make([]int64, 16)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	p := r.NewPoly(2)
	r.SetCentered(p, vals)
	out := r.NewPoly(2)
	r.Rev(out, p)
	got := r.ToBigIntCentered(out, 2)
	for i := range vals {
		if got[i].Int64() != vals[len(vals)-1-i] {
			t.Fatalf("Rev wrong at %d: %v", i, got[i])
		}
	}
	back := r.NewPoly(2)
	r.Rev(back, out)
	if !back.Equal(p) {
		t.Fatal("Rev is not an involution")
	}
}

// TestShiftNegIsMonomialMul: SHIFTNEG(a, s) must equal a · (-X^s) = a·X^{s-N}.
func TestShiftNegIsMonomialMul(t *testing.T) {
	r := chamRing(t, 32)
	rng := rand.New(rand.NewSource(20))
	a := randPoly(r, rng, 2)
	for _, s := range []int{0, 1, 5, 16, 31} {
		sn := r.NewPoly(2)
		r.ShiftNeg(sn, a, s)
		mm := r.NewPoly(2)
		r.MulMonomial(mm, a, s-r.N)
		if !sn.Equal(mm) {
			t.Fatalf("s=%d: ShiftNeg != MulMonomial(s-N)", s)
		}
	}
	// s=0 is plain negation.
	sn := r.NewPoly(2)
	r.ShiftNeg(sn, a, 0)
	neg := r.NewPoly(2)
	r.Neg(neg, a)
	if !sn.Equal(neg) {
		t.Fatal("ShiftNeg(a,0) != -a")
	}
}

func TestMulMonomialAgainstNaive(t *testing.T) {
	r := chamRing(t, 16)
	rng := rand.New(rand.NewSource(21))
	a := randPoly(r, rng, 2)
	for _, e := range []int{0, 1, 7, 15, 16, 31, 32, -1, -16, -33} {
		out := r.NewPoly(2)
		r.MulMonomial(out, a, e)
		// Build X^e as a polynomial (reduced into [0,2N)) and compare with
		// the naive negacyclic product on limb 0.
		ee := ((e % (2 * r.N)) + 2*r.N) % (2 * r.N)
		mono := make([]uint64, r.N)
		if ee < r.N {
			mono[ee] = 1
		} else {
			mono[ee-r.N] = r.Moduli[0].Neg(1)
		}
		want := ntt.NaiveNegacyclicMul(r.Moduli[0], a.Coeffs[0], mono)
		for i := range want {
			if out.Coeffs[0][i] != want[i] {
				t.Fatalf("e=%d: monomial product differs at %d", e, i)
			}
		}
	}
}

func TestMulMonomialComposition(t *testing.T) {
	r := chamRing(t, 32)
	rng := rand.New(rand.NewSource(22))
	a := randPoly(r, rng, 3)
	f := func(e1, e2 int8) bool {
		t1, t2, t12 := r.NewPoly(3), r.NewPoly(3), r.NewPoly(3)
		r.MulMonomial(t1, a, int(e1))
		r.MulMonomial(t2, t1, int(e2))
		r.MulMonomial(t12, a, int(e1)+int(e2))
		return t2.Equal(t12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// X^N = -1 and X^2N = 1.
	xn, neg := r.NewPoly(3), r.NewPoly(3)
	r.MulMonomial(xn, a, r.N)
	r.Neg(neg, a)
	if !xn.Equal(neg) {
		t.Error("X^N != -1")
	}
	x2n := r.NewPoly(3)
	r.MulMonomial(x2n, a, 2*r.N)
	if !x2n.Equal(a) {
		t.Error("X^2N != identity")
	}
}

// TestAutomorphIsRingHom: φ_k(a·b) == φ_k(a)·φ_k(b), the defining property
// of a ring automorphism, plus composition and inverse behaviour.
func TestAutomorphIsRingHom(t *testing.T) {
	r := chamRing(t, 32)
	rng := rand.New(rand.NewSource(23))
	a, b := randPoly(r, rng, 2), randPoly(r, rng, 2)
	for _, k := range []int{3, 5, 2*r.N - 1, r.N + 1, 33} {
		ab := r.NewPoly(2)
		r.MulPoly(ab, a, b)
		phiAB := r.NewPoly(2)
		r.Automorph(phiAB, ab, k)

		phiA, phiB := r.NewPoly(2), r.NewPoly(2)
		r.Automorph(phiA, a, k)
		r.Automorph(phiB, b, k)
		prod := r.NewPoly(2)
		r.MulPoly(prod, phiA, phiB)
		if !prod.Equal(phiAB) {
			t.Fatalf("k=%d: automorphism is not multiplicative", k)
		}
	}
}

func TestAutomorphComposition(t *testing.T) {
	r := chamRing(t, 16)
	rng := rand.New(rand.NewSource(24))
	a := randPoly(r, rng, 2)
	k1, k2 := 3, 5
	t1, t2 := r.NewPoly(2), r.NewPoly(2)
	r.Automorph(t1, a, k1)
	r.Automorph(t2, t1, k2)
	direct := r.NewPoly(2)
	r.Automorph(direct, a, k1*k2%(2*r.N))
	if !t2.Equal(direct) {
		t.Fatal("φ_{k2}∘φ_{k1} != φ_{k1·k2}")
	}
}

func TestAutomorphIdentityAndEvenPanics(t *testing.T) {
	r := chamRing(t, 16)
	rng := rand.New(rand.NewSource(25))
	a := randPoly(r, rng, 2)
	id := r.NewPoly(2)
	r.Automorph(id, a, 1)
	if !id.Equal(a) {
		t.Fatal("φ_1 is not the identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("even automorphism index accepted")
		}
	}()
	r.Automorph(id, a, 4)
}

func TestAutomorphismOrbitSize(t *testing.T) {
	r := chamRing(t, 16) // 2N = 32
	// ord(3 mod 32): 3,9,27,81=17,51=19,57=25,75=11,33=1 -> 8.
	if got := r.AutomorphismOrbitSize(3); got != 8 {
		t.Errorf("ord(3 mod 32) = %d, want 8", got)
	}
	if got := r.AutomorphismOrbitSize(1); got != 1 {
		t.Errorf("ord(1) = %d, want 1", got)
	}
	if got := r.AutomorphismOrbitSize(2*r.N - 1); got != 2 {
		t.Errorf("ord(-1) = %d, want 2", got)
	}
}

func TestOpsRequireCoeffDomain(t *testing.T) {
	r := chamRing(t, 16)
	p := r.NewPoly(2)
	r.NTT(p)
	out := r.NewPoly(2)
	for name, fn := range map[string]func(){
		"Rev":         func() { r.Rev(out, p) },
		"ShiftNeg":    func() { r.ShiftNeg(out, p, 1) },
		"MulMonomial": func() { r.MulMonomial(out, p, 1) },
		"Automorph":   func() { r.Automorph(out, p, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted NTT-domain input", name)
				}
			}()
			fn()
		}()
	}
}

// TestShiftNegComposition: two SHIFTNEGs compose like monomials:
// ShiftNeg(ShiftNeg(a,s1),s2) = a·(-X^s1)(-X^s2) = a·X^(s1+s2).
func TestShiftNegComposition(t *testing.T) {
	r := chamRing(t, 32)
	rng := rand.New(rand.NewSource(26))
	a := randPoly(r, rng, 2)
	f := func(s1, s2 uint8) bool {
		x, y := int(s1)%r.N, int(s2)%r.N
		t1, t2, want := r.NewPoly(2), r.NewPoly(2), r.NewPoly(2)
		r.ShiftNeg(t1, a, x)
		r.ShiftNeg(t2, t1, y)
		r.MulMonomial(want, a, x+y)
		return t2.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMulPolyRingLaws: commutativity, associativity and distributivity of
// the negacyclic product over the full RNS basis.
func TestMulPolyRingLaws(t *testing.T) {
	r := chamRing(t, 32)
	rng := rand.New(rand.NewSource(27))
	a, b, c := randPoly(r, rng, 3), randPoly(r, rng, 3), randPoly(r, rng, 3)

	ab, ba := r.NewPoly(3), r.NewPoly(3)
	r.MulPoly(ab, a, b)
	r.MulPoly(ba, b, a)
	if !ab.Equal(ba) {
		t.Error("product not commutative")
	}

	abc1, abc2, bc := r.NewPoly(3), r.NewPoly(3), r.NewPoly(3)
	r.MulPoly(abc1, ab, c)
	r.MulPoly(bc, b, c)
	r.MulPoly(abc2, a, bc)
	if !abc1.Equal(abc2) {
		t.Error("product not associative")
	}

	sum, lhs, ac := r.NewPoly(3), r.NewPoly(3), r.NewPoly(3)
	r.Add(sum, b, c)
	r.MulPoly(lhs, a, sum)
	r.MulPoly(ac, a, c)
	rhs := r.NewPoly(3)
	r.Add(rhs, ab, ac)
	if !lhs.Equal(rhs) {
		t.Error("product not distributive over addition")
	}
}
