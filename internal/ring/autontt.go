package ring

// NTT-resident forms of the permutation ops and of RESCALE, the primitives
// behind the NTT-resident packing tree (DESIGN.md §12). The forward
// transform evaluates a at the odd root powers, slot j holding
// a(ψ^{2·brv(j)+1}), so:
//
//   - the automorphism a ↦ a(X^k) (odd k) permutes slots without touching
//     values: out(ψ^{2·brv(j)+1}) = a(ψ^{k·(2·brv(j)+1)}), and the odd
//     exponent k·(2·brv(j)+1) mod 2N is some 2t+1, stored at slot brv(t) —
//     one sign-free gather per limb instead of INTT → coefficient permute
//     (with negations) → NTT;
//   - multiplication by the monomial X^e is a pointwise multiply by the
//     NTT image of X^e, precomputed once per (e, limb) with Shoup
//     companions;
//   - ModDown only ever needs the coefficient form of the limb being
//     dropped: the normal limbs' centred correction is itself transformed
//     forward and subtracted slot-wise, so a full-basis accumulator can be
//     rescaled while every surviving limb stays resident.
//
// All three are bit-identical to their coefficient-domain counterparts
// composed with the transforms they elide: every intermediate here is
// congruent to the strict schedule's and both paths emit canonical
// residues.

import "math/bits"

func requireNTTDomain(ps ...*Poly) {
	for _, p := range ps {
		if !p.IsNTT {
			panic("ring: operation requires NTT domain")
		}
	}
}

// autoPermTable returns (building and caching on first use) the gather
// table of the automorphism X → X^k on NTT slots: out[j] = in[perm[j]].
func (r *Ring) autoPermTable(k int) []uint32 {
	if k%2 == 0 {
		panic("ring: automorphism index must be odd")
	}
	n2 := 2 * r.N
	kk := ((k % n2) + n2) % n2
	r.autoMu.RLock()
	perm, ok := r.autoPerm[kk]
	r.autoMu.RUnlock()
	if ok {
		return perm
	}
	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	if perm, ok = r.autoPerm[kk]; ok {
		return perm
	}
	logN := bits.Len(uint(r.N)) - 1
	perm = make([]uint32, r.N)
	for j := 0; j < r.N; j++ {
		// Slot j evaluates at exponent 2·brv(j)+1; under φ_k it needs the
		// value at k·(2·brv(j)+1) mod 2N = 2t+1, which lives at slot brv(t).
		e := (2*int(brv(uint(j), logN)) + 1) * kk % n2
		perm[j] = uint32(brv(uint((e-1)/2), logN))
	}
	r.autoPerm[kk] = perm
	return perm
}

// brv reverses the low `width` bits of x (the forward transform's output
// ordering).
func brv(x uint, width int) uint {
	return uint(bits.Reverse64(uint64(x)) >> (64 - width))
}

// AutomorphNTT sets out = a(X^k) for odd k on NTT-domain polynomials: one
// cached gather per limb, no transforms and no sign flips. Bit-identical
// to NTT ∘ Automorph(·, k) ∘ INTT.
func (r *Ring) AutomorphNTT(out, a *Poly, k int) {
	sameLevels(out, a)
	requireNTTDomain(a)
	perm := r.autoPermTable(k)
	n := r.N
	for l := range a.Coeffs {
		ra, ro := a.Coeffs[l][:n], out.Coeffs[l][:n]
		dst, sp := r.permDst(ro, ra)
		for j, src := range perm {
			dst[j] = ra[src]
		}
		if sp != nil {
			copy(ro, dst)
			r.putScratch(sp)
		}
	}
	out.IsNTT = true
}

// AutomorphNTTAddInto sets out += a(X^k) for odd k on NTT-domain
// polynomials, fusing the gather with its accumulation — the packing
// tree's φ_k(diff) contribution lands in the running sum without a
// materialized intermediate. out must not alias a.
func (r *Ring) AutomorphNTTAddInto(out, a *Poly, k int) {
	lv := sameLevels(out, a)
	requireNTTDomain(out, a)
	perm := r.autoPermTable(k)
	n := r.N
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, ro := a.Coeffs[l][:n], out.Coeffs[l][:n]
		for j, src := range perm {
			ro[j] = m.Add(ro[j], ra[src])
		}
	}
}

// MonomialSplitNTT computes the packing tree's PACKTWOLWES operand pair in
// one sweep:
//
//	sum  = E + X^e·O
//	diff = E - X^e·O
//
// on NTT-domain polynomials, without materializing X^e·O: each slot reads
// E and O once, multiplies O by the cached NTT image of X^e, and writes
// both outputs. sum may alias E; diff must alias neither input.
func (r *Ring) MonomialSplitNTT(sum, diff, E, O *Poly, e int) {
	lv := sameLevels(sum, diff, E, O)
	requireNTTDomain(E, O)
	t := r.monoNTTTable(e)
	n := r.N
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		re, ro := E.Coeffs[l][:n], O.Coeffs[l][:n]
		rm, rs := t.vals[l][:n], t.shoup[l][:n]
		rsum, rdiff := sum.Coeffs[l][:n], diff.Coeffs[l][:n]
		for i := 0; i < n; i++ {
			x := re[i]
			y := m.MulShoup(ro[i], rm[i], rs[i])
			rdiff[i] = m.Sub(x, y)
			rsum[i] = m.Add(x, y)
		}
	}
	sum.IsNTT, diff.IsNTT = true, true
}

// monoTable holds the NTT image of X^e per limb of the full basis, with
// Shoup companions, ready for MulCoeffShoup-style pointwise products.
type monoTable struct {
	vals, shoup [][]uint64
}

// monoNTTTable returns (building and caching on first use) the table for
// exponent e, normalized modulo 2N.
func (r *Ring) monoNTTTable(e int) *monoTable {
	n := r.N
	n2 := 2 * n
	ee := ((e % n2) + n2) % n2
	r.monoMu.RLock()
	t, ok := r.monoNTT[ee]
	r.monoMu.RUnlock()
	if ok {
		return t
	}
	r.monoMu.Lock()
	defer r.monoMu.Unlock()
	if t, ok = r.monoNTT[ee]; ok {
		return t
	}
	lv := len(r.Moduli)
	t = &monoTable{vals: make([][]uint64, lv), shoup: make([][]uint64, lv)}
	backing := make([]uint64, 2*lv*n)
	for l := 0; l < lv; l++ {
		t.vals[l], backing = backing[:n:n], backing[n:]
		t.shoup[l], backing = backing[:n:n], backing[n:]
		m := r.Moduli[l]
		// NTT(X^e): transform the basis monomial (X^{e-N} picks up the
		// negacyclic -1) rather than exponentiating ψ per slot.
		row := t.vals[l]
		for i := range row {
			row[i] = 0
		}
		if ee < n {
			row[ee] = 1
		} else {
			row[ee-n] = m.Q - 1
		}
		r.Tables[l].ForwardLazy(row)
		for i, v := range row {
			t.shoup[l][i] = m.ShoupPrecomp(v)
		}
	}
	r.monoNTT[ee] = t
	return t
}

// MulMonomialNTT sets out = a · X^e on NTT-domain polynomials: a pointwise
// Shoup multiply by the cached NTT image of X^e. Bit-identical to
// NTT ∘ MulMonomial(·, e) ∘ INTT.
func (r *Ring) MulMonomialNTT(out, a *Poly, e int) {
	lv := sameLevels(out, a)
	requireNTTDomain(a)
	t := r.monoNTTTable(e)
	for l := 0; l < lv; l++ {
		m := r.Moduli[l]
		ra, rb, rs, ro := a.Coeffs[l], t.vals[l], t.shoup[l], out.Coeffs[l]
		for i := range ro {
			ro[i] = m.MulShoup(ra[i], rb[i], rs[i])
		}
	}
	out.IsNTT = true
}

// ModDownNTTInto is ModDownInto for an NTT-resident accumulator:
// out = NTT(round(INTT(p) / q_last)) over the remaining basis, inverting
// ONLY the limb being dropped. The dropped limb's centred lift is built in
// coefficient form ([0, 3q) lazy representatives, inside the forward
// transform's 4q headroom), transformed forward, and subtracted slot-wise;
// the q_last^-1 Shoup multiply restores canonical residues. Slot-for-slot
// identical to NTT ∘ ModDownInto ∘ INTT on the same operand.
func (r *Ring) ModDownNTTInto(out, p *Poly) {
	r.modDownNTT(out, p, false)
}

// ModDownNTTAddInto is ModDownNTTInto fused with accumulation:
// out += NTT(round(INTT(p) / q_last)). out must already hold canonical
// NTT-domain residues — this is the deferred key-switch a-part merge of
// the packing tree.
func (r *Ring) ModDownNTTAddInto(out, p *Poly) {
	r.modDownNTT(out, p, true)
}

func (r *Ring) modDownNTT(out, p *Poly, add bool) {
	lv := p.Levels()
	if lv < 2 {
		panic("ring: nothing to drop")
	}
	if !p.IsNTT {
		panic("ring: ModDownNTT requires NTT domain")
	}
	if out.Levels() != lv-1 {
		panic("ring: ModDown level mismatch")
	}
	if add && !out.IsNTT {
		panic("ring: ModDownNTTAddInto accumulator must be NTT-domain")
	}
	n := r.N
	msp := r.Moduli[lv-1]
	// Coefficient view of the dropped limb: one inverse transform total,
	// regardless of how many limbs survive.
	spc := r.getScratch()
	sp := (*spc)[:n]
	copy(sp, p.Coeffs[lv-1][:n])
	r.Tables[lv-1].InverseLazy(sp)
	crc := r.getScratch()
	cr := (*crc)[:n]
	halfP := msp.Q / 2
	for l := 0; l < lv-1; l++ {
		ml := r.Moduli[l]
		pInv := r.modDownInv[lv-1][l]
		pp := r.modDownInvShoup[lv-1][l]
		twoQ := 2 * ml.Q
		// negAdd ≡ -q_sp (mod q_l), kept in (q_l, 2q_l] so the masked add
		// yields the centred lift as a lazy [0, 3q_l) representative.
		negAdd := twoQ - ml.ReduceBarrett(msp.Q)
		for i, x := range sp {
			neg := uint64(int64(halfP-x) >> 63) // all ones iff x > halfP
			cr[i] = ml.ReduceBarrett(x) + (neg & negAdd)
		}
		r.Tables[l].ForwardLazy(cr) // canonical out: ĉ = NTT([x_sp centred] mod q_l)
		ra := p.Coeffs[l][:n]
		ro := out.Coeffs[l][:n]
		if add {
			for i := range ro {
				ro[i] = ml.Add(ro[i], ml.MulShoup(ra[i]+twoQ-cr[i], pInv, pp))
			}
		} else {
			for i := range ro {
				ro[i] = ml.MulShoup(ra[i]+twoQ-cr[i], pInv, pp)
			}
		}
	}
	r.putScratch(crc)
	r.putScratch(spc)
	out.IsNTT = true
}
