// Package perfmodel provides analytic cost models for the comparison
// devices of the paper's evaluation: the Intel Xeon Gold 6130 CPU
// baseline, the NVIDIA Tesla V100 GPU, and the FATE Paillier stack.
//
// The FPGA side is simulated cycle-exactly in package pipeline; the
// comparison devices are modeled from operation counts (package core)
// against per-device throughput constants. The constants are calibrated
// to the paper's anchor claims — the CPU key switch at 1/105th of CHAM's
// 65k ops/s, the GPU at 45k NTT ops/s with 4.5× lower HMVP throughput and
// kernel-launch-bound latency, Paillier at FATE's big-integer rates — so
// the generated figures reproduce the published ratios while every scaling
// trend still follows from first-principles operation counts.
package perfmodel

import (
	"cham/internal/core"
)

// Params describes the HE parameter point for cost accounting.
type Params struct {
	N            int
	NormalLevels int
	FullLevels   int
}

// ChamParams is the paper's parameter point.
func ChamParams() Params { return Params{N: 4096, NormalLevels: 2, FullLevels: 3} }

// CPU models a multicore software baseline.
type CPU struct {
	Name          string
	Threads       int
	Efficiency    float64 // parallel scaling efficiency on memory-bound NTT code
	ModMulsPerSec float64 // single-thread sustained modular multiplies
	// Fixed per-ciphertext costs (seconds) for non-ModMul-bound steps.
	EncryptSec float64
	DecryptSec float64
}

// Xeon6130 is the paper's production host (2.1 GHz, 16 cores). The
// modular-multiply rate is calibrated so that one hybrid key switch costs
// 105× CHAM's 15.4 µs (§V-B.1).
func Xeon6130() CPU {
	return CPU{
		Name:          "Intel Xeon Gold 6130",
		Threads:       16,
		Efficiency:    0.5, // hyperthreaded cores sustain ~8x on NTT kernels
		ModMulsPerSec: 2.23e8,
		EncryptSec:    180e-6,
		DecryptSec:    120e-6,
	}
}

// seconds converts an operation count into multithreaded wall time.
func (c CPU) seconds(ops core.OpCounts, n int) float64 {
	return float64(ops.ModMuls(n)) / (c.ModMulsPerSec * float64(c.Threads) * c.Efficiency)
}

// HMVPSeconds is the CPU time of one coefficient-encoded HMVP.
func (c CPU) HMVPSeconds(p Params, m, cols int) float64 {
	return c.seconds(core.HMVPOps(p.N, p.NormalLevels, p.FullLevels, m, cols), p.N)
}

// KeySwitchSeconds is the single-threaded time of one hybrid key switch
// (the paper's CPU baseline measures a hot loop on one core).
func (c CPU) KeySwitchSeconds(p Params) float64 {
	ops := core.KeySwitchOps(p.NormalLevels, p.FullLevels)
	return float64(ops.ModMuls(p.N)) / c.ModMulsPerSec
}

// EncryptVectorSeconds is the cost of encrypting a length-`count` vector
// (one ciphertext per N values).
func (c CPU) EncryptVectorSeconds(p Params, count int) float64 {
	cts := (count + p.N - 1) / p.N
	return float64(cts) * c.EncryptSec
}

// DecryptVectorSeconds mirrors EncryptVectorSeconds.
func (c CPU) DecryptVectorSeconds(p Params, count int) float64 {
	cts := (count + p.N - 1) / p.N
	return float64(cts) * c.DecryptSec
}

// AddVecSeconds is the cost of a homomorphic vector addition.
func (c CPU) AddVecSeconds(p Params, count int) float64 {
	cts := (count + p.N - 1) / p.N
	// Coefficient-wise adds are memory-bound; model at one limb pass per
	// poly at the ModMul rate / 4 (adds are ~4x cheaper than muls).
	passes := float64(cts * 2 * p.NormalLevels * p.N)
	return passes / (4 * c.ModMulsPerSec * float64(c.Threads))
}

// GPU models the V100 comparison: high throughput, kernel-launch-bound
// latency.
type GPU struct {
	Name            string
	NTTOpsPerSec    float64 // composite 15-transform ops/s (paper: 45k)
	LaunchOverhead  float64 // per-invocation host+PCIe+launch latency
	ThroughputShare float64 // fraction of NTT-derived peak sustained on HMVP
}

// TeslaV100 uses the paper's quoted 45k NTT ops/s and a 4.5× HMVP
// throughput deficit against CHAM's 195k.
func TeslaV100() GPU {
	return GPU{
		Name:           "NVIDIA Tesla V100",
		NTTOpsPerSec:   45e3,
		LaunchOverhead: 1.2e-3,
		// A single fused kernel sustains about half the NTT-microbenchmark
		// rate on full HMVP — the shared-memory pressure the paper names
		// as the GPU bottleneck. This lands CHAM's HMVP throughput edge at
		// the published 4.5x.
		ThroughputShare: 0.49,
	}
}

// transformsPerSec converts the composite rate into limb transforms.
func (g GPU) transformsPerSec() float64 { return g.NTTOpsPerSec * 15 * g.ThroughputShare }

// HMVPSeconds models one HMVP: transform-bound steady state plus the
// fixed launch overhead that dominates small matrices (which is why CHAM
// sees 0.3-0.7× GPU latency in Fig. 8 despite a 4.5× throughput edge).
func (g GPU) HMVPSeconds(p Params, m, cols int) float64 {
	ops := core.HMVPOps(p.N, p.NormalLevels, p.FullLevels, m, cols)
	transforms := float64(ops.NTT + ops.INTT)
	// Coefficient-wise work rides along in the same kernels at ~10% cost.
	return g.LaunchOverhead + 1.1*transforms/g.transformsPerSec()
}

// KeySwitchSeconds is the amortised per-op key-switch time at full
// occupancy.
func (g GPU) KeySwitchSeconds(p Params) float64 {
	ops := core.KeySwitchOps(p.NormalLevels, p.FullLevels)
	return 1.1 * float64(ops.NTT+ops.INTT) / g.transformsPerSec()
}

// EncryptVectorSeconds / DecryptVectorSeconds: transform-bound plus launch.
func (g GPU) EncryptVectorSeconds(p Params, count int) float64 {
	cts := (count + p.N - 1) / p.N
	return g.LaunchOverhead + float64(cts*2*p.FullLevels)/g.transformsPerSec()
}

func (g GPU) DecryptVectorSeconds(p Params, count int) float64 {
	cts := (count + p.N - 1) / p.N
	return g.LaunchOverhead + float64(cts*p.NormalLevels)/g.transformsPerSec()
}

// AddVecSeconds is launch-bound.
func (g GPU) AddVecSeconds(p Params, count int) float64 {
	return g.LaunchOverhead / 2
}

// PaillierCPU models the FATE Paillier stack: every matrix element costs
// one big-integer ciphertext-plaintext exponentiation.
type PaillierCPU struct {
	Name        string
	Threads     int
	MulPlainSec float64 // ciphertext^scalar mod n²
	AddSec      float64 // ciphertext multiply mod n²
	EncryptSec  float64 // g^m·r^n mod n²
	DecryptSec  float64
}

// FATEPaillier uses 2048-bit keys on the Xeon host.
func FATEPaillier() PaillierCPU {
	// MulPlainSec reflects FATE's vectorized Paillier with CRT
	// acceleration; it anchors the matvec-step speed-up range at the
	// paper's 30x (30-row gradients) to 1800x (8192x8192).
	return PaillierCPU{
		Name:        "FATE Paillier (2048-bit)",
		Threads:     16,
		MulPlainSec: 54e-6,
		AddSec:      2e-6,
		EncryptSec:  2.6e-3,
		DecryptSec:  2.4e-3,
	}
}

// MatVecSeconds: m·n scalar multiplies and m·(n-1) adds, multithreaded.
func (pc PaillierCPU) MatVecSeconds(m, cols int) float64 {
	work := float64(m) * float64(cols) * pc.MulPlainSec
	work += float64(m) * float64(cols-1) * pc.AddSec
	return work / float64(pc.Threads)
}

// EncryptVectorSeconds: one Paillier ciphertext per element.
func (pc PaillierCPU) EncryptVectorSeconds(count int) float64 {
	return float64(count) * pc.EncryptSec / float64(pc.Threads)
}

// DecryptVectorSeconds mirrors encryption.
func (pc PaillierCPU) DecryptVectorSeconds(count int) float64 {
	return float64(count) * pc.DecryptSec / float64(pc.Threads)
}

// AddVecSeconds: element-wise ciphertext adds.
func (pc PaillierCPU) AddVecSeconds(count int) float64 {
	return float64(count) * pc.AddSec / float64(pc.Threads)
}
