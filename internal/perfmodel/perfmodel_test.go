package perfmodel

import (
	"testing"

	"cham/internal/pipeline"
)

// TestKeySwitchAnchor pins §V-B.1: CHAM's key-switch throughput is 105×
// the CPU baseline.
func TestKeySwitchAnchor(t *testing.T) {
	cpu := Xeon6130()
	cham := pipeline.ChamConfig()
	ratio := cpu.KeySwitchSeconds(ChamParams()) * cham.KeySwitchOpsPerSec()
	if ratio < 100 || ratio > 110 {
		t.Errorf("key-switch speed-up %.1f, want ≈ 105", ratio)
	}
}

// TestGPUThroughputAnchor pins the 4.5× HMVP throughput edge over the
// V100 (Fig. 6).
func TestGPUThroughputAnchor(t *testing.T) {
	gpu := TeslaV100()
	cham := pipeline.ChamConfig()
	p := ChamParams()
	m, n := 8192, 4096
	chamRows := cham.ThroughputRowsPerSec(m, n)
	gpuRows := float64(m) / gpu.HMVPSeconds(p, m, n)
	ratio := chamRows / gpuRows
	if ratio < 4.0 || ratio > 5.0 {
		t.Errorf("throughput ratio %.2f, want ≈ 4.5", ratio)
	}
}

// TestGPULatencyAnchor pins Fig. 8's latency comparison: CHAM's HMVP
// latency is 0.3×–0.7× of the GPU's across matrix sizes.
func TestGPULatencyAnchor(t *testing.T) {
	gpu := TeslaV100()
	cham := pipeline.ChamConfig()
	p := ChamParams()
	for _, m := range []int{256, 1024, 4096} {
		for _, n := range []int{256, 4096} {
			chamSec := cham.SimulateHMVP(m, n).Seconds(cham.FreqMHz)
			gpuSec := gpu.HMVPSeconds(p, m, n)
			ratio := chamSec / gpuSec
			if ratio < 0.25 || ratio > 0.75 {
				t.Errorf("m=%d n=%d: latency ratio %.2f outside the paper's 0.3-0.7", m, n, ratio)
			}
		}
	}
}

// TestCPUSpeedupAnchor pins Fig. 8's >10× against the BFV CPU baseline,
// growing with the row count.
func TestCPUSpeedupAnchor(t *testing.T) {
	cpu := Xeon6130()
	cham := pipeline.ChamConfig()
	p := ChamParams()
	prev := 0.0
	for _, m := range []int{256, 1024, 4096} {
		chamSec := cham.SimulateHMVP(m, 4096).Seconds(cham.FreqMHz)
		ratio := cpu.HMVPSeconds(p, m, 4096) / chamSec
		if m == 4096 && ratio < 10 {
			t.Errorf("m=%d: CPU speed-up %.1f, want > 10", m, ratio)
		}
		if ratio < prev*0.95 {
			t.Errorf("speed-up should grow with m: %.1f after %.1f", ratio, prev)
		}
		prev = ratio
	}
}

// TestPaillierSpeedupAnchor pins §V-B.3's 30×–1800× matvec range across
// the HeteroLR shapes (gradient matrices are features×samples at the
// small end, square at the large end).
func TestPaillierSpeedupAnchor(t *testing.T) {
	pl := FATEPaillier()
	cham := pipeline.ChamConfig()
	shapes := []struct {
		m, n   int
		lo, hi float64
	}{
		{30, 569, 25, 100},       // breast-cancer-scale gradient
		{1024, 1024, 100, 300},   // mid-size
		{8192, 8192, 1500, 2100}, // the 1800× headline shape
	}
	prev := 0.0
	for _, s := range shapes {
		chamSec := cham.SimulateHMVP(s.m, s.n).Seconds(cham.FreqMHz)
		ratio := pl.MatVecSeconds(s.m, s.n) / chamSec
		if ratio < s.lo || ratio > s.hi {
			t.Errorf("%dx%d: Paillier speed-up %.0f outside [%.0f, %.0f]", s.m, s.n, ratio, s.lo, s.hi)
		}
		if ratio <= prev {
			t.Errorf("%dx%d: speed-up should grow with size", s.m, s.n)
		}
		prev = ratio
	}
}

// TestStepModelsArePositiveAndOrdered: encryption/decryption/add costs must
// be positive everywhere and Paillier must be the slowest per element.
func TestStepModelsArePositiveAndOrdered(t *testing.T) {
	p := ChamParams()
	cpu := Xeon6130()
	gpu := TeslaV100()
	pl := FATEPaillier()
	for _, count := range []int{100, 4096, 100000} {
		vals := []float64{
			cpu.EncryptVectorSeconds(p, count), cpu.DecryptVectorSeconds(p, count),
			cpu.AddVecSeconds(p, count),
			gpu.EncryptVectorSeconds(p, count), gpu.DecryptVectorSeconds(p, count),
			gpu.AddVecSeconds(p, count),
			pl.EncryptVectorSeconds(count), pl.DecryptVectorSeconds(count),
			pl.AddVecSeconds(count),
		}
		for i, v := range vals {
			if v <= 0 {
				t.Fatalf("count=%d: cost %d not positive", count, i)
			}
		}
		// Per-element Paillier encryption must dwarf BFV's batched one.
		if pl.EncryptVectorSeconds(count) < 10*cpu.EncryptVectorSeconds(p, count) {
			t.Errorf("count=%d: Paillier encryption should be far slower", count)
		}
	}
}

// TestGPUKeySwitchBetween: the GPU key-switch rate should land between CPU
// and CHAM (tens of times faster than CPU, slower than the FPGA).
func TestGPUKeySwitchBetween(t *testing.T) {
	p := ChamParams()
	cpu := Xeon6130().KeySwitchSeconds(p)
	gpu := TeslaV100().KeySwitchSeconds(p)
	cham := 1 / pipeline.ChamConfig().KeySwitchOpsPerSec()
	if !(cham < gpu && gpu < cpu) {
		t.Errorf("ordering violated: cham %.2e, gpu %.2e, cpu %.2e", cham, gpu, cpu)
	}
}
