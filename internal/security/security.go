// Package security validates encryption parameters against the
// Homomorphic Encryption Standard's tables (Albrecht et al.): for a given
// ring degree and secret distribution, the total ciphertext modulus
// (including special limbs — the key-switching keys live at Q·P) must not
// exceed the tabulated bit budget for the target security level.
//
// CHAM's §II-F parameter sentence — N=4096 "corresponds to a space of 109
// bit", split 35+35 ciphertext + 39 special — is exactly the ternary
// 128-bit row of that table; the tests pin it.
package security

import (
	"fmt"
	"math"

	"cham/internal/rlwe"
)

// Level is a target security level in bits.
type Level int

// Standard levels.
const (
	Level128 Level = 128
	Level192 Level = 192
	Level256 Level = 256
)

// maxLogQP tabulates the HE-standard ceilings for ternary secrets:
// maxLogQP[level][logN] = maximum total modulus bits.
var maxLogQP = map[Level]map[int]int{
	Level128: {10: 27, 11: 54, 12: 109, 13: 218, 14: 438, 15: 881},
	Level192: {10: 19, 11: 37, 12: 75, 13: 152, 14: 305, 15: 611},
	Level256: {10: 14, 11: 29, 12: 58, 13: 118, 14: 237, 15: 476},
}

// LogQP returns the total modulus size in bits (sum over every limb,
// special limbs included, as the key material is encrypted at Q·P).
func LogQP(p rlwe.Params) float64 {
	total := 0.0
	for _, m := range p.R.Moduli {
		total += math.Log2(float64(m.Q))
	}
	return total
}

// Check validates the parameter set against the standard at the given
// level. It errors when the ring degree is outside the tabulated range or
// the modulus exceeds the ceiling.
func Check(p rlwe.Params, level Level) error {
	table, ok := maxLogQP[level]
	if !ok {
		return fmt.Errorf("security: unknown level %d", level)
	}
	logN := 0
	for v := p.R.N; v > 1; v >>= 1 {
		logN++
	}
	ceiling, ok := table[logN]
	if !ok {
		return fmt.Errorf("security: no standard entry for N=2^%d", logN)
	}
	if got := LogQP(p); got > float64(ceiling) {
		return fmt.Errorf("security: logQP %.2f exceeds the %d-bit ceiling %d for N=2^%d",
			got, level, ceiling, logN)
	}
	return nil
}

// MaxLevel returns the strongest standard level the parameters satisfy,
// or an error if they do not even reach 128 bits.
func MaxLevel(p rlwe.Params) (Level, error) {
	best := Level(0)
	for _, l := range []Level{Level128, Level192, Level256} {
		if Check(p, l) == nil {
			best = l
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("security: parameters below 128-bit security")
	}
	return best, nil
}

// Headroom returns the unused modulus bits at the given level (negative
// when over budget).
func Headroom(p rlwe.Params, level Level) (float64, error) {
	table, ok := maxLogQP[level]
	if !ok {
		return 0, fmt.Errorf("security: unknown level %d", level)
	}
	logN := 0
	for v := p.R.N; v > 1; v >>= 1 {
		logN++
	}
	ceiling, ok := table[logN]
	if !ok {
		return 0, fmt.Errorf("security: no standard entry for N=2^%d", logN)
	}
	return float64(ceiling) - LogQP(p), nil
}

// NominalBits returns the sum of the limb bit-LENGTHS — the counting the
// paper's "space of 109 bit" sentence uses (35+35+39), slightly above the
// true log2(QP).
func NominalBits(p rlwe.Params) int {
	total := 0
	for _, m := range p.R.Moduli {
		total += bitLen(m.Q)
	}
	return total
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
