package security

import (
	"math"
	"testing"

	"cham/internal/bfv"
	"cham/internal/mod"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// TestChamParamsMeetTheStandard pins the §II-F sentence: N=4096 with the
// 35+35+39-bit chain sits exactly at the 109-bit / 128-bit-security entry.
func TestChamParamsMeetTheStandard(t *testing.T) {
	p, err := bfv.NewChamParams(4096)
	if err != nil {
		t.Fatal(err)
	}
	if nb := NominalBits(p.Params); nb != 109 {
		t.Errorf("nominal bits = %d, the paper says 109 (35+35+39)", nb)
	}
	logQP := LogQP(p.Params)
	if logQP > 109 || logQP < 106 {
		t.Errorf("logQP = %.3f, want just under the 109-bit nominal count", logQP)
	}
	if err := Check(p.Params, Level128); err != nil {
		t.Errorf("CHAM parameters fail the 128-bit standard: %v", err)
	}
	// And they deliberately use (almost) the whole budget.
	head, err := Headroom(p.Params, Level128)
	if err != nil {
		t.Fatal(err)
	}
	if head < 0 || head > 3 {
		t.Errorf("headroom %.2f bits; the paper's point is a nearly full budget", head)
	}
	// They do NOT reach 192-bit security — the budget there is 75 bits.
	if err := Check(p.Params, Level192); err == nil {
		t.Error("109-bit modulus at N=4096 cannot be 192-bit secure")
	}
	if lvl, err := MaxLevel(p.Params); err != nil || lvl != Level128 {
		t.Errorf("MaxLevel = %v, %v", lvl, err)
	}
}

// TestSmallerRingsRejected: the same modulus on a smaller ring violates
// the standard (this is why the test rings in this repository are for
// testing only).
func TestSmallerRingsRejected(t *testing.T) {
	r := ring.MustNew(1024, mod.ChamModuli())
	p, err := rlwe.NewParams(r, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, Level128); err == nil {
		t.Error("109-bit modulus at N=1024 accepted")
	}
	if _, err := MaxLevel(p); err == nil {
		t.Error("MaxLevel should fail below 128-bit security")
	}
}

func TestHigherLevels(t *testing.T) {
	// A slim chain at N=4096 reaches 192 bits: one 35-bit + one 39-bit
	// limb (74 ≤ 75).
	primes := []uint64{mod.ChamQ0, mod.ChamP}
	r := ring.MustNew(4096, primes)
	p, err := rlwe.NewParams(r, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, Level192); err != nil {
		t.Errorf("74-bit chain at N=4096 should be 192-bit secure: %v", err)
	}
	if err := Check(p, Level256); err == nil {
		t.Error("74-bit chain cannot be 256-bit secure (ceiling 58)")
	}
}

func TestCheckErrors(t *testing.T) {
	r := ring.MustNew(512, []uint64{12289}) // N=512 below the table
	p, err := rlwe.NewParams(r, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, Level128); err == nil {
		t.Error("untabulated ring degree accepted")
	}
	if err := Check(p, Level(99)); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := Headroom(p, Level(99)); err == nil {
		t.Error("Headroom with unknown level accepted")
	}
}

func TestLogQPAdds(t *testing.T) {
	r := ring.MustNew(4096, mod.ChamModuli())
	p, _ := rlwe.NewParams(r, 2, 21)
	want := math.Log2(float64(mod.ChamQ0)) + math.Log2(float64(mod.ChamQ1)) + math.Log2(float64(mod.ChamP))
	if got := LogQP(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("LogQP = %f, want %f", got, want)
	}
}
