// Package ntt implements negacyclic number theoretic transforms over
// Z_q[X]/(X^N+1) in the three flavours the CHAM paper discusses:
//
//   - the standard iterative Cooley-Tukey / Gentleman-Sande in-place
//     transform (the software baseline),
//   - the constant-geometry (Pease) dataflow of Alg. 4, whose butterfly
//     wiring is identical in every stage, and
//   - a cycle-level banked model of the paper's Fig. 3 datapath with n_bf
//     butterfly units, round-robin RAM banks, ping-pong buffers, SWAP
//     reordering and per-BFU twiddle ROMs (Fig. 4).
//
// Forward transforms map natural-order coefficients to bit-reversed-order
// evaluations at odd powers of the primitive 2N-th root ψ; inverse
// transforms undo that, including the N^-1 scaling.
package ntt

import (
	"fmt"
	"math/bits"
	"sync"

	"cham/internal/mod"
)

// Table holds precomputed twiddle factors for one (N, q) pair.
type Table struct {
	N    int
	LogN int
	M    mod.Modulus

	// scratch pools N-word work buffers for the out-of-place
	// constant-geometry passes, so transforms allocate nothing after
	// warm-up. Entries are *[]uint64 so Get/Put stay allocation-free.
	scratch sync.Pool

	Psi    uint64 // primitive 2N-th root of unity mod q
	PsiInv uint64

	// rootsFwd[k] = ψ^brv(k), k in [0,N), with brv over LogN bits.
	// This is the unified table both CT and CG address (see cg.go for the
	// CG indexing rule, which reproduces the paper's Fig. 4 layout).
	rootsFwd, rootsFwdShoup []uint64
	// rootsInv[k] = ψ^-brv(k), the elementwise inverse of rootsFwd.
	rootsInv, rootsInvShoup []uint64

	nInv, nInvShoup uint64
	// nInvRoot = rootsInv[1]·N^-1, the twiddle of the inverse transform's
	// final stage with the normalization folded in (see lazy.go/batch.go).
	nInvRoot, nInvRootShoup uint64
}

// NewTable builds twiddle tables for a size-N negacyclic NTT modulo q.
// N must be a power of two and q ≡ 1 (mod 2N).
func NewTable(n int, q uint64) (*Table, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: N=%d is not a power of two ≥ 2", n)
	}
	if (q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("ntt: q=%d is not 1 mod 2N=%d", q, 2*n)
	}
	m, err := mod.TryNew(q)
	if err != nil {
		return nil, err
	}
	psi, err := mod.RootOfUnity(q, uint64(2*n))
	if err != nil {
		return nil, err
	}
	t := &Table{
		N:    n,
		LogN: bits.Len(uint(n)) - 1,
		M:    m,
		Psi:  psi,
	}
	t.PsiInv = m.Inv(psi)

	t.rootsFwd = make([]uint64, n)
	t.rootsFwdShoup = make([]uint64, n)
	t.rootsInv = make([]uint64, n)
	t.rootsInvShoup = make([]uint64, n)
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := brv(uint(i), t.LogN)
		t.rootsFwd[j] = fwd
		t.rootsInv[j] = inv
		fwd = m.Mul(fwd, psi)
		inv = m.Mul(inv, t.PsiInv)
	}
	for i := 0; i < n; i++ {
		t.rootsFwdShoup[i] = m.ShoupPrecomp(t.rootsFwd[i])
		t.rootsInvShoup[i] = m.ShoupPrecomp(t.rootsInv[i])
	}
	t.nInv = m.Inv(uint64(n))
	t.nInvShoup = m.ShoupPrecomp(t.nInv)
	t.nInvRoot = m.Mul(t.rootsInv[1], t.nInv)
	t.nInvRootShoup = m.ShoupPrecomp(t.nInvRoot)
	return t, nil
}

// MustTable is NewTable for known-good parameters; it panics on error.
func MustTable(n int, q uint64) *Table {
	t, err := NewTable(n, q)
	if err != nil {
		panic(err)
	}
	return t
}

// getScratch borrows an N-word buffer from the table's pool. The returned
// pointer must be handed back with putScratch; the slice contents are
// arbitrary.
func (t *Table) getScratch() *[]uint64 {
	if p, ok := t.scratch.Get().(*[]uint64); ok {
		return p
	}
	buf := make([]uint64, t.N)
	return &buf
}

func (t *Table) putScratch(p *[]uint64) { t.scratch.Put(p) }

// brv reverses the low `width` bits of x.
func brv(x uint, width int) uint {
	return uint(bits.Reverse64(uint64(x)) >> (64 - width))
}

// BitReverse permutes a in place into bit-reversed index order.
func BitReverse(a []uint64) {
	logN := bits.Len(uint(len(a))) - 1
	for i := range a {
		j := brv(uint(i), logN)
		if uint(i) < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}
