package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cham/internal/mod"
)

// smallPrime returns an NTT-friendly prime for size n usable in exhaustive
// small-N tests.
func smallPrime(t *testing.T, n uint64) uint64 {
	t.Helper()
	ps, err := mod.NTTFriendlyPrimes(20, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ps[0]
}

func randomPoly(rng *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return a
}

func TestNewTableRejectsBadParams(t *testing.T) {
	if _, err := NewTable(3, 97); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	if _, err := NewTable(0, 97); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewTable(4096, 97); err == nil {
		t.Error("q not 1 mod 2N accepted")
	}
	if _, err := NewTable(4, 16); err == nil {
		t.Error("even q accepted")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable did not panic on bad params")
		}
	}()
	MustTable(3, 97)
}

// TestForwardMatchesNaive checks that Forward output equals the O(N²)
// evaluation at ψ^(2k+1) in bit-reversed order.
func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		q := smallPrime(t, uint64(n))
		tb := MustTable(n, q)
		for trial := 0; trial < 5; trial++ {
			a := randomPoly(rng, n, q)
			want := tb.naiveForward(a)
			got := make([]uint64, n)
			copy(got, a)
			tb.Forward(got)
			for j := 0; j < n; j++ {
				if got[j] != want[brv(uint(j), tb.LogN)] {
					t.Fatalf("N=%d trial %d: Forward[%d]=%d, naive[brv]=%d",
						n, trial, j, got[j], want[brv(uint(j), tb.LogN)])
				}
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 64, 256, 4096} {
		for _, q := range []uint64{mod.ChamQ0, mod.ChamQ1, mod.ChamP} {
			tb := MustTable(n, q)
			a := randomPoly(rng, n, q)
			b := make([]uint64, n)
			copy(b, a)
			tb.Forward(b)
			tb.Inverse(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("N=%d q=%d: round trip differs at %d", n, q, i)
				}
			}
		}
	}
}

// TestConvolutionTheorem: INTT(NTT(a) ∘ NTT(b)) must equal the negacyclic
// product of a and b.
func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 32, 128} {
		q := smallPrime(t, uint64(n))
		tb := MustTable(n, q)
		a := randomPoly(rng, n, q)
		b := randomPoly(rng, n, q)
		want := NaiveNegacyclicMul(tb.M, a, b)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tb.Forward(fa)
		tb.Forward(fb)
		for i := range fa {
			fa[i] = tb.M.Mul(fa[i], fb[i])
		}
		tb.Inverse(fa)
		for i := range want {
			if fa[i] != want[i] {
				t.Fatalf("N=%d: product differs at %d: got %d want %d", n, i, fa[i], want[i])
			}
		}
	}
}

// TestNTTLinearity property-tests that the transform is linear.
func TestNTTLinearity(t *testing.T) {
	const n = 64
	q := uint64(mod.ChamQ0)
	tb := MustTable(n, q)
	rng := rand.New(rand.NewSource(4))
	f := func(c uint64) bool {
		c %= q
		a := randomPoly(rng, n, q)
		b := randomPoly(rng, n, q)
		// lhs = NTT(c·a + b)
		lhs := make([]uint64, n)
		for i := range lhs {
			lhs[i] = tb.M.Add(tb.M.Mul(c, a[i]), b[i])
		}
		tb.Forward(lhs)
		// rhs = c·NTT(a) + NTT(b)
		tb.Forward(a)
		tb.Forward(b)
		for i := range a {
			r := tb.M.Add(tb.M.Mul(c, a[i]), b[i])
			if r != lhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForwardCGMatchesCT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 8, 16, 256, 4096} {
		for _, q := range []uint64{mod.ChamQ0, mod.ChamP} {
			tb := MustTable(n, q)
			a := randomPoly(rng, n, q)
			want := append([]uint64(nil), a...)
			tb.Forward(want)
			got := make([]uint64, n)
			tb.ForwardCG(got, a)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("N=%d q=%d: CG differs from CT at %d", n, q, i)
				}
			}
		}
	}
}

func TestInverseCGMatchesCT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 8, 16, 256, 4096} {
		q := uint64(mod.ChamQ1)
		tb := MustTable(n, q)
		a := randomPoly(rng, n, q) // arbitrary NTT-domain data
		want := append([]uint64(nil), a...)
		tb.Inverse(want)
		got := make([]uint64, n)
		tb.InverseCG(got, a)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("N=%d: InverseCG differs from Inverse at %d", n, i)
			}
		}
	}
}

func TestCGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 128, 4096} {
		tb := MustTable(n, mod.ChamQ0)
		a := randomPoly(rng, n, tb.M.Q)
		fwd := make([]uint64, n)
		back := make([]uint64, n)
		tb.ForwardCG(fwd, a)
		tb.InverseCG(back, fwd)
		for i := range a {
			if back[i] != a[i] {
				t.Fatalf("N=%d: CG round trip differs at %d", n, i)
			}
		}
	}
}

func TestCGTwiddleIndexLayout(t *testing.T) {
	tb := MustTable(32, smallPrime(t, 32))
	// Stage s uses exactly 2^s distinct twiddle indices, cycling with
	// period 2^s, so consecutive butterflies (one Fig.-4 "column" per clock
	// cycle) consume distinct factors and BFU b only ever needs indices
	// ≡ b (mod n_bf).
	for s := 0; s < tb.LogN; s++ {
		period := 1 << s
		seen := map[int]bool{}
		for j := 0; j < tb.N/2; j++ {
			k := tb.CGTwiddleIndex(s, j)
			if k < 1<<s || k >= 2<<s {
				t.Fatalf("stage %d: twiddle index %d outside [%d,%d)", s, k, 1<<s, 2<<s)
			}
			if j >= period && k != tb.CGTwiddleIndex(s, j-period) {
				t.Fatalf("stage %d: sequence not periodic with period %d at j=%d", s, period, j)
			}
			if j < period {
				if seen[k] {
					t.Fatalf("stage %d: twiddle %d repeated within one period", s, k)
				}
				seen[k] = true
			}
		}
		if len(seen) != period {
			t.Fatalf("stage %d: %d distinct twiddles, want %d", s, len(seen), period)
		}
	}
	// The total distinct-factor footprint across all stages is N-1
	// (paper §IV.A.2: "the size of twiddle factors is equal to the size of
	// a polynomial").
	distinct := map[int]bool{}
	for s := 0; s < tb.LogN; s++ {
		for j := 0; j < tb.N/2; j++ {
			distinct[tb.CGTwiddleIndex(s, j)] = true
		}
	}
	if len(distinct) != tb.N-1 {
		t.Fatalf("%d distinct twiddle indices, want N-1 = %d", len(distinct), tb.N-1)
	}
}

func TestBitReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomPoly(rng, 64, 1<<40)
	b := append([]uint64(nil), a...)
	BitReverse(b)
	BitReverse(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BitReverse is not an involution")
		}
	}
}

func TestForwardPanicsOnLengthMismatch(t *testing.T) {
	tb := MustTable(8, smallPrime(t, 8))
	for name, fn := range map[string]func(){
		"Forward":   func() { tb.Forward(make([]uint64, 4)) },
		"Inverse":   func() { tb.Inverse(make([]uint64, 4)) },
		"ForwardCG": func() { tb.ForwardCG(make([]uint64, 8), make([]uint64, 4)) },
		"InverseCG": func() { tb.InverseCG(make([]uint64, 4), make([]uint64, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// TestForwardLazyMatchesForward: the lazy-reduction variant is
// bit-identical to the strict one on random and adversarial inputs.
func TestForwardLazyMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{8, 256, 4096} {
		for _, q := range []uint64{mod.ChamQ0, mod.ChamQ1, mod.ChamP} {
			tb := MustTable(n, q)
			for trial := 0; trial < 4; trial++ {
				a := randomPoly(rng, n, q)
				if trial == 1 { // all q-1: worst-case magnitudes
					for i := range a {
						a[i] = q - 1
					}
				}
				if trial == 2 {
					for i := range a {
						a[i] = 0
					}
				}
				want := append([]uint64(nil), a...)
				tb.Forward(want)
				got := append([]uint64(nil), a...)
				tb.ForwardLazy(got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("N=%d q=%d trial %d: lazy differs at %d", n, q, trial, i)
					}
				}
			}
		}
	}
}
