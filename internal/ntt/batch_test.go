package ntt

import (
	"math/rand"
	"testing"

	"cham/internal/mod"
)

// Differential coverage for the limb-batched lazy transforms: at every
// CHAM modulus and the benchmarked ring degrees, ForwardBatch/InverseBatch
// must be bit-identical to the strict one-row schedules, for every batch
// width (1, 2, 3 rows — exercising the paired kernel plus the odd
// remainder) and for lazy (non-canonical) inputs inside the documented
// headroom.

var batchSizes = []int{256, 512, 4096}

// lazyPoly returns n coefficients uniform in [0, bound) — representatives
// deliberately above q to exercise the lazy-reduction input contract.
func lazyPoly(rng *rand.Rand, n int, bound uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % bound
	}
	return a
}

// canon reduces a lazy representative vector to canonical residues.
func canon(a []uint64, q uint64) []uint64 {
	out := make([]uint64, len(a))
	for i, x := range a {
		out[i] = x % q
	}
	return out
}

func TestForwardBatchMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range mod.ChamModuli() {
		for _, n := range batchSizes {
			tb := MustTable(n, q)
			for _, width := range []int{1, 2, 3} {
				rows := make([][]uint64, width)
				want := make([][]uint64, width)
				for r := range rows {
					// Inputs anywhere in [0, 4q): the lazy kernel must
					// canonicalize them to the same output the strict
					// transform produces from the reduced residues.
					rows[r] = lazyPoly(rng, n, 4*q)
					want[r] = canon(rows[r], q)
					tb.Forward(want[r])
				}
				tb.ForwardBatch(rows...)
				for r := range rows {
					for i := range rows[r] {
						if rows[r][i] != want[r][i] {
							t.Fatalf("q=%d N=%d width=%d row=%d: ForwardBatch[%d]=%d, strict Forward=%d",
								q, n, width, r, i, rows[r][i], want[r][i])
						}
					}
				}
			}
		}
	}
}

func TestInverseBatchMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, q := range mod.ChamModuli() {
		for _, n := range batchSizes {
			tb := MustTable(n, q)
			for _, width := range []int{1, 2, 3} {
				rows := make([][]uint64, width)
				want := make([][]uint64, width)
				for r := range rows {
					// Inverse inputs may sit in [0, 2q) — the lazy forward
					// MAC chain hands exactly that to the completion path.
					rows[r] = lazyPoly(rng, n, 2*q)
					want[r] = canon(rows[r], q)
					tb.Inverse(want[r])
				}
				tb.InverseBatch(rows...)
				for r := range rows {
					for i := range rows[r] {
						if rows[r][i] != want[r][i] {
							t.Fatalf("q=%d N=%d width=%d row=%d: InverseBatch[%d]=%d, strict Inverse=%d",
								q, n, width, r, i, rows[r][i], want[r][i])
						}
					}
				}
			}
		}
	}
}

// TestBatchRoundTrip: InverseBatch(ForwardBatch(a)) is the identity on
// canonical inputs, with both rows of a pair independent.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, q := range mod.ChamModuli() {
		tb := MustTable(512, q)
		a := randomPoly(rng, 512, q)
		b := randomPoly(rng, 512, q)
		ac := append([]uint64(nil), a...)
		bc := append([]uint64(nil), b...)
		tb.ForwardBatch(ac, bc)
		tb.InverseBatch(ac, bc)
		for i := range a {
			if ac[i] != a[i] || bc[i] != b[i] {
				t.Fatalf("q=%d: round trip diverged at %d", q, i)
			}
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	tb := MustTable(16, smallPrime(t, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardBatch accepted a short row")
		}
	}()
	tb.ForwardBatch(make([]uint64, 16), make([]uint64, 8))
}
