package ntt

import (
	"math/rand"
	"testing"

	"cham/internal/mod"
)

func TestBankedForwardMatchesCT(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{16, 64, 1024, 4096} {
		for _, nbf := range []int{1, 2, 4, 8} {
			if 4*nbf > n {
				continue
			}
			tb := MustTable(n, mod.ChamQ0)
			u, err := NewBankedUnit(tb, nbf)
			if err != nil {
				t.Fatal(err)
			}
			a := randomPoly(rng, n, tb.M.Q)
			want := append([]uint64(nil), a...)
			tb.Forward(want)
			got := u.Forward(a)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("N=%d nbf=%d: banked result differs at %d", n, nbf, i)
				}
			}
		}
	}
}

func TestBankedNoConflictsAndCycleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{64, 4096} {
		for _, nbf := range []int{2, 4, 8} {
			tb := MustTable(n, mod.ChamQ1)
			u, _ := NewBankedUnit(tb, nbf)
			u.Forward(randomPoly(rng, n, tb.M.Q))
			if u.BankConflicts != 0 {
				t.Errorf("N=%d nbf=%d: %d bank conflicts; constant geometry must be conflict-free",
					n, nbf, u.BankConflicts)
			}
			if want := CGCycles(n, nbf); u.Cycles != want {
				t.Errorf("N=%d nbf=%d: %d cycles, want %d", n, nbf, u.Cycles, want)
			}
		}
	}
}

// TestChamNTTLatency pins the headline Table III number: N=4096, n_bf=4
// must take exactly 6144 cycles.
func TestChamNTTLatency(t *testing.T) {
	if got := CGCycles(4096, 4); got != 6144 {
		t.Fatalf("CGCycles(4096,4) = %d, want 6144 (Table III)", got)
	}
	tb := MustTable(4096, mod.ChamQ0)
	u, _ := NewBankedUnit(tb, 4)
	u.Forward(make([]uint64, 4096))
	if u.Cycles != 6144 {
		t.Fatalf("banked model took %d cycles, want 6144", u.Cycles)
	}
}

func TestBankedROMs(t *testing.T) {
	tb := MustTable(256, mod.ChamP)
	for _, nbf := range []int{1, 4, 8} {
		u, _ := NewBankedUnit(tb, nbf)
		if err := u.VerifyROMs(); err != nil {
			t.Errorf("nbf=%d: %v", nbf, err)
		}
		if want := tb.N / 2 * tb.LogN / nbf; u.ROMDepth != want {
			t.Errorf("nbf=%d: ROM depth %d, want %d", nbf, u.ROMDepth, want)
		}
	}
}

func TestNewBankedUnitRejectsBadNBF(t *testing.T) {
	tb := MustTable(16, smallPrime(t, 16))
	for _, nbf := range []int{0, 3, 8, 16, -1} {
		if _, err := NewBankedUnit(tb, nbf); err == nil {
			t.Errorf("nbf=%d accepted", nbf)
		}
	}
}

func TestBankOfRoundRobin(t *testing.T) {
	tb := MustTable(64, smallPrime(t, 64))
	u, _ := NewBankedUnit(tb, 4)
	for i := 0; i < 64; i++ {
		if got := u.bankOf(i); got != i%8 {
			t.Fatalf("bankOf(%d) = %d, want %d", i, got, i%8)
		}
	}
}

func TestBankedInverseMatchesGS(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{64, 1024, 4096} {
		for _, nbf := range []int{2, 4, 8} {
			tb := MustTable(n, mod.ChamQ0)
			u, _ := NewBankedUnit(tb, nbf)
			a := randomPoly(rng, n, tb.M.Q)
			want := append([]uint64(nil), a...)
			tb.Inverse(want)
			got := u.Inverse(a)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("N=%d nbf=%d: banked inverse differs at %d", n, nbf, i)
				}
			}
			if u.BankConflicts != 0 {
				t.Errorf("N=%d nbf=%d: %d conflicts in inverse dataflow", n, nbf, u.BankConflicts)
			}
			if want := CGCycles(n, nbf); u.Cycles != want {
				t.Errorf("N=%d nbf=%d: inverse took %d cycles, want %d", n, nbf, u.Cycles, want)
			}
		}
	}
}

// TestBankedRoundTrip: forward then inverse through the hardware model
// recovers the input.
func TestBankedRoundTrip(t *testing.T) {
	tb := MustTable(1024, mod.ChamP)
	u, _ := NewBankedUnit(tb, 4)
	rng := rand.New(rand.NewSource(13))
	a := randomPoly(rng, 1024, tb.M.Q)
	back := u.Inverse(u.Forward(a))
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}
