package ntt

// Lazy-reduction forward transform: butterflies keep values in [0, 4q)
// and only reduce when they would overflow, the standard Harvey
// optimization. On CHAM's ≤39-bit moduli the headroom to 2^64 allows the
// full transform with one conditional correction per butterfly input —
// this is the software trick that narrows the gap to the calibrated CPU
// model (and mirrors the lazy pipelines real HE libraries use).

// ForwardLazy computes the same transform as Forward with lazy reductions.
// Output is fully reduced.
func (t *Table) ForwardLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	twoQ := 2 * q
	span := t.N
	for blocks := 1; blocks < t.N; blocks <<= 1 {
		span >>= 1
		for i := 0; i < blocks; i++ {
			w := t.rootsFwd[blocks+i]
			wp := t.rootsFwdShoup[blocks+i]
			base := 2 * i * span
			for j := base; j < base+span; j++ {
				// Keep u in [0, 2q): reduce only when it reaches 4q-range.
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				// MulShoupLazy accepts any uint64 and returns [0, 2q).
				v := m.MulShoupLazy(a[j+span], w, wp)
				a[j] = u + v             // < 4q
				a[j+span] = u + twoQ - v // < 4q
			}
		}
	}
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}
