package ntt

// Lazy-reduction forward transform: butterflies keep values in [0, 4q)
// and only reduce when they would overflow, the standard Harvey
// optimization. On CHAM's ≤39-bit moduli the headroom to 2^64 allows the
// full transform with one conditional correction per butterfly input —
// this is the software trick that narrows the gap to the calibrated CPU
// model (and mirrors the lazy pipelines real HE libraries use).

// ForwardLazy computes the same transform as Forward with lazy reductions.
// Output is fully reduced.
func (t *Table) ForwardLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	twoQ := 2 * q
	span := t.N
	for blocks := 1; blocks < t.N; blocks <<= 1 {
		span >>= 1
		for i := 0; i < blocks; i++ {
			w := t.rootsFwd[blocks+i]
			wp := t.rootsFwdShoup[blocks+i]
			base := 2 * i * span
			for j := base; j < base+span; j++ {
				// Keep u in [0, 2q): reduce only when it reaches 4q-range.
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				// MulShoupLazy accepts any uint64 and returns [0, 2q).
				v := m.MulShoupLazy(a[j+span], w, wp)
				a[j] = u + v             // < 4q
				a[j+span] = u + twoQ - v // < 4q
			}
		}
	}
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}

// InverseLazy computes the same transform as Inverse with lazy reductions:
// butterfly values stay in [0, 2q) and the trailing N^-1 Shoup pass fully
// reduces, so the output is bit-identical to the strict Gentleman-Sande
// schedule while skipping one conditional subtraction per butterfly.
func (t *Table) InverseLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	twoQ := 2 * m.Q
	span := 1
	for blocks := t.N >> 1; blocks >= 1; blocks >>= 1 {
		base := 0
		for i := 0; i < blocks; i++ {
			w := t.rootsInv[blocks+i]
			wp := t.rootsInvShoup[blocks+i]
			for j := base; j < base+span; j++ {
				u, v := a[j], a[j+span] // both < 2q
				s := u + v              // < 4q
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+span] = m.MulShoupLazy(u+twoQ-v, w, wp)
			}
			base += 2 * span
		}
		span <<= 1
	}
	for j := range a {
		a[j] = m.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}
