package ntt

// Lazy-reduction transforms: butterflies keep values in [0, 4q) and only
// reduce when they would overflow, the standard Harvey optimization. On
// CHAM's ≤39-bit moduli the headroom to 2^64 allows the full transform
// with one conditional correction per butterfly input — this is the
// software trick that narrows the gap to the calibrated CPU model (and
// mirrors the lazy pipelines real HE libraries use).
//
// Both directions fold their trailing normalization pass into the final
// butterfly stage: the forward transform's two-step full reduction and the
// inverse transform's N^-1 Shoup multiply happen as the last stage writes
// its outputs, removing one full read-modify-write sweep of the row each
// way. The outputs are bit-identical to the strict schedules — every lazy
// intermediate is congruent to its strict counterpart and the final stage
// emits canonical residues.

import "math/bits"

// ForwardLazy computes the same transform as Forward with lazy reductions.
// Input values may be any representatives below 4q; output is fully
// reduced. This relaxed precondition is what lets digit-decomposition
// sweeps feed their [0, 3q) lazy lifts straight into the transform.
func (t *Table) ForwardLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	t.forwardOne(a)
}

// forwardOne is the single-row lazy forward kernel. Stage invariant: both
// butterfly outputs stay below 4q; each input is conditionally brought
// under 2q before use, so u+v and u+2q-v never overflow (4q < 2^64 for
// q < 2^62).
func (t *Table) forwardOne(a []uint64) {
	m := t.M
	q := m.Q
	twoQ := 2 * q
	n := t.N
	span := n
	for blocks := 1; blocks < n>>1; blocks <<= 1 {
		span >>= 1
		for i := 0; i < blocks; i++ {
			w := t.rootsFwd[blocks+i]
			wp := t.rootsFwdShoup[blocks+i]
			base := 2 * i * span
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span]
			hi = hi[:span:span]
			for j := range lo {
				u := lo[j]
				if u >= twoQ {
					u -= twoQ
				}
				x := hi[j]
				qh, _ := bits.Mul64(x, wp)
				v := x*w - qh*q // MulShoupLazy: < 2q for any x
				lo[j] = u + v
				hi[j] = u + twoQ - v
			}
		}
	}
	// Final stage (span == 1) with the two-step full reduction folded into
	// the butterfly writes.
	half := n >> 1
	for i := 0; i < half; i++ {
		w := t.rootsFwd[half+i]
		wp := t.rootsFwdShoup[half+i]
		j := 2 * i
		u := a[j]
		if u >= twoQ {
			u -= twoQ
		}
		x := a[j+1]
		qh, _ := bits.Mul64(x, wp)
		v := x*w - qh*q
		r0 := u + v
		r1 := u + twoQ - v
		if r0 >= twoQ {
			r0 -= twoQ
		}
		if r0 >= q {
			r0 -= q
		}
		if r1 >= twoQ {
			r1 -= twoQ
		}
		if r1 >= q {
			r1 -= q
		}
		a[j] = r0
		a[j+1] = r1
	}
}

// InverseLazy computes the same transform as Inverse with lazy reductions:
// butterfly values stay in [0, 2q) and the N^-1 normalization rides the
// final stage's Shoup multiplies, so the output is bit-identical to the
// strict Gentleman-Sande schedule while skipping one conditional
// subtraction per butterfly and the whole trailing scaling pass.
// Input values must be below 2q.
func (t *Table) InverseLazy(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	t.inverseOne(a)
}

// inverseOne is the single-row lazy inverse kernel.
func (t *Table) inverseOne(a []uint64) {
	m := t.M
	q := m.Q
	twoQ := 2 * q
	n := t.N
	span := 1
	for blocks := n >> 1; blocks > 1; blocks >>= 1 {
		base := 0
		for i := 0; i < blocks; i++ {
			w := t.rootsInv[blocks+i]
			wp := t.rootsInvShoup[blocks+i]
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span]
			hi = hi[:span:span]
			for j := range lo {
				u, v := lo[j], hi[j] // both < 2q
				s := u + v           // < 4q
				if s >= twoQ {
					s -= twoQ
				}
				lo[j] = s
				d := u + twoQ - v
				qh, _ := bits.Mul64(d, wp)
				hi[j] = d*w - qh*q
			}
			base += 2 * span
		}
		span <<= 1
	}
	// Final stage (blocks == 1): each output gets exactly one more Shoup
	// multiply, so N^-1 folds into it — u+v by nInv, u-v by w·nInv — with
	// the strict MulShoup restoring canonical form.
	half := n >> 1
	wn, wnp := t.nInvRoot, t.nInvRootShoup
	nv, nvp := t.nInv, t.nInvShoup
	lo := a[:half:half]
	hi := a[half:]
	hi = hi[:half:half]
	for j := range lo {
		u, v := lo[j], hi[j]
		s := u + v
		qh, _ := bits.Mul64(s, nvp)
		r := s*nv - qh*q
		if r >= q {
			r -= q
		}
		lo[j] = r
		d := u + twoQ - v
		qh, _ = bits.Mul64(d, wnp)
		r = d*wn - qh*q
		if r >= q {
			r -= q
		}
		hi[j] = r
	}
}
