package ntt

// Constant-geometry (Pease) NTT, CHAM Alg. 4. Every stage applies the same
// wiring: butterfly j reads positions (j, j+N/2) of the source buffer and
// writes positions (2j, 2j+1) of the destination buffer, so the datapath
// between RAM banks and butterfly units is stage-invariant — the property
// that lets CHAM avoid HEAX's LUT-based multiplexer trees.
//
// The stage-s twiddle for butterfly j is
//
//	rootsFwd[2^s + (j mod 2^s)]
//
// Derivation: each CG stage writes butterfly j's outputs to (2j, 2j+1), a
// perfect shuffle, so at the start of stage s the buffer holds the standard
// algorithm's array with index bits rotated right by s. Rotating the CG
// read addresses (j, j+N/2) back shows the standard block index — which
// selects the twiddle — equals the LOW s bits of j. Consequently stage s
// cycles through its 2^s distinct factors with period 2^s: in any clock
// cycle the n_bf BFUs consume n_bf DIFFERENT factors (one "column" of the
// paper's Fig. 4), and BFU b only ever needs the factors with index ≡ b
// (mod n_bf) — hence one private ROM bank per BFU.

// CGTwiddleIndex returns the index into the unified root table used by
// stage s, butterfly j (Alg. 4's ω[i·N/2+j] fetch).
func (t *Table) CGTwiddleIndex(s, j int) int {
	return 1<<s + j&(1<<s-1)
}

// pingPong returns two work buffers (a, b) such that running `stages`
// alternating passes a→b, b→a, ... leaves the final result in the buffer
// that is dst, avoiding a trailing copy. src is only read. The second
// buffer comes from the table's scratch pool; the caller must release it
// via putScratch(sp) once the passes are done.
func (t *Table) pingPong(dst, src []uint64, stages int) (a, b []uint64, sp *[]uint64) {
	sp = t.getScratch()
	if stages%2 == 1 {
		copy(*sp, src)
		return *sp, dst, sp
	}
	copy(dst, src)
	return dst, *sp, sp
}

// ForwardCG computes the negacyclic NTT of src into dst (natural order in,
// bit-reversed out) with the constant-geometry dataflow. dst and src must
// both have length N; they may alias each other exactly or not at all.
func (t *Table) ForwardCG(dst, src []uint64) {
	if len(dst) != t.N || len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	cur, next, sp := t.pingPong(dst, src, t.LogN)
	for s := 0; s < t.LogN; s++ {
		mask := 1<<s - 1
		// Two butterflies per iteration: independent dependency chains keep
		// both 64×64 Shoup products in flight, and the four outputs land in
		// one contiguous run of next — the perfect-shuffle write pattern.
		for j := 0; j+1 < half; j += 2 {
			k0 := 1<<s + j&mask
			k1 := 1<<s + (j+1)&mask
			u0, u1 := cur[j], cur[j+1]
			v0 := m.MulShoup(cur[j+half], t.rootsFwd[k0], t.rootsFwdShoup[k0])
			v1 := m.MulShoup(cur[j+half+1], t.rootsFwd[k1], t.rootsFwdShoup[k1])
			s0 := u0 + v0
			if s0 >= q {
				s0 -= q
			}
			d0 := u0 - v0
			if u0 < v0 {
				d0 += q
			}
			s1 := u1 + v1
			if s1 >= q {
				s1 -= q
			}
			d1 := u1 - v1
			if u1 < v1 {
				d1 += q
			}
			o := next[2*j : 2*j+4 : 2*j+4]
			o[0], o[1], o[2], o[3] = s0, d0, s1, d1
		}
		if half == 1 { // N == 2: a single butterfly per stage
			u := cur[0]
			v := m.MulShoup(cur[1], t.rootsFwd[1], t.rootsFwdShoup[1])
			sum := u + v
			if sum >= q {
				sum -= q
			}
			diff := u - v
			if u < v {
				diff += q
			}
			next[0], next[1] = sum, diff
		}
		cur, next = next, cur
	}
	t.putScratch(sp)
}

// InverseCG computes the inverse negacyclic NTT of src into dst
// (bit-reversed in, natural order out) by reversing the constant-geometry
// dataflow: stage s gathers pairs (2j, 2j+1) and scatters to (j, j+N/2),
// with the inverse twiddles and a final N^-1 scaling.
func (t *Table) InverseCG(dst, src []uint64) {
	if len(dst) != t.N || len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	cur, next, sp := t.pingPong(dst, src, t.LogN)
	for s := t.LogN - 1; s >= 0; s-- {
		mask := 1<<s - 1
		for j := 0; j+1 < half; j += 2 {
			k0 := 1<<s + j&mask
			k1 := 1<<s + (j+1)&mask
			in := cur[2*j : 2*j+4 : 2*j+4]
			x0, y0, x1, y1 := in[0], in[1], in[2], in[3]
			s0 := x0 + y0
			if s0 >= q {
				s0 -= q
			}
			d0 := x0 - y0
			if x0 < y0 {
				d0 += q
			}
			s1 := x1 + y1
			if s1 >= q {
				s1 -= q
			}
			d1 := x1 - y1
			if x1 < y1 {
				d1 += q
			}
			next[j], next[j+1] = s0, s1
			next[j+half] = m.MulShoup(d0, t.rootsInv[k0], t.rootsInvShoup[k0])
			next[j+half+1] = m.MulShoup(d1, t.rootsInv[k1], t.rootsInvShoup[k1])
		}
		if half == 1 { // N == 2
			x, y := cur[0], cur[1]
			sum := x + y
			if sum >= q {
				sum -= q
			}
			diff := x - y
			if x < y {
				diff += q
			}
			next[0] = sum
			next[1] = m.MulShoup(diff, t.rootsInv[1], t.rootsInvShoup[1])
		}
		cur, next = next, cur
	}
	t.putScratch(sp)
	for j := range dst {
		dst[j] = m.MulShoup(dst[j], t.nInv, t.nInvShoup)
	}
}

// CGCycles returns the clock-cycle latency of one constant-geometry NTT with
// nbf butterfly units: (N/2 · log2 N)/n_bf (paper §IV.A.1). For CHAM's
// N=4096, n_bf=4 this is 6144.
func CGCycles(n, nbf int) int {
	logN := 0
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	return n / 2 * logN / nbf
}
