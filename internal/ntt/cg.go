package ntt

// Constant-geometry (Pease) NTT, CHAM Alg. 4. Every stage applies the same
// wiring: butterfly j reads positions (j, j+N/2) of the source buffer and
// writes positions (2j, 2j+1) of the destination buffer, so the datapath
// between RAM banks and butterfly units is stage-invariant — the property
// that lets CHAM avoid HEAX's LUT-based multiplexer trees.
//
// The stage-s twiddle for butterfly j is
//
//	rootsFwd[2^s + (j mod 2^s)]
//
// Derivation: each CG stage writes butterfly j's outputs to (2j, 2j+1), a
// perfect shuffle, so at the start of stage s the buffer holds the standard
// algorithm's array with index bits rotated right by s. Rotating the CG
// read addresses (j, j+N/2) back shows the standard block index — which
// selects the twiddle — equals the LOW s bits of j. Consequently stage s
// cycles through its 2^s distinct factors with period 2^s: in any clock
// cycle the n_bf BFUs consume n_bf DIFFERENT factors (one "column" of the
// paper's Fig. 4), and BFU b only ever needs the factors with index ≡ b
// (mod n_bf) — hence one private ROM bank per BFU.

// CGTwiddleIndex returns the index into the unified root table used by
// stage s, butterfly j (Alg. 4's ω[i·N/2+j] fetch).
func (t *Table) CGTwiddleIndex(s, j int) int {
	return 1<<s + j&(1<<s-1)
}

// pingPong returns two work buffers (a, b) such that running `stages`
// alternating passes a→b, b→a, ... leaves the final result in the buffer
// that is dst, avoiding a trailing copy. src is only read. The second
// buffer comes from the table's scratch pool; the caller must release it
// via putScratch(sp) once the passes are done.
func (t *Table) pingPong(dst, src []uint64, stages int) (a, b []uint64, sp *[]uint64) {
	sp = t.getScratch()
	if stages%2 == 1 {
		copy(*sp, src)
		return *sp, dst, sp
	}
	copy(dst, src)
	return dst, *sp, sp
}

// ForwardCG computes the negacyclic NTT of src into dst (natural order in,
// bit-reversed out) with the constant-geometry dataflow. dst and src must
// both have length N; they may alias each other exactly or not at all.
func (t *Table) ForwardCG(dst, src []uint64) {
	if len(dst) != t.N || len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	cur, next, sp := t.pingPong(dst, src, t.LogN)
	for s := 0; s < t.LogN; s++ {
		for j := 0; j < half; j++ {
			k := t.CGTwiddleIndex(s, j)
			u := cur[j]
			v := m.MulShoup(cur[j+half], t.rootsFwd[k], t.rootsFwdShoup[k])
			sum := u + v
			if sum >= q {
				sum -= q
			}
			diff := u - v
			if u < v {
				diff += q
			}
			next[2*j], next[2*j+1] = sum, diff
		}
		cur, next = next, cur
	}
	t.putScratch(sp)
}

// InverseCG computes the inverse negacyclic NTT of src into dst
// (bit-reversed in, natural order out) by reversing the constant-geometry
// dataflow: stage s gathers pairs (2j, 2j+1) and scatters to (j, j+N/2),
// with the inverse twiddles and a final N^-1 scaling.
func (t *Table) InverseCG(dst, src []uint64) {
	if len(dst) != t.N || len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	cur, next, sp := t.pingPong(dst, src, t.LogN)
	for s := t.LogN - 1; s >= 0; s-- {
		for j := 0; j < half; j++ {
			k := t.CGTwiddleIndex(s, j)
			x, y := cur[2*j], cur[2*j+1]
			sum := x + y
			if sum >= q {
				sum -= q
			}
			diff := x - y
			if x < y {
				diff += q
			}
			next[j] = sum
			next[j+half] = m.MulShoup(diff, t.rootsInv[k], t.rootsInvShoup[k])
		}
		cur, next = next, cur
	}
	t.putScratch(sp)
	for j := range dst {
		dst[j] = m.MulShoup(dst[j], t.nInv, t.nInvShoup)
	}
}

// CGCycles returns the clock-cycle latency of one constant-geometry NTT with
// nbf butterfly units: (N/2 · log2 N)/n_bf (paper §IV.A.1). For CHAM's
// N=4096, n_bf=4 this is 6144.
func CGCycles(n, nbf int) int {
	logN := 0
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	return n / 2 * logN / nbf
}
