package ntt

// Forward computes the in-place negacyclic NTT of a (natural coefficient
// order in, bit-reversed evaluation order out) with the standard iterative
// Cooley-Tukey decimation-in-time schedule. This is the software baseline
// the paper's CPU numbers correspond to.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	span := t.N
	for blocks := 1; blocks < t.N; blocks <<= 1 {
		span >>= 1
		for i := 0; i < blocks; i++ {
			w := t.rootsFwd[blocks+i]
			wp := t.rootsFwdShoup[blocks+i]
			base := 2 * i * span
			// Full-length subslices let the compiler drop the per-butterfly
			// bounds checks on both halves of the block.
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span]
			hi = hi[:span:span]
			for j := range lo {
				u := lo[j]
				v := m.MulShoup(hi[j], w, wp)
				s := u + v
				if s >= q {
					s -= q
				}
				d := u - v
				if u < v {
					d += q
				}
				lo[j], hi[j] = s, d
			}
		}
	}
}

// Inverse computes the in-place inverse negacyclic NTT (bit-reversed in,
// natural order out) with the Gentleman-Sande schedule, including the final
// N^-1 scaling.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	span := 1
	for blocks := t.N >> 1; blocks >= 1; blocks >>= 1 {
		base := 0
		for i := 0; i < blocks; i++ {
			w := t.rootsInv[blocks+i]
			wp := t.rootsInvShoup[blocks+i]
			lo := a[base : base+span : base+span]
			hi := a[base+span : base+2*span]
			hi = hi[:span:span]
			for j := range lo {
				u, v := lo[j], hi[j]
				s := u + v
				if s >= q {
					s -= q
				}
				d := u - v
				if u < v {
					d += q
				}
				lo[j] = s
				hi[j] = m.MulShoup(d, w, wp)
			}
			base += 2 * span
		}
		span <<= 1
	}
	for j := range a {
		a[j] = m.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}
