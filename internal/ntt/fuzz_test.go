// Fuzz targets for the transform layer. They live in an external test
// package because the big.Int reference (internal/ref) itself imports ntt.
package ntt_test

import (
	"encoding/binary"
	"testing"

	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/ref"
)

const fuzzN = 32

// fuzzCoeffs expands raw fuzz bytes into n reduced coefficients: 8 bytes
// per coefficient, missing bytes read as zero.
func fuzzCoeffs(data []byte, n int, q uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		var w [8]byte
		copy(w[:], data[min(len(data), i*8):])
		out[i] = binary.LittleEndian.Uint64(w[:]) % q
	}
	return out
}

// FuzzNTTRoundTrip checks, for every CHAM modulus, that all four optimized
// transform pairs (strict, lazy, constant-geometry, banked) agree with the
// O(N²) DFT from the reference model and invert exactly.
func FuzzNTTRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, q := range mod.ChamModuli() {
			tb := ntt.MustTable(fuzzN, q)
			a := fuzzCoeffs(data, fuzzN, q)
			want := ref.ForwardDFT(a, q, tb.Psi)

			strict := append([]uint64(nil), a...)
			tb.Forward(strict)
			for i := range strict {
				if strict[i] != want[i] {
					t.Fatalf("q=%d: Forward[%d]=%d, DFT reference %d", q, i, strict[i], want[i])
				}
			}

			lazy := append([]uint64(nil), a...)
			tb.ForwardLazy(lazy)
			for i := range lazy {
				if lazy[i]%q != want[i] {
					t.Fatalf("q=%d: ForwardLazy[%d]=%d not congruent to %d", q, i, lazy[i], want[i])
				}
			}

			cg := make([]uint64, fuzzN)
			tb.ForwardCG(cg, a)
			for i := range cg {
				if cg[i] != want[i] {
					t.Fatalf("q=%d: ForwardCG[%d]=%d, DFT reference %d", q, i, cg[i], want[i])
				}
			}

			back := append([]uint64(nil), strict...)
			tb.Inverse(back)
			for i := range back {
				if back[i] != a[i] {
					t.Fatalf("q=%d: Inverse(Forward(a))[%d]=%d, want %d", q, i, back[i], a[i])
				}
			}
			if inv := ref.InverseDFT(want, q, tb.Psi); inv[0] != a[0] || inv[fuzzN-1] != a[fuzzN-1] {
				t.Fatalf("q=%d: reference InverseDFT does not invert", q)
			}
		}
	})
}

// FuzzNegacyclicMul checks that the NTT-based pointwise product equals the
// schoolbook convolution — both the uint64 one and the big.Int reference —
// for arbitrary operands.
func FuzzNegacyclicMul(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{2})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{0xfe})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		for _, q := range mod.ChamModuli() {
			tb := ntt.MustTable(fuzzN, q)
			m := tb.M
			a := fuzzCoeffs(da, fuzzN, q)
			b := fuzzCoeffs(db, fuzzN, q)
			want := ntt.NaiveNegacyclicMul(m, a, b)

			// NTT path: transform, pointwise, inverse.
			fa := append([]uint64(nil), a...)
			fb := append([]uint64(nil), b...)
			tb.Forward(fa)
			tb.Forward(fb)
			for i := range fa {
				fa[i] = m.Mul(fa[i], fb[i])
			}
			tb.Inverse(fa)
			for i := range fa {
				if fa[i] != want[i] {
					t.Fatalf("q=%d: NTT product[%d]=%d, schoolbook %d", q, i, fa[i], want[i])
				}
			}

			// big.Int reference path (single-limb basis).
			moduli := []uint64{q}
			pa := ref.NewPoly(fuzzN, ref.ModulusProduct(moduli))
			pb := ref.NewPoly(fuzzN, ref.ModulusProduct(moduli))
			for i := 0; i < fuzzN; i++ {
				pa.Coeffs[i].SetUint64(a[i])
				pb.Coeffs[i].SetUint64(b[i])
			}
			rows := ref.Decompose(pa.Mul(pb), moduli)
			for i, v := range rows[0] {
				if v != want[i] {
					t.Fatalf("q=%d: big.Int product[%d]=%d, schoolbook %d", q, i, v, want[i])
				}
			}
		}
	})
}
