package ntt

import "cham/internal/mod"

// This file holds O(N²) reference implementations used as ground truth in
// tests. They are deliberately simple and are not exported for production
// use.

// naiveForward evaluates a at ψ^(2k+1) for k = 0..N-1 and returns the
// results in natural k order (NOT bit-reversed).
func (t *Table) naiveForward(a []uint64) []uint64 {
	m := t.M
	out := make([]uint64, t.N)
	for k := 0; k < t.N; k++ {
		x := m.Pow(t.Psi, uint64(2*k+1)) // evaluation point
		var acc, pw uint64 = 0, 1
		for n := 0; n < t.N; n++ {
			acc = m.Add(acc, m.Mul(a[n], pw))
			pw = m.Mul(pw, x)
		}
		out[k] = acc
	}
	return out
}

// NaiveNegacyclicMul returns a·b mod (X^N+1, q) by schoolbook convolution.
func NaiveNegacyclicMul(m mod.Modulus, a, b []uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				out[k] = m.Add(out[k], p)
			} else {
				out[k-n] = m.Sub(out[k-n], p)
			}
		}
	}
	return out
}
