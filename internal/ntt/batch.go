package ntt

// Limb-batched transforms: ForwardBatch and InverseBatch sweep several
// rows that share one twiddle table through each butterfly pass together,
// the software analogue of the multi-lane butterfly arrays in Hermes-style
// hybrid-dataflow NTT engines. Batching pays twice on a scalar core:
//
//   - every twiddle (and its Shoup companion) is loaded once per butterfly
//     position instead of once per row, which matters most in the late
//     forward / early inverse stages where spans are short and twiddle
//     traffic dominates, and
//   - the two rows' butterflies form independent dependency chains, so the
//     64×64→128 multiplies of one row hide under the other's latency.
//
// The key-switch hot path always has natural pairs sharing a table: the
// two RNS digits of one decomposition at each limb, and the c0/c1
// accumulator rows at each limb. Rows are processed two at a time; an odd
// remainder falls back to the single-row kernel. Results are bit-identical
// to ForwardLazy/InverseLazy row by row (same lazy schedule, same fused
// canonical final stage).

import "math/bits"

// ForwardBatch forward-transforms every row in place. Each row must have
// length N and may hold any representatives below 4q; outputs are fully
// reduced. Rows are paired per butterfly pass to amortize twiddle loads.
func (t *Table) ForwardBatch(rows ...[]uint64) {
	for _, a := range rows {
		if len(a) != t.N {
			panic("ntt: length mismatch")
		}
	}
	i := 0
	for ; i+1 < len(rows); i += 2 {
		t.forwardPair(rows[i], rows[i+1])
	}
	if i < len(rows) {
		t.forwardOne(rows[i])
	}
}

// InverseBatch inverse-transforms every row in place, including the N^-1
// normalization. Each row must have length N and hold values below 2q;
// outputs are fully reduced.
func (t *Table) InverseBatch(rows ...[]uint64) {
	for _, a := range rows {
		if len(a) != t.N {
			panic("ntt: length mismatch")
		}
	}
	i := 0
	for ; i+1 < len(rows); i += 2 {
		t.inversePair(rows[i], rows[i+1])
	}
	if i < len(rows) {
		t.inverseOne(rows[i])
	}
}

// forwardPair runs the lazy forward schedule of forwardOne on two rows
// under one twiddle sweep.
func (t *Table) forwardPair(a, b []uint64) {
	m := t.M
	q := m.Q
	twoQ := 2 * q
	n := t.N
	span := n
	for blocks := 1; blocks < n>>1; blocks <<= 1 {
		span >>= 1
		for i := 0; i < blocks; i++ {
			w := t.rootsFwd[blocks+i]
			wp := t.rootsFwdShoup[blocks+i]
			base := 2 * i * span
			alo := a[base : base+span : base+span]
			ahi := a[base+span : base+2*span]
			ahi = ahi[:span:span]
			blo := b[base : base+span : base+span]
			bhi := b[base+span : base+2*span]
			bhi = bhi[:span:span]
			for j := range alo {
				u0 := alo[j]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				x0 := ahi[j]
				qh0, _ := bits.Mul64(x0, wp)
				v0 := x0*w - qh0*q
				u1 := blo[j]
				if u1 >= twoQ {
					u1 -= twoQ
				}
				x1 := bhi[j]
				qh1, _ := bits.Mul64(x1, wp)
				v1 := x1*w - qh1*q
				alo[j] = u0 + v0
				ahi[j] = u0 + twoQ - v0
				blo[j] = u1 + v1
				bhi[j] = u1 + twoQ - v1
			}
		}
	}
	// Final stage (span == 1), full reduction fused.
	half := n >> 1
	for i := 0; i < half; i++ {
		w := t.rootsFwd[half+i]
		wp := t.rootsFwdShoup[half+i]
		j := 2 * i
		u0 := a[j]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		x0 := a[j+1]
		qh0, _ := bits.Mul64(x0, wp)
		v0 := x0*w - qh0*q
		u1 := b[j]
		if u1 >= twoQ {
			u1 -= twoQ
		}
		x1 := b[j+1]
		qh1, _ := bits.Mul64(x1, wp)
		v1 := x1*w - qh1*q
		r0 := u0 + v0
		r1 := u0 + twoQ - v0
		r2 := u1 + v1
		r3 := u1 + twoQ - v1
		if r0 >= twoQ {
			r0 -= twoQ
		}
		if r0 >= q {
			r0 -= q
		}
		if r1 >= twoQ {
			r1 -= twoQ
		}
		if r1 >= q {
			r1 -= q
		}
		if r2 >= twoQ {
			r2 -= twoQ
		}
		if r2 >= q {
			r2 -= q
		}
		if r3 >= twoQ {
			r3 -= twoQ
		}
		if r3 >= q {
			r3 -= q
		}
		a[j], a[j+1] = r0, r1
		b[j], b[j+1] = r2, r3
	}
}

// inversePair runs the lazy inverse schedule of inverseOne on two rows
// under one twiddle sweep, N^-1 fused into the final stage.
func (t *Table) inversePair(a, b []uint64) {
	m := t.M
	q := m.Q
	twoQ := 2 * q
	n := t.N
	span := 1
	for blocks := n >> 1; blocks > 1; blocks >>= 1 {
		base := 0
		for i := 0; i < blocks; i++ {
			w := t.rootsInv[blocks+i]
			wp := t.rootsInvShoup[blocks+i]
			alo := a[base : base+span : base+span]
			ahi := a[base+span : base+2*span]
			ahi = ahi[:span:span]
			blo := b[base : base+span : base+span]
			bhi := b[base+span : base+2*span]
			bhi = bhi[:span:span]
			for j := range alo {
				u0, v0 := alo[j], ahi[j]
				s0 := u0 + v0
				if s0 >= twoQ {
					s0 -= twoQ
				}
				d0 := u0 + twoQ - v0
				qh0, _ := bits.Mul64(d0, wp)
				u1, v1 := blo[j], bhi[j]
				s1 := u1 + v1
				if s1 >= twoQ {
					s1 -= twoQ
				}
				d1 := u1 + twoQ - v1
				qh1, _ := bits.Mul64(d1, wp)
				alo[j] = s0
				ahi[j] = d0*w - qh0*q
				blo[j] = s1
				bhi[j] = d1*w - qh1*q
			}
			base += 2 * span
		}
		span <<= 1
	}
	// Final stage with N^-1 folded into the last Shoup multiplies.
	half := n >> 1
	wn, wnp := t.nInvRoot, t.nInvRootShoup
	nv, nvp := t.nInv, t.nInvShoup
	alo := a[:half:half]
	ahi := a[half:]
	ahi = ahi[:half:half]
	blo := b[:half:half]
	bhi := b[half:]
	bhi = bhi[:half:half]
	for j := range alo {
		u0, v0 := alo[j], ahi[j]
		s0 := u0 + v0
		qh, _ := bits.Mul64(s0, nvp)
		r := s0*nv - qh*q
		if r >= q {
			r -= q
		}
		alo[j] = r
		d0 := u0 + twoQ - v0
		qh, _ = bits.Mul64(d0, wnp)
		r = d0*wn - qh*q
		if r >= q {
			r -= q
		}
		ahi[j] = r
		u1, v1 := blo[j], bhi[j]
		s1 := u1 + v1
		qh, _ = bits.Mul64(s1, nvp)
		r = s1*nv - qh*q
		if r >= q {
			r -= q
		}
		blo[j] = r
		d1 := u1 + twoQ - v1
		qh, _ = bits.Mul64(d1, wnp)
		r = d1*wn - qh*q
		if r >= q {
			r -= q
		}
		bhi[j] = r
	}
}
