package ntt

import "fmt"

// BankedUnit is a cycle-level model of the CHAM NTT functional unit
// (paper Fig. 3): n_bf butterfly units fed from 2·n_bf single-read
// single-write RAM banks in a ping-pong arrangement, with the up-and-down
// read order, ascending write order, SWAP reordering and one twiddle ROM
// bank per BFU (Fig. 4).
//
// Running a transform through the model produces bit-identical results to
// Table.Forward/Inverse while additionally checking, every cycle, that no
// RAM bank is read or written more than once — the structural property the
// constant-geometry dataflow guarantees and the reason the design needs no
// multiplexer trees. It also reports the exact cycle count, which feeds the
// pipeline simulator and Table III.
type BankedUnit struct {
	T   *Table
	NBF int // number of butterfly units (the paper's n_bf; CHAM uses 4)

	// roms[b] is the twiddle ROM of BFU b: the factors it consumes in
	// issue order across all stages (Fig. 4 column layout), with Shoup
	// companion words alongside as a real implementation would store them.
	roms     [][]uint64
	romShoup [][]uint64

	// Stats from the last transform.
	Cycles        int
	BankConflicts int
	ROMDepth      int

	seen []bool // scratch for per-cycle bank-conflict checking

	// Ping-pong RAM model, allocated once: transforms alternate between
	// the two banks and return whichever holds the final stage, so the
	// returned slice is owned by the unit and valid until the next
	// transform. These mirror the table-owned scratch of the software CG
	// path — the real datapath has exactly two RAM halves, not a fresh
	// buffer per job.
	bufA, bufB []uint64
}

// NewBankedUnit models an NTT unit with nbf butterfly units. nbf must be a
// power of two in [1, N/4]: one up-and-down read pair covers 2·n_bf
// butterflies, which must fit within a half of the polynomial.
func NewBankedUnit(t *Table, nbf int) (*BankedUnit, error) {
	if nbf < 1 || nbf&(nbf-1) != 0 || 4*nbf > t.N {
		return nil, fmt.Errorf("ntt: invalid n_bf=%d for N=%d (need power of two ≤ N/4)", nbf, t.N)
	}
	u := &BankedUnit{T: t, NBF: nbf}
	u.buildROMs()
	u.bufA = make([]uint64, t.N)
	u.bufB = make([]uint64, t.N)
	return u, nil
}

// buildROMs distributes twiddle factors to per-BFU ROM banks: in every
// issue cycle of stage s, BFU b processes butterfly j = cycle·n_bf + b and
// reads the next word of its own ROM — no shared ROM ports needed.
func (u *BankedUnit) buildROMs() {
	t := u.T
	u.roms = make([][]uint64, u.NBF)
	u.romShoup = make([][]uint64, u.NBF)
	for s := 0; s < t.LogN; s++ {
		for j := 0; j < t.N/2; j++ {
			b := j % u.NBF
			k := t.CGTwiddleIndex(s, j)
			u.roms[b] = append(u.roms[b], t.rootsFwd[k])
			u.romShoup[b] = append(u.romShoup[b], t.rootsFwdShoup[k])
		}
	}
	u.ROMDepth = len(u.roms[0])
	for _, r := range u.roms {
		if len(r) != u.ROMDepth {
			panic("ntt: uneven ROM fill")
		}
	}
}

// bankOf maps a coefficient index to its RAM bank under the round-robin
// striping of §IV.A.1: consecutive coefficients live in consecutive banks,
// so a group of 2·n_bf consecutive indices occupies every bank exactly once.
func (u *BankedUnit) bankOf(idx int) int { return idx % (2 * u.NBF) }

// Forward runs the forward transform through the banked model. It returns
// the result (bit-reversed order) and records Cycles and BankConflicts.
// The returned slice is one of the unit's two ping-pong RAM banks and is
// valid until the next transform on this unit.
func (u *BankedUnit) Forward(src []uint64) []uint64 {
	t := u.T
	if len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	lanes := 2 * u.NBF // coefficients read (and written) per cycle

	cur, next := u.bufA, u.bufB
	copy(cur, src)

	u.Cycles = 0
	u.BankConflicts = 0
	romPos := make([]int, u.NBF) // per-BFU ROM read pointer

	for s := 0; s < t.LogN; s++ {
		// Up-and-down read order: alternate a low group [g·L, g·L+L) with
		// the matching high group [half+g·L, half+g·L+L). Each pair of read
		// cycles supplies inputs for 2·n_bf butterflies, which the n_bf
		// BFUs retire over those same two cycles — net n_bf butterflies per
		// cycle, (N/2·logN)/n_bf cycles total.
		for g := 0; g < half/lanes; g++ {
			lowBase := g * lanes
			u.checkCycle(lowBase, lanes)      // read cycle A: banks of the low group
			u.checkCycle(half+lowBase, lanes) // read cycle B: banks of the high group
			u.Cycles += 2                     // two read cycles issued
			// The SWAP network pairs low[i] with high[i]; butterflies
			// j = lowBase..lowBase+lanes-1 execute, each BFU b handling the
			// js with j ≡ b (mod n_bf) and popping its own twiddle ROM.
			for j := lowBase; j < lowBase+lanes; j++ {
				b := j % u.NBF
				w, wp := u.roms[b][romPos[b]], u.romShoup[b][romPos[b]]
				romPos[b]++
				wv := m.MulShoup(cur[j+half], w, wp)
				sum := cur[j] + wv
				if sum >= q {
					sum -= q
				}
				diff := cur[j] - wv
				if cur[j] < wv {
					diff += q
				}
				next[2*j], next[2*j+1] = sum, diff
			}
			// Write side: outputs [2·lowBase, 2·lowBase+2·lanes) stream out
			// in ascending order over the same two cycles.
			u.checkCycle(2*lowBase, lanes)
			u.checkCycle(2*lowBase+lanes, lanes)
		}
		cur, next = next, cur
	}
	return cur
}

// checkCycle verifies that the `count` consecutive coefficient indices
// starting at base touch each RAM bank at most once in a single cycle.
func (u *BankedUnit) checkCycle(base, count int) {
	if len(u.seen) != 2*u.NBF {
		u.seen = make([]bool, 2*u.NBF)
	}
	for i := range u.seen {
		u.seen[i] = false
	}
	for i := 0; i < count; i++ {
		b := u.bankOf(base + i)
		if u.seen[b] {
			u.BankConflicts++
		}
		u.seen[b] = true
	}
}

// VerifyROMs checks that the per-BFU ROM streams contain exactly the
// twiddles each BFU consumes in execution order, and that the total ROM
// footprint matches the paper's claim (§IV.A.2: N factors per polynomial
// size, i.e. N-1 distinct values plus the unused slot 0).
func (u *BankedUnit) VerifyROMs() error {
	t := u.T
	pos := make([]int, u.NBF)
	for s := 0; s < t.LogN; s++ {
		for j := 0; j < t.N/2; j++ {
			b := j % u.NBF
			want := t.rootsFwd[t.CGTwiddleIndex(s, j)]
			if u.roms[b][pos[b]] != want {
				return fmt.Errorf("ntt: ROM mismatch at stage %d butterfly %d (BFU %d)", s, j, b)
			}
			pos[b]++
		}
	}
	total := 0
	for _, r := range u.roms {
		total += len(r)
	}
	if total != t.N/2*t.LogN {
		return fmt.Errorf("ntt: ROM total %d, want %d", total, t.N/2*t.LogN)
	}
	return nil
}

// Inverse runs the inverse transform through the banked model: the
// mirrored constant-geometry dataflow (gather pairs (2j, 2j+1), scatter to
// (j, j+N/2)) with the same bank striping, cycle count and per-BFU
// inverse-twiddle ROMs. Results are bit-identical to Table.Inverse.
// As with Forward, the returned slice is owned by the unit and valid until
// the next transform.
func (u *BankedUnit) Inverse(src []uint64) []uint64 {
	t := u.T
	if len(src) != t.N {
		panic("ntt: length mismatch")
	}
	m := t.M
	q := m.Q
	half := t.N / 2
	lanes := 2 * u.NBF

	cur, next := u.bufA, u.bufB
	copy(cur, src)

	u.Cycles = 0
	u.BankConflicts = 0

	for s := t.LogN - 1; s >= 0; s-- {
		for g := 0; g < half/lanes; g++ {
			lowBase := g * lanes
			// Read side: two cycles of consecutive pairs (ascending order),
			// mirroring the forward write pattern.
			u.checkCycle(2*lowBase, lanes)
			u.checkCycle(2*lowBase+lanes, lanes)
			u.Cycles += 2
			for j := lowBase; j < lowBase+lanes; j++ {
				k := t.CGTwiddleIndex(s, j)
				x, y := cur[2*j], cur[2*j+1]
				sum := x + y
				if sum >= q {
					sum -= q
				}
				diff := x - y
				if x < y {
					diff += q
				}
				next[j] = sum
				next[j+half] = m.MulShoup(diff, t.rootsInv[k], t.rootsInvShoup[k])
			}
			// Write side: up-and-down order, mirroring the forward reads.
			u.checkCycle(lowBase, lanes)
			u.checkCycle(half+lowBase, lanes)
		}
		cur, next = next, cur
	}
	for i := range cur {
		cur[i] = m.MulShoup(cur[i], t.nInv, t.nInvShoup)
	}
	return cur
}
