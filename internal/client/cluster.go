package client

// Cluster-tier operations: the coordinator side of the scatter/gather
// protocol speaks these against individual shard nodes. They ride the same
// pooled-connection/retry machinery as the ordinary request surface.

import (
	"fmt"
	"time"

	"cham/internal/obs/trace"
	"cham/internal/rlwe"
	"cham/internal/wire"
)

// TileApply multiplies only the listed row tiles of a registered matrix
// with an encrypted vector, returning the tile-labelled packed
// ciphertexts. Tiles must be strictly ascending.
func (cl *Client) TileApply(id [32]byte, tiles []uint32, vec []*rlwe.Ciphertext) (wire.TileResult, error) {
	return cl.TileApplyTraced(trace.Context{}, id, tiles, vec)
}

// TileApplyTraced is TileApply under a trace context (see ApplyTraced).
func (cl *Client) TileApplyTraced(tc trace.Context, id [32]byte, tiles []uint32, vec []*rlwe.Ciphertext) (wire.TileResult, error) {
	payload := wire.EncodeTileApply(cl.cfg.Params.R, wire.TileApply{
		ID:             id,
		DeadlineMicros: uint64(cl.cfg.RequestTimeout / time.Microsecond),
		Tiles:          tiles,
		Vector:         vec,
	})
	resp, err := cl.doCtx(tc, wire.MsgTileApply, wire.MsgTileResult, payload)
	if err != nil {
		return wire.TileResult{}, err
	}
	res, err := wire.DecodeTileResult(cl.cfg.Params.R, resp)
	if err != nil {
		return wire.TileResult{}, &errTransport{err}
	}
	if len(res.Tiles) != len(tiles) {
		return wire.TileResult{}, &errTransport{fmt.Errorf("tile result holds %d tiles, want %d", len(res.Tiles), len(tiles))}
	}
	for i := range tiles {
		if res.Tiles[i] != tiles[i] {
			return wire.TileResult{}, &errTransport{fmt.Errorf("tile result entry %d is tile %d, want %d", i, res.Tiles[i], tiles[i])}
		}
	}
	return res, nil
}

// WarmTiles asks a node to prepare the listed tiles of a registered matrix
// without computing anything — the coordinator pre-positions tiles on a
// joining node before routing traffic at it.
func (cl *Client) WarmTiles(id [32]byte, tiles []uint32) error {
	payload := wire.EncodeTileApply(cl.cfg.Params.R, wire.TileApply{
		ID:             id,
		DeadlineMicros: uint64(cl.cfg.RequestTimeout / time.Microsecond),
		Warm:           true,
		Tiles:          tiles,
	})
	resp, err := cl.do(wire.MsgTileApply, wire.MsgTileResult, payload)
	if err != nil {
		return err
	}
	res, err := wire.DecodeTileResult(cl.cfg.Params.R, resp)
	if err != nil {
		return &errTransport{err}
	}
	if len(res.Tiles) != 0 {
		return &errTransport{fmt.Errorf("warm-up acknowledgement carries %d tiles", len(res.Tiles))}
	}
	return nil
}

// RegistryPull fetches a node's replicated registry: its installed key
// set and every registered matrix in canonical payload form.
func (cl *Client) RegistryPull() (wire.RegistryState, error) {
	resp, err := cl.do(wire.MsgRegistrySync, wire.MsgRegistryState, wire.RegistrySync{}.Encode())
	if err != nil {
		return wire.RegistryState{}, err
	}
	st, err := wire.DecodeRegistryState(resp)
	if err != nil {
		return wire.RegistryState{}, &errTransport{err}
	}
	return st, nil
}

// RegistryPush installs key material and matrix payloads on a node (the
// warm-up transfer a joining node receives) and returns the node's
// resulting registry header. Both arguments are canonical wire payloads;
// either may be empty.
func (cl *Client) RegistryPush(keys []byte, matrices [][]byte) (wire.RegistryState, error) {
	payload := wire.RegistrySync{Push: true, Keys: keys, Matrices: matrices}.Encode()
	resp, err := cl.do(wire.MsgRegistrySync, wire.MsgRegistryState, payload)
	if err != nil {
		return wire.RegistryState{}, err
	}
	st, err := wire.DecodeRegistryState(resp)
	if err != nil {
		return wire.RegistryState{}, &errTransport{err}
	}
	return st, nil
}
