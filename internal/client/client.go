// Package client is the host-side library for chamserve: a small
// connection pool over the wire protocol with per-request timeouts and
// jittered exponential backoff for transient failures (dial errors,
// broken connections, typed overload/drain rejections). Requests are
// pure compute — applying a registered matrix to a ciphertext has no
// server-side effects — so retrying after a transport error is safe.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/obs"
	"cham/internal/obs/trace"
	"cham/internal/rlwe"
	"cham/internal/wire"
)

// Config shapes a Client. Zero values select sensible defaults.
type Config struct {
	// Addr is the server's TCP address (required).
	Addr string
	// Params must match the server's parameter set (required).
	Params bfv.Params
	// MaxConns bounds pooled idle connections (concurrency is unbounded —
	// extra connections are dialed and discarded). Default 4.
	MaxConns int
	// DialTimeout bounds one dial+handshake. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request round trip and rides along as the
	// Apply deadline hint. Default 30s.
	RequestTimeout time.Duration
	// MaxRetries bounds extra attempts after a retryable failure. Default 3;
	// negative disables retries.
	MaxRetries int
	// Backoff is the first retry delay, growing 2x per attempt with equal
	// jitter, capped at MaxBackoff. Defaults 10ms / 1s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxFrame bounds one accepted response frame. Default wire.DefaultMaxFrame.
	MaxFrame uint32

	// Sleep and Jitter are injection points for tests; defaults are
	// time.Sleep and a seeded math/rand source.
	Sleep  func(time.Duration)
	Jitter func() float64 // uniform in [0,1)
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("client: Config.Addr is required")
	}
	if c.Params.R == nil {
		return c, fmt.Errorf("client: Config.Params is required")
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Jitter == nil {
		c.Jitter = defaultJitter()
	}
	return c, nil
}

// seedEnv mirrors internal/testutil.SeedEnv without importing the testing
// package into production binaries.
const seedEnv = "CHAM_TEST_SEED"

// jitterClients distinguishes the fallback seeds of clients created in the
// same nanosecond.
var jitterClients atomic.Uint64

// defaultJitter builds the default jitter source: a per-client seeded PRNG
// behind a mutex (rand.Rand is not concurrency-safe and do() may run from
// many goroutines). Under CHAM_TEST_SEED every client draws the identical
// sequence, so retry schedules in tests are reproducible; otherwise each
// client gets its own stream rather than a process-shared source, keeping
// concurrent clients' backoff decorrelated.
func defaultJitter() func() float64 {
	var seed int64
	seeded := false
	if v := os.Getenv(seedEnv); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			seed, seeded = s, true
		}
	}
	if !seeded {
		seed = time.Now().UnixNano() ^ int64(jitterClients.Add(1)<<32)
	}
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
}

// poolConn is one handshaken connection; at most one request in flight.
type poolConn struct {
	c      net.Conn
	br     *bufio.Reader
	seq    uint16
	ok     wire.HelloOK
	traced bool // server accepted wire.FrameVersionTraced for this conn
}

// Client talks to one chamserve instance. Safe for concurrent use; each
// in-flight request holds its own connection.
type Client struct {
	cfg Config

	mu     sync.Mutex
	idle   []*poolConn
	closed bool
}

var (
	mDials = obs.GetCounter("cham_client_dials_total",
		"Connections dialed (pool misses).")
	mRetries = obs.GetCounter("cham_client_retries_total",
		"Request attempts beyond the first.")
	mRequests = obs.GetCounter("cham_client_requests_total",
		"Requests issued, including retried attempts.")
)

// Dial creates a client. Connections are established lazily.
func Dial(cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Client{cfg: cfg}, nil
}

// Close releases all pooled connections. In-flight requests fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for _, pc := range cl.idle {
		pc.c.Close()
	}
	cl.idle = nil
	return nil
}

// errTransport wraps connection-level failures so the retry loop can tell
// them apart from typed server rejections.
type errTransport struct{ err error }

func (e *errTransport) Error() string { return "cham client: transport: " + e.err.Error() }
func (e *errTransport) Unwrap() error { return e.err }

// get returns a pooled connection or dials a fresh one (including the
// Hello handshake).
func (cl *Client) get() (*poolConn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("client: closed")
	}
	if n := len(cl.idle); n > 0 {
		pc := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return pc, nil
	}
	cl.mu.Unlock()
	return cl.dial()
}

// put parks a healthy connection for reuse.
func (cl *Client) put(pc *poolConn) {
	cl.mu.Lock()
	if !cl.closed && len(cl.idle) < cl.cfg.MaxConns {
		cl.idle = append(cl.idle, pc)
		cl.mu.Unlock()
		return
	}
	cl.mu.Unlock()
	pc.c.Close()
}

// dial opens and handshakes a fresh connection.
func (cl *Client) dial() (*poolConn, error) {
	mDials.Inc()
	nc, err := net.DialTimeout("tcp", cl.cfg.Addr, cl.cfg.DialTimeout)
	if err != nil {
		return nil, &errTransport{err}
	}
	pc := &poolConn{c: nc, br: bufio.NewReaderSize(nc, 64<<10)}
	nc.SetDeadline(time.Now().Add(cl.cfg.DialTimeout))
	payload, err := pc.roundTrip(cl.cfg.MaxFrame, wire.MsgHello, wire.MsgHelloOK,
		wire.HelloFor(cl.cfg.Params).Encode())
	if err != nil {
		nc.Close()
		return nil, err
	}
	ok, err := wire.DecodeHelloOK(payload)
	if err != nil {
		nc.Close()
		return nil, &errTransport{err}
	}
	pc.ok = ok
	if trace.Enabled() {
		if err := cl.negotiateTrace(pc); err != nil {
			nc.Close()
			return nil, err
		}
	}
	nc.SetDeadline(time.Time{})
	return pc, nil
}

// negotiateTrace probes the freshly-dialed connection for traced-frame
// support (wire.MsgTraceHello). A trace-aware server acknowledges and
// the connection may carry version-2 frames; a pre-tracing server
// answers its generic unknown-message rejection with the stream still
// in sync, so the probe silently degrades to plain v1 framing.
func (cl *Client) negotiateTrace(pc *poolConn) error {
	resp, err := pc.roundTrip(cl.cfg.MaxFrame, wire.MsgTraceHello, wire.MsgTraceHelloOK,
		wire.TraceHello{MaxVersion: wire.FrameVersionTraced}.Encode())
	if err != nil {
		var we *wire.Error
		if errors.As(err, &we) {
			return nil // old server: keep the connection, stay on v1
		}
		return err
	}
	ack, err := wire.DecodeTraceHelloOK(resp)
	if err != nil {
		return &errTransport{err}
	}
	pc.traced = ack.Version == wire.FrameVersionTraced
	return nil
}

// roundTrip sends one frame and reads the matching response. A sequence
// or type mismatch means the stream is desynced and the connection is
// unusable (the caller must close it).
func (pc *poolConn) roundTrip(maxFrame uint32, t, want wire.MsgType, payload []byte) ([]byte, error) {
	return pc.roundTripCtx(maxFrame, t, want, trace.Context{}, payload)
}

// roundTripCtx is roundTrip carrying a trace context: a sampled context
// on a negotiated connection rides a version-2 frame so the server can
// hang its spans under the client's; everything else stays version 1.
func (pc *poolConn) roundTripCtx(maxFrame uint32, t, want wire.MsgType, tc trace.Context, payload []byte) ([]byte, error) {
	pc.seq++
	var werr error
	if tc.Sampled() && pc.traced {
		werr = wire.WriteFrameTraced(pc.c, t, pc.seq,
			wire.TraceHeader{TraceID: tc.Trace, SpanID: tc.Span, Flags: tc.Flags}, payload)
	} else {
		werr = wire.WriteFrame(pc.c, t, pc.seq, payload)
	}
	if werr != nil {
		return nil, &errTransport{werr}
	}
	rt, rseq, rp, err := wire.ReadFrame(pc.br, maxFrame)
	if err != nil {
		return nil, &errTransport{err}
	}
	if rseq != pc.seq {
		return nil, &errTransport{fmt.Errorf("response seq %d, want %d (stream desync)", rseq, pc.seq)}
	}
	if rt == wire.MsgError {
		we, derr := wire.DecodeError(rp)
		if derr != nil {
			return nil, &errTransport{derr}
		}
		return nil, we
	}
	if rt != want {
		return nil, &errTransport{fmt.Errorf("response type %d, want %d", rt, want)}
	}
	return rp, nil
}

// do runs one request with pooling, timeouts, and jittered backoff. The
// connection returns to the pool only after a fully clean round trip; a
// typed server rejection keeps the stream in sync, anything else closes
// the connection.
func (cl *Client) do(t, want wire.MsgType, payload []byte) ([]byte, error) {
	return cl.doCtx(trace.Context{}, t, want, payload)
}

// doCtx is do under a trace context: each attempt gets its own client
// span (the context the server receives), so retries show up as
// separate sibling RPCs in the trace.
func (cl *Client) doCtx(tc trace.Context, t, want wire.MsgType, payload []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			cl.cfg.Sleep(cl.backoff(attempt - 1))
		}
		mRequests.Inc()
		pc, err := cl.get()
		if err == nil {
			sctx, sp := trace.Start(tc, "client", "send:"+t.String())
			if attempt > 0 && sp.Active() {
				sp.Annotate(fmt.Sprintf("retry %d", attempt))
			}
			pc.c.SetDeadline(time.Now().Add(cl.cfg.RequestTimeout))
			var resp []byte
			resp, err = pc.roundTripCtx(cl.cfg.MaxFrame, t, want, sctx, payload)
			pc.c.SetDeadline(time.Time{})
			sp.EndErr(err)
			var we *wire.Error
			if err == nil || errors.As(err, &we) {
				cl.put(pc) // stream still in sync
			} else {
				pc.c.Close()
			}
			if err == nil {
				return resp, nil
			}
		}
		lastErr = err
		var we *wire.Error
		if errors.As(err, &we) && !we.Retryable() {
			return nil, err // the request itself is bad; retrying cannot help
		}
	}
	return nil, lastErr
}

// backoff computes the delay before retry attempt i (0-based) with equal
// jitter: half deterministic growth, half uniform random.
func (cl *Client) backoff(i int) time.Duration {
	d := cl.cfg.Backoff << uint(i)
	if d > cl.cfg.MaxBackoff || d <= 0 {
		d = cl.cfg.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(cl.cfg.Jitter()*float64(half))
}

// Hello returns the server's handshake echo (engines, batch limit),
// dialing a connection if none is pooled.
func (cl *Client) Hello() (wire.HelloOK, error) {
	pc, err := cl.get()
	if err != nil {
		return wire.HelloOK{}, err
	}
	ok := pc.ok
	cl.put(pc)
	return ok, nil
}

// Ping round-trips an empty frame.
func (cl *Client) Ping() error {
	_, err := cl.do(wire.MsgPing, wire.MsgPong, nil)
	return err
}

// SetupKeys installs the packing-key set and returns its canonical hash.
// Idempotent: re-sending the same set succeeds with the same hash.
func (cl *Client) SetupKeys(keys *lwe.PackingKeys) ([32]byte, error) {
	payload := wire.EncodeSetupKeys(cl.cfg.Params.R, keys)
	resp, err := cl.do(wire.MsgSetupKeys, wire.MsgSetupKeysOK, payload)
	if err != nil {
		return [32]byte{}, err
	}
	ok, err := wire.DecodeSetupKeysOK(resp)
	if err != nil {
		return [32]byte{}, &errTransport{err}
	}
	return ok.KeyHash, nil
}

// RegisterMatrix uploads and prepares a matrix, returning its handle.
// Registration is idempotent by content hash.
func (cl *Client) RegisterMatrix(A [][]uint64) (wire.MatrixHandle, error) {
	payload, err := wire.EncodeRegisterMatrix(A)
	if err != nil {
		return wire.MatrixHandle{}, err
	}
	resp, err := cl.do(wire.MsgRegisterMatrix, wire.MsgMatrixHandle, payload)
	if err != nil {
		return wire.MatrixHandle{}, err
	}
	h, err := wire.DecodeMatrixHandle(resp)
	if err != nil {
		return wire.MatrixHandle{}, &errTransport{err}
	}
	return h, nil
}

// Apply multiplies a registered matrix with an encrypted vector and
// returns the packed result. The request carries RequestTimeout as its
// server-side deadline hint.
func (cl *Client) Apply(id [32]byte, vec []*rlwe.Ciphertext) (wire.Result, error) {
	return cl.ApplyTraced(trace.Context{}, id, vec)
}

// ApplyTraced is Apply under a trace context: a sampled context rides
// the request's wire frames (when the server negotiated tracing), so
// server-side spans nest under the caller's. A zero context is exactly
// Apply.
func (cl *Client) ApplyTraced(tc trace.Context, id [32]byte, vec []*rlwe.Ciphertext) (wire.Result, error) {
	payload := wire.EncodeApply(cl.cfg.Params.R, wire.Apply{
		ID:             id,
		DeadlineMicros: uint64(cl.cfg.RequestTimeout / time.Microsecond),
		Vector:         vec,
	})
	resp, err := cl.doCtx(tc, wire.MsgApply, wire.MsgResult, payload)
	if err != nil {
		return wire.Result{}, err
	}
	res, err := wire.DecodeResult(cl.cfg.Params.R, resp)
	if err != nil {
		return wire.Result{}, &errTransport{err}
	}
	return res, nil
}
