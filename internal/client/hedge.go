package client

// Hedged requests: the straggler defence of the cluster tier. A scatter
// leg races up to n attempts at different replicas — the next attempt
// launches when the previous one fails outright or when the hedge delay
// expires with no answer, and the first success wins. Because HMVP applies
// are pure compute with no server-side effects, duplicate execution is
// always safe; hedging trades a bounded amount of redundant work for a
// tight tail (The Tail at Scale's classic trade).

import (
	"errors"
	"time"
)

// ErrNoAttempts is returned by Hedged when n < 1.
var ErrNoAttempts = errors.New("client: hedged call with no attempts")

type hedgeOutcome[T any] struct {
	idx int
	val T
	err error
}

// Hedged runs try(0..n-1) with staggered starts: attempt i+1 launches as
// soon as attempt i fails, or after delay with attempt i still pending.
// The first success wins; its value, the winning attempt index, and the
// number of attempts actually launched come back. When every launched
// attempt fails the last error is returned. Losing in-flight attempts are
// abandoned, not cancelled — try must bound its own run time (the client's
// RequestTimeout does this for wire calls).
func Hedged[T any](n int, delay time.Duration, try func(i int) (T, error)) (T, int, int, error) {
	var zero T
	if n < 1 {
		return zero, -1, 0, ErrNoAttempts
	}
	ch := make(chan hedgeOutcome[T], n)
	launched := 0
	launch := func() {
		i := launched
		launched++
		go func() {
			v, err := try(i)
			ch <- hedgeOutcome[T]{i, v, err}
		}()
	}
	launch()
	var lastErr error
	for done := 0; done < launched; {
		var expired <-chan time.Time
		if launched < n {
			t := time.NewTimer(delay)
			expired = t.C
			defer t.Stop()
		}
		select {
		case out := <-ch:
			done++
			if out.err == nil {
				return out.val, out.idx, launched, nil
			}
			lastErr = out.err
			if launched < n {
				launch() // a hard failure hedges immediately
			}
		case <-expired:
			launch() // a straggler hedges after the delay
		}
	}
	return zero, -1, launched, lastErr
}
