package client

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/server"
	"cham/internal/testutil"
	"cham/internal/wire"
)

// flakyProxy fronts a healthy server but slams the door on the first
// `drops` connections — the classic half-up load balancer. Connections
// after that are spliced through transparently.
func flakyProxy(tb testing.TB, backend string, drops int) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	var n atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if n.Add(1) <= int64(drops) {
				c.Close()
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go splice(c, up)
		}
	}()
	return ln.Addr().String()
}

func splice(a, b net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); io.Copy(a, b); a.Close() }()
	go func() { defer wg.Done(); io.Copy(b, a); b.Close() }()
	wg.Wait()
}

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func startServer(tb testing.TB, p bfv.Params) string {
	tb.Helper()
	s, err := server.New(server.Config{Params: p})
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go s.Serve(ln)
	tb.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestRetryThroughFlakyListener dials through a proxy that kills the
// first three connections and asserts the backoff loop rides it out,
// sleeping the expected jittered schedule in between.
func TestRetryThroughFlakyListener(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	addr := flakyProxy(t, startServer(t, p), 3)

	var slept []time.Duration
	cl, err := Dial(Config{
		Addr:       addr,
		Params:     p,
		MaxRetries: 5,
		Backoff:    8 * time.Millisecond,
		MaxBackoff: 64 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
		Jitter:     func() float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := cl.SetupKeys(keys)
	if err != nil {
		t.Fatalf("SetupKeys through flaky proxy: %v", err)
	}
	if hash != wire.KeyHash(p.R, keys) {
		t.Fatal("wrong key hash")
	}
	if len(slept) != 3 {
		t.Fatalf("expected 3 backoff sleeps (one per dropped conn), got %d: %v", len(slept), slept)
	}
	// Equal jitter with Jitter()=0.5: base*2^i/2 + base*2^i/4 = 3/4 of the
	// deterministic delay, doubling per attempt.
	for i, d := range slept {
		want := time.Duration(3) * (8 * time.Millisecond << uint(i)) / 4
		if d != want {
			t.Errorf("sleep %d = %v, want %v", i, d, want)
		}
	}

	// The surviving connection is pooled and reused: the follow-up request
	// must not dial (and so cannot hit the proxy's drop counter again).
	dials0 := mDials.Value()
	A := testutil.Matrix(rng, 4, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	ctV := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 32, p.T.Q))
	if _, err := cl.Apply(handle.ID, ctV); err != nil {
		t.Fatal(err)
	}
	if d := mDials.Value() - dials0; d != 0 {
		t.Errorf("expected pooled connection reuse, saw %d fresh dials", d)
	}
}

// TestNoRetryOnPermanentError asserts a non-retryable typed rejection
// comes back immediately, without burning the backoff budget.
func TestNoRetryOnPermanentError(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	addr := startServer(t, p)

	sleeps := 0
	cl, err := Dial(Config{
		Addr:       addr,
		Params:     p,
		MaxRetries: 5,
		Sleep:      func(time.Duration) { sleeps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SetupKeys(keys); err != nil {
		t.Fatal(err)
	}
	ctV := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 32, p.T.Q))
	var bogus [32]byte
	_, err = cl.Apply(bogus, ctV)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeUnknownMatrix {
		t.Fatalf("expected unknown_matrix, got %v", err)
	}
	if sleeps != 0 {
		t.Fatalf("permanent error triggered %d retries", sleeps)
	}
}

// TestDeadExhaustsRetries points the client at nothing and asserts the
// retry budget is honored before the transport error surfaces.
func TestDeadExhaustsRetries(t *testing.T) {
	p := testParams(t, 32)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	sleeps := 0
	cl, err := Dial(Config{
		Addr:        addr,
		Params:      p,
		MaxRetries:  3,
		DialTimeout: 200 * time.Millisecond,
		Sleep:       func(time.Duration) { sleeps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("ping against a dead address succeeded")
	}
	if sleeps != 3 {
		t.Fatalf("expected 3 backoff sleeps, got %d", sleeps)
	}
}
