package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cham/internal/testutil"
)

// TestBackoffEqualJitterBounds: for every attempt i the delay must lie in
// [d/2, d) with d = min(Backoff<<i, MaxBackoff) — the equal-jitter
// contract. Regression test for the jitter source: it used to be shared
// and unseeded, so the schedule was neither isolated nor reproducible.
func TestBackoffEqualJitterBounds(t *testing.T) {
	cfg, err := Config{
		Addr:       "127.0.0.1:1",
		Params:     testParams(t, 32),
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{cfg: cfg}
	for i := 0; i < 12; i++ {
		d := cfg.Backoff << uint(i)
		if d > cfg.MaxBackoff || d <= 0 {
			d = cfg.MaxBackoff
		}
		for trial := 0; trial < 64; trial++ {
			got := cl.backoff(i)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", i, got, d/2, d)
			}
		}
	}

	// The jitter endpoints map onto the interval bounds exactly.
	cl.cfg.Jitter = func() float64 { return 0 }
	if got := cl.backoff(0); got != cfg.Backoff/2 {
		t.Errorf("zero jitter: backoff %v, want %v", got, cfg.Backoff/2)
	}
	cl.cfg.Jitter = func() float64 { return 0.999999 }
	if got := cl.backoff(3); got >= cfg.MaxBackoff {
		t.Errorf("max jitter: backoff %v reached the open bound %v", got, cfg.MaxBackoff)
	}
}

// TestJitterDeterministicUnderSeed: with CHAM_TEST_SEED set, every client
// draws the identical jitter sequence, so retry schedules reproduce; and
// distinct clients without the seed env draw distinct sequences (the old
// bug shared one source process-wide).
func TestJitterDeterministicUnderSeed(t *testing.T) {
	t.Setenv(seedEnv, "12345")
	a, b := defaultJitter(), defaultJitter()
	for i := 0; i < 100; i++ {
		va, vb := a(), b()
		if va != vb {
			t.Fatalf("draw %d: %v != %v under %s", i, va, vb, seedEnv)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d: %v outside [0,1)", i, va)
		}
	}

	t.Setenv(seedEnv, "")
	c, d := defaultJitter(), defaultJitter()
	same := 0
	for i := 0; i < 32; i++ {
		if c() == d() {
			same++
		}
	}
	if same == 32 {
		t.Error("unseeded clients drew identical jitter sequences")
	}
}

// TestHedgedFirstSuccessWins: a healthy primary answers before the hedge
// delay, so exactly one attempt launches.
func TestHedgedFirstSuccessWins(t *testing.T) {
	v, winner, launched, err := Hedged(3, time.Hour, func(i int) (int, error) {
		return 40 + i, nil
	})
	if err != nil || v != 40 || winner != 0 || launched != 1 {
		t.Fatalf("got (%d, %d, %d, %v), want (40, 0, 1, nil)", v, winner, launched, err)
	}
}

// TestHedgedFailoverOnError: a hard failure hedges immediately without
// waiting out the delay.
func TestHedgedFailoverOnError(t *testing.T) {
	start := time.Now()
	v, winner, launched, err := Hedged(3, time.Hour, func(i int) (string, error) {
		if i < 2 {
			return "", fmt.Errorf("replica %d down", i)
		}
		return "ok", nil
	})
	if err != nil || v != "ok" || winner != 2 || launched != 3 {
		t.Fatalf("got (%q, %d, %d, %v), want (ok, 2, 3, nil)", v, winner, launched, err)
	}
	if time.Since(start) > time.Minute {
		t.Fatal("failure hedging waited for the delay")
	}
}

// TestHedgedStraggler: a hung primary is raced by the hedge after the
// delay, and the hedge's answer wins while the straggler is abandoned.
func TestHedgedStraggler(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	v, winner, launched, err := Hedged(2, time.Millisecond, func(i int) (int, error) {
		if i == 0 {
			<-release // straggler: never answers during the test
			return 0, nil
		}
		return 7, nil
	})
	if err != nil || v != 7 || winner != 1 || launched != 2 {
		t.Fatalf("got (%d, %d, %d, %v), want (7, 1, 2, nil)", v, winner, launched, err)
	}
}

// TestHedgedAllFail: when every attempt fails the last error surfaces and
// the launch count covers all n.
func TestHedgedAllFail(t *testing.T) {
	boom := errors.New("boom")
	_, winner, launched, err := Hedged(3, time.Millisecond, func(i int) (int, error) {
		return 0, fmt.Errorf("attempt %d: %w", i, boom)
	})
	if !errors.Is(err, boom) || winner != -1 || launched != 3 {
		t.Fatalf("got (%d, %d, %v), want (-1, 3, wrapping boom)", winner, launched, err)
	}
	if _, _, _, err := Hedged(0, 0, func(int) (int, error) { return 0, nil }); !errors.Is(err, ErrNoAttempts) {
		t.Fatalf("n=0: got %v, want ErrNoAttempts", err)
	}
}

// TestBackoffSeedReproducesSchedule ties the pieces together: two clients
// built under the same CHAM_TEST_SEED produce the same backoff schedule.
func TestBackoffSeedReproducesSchedule(t *testing.T) {
	t.Setenv(seedEnv, "987")
	mk := func() []time.Duration {
		cfg, err := Config{Addr: "127.0.0.1:1", Params: testParams(t, 32)}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		cl := &Client{cfg: cfg}
		var sched []time.Duration
		for i := 0; i < 8; i++ {
			sched = append(sched, cl.backoff(i))
		}
		return sched
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v != %v under %s", i, a[i], b[i], seedEnv)
		}
	}
	if seedEnv != testutil.SeedEnv {
		t.Fatalf("client seedEnv %q out of sync with testutil.SeedEnv %q", seedEnv, testutil.SeedEnv)
	}
}
