package mod

import (
	"math/big"
	"testing"
)

// FuzzModReduce cross-checks every reduction strategy of the paper's §IV.A
// datapath against math/big ground truth, over arbitrary (coerced) moduli
// and operands: hardware division, two-word Barrett, Shoup multiplication,
// and the DSP-free shift-add multiplier.
func FuzzModReduce(f *testing.F) {
	for _, q := range ChamModuli() {
		f.Add(q, uint64(0), ^uint64(0), uint64(12345), uint64(67890))
	}
	f.Add(uint64(65537), uint64(1), uint64(2), uint64(3), uint64(4))
	f.Add(uint64(3), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<61+1, uint64(7), uint64(9), uint64(1)<<60, uint64(1)<<59)
	f.Fuzz(func(t *testing.T, q, hi, lo, a, b uint64) {
		q |= 1 // coerce into the valid modulus space
		q &= (1 << MaxModulusBits) - 1
		if q < 3 {
			q = 3
		}
		m, err := TryNew(q)
		if err != nil {
			t.Skip()
		}
		qB := new(big.Int).SetUint64(q)
		mod64 := func(x uint64) uint64 {
			return new(big.Int).Mod(new(big.Int).SetUint64(x), qB).Uint64()
		}

		if got, want := m.Reduce(a), mod64(a); got != want {
			t.Fatalf("Reduce(%d) mod %d = %d, want %d", a, q, got, want)
		}
		if got, want := m.ReduceBarrett(a), mod64(a); got != want {
			t.Fatalf("ReduceBarrett(%d) mod %d = %d, want %d", a, q, got, want)
		}

		wide := new(big.Int).SetUint64(hi)
		wide.Lsh(wide, 64)
		wide.Add(wide, new(big.Int).SetUint64(lo))
		want128 := new(big.Int).Mod(wide, qB).Uint64()
		if got := m.Reduce128(hi, lo); got != want128 {
			t.Fatalf("Reduce128(%d,%d) mod %d = %d, want %d", hi, lo, q, got, want128)
		}
		if hi < q { // BarrettReduce128 contract: value below q·2^64
			if got := m.BarrettReduce128(hi, lo); got != want128 {
				t.Fatalf("BarrettReduce128(%d,%d) mod %d = %d, want %d", hi, lo, q, got, want128)
			}
		}

		prod := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		wantMul := new(big.Int).Mod(prod, qB).Uint64()
		if got := m.Mul(a, b); got != wantMul {
			t.Fatalf("Mul(%d,%d) mod %d = %d, want %d", a, b, q, got, wantMul)
		}
		ar, br := m.Reduce(a), m.Reduce(b)
		wantMulR := m.Mul(ar, br)
		if got := m.MulBarrett(ar, br); got != wantMulR {
			t.Fatalf("MulBarrett(%d,%d) mod %d = %d, want %d", ar, br, q, got, wantMulR)
		}
		wp := m.ShoupPrecomp(br)
		if got := m.MulShoup(ar, br, wp); got != wantMulR {
			t.Fatalf("MulShoup(%d,%d) mod %d = %d, want %d", ar, br, q, got, wantMulR)
		}
		if lazy := m.MulShoupLazy(ar, br, wp); lazy != wantMulR && lazy != wantMulR+q {
			t.Fatalf("MulShoupLazy(%d,%d) mod %d = %d, want %d or %d", ar, br, q, lazy, wantMulR, wantMulR+q)
		}
		if m.LowHW {
			if got := m.MulShiftAdd(ar, br); got != wantMulR {
				t.Fatalf("MulShiftAdd(%d,%d) mod %d = %d, want %d", ar, br, q, got, wantMulR)
			}
		}

		// Centring must round-trip and respect the (-q/2, q/2] window.
		c := m.CenterLift(ar)
		if c > int64(q/2) || -c > int64(q/2) {
			t.Fatalf("CenterLift(%d) mod %d = %d outside the centred window", ar, q, c)
		}
		if back := m.FromCentered(c); back != ar {
			t.Fatalf("FromCentered(CenterLift(%d)) mod %d = %d", ar, q, back)
		}
	})
}
