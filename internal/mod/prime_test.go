package mod

import (
	"math/rand"
	"testing"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{}
	// Sieve up to 10000 as ground truth.
	const lim = 10000
	sieve := make([]bool, lim)
	for i := 2; i < lim; i++ {
		if !sieve[i] {
			primes[uint64(i)] = true
			for j := i * i; j < lim; j += i {
				sieve[j] = true
			}
		}
	}
	for n := uint64(0); n < lim; n++ {
		if IsPrime(n) != primes[n] {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, IsPrime(n), primes[n])
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	known := []struct {
		n  uint64
		ok bool
	}{
		{ChamQ0, true},
		{ChamQ1, true},
		{ChamP, true},
		{(1 << 61) - 1, true},         // Mersenne prime M61
		{(1 << 61) + 1, false},        // divisible by 3? 2^61+1: 2≡-1 mod 3, (-1)^61+1=0 -> yes
		{18446744073709551557, true},  // largest 64-bit prime
		{18446744073709551615, false}, // 2^64-1
		{uint64(3215031751), false},   // strong pseudoprime to bases 2,3,5,7
		{ChamQ0 * 2, false},
	}
	for _, c := range known {
		if got := IsPrime(c.n); got != c.ok {
			t.Errorf("IsPrime(%d) = %v, want %v", c.n, got, c.ok)
		}
	}
}

func TestIsPrimeVsTrialDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trial := func(n uint64) bool {
		if n < 2 {
			return false
		}
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i < 500; i++ {
		n := rng.Uint64() % 1_000_000
		if IsPrime(n) != trial(n) {
			t.Fatalf("IsPrime(%d) disagrees with trial division", n)
		}
	}
}

func TestNTTFriendlyPrimes(t *testing.T) {
	for _, n := range []uint64{8, 1024, 4096} {
		ps, err := NTTFriendlyPrimes(40, n, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := map[uint64]bool{}
		for _, q := range ps {
			if !IsPrime(q) {
				t.Errorf("n=%d: %d not prime", n, q)
			}
			if (q-1)%(2*n) != 0 {
				t.Errorf("n=%d: %d not 1 mod 2n", n, q)
			}
			if q>>39 == 0 || q>>40 != 0 {
				t.Errorf("n=%d: %d not 40-bit", n, q)
			}
			if seen[q] {
				t.Errorf("n=%d: duplicate prime %d", n, q)
			}
			seen[q] = true
		}
	}
	if _, err := NTTFriendlyPrimes(2, 4096, 1); err == nil {
		t.Error("expected error for tiny logQ")
	}
	if _, err := NTTFriendlyPrimes(14, 4096, 100); err == nil {
		t.Error("expected error when not enough primes exist")
	}
}

func TestPrimitiveRoot(t *testing.T) {
	for _, q := range []uint64{5, 97, 65537, ChamQ0, ChamQ1, ChamP} {
		g, err := PrimitiveRoot(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		// g must not have order dividing (q-1)/f for any prime factor f.
		for _, f := range distinctPrimeFactors(q - 1) {
			if powMod(g, (q-1)/f, q) == 1 {
				t.Errorf("q=%d: %d is not a primitive root (order divides (q-1)/%d)", q, g, f)
			}
		}
	}
	if _, err := PrimitiveRoot(100); err == nil {
		t.Error("PrimitiveRoot(100): expected error for composite")
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, q := range ChamModuli() {
		m := New(q)
		for _, order := range []uint64{2, 8192, 4096} {
			w, err := RootOfUnity(q, order)
			if err != nil {
				t.Fatalf("q=%d order=%d: %v", q, order, err)
			}
			if m.Pow(w, order) != 1 {
				t.Errorf("q=%d: w^%d != 1", q, order)
			}
			if m.Pow(w, order/2) == 1 {
				t.Errorf("q=%d: w not primitive of order %d", q, order)
			}
		}
	}
	if _, err := RootOfUnity(ChamQ0, 5); err == nil {
		t.Error("expected error: 5 does not divide q0-1 = 2^27·3·43")
	}
	// order does divide q-1 but is odd>1: 129 divides q0-1 = 2^27*129.
	if w, err := RootOfUnity(ChamQ0, 129); err != nil {
		t.Errorf("order 129: %v", err)
	} else if powMod(w, 129, ChamQ0) != 1 {
		t.Error("order-129 root check failed")
	}
}

func TestDistinctPrimeFactors(t *testing.T) {
	cases := map[uint64][]uint64{
		2:          {2},
		12:         {2, 3},
		97:         {97},
		8192:       {2},
		ChamQ0 - 1: {2, 3, 43}, // 2^27 * 129 = 2^27 * 3 * 43
	}
	for n, want := range cases {
		got := distinctPrimeFactors(n)
		if len(got) != len(want) {
			t.Errorf("factors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("factors(%d) = %v, want %v", n, got, want)
			}
		}
	}
}
