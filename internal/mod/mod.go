// Package mod implements 64-bit modular arithmetic for NTT-friendly prime
// moduli, including the reduction strategies evaluated by the CHAM paper:
//
//   - generic 128-bit division (the portable reference),
//   - Barrett reduction with a two-word constant,
//   - Shoup multiplication for fixed multiplicands (NTT twiddle factors), and
//   - shift-add reduction for low-Hamming-weight moduli of the form
//     2^e2 + 2^e1 + 1 (CHAM §IV.A.3), where multiplication by the modulus
//     degenerates into three shifts and additions.
//
// All moduli are required to be odd and strictly below 2^62 so that lazy
// sums up to 4q never overflow a uint64.
package mod

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxModulusBits bounds the supported modulus size. CHAM's largest modulus is
// the 39-bit special modulus; 62 leaves ample headroom for test moduli.
const MaxModulusBits = 62

// Modulus bundles a prime modulus with its precomputed reduction constants.
type Modulus struct {
	Q uint64 // the modulus itself

	// Barrett constant: floor(2^128 / Q) as (hi, lo) 64-bit words.
	BRC [2]uint64

	// Shift-add decomposition: Q == 1<<E2 + 1<<E1 + 1 when LowHW is true.
	LowHW  bool
	E2, E1 uint
}

// New returns a Modulus with all reduction constants precomputed.
// It panics if q is even, less than 3, or too large; use TryNew to get an
// error instead.
func New(q uint64) Modulus {
	m, err := TryNew(q)
	if err != nil {
		panic(err)
	}
	return m
}

// TryNew is like New but reports invalid moduli as errors.
func TryNew(q uint64) (Modulus, error) {
	switch {
	case q < 3:
		return Modulus{}, fmt.Errorf("mod: modulus %d too small", q)
	case q&1 == 0:
		return Modulus{}, fmt.Errorf("mod: modulus %d is even", q)
	case bits.Len64(q) > MaxModulusBits:
		return Modulus{}, fmt.Errorf("mod: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	m := Modulus{Q: q}
	m.BRC = barrettConstant(q)
	m.LowHW, m.E2, m.E1 = lowHWForm(q)
	return m, nil
}

// barrettConstant returns floor(2^128/q) as two 64-bit words (hi, lo).
func barrettConstant(q uint64) [2]uint64 {
	r := new(big.Int).Lsh(big.NewInt(1), 128)
	r.Quo(r, new(big.Int).SetUint64(q))
	lo := new(big.Int)
	hi, _ := new(big.Int).DivMod(r, new(big.Int).Lsh(big.NewInt(1), 64), lo)
	return [2]uint64{hi.Uint64(), lo.Uint64()}
}

// lowHWForm reports whether q == 2^e2 + 2^e1 + 1 with e2 > e1 > 0.
func lowHWForm(q uint64) (ok bool, e2, e1 uint) {
	if bits.OnesCount64(q) != 3 || q&1 == 0 {
		return false, 0, 0
	}
	r := q - 1
	e1 = uint(bits.TrailingZeros64(r))
	r >>= e1
	r--
	e2f := uint(bits.TrailingZeros64(r))
	if r != 1<<e2f {
		return false, 0, 0
	}
	return true, e1 + e2f, e1
}

// Add returns a+b mod q. Inputs must already be reduced.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns a-b mod q. Inputs must already be reduced.
func (m Modulus) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + m.Q - b
}

// Neg returns -a mod q. Input must already be reduced.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce returns a mod q for an arbitrary uint64 a.
func (m Modulus) Reduce(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return a % m.Q
}

// ReduceBarrett returns a mod q for an arbitrary uint64 a via the Barrett
// constant — no hardware division. It is the fast path for reducing
// centred-lift magnitudes (|v| < 2^62) inside RESCALE and digit
// decomposition loops, where Reduce's division would dominate.
func (m Modulus) ReduceBarrett(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return m.BarrettReduce128(0, a)
}

// Reduce128 returns (hi·2^64 + lo) mod q using hardware division.
// It is the canonical correct reduction against which the fast paths are
// property-tested.
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	hi %= m.Q // bits.Div64 requires hi < q
	_, r := bits.Div64(hi, lo, m.Q)
	return r
}

// Mul returns a·b mod q via 128-bit division. Inputs need not be reduced.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.Reduce128(hi, lo)
}

// MulBarrett returns a·b mod q via two-word Barrett reduction.
// Inputs must be reduced (< q).
func (m Modulus) MulBarrett(a, b uint64) uint64 {
	ahi, alo := bits.Mul64(a, b)
	return m.BarrettReduce128(ahi, alo)
}

// BarrettReduce128 reduces the 128-bit value hi·2^64+lo, which must be < q·2^64
// (always true for products of reduced operands), to the range [0, q).
func (m Modulus) BarrettReduce128(hi, lo uint64) uint64 {
	// qhat ~= floor((hi,lo) * BRC / 2^128); BRC = floor(2^128/q).
	t1hi, t1lo := bits.Mul64(hi, m.BRC[1])
	t2hi, t2lo := bits.Mul64(lo, m.BRC[0])
	t3hi, _ := bits.Mul64(lo, m.BRC[1])
	mid, c1 := bits.Add64(t1lo, t2lo, 0)
	_, c2 := bits.Add64(mid, t3hi, 0)
	qhat := hi*m.BRC[0] + t1hi + t2hi + c1 + c2
	r := lo - qhat*m.Q // mod 2^64; true remainder plus at most 2q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupPrecomp returns floor(w·2^64/q), the companion word for MulShoup.
// w must be reduced (< q).
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	hi, lo := w, uint64(0) // w·2^64
	q, _ := bits.Div64(hi%m.Q, lo, m.Q)
	// bits.Div64 computes floor((hi%q · 2^64 + lo)/q); add back the dropped
	// full multiples: floor(w·2^64/q) = (w/q)·2^64 + ... but w < q so w/q = 0.
	return q
}

// MulShoup returns a·w mod q where wp = ShoupPrecomp(w). The multiplicand w
// must be reduced; a may be any uint64. This is the fast path used for NTT
// twiddle factors, where w is known ahead of time.
func (m Modulus) MulShoup(a, w, wp uint64) uint64 {
	qhat, _ := bits.Mul64(a, wp)
	r := a*w - qhat*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulShoupLazy is MulShoup without the final conditional subtraction; the
// result lies in [0, 2q). Used inside butterfly loops that tolerate lazy
// operands.
func (m Modulus) MulShoupLazy(a, w, wp uint64) uint64 {
	qhat, _ := bits.Mul64(a, wp)
	return a*w - qhat*m.Q
}

// MulQShiftAdd returns x·q mod 2^64 using the low-Hamming-weight
// decomposition — the three shifts and additions of CHAM §IV.A.3. It panics
// if the modulus does not have the special form.
func (m Modulus) MulQShiftAdd(x uint64) uint64 {
	if !m.LowHW {
		panic("mod: MulQShiftAdd on a modulus without low-Hamming-weight form")
	}
	return x<<m.E2 + x<<m.E1 + x
}

// MulShiftAdd returns a·b mod q via Barrett reduction in which the qhat·q
// product is realised with shifts and adds (the DSP-free datapath CHAM uses
// on FPGA). Results are identical to MulBarrett; only the multiplier
// structure differs. Inputs must be reduced.
func (m Modulus) MulShiftAdd(a, b uint64) uint64 {
	ahi, alo := bits.Mul64(a, b)
	t1hi, t1lo := bits.Mul64(ahi, m.BRC[1])
	t2hi, t2lo := bits.Mul64(alo, m.BRC[0])
	t3hi, _ := bits.Mul64(alo, m.BRC[1])
	mid, c1 := bits.Add64(t1lo, t2lo, 0)
	_, c2 := bits.Add64(mid, t3hi, 0)
	qhat := ahi*m.BRC[0] + t1hi + t2hi + c1 + c2
	r := alo - m.MulQShiftAdd(qhat)
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Pow returns b^e mod q by square-and-multiply.
func (m Modulus) Pow(b, e uint64) uint64 {
	b = m.Reduce(b)
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, b)
		}
		b = m.Mul(b, b)
		e >>= 1
	}
	return r
}

// Inv returns a^-1 mod q. The modulus must be prime (Fermat inversion).
// It panics if a ≡ 0 mod q.
func (m Modulus) Inv(a uint64) uint64 {
	a = m.Reduce(a)
	if a == 0 {
		panic("mod: inverse of zero")
	}
	return m.Pow(a, m.Q-2)
}

// CenterLift maps a residue in [0,q) to its centered representative in
// (-q/2, q/2].
func (m Modulus) CenterLift(a uint64) int64 {
	if a > m.Q/2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}

// FromCentered maps a centered (possibly negative) integer to [0, q).
func (m Modulus) FromCentered(v int64) uint64 {
	r := v % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// FromCenteredFast is FromCentered without hardware division: the magnitude
// is reduced with the Barrett constant. Identical results for any int64
// other than math.MinInt64.
func (m Modulus) FromCenteredFast(v int64) uint64 {
	if v >= 0 {
		return m.ReduceBarrett(uint64(v))
	}
	r := m.ReduceBarrett(uint64(-v))
	if r == 0 {
		return 0
	}
	return m.Q - r
}
