package mod

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// testModuli mixes the CHAM production moduli with generic primes that do
// NOT have the low-Hamming-weight form, plus tiny and near-limit primes.
var testModuli = []uint64{
	ChamQ0, ChamQ1, ChamP,
	97, 257, 65537,
	(1 << 31) - 1,       // Mersenne prime M31
	(1 << 62) - 1,       // near-limit candidate; init() walks down to a prime
	1152921504606846975, // 60-bit candidate; init() walks down to a prime
}

func init() {
	// Replace any non-prime placeholders with verified primes so tests are
	// honest about their inputs.
	for i, q := range testModuli {
		for !IsPrime(q) {
			q -= 2
		}
		testModuli[i] = q
	}
}

func TestTryNewRejectsBadModuli(t *testing.T) {
	for _, q := range []uint64{0, 1, 2, 4, 100, 1 << 63} {
		if _, err := TryNew(q); err == nil {
			t.Errorf("TryNew(%d): expected error", q)
		}
	}
}

func TestNewPanicsOnEven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(8) did not panic")
		}
	}()
	New(8)
}

func TestLowHWForm(t *testing.T) {
	cases := []struct {
		q      uint64
		ok     bool
		e2, e1 uint
	}{
		{ChamQ0, true, 34, 27},
		{ChamQ1, true, 34, 19},
		{ChamP, true, 38, 23},
		{97, true, 6, 5},     // 2^6 + 2^5 + 1
		{11, true, 3, 1},     // 2^3 + 2^1 + 1
		{7, true, 2, 1},      // 2^2 + 2^1 + 1
		{73, true, 6, 3},     // 2^6 + 2^3 + 1
		{65537, false, 0, 0}, // only two non-zero bits
		{105, false, 0, 0},   // 64+32+8+1: four non-zero bits
		{14, false, 0, 0},    // even: 8+4+2
	}
	for _, c := range cases {
		ok, e2, e1 := lowHWForm(c.q)
		if ok != c.ok || e2 != c.e2 || e1 != c.e1 {
			t.Errorf("lowHWForm(%d) = (%v,%d,%d), want (%v,%d,%d)",
				c.q, ok, e2, e1, c.ok, c.e2, c.e1)
		}
	}
}

func TestChamModuliAreSpecialPrimes(t *testing.T) {
	for _, q := range ChamModuli() {
		if !IsPrime(q) {
			t.Errorf("%d is not prime", q)
		}
		if (q-1)%8192 != 0 {
			t.Errorf("%d is not 1 mod 2N for N=4096", q)
		}
		if bits.OnesCount64(q) != 3 {
			t.Errorf("%d does not have exactly 3 non-zero bits", q)
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 200; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := m.Add(a, b), (a%q+b%q)%q; got != want {
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got, want := m.Sub(a, b), (a+q-b)%q; got != want {
				t.Fatalf("q=%d Sub(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got := m.Add(a, m.Neg(a)); got != 0 {
				t.Fatalf("q=%d a + (-a) = %d", q, got)
			}
		}
	}
}

// TestMulAgreement property-tests every fast multiplication path against the
// canonical 128-bit division path.
func TestMulAgreement(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		f := func(a, b uint64) bool {
			a, b = a%q, b%q
			want := m.Mul(a, b)
			if m.MulBarrett(a, b) != want {
				return false
			}
			wp := m.ShoupPrecomp(b)
			if m.MulShoup(a, b, wp) != want {
				return false
			}
			if lazy := m.MulShoupLazy(a, b, wp); lazy != want && lazy != want+q {
				return false
			}
			if m.LowHW && m.MulShiftAdd(a, b) != want {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		edges := []uint64{0, 1, 2, q - 2, q - 1, q / 2, q/2 + 1}
		for _, a := range edges {
			for _, b := range edges {
				want := m.Mul(a, b)
				if got := m.MulBarrett(a, b); got != want {
					t.Fatalf("q=%d Barrett(%d,%d)=%d want %d", q, a, b, got, want)
				}
				wp := m.ShoupPrecomp(b)
				if got := m.MulShoup(a, b, wp); got != want {
					t.Fatalf("q=%d Shoup(%d,%d)=%d want %d", q, a, b, got, want)
				}
			}
		}
	}
}

func TestMulQShiftAdd(t *testing.T) {
	for _, q := range ChamModuli() {
		m := New(q)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			x := rng.Uint64()
			if got, want := m.MulQShiftAdd(x), x*q; got != want {
				t.Fatalf("q=%d MulQShiftAdd(%d)=%d want %d", q, x, got, want)
			}
		}
	}
	m := New(65537) // not low-HW
	defer func() {
		if recover() == nil {
			t.Fatal("MulQShiftAdd on generic modulus did not panic")
		}
	}()
	m.MulQShiftAdd(1)
}

func TestReduce128(t *testing.T) {
	m := New(ChamQ0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		hi, lo := rng.Uint64(), rng.Uint64()
		want := m.BarrettReduce128(hi%m.Q, lo) // hi<q precondition of Barrett
		if got := m.Reduce128(hi%m.Q, lo); got != want {
			t.Fatalf("Reduce128(%d,%d)=%d want %d", hi, lo, got, want)
		}
	}
}

func TestPowInv(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		rng := rand.New(rand.NewSource(int64(q) ^ 0x5a5a))
		for i := 0; i < 100; i++ {
			a := rng.Uint64()%(q-1) + 1
			inv := m.Inv(a)
			if m.Mul(a, inv) != 1 {
				t.Fatalf("q=%d: a·a^-1 != 1 for a=%d", q, a)
			}
		}
		if m.Pow(3, 0) != 1 {
			t.Errorf("q=%d: 3^0 != 1", q)
		}
		if m.Pow(0, 5) != 0 {
			t.Errorf("q=%d: 0^5 != 0", q)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	New(97).Inv(0)
}

func TestCenterLiftRoundTrip(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		f := func(a uint64) bool {
			a %= q
			c := m.CenterLift(a)
			if c > int64(q/2) || c <= -int64(q)/2-1 {
				return false
			}
			return m.FromCentered(c) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestFromCenteredNegative(t *testing.T) {
	m := New(97)
	if got := m.FromCentered(-1); got != 96 {
		t.Errorf("FromCentered(-1) = %d, want 96", got)
	}
	if got := m.FromCentered(-97 * 3); got != 0 {
		t.Errorf("FromCentered(-291) = %d, want 0", got)
	}
}

// TestFoldReduce property-tests the multiplier-free folding reduction
// against the canonical division path on every low-Hamming-weight modulus.
func TestFoldReduce(t *testing.T) {
	for _, q := range []uint64{7, 11, 97, ChamQ0, ChamQ1, ChamP} {
		m := New(q)
		if !m.LowHW {
			t.Fatalf("%d should be low-HW", q)
		}
		f := func(hi, lo uint64) bool {
			return m.FoldReduce128(hi, lo) == m.Reduce128(hi, lo)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
		// Edges.
		for _, hi := range []uint64{0, 1, ^uint64(0)} {
			for _, lo := range []uint64{0, 1, q - 1, ^uint64(0)} {
				if m.FoldReduce128(hi, lo) != m.Reduce128(hi, lo) {
					t.Fatalf("q=%d: fold(%d,%d) wrong", q, hi, lo)
				}
			}
		}
		// MulFold agrees with Mul on random residues.
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 500; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if m.MulFold(a, b) != m.Mul(a, b) {
				t.Fatalf("q=%d: MulFold(%d,%d) wrong", q, a, b)
			}
		}
	}
	generic := New(65537)
	defer func() {
		if recover() == nil {
			t.Fatal("FoldReduce128 on generic modulus did not panic")
		}
	}()
	generic.FoldReduce128(0, 1)
}
