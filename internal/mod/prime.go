package mod

import (
	"fmt"
	"math/bits"
)

// mrBases is a deterministic witness set for Miller-Rabin on all n < 2^64
// (Sinclair, 2011).
var mrBases = [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n&1 == 0:
		return false
	}
	// Quick trial division by small primes.
	for _, p := range [...]uint64{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := uint(bits.TrailingZeros64(d))
	d >>= r
	for _, a := range mrBases {
		a %= n
		if a == 0 {
			continue
		}
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := uint(0); i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// mulMod and powMod are self-contained helpers usable on any modulus
// (including even ones), needed before a Modulus can be built.
func mulMod(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi%n, lo, n)
	return r
}

func powMod(b, e, n uint64) uint64 {
	b %= n
	r := uint64(1) % n
	for e > 0 {
		if e&1 == 1 {
			r = mulMod(r, b, n)
		}
		b = mulMod(b, b, n)
		e >>= 1
	}
	return r
}

// NTTFriendlyPrimes returns the first count primes q with q ≡ 1 (mod 2n),
// starting from the largest such candidate below 2^logQ and descending.
// These are suitable as RNS limbs for a negacyclic NTT of size n.
func NTTFriendlyPrimes(logQ uint, n uint64, count int) ([]uint64, error) {
	if logQ < 4 || logQ > MaxModulusBits {
		return nil, fmt.Errorf("mod: logQ=%d out of range", logQ)
	}
	step := 2 * n
	// Largest multiple of 2n at or below 2^logQ - 1, plus 1.
	q := (uint64(1)<<logQ-1)/step*step + 1
	var out []uint64
	for ; q > 1<<(logQ-1) && len(out) < count; q -= step {
		if IsPrime(q) {
			out = append(out, q)
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("mod: found only %d/%d %d-bit NTT-friendly primes for n=%d",
			len(out), count, logQ, n)
	}
	return out, nil
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^* for a
// prime q. It factors q-1 by trial division (fine for the ≤62-bit moduli we
// support) and tests candidates g = 2, 3, ...
func PrimitiveRoot(q uint64) (uint64, error) {
	if !IsPrime(q) {
		return 0, fmt.Errorf("mod: %d is not prime", q)
	}
	factors := distinctPrimeFactors(q - 1)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, f := range factors {
			if powMod(g, (q-1)/f, q) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("mod: no primitive root found for %d", q)
}

func distinctPrimeFactors(n uint64) []uint64 {
	var fs []uint64
	for _, p := range [...]uint64{2, 3, 5} {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	// Wheel over 6k±1.
	for d := uint64(7); d*d <= n; d += 6 {
		for _, c := range [...]uint64{d, d + 4} {
			if n%c == 0 {
				fs = append(fs, c)
				for n%c == 0 {
					n /= c
				}
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// RootOfUnity returns a primitive order-th root of unity modulo the prime q.
// order must divide q-1 and be a power of two for NTT use, though any
// divisor is accepted.
func RootOfUnity(q, order uint64) (uint64, error) {
	if order == 0 || (q-1)%order != 0 {
		return 0, fmt.Errorf("mod: order %d does not divide %d-1", order, q)
	}
	g, err := PrimitiveRoot(q)
	if err != nil {
		return 0, err
	}
	w := powMod(g, (q-1)/order, q)
	// Sanity: w^order == 1 and w^(order/2) != 1 (primitivity) for even order.
	if powMod(w, order, q) != 1 {
		return 0, fmt.Errorf("mod: internal error, root has wrong order")
	}
	if order%2 == 0 && powMod(w, order/2, q) == 1 {
		return 0, fmt.Errorf("mod: root of unity is not primitive")
	}
	return w, nil
}
