package mod

import "math/bits"

// Folding reduction for low-Hamming-weight moduli q = 2^e2 + 2^e1 + 1:
// the DSP-free datapath alternative the paper's §IV-A.3 trades against.
// Using 2^e2 ≡ -(2^e1 + 1) (mod q), the high bits of a value fold into
// the low bits with shifts and subtractions until the magnitude is small
// enough for a final correction.

// foldOnce reduces the magnitude of a signed accumulator by folding the
// bits above e2: v = lo + hi·2^e2 ≡ lo - hi·(2^e1 + 1).
func (m Modulus) foldOnce(v int64) int64 {
	hi := v >> m.E2 // arithmetic shift: floors for negatives
	lo := v - hi<<m.E2
	return lo - hi<<m.E1 - hi
}

// FoldReduce128 reduces hi·2^64 + lo modulo a low-Hamming-weight modulus
// using only shifts, additions and one final small correction — no
// multiplier at all. It panics on moduli without the special form.
func (m Modulus) FoldReduce128(hi, lo uint64) uint64 {
	if !m.LowHW {
		panic("mod: FoldReduce128 on a modulus without low-Hamming-weight form")
	}
	// Horner over 2^step with ≡-substitution folding: consume the 128-bit
	// input in `step`-bit chunks from the top, keeping a signed
	// accumulator small by folding until it sits below 2^(e2+2). The
	// chunk width is capped so the pre-fold magnitude stays inside int64:
	// |acc|·2^step + chunk < 2^(e2+2+step) + 2^step ≤ 2^62 + 2^62.
	step := int(m.E2)
	if lim := 62 - int(m.E2) - 2; step > lim {
		step = lim
	}
	if step < 1 {
		step = 1
	}
	bound := int64(1) << (m.E2 + 2)
	var acc int64
	for pos := 128; pos > 0; pos -= step {
		chunkBits := step
		if pos < chunkBits {
			chunkBits = pos
		}
		shift := pos - chunkBits
		var chunk uint64
		switch {
		case shift >= 64:
			chunk = (hi >> (shift - 64)) & (1<<chunkBits - 1)
		case shift+chunkBits <= 64:
			chunk = (lo >> shift) & (1<<chunkBits - 1)
		default:
			chunk = (lo>>shift | hi<<(64-shift)) & (1<<chunkBits - 1)
		}
		acc = acc<<chunkBits + int64(chunk)
		// Each fold contracts |acc| by at least 3/4 above the bound
		// (e1 ≤ e2-1), so this terminates quickly.
		for acc >= bound || acc <= -bound {
			acc = m.foldOnce(acc)
		}
	}
	// Final correction: acc is within a few multiples of q.
	r := acc % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// MulFold multiplies two reduced residues using the folding reduction.
func (m Modulus) MulFold(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.FoldReduce128(hi, lo)
}
