package mod

// The CHAM parameter set (§II-F, §IV-A.3): three prime moduli with exactly
// three non-zero bits each, all congruent to 1 modulo 2N for N = 4096, so
// that both the negacyclic NTT and the shift-add reduction datapath apply.
const (
	// ChamQ0 is the first 35-bit ciphertext modulus, 2^34 + 2^27 + 1.
	ChamQ0 = 1<<34 + 1<<27 + 1
	// ChamQ1 is the second 35-bit ciphertext modulus, 2^34 + 2^19 + 1.
	ChamQ1 = 1<<34 + 1<<19 + 1
	// ChamP is the 39-bit special (key-switching) modulus, 2^38 + 2^23 + 1.
	ChamP = 1<<38 + 1<<23 + 1
)

// ChamModuli returns the paper's moduli in RNS order {q0, q1, p}.
func ChamModuli() []uint64 { return []uint64{ChamQ0, ChamQ1, ChamP} }
