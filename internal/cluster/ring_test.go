package cluster

import (
	"fmt"
	"testing"
)

func testRing(tb testing.TB, n, vnodes int) *Ring {
	tb.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%d:9000", i)
	}
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// checkPartition asserts the shard router's core invariant: Assign
// splits tiles 0..tiles-1 across the nodes with no tile dropped, no tile
// duplicated, and every per-node list strictly ascending.
func checkPartition(tb testing.TB, r *Ring, id [32]byte, tiles int) {
	tb.Helper()
	asg := r.Assign(id, tiles)
	if len(asg) != len(r.Nodes()) {
		tb.Fatalf("assignment has %d node lists, ring has %d nodes", len(asg), len(r.Nodes()))
	}
	seen := make([]bool, tiles)
	for ni, list := range asg {
		for i, t := range list {
			if i > 0 && list[i-1] >= t {
				tb.Fatalf("node %d tile list not strictly ascending at %d: %v", ni, i, list)
			}
			if int(t) >= tiles {
				tb.Fatalf("node %d assigned out-of-range tile %d (matrix has %d)", ni, t, tiles)
			}
			if seen[t] {
				tb.Fatalf("tile %d assigned to more than one node", t)
			}
			seen[t] = true
			if own := r.Owner(TileKey(id, t)); own != ni {
				tb.Fatalf("tile %d assigned to node %d but owned by %d", t, ni, own)
			}
		}
	}
	for t, ok := range seen {
		if !ok {
			tb.Fatalf("tile %d dropped by the assignment", t)
		}
	}
}

func TestRingPartition(t *testing.T) {
	id := TileKey([32]byte{1, 2, 3}, 7)
	for _, nodes := range []int{1, 2, 3, 4, 7} {
		for _, tiles := range []int{0, 1, 2, 8, 128, 1000} {
			checkPartition(t, testRing(t, nodes, 0), id, tiles)
		}
	}
}

// TestRingDeterministic pins that two independently built rings compute
// the same shard map — coordinators share placement with no coordination.
func TestRingDeterministic(t *testing.T) {
	a, b := testRing(t, 4, 0), testRing(t, 4, 0)
	id := TileKey([32]byte{9}, 0)
	for tiles := 0; tiles < 64; tiles++ {
		if a.Owner(TileKey(id, uint32(tiles))) != b.Owner(TileKey(id, uint32(tiles))) {
			t.Fatalf("tile %d owner differs between identical rings", tiles)
		}
	}
}

// TestRingStability pins consistent hashing's point: adding a node moves
// only a fraction of tiles, it does not reshuffle the map.
func TestRingStability(t *testing.T) {
	id := TileKey([32]byte{42}, 1)
	const tiles = 1024
	old := testRing(t, 4, 0)
	grown, err := NewRing(append(append([]string(nil), old.Nodes()...), "node-joined:9000"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for ti := 0; ti < tiles; ti++ {
		key := TileKey(id, uint32(ti))
		was, now := old.Owner(key), grown.Owner(key)
		if now == len(old.Nodes()) {
			continue // moved to the joiner, as it must for its share
		}
		if was != now {
			moved++
		}
	}
	// Tiles not claimed by the joiner should essentially never change
	// owner; allow a little slack for vnode boundary effects.
	if moved > tiles/20 {
		t.Fatalf("%d of %d tiles moved between surviving nodes; consistent hashing should move ~0", moved, tiles)
	}
}

func TestReplicas(t *testing.T) {
	r := testRing(t, 5, 0)
	key := TileKey([32]byte{3}, 11)
	for n := 1; n <= 7; n++ {
		reps := r.Replicas(key, n)
		want := n
		if want > 5 {
			want = 5
		}
		if len(reps) != want {
			t.Fatalf("Replicas(%d) returned %d nodes, want %d", n, len(reps), want)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("Replicas[0] = %d, owner is %d", reps[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, ni := range reps {
			if ni < 0 || ni >= 5 || seen[ni] {
				t.Fatalf("replica list %v is not distinct in-range nodes", reps)
			}
			seen[ni] = true
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// FuzzShardRouter drives the partition invariant with arbitrary cluster
// shapes and matrix identities: the router must never drop or duplicate
// a tile, whatever the ring geometry.
func FuzzShardRouter(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint16(1), []byte("m"))
	f.Add(uint8(3), uint8(16), uint16(77), []byte("matrix-a"))
	f.Add(uint8(8), uint8(64), uint16(512), []byte{0xff, 0x00, 0x11})
	f.Fuzz(func(t *testing.T, nodes, vnodes uint8, tiles uint16, idSeed []byte) {
		nn := int(nodes)%8 + 1
		r := testRing(t, nn, int(vnodes)%64+1)
		var id [32]byte
		copy(id[:], idSeed)
		nt := int(tiles) % 1500
		checkPartition(t, r, id, nt)

		// Replica lists stay distinct and owner-first for every tile.
		for _, probe := range []uint32{0, uint32(nt / 2), uint32(nt)} {
			key := TileKey(id, probe)
			reps := r.Replicas(key, nn)
			if len(reps) != nn {
				t.Fatalf("Replicas covers %d of %d nodes", len(reps), nn)
			}
			if reps[0] != r.Owner(key) {
				t.Fatalf("replica 0 is %d, owner is %d", reps[0], r.Owner(key))
			}
			seen := map[int]bool{}
			for _, ni := range reps {
				if seen[ni] {
					t.Fatalf("replica list %v repeats node %d", reps, ni)
				}
				seen[ni] = true
			}
		}
	})
}
