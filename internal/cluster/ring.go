// Package cluster is the horizontal tier over chamserve: a coordinator
// that shards each registered matrix's row tiles across N nodes with a
// consistent-hash ring, scatters tile-subset jobs, gathers the packed
// ciphertexts back into the exact single-node result, and rides out
// stragglers and dead shards with hedged retries and a re-scatter pass
// over the replicated registry.
//
// Row tiles are the sharding unit because they are the packing unit: one
// packed RLWE ciphertext per tile of up to N rows, each computed
// independently, so a gather that places tile i's ciphertext at index i
// is bit-identical to a single node running the whole matrix. That
// gather-merge invariant is what the cluster test harness pins down
// against internal/core and internal/ref.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points
// per node keeps the expected per-node load within a few percent of even
// for small clusters without making ring construction noticeable.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	h    uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring over named nodes. Extending
// the cluster builds a new Ring (NewRing), so lookups never lock.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual points per node (0 selects
// DefaultVNodes). Node names must be unique and non-empty.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for ni, name := range nodes {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate node %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			var buf [8]byte
			binary.LittleEndian.PutUint32(buf[0:], uint32(v))
			binary.LittleEndian.PutUint32(buf[4:], uint32(len(name)))
			h := sha256.Sum256(append(buf[:], name...))
			r.points = append(r.points, ringPoint{h: binary.LittleEndian.Uint64(h[:8]), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node // total order even on hash ties
	})
	return r, nil
}

// Nodes returns the node names (do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// TileKey names one row tile of one matrix: the SHA-256 of the matrix's
// content hash concatenated with the little-endian tile index. The matrix
// ID is already the wire layer's canonical content hash, so the shard map
// is a pure function of matrix content — every coordinator computes the
// same placement with no agreement protocol.
func TileKey(id [32]byte, tile uint32) [32]byte {
	var buf [36]byte
	copy(buf[:32], id[:])
	binary.LittleEndian.PutUint32(buf[32:], tile)
	return sha256.Sum256(buf[:])
}

// owner returns the index of the first ring point at or after the key's
// hash (wrapping), i.e. the primary owner.
func (r *Ring) ownerPoint(key [32]byte) int {
	h := binary.LittleEndian.Uint64(key[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node index that owns a key.
func (r *Ring) Owner(key [32]byte) int {
	return r.points[r.ownerPoint(key)].node
}

// Replicas returns up to n distinct node indices for a key: the owner
// first, then the next distinct nodes walking the ring — the attempt
// order for hedged scatter legs and failover.
func (r *Ring) Replicas(key [32]byte, n int) []int {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		n = 1
	}
	out := make([]int, 0, n)
	seen := make([]bool, len(r.nodes))
	for i, start := 0, r.ownerPoint(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Assign partitions a matrix's tiles across the nodes: element k of the
// result is node k's strictly ascending tile list. Every tile lands on
// exactly one node (the partition invariant FuzzShardRouter enforces).
func (r *Ring) Assign(id [32]byte, tiles int) [][]uint32 {
	out := make([][]uint32, len(r.nodes))
	for t := 0; t < tiles; t++ {
		n := r.Owner(TileKey(id, uint32(t)))
		out[n] = append(out[n], uint32(t))
	}
	return out
}
