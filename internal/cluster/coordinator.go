package cluster

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/lwe"
	"cham/internal/obs"
	"cham/internal/obs/trace"
	"cham/internal/rlwe"
	"cham/internal/wire"
)

// Config shapes a Coordinator. Zero values select defaults.
type Config struct {
	// Params must match every node's parameter set (required).
	Params bfv.Params
	// Nodes are the shard addresses (at least one required). Every node
	// should run chamserve with LazyTiles so any node can take over any
	// tile after a failure.
	Nodes []string
	// VNodes is the virtual-node count per node (default DefaultVNodes).
	VNodes int
	// Replicas bounds hedged attempts per tile group during the scatter
	// pass: the owner plus Replicas-1 fallback nodes. Default 2, clamped
	// to the cluster size. The re-scatter pass may still visit every node.
	Replicas int
	// HedgeDelay is how long a scatter leg waits on its current attempt
	// before launching the next replica in parallel (straggler cover).
	// Hard failures fail over immediately regardless. Default 50ms.
	HedgeDelay time.Duration

	// Per-node client knobs, passed through to client.Dial.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// NodeRetries is each node client's internal retry budget. Default 0
	// (disabled): the cluster owns failover — hedging and re-scatter move
	// work to another node faster than in-place retries against a dead one.
	NodeRetries int
	MaxFrame    uint32

	// Log receives the coordinator's structured logs (scatter records at
	// Debug, membership at Info; sampled requests carry their trace_id).
	// Default: discard.
	Log *slog.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Params.R == nil {
		return c, fmt.Errorf("cluster: Config.Params is required")
	}
	if len(c.Nodes) == 0 {
		return c, fmt.Errorf("cluster: Config.Nodes is required")
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c, nil
}

// matrixState is the coordinator's replicated-registry cache entry.
type matrixState struct {
	handle  wire.MatrixHandle
	payload []byte // canonical RegisterMatrix encoding, for warm-up pushes
}

// Coordinator owns the shard map: it broadcasts control-plane operations
// (keys, matrix registration) to every node, scatters each apply's row
// tiles along the consistent-hash ring, and gathers the packed
// ciphertexts back into the exact single-node result.
type Coordinator struct {
	cfg Config

	mu       sync.RWMutex
	ring     *Ring
	clients  map[string]*client.Client
	keys     []byte // canonical SetupKeys payload ("" until SetupKeys)
	keyHash  [32]byte
	matrices map[[32]byte]matrixState
}

// New builds a coordinator. Node connections are dialed lazily.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:      cfg,
		ring:     ring,
		clients:  map[string]*client.Client{},
		matrices: map[[32]byte]matrixState{},
	}
	for _, addr := range cfg.Nodes {
		cl, err := co.dialNode(addr)
		if err != nil {
			co.Close()
			return nil, err
		}
		co.clients[addr] = cl
	}
	mNodes.Set(float64(len(cfg.Nodes)))
	return co, nil
}

func (co *Coordinator) dialNode(addr string) (*client.Client, error) {
	retries := co.cfg.NodeRetries
	if retries <= 0 {
		retries = -1 // client treats negative as "retries disabled"
	}
	return client.Dial(client.Config{
		Addr:           addr,
		Params:         co.cfg.Params,
		DialTimeout:    co.cfg.DialTimeout,
		RequestTimeout: co.cfg.RequestTimeout,
		MaxRetries:     retries,
		MaxFrame:       co.cfg.MaxFrame,
	})
}

// Close releases every node client.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, cl := range co.clients {
		cl.Close()
	}
	co.clients = map[string]*client.Client{}
}

// Nodes returns the current ring membership.
func (co *Coordinator) Nodes() []string {
	co.mu.RLock()
	defer co.mu.RUnlock()
	return append([]string(nil), co.ring.Nodes()...)
}

// snapshot captures the ring and client set for one lock-free operation.
func (co *Coordinator) snapshot() (*Ring, []*client.Client) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	r := co.ring
	cls := make([]*client.Client, len(r.Nodes()))
	for i, addr := range r.Nodes() {
		cls[i] = co.clients[addr]
	}
	return r, cls
}

// SetupKeys installs the packing-key set on every node and caches the
// canonical payload for warm-up transfers. All nodes must accept.
func (co *Coordinator) SetupKeys(keys *lwe.PackingKeys) ([32]byte, error) {
	payload := wire.EncodeSetupKeys(co.cfg.Params.R, keys)
	_, cls := co.snapshot()
	var hash [32]byte
	for i, cl := range cls {
		h, err := cl.SetupKeys(keys)
		if err != nil {
			return [32]byte{}, fmt.Errorf("cluster: setup keys on node %d: %w", i, err)
		}
		if i > 0 && h != hash {
			return [32]byte{}, fmt.Errorf("cluster: node %d reports key hash mismatch", i)
		}
		hash = h
	}
	co.mu.Lock()
	co.keys = payload
	co.keyHash = hash
	co.mu.Unlock()
	return hash, nil
}

// RegisterMatrix registers a matrix on every node and caches the
// canonical payload. With LazyTiles nodes this is cheap — each node
// validates and retains the cleartext but prepares no tiles until the
// scatter routes work at it.
func (co *Coordinator) RegisterMatrix(A [][]uint64) (wire.MatrixHandle, error) {
	payload, err := wire.EncodeRegisterMatrix(A)
	if err != nil {
		return wire.MatrixHandle{}, err
	}
	_, cls := co.snapshot()
	var handle wire.MatrixHandle
	for i, cl := range cls {
		h, err := cl.RegisterMatrix(A)
		if err != nil {
			return wire.MatrixHandle{}, fmt.Errorf("cluster: register on node %d: %w", i, err)
		}
		if i > 0 && h != handle {
			return wire.MatrixHandle{}, fmt.Errorf("cluster: node %d reports a different handle", i)
		}
		handle = h
	}
	co.mu.Lock()
	co.matrices[handle.ID] = matrixState{handle: handle, payload: payload}
	co.mu.Unlock()
	return handle, nil
}

// Handle returns the cached handle for a registered matrix.
func (co *Coordinator) Handle(id [32]byte) (wire.MatrixHandle, bool) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	ms, ok := co.matrices[id]
	return ms.handle, ok
}

// groupResult is one scatter leg's outcome.
type groupResult struct {
	node  int // owner node index (the group key)
	tiles []uint32
	res   wire.TileResult
	err   error
}

// Apply scatters a registered matrix's row tiles across the ring,
// gathers the per-tile packed ciphertexts, and returns a Result
// bit-identical to a single node serving the whole matrix. Dead or
// straggling shards are covered by hedged replicas; tiles still missing
// after a full re-scatter produce a *DegradedError.
func (co *Coordinator) Apply(id [32]byte, vec []*rlwe.Ciphertext) (wire.Result, error) {
	return co.ApplyTraced(trace.Context{}, id, vec)
}

// ApplyTraced is Apply under a trace context: the scatter, every hedged
// per-shard RPC, and the gather each open a span under tc, so a merged
// trace shows which shard was the critical path. A zero context is
// exactly Apply.
func (co *Coordinator) ApplyTraced(tc trace.Context, id [32]byte, vec []*rlwe.Ciphertext) (wire.Result, error) {
	handle, ok := co.Handle(id)
	if !ok {
		return wire.Result{}, wire.Errf(wire.CodeUnknownMatrix, "matrix not registered with the cluster")
	}
	ring, cls := co.snapshot()
	if len(cls) == 0 {
		return wire.Result{}, fmt.Errorf("cluster: coordinator closed")
	}
	sp := obs.StartSpan(mGatherSec)
	defer sp.End()
	mScatters.Inc()

	tiles := int(handle.Tiles)
	packed := make([]*rlwe.Ciphertext, tiles)
	asg := ring.Assign(id, tiles)

	// Scatter pass: one hedged leg per owner with a non-empty tile list.
	// Attempt k of a leg targets the k-th distinct node walking the ring
	// from the group's owner, so failover load spreads the same way
	// ownership does.
	sctx, ssp := trace.Start(tc, "coordinator", "scatter")
	results := make(chan groupResult)
	legs := 0
	for node, list := range asg {
		if len(list) == 0 {
			continue
		}
		legs++
		go func(node int, list []uint32) {
			order := ring.Replicas(TileKey(id, list[0]), len(cls))
			n := co.cfg.Replicas
			if n > len(order) {
				n = len(order)
			}
			res, _, launched, err := client.Hedged(n, co.cfg.HedgeDelay, func(i int) (wire.TileResult, error) {
				lctx, lsp := trace.Start(sctx, "coordinator", fmt.Sprintf("shard:%d", order[i]))
				if lsp.Active() {
					lsp.Annotate(fmt.Sprintf("%d tiles", len(list)))
				}
				r, e := cls[order[i]].TileApplyTraced(lctx, id, list, vec)
				lsp.EndErr(e)
				if e != nil {
					mShardErr.Inc()
				} else {
					mShardOK.Inc()
				}
				return r, e
			})
			if launched > 1 {
				mHedges.Add(uint64(launched - 1))
			}
			results <- groupResult{node: node, tiles: list, res: res, err: err}
		}(node, list)
	}

	var missing []uint32
	var lastErr error
	for i := 0; i < legs; i++ {
		g := <-results
		if g.err != nil {
			missing = append(missing, g.tiles...)
			lastErr = g.err
			continue
		}
		for k, t := range g.res.Tiles {
			packed[t] = g.res.Packed[k]
		}
	}
	ssp.End()

	// Re-scatter pass: any node can serve any tile (replicated registry +
	// lazy prepare), so walk the whole ring once more for the leftovers.
	gctx, gsp := trace.Start(tc, "coordinator", "gather")
	defer gsp.End()
	if len(missing) > 0 {
		sortTiles(missing)
		mRescatters.Inc()
		co.cfg.Log.Debug("re-scatter",
			"trace_id", traceLabel(tc), "missing", len(missing))
		order := ring.Replicas(TileKey(id, missing[0]), len(cls))
		for _, ni := range order {
			lctx, lsp := trace.Start(gctx, "coordinator", fmt.Sprintf("rescatter:%d", ni))
			res, err := cls[ni].TileApplyTraced(lctx, id, missing, vec)
			lsp.EndErr(err)
			if err != nil {
				mShardErr.Inc()
				lastErr = err
				continue
			}
			mShardOK.Inc()
			for k, t := range res.Tiles {
				packed[t] = res.Packed[k]
			}
			missing = nil
			break
		}
	}

	if len(missing) > 0 {
		mDegraded.Inc()
		co.cfg.Log.Warn("degraded scatter",
			"trace_id", traceLabel(tc), "missing", len(missing), "nodes", len(cls))
		return wire.Result{}, &DegradedError{Missing: missing, Nodes: len(cls), Last: lastErr}
	}
	for t, ct := range packed {
		if ct == nil {
			return wire.Result{}, fmt.Errorf("cluster: gather left tile %d empty", t)
		}
	}
	return wire.Result{M: handle.Rows, N: uint32(co.cfg.Params.R.N), Packed: packed}, nil
}

// traceLabel renders a context's trace ID for logs ("-" when unsampled).
func traceLabel(tc trace.Context) string {
	if !tc.Sampled() {
		return "-"
	}
	return tc.Trace.String()
}

// sortTiles orders a small tile list ascending (insertion sort — the
// wire layer requires strictly ascending tile lists).
func sortTiles(ts []uint32) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Join adds a node to the ring: replicate the registry onto it (pulled
// from a live node when possible, the coordinator's cache otherwise),
// warm the tiles the new ring assigns to it, then commit the membership
// change. Applies racing a Join see either ring, both of which cover
// every tile.
func (co *Coordinator) Join(addr string) error {
	co.mu.RLock()
	_, exists := co.clients[addr]
	oldNodes := append([]string(nil), co.ring.Nodes()...)
	keys := co.keys
	mats := make([]matrixState, 0, len(co.matrices))
	for _, ms := range co.matrices {
		mats = append(mats, ms)
	}
	co.mu.RUnlock()
	if exists {
		return fmt.Errorf("cluster: node %s already in the ring", addr)
	}

	// Prefer a live node's registry over the local cache: the pull path is
	// what a coordinator recovering from restart would rely on.
	_, cls := co.snapshot()
	for _, cl := range cls {
		st, err := cl.RegistryPull()
		if err != nil {
			continue
		}
		if len(st.Keys) > 0 {
			keys = st.Keys
		}
		if len(st.Matrices) > 0 {
			payloads := make([]matrixState, 0, len(st.Matrices))
			for _, p := range st.Matrices {
				payloads = append(payloads, matrixState{payload: p})
			}
			// Keep the cached handles; the pull only refreshes payload bytes.
			for i := range payloads {
				for _, ms := range mats {
					if string(ms.payload) == string(payloads[i].payload) {
						payloads[i].handle = ms.handle
					}
				}
			}
			mats = payloads
		}
		break
	}

	joiner, err := co.dialNode(addr)
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(mats))
	for i, ms := range mats {
		payloads[i] = ms.payload
	}
	if len(keys) > 0 || len(payloads) > 0 {
		if _, err := joiner.RegistryPush(keys, payloads); err != nil {
			joiner.Close()
			return fmt.Errorf("cluster: warm-up push to %s: %w", addr, err)
		}
	}

	newRing, err := NewRing(append(oldNodes, addr), co.cfg.VNodes)
	if err != nil {
		joiner.Close()
		return err
	}

	// Warm the tiles the new ring hands to the joiner so its first real
	// request doesn't eat the lazy-prepare cost.
	joinerIdx := len(oldNodes)
	for _, ms := range mats {
		if ms.handle.Tiles == 0 {
			continue
		}
		owned := newRing.Assign(ms.handle.ID, int(ms.handle.Tiles))[joinerIdx]
		if len(owned) == 0 {
			continue
		}
		if err := joiner.WarmTiles(ms.handle.ID, owned); err != nil {
			joiner.Close()
			return fmt.Errorf("cluster: warm tiles on %s: %w", addr, err)
		}
	}

	co.mu.Lock()
	co.ring = newRing
	co.clients[addr] = joiner
	co.mu.Unlock()
	mJoins.Inc()
	mNodes.Set(float64(len(newRing.Nodes())))
	co.cfg.Log.Info("node joined", "addr", addr, "nodes", len(newRing.Nodes()))
	return nil
}
