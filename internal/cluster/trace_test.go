package cluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/obs/trace"
	rt "cham/internal/runtime"
	"cham/internal/server"
	"cham/internal/testutil"
)

// TestClusterTraceEndToEnd is the tracing acceptance test (run under
// -race in tier 1): one sampled apply through client → gateway →
// coordinator → 2 shards must land in the span ring as ONE trace whose
// tree covers the gateway, both shard legs, the shard servers' queue /
// dispatch / serve spans, the runtime card job, and the kernel stages.
// Everything runs in-process, so the single ring already holds the
// "merged" view chamtrace assembles from many nodes.
func TestClusterTraceEndToEnd(t *testing.T) {
	// The rate must be up before anything dials: connections negotiate
	// the traced frame version only while sampling is enabled.
	trace.Reset()
	trace.SetSampleRate(1)
	defer trace.SetSampleRate(0)
	defer trace.Reset()

	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}

	// Cards on the shards so the trace includes runtime job spans.
	co, _ := newCluster(t, p, 2, func(c *server.Config) {
		card, err := rt.New(rt.NewDevice(1, 50*time.Microsecond, rt.FaultPlan{}))
		if err != nil {
			t.Fatal(err)
		}
		c.Card = card
	}, nil)
	if _, err := co.SetupKeys(keys); err != nil {
		t.Fatal(err)
	}
	// 4096 rows at N=32 → 128 tiles, so the consistent-hash ring puts
	// tiles on both shards and the scatter opens both legs.
	A := testutil.Matrix(rng, 4096, 32, p.T.Q)
	handle, err := co.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}

	gw, err := NewGateway(GatewayConfig{Coordinator: co})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	})

	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: p})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	tc, sp := trace.Root("test-client", "apply")
	if !tc.Sampled() {
		t.Fatal("rate-1 sampler did not admit the request")
	}
	res, err := cl.ApplyTraced(tc, handle.ID, ctV)
	sp.EndErr(err)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packed) != 128 {
		t.Fatalf("gathered %d tiles, want 128", len(res.Packed))
	}

	recs := trace.TraceRecords(tc.Trace)
	if len(recs) == 0 {
		t.Fatal("no spans recorded for the sampled trace")
	}
	type key struct{ service, name string }
	seen := map[key]int{}
	kernelStages := 0
	for _, r := range recs {
		if r.Trace != tc.Trace {
			t.Fatalf("span %s/%s carries trace %s, want %s", r.Service, r.Name, r.Trace, tc.Trace)
		}
		seen[key{r.Service, r.Name}]++
		if r.Service == "kernel" && strings.HasPrefix(r.Name, "stage:") {
			kernelStages++
		}
	}
	for _, want := range []key{
		{"test-client", "apply"},
		{"client", "send:Apply"},
		{"gateway", "apply"},
		{"coordinator", "scatter"},
		{"coordinator", "shard:0"},
		{"coordinator", "shard:1"},
		{"coordinator", "gather"},
		{"server", "queue"},
		{"server", "dispatch"},
		{"server", "serve"},
		{"runtime", "job"},
	} {
		if seen[want] == 0 {
			t.Errorf("merged trace is missing the %s/%s span (spans: %v)", want.service, want.name, seen)
		}
	}
	// Both shards ran tiles, so queue/serve spans appear at least twice.
	if n := seen[key{"server", "serve"}]; n < 2 {
		t.Errorf("only %d server serve span(s); both shards should have served tiles", n)
	}
	if kernelStages == 0 {
		t.Error("no kernel stage spans bridged from the StageClock")
	}

	// The text renderer must produce one tree with a critical path.
	var sb strings.Builder
	if err := trace.WriteText(&sb, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "critical path") {
		t.Fatalf("text export lacks a critical path:\n%s", sb.String())
	}
}
