package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/ref"
	"cham/internal/rlwe"
	rt "cham/internal/runtime"
	"cham/internal/server"
	"cham/internal/testutil"
	"cham/internal/wire"
)

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// node is one shard: a chamserve instance in lazy-tile mode with a kill
// switch for fault injection.
type node struct {
	srv  *server.Server
	addr string
	kill func() // hard stop: close listener and connections immediately
}

func startNode(tb testing.TB, p bfv.Params, mut func(*server.Config)) *node {
	tb.Helper()
	cfg := server.Config{Params: p, LazyTiles: true, Linger: time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go s.Serve(ln)
	var once sync.Once
	kill := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			s.Shutdown(ctx)
		})
	}
	tb.Cleanup(kill)
	return &node{srv: s, addr: ln.Addr().String(), kill: kill}
}

// newCluster spins up n shard nodes plus a coordinator over them.
func newCluster(tb testing.TB, p bfv.Params, n int, mut func(*server.Config), cmut func(*Config)) (*Coordinator, []*node) {
	tb.Helper()
	nodes := make([]*node, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = startNode(tb, p, mut)
		addrs[i] = nodes[i].addr
	}
	cfg := Config{
		Params:         p,
		Nodes:          addrs,
		HedgeDelay:     20 * time.Millisecond,
		DialTimeout:    2 * time.Second,
		RequestTimeout: 30 * time.Second,
	}
	if cmut != nil {
		cmut(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(co.Close)
	return co, nodes
}

func sameCiphertext(a, b *rlwe.Ciphertext) bool {
	if a.B.Levels() != b.B.Levels() || a.A.Levels() != b.A.Levels() {
		return false
	}
	for l := 0; l < a.B.Levels(); l++ {
		for i := range a.B.Coeffs[l] {
			if a.B.Coeffs[l][i] != b.B.Coeffs[l][i] {
				return false
			}
		}
	}
	for l := 0; l < a.A.Levels(); l++ {
		for i := range a.A.Coeffs[l] {
			if a.A.Coeffs[l][i] != b.A.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

// checkResult asserts a gathered cluster result is bit-identical to the
// single-node in-process result and decrypts to the cleartext product.
func checkResult(tb testing.TB, p bfv.Params, got wire.Result, want *core.Result, A [][]uint64, v []uint64, sk *rlwe.SecretKey) {
	tb.Helper()
	if int(got.M) != want.M || int(got.N) != want.N {
		tb.Fatalf("result header %dx%d, want %dx%d", got.M, got.N, want.M, want.N)
	}
	if len(got.Packed) != len(want.Packed) {
		tb.Fatalf("result carries %d tiles, want %d", len(got.Packed), len(want.Packed))
	}
	for i := range got.Packed {
		if !sameCiphertext(got.Packed[i], want.Packed[i]) {
			tb.Fatalf("tile %d not bit-identical to the single-node result", i)
		}
	}
	dec := core.DecryptResult(p, &core.Result{M: int(got.M), N: int(got.N), Packed: got.Packed}, sk)
	plain := core.PlainMatVec(p, A, v)
	for i := range plain {
		if dec[i] != plain[i] {
			tb.Fatalf("row %d decrypts to %d, want %d", i, dec[i], plain[i])
		}
	}
}

// TestClusterEndToEnd is the tentpole acceptance test: 1-, 2- and 4-shard
// loopback clusters must gather results bit-identical to a single
// in-process evaluator — which is itself cross-checked against the
// independent reference pipeline — at both serial and parallel node
// settings, for a one-tile-short and a many-tile matrix.
func TestClusterEndToEnd(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	refKeys := ref.Keys(p, keys)

	workerSet := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerSet = append(workerSet, n)
	}

	for _, rows := range []int{256, 4096} {
		A := testutil.Matrix(rng, rows, 32, p.T.Q)
		pm, err := ev.Prepare(A)
		if err != nil {
			t.Fatal(err)
		}
		v := testutil.Vector(rng, 32, p.T.Q)
		ctV := core.EncryptVector(p, rng, sk, v)
		want, err := pm.Apply(ctV)
		if err != nil {
			t.Fatal(err)
		}
		// Anchor the single-node result against the independent reference
		// before using it as the cluster's ground truth.
		tr, err := ref.HMVP(p, A, ctV, refKeys)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.MatchesResult(p, want.Packed); err != nil {
			t.Fatalf("single-node result disagrees with reference: %v", err)
		}

		for _, shards := range []int{1, 2, 4} {
			for _, workers := range workerSet {
				t.Run(fmt.Sprintf("rows=%d/shards=%d/workers=%d", rows, shards, workers), func(t *testing.T) {
					co, _ := newCluster(t, p, shards, func(c *server.Config) {
						c.Workers = workers
						c.EvalWorkers = workers
					}, nil)
					if _, err := co.SetupKeys(keys); err != nil {
						t.Fatal(err)
					}
					handle, err := co.RegisterMatrix(A)
					if err != nil {
						t.Fatal(err)
					}
					if handle.Tiles != uint32((rows+p.R.N-1)/p.R.N) {
						t.Fatalf("handle reports %d tiles for %d rows", handle.Tiles, rows)
					}
					got, err := co.Apply(handle.ID, ctV)
					if err != nil {
						t.Fatal(err)
					}
					checkResult(t, p, got, want, A, v, sk)
				})
			}
		}
	}
}

// TestClusterConcurrentApplies drives parallel applies through a 2-shard
// cluster — every gathered result must stay bit-identical while the
// shards batch and interleave requests.
func TestClusterConcurrentApplies(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 96, 32, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	co, _ := newCluster(t, p, 2, nil, nil)
	if _, err := co.SetupKeys(keys); err != nil {
		t.Fatal(err)
	}
	handle, err := co.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(testutil.Seed(t) + int64(c)))
			v := testutil.Vector(grng, 32, p.T.Q)
			ctV := core.EncryptVector(p, grng, sk, v)
			want, err := pm.Apply(ctV)
			if err != nil {
				errs <- err
				return
			}
			got, err := co.Apply(handle.ID, ctV)
			if err != nil {
				errs <- fmt.Errorf("caller %d: %v", c, err)
				return
			}
			for i := range got.Packed {
				if !sameCiphertext(got.Packed[i], want.Packed[i]) {
					errs <- fmt.Errorf("caller %d: tile %d differs", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestClusterFaultInjection kills shards under load: one dead shard must
// be absorbed by hedged retries and the re-scatter pass (bit-identical
// results throughout), losing every shard must surface the typed
// degraded error, and a shard whose card hangs must recover through the
// runtime's RAS machinery without the cluster noticing.
func TestClusterFaultInjection(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 512, 32, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	want, err := pm.Apply(ctV)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("shard killed mid-batch", func(t *testing.T) {
		co, nodes := newCluster(t, p, 3, nil, func(c *Config) {
			c.HedgeDelay = 5 * time.Millisecond
		})
		if _, err := co.SetupKeys(keys); err != nil {
			t.Fatal(err)
		}
		handle, err := co.RegisterMatrix(A)
		if err != nil {
			t.Fatal(err)
		}
		// One clean pass so every node has seen traffic, then a volley with
		// a shard dying underneath it.
		got, err := co.Apply(handle.ID, ctV)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, p, got, want, A, v, sk)

		const volley = 6
		var wg sync.WaitGroup
		errs := make(chan error, volley)
		for i := 0; i < volley; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := co.Apply(handle.ID, ctV)
				if err != nil {
					errs <- fmt.Errorf("apply %d during shard death: %v", i, err)
					return
				}
				for ti := range got.Packed {
					if !sameCiphertext(got.Packed[ti], want.Packed[ti]) {
						errs <- fmt.Errorf("apply %d: tile %d differs after failover", i, ti)
						return
					}
				}
			}(i)
		}
		nodes[1].kill()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}

		// With the shard still dead, fresh applies must keep succeeding —
		// the survivors own every tile now.
		got, err = co.Apply(handle.ID, ctV)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, p, got, want, A, v, sk)
	})

	t.Run("quorum loss is a typed degraded error", func(t *testing.T) {
		co, nodes := newCluster(t, p, 2, nil, func(c *Config) {
			c.HedgeDelay = 2 * time.Millisecond
			c.DialTimeout = 200 * time.Millisecond
		})
		if _, err := co.SetupKeys(keys); err != nil {
			t.Fatal(err)
		}
		handle, err := co.RegisterMatrix(A)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			n.kill()
		}
		_, err = co.Apply(handle.ID, ctV)
		var de *DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("apply with every shard dead returned %v, want *DegradedError", err)
		}
		if len(de.Missing) == 0 || de.Nodes != 2 {
			t.Fatalf("degraded error reports %d missing tiles across %d nodes", len(de.Missing), de.Nodes)
		}
		we := de.Wire()
		if we.Code != wire.CodeDegraded {
			t.Fatalf("degraded error maps to wire code %d, want CodeDegraded", we.Code)
		}
		if !we.Retryable() {
			t.Fatal("CodeDegraded must be retryable — a returning node clears it")
		}
	})

	t.Run("card hang recovers via RAS", func(t *testing.T) {
		// Shard 0's card hangs after its first job; the runtime's watchdog
		// must reset and replay without the coordinator ever failing over.
		hangCard, err := rt.New(rt.NewDevice(1, 100*time.Microsecond, rt.FaultPlan{HangAfterJobs: 1}))
		if err != nil {
			t.Fatal(err)
		}
		hangCard.JobTimeout = 20 * time.Millisecond
		first := true
		co, _ := newCluster(t, p, 2, func(c *server.Config) {
			if first {
				c.Card = hangCard
				first = false
			}
		}, nil)
		if _, err := co.SetupKeys(keys); err != nil {
			t.Fatal(err)
		}
		handle, err := co.RegisterMatrix(A)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := co.Apply(handle.ID, ctV)
			if err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
			checkResult(t, p, got, want, A, v, sk)
		}
		if hangCard.Resets() == 0 {
			t.Fatal("the hung card was never reset — the RAS path did not run")
		}
	})
}

// TestClusterJoin grows a 1-shard cluster to 2: the joiner receives the
// replicated registry and warmed tiles, and results stay bit-identical
// across the membership change.
func TestClusterJoin(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 256, 32, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	want, err := pm.Apply(ctV)
	if err != nil {
		t.Fatal(err)
	}

	co, _ := newCluster(t, p, 1, nil, nil)
	if _, err := co.SetupKeys(keys); err != nil {
		t.Fatal(err)
	}
	handle, err := co.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Apply(handle.ID, ctV)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, p, got, want, A, v, sk)

	joiner := startNode(t, p, nil)
	if err := co.Join(joiner.addr); err != nil {
		t.Fatal(err)
	}
	if err := co.Join(joiner.addr); err == nil {
		t.Fatal("joining the same node twice was accepted")
	}
	if got := len(co.Nodes()); got != 2 {
		t.Fatalf("cluster has %d nodes after join, want 2", got)
	}
	// The joiner was warmed: the tiles the new ring hands it are already
	// prepared, so the first post-join apply pays no preparation.
	if joiner.srv.Matrices() != 1 {
		t.Fatalf("joiner holds %d matrices after warm-up, want 1", joiner.srv.Matrices())
	}
	got, err = co.Apply(handle.ID, ctV)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, p, got, want, A, v, sk)
}

// TestGatewayWireCompat runs an unmodified wire client against the
// cluster gateway: handshake, key setup, registration, apply and drain
// all behave like one big chamserve.
func TestGatewayWireCompat(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 96, 32, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	want, err := pm.Apply(ctV)
	if err != nil {
		t.Fatal(err)
	}

	co, _ := newCluster(t, p, 2, nil, nil)
	gw, err := NewGateway(GatewayConfig{Coordinator: co})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- gw.Serve(ln) }()

	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: p})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	hello, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Engines != 2 {
		t.Fatalf("gateway advertises %d engines, want the 2 shards", hello.Engines)
	}
	hash, err := cl.SetupKeys(keys)
	if err != nil {
		t.Fatal(err)
	}
	if want := wire.KeyHash(p.R, keys); hash != want {
		t.Fatalf("key hash %x, want %x", hash[:8], want[:8])
	}
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Apply(handle.ID, ctV)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, p, got, want, A, v, sk)
	if _, err := cl.Apply([32]byte{0xde, 0xad}, ctV); err == nil {
		t.Fatal("apply of an unregistered matrix succeeded")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("gateway still accepting after drain")
	}
}
