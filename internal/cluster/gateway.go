package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/obs"
	"cham/internal/obs/trace"
	"cham/internal/wire"
)

// GatewayConfig shapes a Gateway.
type GatewayConfig struct {
	// Coordinator owns the shard map (required).
	Coordinator *Coordinator
	// MaxFrame bounds one accepted wire frame. Default wire.DefaultMaxFrame.
	MaxFrame uint32
}

var mGatewayConns = obs.GetGauge("cham_cluster_gateway_connections",
	"Open client connections on the cluster gateway.")

// Gateway is the cluster's wire-compatible front door: it speaks the
// exact chamserve protocol (Hello/SetupKeys/RegisterMatrix/Apply/Ping),
// so an unmodified client sees one big server while the coordinator
// scatters the work across shards behind it. Control-plane messages are
// broadcast to every node; Apply is scatter/gather.
type Gateway struct {
	cfg GatewayConfig
	co  *Coordinator

	draining atomic.Bool
	reqWG    sync.WaitGroup

	ln     atomic.Pointer[net.Listener]
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewGateway builds a gateway over a coordinator.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Coordinator == nil {
		return nil, fmt.Errorf("cluster: GatewayConfig.Coordinator is required")
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	return &Gateway{cfg: cfg, co: cfg.Coordinator, conns: map[net.Conn]struct{}{}}, nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.Serve(ln)
}

// Serve accepts connections until the listener closes (via Shutdown).
func (g *Gateway) Serve(ln net.Listener) error {
	g.ln.Store(&ln)
	for {
		c, err := ln.Accept()
		if err != nil {
			if g.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		g.connMu.Lock()
		g.conns[c] = struct{}{}
		g.connMu.Unlock()
		mGatewayConns.Add(1)
		go g.handleConn(c)
	}
}

// Addr reports the bound listener address (nil before Serve).
func (g *Gateway) Addr() net.Addr {
	if p := g.ln.Load(); p != nil {
		return (*p).Addr()
	}
	return nil
}

// Shutdown drains: stop accepting, answer new applies with CodeDraining,
// finish in-flight scatters, then close remaining connections. The
// shard nodes are not shut down — they belong to their own processes.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	if p := g.ln.Load(); p != nil {
		(*p).Close()
	}
	done := make(chan struct{})
	go func() {
		g.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	g.connMu.Lock()
	for c := range g.conns {
		c.Close()
	}
	g.conns = map[net.Conn]struct{}{}
	g.connMu.Unlock()
	return err
}

// gwConn is one client connection. Requests are handled inline on the
// read goroutine — the coordinator's scatter already fans out per
// request, and cross-client concurrency comes from one goroutine per
// connection.
type gwConn struct {
	g     *Gateway
	c     net.Conn
	br    *bufio.Reader
	wmu   sync.Mutex
	hello bool
}

func (c *gwConn) send(t wire.MsgType, seq uint16, payload []byte) {
	buf := wire.AppendFrame(nil, t, seq, payload)
	c.wmu.Lock()
	c.c.Write(buf)
	c.wmu.Unlock()
}

func (c *gwConn) sendErr(seq uint16, e *wire.Error) {
	c.send(wire.MsgError, seq, e.Encode())
}

// wireErr maps a coordinator failure onto the typed wire vocabulary:
// degraded scatters become CodeDegraded, typed shard rejections pass
// through, anything else is internal.
func wireErr(err error) *wire.Error {
	var de *DegradedError
	if errors.As(err, &de) {
		return de.Wire()
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we
	}
	return wire.Errf(wire.CodeInternal, "%v", err)
}

func (g *Gateway) handleConn(nc net.Conn) {
	c := &gwConn{g: g, c: nc, br: bufio.NewReaderSize(nc, 64<<10)}
	defer func() {
		g.connMu.Lock()
		delete(g.conns, nc)
		g.connMu.Unlock()
		nc.Close()
		mGatewayConns.Add(-1)
	}()
	for {
		t, seq, th, payload, err := wire.ReadFrameAny(c.br, g.cfg.MaxFrame)
		if err != nil {
			return
		}
		tc := trace.Context{Trace: trace.TraceID(th.TraceID), Span: trace.SpanID(th.SpanID), Flags: th.Flags}
		if !c.hello && t != wire.MsgHello && t != wire.MsgPing {
			c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "handshake required before %v", t))
			continue
		}
		switch t {
		case wire.MsgHello:
			g.handleHello(c, seq, payload)
		case wire.MsgSetupKeys:
			g.handleSetupKeys(c, seq, payload)
		case wire.MsgRegisterMatrix:
			g.handleRegisterMatrix(c, seq, payload)
		case wire.MsgApply:
			g.handleApply(c, seq, tc, payload)
		case wire.MsgTraceHello:
			h, derr := wire.DecodeTraceHello(payload)
			if derr != nil {
				c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "trace hello: %v", derr))
				continue
			}
			v := uint8(wire.FrameVersionTraced)
			if h.MaxVersion < v {
				v = h.MaxVersion
			}
			c.send(wire.MsgTraceHelloOK, seq, wire.TraceHelloOK{Version: v}.Encode())
		case wire.MsgPing:
			c.send(wire.MsgPong, seq, payload)
		default:
			c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "unexpected message type %d at the gateway", t))
		}
	}
}

func (g *Gateway) handleHello(c *gwConn, seq uint16, payload []byte) {
	h, err := wire.DecodeHello(payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "hello: %v", err))
		return
	}
	want := wire.HelloFor(g.co.cfg.Params)
	if h != want {
		c.sendErr(seq, wire.Errf(wire.CodeParamsMismatch,
			"client params N=%d levels=%d/%d t=%d, cluster has N=%d levels=%d/%d t=%d",
			h.RingN, h.Levels, h.NormalLevels, h.T,
			want.RingN, want.Levels, want.NormalLevels, want.T))
		return
	}
	c.hello = true
	// Engines advertises cluster width; batching happens on the shards,
	// so the gateway itself reports MaxBatch 1.
	ok := wire.HelloOK{Hello: want, Engines: uint32(len(g.co.Nodes())), MaxBatch: 1}
	c.send(wire.MsgHelloOK, seq, ok.Encode())
}

func (g *Gateway) handleSetupKeys(c *gwConn, seq uint16, payload []byte) {
	keys, err := wire.DecodeSetupKeys(g.co.cfg.Params.R, payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "setup keys: %v", err))
		return
	}
	hash, err := g.co.SetupKeys(keys)
	if err != nil {
		c.sendErr(seq, wireErr(err))
		return
	}
	c.send(wire.MsgSetupKeysOK, seq, wire.SetupKeysOK{KeyHash: hash}.Encode())
}

func (g *Gateway) handleRegisterMatrix(c *gwConn, seq uint16, payload []byte) {
	A, err := wire.DecodeRegisterMatrix(g.co.cfg.Params.T.Q, payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "register matrix: %v", err))
		return
	}
	h, err := g.co.RegisterMatrix(A)
	if err != nil {
		c.sendErr(seq, wireErr(err))
		return
	}
	c.send(wire.MsgMatrixHandle, seq, h.Encode())
}

func (g *Gateway) handleApply(c *gwConn, seq uint16, tc trace.Context, payload []byte) {
	if g.draining.Load() {
		c.sendErr(seq, wire.Errf(wire.CodeDraining, "gateway is shutting down"))
		return
	}
	g.reqWG.Add(1)
	defer g.reqWG.Done()
	a, err := wire.DecodeApply(g.co.cfg.Params.R, payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "apply: %v", err))
		return
	}
	// The gateway is a trace edge: a request from a traced client keeps
	// its context; an untraced request may be sampled fresh here, so a
	// cluster fronting old clients still produces end-to-end traces.
	t0 := time.Now()
	var gsp trace.Span
	if tc.Sampled() {
		tc, gsp = trace.Start(tc, "gateway", "apply")
	} else {
		tc, gsp = trace.Root("gateway", "apply")
	}
	res, err := g.co.ApplyTraced(tc, a.ID, a.Vector)
	gsp.EndErr(err)
	if tc.Sampled() {
		g.co.cfg.Log.Debug("gateway apply",
			"trace_id", tc.Trace.String(), "dur", time.Since(t0), "err", err != nil)
	}
	if err != nil {
		c.sendErr(seq, wireErr(err))
		return
	}
	c.send(wire.MsgResult, seq, wire.EncodeResult(g.co.cfg.Params.R, res))
}
