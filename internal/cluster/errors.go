package cluster

import (
	"fmt"

	"cham/internal/wire"
)

// DegradedError reports that a scatter could not cover every tile even
// after hedged retries and a re-scatter pass over all reachable nodes:
// the cluster has lost quorum for this matrix. Missing holds the
// uncovered tile indices; Last is the final shard error observed.
type DegradedError struct {
	Missing []uint32
	Nodes   int // cluster size at scatter time
	Last    error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded: %d tiles uncovered across %d nodes (last shard error: %v)",
		len(e.Missing), e.Nodes, e.Last)
}

// Unwrap exposes the last shard error for errors.Is/As chains.
func (e *DegradedError) Unwrap() error { return e.Last }

// Wire converts the degraded state into the typed wire rejection the
// gateway answers clients with. CodeDegraded is retryable: a client that
// backs off and retries may land after a node returns.
func (e *DegradedError) Wire() *wire.Error {
	return wire.Errf(wire.CodeDegraded, "%d tiles uncovered across %d nodes", len(e.Missing), e.Nodes)
}
