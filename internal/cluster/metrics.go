package cluster

import "cham/internal/obs"

// Telemetry for the scatter/gather tier, in the same style as the
// cham_server_* family: resolved at init so scrapes show zeros.
var (
	mNodes = obs.GetGauge("cham_cluster_nodes",
		"Shard nodes in the ring.")
	mScatters = obs.GetCounter("cham_cluster_scatters_total",
		"Apply requests fanned out across shards.")
	mShardOK = obs.GetCounter("cham_cluster_shard_requests_total",
		"Tile-subset requests answered by a shard.", "outcome", "ok")
	mShardErr = obs.GetCounter("cham_cluster_shard_requests_total",
		"Tile-subset requests answered by a shard.", "outcome", "error")
	mHedges = obs.GetCounter("cham_cluster_hedges_total",
		"Extra shard attempts launched by the hedging policy.")
	mRescatters = obs.GetCounter("cham_cluster_rescatters_total",
		"Second-pass re-scatters after a tile group failed all hedged attempts.")
	mDegraded = obs.GetCounter("cham_cluster_degraded_total",
		"Applies that ended degraded (tiles uncovered after re-scatter).")
	mJoins = obs.GetCounter("cham_cluster_joins_total",
		"Nodes joined via registry warm-up transfer.")
	mGatherSec = obs.GetHistogram("cham_cluster_gather_seconds",
		"Scatter-to-gather wall time per apply.", obs.DefBuckets)
)
