// Package metricshttp serves the obs registry over HTTP. It lives apart
// from internal/obs so the metrics library itself never links net/http
// into the hot-path packages; only binaries that actually expose an
// endpoint (chamsim, chamserve) pay for it.
package metricshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"cham/internal/obs"
)

// Handler returns a mux with /metrics (Prometheus text format) and the
// stdlib /debug/pprof handlers.
func Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve enables telemetry and serves the endpoint on addr for the life
// of the process, returning the bound address (useful with ":0"). Errors
// after the listener is up are reported through errf if non-nil.
func Serve(addr string, errf func(error)) (net.Addr, error) {
	obs.SetEnabled(true)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, Handler()); err != nil && errf != nil {
			errf(err)
		}
	}()
	return ln.Addr(), nil
}
