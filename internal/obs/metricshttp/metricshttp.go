// Package metricshttp serves the obs registry over HTTP. It lives apart
// from internal/obs so the metrics library itself never links net/http
// into the hot-path packages; only binaries that actually expose an
// endpoint (chamsim, chamserve) pay for it.
package metricshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"cham/internal/obs"
	"cham/internal/obs/trace"
)

// Handler returns a mux with /metrics (Prometheus text format), the
// stdlib /debug/pprof handlers, and /debug/traces (the process's span
// ring in plain text, raw record JSON, or Chrome trace-event JSON).
func Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WriteTo(w)
	})
	mux.HandleFunc("/debug/traces", handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTraces dumps the process's span ring. Query parameters:
//
//	trace=<hex id>   only that trace's spans
//	format=text      indented span trees + critical path (default)
//	format=records   raw record JSON (what cmd/chamtrace fetches/merges)
//	format=chrome    Chrome trace-event JSON (load in Perfetto)
func handleTraces(w http.ResponseWriter, r *http.Request) {
	recs := trace.Records()
	if q := r.URL.Query().Get("trace"); q != "" {
		id, ok := trace.ParseTraceID(q)
		if !ok {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		recs = trace.FilterTrace(recs, id)
	}
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.WriteText(w, recs)
	case "records":
		buf, err := trace.MarshalRecords(recs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	case "chrome":
		buf, err := trace.ChromeTrace(recs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	default:
		http.Error(w, "unknown format (want text, records, or chrome)", http.StatusBadRequest)
	}
}

// Serve enables telemetry and serves the endpoint on addr for the life
// of the process, returning the bound address (useful with ":0"). Errors
// after the listener is up are reported through errf if non-nil.
func Serve(addr string, errf func(error)) (net.Addr, error) {
	obs.SetEnabled(true)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, Handler()); err != nil && errf != nil {
			errf(err)
		}
	}()
	return ln.Addr(), nil
}
