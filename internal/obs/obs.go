// Package obs is a dependency-free, low-overhead telemetry layer for the
// CHAM software stack: atomic counters, gauges, and fixed-bucket latency
// histograms collected in a process-global Registry, exposed as
// Prometheus text (WriteTo), structured snapshots (Snapshot), or parsed
// back from a scrape (ParseText, used by cmd/chamtop).
//
// Collection is off by default. Instrumentation sites guard their work
// behind On(), a single atomic load, so the HMVP hot path stays
// allocation-free and branch-cheap when telemetry is disabled
// (BenchmarkNopOverhead asserts 0 allocs/op). Metric handles are
// resolved once at package init — never in a hot loop — so an enabled
// observation is a time.Now call plus a few atomic adds.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every instrumentation site.
var enabled atomic.Bool

// SetEnabled switches telemetry collection on or off process-wide.
func SetEnabled(v bool) { enabled.Store(v) }

// On reports whether telemetry is being collected. Instrumentation sites
// check it before touching the clock or the registry.
func On() bool { return enabled.Load() }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterF is a monotonically increasing float metric (e.g. busy
// seconds); increments are lock-free CAS loops.
type CounterF struct{ bits atomic.Uint64 }

// Add increases the counter by d (d must be >= 0).
func (c *CounterF) Add(d float64) { atomicAddFloat(&c.bits, d) }

// Value reads the current total.
func (c *CounterF) Value() float64 { return floatFromBits(c.bits.Load()) }

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatToBits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) { atomicAddFloat(&g.bits, d) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= Upper[i]; one implicit +Inf bucket catches the rest. Observations
// are three atomic operations and never allocate.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	ex     atomic.Pointer[Exemplar]
}

// Exemplar links one recent observation of a histogram to the sampled
// trace that produced it (OpenMetrics-style), so a slow bucket on a
// dashboard resolves to a concrete TraceID in /debug/traces.
type Exemplar struct {
	Label string  // hex trace ID
	Value float64 // the exemplified observation
	TS    int64   // UnixNano at observation
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i].Add(1)
	atomicAddFloat(&h.sum, v)
}

// ObserveExemplar records one value and retains it as the histogram's
// exemplar under label (a sampled trace ID). Only traced observations
// call this, so the untraced hot path never touches the pointer slot.
func (h *Histogram) ObserveExemplar(v float64, label string) {
	h.Observe(v)
	if label != "" {
		h.ex.Store(&Exemplar{Label: label, Value: v, TS: time.Now().UnixNano()})
	}
}

// Exemplar returns the most recent exemplar, or nil.
func (h *Histogram) Exemplar() *Exemplar { return h.ex.Load() }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts
// by linear interpolation inside the holding bucket — the standard
// Prometheus histogram_quantile estimate. Observations beyond the last
// finite bound clamp to it; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(h.upper) { // +Inf bucket: clamp to last finite bound
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			inBucket := float64(c)
			if inBucket == 0 {
				return h.upper[i]
			}
			frac := (rank - float64(cum-c)) / inBucket
			return lo + (h.upper[i]-lo)*frac
		}
	}
	return h.upper[len(h.upper)-1]
}

// Buckets returns the upper bounds (excluding +Inf).
func (h *Histogram) Buckets() []float64 { return h.upper }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return floatFromBits(h.sum.Load()) }

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: invalid ExpBuckets parameters")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets spans 1 µs to ~4 s in powers of four — wide enough for a
// single NTT at N=256 and a full multi-tile apply at N=4096.
var DefBuckets = ExpBuckets(1e-6, 4, 12)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterF
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterF:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a family name plus a fixed label set.
type metric struct {
	name   string
	help   string
	labels [][2]string
	kind   metricKind
	c      *Counter
	cf     *CounterF
	g      *Gauge
	h      *Histogram
}

// Registry holds a set of metrics. The zero value is unusable; use
// NewRegistry or the process-global Default.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	all   []*metric
}

// NewRegistry returns an empty registry (tests use private ones; the
// instrumented packages share Default).
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry every instrumented package
// registers into.
func Default() *Registry { return defaultRegistry }

// key builds the lookup key for a name + label set.
func seriesKey(name string, labels [][2]string) string {
	k := name
	for _, l := range labels {
		k += "\x00" + l[0] + "\x01" + l[1]
	}
	return k
}

// pairLabels converts alternating key,value strings.
func pairLabels(kv []string) [][2]string {
	if len(kv)%2 != 0 {
		panic("obs: labels must come in key,value pairs")
	}
	out := make([][2]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, [2]string{kv[i], kv[i+1]})
	}
	return out
}

// lookup returns the existing metric for the series or registers the one
// built by mk. Kind mismatches are programmer errors and panic.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string, mk func(*metric)) *metric {
	labels := pairLabels(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: labels, kind: kind}
	mk(m)
	r.byKey[key] = m
	r.all = append(r.all, m)
	return m
}

// Counter returns (registering if needed) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, labels, func(m *metric) { m.c = &Counter{} }).c
}

// CounterF returns the float counter series name{labels}.
func (r *Registry) CounterF(name, help string, labels ...string) *CounterF {
	return r.lookup(name, help, kindCounterF, labels, func(m *metric) { m.cf = &CounterF{} }).cf
}

// Gauge returns the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram series name{labels} with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.lookup(name, help, kindHistogram, labels, func(m *metric) {
		m.h = &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
	})
	return m.h
}

// GetCounter, GetCounterF, GetGauge and GetHistogram are the Default()
// shorthand the instrumented packages use at init time.
func GetCounter(name, help string, labels ...string) *Counter {
	return defaultRegistry.Counter(name, help, labels...)
}

func GetCounterF(name, help string, labels ...string) *CounterF {
	return defaultRegistry.CounterF(name, help, labels...)
}

func GetGauge(name, help string, labels ...string) *Gauge {
	return defaultRegistry.Gauge(name, help, labels...)
}

func GetHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets, labels...)
}

// Span measures one region into a histogram. The zero Span (returned
// when collection is off) is a no-op, so call sites need no branch of
// their own. Span is a value type: starting and ending one never
// allocates.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing into h if telemetry is enabled.
func StartSpan(h *Histogram) Span {
	if !On() {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed seconds.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0).Seconds())
	}
}

// --- float-bits atomics ---

func floatToBits(f float64) uint64   { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

func atomicAddFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, floatToBits(floatFromBits(old)+d)) {
			return
		}
	}
}
