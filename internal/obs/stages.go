package obs

import "time"

// The HMVP stage taxonomy (DESIGN.md §7/§9): the paper's nine pipeline
// stages plus the hoisted digit-decomposition split of the key switch and
// the deferred pack-tree ModDown split — eleven stages in all. These
// indices and names are the single source of truth shared by the
// instrumented kernels (internal/core, internal/lwe), the exposition
// format, cmd/chamtop, and the documentation: a stage renamed here
// renames everywhere.
const (
	StageEncode      = iota // row coefficient encoding (Eq. 1)
	StageLift               // CRT lift to the augmented basis
	StageNTT                // forward transforms (rows + vector chunks)
	StageRowMul             // MULTPOLY multiply-accumulate (Eq. 2)
	StageINTT               // inverse transform of the accumulator
	StageExtract            // EXTRACTLWES constant-coefficient extraction (Eq. 3)
	StagePack               // PACKTWOLWES tree arithmetic (Alg. 2/3)
	StageDecompose          // hoisted RNS digit decomposition + digit NTTs
	StageKeySwitch          // automorphism key-switch accumulation inside packing
	StagePackModDown        // pack-tree RESCALE: per-merge a-part + deferred b flush
	StageModDown            // row-apply RESCALE / ModDown chains (poly and scalar)
	NumStages
)

// StageNames maps stage indices to their metric label values.
var StageNames = [NumStages]string{
	"encode", "lift", "ntt", "row_mul", "intt",
	"extract", "pack", "decompose", "key_switch", "moddown", "mod_down",
}

// stageHists holds the per-stage latency histograms of the
// cham_hmvp_stage_seconds family, registered eagerly so a scrape shows
// every stage from process start.
var stageHists = func() [NumStages]*Histogram {
	var hs [NumStages]*Histogram
	for i := 0; i < NumStages; i++ {
		hs[i] = GetHistogram("cham_hmvp_stage_seconds",
			"Wall time spent in each HMVP pipeline stage (DESIGN.md taxonomy).",
			DefBuckets, "stage", StageNames[i])
	}
	return hs
}()

// StageHistogram returns the latency histogram for one pipeline stage.
func StageHistogram(stage int) *Histogram { return stageHists[stage] }

// StageClock attributes wall time to pipeline stages with one time.Now
// per transition, accumulating locally and publishing once per Flush so
// a row touching a stage many times (once per column chunk) costs one
// histogram observation. Embed it in pooled scratch — it is sized for
// the stack/arena, never the heap — and drive it Start → Mark* → Flush.
// When collection is off, Start leaves it dormant and every method is a
// single branch.
type StageClock struct {
	on   bool
	last time.Time
	acc  [NumStages]time.Duration
}

// Start arms the clock for one instrumented region.
func (c *StageClock) Start() {
	c.on = On()
	if !c.on {
		return
	}
	for i := range c.acc {
		c.acc[i] = 0
	}
	c.last = time.Now()
}

// Mark charges the time since the previous mark to stage.
func (c *StageClock) Mark(stage int) {
	if !c.on {
		return
	}
	now := time.Now()
	c.acc[stage] += now.Sub(c.last)
	c.last = now
}

// Skip discards the time since the previous mark (un-attributed work).
func (c *StageClock) Skip() {
	if !c.on {
		return
	}
	c.last = time.Now()
}

// Flush publishes every stage that accumulated time and disarms the
// clock.
func (c *StageClock) Flush() {
	if !c.on {
		return
	}
	for i, d := range c.acc {
		if d > 0 {
			stageHists[i].Observe(d.Seconds())
		}
	}
	c.on = false
}
