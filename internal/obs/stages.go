package obs

import "time"

// The HMVP stage taxonomy (DESIGN.md §7/§9): the paper's nine pipeline
// stages plus the hoisted digit-decomposition split of the key switch and
// the deferred pack-tree ModDown split — eleven stages in all. These
// indices and names are the single source of truth shared by the
// instrumented kernels (internal/core, internal/lwe), the exposition
// format, cmd/chamtop, and the documentation: a stage renamed here
// renames everywhere.
const (
	StageEncode      = iota // row coefficient encoding (Eq. 1)
	StageLift               // CRT lift to the augmented basis
	StageNTT                // forward transforms (rows + vector chunks)
	StageRowMul             // MULTPOLY multiply-accumulate (Eq. 2)
	StageINTT               // inverse transform of the accumulator
	StageExtract            // EXTRACTLWES constant-coefficient extraction (Eq. 3)
	StagePack               // PACKTWOLWES tree arithmetic (Alg. 2/3)
	StageDecompose          // hoisted RNS digit decomposition + digit NTTs
	StageKeySwitch          // automorphism key-switch accumulation inside packing
	StagePackModDown        // pack-tree RESCALE: per-merge a-part + deferred b flush
	StageModDown            // row-apply RESCALE / ModDown chains (poly and scalar)
	NumStages
)

// StageNames maps stage indices to their metric label values.
var StageNames = [NumStages]string{
	"encode", "lift", "ntt", "row_mul", "intt",
	"extract", "pack", "decompose", "key_switch", "moddown", "mod_down",
}

// stageHists holds the per-stage latency histograms of the
// cham_hmvp_stage_seconds family, registered eagerly so a scrape shows
// every stage from process start.
var stageHists = func() [NumStages]*Histogram {
	var hs [NumStages]*Histogram
	for i := 0; i < NumStages; i++ {
		hs[i] = GetHistogram("cham_hmvp_stage_seconds",
			"Wall time spent in each HMVP pipeline stage (DESIGN.md taxonomy).",
			DefBuckets, "stage", StageNames[i])
	}
	return hs
}()

// StageHistogram returns the latency histogram for one pipeline stage.
func StageHistogram(stage int) *Histogram { return stageHists[stage] }

// StageSink receives per-stage durations from a StageClock flush in
// addition to (or instead of) the histograms. internal/obs/trace's
// StageRecorder implements it to turn kernel stage timings into spans
// of a sampled request; the interface lives here so core can thread a
// sink through pooled scratch without obs depending on trace.
type StageSink interface {
	// StageAdd accumulates d into stage. Implementations must be
	// safe for concurrent use: the parallel row loop flushes worker
	// clocks into one sink.
	StageAdd(stage int, d time.Duration)
	// ExemplarLabel returns the exemplar label (a hex trace ID)
	// attached to histogram observations made under this sink.
	ExemplarLabel() string
}

// StageClock attributes wall time to pipeline stages with one time.Now
// per transition, accumulating locally and publishing once per Flush so
// a row touching a stage many times (once per column chunk) costs one
// histogram observation. Embed it in pooled scratch — it is sized for
// the stack/arena, never the heap — and drive it Start → Mark* → Flush.
// When collection is off, Start leaves it dormant and every method is a
// single branch; an attached StageSink (sampled request tracing) arms
// it regardless, so traced requests get stage spans even with the
// metrics registry disabled.
type StageClock struct {
	on   bool
	sink StageSink
	last time.Time
	acc  [NumStages]time.Duration
}

// Attach routes subsequent flushes into sink (nil detaches). The clock
// lives in pooled scratch: callers attach for one traced apply and must
// detach before the scratch is pooled again.
func (c *StageClock) Attach(sink StageSink) { c.sink = sink }

// Sink returns the attached sink (nil when untraced).
func (c *StageClock) Sink() StageSink { return c.sink }

// Start arms the clock for one instrumented region.
func (c *StageClock) Start() {
	c.on = On() || c.sink != nil
	if !c.on {
		return
	}
	for i := range c.acc {
		c.acc[i] = 0
	}
	c.last = time.Now()
}

// Mark charges the time since the previous mark to stage.
func (c *StageClock) Mark(stage int) {
	if !c.on {
		return
	}
	now := time.Now()
	c.acc[stage] += now.Sub(c.last)
	c.last = now
}

// Skip discards the time since the previous mark (un-attributed work).
func (c *StageClock) Skip() {
	if !c.on {
		return
	}
	c.last = time.Now()
}

// Flush publishes every stage that accumulated time and disarms the
// clock. With a sink attached the durations also feed the sink, and
// histogram observations carry the sink's exemplar label so a scrape
// can link a slow bucket to a concrete sampled TraceID.
func (c *StageClock) Flush() {
	if !c.on {
		return
	}
	hist := On()
	for i, d := range c.acc {
		if d <= 0 {
			continue
		}
		if c.sink != nil {
			c.sink.StageAdd(i, d)
			if hist {
				stageHists[i].ObserveExemplar(d.Seconds(), c.sink.ExemplarLabel())
			}
		} else if hist {
			stageHists[i].Observe(d.Seconds())
		}
	}
	c.on = false
}
