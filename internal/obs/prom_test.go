package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte for byte: HELP
// and TYPE headers once per family, families sorted by name, series by
// label signature, histograms expanded cumulatively with +Inf, _sum and
// _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cham_jobs_total", "Jobs executed.", "result", "ok").Add(3)
	r.Counter("cham_jobs_total", "Jobs executed.", "result", "error").Inc()
	r.Gauge("cham_temp_celsius", "Die temperature.").Set(45.5)
	r.CounterF("cham_busy_seconds_total", "Engine busy time.", "engine", "0").Add(1.25)
	h := r.Histogram("cham_stage_seconds", "Stage latency.", []float64{0.001, 0.1}, "stage", "ntt")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cham_busy_seconds_total Engine busy time.
# TYPE cham_busy_seconds_total counter
cham_busy_seconds_total{engine="0"} 1.25
# HELP cham_jobs_total Jobs executed.
# TYPE cham_jobs_total counter
cham_jobs_total{result="error"} 1
cham_jobs_total{result="ok"} 3
# HELP cham_stage_seconds Stage latency.
# TYPE cham_stage_seconds histogram
cham_stage_seconds_bucket{stage="ntt",le="0.001"} 1
cham_stage_seconds_bucket{stage="ntt",le="0.1"} 3
cham_stage_seconds_bucket{stage="ntt",le="+Inf"} 4
cham_stage_seconds_sum{stage="ntt"} 3.1005
cham_stage_seconds_count{stage="ntt"} 4
# HELP cham_temp_celsius Die temperature.
# TYPE cham_temp_celsius gauge
cham_temp_celsius 45.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition format drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestParseRoundTrip: ParseText reads back exactly what WriteTo emitted.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "k", "v1").Add(7)
	r.Gauge("b_bits", "").Set(-12.5)
	h := r.Histogram("c_seconds", "", []float64{1}, "stage", "pack")
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		for _, k := range []string{"k", "stage", "le"} {
			if v, ok := s.Labels[k]; ok {
				key += "|" + k + "=" + v
			}
		}
		byKey[key] = s.Value
	}
	checks := map[string]float64{
		"a_total|k=v1":                     7,
		"b_bits":                           -12.5,
		"c_seconds_bucket|stage=pack|le=1": 1,
		"c_seconds_count|stage=pack":       2,
		"c_seconds_sum|stage=pack":         2.5,
	}
	for k, want := range checks {
		got, ok := byKey[k]
		if !ok {
			t.Errorf("sample %q missing after round trip", k)
			continue
		}
		if got != want {
			t.Errorf("sample %q = %g, want %g", k, got, want)
		}
	}
	// The +Inf bucket must parse as a real infinity.
	found := false
	for _, s := range samples {
		if s.Name == "c_seconds_bucket" && s.Labels["le"] == "+Inf" {
			found = true
			if s.Value != 2 {
				t.Errorf("+Inf bucket = %g, want 2", s.Value)
			}
		}
	}
	if !found {
		t.Error("no +Inf bucket in parsed output")
	}
}

// TestSnapshotJSON: snapshots are JSON-marshalable (the BENCH_hmvp.json
// telemetry key) and carry cumulative buckets.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(2)
	h := r.Histogram("n_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Errorf("marshalled snapshot lacks +Inf bucket: %s", data)
	}
	var hist *MetricSnapshot
	for i := range snap {
		if snap[i].Name == "n_seconds" {
			hist = &snap[i]
		}
	}
	if hist == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hist.Count != 2 || hist.Sum != 5.5 {
		t.Errorf("histogram snapshot count=%d sum=%g, want 2/5.5", hist.Count, hist.Sum)
	}
	if len(hist.Buckets) != 3 || hist.Buckets[1].Count != 2 {
		t.Errorf("cumulative buckets wrong: %+v", hist.Buckets)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"no_value_line",
		`x{k="v"} notanumber`,
		`x{k="v" 3`,
	} {
		if _, err := ParseText(bad); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}
