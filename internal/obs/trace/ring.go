package trace

import (
	"context"
	"sort"
	"sync/atomic"
)

// Record is one completed span as stored in the ring and shipped to
// chamtrace. Start and Dur are UnixNano / nanoseconds so records from
// different nodes merge on a common clock (NTP-grade skew is visible
// but the tree structure comes from span parentage, not timestamps).
type Record struct {
	Trace   TraceID
	Span    SpanID
	Parent  SpanID
	Service string
	Name    string
	Note    string
	Start   int64 // UnixNano
	Dur     int64 // nanoseconds
}

// End returns the span's end time in UnixNano.
func (r *Record) End() int64 { return r.Start + r.Dur }

// ringCapacity fixes the per-process retention: the newest 16384
// completed spans (a fully-traced cluster request is ~30 spans, so the
// ring holds the last ~500 sampled requests). Old records are
// overwritten, never freed — readers may observe a torn trace whose
// earliest spans were evicted, which exporters tolerate by parenting
// orphans at the root.
const ringCapacity = 1 << 14

// ring is the process-global lock-free span buffer. Writers claim a
// slot with one atomic add and store an immutable *Record; readers
// load slots concurrently. A reader racing a writer sees either the
// old or the new record — both are complete spans.
var ring struct {
	head  atomic.Uint64
	slots [ringCapacity]atomic.Pointer[Record]
}

// publish appends one completed span to the ring.
func publish(r *Record) {
	i := ring.head.Add(1) - 1
	ring.slots[i%ringCapacity].Store(r)
}

// Records snapshots the ring: every retained span, ordered by start
// time. The copy is detached — callers may sort and filter freely.
func Records() []Record {
	out := make([]Record, 0, 256)
	n := ring.head.Load()
	if n > ringCapacity {
		n = ringCapacity
	}
	for i := uint64(0); i < n; i++ {
		if r := ring.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TraceRecords returns the retained spans of one trace, ordered by
// start time.
func TraceRecords(id TraceID) []Record {
	all := Records()
	out := all[:0]
	for _, r := range all {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	return out
}

// Reset clears the ring (tests only — concurrent writers may race a
// reset, which tests avoid by resetting between phases).
func Reset() {
	for i := range ring.slots {
		ring.slots[i].Store(nil)
	}
	ring.head.Store(0)
}

// --- context.Context carrier (runtime jobs cross goroutines via ctx) ---

type ctxKey struct{}

// NewContext returns ctx carrying tc. An unsampled tc is not attached,
// so the off path never allocates a context value.
func NewContext(ctx context.Context, tc Context) context.Context {
	if !tc.Sampled() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context from ctx (zero if absent).
func FromContext(ctx context.Context) Context {
	tc, _ := ctx.Value(ctxKey{}).(Context)
	return tc
}
