package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// recordJSON is the interchange form of a Record: IDs as hex so the
// payload survives any JSON tooling, fields short because a ring dump
// carries thousands of spans.
type recordJSON struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Service string `json:"service"`
	Name    string `json:"name"`
	Note    string `json:"note,omitempty"`
	Start   int64  `json:"start"`
	Dur     int64  `json:"dur"`
}

// MarshalRecords encodes records as the JSON array served by
// /debug/traces?format=records and consumed by cmd/chamtrace.
func MarshalRecords(recs []Record) ([]byte, error) {
	out := make([]recordJSON, len(recs))
	for i, r := range recs {
		out[i] = recordJSON{
			Trace: r.Trace.String(), Span: r.Span.String(),
			Service: r.Service, Name: r.Name, Note: r.Note,
			Start: r.Start, Dur: r.Dur,
		}
		if !r.Parent.IsZero() {
			out[i].Parent = r.Parent.String()
		}
	}
	return json.Marshal(out)
}

// UnmarshalRecords decodes a MarshalRecords payload. Records with
// malformed IDs are dropped rather than failing the whole dump.
func UnmarshalRecords(data []byte) ([]Record, error) {
	var in []recordJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("trace: bad records payload: %w", err)
	}
	out := make([]Record, 0, len(in))
	for _, rj := range in {
		tid, ok := ParseTraceID(rj.Trace)
		if !ok {
			continue
		}
		r := Record{Trace: tid, Service: rj.Service, Name: rj.Name, Note: rj.Note, Start: rj.Start, Dur: rj.Dur}
		if !decodeSpanID(rj.Span, &r.Span) {
			continue
		}
		if rj.Parent != "" && !decodeSpanID(rj.Parent, &r.Parent) {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

func decodeSpanID(s string, dst *SpanID) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	var tmp [8]byte
	for i := 0; i < 8; i++ {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		tmp[i] = hi<<4 | lo
	}
	*dst = tmp
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// --- span tree ---

// treeNode is one span plus its resolved children.
type treeNode struct {
	rec      Record
	children []*treeNode
}

// buildTree groups records of ONE trace into root nodes. Spans whose
// parent was evicted from the ring (or lives on an unreachable node)
// become roots, so a torn trace still renders. Children sort by start.
func buildTree(recs []Record) []*treeNode {
	nodes := make(map[SpanID]*treeNode, len(recs))
	for _, r := range recs {
		if _, dup := nodes[r.Span]; dup {
			continue // same span fetched from two endpoints
		}
		nodes[r.Span] = &treeNode{rec: r}
	}
	var roots []*treeNode
	for _, n := range nodes {
		if p, ok := nodes[n.rec.Parent]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes := func(ns []*treeNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].rec.Start != ns[j].rec.Start {
				return ns[i].rec.Start < ns[j].rec.Start
			}
			return ns[i].rec.Name < ns[j].rec.Name
		})
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.children)
	}
	return roots
}

// TraceIDs returns the distinct traces present in recs, ordered by
// earliest span start (oldest first).
func TraceIDs(recs []Record) []TraceID {
	first := map[TraceID]int64{}
	for _, r := range recs {
		if t, ok := first[r.Trace]; !ok || r.Start < t {
			first[r.Trace] = r.Start
		}
	}
	ids := make([]TraceID, 0, len(first))
	for id := range first {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return first[ids[i]] < first[ids[j]] })
	return ids
}

// FilterTrace returns the records belonging to one trace.
func FilterTrace(recs []Record, id TraceID) []Record {
	var out []Record
	for _, r := range recs {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	return out
}

// WriteText renders recs as indented span trees, one block per trace,
// each followed by its critical path — the human-readable default of
// /debug/traces and cmd/chamtrace.
func WriteText(w io.Writer, recs []Record) error {
	ids := TraceIDs(recs)
	if len(ids) == 0 {
		_, err := fmt.Fprintln(w, "no traces recorded")
		return err
	}
	for _, id := range ids {
		tr := FilterTrace(recs, id)
		roots := buildTree(tr)
		if _, err := fmt.Fprintf(w, "trace %s — %d spans\n", id, len(tr)); err != nil {
			return err
		}
		for _, root := range roots {
			if err := writeNode(w, root, 1); err != nil {
				return err
			}
		}
		cp := CriticalPath(tr)
		if len(cp) > 1 {
			if _, err := fmt.Fprintf(w, "  critical path:\n"); err != nil {
				return err
			}
			for _, r := range cp {
				if _, err := fmt.Fprintf(w, "    %-12s %-24s %s\n",
					r.Service, r.Name, time.Duration(r.Dur)); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w io.Writer, n *treeNode, depth int) error {
	note := ""
	if n.rec.Note != "" {
		note = "  [" + n.rec.Note + "]"
	}
	if _, err := fmt.Fprintf(w, "%*s%s/%s %s%s\n",
		2*depth, "", n.rec.Service, n.rec.Name, time.Duration(n.rec.Dur), note); err != nil {
		return err
	}
	for _, c := range n.children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// CriticalPath returns the chain of spans that bounds the end-to-end
// latency of one trace: starting from the longest root, it repeatedly
// descends into the child that finishes last. recs must belong to a
// single trace.
func CriticalPath(recs []Record) []Record {
	roots := buildTree(recs)
	if len(roots) == 0 {
		return nil
	}
	cur := roots[0]
	for _, r := range roots[1:] {
		if r.rec.Dur > cur.rec.Dur {
			cur = r
		}
	}
	path := []Record{cur.rec}
	for len(cur.children) > 0 {
		next := cur.children[0]
		for _, c := range cur.children[1:] {
			if c.rec.End() > next.rec.End() {
				next = c
			}
		}
		path = append(path, next.rec)
		cur = next
	}
	return path
}

// --- Chrome trace-event export ---

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// flavour Perfetto and chrome://tracing load). Spans are emitted as
// async begin/end pairs keyed by span ID so concurrent shard RPCs can
// overlap without fighting over thread lanes.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeTrace encodes recs as Chrome trace-event JSON. Each service
// renders as one named process; every span is an async begin/end pair
// carrying its trace ID, parent, and note as args.
func ChromeTrace(recs []Record) ([]byte, error) {
	pids := map[string]int{}
	var events []chromeEvent
	pidOf := func(service string) int {
		if p, ok := pids[service]; ok {
			return p
		}
		p := len(pids) + 1
		pids[service] = p
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p, Tid: 0,
			Args: map[string]string{"name": service},
		})
		return p
	}
	for _, r := range recs {
		pid := pidOf(r.Service)
		args := map[string]string{"trace": r.Trace.String()}
		if !r.Parent.IsZero() {
			args["parent"] = r.Parent.String()
		}
		if r.Note != "" {
			args["note"] = r.Note
		}
		id := "0x" + r.Span.String()
		start := float64(r.Start) / 1e3
		events = append(events,
			chromeEvent{Name: r.Name, Cat: "cham", Ph: "b", TS: start, Pid: pid, Tid: 1, ID: id, Args: args},
			chromeEvent{Name: r.Name, Cat: "cham", Ph: "e", TS: start + float64(r.Dur)/1e3, Pid: pid, Tid: 1, ID: id},
		)
	}
	return json.Marshal(chromeFile{TraceEvents: events})
}
