// Package trace is a stdlib-only, sampling, request-scoped tracer for
// the CHAM serving stack. A TraceID is minted at the edge (client or
// gateway) when the probabilistic sampler admits a request; the
// resulting Context travels with the request — through function calls,
// context.Context values, and the wire protocol's optional trace
// header — and every hop opens Spans under it: client send, gateway,
// coordinator scatter / per-shard RPC, server admission queue /
// coalesced batch / dispatch, runtime card jobs (including RAS
// replays), and the kernel stages bridged from obs.StageClock.
//
// Completed spans are published to a fixed-size lock-free per-process
// ring buffer (see ring.go) and exported as a plain-text span tree or
// Chrome trace-event JSON by /debug/traces (internal/obs/metricshttp)
// and cmd/chamtrace, which merges the rings of many nodes by TraceID.
//
// The off path is engineered to cost nothing: with the sampler at zero
// every entry point is one atomic load, an unsampled Context makes
// Start a single branch returning a dormant Span, and the warm HMVP
// apply stays 0 allocs/op (allocation happens only on the sampled
// path, where a request is already paying for network I/O).
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync/atomic"
	"time"
)

// TraceID names one end-to-end request; all spans of one request share
// it across processes.
type TraceID [16]byte

// SpanID names one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, true
}

// FlagSampled marks a context whose spans are recorded. An unsampled
// context is inert: Start returns it unchanged and records nothing.
const FlagSampled = 0x01

// Context is the propagated trace state: which trace the request
// belongs to, the span the next child should hang under, and flags.
// It is a 25-byte value — copying it is free and it maps one-to-one
// onto the wire protocol's trace header.
type Context struct {
	Trace TraceID
	Span  SpanID
	Flags uint8
}

// Sampled reports whether spans under this context are recorded.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// --- sampler ---

// sampleRate holds the float64 bits of the root sampling probability.
var sampleRate atomic.Uint64

// SetSampleRate sets the probability (clamped to [0,1]) that Root mints
// a sampled trace. Zero disables tracing entirely.
func SetSampleRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sampleRate.Store(floatBits(p))
}

// SampleRate returns the current root sampling probability.
func SampleRate() float64 { return bitsFloat(sampleRate.Load()) }

// Enabled reports whether any sampling is configured — one atomic load,
// the only cost tracing adds to a process that never enables it.
func Enabled() bool { return sampleRate.Load() != 0 }

// --- ID generation ---

// idState seeds a splitmix64 sequence from crypto/rand once per
// process; IDs are then one atomic add plus a few multiplies — cheap,
// collision-resistant across processes, and lock-free.
var idState = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var idCounter atomic.Uint64

func nextID() uint64 {
	x := idState + idCounter.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func newTraceID() (t TraceID) {
	binary.LittleEndian.PutUint64(t[0:8], nextID())
	binary.LittleEndian.PutUint64(t[8:16], nextID())
	return t
}

func newSpanID() (s SpanID) {
	binary.LittleEndian.PutUint64(s[:], nextID())
	return s
}

// --- spans ---

// Span measures one region of one request. It is a value type: an
// inactive span (unsampled request, or sampler off) is the zero value
// and every method on it is a single branch, so call sites need no
// guards of their own. End publishes the span to the process ring.
type Span struct {
	ctx     Context // the span's own context (Span = this span's ID)
	parent  SpanID
	service string
	name    string
	note    string
	start   time.Time
}

// Active reports whether the span is recording.
func (s *Span) Active() bool { return s.ctx.Sampled() }

// Context returns the span's context — pass it to children so they
// nest under this span.
func (s *Span) Context() Context { return s.ctx }

// Annotate attaches a short free-form note (error text, batch size,
// replay count) rendered next to the span in exports.
func (s *Span) Annotate(note string) {
	if s.ctx.Sampled() {
		s.note = note
	}
}

// End publishes the span. Calling End on an inactive span is a no-op.
func (s *Span) End() {
	if !s.ctx.Sampled() {
		return
	}
	publish(&Record{
		Trace:   s.ctx.Trace,
		Span:    s.ctx.Span,
		Parent:  s.parent,
		Service: s.service,
		Name:    s.name,
		Note:    s.note,
		Start:   s.start.UnixNano(),
		Dur:     time.Since(s.start).Nanoseconds(),
	})
	s.ctx = Context{}
}

// EndErr annotates the span with err (when non-nil) and ends it.
func (s *Span) EndErr(err error) {
	if err != nil && s.ctx.Sampled() {
		s.note = err.Error()
	}
	s.End()
}

// Root starts a new trace if the sampler admits one, returning the root
// span's context and the span. When sampling is off (or the draw
// misses) it returns inert zero values: the caller threads the zero
// Context through the request and every downstream hop stays on the
// one-branch path.
func Root(service, name string) (Context, Span) {
	rate := SampleRate()
	if rate == 0 {
		return Context{}, Span{}
	}
	if rate < 1 && float64(nextID()>>11)/(1<<53) >= rate {
		return Context{}, Span{}
	}
	ctx := Context{Trace: newTraceID(), Span: newSpanID(), Flags: FlagSampled}
	return ctx, Span{ctx: ctx, service: service, name: name, start: time.Now()}
}

// Start opens a child span under parent. For an unsampled parent this
// is one branch and returns the parent unchanged with an inert span.
func Start(parent Context, service, name string) (Context, Span) {
	if !parent.Sampled() {
		return parent, Span{}
	}
	ctx := Context{Trace: parent.Trace, Span: newSpanID(), Flags: parent.Flags}
	return ctx, Span{ctx: ctx, parent: parent.Span, service: service, name: name, start: time.Now()}
}

func floatBits(f float64) uint64   { return math.Float64bits(f) }
func bitsFloat(b uint64) float64   { return math.Float64frombits(b) }
