package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cham/internal/obs"
)

// TestSamplerOff pins the disabled fast path: Root returns inert zero
// values and nothing reaches the ring.
func TestSamplerOff(t *testing.T) {
	SetSampleRate(0)
	Reset()
	tc, sp := Root("svc", "op")
	if tc.Sampled() || sp.Active() {
		t.Fatalf("rate 0 minted a sampled trace: ctx=%+v", tc)
	}
	sp.Annotate("ignored")
	sp.End()
	if got := len(Records()); got != 0 {
		t.Fatalf("ring has %d records after unsampled End, want 0", got)
	}
	// Children of an unsampled context stay unsampled and propagate the
	// parent context unchanged.
	child, csp := Start(tc, "svc", "child")
	if child != tc || csp.Active() {
		t.Fatalf("Start on unsampled parent: got ctx %+v active=%v", child, csp.Active())
	}
}

// TestRootAndChildren checks ID minting, parentage, and ring publication
// on the sampled path.
func TestRootAndChildren(t *testing.T) {
	SetSampleRate(1)
	defer SetSampleRate(0)
	Reset()

	tc, root := Root("gateway", "apply")
	if !tc.Sampled() || tc.Trace.IsZero() || tc.Span.IsZero() {
		t.Fatalf("rate 1 did not mint a sampled context: %+v", tc)
	}
	cctx, child := Start(tc, "coordinator", "scatter")
	if cctx.Trace != tc.Trace {
		t.Fatalf("child trace %s, want parent's %s", cctx.Trace, tc.Trace)
	}
	if cctx.Span == tc.Span {
		t.Fatal("child span ID equals parent span ID")
	}
	child.Annotate("2 shards")
	child.End()
	root.EndErr(nil)
	// Ending twice must not double-publish.
	child.End()
	root.End()

	recs := TraceRecords(tc.Trace)
	if len(recs) != 2 {
		t.Fatalf("ring holds %d records for the trace, want 2", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	sc, ok := byName["scatter"]
	if !ok {
		t.Fatalf("scatter span missing from %v", byName)
	}
	if sc.Parent != tc.Span {
		t.Fatalf("scatter parent %s, want root span %s", sc.Parent, tc.Span)
	}
	if sc.Note != "2 shards" {
		t.Fatalf("scatter note %q, want annotation", sc.Note)
	}
}

// TestParseTraceID round-trips the hex form and rejects malformed input.
func TestParseTraceID(t *testing.T) {
	id := newTraceID()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("round trip failed: %s -> %s ok=%v", id, got, ok)
	}
	for _, bad := range []string{"", "zz", strings.Repeat("g", 32), strings.Repeat("a", 31)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted malformed input", bad)
		}
	}
}

// TestContextCarriage checks the context.Context bridge used by the
// runtime's job path.
func TestContextCarriage(t *testing.T) {
	SetSampleRate(1)
	defer SetSampleRate(0)
	tc, sp := Root("svc", "op")
	defer sp.End()
	ctx := NewContext(context.Background(), tc)
	if got := FromContext(ctx); got != tc {
		t.Fatalf("FromContext = %+v, want %+v", got, tc)
	}
	// Unsampled contexts are not attached at all.
	if ctx := NewContext(context.Background(), Context{}); FromContext(ctx).Sampled() {
		t.Fatal("unsampled context came back sampled")
	}
	if FromContext(context.Background()).Sampled() {
		t.Fatal("empty context carries a sampled trace")
	}
}

// TestExportRoundTrip covers the record JSON used by /debug/traces and
// chamtrace: marshal → unmarshal is lossless, filters work, and both
// renderers accept the result.
func TestExportRoundTrip(t *testing.T) {
	SetSampleRate(1)
	defer SetSampleRate(0)
	Reset()

	tc, root := Root("gateway", "apply")
	_, child := Start(tc, "server", "serve")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	recs := Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	buf, err := MarshalRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d changed in round trip:\n  %+v\n  %+v", i, recs[i], back[i])
		}
	}
	if ids := TraceIDs(recs); len(ids) != 1 || ids[0] != tc.Trace {
		t.Fatalf("TraceIDs = %v, want [%s]", ids, tc.Trace)
	}
	if got := FilterTrace(recs, tc.Trace); len(got) != 2 {
		t.Fatalf("FilterTrace kept %d records, want 2", len(got))
	}
	if got := FilterTrace(recs, newTraceID()); len(got) != 0 {
		t.Fatalf("FilterTrace of an unknown trace kept %d records", len(got))
	}

	var sb strings.Builder
	if err := WriteText(&sb, recs); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"gateway", "apply", "server", "serve", "critical path"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}

	chrome, err := ChromeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// Two spans = two async begin/end pairs, plus process-name metadata.
	var b, e, m int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			b++
		case "e":
			e++
		case "M":
			m++
		}
	}
	if b != 2 || e != 2 || m == 0 {
		t.Fatalf("chrome export has %d begin / %d end / %d metadata events, want 2/2/>0", b, e, m)
	}
}

// TestUnmarshalRecordsDropsMalformed: a merge must survive one node
// returning garbage rows without dropping the good ones.
func TestUnmarshalRecordsDropsMalformed(t *testing.T) {
	good := Record{Trace: newTraceID(), Span: newSpanID(), Service: "s", Name: "n", Start: 1, Dur: 2}
	buf, err := MarshalRecords([]Record{good})
	if err != nil {
		t.Fatal(err)
	}
	// Splice a record with a bad trace ID in front of the good one.
	doctored := strings.Replace(string(buf), "[", `[{"trace":"xyz","span":"0102030405060708","name":"bad"},`, 1)
	back, err := UnmarshalRecords([]byte(doctored))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != good {
		t.Fatalf("got %+v, want just the good record", back)
	}
}

// TestCriticalPath: the critical path follows the latest-ending child
// chain from the longest root.
func TestCriticalPath(t *testing.T) {
	tid := newTraceID()
	root := Record{Trace: tid, Span: newSpanID(), Service: "g", Name: "root", Start: 0, Dur: 100}
	short := Record{Trace: tid, Span: newSpanID(), Parent: root.Span, Service: "s", Name: "short", Start: 5, Dur: 10}
	long := Record{Trace: tid, Span: newSpanID(), Parent: root.Span, Service: "s", Name: "long", Start: 10, Dur: 80}
	leaf := Record{Trace: tid, Span: newSpanID(), Parent: long.Span, Service: "k", Name: "leaf", Start: 20, Dur: 60}
	path := CriticalPath([]Record{root, short, long, leaf})
	var names []string
	for _, r := range path {
		names = append(names, r.Name)
	}
	if got := strings.Join(names, ">"); got != "root>long>leaf" {
		t.Fatalf("critical path %q, want root>long>leaf", got)
	}
}

// TestStageRecorder: accumulated stage durations become one span per
// touched stage; the nil recorder (unsampled apply) is inert.
func TestStageRecorder(t *testing.T) {
	SetSampleRate(1)
	defer SetSampleRate(0)
	Reset()

	tc, sp := Root("server", "serve")
	rec := NewStageRecorder(tc)
	if rec == nil {
		t.Fatal("sampled parent produced a nil recorder")
	}
	if rec.ExemplarLabel() != tc.Trace.String() {
		t.Fatalf("exemplar label %q, want trace id %s", rec.ExemplarLabel(), tc.Trace)
	}
	rec.StageAdd(obs.StageNTT, 5*time.Millisecond)
	rec.StageAdd(obs.StageNTT, 5*time.Millisecond) // concurrent workers accumulate
	rec.StageAdd(obs.StageKeySwitch, 3*time.Millisecond)
	rec.Emit("kernel")
	sp.End()

	recs := TraceRecords(tc.Trace)
	stages := map[string]int64{}
	for _, r := range recs {
		if strings.HasPrefix(r.Name, "stage:") {
			if r.Parent != tc.Span {
				t.Fatalf("stage span %s parented at %s, want serve span %s", r.Name, r.Parent, tc.Span)
			}
			stages[r.Name] = r.Dur
		}
	}
	if stages["stage:"+obs.StageNames[obs.StageNTT]] != int64(10*time.Millisecond) {
		t.Fatalf("ntt stage span = %v, want 10ms aggregate", stages)
	}
	if stages["stage:"+obs.StageNames[obs.StageKeySwitch]] != int64(3*time.Millisecond) {
		t.Fatalf("keyswitch stage span = %v", stages)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d stage spans, want 2 (untouched stages must not emit)", len(stages))
	}

	// The unsampled path: nil recorder, nil-safe Emit.
	if rec := NewStageRecorder(Context{}); rec != nil {
		t.Fatal("unsampled parent produced a recorder")
	}
	var nilRec *StageRecorder
	nilRec.Emit("kernel") // must not panic
}

// TestRingEviction: the ring retains only the newest ringCapacity spans
// and Records tolerates wrap-around.
func TestRingEviction(t *testing.T) {
	SetSampleRate(1)
	defer SetSampleRate(0)
	Reset()
	defer Reset()
	total := ringCapacity + 100
	for i := 0; i < total; i++ {
		_, sp := Root("svc", "op")
		sp.End()
	}
	if got := len(Records()); got != ringCapacity {
		t.Fatalf("ring retained %d records, want %d", got, ringCapacity)
	}
}

// BenchmarkStartUnsampled is the per-hop cost every untraced request
// pays at every span site: it must stay allocation-free.
func BenchmarkStartUnsampled(b *testing.B) {
	SetSampleRate(0)
	parent := Context{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(parent, "svc", "op")
		sp.End()
	}
}

// BenchmarkRootDisabled is the edge cost with the sampler off: one
// atomic load, no allocation.
func BenchmarkRootDisabled(b *testing.B) {
	SetSampleRate(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Root("svc", "op")
		sp.End()
	}
}
