package trace

import (
	"sync/atomic"
	"time"

	"cham/internal/obs"
)

// StageRecorder bridges the kernel's obs.StageClock taxonomy into a
// sampled trace: core attaches it (via StageClock.Attach) to the
// pooled apply/row scratch clocks for the duration of one traced
// apply, the parallel row workers flush their per-stage durations into
// it with atomic adds, and Emit turns the aggregate into one span per
// touched stage under the request's serve span.
//
// Stage spans are aggregates across workers and tiles — their
// durations sum wall time attributed to each stage, laid out
// back-to-back from the apply start so exports read in pipeline order
// rather than as true intervals (the kernel interleaves stages per row;
// per-interval fidelity would cost the hot path).
type StageRecorder struct {
	parent Context
	label  string // hex trace ID, precomputed once for exemplars
	base   time.Time
	acc    [obs.NumStages]atomic.Int64
}

// NewStageRecorder returns a recorder for one traced apply under
// parent, or nil for an unsampled parent (the kernel treats a nil sink
// as tracing off).
func NewStageRecorder(parent Context) *StageRecorder {
	if !parent.Sampled() {
		return nil
	}
	return &StageRecorder{parent: parent, label: parent.Trace.String(), base: time.Now()}
}

// StageAdd accumulates d into stage (obs.StageSink).
func (r *StageRecorder) StageAdd(stage int, d time.Duration) {
	r.acc[stage].Add(int64(d))
}

// ExemplarLabel returns the trace ID attached to histogram
// observations made during this apply (obs.StageSink).
func (r *StageRecorder) ExemplarLabel() string { return r.label }

// Emit publishes one span per stage that accumulated time, as children
// of the recorder's parent span under the given service name.
func (r *StageRecorder) Emit(service string) {
	if r == nil {
		return
	}
	start := r.base.UnixNano()
	for i := 0; i < obs.NumStages; i++ {
		d := r.acc[i].Load()
		if d <= 0 {
			continue
		}
		publish(&Record{
			Trace:   r.parent.Trace,
			Span:    newSpanID(),
			Parent:  r.parent.Span,
			Service: service,
			Name:    "stage:" + obs.StageNames[i],
			Note:    "aggregate across workers",
			Start:   start,
			Dur:     d,
		})
		start += d
	}
}
