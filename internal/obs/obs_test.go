package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries: le semantics are inclusive — a value
// exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,10], (10,100], (100,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d observations, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if s := h.Sum(); s < 1e9 || s > 1e9+400 {
		t.Errorf("Sum = %g out of range", s)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 1.6e-5}
	for i := range want {
		if diff := b[i]/want[i] - 1; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

// TestConcurrentCounters drives counters, float counters, gauges and a
// histogram from many goroutines; run under -race this is the data-race
// regression test for the whole metric layer.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	cf := r.CounterF("cf", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefBuckets)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cf.Add(0.5)
				g.Add(1)
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := cf.Value(); got != workers*perWorker/2 {
		t.Errorf("float counter = %g, want %d", got, workers*perWorker/2)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestGetOrCreateReturnsSameSeries: the same name+labels resolve to the
// same underlying metric; different labels are distinct series.
func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "", "k", "v")
	b := r.Counter("x", "", "k", "v")
	if a != b {
		t.Error("same series resolved to different counters")
	}
	if c := r.Counter("x", "", "k", "w"); c == a {
		t.Error("distinct labels resolved to the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestStageClockAttribution: marks charge elapsed time to the right
// stages and Flush publishes exactly the touched ones.
func TestStageClockAttribution(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	before := StageHistogram(StageNTT).Count()
	beforeMul := StageHistogram(StageRowMul).Count()
	var c StageClock
	c.Start()
	time.Sleep(time.Millisecond)
	c.Mark(StageNTT)
	time.Sleep(time.Millisecond)
	c.Mark(StageRowMul)
	c.Flush()
	if got := StageHistogram(StageNTT).Count(); got != before+1 {
		t.Errorf("ntt histogram count %d, want %d", got, before+1)
	}
	if got := StageHistogram(StageRowMul).Count(); got != beforeMul+1 {
		t.Errorf("row_mul histogram count %d, want %d", got, beforeMul+1)
	}
}

// TestStageTaxonomyComplete: the paper's nine stages plus the hoisted
// decompose split and the pack-tree moddown split, unique non-empty
// names — DESIGN.md and the exposition format both key off this table.
func TestStageTaxonomyComplete(t *testing.T) {
	if NumStages != 11 {
		t.Fatalf("NumStages = %d, want the paper's 9 plus decompose and moddown", NumStages)
	}
	seen := map[string]bool{}
	for i, name := range StageNames {
		if name == "" {
			t.Errorf("stage %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
		if StageHistogram(i) == nil {
			t.Errorf("stage %q has no pre-registered histogram", name)
		}
	}
}

// TestNopModeZeroAllocs: with collection disabled, the full
// instrumentation vocabulary (Span, StageClock, On-guarded observations)
// performs zero heap allocations — the guarantee the warm ApplyInto
// path depends on.
func TestNopModeZeroAllocs(t *testing.T) {
	SetEnabled(false)
	h := GetHistogram("cham_test_nop_seconds", "", DefBuckets)
	c := GetCounter("cham_test_nop_total", "")
	var clk StageClock
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(h)
		clk.Start()
		clk.Mark(StageNTT)
		clk.Skip()
		clk.Flush()
		if On() {
			c.Inc()
		}
		sp.End()
	}); allocs != 0 {
		t.Errorf("nop-mode instrumentation allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledModeZeroAllocs: even with collection on, observations stay
// off the heap (handles are pre-resolved; only time.Now is added).
func TestEnabledModeZeroAllocs(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	h := GetHistogram("cham_test_on_seconds", "", DefBuckets)
	c := GetCounter("cham_test_on_total", "")
	var clk StageClock
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(h)
		clk.Start()
		clk.Mark(StageNTT)
		clk.Flush()
		c.Inc()
		sp.End()
	}); allocs != 0 {
		t.Errorf("enabled-mode instrumentation allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkNopOverhead measures the disabled-path cost of a fully
// instrumented region — the overhead budget DESIGN.md §9 quotes.
func BenchmarkNopOverhead(b *testing.B) {
	SetEnabled(false)
	h := GetHistogram("cham_test_nop_bench_seconds", "", DefBuckets)
	var clk StageClock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(h)
		clk.Start()
		clk.Mark(StageRowMul)
		clk.Flush()
		sp.End()
	}
}
