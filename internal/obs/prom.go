package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf encodes as JSON null via MarshalJSON below
	Count uint64  `json:"count"`
}

// MarshalJSON renders +Inf as the string "+Inf" (JSON has no infinities).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = formatFloat(b.LE)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// MetricSnapshot is the point-in-time state of one series. Histograms
// carry interpolated quantile estimates (p50/p99/p99.9 — the SLO set)
// and, when a sampled trace contributed an observation, the exemplar
// trace ID linking the series back to /debug/traces.
type MetricSnapshot struct {
	Name     string            `json:"name"`
	Type     string            `json:"type"`
	Labels   map[string]string `json:"labels,omitempty"`
	Value    float64           `json:"value"`
	Count    uint64            `json:"count,omitempty"`
	Sum      float64           `json:"sum,omitempty"`
	P50      float64           `json:"p50,omitempty"`
	P99      float64           `json:"p99,omitempty"`
	P999     float64           `json:"p999,omitempty"`
	Exemplar string            `json:"exemplar,omitempty"`
	Buckets  []BucketSnapshot  `json:"buckets,omitempty"`
}

// Snapshot returns the state of every registered series, ordered by
// family name then label signature (the WriteTo order).
func (r *Registry) Snapshot() []MetricSnapshot {
	ms := r.sorted()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.kind.String()}
		if len(m.labels) > 0 {
			s.Labels = map[string]string{}
			for _, l := range m.labels {
				s.Labels[l[0]] = l[1]
			}
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.c.Value())
		case kindCounterF:
			s.Value = m.cf.Value()
		case kindGauge:
			s.Value = m.g.Value()
		case kindHistogram:
			var cum uint64
			for i, bound := range m.h.upper {
				cum += m.h.counts[i].Load()
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: bound, Count: cum})
			}
			cum += m.h.counts[len(m.h.upper)].Load()
			s.Buckets = append(s.Buckets, BucketSnapshot{LE: math.Inf(1), Count: cum})
			s.Count = cum
			s.Sum = m.h.Sum()
			s.Value = m.h.Sum()
			if cum > 0 {
				s.P50 = m.h.Quantile(0.50)
				s.P99 = m.h.Quantile(0.99)
				s.P999 = m.h.Quantile(0.999)
			}
			if ex := m.h.Exemplar(); ex != nil {
				s.Exemplar = ex.Label
			}
		}
		out = append(out, s)
	}
	return out
}

// sorted returns the metrics ordered by (family, label signature) — the
// deterministic order both WriteTo and Snapshot use.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	ms := make([]*metric, len(r.all))
	copy(ms, r.all)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return labelString(ms[i].labels) < labelString(ms[j].labels)
	})
	return ms
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, then each series, with
// histograms expanded to cumulative _bucket/_sum/_count lines.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	emit := func(format string, args ...any) error {
		c, err := fmt.Fprintf(bw, format, args...)
		n += int64(c)
		return err
	}
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			if err := emit("# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " ")); err != nil {
				return n, err
			}
			if err := emit("# TYPE %s %s\n", m.name, m.kind); err != nil {
				return n, err
			}
			lastFamily = m.name
		}
		var err error
		switch m.kind {
		case kindCounter:
			err = emit("%s%s %d\n", m.name, labelString(m.labels), m.c.Value())
		case kindCounterF:
			err = emit("%s%s %s\n", m.name, labelString(m.labels), formatFloat(m.cf.Value()))
		case kindGauge:
			err = emit("%s%s %s\n", m.name, labelString(m.labels), formatFloat(m.g.Value()))
		case kindHistogram:
			// An exemplar (sampled trace ID) rides the first bucket
			// wide enough to hold its observation, OpenMetrics-style:
			//   ..._bucket{le="0.25"} 7 # {trace_id="<hex>"} 0.2 <ts>
			// ParseText strips the suffix, so plain scrapers keep working.
			exSuffix := func(bound float64, done *bool) string {
				ex := m.h.Exemplar()
				if ex == nil || *done || ex.Value > bound {
					return ""
				}
				*done = true
				return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s", ex.Label,
					formatFloat(ex.Value), formatFloat(float64(ex.TS)/1e9))
			}
			exDone := false
			var cum uint64
			for i, bound := range m.h.upper {
				cum += m.h.counts[i].Load()
				if err = emit("%s_bucket%s %d%s\n", m.name,
					labelString(append(append([][2]string{}, m.labels...), [2]string{"le", formatFloat(bound)})), cum,
					exSuffix(bound, &exDone)); err != nil {
					return n, err
				}
			}
			cum += m.h.counts[len(m.h.upper)].Load()
			if err = emit("%s_bucket%s %d%s\n", m.name,
				labelString(append(append([][2]string{}, m.labels...), [2]string{"le", "+Inf"})), cum,
				exSuffix(math.Inf(1), &exDone)); err != nil {
				return n, err
			}
			if err = emit("%s_sum%s %s\n", m.name, labelString(m.labels), formatFloat(m.h.Sum())); err != nil {
				return n, err
			}
			err = emit("%s_count%s %d\n", m.name, labelString(m.labels), cum)
		}
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// formatFloat renders values the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders {k1="v1",k2="v2"} or "" for a bare series.
func labelString(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l[0], labelEscaper.Replace(l[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses the subset of the Prometheus text format WriteTo
// emits (cmd/chamtop uses it to read a live scrape back). Comment lines
// are skipped; histogram series come back under their expanded
// _bucket/_sum/_count names.
func ParseText(text string) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Drop OpenMetrics exemplar suffixes (` # {...} v ts`) so the
		// value split below sees only the series sample.
		if cut := strings.Index(line, " # {"); cut >= 0 {
			line = strings.TrimSpace(line[:cut])
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: line %d: no value separator", ln+1)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q", ln+1, valStr)
		}
		s := Sample{Value: val, Labels: map[string]string{}}
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("obs: line %d: unterminated labels", ln+1)
			}
			s.Name = series[:br]
			if err := parseLabels(series[br+1:len(series)-1], s.Labels); err != nil {
				return nil, fmt.Errorf("obs: line %d: %v", ln+1, err)
			}
		} else {
			s.Name = series
		}
		out = append(out, s)
	}
	return out, nil
}

// parseLabels fills dst from `k1="v1",k2="v2"`.
func parseLabels(body string, dst map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without value in %q", body)
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		i++ // closing quote
		dst[key] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}
