package core

import (
	"math/rand"
	"sync"
	"testing"

	"cham/internal/bfv"
	"cham/internal/ref"
	"cham/internal/rlwe"
)

var hmvpFuzz struct {
	once sync.Once
	p    bfv.Params
	sk   *rlwe.SecretKey
	ev   *Evaluator
	refK map[int]*ref.SwitchingKey
	err  error
}

func hmvpFuzzSetup() error {
	hmvpFuzz.once.Do(func() {
		p, err := bfv.NewChamParams(32)
		if err != nil {
			hmvpFuzz.err = err
			return
		}
		rng := rand.New(rand.NewSource(99))
		sk := p.KeyGen(rng)
		ev, err := NewEvaluator(p, rng, sk, 8)
		if err != nil {
			hmvpFuzz.err = err
			return
		}
		hmvpFuzz.p, hmvpFuzz.sk, hmvpFuzz.ev = p, sk, ev
		hmvpFuzz.refK = ref.Keys(p, ev.Keys)
	})
	return hmvpFuzz.err
}

// FuzzHMVPDifferential runs the optimized pipeline against the big.Int
// reference model end to end on fuzz-chosen shapes and contents: the
// packed outputs must agree bit for bit and both must decrypt to the
// cleartext product.
func FuzzHMVPDifferential(f *testing.F) {
	f.Add(uint8(1), uint8(32), int64(1))
	f.Add(uint8(3), uint8(40), int64(2))
	f.Add(uint8(6), uint8(96), int64(-5))
	f.Fuzz(func(t *testing.T, rowsSel, colsSel uint8, seed int64) {
		if err := hmvpFuzzSetup(); err != nil {
			t.Fatal(err)
		}
		p, sk, ev := hmvpFuzz.p, hmvpFuzz.sk, hmvpFuzz.ev
		rows := 1 + int(rowsSel)%8
		cols := 1 + int(colsSel)%(3*p.R.N) // up to 3 chunks
		rng := rand.New(rand.NewSource(seed))

		A := make([][]uint64, rows)
		for i := range A {
			A[i] = make([]uint64, cols)
			for j := range A[i] {
				A[i][j] = rng.Uint64() % p.T.Q
			}
		}
		v := make([]uint64, cols)
		for j := range v {
			v[j] = rng.Uint64() % p.T.Q
		}
		ctV := EncryptVector(p, rng, sk, v)

		res, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ref.HMVP(p, A, ctV, hmvpFuzz.refK)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.MatchesResult(p, res.Packed); err != nil {
			t.Fatalf("rows=%d cols=%d seed=%d: %v", rows, cols, seed, err)
		}
		want := PlainMatVec(p, A, v)
		opt := DecryptResult(p, res, sk)
		refDec := tr.DecryptResult(p, sk)
		for i := range want {
			if opt[i] != want[i] || refDec[i] != want[i] {
				t.Fatalf("rows=%d cols=%d seed=%d row %d: optimized %d, reference %d, cleartext %d",
					rows, cols, seed, i, opt[i], refDec[i], want[i])
			}
		}
	})
}
