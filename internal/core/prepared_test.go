package core

import (
	"runtime"
	"testing"

	"cham/internal/rlwe"
	"cham/internal/testutil"
)

// ctEqual compares two ciphertexts coefficient for coefficient.
func ctEqual(a, b *rlwe.Ciphertext) bool {
	if a.Levels() != b.Levels() || a.IsNTT() != b.IsNTT() {
		return false
	}
	for l := 0; l < a.Levels(); l++ {
		for j := range a.B.Coeffs[l] {
			if a.B.Coeffs[l][j] != b.B.Coeffs[l][j] || a.A.Coeffs[l][j] != b.A.Coeffs[l][j] {
				return false
			}
		}
	}
	return true
}

// TestMatVecWorkerDeterminism: worker count is a performance knob only —
// the packed ciphertexts must be bit-identical between strictly serial
// evaluation and full parallelism.
func TestMatVecWorkerDeterminism(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{
		{8, 64}, {13, 100}, {70, 64}, // padded, multi-chunk, multi-tile
	}
	for _, s := range shapes {
		A := randomMatrix(rng, s.m, s.n, p.T.Q)
		v := randomVector(rng, s.n, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)

		ev.Workers = 1
		serial, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("%dx%d serial: %v", s.m, s.n, err)
		}
		ev.Workers = runtime.GOMAXPROCS(0) + 3 // oversubscribe deliberately
		parallel, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("%dx%d parallel: %v", s.m, s.n, err)
		}
		if len(serial.Packed) != len(parallel.Packed) {
			t.Fatalf("%dx%d: tile count differs", s.m, s.n)
		}
		for ti := range serial.Packed {
			if !ctEqual(serial.Packed[ti], parallel.Packed[ti]) {
				t.Errorf("%dx%d tile %d: serial and parallel ciphertexts differ", s.m, s.n, ti)
			}
		}
	}
}

// TestPreparedMatchesMatVec: Prepare+Apply must produce bit-identical
// packed ciphertexts to per-call MatVec over random shapes, including
// non-power-of-two row counts and multi-chunk column counts, and repeated
// Apply calls (exercising the pooled scratch) must stay stable.
func TestPreparedMatchesMatVec(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(2*p.R.N) // up to two row tiles
		n := 1 + rng.Intn(3*p.R.N) // up to three column chunks
		A := randomMatrix(rng, m, n, p.T.Q)
		v := randomVector(rng, n, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)

		ref, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("trial %d (%dx%d): %v", trial, m, n, err)
		}
		pm, err := ev.Prepare(A)
		if err != nil {
			t.Fatalf("trial %d (%dx%d): %v", trial, m, n, err)
		}
		if pm.Rows() != m || pm.Cols() != n {
			t.Fatalf("trial %d: prepared shape %dx%d, want %dx%d", trial, pm.Rows(), pm.Cols(), m, n)
		}
		res := pm.NewResult()
		for rep := 0; rep < 2; rep++ {
			if err := pm.ApplyInto(res, ctV); err != nil {
				t.Fatalf("trial %d rep %d: %v", trial, rep, err)
			}
			if len(res.Packed) != len(ref.Packed) {
				t.Fatalf("trial %d: tile count differs", trial)
			}
			for ti := range ref.Packed {
				if !ctEqual(ref.Packed[ti], res.Packed[ti]) {
					t.Errorf("trial %d rep %d tile %d: prepared and direct ciphertexts differ",
						trial, rep, ti)
				}
			}
		}
		want := PlainMatVec(p, A, v)
		got := DecryptResult(p, res, sk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: decrypted %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestPreparedValidation: Apply-side error paths.
func TestPreparedValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Prepare(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := ev.Prepare([][]uint64{{}}); err == nil {
		t.Error("zero-column matrix accepted")
	}
	if _, err := ev.Prepare([][]uint64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := ev.Prepare(randomMatrix(rng, 8, 16, p.T.Q)); err == nil {
		t.Error("tile beyond packing keys accepted")
	}
	pm, err := ev.Prepare(randomMatrix(rng, 4, 16, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	ctV := EncryptVector(p, rng, sk, randomVector(rng, 16, p.T.Q))
	if _, err := pm.Apply(append(ctV, ctV...)); err == nil {
		t.Error("chunk-count mismatch accepted")
	}
	// A ciphertext without the augmented basis must be rejected.
	bad := []*rlwe.Ciphertext{p.Encrypt(rng, sk, p.NewPlaintext(), p.NormalLevels)}
	if _, err := pm.Apply(bad); err == nil {
		t.Error("normal-basis vector ciphertext accepted")
	}
}

// TestPreparedMisuse: every wrong way to hold the ApplyInto/evaluator API
// must come back as an error, never a panic.
func TestPreparedMisuse(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	if _, err := NewEvaluator(p, rng, sk, 0); err == nil {
		t.Error("NewEvaluator accepted maxRows=0")
	}
	if _, err := NewEvaluator(p, rng, sk, -3); err == nil {
		t.Error("NewEvaluator accepted negative maxRows")
	}

	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ev.Prepare(randomMatrix(rng, 4, 16, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	ctV := EncryptVector(p, rng, sk, randomVector(rng, 16, p.T.Q))

	// Results that did not come from NewResult must be rejected by shape.
	if err := pm.ApplyInto(&Result{}, ctV); err == nil {
		t.Error("ApplyInto accepted an empty Result")
	}
	if err := pm.ApplyInto(&Result{Packed: []*rlwe.Ciphertext{nil}}, ctV); err == nil {
		t.Error("ApplyInto accepted a nil result tile")
	}
	short := &Result{Packed: []*rlwe.Ciphertext{{B: p.R.NewPoly(1), A: p.R.NewPoly(1)}}}
	if err := pm.ApplyInto(short, ctV); err == nil {
		t.Error("ApplyInto accepted a result tile with too few limbs")
	}
	tiny := &Result{Packed: []*rlwe.Ciphertext{
		{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)},
	}}
	tiny.Packed[0].B.Coeffs[0] = tiny.Packed[0].B.Coeffs[0][:4]
	if err := pm.ApplyInto(tiny, ctV); err == nil {
		t.Error("ApplyInto accepted a result tile with the wrong ring degree")
	}
	// A well-shaped Result still works after all the rejections (the
	// validation must be side-effect free).
	if err := pm.ApplyInto(pm.NewResult(), ctV); err != nil {
		t.Errorf("valid ApplyInto failed after misuse attempts: %v", err)
	}

	// MatVec / MatVecMulti argument errors.
	if _, err := ev.MatVec([][]uint64{{1, 2}, {3}}, ctV); err == nil {
		t.Error("MatVec accepted a ragged matrix")
	}
	if _, err := ev.MatVec(randomMatrix(rng, 2, 16, p.T.Q), nil); err == nil {
		t.Error("MatVec accepted a missing vector")
	}
	if _, err := ev.MatVecMulti(randomMatrix(rng, 2, 16, p.T.Q), nil); err == nil {
		t.Error("MatVecMulti accepted zero vectors")
	}
	if _, err := ev.MatVecMulti(randomMatrix(rng, 2, 16, p.T.Q),
		[][]*rlwe.Ciphertext{ctV, append(ctV, ctV...)}); err == nil {
		t.Error("MatVecMulti accepted a chunk-count mismatch")
	}
}
