package core

import (
	"errors"
	"runtime"
	"testing"

	"cham/internal/obs"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

// obsEnable turns telemetry on for one test and restores the previous
// state afterwards.
func obsEnable(t *testing.T) {
	t.Helper()
	prev := obs.On()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

// wantErr asserts err wraps the expected sentinel (the typed classes the
// metrics layer counts).
func wantErr(t *testing.T, err, sentinel error, what string) {
	t.Helper()
	if err == nil {
		t.Errorf("%s: no error", what)
		return
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("%s: error %q does not wrap %q", what, err, sentinel)
	}
}

// ctEqual compares two ciphertexts coefficient for coefficient.
func ctEqual(a, b *rlwe.Ciphertext) bool {
	if a.Levels() != b.Levels() || a.IsNTT() != b.IsNTT() {
		return false
	}
	for l := 0; l < a.Levels(); l++ {
		for j := range a.B.Coeffs[l] {
			if a.B.Coeffs[l][j] != b.B.Coeffs[l][j] || a.A.Coeffs[l][j] != b.A.Coeffs[l][j] {
				return false
			}
		}
	}
	return true
}

// TestMatVecWorkerDeterminism: worker count is a performance knob only —
// the packed ciphertexts must be bit-identical between strictly serial
// evaluation and full parallelism.
func TestMatVecWorkerDeterminism(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{
		{8, 64}, {13, 100}, {70, 64}, // padded, multi-chunk, multi-tile
	}
	for _, s := range shapes {
		A := randomMatrix(rng, s.m, s.n, p.T.Q)
		v := randomVector(rng, s.n, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)

		ev.Workers = 1
		serial, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("%dx%d serial: %v", s.m, s.n, err)
		}
		ev.Workers = runtime.GOMAXPROCS(0) + 3 // oversubscribe deliberately
		parallel, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("%dx%d parallel: %v", s.m, s.n, err)
		}
		if len(serial.Packed) != len(parallel.Packed) {
			t.Fatalf("%dx%d: tile count differs", s.m, s.n)
		}
		for ti := range serial.Packed {
			if !ctEqual(serial.Packed[ti], parallel.Packed[ti]) {
				t.Errorf("%dx%d tile %d: serial and parallel ciphertexts differ", s.m, s.n, ti)
			}
		}
	}
}

// TestPreparedMatchesMatVec: Prepare+Apply must produce bit-identical
// packed ciphertexts to per-call MatVec over random shapes, including
// non-power-of-two row counts and multi-chunk column counts, and repeated
// Apply calls (exercising the pooled scratch) must stay stable.
func TestPreparedMatchesMatVec(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(2*p.R.N) // up to two row tiles
		n := 1 + rng.Intn(3*p.R.N) // up to three column chunks
		A := randomMatrix(rng, m, n, p.T.Q)
		v := randomVector(rng, n, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)

		ref, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("trial %d (%dx%d): %v", trial, m, n, err)
		}
		pm, err := ev.Prepare(A)
		if err != nil {
			t.Fatalf("trial %d (%dx%d): %v", trial, m, n, err)
		}
		if pm.Rows() != m || pm.Cols() != n {
			t.Fatalf("trial %d: prepared shape %dx%d, want %dx%d", trial, pm.Rows(), pm.Cols(), m, n)
		}
		res := pm.NewResult()
		for rep := 0; rep < 2; rep++ {
			if err := pm.ApplyInto(res, ctV); err != nil {
				t.Fatalf("trial %d rep %d: %v", trial, rep, err)
			}
			if len(res.Packed) != len(ref.Packed) {
				t.Fatalf("trial %d: tile count differs", trial)
			}
			for ti := range ref.Packed {
				if !ctEqual(ref.Packed[ti], res.Packed[ti]) {
					t.Errorf("trial %d rep %d tile %d: prepared and direct ciphertexts differ",
						trial, rep, ti)
				}
			}
		}
		want := PlainMatVec(p, A, v)
		got := DecryptResult(p, res, sk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: decrypted %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestPreparedValidation: Apply-side error paths.
func TestPreparedValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ev.Prepare(nil)
	wantErr(t, err, ErrEmptyMatrix, "empty matrix")
	_, err = ev.Prepare([][]uint64{{}})
	wantErr(t, err, ErrEmptyMatrix, "zero-column matrix")
	_, err = ev.Prepare([][]uint64{{1, 2}, {1}})
	wantErr(t, err, ErrRaggedMatrix, "ragged matrix")
	_, err = ev.Prepare(randomMatrix(rng, 8, 16, p.T.Q))
	wantErr(t, err, ErrTileTooLarge, "tile beyond packing keys")
	pm, err := ev.Prepare(randomMatrix(rng, 4, 16, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	ctV := EncryptVector(p, rng, sk, randomVector(rng, 16, p.T.Q))
	_, err = pm.Apply(append(ctV, ctV...))
	wantErr(t, err, ErrVectorLength, "chunk-count mismatch")
	// A ciphertext without the augmented basis must be rejected.
	bad := []*rlwe.Ciphertext{p.Encrypt(rng, sk, p.NewPlaintext(), p.NormalLevels)}
	_, err = pm.Apply(bad)
	wantErr(t, err, ErrVectorBasis, "normal-basis vector ciphertext")
}

// TestPreparedMisuse: every wrong way to hold the ApplyInto/evaluator API
// must come back as an error, never a panic.
func TestPreparedMisuse(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	if _, err := NewEvaluator(p, rng, sk, 0); err == nil {
		t.Error("NewEvaluator accepted maxRows=0")
	}
	if _, err := NewEvaluator(p, rng, sk, -3); err == nil {
		t.Error("NewEvaluator accepted negative maxRows")
	}

	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ev.Prepare(randomMatrix(rng, 4, 16, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	ctV := EncryptVector(p, rng, sk, randomVector(rng, 16, p.T.Q))

	// Results that did not come from NewResult must be rejected by shape.
	wantErr(t, pm.ApplyInto(&Result{}, ctV), ErrResultShape, "empty Result")
	wantErr(t, pm.ApplyInto(&Result{Packed: []*rlwe.Ciphertext{nil}}, ctV),
		ErrResultShape, "nil result tile")
	short := &Result{Packed: []*rlwe.Ciphertext{{B: p.R.NewPoly(1), A: p.R.NewPoly(1)}}}
	wantErr(t, pm.ApplyInto(short, ctV), ErrResultShape, "result tile with too few limbs")
	tiny := &Result{Packed: []*rlwe.Ciphertext{
		{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)},
	}}
	tiny.Packed[0].B.Coeffs[0] = tiny.Packed[0].B.Coeffs[0][:4]
	wantErr(t, pm.ApplyInto(tiny, ctV), ErrResultShape, "result tile with the wrong ring degree")
	// A well-shaped Result still works after all the rejections (the
	// validation must be side-effect free).
	if err := pm.ApplyInto(pm.NewResult(), ctV); err != nil {
		t.Errorf("valid ApplyInto failed after misuse attempts: %v", err)
	}

	// MatVec / MatVecMulti argument errors.
	_, err = ev.MatVec([][]uint64{{1, 2}, {3}}, ctV)
	wantErr(t, err, ErrRaggedMatrix, "MatVec ragged matrix")
	_, err = ev.MatVec(randomMatrix(rng, 2, 16, p.T.Q), nil)
	wantErr(t, err, ErrVectorLength, "MatVec missing vector")
	_, err = ev.MatVec(nil, ctV)
	wantErr(t, err, ErrEmptyMatrix, "MatVec empty matrix")
	_, err = ev.MatVecMulti(randomMatrix(rng, 2, 16, p.T.Q), nil)
	wantErr(t, err, ErrVectorLength, "MatVecMulti zero vectors")
	_, err = ev.MatVecMulti(randomMatrix(rng, 2, 16, p.T.Q),
		[][]*rlwe.Ciphertext{ctV, append(ctV, ctV...)})
	wantErr(t, err, ErrVectorLength, "MatVecMulti chunk-count mismatch")
}

// TestErrorClassCounters: with telemetry enabled, each misuse increments
// the matching cham_hmvp_errors_total class counter exactly once.
func TestErrorClassCounters(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctV := EncryptVector(p, rng, sk, randomVector(rng, 16, p.T.Q))

	obsEnable(t)
	classCount := func(sentinel error) uint64 {
		for _, ec := range errClasses {
			if errors.Is(sentinel, ec.sentinel) {
				return ec.counter.Value()
			}
		}
		t.Fatalf("no class counter for %v", sentinel)
		return 0
	}
	for _, tc := range []struct {
		sentinel error
		trigger  func() error
	}{
		{ErrEmptyMatrix, func() error { _, err := ev.Prepare(nil); return err }},
		{ErrRaggedMatrix, func() error { _, err := ev.MatVec([][]uint64{{1, 2}, {3}}, ctV); return err }},
		{ErrVectorLength, func() error { _, err := ev.MatVec(randomMatrix(rng, 2, 16, p.T.Q), nil); return err }},
		{ErrTileTooLarge, func() error { _, err := ev.Prepare(randomMatrix(rng, 8, 16, p.T.Q)); return err }},
	} {
		before := classCount(tc.sentinel)
		if err := tc.trigger(); err == nil {
			t.Errorf("%v: trigger produced no error", tc.sentinel)
			continue
		}
		if got := classCount(tc.sentinel); got != before+1 {
			t.Errorf("%v: class counter went %d -> %d, want +1", tc.sentinel, before, got)
		}
	}
}

// TestPrepareTilesSparse: a sparsely prepared matrix applies exactly the
// tiles it owns, bit-identical to the full preparation (the invariant the
// sharded serving tier builds on), lazily fills in missing tiles with
// PrepareTile, and rejects touching an unprepared tile with the typed
// sentinel.
func TestPrepareTilesSparse(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	m, n := 3*p.R.N+5, p.R.N+7 // four row tiles (one short), two column chunks
	A := randomMatrix(rng, m, n, p.T.Q)
	v := randomVector(rng, n, p.T.Q)
	ctV := EncryptVector(p, rng, sk, v)

	full, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	ref := full.NewResult()
	if err := full.ApplyInto(ref, ctV); err != nil {
		t.Fatal(err)
	}

	own := []int{0, 2} // a shard's non-contiguous subset
	pm, err := ev.PrepareTiles(A, own)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Tiles() != full.Tiles() {
		t.Fatalf("sparse matrix reports %d tiles, full reports %d", pm.Tiles(), full.Tiles())
	}
	for ti := 0; ti < pm.Tiles(); ti++ {
		want := ti == 0 || ti == 2
		if pm.HasTile(ti) != want {
			t.Errorf("HasTile(%d) = %v, want %v", ti, pm.HasTile(ti), want)
		}
	}
	if pm.HasTile(-1) || pm.HasTile(pm.Tiles()) {
		t.Error("HasTile accepted an out-of-range index")
	}
	if got := pm.TileRows(3); got != m-3*p.R.N {
		t.Errorf("TileRows(3) = %d, want %d", got, m-3*p.R.N)
	}

	newOut := func(k int) []*rlwe.Ciphertext {
		out := make([]*rlwe.Ciphertext, k)
		for i := range out {
			out[i] = &rlwe.Ciphertext{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)}
		}
		return out
	}
	out := newOut(len(own))
	if err := pm.ApplyTiles(out, own, ctV); err != nil {
		t.Fatal(err)
	}
	for k, ti := range own {
		if !ctEqual(out[k], ref.Packed[ti]) {
			t.Errorf("sparse tile %d differs from full apply", ti)
		}
	}

	// Unprepared and out-of-range tiles come back as typed sentinels.
	wantErr(t, pm.ApplyTiles(newOut(1), []int{1}, ctV), ErrTileNotPrepared, "unprepared tile")
	wantErr(t, pm.ApplyTiles(newOut(1), []int{9}, ctV), ErrTileIndex, "out-of-range tile")
	wantErr(t, pm.ApplyInto(pm.NewResult(), ctV), ErrTileNotPrepared, "full apply on sparse matrix")
	wantErr(t, pm.ApplyTiles(newOut(2), []int{0}, ctV), ErrResultShape, "output slot count mismatch")
	wantErr(t, pm.PrepareTile(A, 17), ErrTileIndex, "PrepareTile out of range")
	wantErr(t, pm.PrepareTile(A[:1], 1), ErrRaggedMatrix, "PrepareTile wrong row count")

	// Lazy fill-in: after PrepareTile the remaining tiles apply and the
	// whole matrix matches the full preparation; re-preparing is a no-op.
	for _, ti := range []int{1, 3, 1} {
		if err := pm.PrepareTile(A, ti); err != nil {
			t.Fatal(err)
		}
	}
	res := pm.NewResult()
	if err := pm.ApplyInto(res, ctV); err != nil {
		t.Fatal(err)
	}
	for ti := range ref.Packed {
		if !ctEqual(res.Packed[ti], ref.Packed[ti]) {
			t.Errorf("tile %d differs after lazy preparation", ti)
		}
	}

	// PrepareTiles with an empty (non-nil) subset validates but prepares
	// nothing.
	empty, err := ev.PrepareTiles(A, []int{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < empty.Tiles(); ti++ {
		if empty.HasTile(ti) {
			t.Errorf("empty subset prepared tile %d", ti)
		}
	}
	_, err = ev.PrepareTiles(A, []int{0, 99})
	wantErr(t, err, ErrTileIndex, "PrepareTiles out-of-range subset")
}
