package core

import "errors"

// Typed sentinel errors for every misuse class of the HMVP API. All
// error returns from Prepare/Apply/ApplyInto/MatVec wrap one of these
// with %w, so callers branch with errors.Is and the telemetry layer
// counts failures per class (cham_hmvp_errors_total).
var (
	// ErrEmptyMatrix: a matrix with no rows or no columns.
	ErrEmptyMatrix = errors.New("core: empty matrix")
	// ErrRaggedMatrix: rows of differing lengths.
	ErrRaggedMatrix = errors.New("core: ragged matrix")
	// ErrVectorLength: the encrypted vector's chunk count does not match
	// the matrix's column chunks.
	ErrVectorLength = errors.New("core: vector length mismatch")
	// ErrVectorBasis: a vector ciphertext does not carry the augmented
	// (full) RNS basis EncryptVector produces.
	ErrVectorBasis = errors.New("core: vector ciphertext lacks the augmented basis")
	// ErrResultShape: a Result passed to ApplyInto has the wrong tile
	// count, nil tiles, or mis-shaped polynomials; allocate with NewResult.
	ErrResultShape = errors.New("core: result shape mismatch")
	// ErrTileTooLarge: a row tile needs packing keys beyond Keys.M.
	ErrTileTooLarge = errors.New("core: tile exceeds packing keys")
	// ErrTileIndex: a tile index outside [0, Tiles()).
	ErrTileIndex = errors.New("core: tile index out of range")
	// ErrTileNotPrepared: ApplyTiles/ApplyInto touched a tile that was
	// skipped at PrepareTiles time and not filled in by PrepareTile since.
	ErrTileNotPrepared = errors.New("core: tile not prepared")
)
