package core

import (
	"math/rand"
	"testing"
)

func randomTensor(rng *rand.Rand, c, h, w int, bound uint64) [][][]uint64 {
	x := make([][][]uint64, c)
	for i := range x {
		x[i] = randomImage(rng, h, w, bound)
	}
	return x
}

func TestConv3DMatchesPlain(t *testing.T) {
	p := testParams(t, 256)
	rng := rand.New(rand.NewSource(40))
	sk := p.KeyGen(rng)

	shapes := []Conv3DShape{
		{C: 1, H: 8, W: 8, KH: 3, KW: 3},  // degenerates to conv2d
		{C: 3, H: 8, W: 8, KH: 3, KW: 3},  // RGB-style
		{C: 4, H: 8, W: 8, KH: 1, KW: 1},  // pointwise (1x1) conv
		{C: 2, H: 4, W: 16, KH: 2, KW: 5}, // rectangular
		{C: 4, H: 8, W: 8, KH: 8, KW: 8},  // full-image kernel
	}
	for _, s := range shapes {
		x := randomTensor(rng, s.C, s.H, s.W, 64)
		k := randomTensor(rng, s.C, s.KH, s.KW, 64)
		pt, err := EncodeTensor(p, s, x)
		if err != nil {
			t.Fatal(err)
		}
		ctX := p.Encrypt(rng, sk, pt, p.R.Levels())
		ctOut, err := Conv3D(p, s, ctX, k)
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeConv3DOutput(p, s, p.Decrypt(ctOut, sk))
		want := PlainConv3D(p, s, x, k)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%+v: output (%d,%d) = %d, want %d", s, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestConv3DAgreesWithConv2D: a single-channel Conv3D must equal Conv2D.
func TestConv3DAgreesWithConv2D(t *testing.T) {
	p := testParams(t, 128)
	rng := rand.New(rand.NewSource(41))
	sk := p.KeyGen(rng)

	s2 := Conv2DShape{H: 8, W: 8, KH: 3, KW: 3}
	s3 := Conv3DShape{C: 1, H: 8, W: 8, KH: 3, KW: 3}
	img := randomImage(rng, 8, 8, 100)
	ker := randomImage(rng, 3, 3, 100)

	ipt, _ := EncodeImage(p, s2, img)
	ct2, _ := Conv2D(p, s2, p.Encrypt(rng, sk, ipt, p.R.Levels()), ker)
	out2 := DecodeConvOutput(p, s2, p.Decrypt(ct2, sk))

	tpt, _ := EncodeTensor(p, s3, [][][]uint64{img})
	ct3, _ := Conv3D(p, s3, p.Encrypt(rng, sk, tpt, p.R.Levels()), [][][]uint64{ker})
	out3 := DecodeConv3DOutput(p, s3, p.Decrypt(ct3, sk))

	for i := range out2 {
		for j := range out2[i] {
			if out2[i][j] != out3[i][j] {
				t.Fatalf("(%d,%d): conv2d %d vs conv3d %d", i, j, out2[i][j], out3[i][j])
			}
		}
	}
}

func TestConv3DValidation(t *testing.T) {
	p := testParams(t, 64)
	bad := []Conv3DShape{
		{C: 0, H: 4, W: 4, KH: 1, KW: 1},
		{C: 1, H: 4, W: 4, KH: 5, KW: 1},
		{C: 2, H: 8, W: 8, KH: 1, KW: 1}, // 128 > N=64
	}
	for _, s := range bad {
		if err := s.Validate(p.R.N); err == nil {
			t.Errorf("shape %+v accepted", s)
		}
	}
	s := Conv3DShape{C: 2, H: 4, W: 4, KH: 2, KW: 2}
	if _, err := EncodeTensor(p, s, make([][][]uint64, 1)); err == nil {
		t.Error("wrong channel count accepted")
	}
	if _, err := EncodeKernel3D(p, s, randomTensor(rand.New(rand.NewSource(1)), 2, 3, 2, 4)); err == nil {
		t.Error("wrong kernel height accepted")
	}
}
