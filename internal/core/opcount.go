package core

import "math/bits"

// OpCounts tallies the functional-unit work of homomorphic kernels in
// device-neutral units. One "NTT" is a single-limb polynomial transform
// ((N/2)·log2 N butterflies); one "MultPoly" is a single-limb
// coefficient-wise multiplication (N modular multiplies); Rescale and
// Extract are coefficient-wise passes. These counts drive the roofline
// model (Fig. 2a) and cross-check the pipeline simulator.
type OpCounts struct {
	NTT       int // forward single-limb transforms
	INTT      int // inverse single-limb transforms
	MultPoly  int // coefficient-wise limb multiplications
	Rescale   int // ModDown limb passes
	Extract   int // EXTRACTLWES passes
	PackRed   int // PACKTWOLWES reductions
	KeySwitch int // key-switch invocations (inside PackRed and others)
}

// Add accumulates other into c.
func (c *OpCounts) Add(o OpCounts) {
	c.NTT += o.NTT
	c.INTT += o.INTT
	c.MultPoly += o.MultPoly
	c.Rescale += o.Rescale
	c.Extract += o.Extract
	c.PackRed += o.PackRed
	c.KeySwitch += o.KeySwitch
}

// Scale multiplies every counter by k.
func (c OpCounts) Scale(k int) OpCounts {
	return OpCounts{
		NTT:       c.NTT * k,
		INTT:      c.INTT * k,
		MultPoly:  c.MultPoly * k,
		Rescale:   c.Rescale * k,
		Extract:   c.Extract * k,
		PackRed:   c.PackRed * k,
		KeySwitch: c.KeySwitch * k,
	}
}

// ModMuls converts the counts into total modular multiplications for a
// degree-n ring — the paper's roofline operation (one 27x18 DSP multiply
// approximates one modular-multiply datapath step).
func (c OpCounts) ModMuls(n int) int64 {
	logN := bits.Len(uint(n)) - 1
	perNTT := int64(n/2) * int64(logN)
	total := int64(c.NTT+c.INTT)*perNTT + int64(c.MultPoly)*int64(n)
	// Rescale: one scalar-inverse multiply per coefficient per limb pass.
	total += int64(c.Rescale) * int64(n)
	// Extract is data movement only.
	return total
}

// KeySwitchOps returns the per-invocation cost of one hybrid key switch at
// the given basis sizes: dnum digit NTTs over the full basis, the key
// products, the inverse transforms and the ModDown passes.
func KeySwitchOps(normalLevels, fullLevels int) OpCounts {
	dnum := normalLevels
	return OpCounts{
		NTT:       dnum * fullLevels,     // each decomposed digit, all limbs
		MultPoly:  2 * dnum * fullLevels, // digit × (B_j, A_j)
		INTT:      2 * fullLevels,        // both output polys
		Rescale:   2 * normalLevels,      // ModDown both polys
		KeySwitch: 1,
	}
}

// HMVPOps returns the total work of Alg. 1 on an m×cols matrix at ring
// degree n with the given basis sizes. The encrypted vector's forward
// transform is counted once per column chunk (it is reused across rows).
func HMVPOps(n, normalLevels, fullLevels, m, cols int) OpCounts {
	if cols < 1 {
		cols = 1
	}
	chunks := (cols + n - 1) / n
	var total OpCounts

	// One-time: forward-transform each vector chunk (2 polys, full basis).
	total.NTT += 2 * fullLevels * chunks

	// Per row, per chunk: stage 1 plaintext NTT, stage 2 MULTPOLY,
	// stage 3 INTT, stage 4 RESCALE+EXTRACT.
	perRow := OpCounts{
		NTT:      fullLevels,       // plaintext limbs
		MultPoly: 2 * fullLevels,   // (b, a) × pt
		INTT:     2 * fullLevels,   // back to coefficient domain
		Rescale:  2 * normalLevels, // drop the special limb
		Extract:  1,
	}
	total.Add(perRow.Scale(m * chunks))

	// Packing: per tile of up to n rows, mPad-1 reductions, each costing
	// one key switch (the automorphism itself is a permutation).
	for base := 0; base < m; base += n {
		rows := m - base
		if rows > n {
			rows = n
		}
		mPad := nextPow2(rows)
		red := mPad - 1
		total.PackRed += red
		total.Add(KeySwitchOps(normalLevels, fullLevels).Scale(red))
	}
	return total
}

// BatchHMVPOps is the §II-E baseline cost: per row one slot multiply plus
// log2(N) trace key switches — O(m·log N) key switches total.
func BatchHMVPOps(n, normalLevels, fullLevels, m int) OpCounts {
	logN := bits.Len(uint(n)) - 1
	var total OpCounts
	total.NTT += 2 * fullLevels // vector transform, once
	perRow := OpCounts{
		NTT:      fullLevels,
		MultPoly: 2 * fullLevels,
		INTT:     2 * fullLevels,
		Rescale:  2 * normalLevels,
	}
	perRow.Add(KeySwitchOps(normalLevels, fullLevels).Scale(logN))
	total.Add(perRow.Scale(m))
	return total
}

// HMVPBytes estimates the DRAM traffic of one HMVP in bytes: the matrix
// plaintexts stream in once, the vector ciphertext once, and one packed
// ciphertext streams out per tile. Words are packed at their modulus bit
// widths, rounded to whole bytes per coefficient.
func HMVPBytes(n, normalLevels, fullLevels, m, cols int, limbBits []int, tBits int) int64 {
	if cols < 1 {
		cols = 1
	}
	chunks := (cols + n - 1) / n
	coeffBytes := func(bits int) int64 { return int64((bits + 7) / 8) }
	var total int64
	// Matrix rows arrive as mod-t cleartext (encoded on the fly).
	total += int64(m) * int64(cols) * coeffBytes(tBits)
	// Vector: 2 polys × fullLevels limbs per chunk.
	for l := 0; l < fullLevels; l++ {
		total += int64(chunks) * 2 * int64(n) * coeffBytes(limbBits[l])
	}
	// Output: one normal-basis ciphertext per tile.
	tiles := (m + n - 1) / n
	for l := 0; l < normalLevels; l++ {
		total += int64(tiles) * 2 * int64(n) * coeffBytes(limbBits[l])
	}
	return total
}
