package core

import "testing"

func TestOpCountsAddScale(t *testing.T) {
	a := OpCounts{NTT: 1, INTT: 2, MultPoly: 3, Rescale: 4, Extract: 5, PackRed: 6, KeySwitch: 7}
	b := a.Scale(2)
	if b.NTT != 2 || b.KeySwitch != 14 {
		t.Fatalf("Scale wrong: %+v", b)
	}
	a.Add(b)
	if a.NTT != 3 || a.PackRed != 18 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestModMuls(t *testing.T) {
	c := OpCounts{NTT: 1}
	// One 4096-point NTT = 2048·12 butterflies.
	if got := c.ModMuls(4096); got != 24576 {
		t.Fatalf("ModMuls = %d, want 24576", got)
	}
	c = OpCounts{MultPoly: 2, Rescale: 1}
	if got := c.ModMuls(4096); got != 3*4096 {
		t.Fatalf("ModMuls = %d, want %d", got, 3*4096)
	}
}

// TestHMVPOpsChamShape pins the Alg. 1 work for the paper's headline shape
// (m = n = N = 4096, one chunk).
func TestHMVPOpsChamShape(t *testing.T) {
	ops := HMVPOps(4096, 2, 3, 4096, 4096)
	if ops.PackRed != 4095 {
		t.Errorf("PackRed = %d, want 4095 (the paper's reduction count)", ops.PackRed)
	}
	if ops.Extract != 4096 {
		t.Errorf("Extract = %d, want 4096", ops.Extract)
	}
	// Per row: 3 plaintext-limb NTTs; plus 6 one-time vector transforms.
	if want := 4096*3 + 6 + 4095*2*3; ops.NTT != want {
		t.Errorf("NTT = %d, want %d", ops.NTT, want)
	}
	if ops.KeySwitch != 4095 {
		t.Errorf("KeySwitch = %d, want 4095", ops.KeySwitch)
	}
}

// TestComplexitySeparation: the paper's O(m) vs O(m·log N) claim — the
// batch baseline must perform ~log2(N)× more key switches than Alg. 1 at
// equal m, and the ratio must grow with N.
func TestComplexitySeparation(t *testing.T) {
	for _, n := range []int{1024, 4096} {
		m := n
		coeff := HMVPOps(n, 2, 3, m, n)
		batch := BatchHMVPOps(n, 2, 3, m)
		ratio := float64(batch.KeySwitch) / float64(coeff.KeySwitch)
		logN := 0
		for v := n; v > 1; v >>= 1 {
			logN++
		}
		if ratio < float64(logN)*0.9 || ratio > float64(logN)*1.2 {
			t.Errorf("N=%d: key-switch ratio %.2f, want ≈ log2(N)=%d", n, ratio, logN)
		}
	}
}

func TestHMVPOpsTiling(t *testing.T) {
	// Two full tiles: reductions double.
	ops := HMVPOps(1024, 2, 3, 2048, 1024)
	if ops.PackRed != 2*1023 {
		t.Errorf("PackRed = %d, want %d", ops.PackRed, 2*1023)
	}
	// Column chunking: the dot-product work doubles, the packing work
	// (15 reductions for 16 rows) is unchanged.
	one := HMVPOps(1024, 2, 3, 16, 1024)
	two := HMVPOps(1024, 2, 3, 16, 2048)
	ksPart := KeySwitchOps(2, 3).Scale(15).MultPoly
	if two.MultPoly-ksPart != 2*(one.MultPoly-ksPart) {
		t.Errorf("dot-product MultPoly did not double with column chunks: %d vs %d (ks %d)",
			two.MultPoly, one.MultPoly, ksPart)
	}
	// Non-power-of-two rows pad up.
	pad := HMVPOps(1024, 2, 3, 5, 1024)
	if pad.PackRed != 7 {
		t.Errorf("PackRed = %d, want 7 (pad 5 -> 8)", pad.PackRed)
	}
}

func TestHMVPBytes(t *testing.T) {
	limbBits := []int{35, 35, 39}
	b := HMVPBytes(4096, 2, 3, 4096, 4096, limbBits, 17)
	// Matrix: 4096·4096·3 bytes dominates.
	if b < 4096*4096*3 {
		t.Errorf("bytes %d below matrix size", b)
	}
	if b > 4096*4096*3+10*1024*1024 {
		t.Errorf("bytes %d implausibly large", b)
	}
	// Wider matrices move proportionally more data.
	if HMVPBytes(4096, 2, 3, 4096, 8192, limbBits, 17) <= b {
		t.Error("doubling columns did not increase traffic")
	}
}
