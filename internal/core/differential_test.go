package core

import (
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/noise"
	"cham/internal/ref"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

// Differential verification of the optimized HMVP pipeline against the
// big.Int reference model in internal/ref: same inputs, bit-for-bit equal
// packed ciphertexts, for every worker count, plus noise-budget invariants
// measured at each stage boundary of the reference trace.

// workerCounts returns the deduplicated {1, 4, NumCPU} set the pipeline
// must be bit-identical across.
func workerCounts() []int {
	set := []int{1, 4, runtime.NumCPU()}
	var out []int
	for _, w := range set {
		dup := false
		for _, seen := range out {
			dup = dup || seen == w
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// runDifferential drives one shape end to end: reference trace once, then
// the optimized pipeline (both the one-shot MatVec and the prepared
// ApplyInto hot path, at every worker count) compared against it.
func runDifferential(t *testing.T, p bfv.Params, sk *rlwe.SecretKey, keys *evKeys, A [][]uint64, v []uint64, ctV []*rlwe.Ciphertext) *ref.Trace {
	t.Helper()
	tr, err := ref.HMVP(p, A, ctV, keys.ref)
	if err != nil {
		t.Fatal(err)
	}
	want := PlainMatVec(p, A, v)
	got := tr.DecryptResult(p, sk)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reference model row %d decrypts to %d, cleartext product is %d", i, got[i], want[i])
		}
	}
	for _, w := range workerCounts() {
		ev := &Evaluator{P: p, Keys: keys.opt, Workers: w}
		res, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := tr.MatchesResult(p, res.Packed); err != nil {
			t.Fatalf("workers=%d MatVec: %v", w, err)
		}
		pm, err := ev.Prepare(A)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		out := pm.NewResult()
		// Apply twice into the same Result: scratch reuse must not leak
		// state between calls.
		for pass := 0; pass < 2; pass++ {
			if err := pm.ApplyInto(out, ctV); err != nil {
				t.Fatalf("workers=%d pass %d: %v", w, pass, err)
			}
			if err := tr.MatchesResult(p, out.Packed); err != nil {
				t.Fatalf("workers=%d ApplyInto pass %d: %v", w, pass, err)
			}
		}
		if dec := DecryptResult(p, res, sk); len(dec) != len(want) {
			t.Fatalf("workers=%d: decrypted %d rows, want %d", w, len(dec), len(want))
		} else {
			for i := range want {
				if dec[i] != want[i] {
					t.Fatalf("workers=%d row %d: optimized decrypts %d, want %d", w, i, dec[i], want[i])
				}
			}
		}
	}
	return tr
}

type evKeys struct {
	opt *lwe.PackingKeys
	ref map[int]*ref.SwitchingKey
}

// TestHMVPDifferentialN4096 is the headline differential check at the
// paper's ring degree: the full optimized pipeline must match the big.Int
// reference bit for bit across randomized shapes covering non-power-of-two
// row counts and multi-chunk (2- and 3-chunk) column counts, at every
// worker count. Row counts stay small so the exact reference key-switch
// convolutions remain affordable; the optimized path runs the same code
// for any m.
func TestHMVPDifferentialN4096(t *testing.T) {
	if testing.Short() {
		t.Skip("N=4096 reference model skipped in -short mode")
	}
	rng := testutil.NewRand(t)
	p := testParams(t, 4096)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := &evKeys{opt: ev.Keys, ref: ref.Keys(p, ev.Keys)}
	for _, s := range testutil.HMVPShapes(rng, p.R.N) {
		s := s
		t.Run(fmt.Sprintf("%dx%d", s.Rows, s.Cols), func(t *testing.T) {
			t.Parallel()
			rng := testutil.NewRand(t)
			A := testutil.SparseMatrix(rng, s.Rows, s.Cols, 16, p.T.Q)
			v := testutil.Vector(rng, s.Cols, p.T.Q)
			ctV := EncryptVector(p, rng, sk, v)
			runDifferential(t, p, sk, keys, A, v, ctV)
		})
	}
}

// TestHMVPDifferentialN256 covers the smallest benchmarked ring degree:
// the hoisted key-switch and batched-NTT kernels must stay bit-identical
// to the reference model at N=256 too (a different twiddle-table shape and
// pack-tree depth than the headline N=4096 run), across all worker counts.
func TestHMVPDifferentialN256(t *testing.T) {
	rng := testutil.NewRand(t)
	p := testParams(t, 256)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := &evKeys{opt: ev.Keys, ref: ref.Keys(p, ev.Keys)}
	// Dense 6-row, 2-chunk matrix: non-power-of-two rows, padded to 8.
	rows, cols := 6, p.R.N+11
	A := testutil.Matrix(rng, rows, cols, p.T.Q)
	v := testutil.Vector(rng, cols, p.T.Q)
	ctV := EncryptVector(p, rng, sk, v)
	runDifferential(t, p, sk, keys, A, v, ctV)
}

// TestHMVPDifferentialNoise runs the differential check at N=512 with
// dense rows and, via the reference trace, measures the actual noise at
// every stage boundary of Alg. 1 against the analytic estimator. A failure
// names the stage that broke its bound.
func TestHMVPDifferentialNoise(t *testing.T) {
	rng := testutil.NewRand(t)
	p := testParams(t, 512)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := &evKeys{opt: ev.Keys, ref: ref.Keys(p, ev.Keys)}
	// Dense 5-row, 2-chunk matrix: non-power-of-two rows, padded to 8.
	rows, cols := 5, p.R.N+37
	A := testutil.Matrix(rng, rows, cols, p.T.Q)
	v := testutil.Vector(rng, cols, p.T.Q)
	ctV := EncryptVector(p, rng, sk, v)
	tr := runDifferential(t, p, sk, keys, A, v, ctV)

	est := noise.New(p)
	n := p.R.N
	full := p.R.Levels()
	fullQ := p.R.Modulus(full)
	normalQ := p.R.Modulus(p.NormalLevels)
	special := p.R.Moduli[full-1].Q
	deltaFull := p.Delta(full)
	sFull := ref.ComposeSecret(p, sk, full)
	sNormal := ref.ComposeSecret(p, sk, p.NormalLevels)

	// centredBits returns the magnitude (in bits) of x - want modulo q.
	centredBits := func(x, want, q *big.Int) float64 {
		d := new(big.Int).Sub(x, want)
		d.Mod(d, q)
		if d.Cmp(new(big.Int).Rsh(q, 1)) > 0 {
			d.Sub(d, q)
		}
		return float64(d.Abs(d).BitLen())
	}
	check := func(stage string, measured, bound float64) {
		t.Helper()
		if measured > bound {
			t.Errorf("stage %s: measured noise %.1f bits exceeds the estimator bound %.1f", stage, measured, bound)
		} else {
			t.Logf("stage %s: %.1f bits (bound %.1f)", stage, measured, bound)
		}
	}

	// Stage 0 — fresh vector chunks: phase must sit within FreshSym of
	// Δ_full·lift(v).
	for c, ct := range tr.Vector {
		ph := ct.Phase(sFull)
		measured := 0.0
		for i := 0; i < n; i++ {
			var lift int64
			if j := c*n + i; j < len(v) {
				lift = p.T.CenterLift(v[j])
			}
			want := new(big.Int).Mul(deltaFull, big.NewInt(lift))
			if b := centredBits(ph.Coeffs[i], want.Mod(want, fullQ), fullQ); b > measured {
				measured = b
			}
		}
		check(fmt.Sprintf("fresh-vector[chunk=%d]", c), measured, est.FreshSym())
	}

	// Exact per-row slot payload: round(Δ_full·(scale·A_i·v)/p_special),
	// the integer the DOTPRODUCT+RESCALE stages should leave at the
	// constant coefficient.
	mPad := 8
	scale := p.InvPow2(3)
	slotPayload := func(row []uint64) *big.Int {
		var dot int64
		for j, a := range row {
			lifted := p.T.CenterLift(scale * a % p.T.Q)
			dot += lifted * p.T.CenterLift(v[j])
		}
		x := new(big.Int).Mul(deltaFull, big.NewInt(dot))
		return ref.ModDownScalar(x, special, normalQ)
	}
	mulBound := est.AfterMulPlain(est.FreshSym(), float64(p.T.Q)/2)
	slotBound := est.AfterRescale(mulBound)
	payloads := make([]*big.Int, rows)
	for i, slots := range tr.Slots[0] {
		payloads[i] = slotPayload(A[i])
		ph := slots.Phase(sNormal)
		check(fmt.Sprintf("dot+rescale+extract[row=%d]", i),
			centredBits(ph.Coeffs[0], payloads[i], normalQ), slotBound)
	}

	// Stage 5–9 — the packing tree multiplies each slot payload by mPad
	// and adds key-switch noise per level; the result must also clear the
	// decryption budget.
	packBound := est.AfterPackDeferred(slotBound, mPad)
	if budget := est.Budget(p.NormalLevels); packBound >= budget {
		t.Errorf("stage pack: estimator bound %.1f bits exceeds decryption budget %.1f", packBound, budget)
	}
	ph := tr.Packed[0].Phase(sNormal)
	stride := n / mPad
	for i := 0; i < rows; i++ {
		want := new(big.Int).Mul(payloads[i], big.NewInt(int64(mPad)))
		want.Mod(want, normalQ)
		check(fmt.Sprintf("pack[slot=%d]", i),
			centredBits(ph.Coeffs[i*stride], want, normalQ), packBound)
	}
}
