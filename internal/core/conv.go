package core

import (
	"fmt"

	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// 2-D convolution via coefficient encoding — the extension of Alg. 1 the
// paper points to (§II-E, after Cheetah [18]). A single-channel image is
// laid out row-major in polynomial coefficients; the kernel is encoded
// mirrored so that one negacyclic polynomial multiplication computes every
// valid convolution output simultaneously.

// Conv2DShape describes a valid (no-padding, stride-1) convolution.
type Conv2DShape struct {
	H, W   int // image height, width
	KH, KW int // kernel height, width
}

// OutH and OutW are the valid-output dimensions.
func (s Conv2DShape) OutH() int { return s.H - s.KH + 1 }
func (s Conv2DShape) OutW() int { return s.W - s.KW + 1 }

// Validate checks the shape fits the ring degree.
func (s Conv2DShape) Validate(n int) error {
	if s.H < 1 || s.W < 1 || s.KH < 1 || s.KW < 1 {
		return fmt.Errorf("core: non-positive convolution dimensions")
	}
	if s.KH > s.H || s.KW > s.W {
		return fmt.Errorf("core: kernel %dx%d larger than image %dx%d", s.KH, s.KW, s.H, s.W)
	}
	if s.H*s.W > n {
		return fmt.Errorf("core: image %dx%d does not fit N=%d coefficients", s.H, s.W, n)
	}
	return nil
}

// EncodeImage lays the image out row-major: coefficient i·W+j holds
// pixel (i, j).
func EncodeImage(p bfv.Params, s Conv2DShape, img [][]uint64) (*bfv.Plaintext, error) {
	if err := s.Validate(p.R.N); err != nil {
		return nil, err
	}
	if len(img) != s.H {
		return nil, fmt.Errorf("core: image has %d rows, want %d", len(img), s.H)
	}
	pt := p.NewPlaintext()
	for i := 0; i < s.H; i++ {
		if len(img[i]) != s.W {
			return nil, fmt.Errorf("core: image row %d has %d pixels, want %d", i, len(img[i]), s.W)
		}
		for j := 0; j < s.W; j++ {
			pt.Coeffs[i*s.W+j] = p.T.Reduce(img[i][j])
		}
	}
	return pt, nil
}

// EncodeKernel mirrors the kernel: coefficient (KH-1-a)·W + (KW-1-b) holds
// K[a][b], so that the product coefficient at (i+KH-1)·W + (j+KW-1) equals
// the valid convolution output at (i, j).
func EncodeKernel(p bfv.Params, s Conv2DShape, k [][]uint64) (*bfv.Plaintext, error) {
	if err := s.Validate(p.R.N); err != nil {
		return nil, err
	}
	if len(k) != s.KH {
		return nil, fmt.Errorf("core: kernel has %d rows, want %d", len(k), s.KH)
	}
	pt := p.NewPlaintext()
	for a := 0; a < s.KH; a++ {
		if len(k[a]) != s.KW {
			return nil, fmt.Errorf("core: kernel row %d has %d entries, want %d", a, len(k[a]), s.KW)
		}
		for b := 0; b < s.KW; b++ {
			pt.Coeffs[(s.KH-1-a)*s.W+(s.KW-1-b)] = p.T.Reduce(k[a][b])
		}
	}
	return pt, nil
}

// Conv2D convolves an encrypted image (augmented basis, from
// p.Encrypt(EncodeImage...)) with a cleartext kernel: one MULTPOLY plus a
// RESCALE, exactly the DOTPRODUCT pipeline reused for a different encoding.
func Conv2D(p bfv.Params, s Conv2DShape, ctImg *rlwe.Ciphertext, kernel [][]uint64) (*rlwe.Ciphertext, error) {
	kpt, err := EncodeKernel(p, s, kernel)
	if err != nil {
		return nil, err
	}
	return p.MulPlainRescale(ctImg, kpt), nil
}

// DecodeConvOutput reads the OutH×OutW valid outputs from a decrypted
// convolution result.
func DecodeConvOutput(p bfv.Params, s Conv2DShape, pt *bfv.Plaintext) [][]uint64 {
	out := make([][]uint64, s.OutH())
	for i := range out {
		out[i] = make([]uint64, s.OutW())
		for j := range out[i] {
			out[i][j] = pt.Coeffs[(i+s.KH-1)*s.W+(j+s.KW-1)]
		}
	}
	return out
}

// PlainConv2D is the cleartext reference.
func PlainConv2D(p bfv.Params, s Conv2DShape, img, k [][]uint64) [][]uint64 {
	out := make([][]uint64, s.OutH())
	for i := range out {
		out[i] = make([]uint64, s.OutW())
		for j := range out[i] {
			var acc uint64
			for a := 0; a < s.KH; a++ {
				for b := 0; b < s.KW; b++ {
					acc = p.T.Add(acc, p.T.Mul(p.T.Reduce(img[i+a][j+b]), p.T.Reduce(k[a][b])))
				}
			}
			out[i][j] = acc
		}
	}
	return out
}
