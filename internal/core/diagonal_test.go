package core

import (
	"math/rand"
	"testing"
)

// TestSlotRotation: the homomorphic rotation must rotate the σ-ordered
// row left by r, matching the cleartext rotateSlice.
func TestSlotRotation(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(30))
	sk := p.KeyGen(rng)
	slots := p.R.N / 2
	de, err := NewDiagonalEvaluator(p, rng, sk, allRotations(slots))
	if err != nil {
		t.Fatal(err)
	}
	v := randomVector(rng, slots, 512)
	ct, err := de.EncryptRowVector(rng, sk, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 7, slots - 1} {
		rot, err := de.rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.DecryptRow(rot, sk, slots)
		if err != nil {
			t.Fatal(err)
		}
		want := rotateSlice(v, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("r=%d slot %d: %d want %d", r, i, got[i], want[i])
			}
		}
	}
}

// TestDiagonalMatVec: the plain diagonal method against the cleartext
// reference, for square and rectangular embeddings.
func TestDiagonalMatVec(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(31))
	sk := p.KeyGen(rng)
	slots := p.R.N / 2
	de, err := NewDiagonalEvaluator(p, rng, sk, allRotations(slots))
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{
		{slots, slots}, {8, slots}, {slots, 8}, {5, 7},
	}
	for _, s := range shapes {
		// Modest magnitudes: the diagonal method multiplies in the normal
		// basis, so noise is t·√N·e per product, summed over diagonals.
		A := randomMatrix(rng, s.m, s.n, 256)
		v := randomVector(rng, s.n, 256)
		ctV, err := de.EncryptRowVector(rng, sk, v)
		if err != nil {
			t.Fatal(err)
		}
		out, err := de.MatVec(A, ctV)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.DecryptRow(out, sk, s.m)
		if err != nil {
			t.Fatal(err)
		}
		want := PlainMatVec(p, A, v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d row %d: %d want %d", s.m, s.n, i, got[i], want[i])
			}
		}
	}
}

// TestDiagonalBSGS: the baby-step/giant-step variant must agree with the
// plain method while using far fewer key switches.
func TestDiagonalBSGS(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(32))
	sk := p.KeyGen(rng)
	slots := p.R.N / 2
	const baby = 8 // sqrt(32) rounded up to a divisor-friendly value

	keys := append(allRotations(slots), BSGSRotations(slots, baby)...)
	de, err := NewDiagonalEvaluator(p, rng, sk, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := randomMatrix(rng, slots, slots, 128)
	v := randomVector(rng, slots, 128)
	ctV, _ := de.EncryptRowVector(rng, sk, v)

	de.KeySwitches = 0
	plainOut, err := de.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	plainKS := de.KeySwitches

	de.KeySwitches = 0
	bsgsOut, err := de.MatVecBSGS(A, ctV, baby)
	if err != nil {
		t.Fatal(err)
	}
	bsgsKS := de.KeySwitches

	g1, _ := de.DecryptRow(plainOut, sk, slots)
	g2, _ := de.DecryptRow(bsgsOut, sk, slots)
	want := PlainMatVec(p, A, v)
	for i := range want {
		if g1[i] != want[i] {
			t.Fatalf("plain row %d: %d want %d", i, g1[i], want[i])
		}
		if g2[i] != want[i] {
			t.Fatalf("bsgs row %d: %d want %d", i, g2[i], want[i])
		}
	}
	if bsgsKS >= plainKS {
		t.Errorf("BSGS used %d key switches, plain used %d", bsgsKS, plainKS)
	}
	wantPlain, wantBSGS := DiagonalKeySwitchEstimate(slots, baby)
	if plainKS != wantPlain {
		t.Errorf("plain key switches %d, estimate %d", plainKS, wantPlain)
	}
	if bsgsKS != wantBSGS {
		t.Errorf("bsgs key switches %d, estimate %d", bsgsKS, wantBSGS)
	}
}

func TestDiagonalValidation(t *testing.T) {
	p := testParams(t, 32)
	rng := rand.New(rand.NewSource(33))
	sk := p.KeyGen(rng)
	if _, err := NewDiagonalEvaluator(p, rng, sk, []int{0}); err == nil {
		t.Error("rotation 0 accepted")
	}
	if _, err := NewDiagonalEvaluator(p, rng, sk, []int{p.R.N / 2}); err == nil {
		t.Error("rotation N/2 accepted")
	}
	de, err := NewDiagonalEvaluator(p, rng, sk, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := de.EncryptRowVector(rng, sk, []uint64{1, 2, 3})
	if _, err := de.MatVec(nil, ct); err == nil {
		t.Error("empty matrix accepted")
	}
	big := randomMatrix(rng, p.R.N, 4, 3)
	if _, err := de.MatVec(big, ct); err == nil {
		t.Error("matrix taller than the slot row accepted")
	}
	// Missing rotation key is reported, not silently skipped.
	A := randomMatrix(rng, p.R.N/2, p.R.N/2, 3)
	if _, err := de.MatVec(A, ct); err == nil {
		t.Error("missing rotation keys not reported")
	}
	if _, err := de.MatVecBSGS(A, ct, 0); err == nil {
		t.Error("baby=0 accepted")
	}
	// Oversized row vector.
	if _, err := de.EncryptRowVector(rng, sk, make([]uint64, p.R.N)); err == nil {
		t.Error("vector beyond the slot row accepted")
	}
}

// TestDiagonalVsCoefficientAgree: GAZELLE-style and Alg. 1 must compute
// identical products — the apples-to-apples §II-E comparison.
func TestDiagonalVsCoefficientAgree(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(34))
	sk := p.KeyGen(rng)
	slots := p.R.N / 2

	A := randomMatrix(rng, 8, slots, 200)
	v := randomVector(rng, slots, 200)

	de, _ := NewDiagonalEvaluator(p, rng, sk, allRotations(slots))
	ctRow, _ := de.EncryptRowVector(rng, sk, v)
	dOut, err := de.MatVec(A, ctRow)
	if err != nil {
		t.Fatal(err)
	}
	diag, _ := de.DecryptRow(dOut, sk, 8)

	ev, _ := NewEvaluator(p, rng, sk, 8)
	res, err := ev.MatVec(A, EncryptVector(p, rng, sk, v))
	if err != nil {
		t.Fatal(err)
	}
	coeff := DecryptResult(p, res, sk)
	for i := range coeff {
		if coeff[i] != diag[i] {
			t.Fatalf("row %d: coefficient %d vs diagonal %d", i, coeff[i], diag[i])
		}
	}
}
