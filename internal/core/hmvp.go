// Package core implements CHAM's primary contribution: the
// coefficient-encoded homomorphic matrix-vector product of Alg. 1, with
// row/column tiling for arbitrary matrix shapes, together with the
// batch-encoded baseline (§II-E) and the 2-D convolution extension.
//
// The dataflow per output tile mirrors the accelerator pipeline:
//
//	stage 1-3  DOTPRODUCT: NTT, MULTPOLY, INTT per row (Eq. 2)
//	stage 4    RESCALE by the special modulus + EXTRACTLWES (Eq. 3)
//	stage 5-9  PACKTWOLWES tree (Alg. 2/3), m-1 reductions
//
// The packing factor 2^ℓ is pre-compensated in the row encoding, so a
// decrypted result reads out directly.
package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// Evaluator computes homomorphic matrix-vector products.
type Evaluator struct {
	P    bfv.Params
	Keys *lwe.PackingKeys
	// Workers bounds the goroutines used for the per-row dot products
	// (rows are independent until packing). Defaults to GOMAXPROCS;
	// set 1 for strictly serial evaluation.
	Workers int
}

// NewEvaluator returns an evaluator whose packing keys cover tiles of up to
// maxRows rows (rounded up to a power of two, capped at N).
func NewEvaluator(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, maxRows int) (*Evaluator, error) {
	if maxRows < 1 {
		return nil, fmt.Errorf("core: maxRows must be positive")
	}
	m := nextPow2(maxRows)
	if m > p.R.N {
		m = p.R.N
	}
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		return nil, err
	}
	return &Evaluator{P: p, Keys: keys}, nil
}

func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// EncryptVector encrypts v as ⌈len(v)/N⌉ augmented-basis ciphertexts, the
// form party A ships to party B (§II-F security model).
func EncryptVector(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, v []uint64) []*rlwe.Ciphertext {
	n := p.R.N
	var cts []*rlwe.Ciphertext
	for off := 0; off < len(v); off += n {
		end := off + n
		if end > len(v) {
			end = len(v)
		}
		cts = append(cts, p.Encrypt(rng, sk, p.EncodeVector(v[off:end]), p.R.Levels()))
	}
	if len(cts) == 0 {
		cts = append(cts, p.Encrypt(rng, sk, p.NewPlaintext(), p.R.Levels()))
	}
	return cts
}

// EncryptVectorPK is EncryptVector with a public key.
func EncryptVectorPK(p bfv.Params, rng *rand.Rand, pk *rlwe.PublicKey, v []uint64) []*rlwe.Ciphertext {
	n := p.R.N
	var cts []*rlwe.Ciphertext
	for off := 0; off < len(v); off += n {
		end := off + n
		if end > len(v) {
			end = len(v)
		}
		cts = append(cts, p.EncryptPK(rng, pk, p.EncodeVector(v[off:end]), p.R.Levels()))
	}
	if len(cts) == 0 {
		cts = append(cts, p.EncryptPK(rng, pk, p.NewPlaintext(), p.R.Levels()))
	}
	return cts
}

// Result is the outcome of an HMVP: one packed RLWE ciphertext per tile of
// up to N rows.
type Result struct {
	Packed []*rlwe.Ciphertext
	M      int // total number of rows
	N      int // ring degree (for slot stride computation)
}

// TileRows returns the (padded) number of rows packed into tile i.
func (res *Result) TileRows(i int) int {
	rows := res.M - i*res.N
	if rows > res.N {
		rows = res.N
	}
	return nextPow2(rows)
}

// MatVec computes A·v where A is an m×n cleartext matrix (row-major, all
// values reduced mod t) and ctV the encryption of v produced by
// EncryptVector. n must equal the plaintext vector length used there.
func (e *Evaluator) MatVec(A [][]uint64, ctV []*rlwe.Ciphertext) (*Result, error) {
	p := e.P
	n := p.R.N
	m := len(A)
	if m == 0 {
		return nil, fmt.Errorf("core: empty matrix")
	}
	cols := len(A[0])
	if cols == 0 {
		return nil, fmt.Errorf("core: matrix has no columns")
	}
	chunks := (cols + n - 1) / n
	if chunks != len(ctV) {
		return nil, fmt.Errorf("core: matrix has %d column chunks but vector has %d ciphertexts", chunks, len(ctV))
	}
	for i := range A {
		if len(A[i]) != cols {
			return nil, fmt.Errorf("core: ragged matrix row %d", i)
		}
	}

	// Transform the vector ciphertexts once (the pipeline's one-time
	// stage-1 work); every row then only transforms its plaintext.
	ctVNTT := make([]*rlwe.Ciphertext, len(ctV))
	for c, ct := range ctV {
		cp := ct.Copy()
		p.R.NTT(cp.B)
		p.R.NTT(cp.A)
		ctVNTT[c] = cp
	}

	res := &Result{M: m, N: n}
	for base := 0; base < m; base += n {
		rows := m - base
		if rows > n {
			rows = n
		}
		mPad := nextPow2(rows)
		if mPad > e.Keys.M {
			return nil, fmt.Errorf("core: tile of %d rows exceeds packing keys (max %d)", mPad, e.Keys.M)
		}
		scale := p.InvPow2(bits.TrailingZeros(uint(mPad)))

		lwes := make([]*lwe.Ciphertext, mPad)
		workers := e.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > rows {
			workers = rows
		}
		var wg sync.WaitGroup
		next := make(chan int, rows)
		for i := 0; i < rows; i++ {
			next <- base + i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					acc := e.rowDotProduct(A[i], ctVNTT, scale)
					lwes[i-base] = lwe.Extract(p, acc, 0)
				}
			}()
		}
		wg.Wait()
		for i := rows; i < mPad; i++ {
			lwes[i] = zeroLWE(p)
		}
		packed, err := lwe.PackLWEs(p, lwes, e.Keys)
		if err != nil {
			return nil, err
		}
		res.Packed = append(res.Packed, packed)
	}
	return res, nil
}

// rowDotProduct runs stages 1-4 for one matrix row against the
// pre-transformed vector chunks: per chunk one plaintext forward
// transform and a MULTPOLY, with the chunk aggregation done in the NTT
// domain so the row pays a single inverse transform and RESCALE — the
// paper's n ≥ m aggregation, at the pipeline model's exact transform
// counts (FullLevels·chunks + 2·FullLevels per row).
func (e *Evaluator) rowDotProduct(row []uint64, ctVNTT []*rlwe.Ciphertext, scale uint64) *rlwe.Ciphertext {
	p := e.P
	n := p.R.N
	levels := p.R.Levels()
	acc := &rlwe.Ciphertext{B: p.R.NewPoly(levels), A: p.R.NewPoly(levels)}
	acc.B.IsNTT, acc.A.IsNTT = true, true
	tmp := &rlwe.Ciphertext{B: p.R.NewPoly(levels), A: p.R.NewPoly(levels)}
	for c := 0; c < len(ctVNTT); c++ {
		lo := c * n
		hi := lo + n
		if hi > len(row) {
			hi = len(row)
		}
		if lo >= hi {
			break
		}
		ptPoly := p.Lift(p.EncodeRow(row[lo:hi], scale), levels)
		p.R.NTT(ptPoly)
		p.MulPlainNTT(tmp, ctVNTT[c], ptPoly)
		p.Add(acc, acc, tmp)
	}
	p.R.INTT(acc.B)
	p.R.INTT(acc.A)
	return p.Rescale(acc)
}

// zeroLWE is a trivial (noise-free) LWE encryption of zero used to pad a
// tile to a power-of-two row count.
func zeroLWE(p bfv.Params) *lwe.Ciphertext {
	lv := p.NormalLevels
	ct := &lwe.Ciphertext{Beta: make([]uint64, lv), Alpha: make([][]uint64, lv)}
	for l := 0; l < lv; l++ {
		ct.Alpha[l] = make([]uint64, p.R.N)
	}
	return ct
}

// DecryptResult reads the m result values out of the packed ciphertexts.
func DecryptResult(p bfv.Params, res *Result, sk *rlwe.SecretKey) []uint64 {
	out := make([]uint64, 0, res.M)
	for ti, ct := range res.Packed {
		rows := res.M - ti*res.N
		if rows > res.N {
			rows = res.N
		}
		stride := lwe.SlotStride(res.N, res.TileRows(ti))
		dec := p.Decrypt(ct, sk)
		for i := 0; i < rows; i++ {
			out = append(out, dec.Coeffs[i*stride])
		}
	}
	return out
}

// PlainMatVec is the cleartext reference A·v mod t.
func PlainMatVec(p bfv.Params, A [][]uint64, v []uint64) []uint64 {
	out := make([]uint64, len(A))
	for i, row := range A {
		var acc uint64
		for j, a := range row {
			acc = p.T.Add(acc, p.T.Mul(p.T.Reduce(a), p.T.Reduce(v[j])))
		}
		out[i] = acc
	}
	return out
}

// MatVecMulti computes A·v_k for many vectors sharing one matrix — the
// batched-inference pattern the paper's introduction motivates (many
// encrypted inputs amortize the per-matrix work). Each matrix row's
// encoded plaintext is forward-transformed once and reused across all
// vectors. vecs[k] must each come from EncryptVector with the same column
// count.
func (e *Evaluator) MatVecMulti(A [][]uint64, vecs [][]*rlwe.Ciphertext) ([]*Result, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("core: no vectors")
	}
	p := e.P
	n := p.R.N
	m := len(A)
	if m == 0 || len(A[0]) == 0 {
		return nil, fmt.Errorf("core: empty matrix")
	}
	cols := len(A[0])
	chunks := (cols + n - 1) / n
	for k, v := range vecs {
		if len(v) != chunks {
			return nil, fmt.Errorf("core: vector %d has %d chunks, want %d", k, len(v), chunks)
		}
	}
	if m > n {
		// Keep the amortized path simple: single-tile matrices only;
		// larger matrices go through repeated MatVec calls.
		return nil, fmt.Errorf("core: MatVecMulti supports up to %d rows (got %d)", n, m)
	}
	mPad := nextPow2(m)
	if mPad > e.Keys.M {
		return nil, fmt.Errorf("core: tile of %d rows exceeds packing keys (max %d)", mPad, e.Keys.M)
	}
	scale := p.InvPow2(bits.TrailingZeros(uint(mPad)))
	levels := p.R.Levels()

	// One-time per matrix: encode + NTT every row chunk.
	rowNTT := make([][]*ring.Poly, m)
	for i := range A {
		if len(A[i]) != cols {
			return nil, fmt.Errorf("core: ragged matrix row %d", i)
		}
		rowNTT[i] = make([]*ring.Poly, chunks)
		for c := 0; c < chunks; c++ {
			lo, hi := c*n, (c+1)*n
			if hi > cols {
				hi = cols
			}
			pt := p.Lift(p.EncodeRow(A[i][lo:hi], scale), levels)
			p.R.NTT(pt)
			rowNTT[i][c] = pt
		}
	}

	out := make([]*Result, len(vecs))
	for k, ctV := range vecs {
		ctVNTT := make([]*rlwe.Ciphertext, chunks)
		for c, ct := range ctV {
			cp := ct.Copy()
			p.R.NTT(cp.B)
			p.R.NTT(cp.A)
			ctVNTT[c] = cp
		}
		lwes := make([]*lwe.Ciphertext, mPad)
		tmp := &rlwe.Ciphertext{B: p.R.NewPoly(levels), A: p.R.NewPoly(levels)}
		for i := 0; i < m; i++ {
			acc := &rlwe.Ciphertext{B: p.R.NewPoly(levels), A: p.R.NewPoly(levels)}
			acc.B.IsNTT, acc.A.IsNTT = true, true
			for c := 0; c < chunks; c++ {
				p.MulPlainNTT(tmp, ctVNTT[c], rowNTT[i][c])
				p.Add(acc, acc, tmp)
			}
			p.R.INTT(acc.B)
			p.R.INTT(acc.A)
			lwes[i] = lwe.Extract(p, p.Rescale(acc), 0)
		}
		for i := m; i < mPad; i++ {
			lwes[i] = zeroLWE(p)
		}
		packed, err := lwe.PackLWEs(p, lwes, e.Keys)
		if err != nil {
			return nil, err
		}
		out[k] = &Result{Packed: []*rlwe.Ciphertext{packed}, M: m, N: n}
	}
	return out, nil
}
