// Package core implements CHAM's primary contribution: the
// coefficient-encoded homomorphic matrix-vector product of Alg. 1, with
// row/column tiling for arbitrary matrix shapes, together with the
// batch-encoded baseline (§II-E) and the 2-D convolution extension.
//
// The dataflow per output tile mirrors the accelerator pipeline:
//
//	stage 1-3  DOTPRODUCT: NTT, MULTPOLY, INTT per row (Eq. 2)
//	stage 4    RESCALE by the special modulus + EXTRACTLWES (Eq. 3)
//	stage 5-9  PACKTWOLWES tree (Alg. 2/3), m-1 reductions
//
// The packing factor 2^ℓ is pre-compensated in the row encoding, so a
// decrypted result reads out directly.
package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"time"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/obs"
	"cham/internal/rlwe"
)

// Evaluator computes homomorphic matrix-vector products.
type Evaluator struct {
	P    bfv.Params
	Keys *lwe.PackingKeys
	// Workers bounds the goroutines used for the per-row dot products and
	// the independent merges of each packing-tree level (rows and merges
	// are independent; results are bit-identical for any worker count).
	// Defaults to GOMAXPROCS; set 1 for strictly serial, goroutine-free
	// evaluation.
	Workers int

	// Pooled scratch and cached constants for the allocation-free hot
	// path (see prepared.go). An Evaluator must not be copied.
	applyPool sync.Pool // *applyScratch
	rowPool   sync.Pool // *rowScratch
	invOnce   sync.Once
	invN      []uint64 // per-limb N^-1
	invNShoup []uint64
}

// NewEvaluator returns an evaluator whose packing keys cover tiles of up to
// maxRows rows (rounded up to a power of two, capped at N).
func NewEvaluator(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, maxRows int) (*Evaluator, error) {
	if maxRows < 1 {
		return nil, fmt.Errorf("core: maxRows must be positive")
	}
	m := nextPow2(maxRows)
	if m > p.R.N {
		m = p.R.N
	}
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		return nil, err
	}
	return &Evaluator{P: p, Keys: keys}, nil
}

// NewEvaluatorFromKeys returns an evaluator over an existing packing-key
// set — the serving-tier constructor, where the keys arrive over the wire
// from the client holding the secret rather than being generated locally.
func NewEvaluatorFromKeys(p bfv.Params, keys *lwe.PackingKeys) (*Evaluator, error) {
	if keys == nil {
		return nil, fmt.Errorf("core: nil packing keys")
	}
	if keys.M < 1 || keys.M&(keys.M-1) != 0 || keys.M > p.R.N {
		return nil, fmt.Errorf("core: packing-key M=%d must be a power of two in [1,N]", keys.M)
	}
	for i := 1; i < keys.M; i <<= 1 {
		if keys.Keys[2*i+1] == nil {
			return nil, fmt.Errorf("core: packing-key set for M=%d misses automorphism key %d", keys.M, 2*i+1)
		}
	}
	return &Evaluator{P: p, Keys: keys}, nil
}

func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// EncryptVector encrypts v as ⌈len(v)/N⌉ augmented-basis ciphertexts, the
// form party A ships to party B (§II-F security model).
func EncryptVector(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, v []uint64) []*rlwe.Ciphertext {
	n := p.R.N
	var cts []*rlwe.Ciphertext
	for off := 0; off < len(v); off += n {
		end := off + n
		if end > len(v) {
			end = len(v)
		}
		cts = append(cts, p.Encrypt(rng, sk, p.EncodeVector(v[off:end]), p.R.Levels()))
	}
	if len(cts) == 0 {
		cts = append(cts, p.Encrypt(rng, sk, p.NewPlaintext(), p.R.Levels()))
	}
	return cts
}

// EncryptVectorPK is EncryptVector with a public key.
func EncryptVectorPK(p bfv.Params, rng *rand.Rand, pk *rlwe.PublicKey, v []uint64) []*rlwe.Ciphertext {
	n := p.R.N
	var cts []*rlwe.Ciphertext
	for off := 0; off < len(v); off += n {
		end := off + n
		if end > len(v) {
			end = len(v)
		}
		cts = append(cts, p.EncryptPK(rng, pk, p.EncodeVector(v[off:end]), p.R.Levels()))
	}
	if len(cts) == 0 {
		cts = append(cts, p.EncryptPK(rng, pk, p.NewPlaintext(), p.R.Levels()))
	}
	return cts
}

// Result is the outcome of an HMVP: one packed RLWE ciphertext per tile of
// up to N rows.
type Result struct {
	Packed []*rlwe.Ciphertext
	M      int // total number of rows
	N      int // ring degree (for slot stride computation)
}

// TileRows returns the (padded) number of rows packed into tile i.
func (res *Result) TileRows(i int) int {
	rows := res.M - i*res.N
	if rows > res.N {
		rows = res.N
	}
	return nextPow2(rows)
}

// MatVec computes A·v where A is an m×n cleartext matrix (row-major, all
// values reduced mod t) and ctV the encryption of v produced by
// EncryptVector. n must equal the plaintext vector length used there.
//
// MatVec shares the pooled per-vector machinery with PreparedMatrix but
// encodes and forward-transforms each row on the fly; when the same matrix
// multiplies several vectors, Prepare once and Apply instead.
func (e *Evaluator) MatVec(A [][]uint64, ctV []*rlwe.Ciphertext) (*Result, error) {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	res, err := e.matVec(A, ctV)
	if err != nil {
		return nil, countErr(err)
	}
	if on {
		mApplyMatVec.Observe(time.Since(t0).Seconds())
		mAppliesMatVec.Inc()
		mRows.Add(uint64(res.M))
	}
	return res, nil
}

func (e *Evaluator) matVec(A [][]uint64, ctV []*rlwe.Ciphertext) (*Result, error) {
	p := e.P
	n := p.R.N
	m := len(A)
	if m == 0 {
		return nil, fmt.Errorf("%w (no rows)", ErrEmptyMatrix)
	}
	cols := len(A[0])
	if cols == 0 {
		return nil, fmt.Errorf("%w (no columns)", ErrEmptyMatrix)
	}
	chunks := (cols + n - 1) / n
	if chunks != len(ctV) {
		return nil, fmt.Errorf("%w: matrix has %d column chunks but vector has %d ciphertexts", ErrVectorLength, chunks, len(ctV))
	}
	for i := range A {
		if len(A[i]) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrRaggedMatrix, i, len(A[i]), cols)
		}
	}
	maxPad := 0
	for base := 0; base < m; base += n {
		rows := m - base
		if rows > n {
			rows = n
		}
		mPad := nextPow2(rows)
		if mPad > e.Keys.M {
			return nil, fmt.Errorf("%w: tile of %d rows (keys cover %d)", ErrTileTooLarge, mPad, e.Keys.M)
		}
		if mPad > maxPad {
			maxPad = mPad
		}
	}

	e.ensureInvN()
	sc := e.getApplyScratch(chunks, maxPad)
	defer e.putApplyScratch(sc)
	if err := e.loadVector(sc, ctV); err != nil {
		return nil, err
	}
	res := &Result{M: m, N: n}
	for base := 0; base < m; base += n {
		rows := m - base
		if rows > n {
			rows = n
		}
		mPad := nextPow2(rows)
		scale := p.InvPow2(bits.TrailingZeros(uint(mPad)))
		out := &rlwe.Ciphertext{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)}
		if err := e.tileApply(out, sc, nil, A[base:base+rows], scale, rows, mPad); err != nil {
			return nil, err
		}
		res.Packed = append(res.Packed, out)
	}
	return res, nil
}

// DecryptResult reads the m result values out of the packed ciphertexts.
func DecryptResult(p bfv.Params, res *Result, sk *rlwe.SecretKey) []uint64 {
	out := make([]uint64, 0, res.M)
	for ti, ct := range res.Packed {
		rows := res.M - ti*res.N
		if rows > res.N {
			rows = res.N
		}
		stride := lwe.SlotStride(res.N, res.TileRows(ti))
		dec := p.Decrypt(ct, sk)
		for i := 0; i < rows; i++ {
			out = append(out, dec.Coeffs[i*stride])
		}
	}
	return out
}

// PlainMatVec is the cleartext reference A·v mod t.
func PlainMatVec(p bfv.Params, A [][]uint64, v []uint64) []uint64 {
	out := make([]uint64, len(A))
	for i, row := range A {
		var acc uint64
		for j, a := range row {
			acc = p.T.Add(acc, p.T.Mul(p.T.Reduce(a), p.T.Reduce(v[j])))
		}
		out[i] = acc
	}
	return out
}

// MatVecMulti computes A·v_k for many vectors sharing one matrix — the
// batched-inference pattern the paper's introduction motivates (many
// encrypted inputs amortize the per-matrix work). It is Prepare followed
// by one Apply per vector; matrices of any shape MatVec accepts work,
// including multi-tile (m > N). vecs[k] must each come from EncryptVector
// with the same column count.
func (e *Evaluator) MatVecMulti(A [][]uint64, vecs [][]*rlwe.Ciphertext) ([]*Result, error) {
	if len(vecs) == 0 {
		return nil, countErr(fmt.Errorf("%w: no vectors", ErrVectorLength))
	}
	pm, err := e.Prepare(A)
	if err != nil {
		return nil, err
	}
	for k, v := range vecs {
		if len(v) != pm.chunks {
			return nil, countErr(fmt.Errorf("%w: vector %d has %d chunks, want %d", ErrVectorLength, k, len(v), pm.chunks))
		}
	}
	out := make([]*Result, len(vecs))
	for k, ctV := range vecs {
		res, err := pm.Apply(ctV)
		if err != nil {
			return nil, err
		}
		out[k] = res
	}
	return out, nil
}
