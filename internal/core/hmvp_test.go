package core

import (
	"math/rand"
	"testing"

	"cham/internal/bfv"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func randomMatrix(rng *rand.Rand, m, n int, bound uint64) [][]uint64 {
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, n)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % bound
		}
	}
	return A
}

func randomVector(rng *rand.Rand, n int, bound uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % bound
	}
	return v
}

// TestMatVecSquare is the headline Alg. 1 correctness check at several
// matrix shapes, including non-power-of-two row counts (padding) and
// m < n, m > n regimes.
func TestMatVecShapes(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{
		{1, 1}, {1, 64}, {64, 64}, {5, 64}, {13, 7}, {64, 3}, {32, 64},
	}
	for _, s := range shapes {
		A := randomMatrix(rng, s.m, s.n, p.T.Q)
		v := randomVector(rng, s.n, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)
		res, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.m, s.n, err)
		}
		got := DecryptResult(p, res, sk)
		want := PlainMatVec(p, A, v)
		if len(got) != s.m {
			t.Fatalf("%dx%d: %d results", s.m, s.n, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d: row %d = %d, want %d", s.m, s.n, i, got[i], want[i])
			}
		}
	}
}

// TestMatVecColumnTiling covers n > N: the vector spans several
// ciphertexts and rows aggregate across chunks (the paper's n >= m note).
func TestMatVecColumnTiling(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, _ := NewEvaluator(p, rng, sk, p.R.N)

	for _, cols := range []int{33, 64, 100} {
		A := randomMatrix(rng, 8, cols, p.T.Q)
		v := randomVector(rng, cols, p.T.Q)
		ctV := EncryptVector(p, rng, sk, v)
		if len(ctV) != (cols+p.R.N-1)/p.R.N {
			t.Fatalf("cols=%d: unexpected chunk count %d", cols, len(ctV))
		}
		res, err := ev.MatVec(A, ctV)
		if err != nil {
			t.Fatal(err)
		}
		got := DecryptResult(p, res, sk)
		want := PlainMatVec(p, A, v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cols=%d row %d: %d want %d", cols, i, got[i], want[i])
			}
		}
	}
}

// TestMatVecRowTiling covers m > N: multiple packed output ciphertexts.
func TestMatVecRowTiling(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, _ := NewEvaluator(p, rng, sk, p.R.N)

	m := 40 // 2.5 tiles at N=16
	A := randomMatrix(rng, m, 16, p.T.Q)
	v := randomVector(rng, 16, p.T.Q)
	ctV := EncryptVector(p, rng, sk, v)
	res, err := ev.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packed) != 3 {
		t.Fatalf("expected 3 tiles, got %d", len(res.Packed))
	}
	got := DecryptResult(p, res, sk)
	want := PlainMatVec(p, A, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

// TestMatVecPublicKeyPath: the two-party flow where A encrypts with a
// public key.
func TestMatVecPublicKeyPath(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	pk := p.PublicKeyGen(rng, sk)
	ev, _ := NewEvaluator(p, rng, sk, p.R.N)

	A := randomMatrix(rng, 16, 32, p.T.Q)
	v := randomVector(rng, 32, p.T.Q)
	ctV := EncryptVectorPK(p, rng, pk, v)
	res, err := ev.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	got := DecryptResult(p, res, sk)
	want := PlainMatVec(p, A, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestMatVecValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, _ := NewEvaluator(p, rng, sk, p.R.N)
	ctV := EncryptVector(p, rng, sk, make([]uint64, 16))

	if _, err := ev.MatVec(nil, ctV); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := ev.MatVec([][]uint64{{}}, ctV); err == nil {
		t.Error("zero-column matrix accepted")
	}
	ragged := [][]uint64{make([]uint64, 16), make([]uint64, 15)}
	if _, err := ev.MatVec(ragged, ctV); err == nil {
		t.Error("ragged matrix accepted")
	}
	wide := randomMatrix(rng, 2, 40, 7) // needs 3 chunks, ctV has 1
	if _, err := ev.MatVec(wide, ctV); err == nil {
		t.Error("chunk-count mismatch accepted")
	}
	if _, err := NewEvaluator(p, rng, sk, 0); err == nil {
		t.Error("maxRows=0 accepted")
	}
}

// TestMatVecKeyCoverage: an evaluator provisioned for few rows must refuse
// larger tiles rather than mis-pack.
func TestMatVecKeyCoverage(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, 4)
	if err != nil {
		t.Fatal(err)
	}
	A := randomMatrix(rng, 8, 16, p.T.Q)
	ctV := EncryptVector(p, rng, sk, make([]uint64, 16))
	if _, err := ev.MatVec(A, ctV); err == nil {
		t.Error("tile larger than key coverage accepted")
	}
	// 4 rows works and zero-pads internally to a clean power of two.
	small := randomMatrix(rng, 3, 16, p.T.Q)
	v := randomVector(rng, 16, p.T.Q)
	ctV = EncryptVector(p, rng, sk, v)
	res, err := ev.MatVec(small, ctV)
	if err != nil {
		t.Fatal(err)
	}
	got := DecryptResult(p, res, sk)
	want := PlainMatVec(p, small, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

// TestChamProductionDegree runs one HMVP at the real N=4096 parameters to
// make sure nothing depends on the reduced test degree.
func TestChamProductionDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("production-degree HMVP is slow")
	}
	p := testParams(t, 4096)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	const m = 16 // keep runtime reasonable; padding exercises packing
	ev, err := NewEvaluator(p, rng, sk, m)
	if err != nil {
		t.Fatal(err)
	}
	A := randomMatrix(rng, m, 4096, p.T.Q)
	v := randomVector(rng, 4096, p.T.Q)
	ctV := EncryptVector(p, rng, sk, v)
	res, err := ev.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	got := DecryptResult(p, res, sk)
	want := PlainMatVec(p, A, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

// TestMatVecMulti: the amortized multi-vector path must agree with
// independent MatVec calls on every vector.
func TestMatVecMulti(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, _ := NewEvaluator(p, rng, sk, 8)

	A := randomMatrix(rng, 7, 100, p.T.Q) // 2 chunks, padded rows
	const vecCount = 4
	var vecs [][]uint64
	var cts [][]*rlwe.Ciphertext
	for k := 0; k < vecCount; k++ {
		v := randomVector(rng, 100, p.T.Q)
		vecs = append(vecs, v)
		cts = append(cts, EncryptVector(p, rng, sk, v))
	}
	results, err := ev.MatVecMulti(A, cts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range vecs {
		got := DecryptResult(p, results[k], sk)
		want := PlainMatVec(p, A, vecs[k])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vector %d row %d: %d want %d", k, i, got[i], want[i])
			}
		}
	}
	// Validation paths.
	if _, err := ev.MatVecMulti(A, nil); err == nil {
		t.Error("no vectors accepted")
	}
	if _, err := ev.MatVecMulti(A, [][]*rlwe.Ciphertext{cts[0][:1]}); err == nil {
		t.Error("chunk mismatch accepted")
	}
	tall := randomMatrix(rng, p.R.N+1, 16, 3)
	if _, err := ev.MatVecMulti(tall, cts); err == nil {
		t.Error("multi-tile matrix accepted")
	}
}
