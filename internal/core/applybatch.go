package core

// Batched apply: one PreparedMatrix driving a whole batch of encrypted
// vectors — the column blocks of an encrypted matrix-matrix product.
// The per-matrix work (Prepare) is already hoisted; this surface also
// hoists the per-call bookkeeping (validation, scratch checkout, N^-1
// caching) out of the per-vector loop, and validates the ENTIRE batch
// before any transform runs: a short batch, a missing column block, or
// a misshaped result tile fails with a typed sentinel up front instead
// of a panic (or partial work) halfway through the fan-out.

import (
	"fmt"
	"time"

	"cham/internal/obs"
	"cham/internal/rlwe"
)

// ApplyBatch computes A·v_k for every vector of the batch, allocating
// fresh Results. vecs[k] must each come from EncryptVector with the
// matrix's column count.
func (pm *PreparedMatrix) ApplyBatch(vecs [][]*rlwe.Ciphertext) ([]*Result, error) {
	res := make([]*Result, len(vecs))
	for k := range res {
		res[k] = pm.NewResult()
	}
	if err := pm.ApplyBatchInto(res, vecs); err != nil {
		return nil, err
	}
	return res, nil
}

// ApplyBatchInto is ApplyBatch writing into caller-owned Results (from
// NewResult, one per vector). Scratch is checked out once for the whole
// batch, so a warm call performs zero heap allocations regardless of the
// batch size — the invariant the chamnp MatMul path is gated on.
func (pm *PreparedMatrix) ApplyBatchInto(res []*Result, vecs [][]*rlwe.Ciphertext) error {
	return pm.ApplyBatchIntoSink(res, vecs, nil)
}

// ApplyBatchIntoSink is ApplyBatchInto with per-stage kernel durations
// also routed to sink (see ApplyIntoSink); a nil sink is exactly
// ApplyBatchInto.
func (pm *PreparedMatrix) ApplyBatchIntoSink(res []*Result, vecs [][]*rlwe.Ciphertext, sink obs.StageSink) error {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	if err := pm.applyBatchInto(res, vecs, sink); err != nil {
		return countErr(err)
	}
	if on {
		mApplyPrepared.Observe(time.Since(t0).Seconds())
		mAppliesPrepared.Add(uint64(len(vecs)))
		mRows.Add(uint64(pm.m * len(vecs)))
	}
	return nil
}

func (pm *PreparedMatrix) applyBatchInto(res []*Result, vecs [][]*rlwe.Ciphertext, sink obs.StageSink) error {
	e := pm.ev
	if len(vecs) == 0 {
		return fmt.Errorf("%w: empty batch", ErrVectorLength)
	}
	if len(res) != len(vecs) {
		return fmt.Errorf("%w: batch has %d vectors but %d result slots", ErrResultShape, len(vecs), len(res))
	}
	// Validate every column block and every result tile before any
	// transform runs; the %w wrapping keeps errors.Is on the sentinels
	// working through the per-index context.
	for k, ctV := range vecs {
		if err := pm.validateVector(ctV); err != nil {
			return fmt.Errorf("batch vector %d: %w", k, err)
		}
		if err := pm.validateResult(res[k]); err != nil {
			return fmt.Errorf("batch result %d: %w", k, err)
		}
	}
	for ti, t := range pm.tiles {
		if t == nil {
			return fmt.Errorf("%w: tile %d (prepared sparsely; use ApplyTiles or PrepareTile)", ErrTileNotPrepared, ti)
		}
	}
	e.ensureInvN()
	sc := e.getApplyScratch(pm.chunks, pm.maxPad)
	defer e.putApplyScratch(sc)
	sc.sink = sink
	sc.clk.Attach(sink)
	for k, ctV := range vecs {
		if err := e.loadVector(sc, ctV); err != nil {
			return err
		}
		for ti, t := range pm.tiles {
			if err := e.tileApply(res[k].Packed[ti], sc, t, nil, 0, t.rows, t.mPad); err != nil {
				return err
			}
		}
		res[k].M, res[k].N = pm.m, e.P.R.N
	}
	return nil
}

// validateVector checks one encrypted vector's chunk count and entries
// against the prepared shape.
func (pm *PreparedMatrix) validateVector(ctV []*rlwe.Ciphertext) error {
	if len(ctV) != pm.chunks {
		return fmt.Errorf("%w: matrix has %d column chunks but vector has %d ciphertexts", ErrVectorLength, pm.chunks, len(ctV))
	}
	for c, ct := range ctV {
		if ct == nil || ct.B == nil || ct.A == nil {
			return fmt.Errorf("%w: vector ciphertext %d is nil", ErrVectorLength, c)
		}
	}
	return nil
}

// validateResult checks one Result's tile count and polynomial shapes.
func (pm *PreparedMatrix) validateResult(res *Result) error {
	e := pm.ev
	if res == nil {
		return fmt.Errorf("%w: nil result; allocate with NewResult", ErrResultShape)
	}
	if len(res.Packed) != len(pm.tiles) {
		return fmt.Errorf("%w: result holds %d tiles, want %d", ErrResultShape, len(res.Packed), len(pm.tiles))
	}
	for ti, ct := range res.Packed {
		if ct == nil || ct.B == nil || ct.A == nil {
			return fmt.Errorf("%w: result tile %d is nil; allocate with NewResult", ErrResultShape, ti)
		}
		if ct.B.Levels() != e.P.NormalLevels || ct.A.Levels() != e.P.NormalLevels ||
			len(ct.B.Coeffs[0]) != e.P.R.N || len(ct.A.Coeffs[0]) != e.P.R.N {
			return fmt.Errorf("%w: result tile %d has the wrong shape; allocate with NewResult", ErrResultShape, ti)
		}
	}
	return nil
}
