package core

import (
	"testing"

	"cham/internal/rlwe"
	"cham/internal/testutil"
)

// TestApplyBatchMatchesSequential: a batched apply must produce exactly
// the ciphertexts of one ApplyInto per vector — the batch surface only
// hoists bookkeeping, never changes the arithmetic.
func TestApplyBatchMatchesSequential(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	// 70 rows spans two tiles at N=64; 96 columns spans two chunks.
	A := testutil.Matrix(rng, 70, 96, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 3
	vecs := make([][]*rlwe.Ciphertext, batch)
	plain := make([][]uint64, batch)
	for k := range vecs {
		plain[k] = testutil.Vector(rng, 96, p.T.Q)
		vecs[k] = EncryptVector(p, rng, sk, plain[k])
	}
	got, err := pm.ApplyBatch(vecs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range vecs {
		want, err := pm.Apply(vecs[k])
		if err != nil {
			t.Fatal(err)
		}
		for ti := range want.Packed {
			if !ctEqual(got[k].Packed[ti], want.Packed[ti]) {
				t.Fatalf("vector %d tile %d: batched apply differs from sequential", k, ti)
			}
		}
		dec := DecryptResult(p, got[k], sk)
		for i, w := range PlainMatVec(p, A, plain[k]) {
			if dec[i] != w {
				t.Fatalf("vector %d row %d: got %d want %d", k, i, dec[i], w)
			}
		}
	}
}

// TestApplyBatchValidation: every misuse of the batch surface must fail
// with a typed sentinel BEFORE any transform runs — a short batch, nil
// entries, or misshaped result tiles used to be late panics.
func TestApplyBatchValidation(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 8, 64, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	v := EncryptVector(p, rng, sk, testutil.Vector(rng, 64, p.T.Q))
	good := pm.NewResult()

	wantErr(t, pm.ApplyBatchInto(nil, nil), ErrVectorLength, "empty batch")

	// Short result slice for a two-vector batch.
	wantErr(t, pm.ApplyBatchInto([]*Result{good}, [][]*rlwe.Ciphertext{v, v}),
		ErrResultShape, "short result batch")

	// Nil result entry.
	wantErr(t, pm.ApplyBatchInto([]*Result{nil}, [][]*rlwe.Ciphertext{v}),
		ErrResultShape, "nil result")

	// Result tile at the wrong level count.
	bad := pm.NewResult()
	bad.Packed[0] = &rlwe.Ciphertext{B: p.R.NewPoly(p.R.Levels()), A: p.R.NewPoly(p.R.Levels())}
	wantErr(t, pm.ApplyBatchInto([]*Result{bad}, [][]*rlwe.Ciphertext{v}),
		ErrResultShape, "misshaped result tile")

	// Wrong chunk count in one column block of an otherwise fine batch.
	short := v[:0]
	wantErr(t, pm.ApplyBatchInto([]*Result{good, pm.NewResult()}, [][]*rlwe.Ciphertext{v, short}),
		ErrVectorLength, "short column block")

	// Nil ciphertext inside a column block.
	wantErr(t, pm.ApplyBatchInto([]*Result{good}, [][]*rlwe.Ciphertext{{nil}}),
		ErrVectorLength, "nil vector ciphertext")

	// The single-vector paths share the guards: a nil ciphertext must be
	// a typed error there too, not a panic in loadVector.
	wantErr(t, pm.ApplyInto(good, []*rlwe.Ciphertext{nil}), ErrVectorLength, "ApplyInto nil ciphertext")
	if _, err := ev.MatVec(A, []*rlwe.Ciphertext{nil}); err == nil {
		t.Error("MatVec with nil ciphertext: no error")
	}

	// After all the failures above, a clean batch still works: validation
	// must not have corrupted pooled scratch.
	if err := pm.ApplyBatchInto([]*Result{good}, [][]*rlwe.Ciphertext{v}); err != nil {
		t.Fatalf("clean batch after failures: %v", err)
	}
}

// TestApplyBatchSparseTile: a sparsely prepared matrix reports
// ErrTileNotPrepared for the whole batch up front.
func TestApplyBatchSparseTile(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ev, err := NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 70, 64, p.T.Q) // two tiles
	pm, err := ev.PrepareTiles(A, []int{0})  // tile 1 missing
	if err != nil {
		t.Fatal(err)
	}
	v := EncryptVector(p, rng, sk, testutil.Vector(rng, 64, p.T.Q))
	wantErr(t, pm.ApplyBatchInto([]*Result{pm.NewResult()}, [][]*rlwe.Ciphertext{v}),
		ErrTileNotPrepared, "sparse batch")
}
