package core

import (
	"fmt"

	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// 3-D convolution (multi-channel 2-D convolution, the "3-D" extension of
// §II-E): the input tensor C×H×W is laid out channel-major in polynomial
// coefficients and the kernel C×KH×KW is mirrored across all three axes,
// so one negacyclic multiplication sums over channels and both spatial
// offsets simultaneously — one ciphertext multiply per output channel.

// Conv3DShape describes a valid multi-channel convolution producing one
// output channel.
type Conv3DShape struct {
	C      int // input channels
	H, W   int // spatial dimensions
	KH, KW int // kernel spatial dimensions
}

// OutH and OutW are the valid-output spatial dimensions.
func (s Conv3DShape) OutH() int { return s.H - s.KH + 1 }
func (s Conv3DShape) OutW() int { return s.W - s.KW + 1 }

// Validate checks the tensor fits the ring degree.
func (s Conv3DShape) Validate(n int) error {
	if s.C < 1 || s.H < 1 || s.W < 1 || s.KH < 1 || s.KW < 1 {
		return fmt.Errorf("core: non-positive conv3d dimensions")
	}
	if s.KH > s.H || s.KW > s.W {
		return fmt.Errorf("core: kernel %dx%d larger than image %dx%d", s.KH, s.KW, s.H, s.W)
	}
	if s.C*s.H*s.W > n {
		return fmt.Errorf("core: tensor %dx%dx%d does not fit N=%d", s.C, s.H, s.W, n)
	}
	return nil
}

// EncodeTensor lays the input out channel-major: coefficient
// c·H·W + i·W + j holds X[c][i][j].
func EncodeTensor(p bfv.Params, s Conv3DShape, x [][][]uint64) (*bfv.Plaintext, error) {
	if err := s.Validate(p.R.N); err != nil {
		return nil, err
	}
	if len(x) != s.C {
		return nil, fmt.Errorf("core: tensor has %d channels, want %d", len(x), s.C)
	}
	pt := p.NewPlaintext()
	for c := 0; c < s.C; c++ {
		if len(x[c]) != s.H {
			return nil, fmt.Errorf("core: channel %d has %d rows, want %d", c, len(x[c]), s.H)
		}
		for i := 0; i < s.H; i++ {
			if len(x[c][i]) != s.W {
				return nil, fmt.Errorf("core: channel %d row %d has %d pixels, want %d", c, i, len(x[c][i]), s.W)
			}
			for j := 0; j < s.W; j++ {
				pt.Coeffs[c*s.H*s.W+i*s.W+j] = p.T.Reduce(x[c][i][j])
			}
		}
	}
	return pt, nil
}

// EncodeKernel3D mirrors the kernel across channels and space: K[c][a][b]
// lands at (C-1-c)·H·W + (KH-1-a)·W + (KW-1-b).
func EncodeKernel3D(p bfv.Params, s Conv3DShape, k [][][]uint64) (*bfv.Plaintext, error) {
	if err := s.Validate(p.R.N); err != nil {
		return nil, err
	}
	if len(k) != s.C {
		return nil, fmt.Errorf("core: kernel has %d channels, want %d", len(k), s.C)
	}
	pt := p.NewPlaintext()
	for c := 0; c < s.C; c++ {
		if len(k[c]) != s.KH {
			return nil, fmt.Errorf("core: kernel channel %d has %d rows, want %d", c, len(k[c]), s.KH)
		}
		for a := 0; a < s.KH; a++ {
			if len(k[c][a]) != s.KW {
				return nil, fmt.Errorf("core: kernel channel %d row %d has %d cols, want %d", c, a, len(k[c][a]), s.KW)
			}
			for b := 0; b < s.KW; b++ {
				pos := (s.C-1-c)*s.H*s.W + (s.KH-1-a)*s.W + (s.KW - 1 - b)
				pt.Coeffs[pos] = p.T.Reduce(k[c][a][b])
			}
		}
	}
	return pt, nil
}

// Conv3D computes one output channel of a multi-channel convolution on an
// encrypted tensor (augmented basis) with a cleartext kernel.
func Conv3D(p bfv.Params, s Conv3DShape, ctX *rlwe.Ciphertext, kernel [][][]uint64) (*rlwe.Ciphertext, error) {
	kpt, err := EncodeKernel3D(p, s, kernel)
	if err != nil {
		return nil, err
	}
	return p.MulPlainRescale(ctX, kpt), nil
}

// DecodeConv3DOutput reads the OutH×OutW outputs: they sit in the last
// channel block at spatial offsets (i+KH-1, j+KW-1).
func DecodeConv3DOutput(p bfv.Params, s Conv3DShape, pt *bfv.Plaintext) [][]uint64 {
	base := (s.C - 1) * s.H * s.W
	out := make([][]uint64, s.OutH())
	for i := range out {
		out[i] = make([]uint64, s.OutW())
		for j := range out[i] {
			out[i][j] = pt.Coeffs[base+(i+s.KH-1)*s.W+(j+s.KW-1)]
		}
	}
	return out
}

// PlainConv3D is the cleartext reference.
func PlainConv3D(p bfv.Params, s Conv3DShape, x, k [][][]uint64) [][]uint64 {
	out := make([][]uint64, s.OutH())
	for i := range out {
		out[i] = make([]uint64, s.OutW())
		for j := range out[i] {
			var acc uint64
			for c := 0; c < s.C; c++ {
				for a := 0; a < s.KH; a++ {
					for b := 0; b < s.KW; b++ {
						acc = p.T.Add(acc, p.T.Mul(p.T.Reduce(x[c][i+a][j+b]), p.T.Reduce(k[c][a][b])))
					}
				}
			}
			out[i][j] = acc
		}
	}
	return out
}
