package core

import (
	"math/rand"
	"testing"
)

func TestBatchMatVecMatchesPlain(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(10))
	sk := p.KeyGen(rng)
	be, err := NewBatchEvaluator(p, rng, sk)
	if err != nil {
		t.Fatal(err)
	}
	if be.TraceSteps() != 6 { // log2(64)
		t.Fatalf("TraceSteps = %d, want 6", be.TraceSteps())
	}

	// Keep magnitudes modest: batch noise grows with t·√N·e plus N-fold
	// trace accumulation.
	A := randomMatrix(rng, 5, 64, 256)
	v := randomVector(rng, 64, 256)
	ctV, err := be.EncryptSlots(rng, sk, v)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := be.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.DecryptBatchResult(rows, sk)
	if err != nil {
		t.Fatal(err)
	}
	want := PlainMatVec(p, A, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

// TestBatchAndCoefficientAgree: both HMVP methods must compute the same
// product.
func TestBatchAndCoefficientAgree(t *testing.T) {
	p := testParams(t, 32)
	rng := rand.New(rand.NewSource(11))
	sk := p.KeyGen(rng)

	A := randomMatrix(rng, 4, 32, 128)
	v := randomVector(rng, 32, 128)

	ev, _ := NewEvaluator(p, rng, sk, 4)
	res, err := ev.MatVec(A, EncryptVector(p, rng, sk, v))
	if err != nil {
		t.Fatal(err)
	}
	coeffOut := DecryptResult(p, res, sk)

	be, _ := NewBatchEvaluator(p, rng, sk)
	ctV, _ := be.EncryptSlots(rng, sk, v)
	rows, err := be.MatVec(A, ctV)
	if err != nil {
		t.Fatal(err)
	}
	batchOut, _ := be.DecryptBatchResult(rows, sk)
	for i := range coeffOut {
		if coeffOut[i] != batchOut[i] {
			t.Fatalf("row %d: coefficient %d vs batch %d", i, coeffOut[i], batchOut[i])
		}
	}
}

func TestBatchValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := rand.New(rand.NewSource(12))
	sk := p.KeyGen(rng)
	be, _ := NewBatchEvaluator(p, rng, sk)
	ctV, _ := be.EncryptSlots(rng, sk, make([]uint64, 16))
	if _, err := be.MatVec(nil, ctV); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := be.MatVec(randomMatrix(rng, 2, 17, 3), ctV); err == nil {
		t.Error("n > N accepted")
	}
}

// TestSlotSum: the trace must place the sum of all slots in every slot.
func TestSlotSum(t *testing.T) {
	p := testParams(t, 32)
	rng := rand.New(rand.NewSource(13))
	sk := p.KeyGen(rng)
	be, _ := NewBatchEvaluator(p, rng, sk)

	v := randomVector(rng, 32, 64)
	var want uint64
	for _, x := range v {
		want = p.T.Add(want, x)
	}
	ctV, _ := be.EncryptSlots(rng, sk, v)
	// SlotSum operates on normal-basis ciphertexts.
	summed := be.SlotSum(p.Rescale(ctV))
	slots, err := p.DecodeSlots(p.Decrypt(summed, sk))
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range slots {
		if s != want {
			t.Fatalf("slot %d = %d, want %d", j, s, want)
		}
	}
}
