package core

import (
	"errors"

	"cham/internal/obs"
)

// Telemetry handles for the HMVP evaluator, resolved once at package
// init so hot-path call sites never touch the registry. Per-stage
// latency lives in obs's cham_hmvp_stage_seconds family (the shared
// taxonomy); this file adds the end-to-end and error views.
var (
	mApplyPrepared = obs.GetHistogram("cham_hmvp_apply_seconds",
		"End-to-end per-vector HMVP latency.", obs.DefBuckets, "path", "prepared")
	mApplyMatVec = obs.GetHistogram("cham_hmvp_apply_seconds",
		"End-to-end per-vector HMVP latency.", obs.DefBuckets, "path", "matvec")
	mPrepareSec = obs.GetHistogram("cham_hmvp_prepare_seconds",
		"One-time PreparedMatrix build latency (row encode+lift+NTT).", obs.DefBuckets)
	mAppliesPrepared = obs.GetCounter("cham_hmvp_applies_total",
		"Completed HMVP applies.", "path", "prepared")
	mAppliesMatVec = obs.GetCounter("cham_hmvp_applies_total",
		"Completed HMVP applies.", "path", "matvec")
	mRows = obs.GetCounter("cham_hmvp_rows_total",
		"Row dot products computed across all applies.")
)

const errHelp = "HMVP API errors by misuse class."

// errClasses maps each sentinel to its counter; countErr walks it in
// order, so put more specific sentinels first if any ever overlap.
var errClasses = []struct {
	sentinel error
	counter  *obs.Counter
}{
	{ErrEmptyMatrix, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "empty_matrix")},
	{ErrRaggedMatrix, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "ragged_matrix")},
	{ErrVectorLength, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "vector_length")},
	{ErrVectorBasis, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "vector_basis")},
	{ErrResultShape, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "result_shape")},
	{ErrTileTooLarge, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "tile_too_large")},
	{ErrTileIndex, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "tile_index")},
	{ErrTileNotPrepared, obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "tile_not_prepared")},
}

var errOther = obs.GetCounter("cham_hmvp_errors_total", errHelp, "class", "other")

// countErr attributes err to its class counter and passes it through
// unchanged; nil-safe and a no-op with telemetry disabled.
func countErr(err error) error {
	if err == nil || !obs.On() {
		return err
	}
	for _, ec := range errClasses {
		if errors.Is(err, ec.sentinel) {
			ec.counter.Inc()
			return err
		}
	}
	errOther.Inc()
	return err
}
