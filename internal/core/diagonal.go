package core

import (
	"fmt"
	"math"
	"math/rand"

	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// Diagonal-encoded HMVP — the GAZELLE / Halevi-Shoup method the paper
// names as the other O(m) approach (§II-E), implemented with genuine
// homomorphic slot rotations so the complexity comparison against Alg. 1
// is measured, not assumed.
//
// Slot geometry: the N slots split into two rows of N/2. Ordering the
// first row by powers of the group generator (slot i ↔ evaluation
// exponent 5^i mod 2N, the second row at the negated exponents), the
// automorphism X -> X^(5^r) rotates both rows left by r. The matrix is
// embedded into an (N/2)x(N/2) square so the cyclic wrap of slot
// rotations matches the diagonal wrap.
//
// MatVec uses n rotations (one per generalized diagonal); MatVecBSGS uses
// the baby-step/giant-step split with ~2*sqrt(n) key switches — the
// optimization real GAZELLE deployments apply, included here as the
// ablation counterpart.

// DiagonalEvaluator holds rotation keys and the slot-order tables.
type DiagonalEvaluator struct {
	P bfv.Params

	rotKeys map[int]*rlwe.SwitchingKey // rotation amount -> key for 5^r
	sigma   []int                      // σ-order position -> native slot index
	// KeySwitches counts homomorphic rotations performed (the §II-E
	// complexity metric).
	KeySwitches int
}

// pow5 returns 5^r mod 2N.
func pow5(r, n2 int) int {
	k := 1
	base := 5 % n2
	for i := 0; i < r; i++ {
		k = k * base % n2
	}
	return k
}

// NewDiagonalEvaluator generates rotation keys for the given rotation
// amounts (each in [1, N/2)).
func NewDiagonalEvaluator(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, rotations []int) (*DiagonalEvaluator, error) {
	if !p.CanBatch() {
		return nil, fmt.Errorf("core: diagonal method requires batching support")
	}
	n := p.R.N
	n2 := 2 * n
	e := &DiagonalEvaluator{P: p, rotKeys: map[int]*rlwe.SwitchingKey{}}

	// σ-order: first row at exponents 5^i, second row at -5^i.
	// Native slot j sits at exponent 2·brv(j)+1, so invert that map.
	slotOfExp := map[int]int{}
	logN := 0
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	for j := 0; j < n; j++ {
		slotOfExp[(2*brvInt(j, logN)+1)%n2] = j
	}
	e.sigma = make([]int, n)
	g := 1
	for i := 0; i < n/2; i++ {
		e.sigma[i] = slotOfExp[g]
		e.sigma[i+n/2] = slotOfExp[n2-g]
		g = g * 5 % n2
	}

	for _, r := range rotations {
		if r <= 0 || r >= n/2 {
			return nil, fmt.Errorf("core: rotation %d out of range [1,%d)", r, n/2)
		}
		if _, ok := e.rotKeys[r]; ok {
			continue
		}
		e.rotKeys[r] = p.AutomorphismKeyGen(rng, sk, pow5(r, n2))
	}
	return e, nil
}

// brvInt mirrors bfv's bit reversal (kept unexported there).
func brvInt(x, width int) int {
	r := 0
	for i := 0; i < width; i++ {
		r = r<<1 | x&1
		x >>= 1
	}
	return r
}

// allRotations returns 1..count-1, the key set for the plain method.
func allRotations(count int) []int {
	out := make([]int, 0, count-1)
	for r := 1; r < count; r++ {
		out = append(out, r)
	}
	return out
}

// BSGSRotations returns the key set for MatVecBSGS over an n-slot row
// with baby size B: babies 1..B-1 and giants B, 2B, ...
func BSGSRotations(slots, baby int) []int {
	var out []int
	for r := 1; r < baby; r++ {
		out = append(out, r)
	}
	for g := baby; g < slots; g += baby {
		out = append(out, g)
	}
	return out
}

// encodeSigma builds a plaintext whose σ-order slots hold vals (length ≤
// N/2; the second row and remaining slots are zero).
func (e *DiagonalEvaluator) encodeSigma(vals []uint64) (*bfv.Plaintext, error) {
	n := e.P.R.N
	if len(vals) > n/2 {
		return nil, fmt.Errorf("core: %d values exceed the %d-slot row", len(vals), n/2)
	}
	native := make([]uint64, n)
	for i, v := range vals {
		native[e.sigma[i]] = e.P.T.Reduce(v)
	}
	return e.P.EncodeSlots(native)
}

// decodeSigma reads the first `count` σ-order slots.
func (e *DiagonalEvaluator) decodeSigma(pt *bfv.Plaintext, count int) ([]uint64, error) {
	native, err := e.P.DecodeSlots(pt)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = native[e.sigma[i]]
	}
	return out, nil
}

// EncryptRowVector encrypts v into the first slot row. The diagonal
// method rotates before multiplying, and rotations (key switches) operate
// on the normal basis, so the whole pipeline stays there — one of the
// structural overheads versus Alg. 1's augmented multiply-then-rescale.
func (e *DiagonalEvaluator) EncryptRowVector(rng *rand.Rand, sk *rlwe.SecretKey, v []uint64) (*rlwe.Ciphertext, error) {
	pt, err := e.encodeSigma(v)
	if err != nil {
		return nil, err
	}
	return e.P.Encrypt(rng, sk, pt, e.P.NormalLevels), nil
}

// rotate applies a homomorphic row rotation by r (0 = identity).
func (e *DiagonalEvaluator) rotate(ct *rlwe.Ciphertext, r int) (*rlwe.Ciphertext, error) {
	if r == 0 {
		return ct, nil
	}
	key, ok := e.rotKeys[r]
	if !ok {
		return nil, fmt.Errorf("core: no rotation key for %d", r)
	}
	e.KeySwitches++
	return e.P.AutomorphCt(ct, pow5(r, 2*e.P.R.N), key), nil
}

// diagonal extracts generalized diagonal d of the (N/2)x(N/2) embedding
// of A: diag_d[i] = A[i][(i+d) mod N/2] (zero outside A's bounds).
func (e *DiagonalEvaluator) diagonal(a [][]uint64, d int) []uint64 {
	slots := e.P.R.N / 2
	out := make([]uint64, slots)
	for i := 0; i < slots && i < len(a); i++ {
		j := (i + d) % slots
		if j < len(a[i]) {
			out[i] = e.P.T.Reduce(a[i][j])
		}
	}
	return out
}

// MatVec computes A·v with the plain diagonal method: one rotation and
// one slot-wise plaintext multiply per non-empty diagonal. The input
// ciphertext must come from EncryptRowVector; m, n ≤ N/2.
func (e *DiagonalEvaluator) MatVec(a [][]uint64, ctV *rlwe.Ciphertext) (*rlwe.Ciphertext, error) {
	slots := e.P.R.N / 2
	if err := e.checkShape(a); err != nil {
		return nil, err
	}
	var acc *rlwe.Ciphertext
	for d := 0; d < slots; d++ {
		diag := e.diagonal(a, d)
		if allZero(diag) {
			continue
		}
		rot, err := e.rotate(ctV, d)
		if err != nil {
			return nil, err
		}
		pt, err := e.encodeSigma(diag)
		if err != nil {
			return nil, err
		}
		prod := e.P.MulPlain(rot, pt)
		if acc == nil {
			acc = prod
		} else {
			e.P.Add(acc, acc, prod)
		}
	}
	if acc == nil { // all-zero matrix: a trivial encryption of zero
		lv := e.P.NormalLevels
		acc = &rlwe.Ciphertext{B: e.P.R.NewPoly(lv), A: e.P.R.NewPoly(lv)}
	}
	return acc, nil
}

// checkShape validates m, n ≤ N/2 and rectangularity.
func (e *DiagonalEvaluator) checkShape(a [][]uint64) error {
	slots := e.P.R.N / 2
	if len(a) == 0 || len(a[0]) == 0 {
		return fmt.Errorf("core: empty matrix")
	}
	if len(a) > slots || len(a[0]) > slots {
		return fmt.Errorf("core: diagonal method limited to %dx%d", slots, slots)
	}
	for i := range a {
		if len(a[i]) != len(a[0]) {
			return fmt.Errorf("core: ragged matrix row %d", i)
		}
	}
	return nil
}

func allZero(v []uint64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// MatVecBSGS is the baby-step/giant-step variant: rotations of the vector
// by 0..B-1 (baby steps) are shared across all giant groups; each group
// needs one giant rotation of its partial sum. Plaintext diagonals are
// pre-rotated in the clear. Roughly B + slots/B key switches.
func (e *DiagonalEvaluator) MatVecBSGS(a [][]uint64, ctV *rlwe.Ciphertext, baby int) (*rlwe.Ciphertext, error) {
	slots := e.P.R.N / 2
	if err := e.checkShape(a); err != nil {
		return nil, err
	}
	if baby < 1 || baby > slots {
		return nil, fmt.Errorf("core: baby size %d out of range", baby)
	}
	// Baby rotations of the vector, computed once.
	babies := make([]*rlwe.Ciphertext, baby)
	babies[0] = ctV
	for b := 1; b < baby; b++ {
		rot, err := e.rotate(ctV, b)
		if err != nil {
			return nil, err
		}
		babies[b] = rot
	}
	var acc *rlwe.Ciphertext
	for g := 0; g < slots; g += baby {
		// Inner sum over the group, on pre-rotated plaintext diagonals:
		// Σ_b rot_{-g}(diag_{g+b}) ∘ rot_b(v).
		var inner *rlwe.Ciphertext
		for b := 0; b < baby && g+b < slots; b++ {
			diag := e.diagonal(a, g+b)
			if allZero(diag) {
				continue
			}
			rotated := rotateSlice(diag, -g) // cleartext rot_{-g}
			pt, err := e.encodeSigma(rotated)
			if err != nil {
				return nil, err
			}
			prod := e.P.MulPlain(babies[b], pt)
			if inner == nil {
				inner = prod
			} else {
				e.P.Add(inner, inner, prod)
			}
		}
		if inner == nil {
			continue
		}
		if g > 0 {
			rot, err := e.rotate(inner, g)
			if err != nil {
				return nil, err
			}
			inner = rot
		}
		if acc == nil {
			acc = inner
		} else {
			e.P.Add(acc, acc, inner)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("core: zero matrix")
	}
	return acc, nil
}

// DecryptRow reads the first `count` result slots.
func (e *DiagonalEvaluator) DecryptRow(ct *rlwe.Ciphertext, sk *rlwe.SecretKey, count int) ([]uint64, error) {
	return e.decodeSigma(e.P.Decrypt(ct, sk), count)
}

// rotateSlice applies the cleartext counterpart of rot_r: out[i] =
// v[(i+r) mod n] (r may be negative).
func rotateSlice(v []uint64, r int) []uint64 {
	n := len(v)
	out := make([]uint64, n)
	for i := range v {
		out[i] = v[((i+r)%n+n)%n]
	}
	return out
}

// DiagonalKeySwitchEstimate returns the rotation counts of the two
// variants for an n-column square embedding — the ablation numbers.
func DiagonalKeySwitchEstimate(slots, baby int) (plain, bsgs int) {
	plain = slots - 1
	bsgs = baby - 1 + int(math.Ceil(float64(slots)/float64(baby))) - 1
	return
}
