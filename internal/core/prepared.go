package core

// Prepared-matrix HMVP: the per-matrix half of the pipeline (row encode,
// centred lift, forward NTT, Shoup companion tables) is hoisted out of the
// per-vector path, mirroring how CHAM keeps operands resident instead of
// re-streaming them. A PreparedMatrix is built once with Prepare and then
// applied to any number of encrypted vectors; ApplyInto reuses pooled
// scratch end to end, so a warm apply performs zero heap allocations.
//
// Per row, the dot product fuses stage 4's EXTRACTLWES into the inverse
// transform: extraction at index 0 only needs the constant coefficient of
// INTT(acc.B), which is N^{-1}·Σ_j â_j per limb (SumRow), so the B part
// skips its full inverse transforms and polynomial RESCALE entirely.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/obs"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// preparedTile holds one row tile in evaluation-ready form: every row chunk
// encoded, lifted to the full basis, forward-transformed, with the tile's
// packing scale 2^-ℓ already folded in, plus Shoup companion tables so the
// per-vector MULTPOLY runs at MulShoup speed.
type preparedTile struct {
	rows, mPad int
	rowNTT     [][]*ring.Poly // [row][chunk], NTT domain, full basis
	rowShoup   [][][][]uint64 // [row][chunk] = ShoupPrecompPoly(rowNTT)
}

// PreparedMatrix is a cleartext matrix fixed in evaluation-ready form.
// Build with Evaluator.Prepare (all tiles) or Evaluator.PrepareTiles (a
// subset — the sharded serving tier prepares only the tiles a node owns),
// apply with Apply / ApplyInto / ApplyTiles. The tiles slice always spans
// the full matrix; unprepared entries are nil until PrepareTile fills
// them in. The struct is not internally synchronized: callers interleaving
// PrepareTile with applies must order them (the server holds a per-matrix
// lock across lazy preparation).
type PreparedMatrix struct {
	ev      *Evaluator
	m, cols int
	chunks  int // column chunks = ⌈cols/N⌉
	maxPad  int // largest padded tile row count
	tiles   []*preparedTile
}

// Rows returns the matrix row count m.
func (pm *PreparedMatrix) Rows() int { return pm.m }

// Cols returns the matrix column count n.
func (pm *PreparedMatrix) Cols() int { return pm.cols }

// Chunks returns the number of vector ciphertexts an apply expects.
func (pm *PreparedMatrix) Chunks() int { return pm.chunks }

// Tiles returns the total row-tile count — the number of packed output
// ciphertexts a full apply produces, whether or not every tile is
// currently prepared.
func (pm *PreparedMatrix) Tiles() int { return len(pm.tiles) }

// HasTile reports whether tile ti is prepared and ready to apply.
func (pm *PreparedMatrix) HasTile(ti int) bool {
	return ti >= 0 && ti < len(pm.tiles) && pm.tiles[ti] != nil
}

// TileRows returns the row count of tile ti (the last tile may be short),
// or 0 for an out-of-range index.
func (pm *PreparedMatrix) TileRows(ti int) int {
	if ti < 0 || ti >= len(pm.tiles) {
		return 0
	}
	_, rows, _ := pm.tileBounds(ti)
	return rows
}

// tileBounds returns tile ti's first row, row count, and padded row count.
func (pm *PreparedMatrix) tileBounds(ti int) (base, rows, mPad int) {
	n := pm.ev.P.R.N
	base = ti * n
	rows = pm.m - base
	if rows > n {
		rows = n
	}
	return base, rows, nextPow2(rows)
}

// Prepare encodes, lifts, and forward-transforms all rows of A once
// (the one-time stages 1–2 work of every future apply). The same shape
// rules as MatVec apply.
func (e *Evaluator) Prepare(A [][]uint64) (*PreparedMatrix, error) {
	sp := obs.StartSpan(mPrepareSec)
	pm, err := e.prepareTiles(A, nil)
	if err == nil {
		sp.End()
	}
	return pm, countErr(err)
}

// PrepareTiles is Prepare restricted to the listed row tiles — the shard
// half of the cluster tier, where a node owning a subset of the ring only
// pays for its own tiles. Tile indices may repeat or arrive unordered;
// skipped tiles stay nil until PrepareTile fills them in. An empty
// (non-nil) list prepares nothing but still validates the matrix.
func (e *Evaluator) PrepareTiles(A [][]uint64, tiles []int) (*PreparedMatrix, error) {
	sp := obs.StartSpan(mPrepareSec)
	pm, err := e.prepareTiles(A, tiles)
	if err == nil {
		sp.End()
	}
	return pm, countErr(err)
}

func (e *Evaluator) prepareTiles(A [][]uint64, want []int) (*PreparedMatrix, error) {
	p := e.P
	n := p.R.N
	m := len(A)
	if m == 0 {
		return nil, fmt.Errorf("%w (no rows)", ErrEmptyMatrix)
	}
	cols := len(A[0])
	if cols == 0 {
		return nil, fmt.Errorf("%w (no columns)", ErrEmptyMatrix)
	}
	for i := range A {
		if len(A[i]) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrRaggedMatrix, i, len(A[i]), cols)
		}
	}
	chunks := (cols + n - 1) / n
	nt := (m + n - 1) / n
	pm := &PreparedMatrix{ev: e, m: m, cols: cols, chunks: chunks, tiles: make([]*preparedTile, nt)}
	// Validate every tile's geometry before the expensive transforms start,
	// whether or not it is being prepared now: maxPad must cover any tile a
	// later PrepareTile might add, and key coverage is a property of the
	// matrix, not of the subset.
	for ti := 0; ti < nt; ti++ {
		_, _, mPad := pm.tileBounds(ti)
		if mPad > e.Keys.M {
			return nil, fmt.Errorf("%w: tile of %d rows (keys cover %d)", ErrTileTooLarge, mPad, e.Keys.M)
		}
		if mPad > pm.maxPad {
			pm.maxPad = mPad
		}
	}
	sel := want
	if sel == nil {
		sel = make([]int, nt)
		for ti := range sel {
			sel[ti] = ti
		}
	}
	for _, ti := range sel {
		if ti < 0 || ti >= nt {
			return nil, fmt.Errorf("%w: tile %d of %d", ErrTileIndex, ti, nt)
		}
	}
	var clk obs.StageClock
	clk.Start()
	rs := e.getRowScratch()
	defer e.putRowScratch(rs)
	for _, ti := range sel {
		if pm.tiles[ti] == nil {
			pm.tiles[ti] = e.buildTile(pm, A, ti, rs, &clk)
		}
	}
	clk.Flush()
	return pm, nil
}

// PrepareTile fills in one tile of a sparsely prepared matrix from the
// same cleartext A it was built from — the lazy half of shard failover,
// where a node suddenly asked for a tile it does not own prepares it on
// demand. Idempotent: an already-prepared tile is a no-op. Not safe to
// race with applies; callers hold their per-matrix lock.
func (pm *PreparedMatrix) PrepareTile(A [][]uint64, ti int) error {
	e := pm.ev
	if ti < 0 || ti >= len(pm.tiles) {
		return countErr(fmt.Errorf("%w: tile %d of %d", ErrTileIndex, ti, len(pm.tiles)))
	}
	if pm.tiles[ti] != nil {
		return nil
	}
	if len(A) != pm.m {
		return countErr(fmt.Errorf("%w: matrix has %d rows but prepared shape is %dx%d",
			ErrRaggedMatrix, len(A), pm.m, pm.cols))
	}
	base, rows, _ := pm.tileBounds(ti)
	for i := base; i < base+rows; i++ {
		if len(A[i]) != pm.cols {
			return countErr(fmt.Errorf("%w: row %d has %d columns, want %d", ErrRaggedMatrix, i, len(A[i]), pm.cols))
		}
	}
	sp := obs.StartSpan(mPrepareSec)
	var clk obs.StageClock
	clk.Start()
	rs := e.getRowScratch()
	pm.tiles[ti] = e.buildTile(pm, A, ti, rs, &clk)
	e.putRowScratch(rs)
	clk.Flush()
	sp.End()
	return nil
}

// buildTile runs stages 1–2 (encode, centred lift, forward NTT, Shoup
// companions) for one row tile. Encoding scratch is pooled; every
// long-lived buffer below is carved from a handful of per-tile slabs (one
// coefficient slab, one Shoup slab, and flat header arrays) instead of
// row×chunk×limb individual allocations — cold Prepare used to cost
// thousands of allocs per call.
func (e *Evaluator) buildTile(pm *PreparedMatrix, A [][]uint64, ti int, rs *rowScratch, clk *obs.StageClock) *preparedTile {
	p := e.P
	n := p.R.N
	full := p.R.Levels()
	chunks, cols := pm.chunks, pm.cols
	base, rows, mPad := pm.tileBounds(ti)
	scale := p.InvPow2(log2(mPad))
	t := &preparedTile{
		rows:     rows,
		mPad:     mPad,
		rowNTT:   make([][]*ring.Poly, rows),
		rowShoup: make([][][][]uint64, rows),
	}
	nPolys := rows * chunks
	polys := make([]ring.Poly, nPolys)
	polyPtrs := make([]*ring.Poly, nPolys)
	shoupPtrs := make([][][]uint64, nPolys)
	limbHdrs := make([][]uint64, 2*nPolys*full)
	coeffSlab := make([]uint64, nPolys*full*n)
	shoupSlab := make([]uint64, nPolys*full*n)
	for k := 0; k < nPolys; k++ {
		pc := limbHdrs[:full:full]
		sh := limbHdrs[full : 2*full : 2*full]
		limbHdrs = limbHdrs[2*full:]
		for l := 0; l < full; l++ {
			pc[l], coeffSlab = coeffSlab[:n:n], coeffSlab[n:]
			sh[l], shoupSlab = shoupSlab[:n:n], shoupSlab[n:]
		}
		polys[k].Coeffs = pc
		polyPtrs[k] = &polys[k]
		shoupPtrs[k] = sh
	}
	for i := 0; i < rows; i++ {
		rp := polyPtrs[i*chunks : (i+1)*chunks : (i+1)*chunks]
		rsh := shoupPtrs[i*chunks : (i+1)*chunks : (i+1)*chunks]
		for c := 0; c < chunks; c++ {
			lo, hi := c*n, (c+1)*n
			if hi > cols {
				hi = cols
			}
			pt := rp[c]
			p.EncodeRowInto(rs.pt, A[base+i][lo:hi], scale)
			clk.Mark(obs.StageEncode)
			p.LiftInto(pt, rs.pt)
			clk.Mark(obs.StageLift)
			p.R.NTT(pt)
			clk.Mark(obs.StageNTT)
			p.R.ShoupPrecompPolyInto(rsh[c], pt)
			clk.Skip() // Shoup tables are bookkeeping, not a pipeline stage
		}
		t.rowNTT[i] = rp
		t.rowShoup[i] = rsh
	}
	return t
}

// NewResult allocates a result of the right shape for ApplyInto.
func (pm *PreparedMatrix) NewResult() *Result {
	p := pm.ev.P
	res := &Result{M: pm.m, N: p.R.N, Packed: make([]*rlwe.Ciphertext, len(pm.tiles))}
	for i := range res.Packed {
		res.Packed[i] = &rlwe.Ciphertext{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)}
	}
	return res
}

// Apply computes A·v for one encrypted vector (the per-vector stages of the
// pipeline only), allocating a fresh Result.
func (pm *PreparedMatrix) Apply(ctV []*rlwe.Ciphertext) (*Result, error) {
	res := pm.NewResult()
	if err := pm.ApplyInto(res, ctV); err != nil {
		return nil, err
	}
	return res, nil
}

// ApplyInto is Apply writing into a caller-owned Result (from NewResult).
// All intermediates come from pooled scratch: a warm call does not touch
// the heap.
func (pm *PreparedMatrix) ApplyInto(res *Result, ctV []*rlwe.Ciphertext) error {
	return pm.ApplyIntoSink(res, ctV, nil)
}

// ApplyIntoSink is ApplyInto with per-stage kernel durations also routed to
// sink (a traced request's recorder; it must tolerate concurrent StageAdd
// calls). A nil sink is exactly ApplyInto.
func (pm *PreparedMatrix) ApplyIntoSink(res *Result, ctV []*rlwe.Ciphertext, sink obs.StageSink) error {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	if err := pm.applyInto(res, ctV, sink); err != nil {
		return countErr(err)
	}
	if on {
		mApplyPrepared.Observe(time.Since(t0).Seconds())
		mAppliesPrepared.Inc()
		mRows.Add(uint64(pm.m))
	}
	return nil
}

func (pm *PreparedMatrix) applyInto(res *Result, ctV []*rlwe.Ciphertext, sink obs.StageSink) error {
	e := pm.ev
	if err := pm.validateVector(ctV); err != nil {
		return err
	}
	if err := pm.validateResult(res); err != nil {
		return err
	}
	for ti, t := range pm.tiles {
		if t == nil {
			return fmt.Errorf("%w: tile %d (prepared sparsely; use ApplyTiles or PrepareTile)", ErrTileNotPrepared, ti)
		}
	}
	e.ensureInvN()
	sc := e.getApplyScratch(pm.chunks, pm.maxPad)
	defer e.putApplyScratch(sc)
	sc.sink = sink
	sc.clk.Attach(sink)
	if err := e.loadVector(sc, ctV); err != nil {
		return err
	}
	for ti, t := range pm.tiles {
		if err := e.tileApply(res.Packed[ti], sc, t, nil, 0, t.rows, t.mPad); err != nil {
			return err
		}
	}
	res.M, res.N = pm.m, e.P.R.N
	return nil
}

// ApplyTiles computes only the listed row tiles of A·v, writing tile
// tiles[k]'s packed ciphertext into out[k] — the shard-side apply of the
// cluster tier. Each out entry must be shaped like a NewResult tile.
// Because every tile's ciphertext depends only on its own rows, the
// results are bit-identical to the corresponding entries of a full
// ApplyInto (the gather-merge invariant the cluster tests pin down).
func (pm *PreparedMatrix) ApplyTiles(out []*rlwe.Ciphertext, tiles []int, ctV []*rlwe.Ciphertext) error {
	return pm.ApplyTilesSink(out, tiles, ctV, nil)
}

// ApplyTilesSink is ApplyTiles with per-stage kernel durations also routed
// to sink (see ApplyIntoSink); nil sink is exactly ApplyTiles.
func (pm *PreparedMatrix) ApplyTilesSink(out []*rlwe.Ciphertext, tiles []int, ctV []*rlwe.Ciphertext, sink obs.StageSink) error {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	if err := pm.applyTiles(out, tiles, ctV, sink); err != nil {
		return countErr(err)
	}
	if on {
		mApplyPrepared.Observe(time.Since(t0).Seconds())
		mAppliesPrepared.Inc()
		rows := 0
		for _, ti := range tiles {
			rows += pm.TileRows(ti)
		}
		mRows.Add(uint64(rows))
	}
	return nil
}

func (pm *PreparedMatrix) applyTiles(out []*rlwe.Ciphertext, tiles []int, ctV []*rlwe.Ciphertext, sink obs.StageSink) error {
	e := pm.ev
	if err := pm.validateVector(ctV); err != nil {
		return err
	}
	if len(out) != len(tiles) {
		return fmt.Errorf("%w: %d output slots for %d tiles", ErrResultShape, len(out), len(tiles))
	}
	for k, ti := range tiles {
		if ti < 0 || ti >= len(pm.tiles) {
			return fmt.Errorf("%w: tile %d of %d", ErrTileIndex, ti, len(pm.tiles))
		}
		if pm.tiles[ti] == nil {
			return fmt.Errorf("%w: tile %d", ErrTileNotPrepared, ti)
		}
		ct := out[k]
		if ct == nil || ct.B == nil || ct.A == nil {
			return fmt.Errorf("%w: output slot %d is nil", ErrResultShape, k)
		}
		if ct.B.Levels() != e.P.NormalLevels || ct.A.Levels() != e.P.NormalLevels ||
			len(ct.B.Coeffs[0]) != e.P.R.N || len(ct.A.Coeffs[0]) != e.P.R.N {
			return fmt.Errorf("%w: output slot %d has the wrong shape", ErrResultShape, k)
		}
	}
	if len(tiles) == 0 {
		return nil
	}
	e.ensureInvN()
	sc := e.getApplyScratch(pm.chunks, pm.maxPad)
	defer e.putApplyScratch(sc)
	sc.sink = sink
	sc.clk.Attach(sink)
	if err := e.loadVector(sc, ctV); err != nil {
		return err
	}
	for k, ti := range tiles {
		t := pm.tiles[ti]
		if err := e.tileApply(out[k], sc, t, nil, 0, t.rows, t.mPad); err != nil {
			return err
		}
	}
	return nil
}

// --- shared per-vector machinery (used by both ApplyInto and MatVec) ---

// rowScratch is the per-worker arena for one row's stages 1–4. The
// a-part needs no accumulator of its own: it MACs straight into the tree
// leaf's deferred full-basis buffer.
type rowScratch struct {
	accB *ring.Poly     // full-basis NTT-domain b accumulator
	pt   *bfv.Plaintext // on-the-fly row encoding (MatVec path)
	lift *ring.Poly     // on-the-fly lifted row (MatVec path)
	clk  obs.StageClock // per-stage wall-time attribution (pooled, no allocs)
}

func (e *Evaluator) getRowScratch() *rowScratch {
	if rs, ok := e.rowPool.Get().(*rowScratch); ok {
		return rs
	}
	r := e.P.R
	full := r.Levels()
	return &rowScratch{
		accB: r.NewPoly(full),
		pt:   e.P.NewPlaintext(),
		lift: r.NewPoly(full),
	}
}

func (e *Evaluator) putRowScratch(rs *rowScratch) {
	rs.clk.Attach(nil) // see putApplyScratch
	e.rowPool.Put(rs)
}

// applyScratch holds the per-call buffers shared across rows: the
// NTT-domain vector chunks and the NTT-resident packing-tree nodes.
type applyScratch struct {
	vNTT []*rlwe.Ciphertext // full basis, NTT domain
	tree []*lwe.PackNode    // NTT-resident; consumed by PackResident
	clk  obs.StageClock     // times the shared vector transforms
	sink obs.StageSink      // traced request's recorder; nil when unsampled
}

func (e *Evaluator) getApplyScratch(chunks, mPad int) *applyScratch {
	sc, ok := e.applyPool.Get().(*applyScratch)
	if !ok {
		sc = &applyScratch{}
	}
	r := e.P.R
	full := r.Levels()
	// vNTT's length doubles as the chunk count downstream, so reslice to
	// exactly chunks, reusing buffers parked in the spare capacity.
	if cap(sc.vNTT) > len(sc.vNTT) {
		sc.vNTT = sc.vNTT[:cap(sc.vNTT)]
	}
	for len(sc.vNTT) < chunks {
		sc.vNTT = append(sc.vNTT, &rlwe.Ciphertext{B: r.NewPoly(full), A: r.NewPoly(full)})
	}
	for i := range sc.vNTT {
		if sc.vNTT[i] == nil {
			sc.vNTT[i] = &rlwe.Ciphertext{B: r.NewPoly(full), A: r.NewPoly(full)}
		}
	}
	sc.vNTT = sc.vNTT[:chunks]
	for len(sc.tree) < mPad {
		sc.tree = append(sc.tree, lwe.NewPackNode(e.P))
	}
	return sc
}

func (e *Evaluator) putApplyScratch(sc *applyScratch) {
	// Detach any trace sink before pooling — the next caller must not
	// attribute its stages to this request's trace.
	sc.sink = nil
	sc.clk.Attach(nil)
	e.applyPool.Put(sc)
}

// ensureInvN caches N^{-1} per limb (with Shoup companions), the constant
// the fused B-extraction multiplies its limb sums by.
func (e *Evaluator) ensureInvN() {
	e.invOnce.Do(func() {
		r := e.P.R
		full := r.Levels()
		e.invN = make([]uint64, full)
		e.invNShoup = make([]uint64, full)
		for l := 0; l < full; l++ {
			m := r.Moduli[l]
			inv := m.Inv(m.Reduce(uint64(r.N)))
			e.invN[l] = inv
			e.invNShoup[l] = m.ShoupPrecomp(inv)
		}
	})
}

// effWorkers resolves the Workers knob against the available work items.
func (e *Evaluator) effWorkers(items int) int {
	w := e.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// loadVector copies the vector ciphertexts into scratch and forward-
// transforms them once — the pipeline's shared stage-1 work.
func (e *Evaluator) loadVector(sc *applyScratch, ctV []*rlwe.Ciphertext) error {
	r := e.P.R
	sc.clk.Start()
	for c, ct := range ctV {
		if ct == nil || ct.B == nil || ct.A == nil {
			return fmt.Errorf("%w: vector ciphertext %d is nil", ErrVectorLength, c)
		}
		if ct.Levels() != r.Levels() {
			return fmt.Errorf("%w: vector ciphertext %d", ErrVectorBasis, c)
		}
		v := sc.vNTT[c]
		v.CopyFrom(ct)
		sc.clk.Skip() // the copy is not a pipeline stage
		if !v.B.IsNTT {
			r.NTT(v.B)
		}
		if !v.A.IsNTT {
			r.NTT(v.A)
		}
		sc.clk.Mark(obs.StageNTT)
	}
	sc.clk.Flush()
	return nil
}

// rowApplyInto runs stages 1–4 for one matrix row against the transformed
// vector chunks and writes the extracted slot ciphertext into dst as an
// NTT-resident tree leaf. Both leaf parts stay UN-rescaled: dst.A is the
// raw full-basis NTT dot-product accumulator itself (the a-part MAC
// writes straight into it — the tree's deferred a accumulator makes the
// per-row RESCALE disappear), and dst.BT holds the un-rescaled per-limb B
// constant in every slot (the NTT image of a constant). Both divisions
// are deferred to the tree flush. Rows come either prepared (polys/shoup
// non-nil) or raw (row/scale), in which case the encode+lift+NTT happens
// on the fly in rs.
func (e *Evaluator) rowApplyInto(dst *lwe.PackNode, vNTT []*rlwe.Ciphertext, polys []*ring.Poly, shoup [][][]uint64, row []uint64, scale uint64, rs *rowScratch) {
	p := e.P
	r := p.R
	full := r.Levels()
	accB := rs.accB
	accB.IsNTT, dst.A.IsNTT = true, true
	rs.clk.Start()
	for c := 0; c < len(vNTT); c++ {
		pt := rs.lift
		var sh [][]uint64
		if polys != nil {
			pt, sh = polys[c], shoup[c]
		} else {
			lo, hi := c*r.N, (c+1)*r.N
			if hi > len(row) {
				hi = len(row)
			}
			p.EncodeRowInto(rs.pt, row[lo:hi], scale)
			rs.clk.Mark(obs.StageEncode)
			p.LiftInto(pt, rs.pt)
			rs.clk.Mark(obs.StageLift)
			r.NTT(pt)
			rs.clk.Mark(obs.StageNTT)
		}
		switch {
		case c == 0 && sh != nil:
			r.MulCoeffShoupDual(accB, dst.A, vNTT[c].B, vNTT[c].A, pt, sh)
		case c == 0:
			r.MulCoeff(accB, vNTT[c].B, pt)
			r.MulCoeff(dst.A, vNTT[c].A, pt)
		case sh != nil:
			r.MulCoeffShoupDualAdd(accB, dst.A, vNTT[c].B, vNTT[c].A, pt, sh)
		default:
			r.MulCoeffAdd(accB, vNTT[c].B, pt)
			r.MulCoeffAdd(dst.A, vNTT[c].A, pt)
		}
		rs.clk.Mark(obs.StageRowMul)
	}
	// B: EXTRACT at index 0 keeps only the constant coefficient of the
	// inverse transform, which is N^{-1}·Σ_j â_j per limb (SumRow). Its
	// scalar RESCALE is DEFERRED to the tree flush: the leaf's BT carries
	// the un-rescaled constant β per full-basis limb, whose NTT image is β
	// in every slot.
	for l := 0; l < full; l++ {
		beta := r.Moduli[l].MulShoup(r.SumRow(accB, l), e.invN[l], e.invNShoup[l])
		rb := dst.BT.Coeffs[l]
		for i := range rb {
			rb[i] = beta
		}
	}
	dst.BT.IsNTT = true
	rs.clk.Mark(obs.StageExtract)
	rs.clk.Flush()
}

// tileApply runs stages 1–9 for one row tile into out (normal basis): the
// per-row dot products fan out across the worker pool, padding rows are
// zeroed, and the packing tree folds the scratch buffers down to one
// ciphertext. Rows come either from the prepared tile or from raw+scale.
func (e *Evaluator) tileApply(out *rlwe.Ciphertext, sc *applyScratch, tile *preparedTile, raw [][]uint64, scale uint64, rows, mPad int) error {
	workers := e.effWorkers(rows)
	if workers > 1 {
		e.tileRowsParallel(sc, tile, raw, scale, rows, workers)
	} else {
		rs := e.getRowScratch()
		rs.clk.Attach(sc.sink)
		for i := 0; i < rows; i++ {
			e.tileRow(sc, tile, raw, scale, i, rs)
		}
		e.putRowScratch(rs)
	}
	for i := rows; i < mPad; i++ {
		sc.tree[i].Zero()
	}
	root, err := lwe.PackResidentSink(e.P, sc.tree[:mPad], e.Keys, workers, sc.sink)
	if err != nil {
		return err
	}
	lwe.FlushIntoSink(e.P, out, root, sc.sink)
	return nil
}

// tileRow computes one row's dot product into its tree slot, from either
// the prepared tile or the raw matrix row.
func (e *Evaluator) tileRow(sc *applyScratch, tile *preparedTile, raw [][]uint64, scale uint64, i int, rs *rowScratch) {
	if tile != nil {
		e.rowApplyInto(sc.tree[i], sc.vNTT, tile.rowNTT[i], tile.rowShoup[i], nil, 0, rs)
	} else {
		e.rowApplyInto(sc.tree[i], sc.vNTT, nil, nil, raw[i], scale, rs)
	}
}

// tileRowsParallel fans the tile's rows across workers goroutines, each
// with its own pooled row scratch. Kept out of tileApply so the goroutine
// closure doesn't heap-allocate captures on the serial path.
func (e *Evaluator) tileRowsParallel(sc *applyScratch, tile *preparedTile, raw [][]uint64, scale uint64, rows, workers int) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			rs := e.getRowScratch()
			defer e.putRowScratch(rs)
			rs.clk.Attach(sc.sink)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= rows {
					return
				}
				e.tileRow(sc, tile, raw, scale, i, rs)
			}
		}()
	}
	wg.Wait()
}

// log2 of a power of two.
func log2(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}
