package core

import (
	"math/rand"
	"testing"
)

func randomImage(rng *rand.Rand, h, w int, bound uint64) [][]uint64 {
	img := make([][]uint64, h)
	for i := range img {
		img[i] = make([]uint64, w)
		for j := range img[i] {
			img[i][j] = rng.Uint64() % bound
		}
	}
	return img
}

func TestConv2DMatchesPlain(t *testing.T) {
	p := testParams(t, 64)
	rng := rand.New(rand.NewSource(20))
	sk := p.KeyGen(rng)

	shapes := []Conv2DShape{
		{H: 8, W: 8, KH: 3, KW: 3},
		{H: 8, W: 8, KH: 1, KW: 1},
		{H: 4, W: 16, KH: 2, KW: 5},
		{H: 8, W: 8, KH: 8, KW: 8}, // degenerate: single output
	}
	for _, s := range shapes {
		img := randomImage(rng, s.H, s.W, 256)
		ker := randomImage(rng, s.KH, s.KW, 256)

		ipt, err := EncodeImage(p, s, img)
		if err != nil {
			t.Fatal(err)
		}
		ctImg := p.Encrypt(rng, sk, ipt, p.R.Levels())
		ctOut, err := Conv2D(p, s, ctImg, ker)
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeConvOutput(p, s, p.Decrypt(ctOut, sk))
		want := PlainConv2D(p, s, img, ker)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%+v: output (%d,%d) = %d, want %d", s, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestConv2DValidation(t *testing.T) {
	p := testParams(t, 16)
	bad := []Conv2DShape{
		{H: 0, W: 4, KH: 1, KW: 1},
		{H: 4, W: 4, KH: 5, KW: 1},
		{H: 8, W: 8, KH: 1, KW: 1}, // 64 > N=16
	}
	for _, s := range bad {
		if err := s.Validate(p.R.N); err == nil {
			t.Errorf("shape %+v accepted", s)
		}
	}
	s := Conv2DShape{H: 4, W: 4, KH: 2, KW: 2}
	if _, err := EncodeImage(p, s, make([][]uint64, 3)); err == nil {
		t.Error("wrong image height accepted")
	}
	if _, err := EncodeKernel(p, s, [][]uint64{{1, 2, 3}, {4, 5, 6}}); err == nil {
		t.Error("wrong kernel width accepted")
	}
	if s.OutH() != 3 || s.OutW() != 3 {
		t.Error("output shape wrong")
	}
}
