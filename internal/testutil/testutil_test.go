package testutil

import (
	"testing"
)

// TestSeedStable: without an override, the seed is a pure function of the
// test name, so reruns reproduce the same stream.
func TestSeedStable(t *testing.T) {
	if v := Seed(t); v != Seed(t) {
		t.Fatal("seed changed between calls in one test")
	}
	a := NewRand(t)
	b := NewRand(t)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("two rands from the same test diverged")
		}
	}
}

// TestSeedEnvOverride: CHAM_TEST_SEED wins over the name-derived seed.
func TestSeedEnvOverride(t *testing.T) {
	t.Setenv(SeedEnv, "12345")
	if v := Seed(t); v != 12345 {
		t.Fatalf("Seed = %d with %s=12345", v, SeedEnv)
	}
	t.Setenv(SeedEnv, "not-a-number")
	fake := &failingTB{TB: t}
	func() {
		defer func() { recover() }()
		Seed(fake)
	}()
	if !fake.failed {
		t.Error("malformed seed override accepted")
	}
}

// failingTB records Fatalf instead of aborting the real test.
type failingTB struct {
	testing.TB
	failed bool
}

func (f *failingTB) Fatalf(string, ...any) { f.failed = true; panic("fatal") }
func (f *failingTB) Helper()               {}

// TestShapesCoverEdges: the generated geometries must include the cases
// the tiling logic branches on.
func TestShapesCoverEdges(t *testing.T) {
	rng := NewRand(t)
	const n = 64
	shapes := HMVPShapes(rng, n)
	if len(shapes) < 5 {
		t.Fatalf("only %d shapes", len(shapes))
	}
	var nonPow2, multiChunk bool
	for _, s := range shapes {
		if s.Rows&(s.Rows-1) != 0 {
			nonPow2 = true
		}
		if s.Chunks(n) >= 2 {
			multiChunk = true
		}
		if s.Rows < 1 || s.Cols < 1 {
			t.Fatalf("degenerate shape %+v", s)
		}
	}
	if !nonPow2 || !multiChunk {
		t.Fatalf("shapes miss required edge cases: %+v", shapes)
	}
}
