// Package testutil centralises the randomness plumbing for the repo's
// randomized tests: every test draws from an explicit seeded *rand.Rand
// whose seed is logged through t.Logf, so any failure is reproducible by
// re-running with CHAM_TEST_SEED set to the logged value.
package testutil

import (
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// SeedEnv is the environment variable that overrides every test seed.
const SeedEnv = "CHAM_TEST_SEED"

// Seed returns the deterministic seed for tb: the value of CHAM_TEST_SEED
// when set, otherwise a stable hash of the test name (so each test gets
// its own stream but reruns are identical). The seed is logged so a
// failing run always prints how to reproduce it.
func Seed(tb testing.TB) int64 {
	tb.Helper()
	if v := os.Getenv(SeedEnv); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			tb.Fatalf("testutil: bad %s=%q: %v", SeedEnv, v, err)
		}
		tb.Logf("testutil: seed %d (from %s)", s, SeedEnv)
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(tb.Name()))
	s := int64(h.Sum64() & 0x7fffffffffffffff)
	tb.Logf("testutil: seed %d (rerun with %s=%d)", s, SeedEnv, s)
	return s
}

// NewRand returns a reproducible *rand.Rand for tb, seeded via Seed.
func NewRand(tb testing.TB) *rand.Rand {
	tb.Helper()
	return rand.New(rand.NewSource(Seed(tb)))
}
