package testutil

import (
	"math/rand"
)

// Seeded generators for the shapes the HMVP stack consumes. Everything is
// a pure function of the supplied *rand.Rand, so tests stay reproducible
// end to end.

// Vector returns a length-n vector of uniform values below bound.
func Vector(rng *rand.Rand, n int, bound uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % bound
	}
	return v
}

// Matrix returns an m×n matrix of uniform values below bound.
func Matrix(rng *rand.Rand, m, n int, bound uint64) [][]uint64 {
	A := make([][]uint64, m)
	for i := range A {
		A[i] = Vector(rng, n, bound)
	}
	return A
}

// SparseMatrix returns an m×n matrix with at most nnz random non-zero
// entries per row (positions and values uniform). Sparse rows keep the
// O(N²) big.Int reference model tractable at N=4096 while still exercising
// random positions, values, and sign wrap-arounds.
func SparseMatrix(rng *rand.Rand, m, n, nnz int, bound uint64) [][]uint64 {
	A := make([][]uint64, m)
	for i := range A {
		row := make([]uint64, n)
		for k := 0; k < nnz; k++ {
			row[rng.Intn(n)] = 1 + rng.Uint64()%(bound-1)
		}
		A[i] = row
	}
	return A
}

// Shape is one HMVP matrix geometry.
type Shape struct {
	Rows, Cols int
}

// Chunks returns the number of vector ciphertexts the shape needs at ring
// degree n.
func (s Shape) Chunks(n int) int { return (s.Cols + n - 1) / n }

// HMVPShapes returns randomized matrix geometries for ring degree n,
// guaranteed to cover the edge cases the packing/tiling logic branches on:
// a single row (no packing tree), non-power-of-two row counts (padding),
// and multi-chunk column counts (2 and 3 chunks, including a non-multiple
// of n). Row counts stay small so the reference model's key-switch
// convolutions remain affordable.
func HMVPShapes(rng *rand.Rand, n int) []Shape {
	offset := func() int { return 1 + rng.Intn(n-1) }
	return []Shape{
		{Rows: 1, Cols: n + offset()},   // single row, 2 chunks
		{Rows: 2, Cols: offset()},       // partial single chunk
		{Rows: 3, Cols: n + offset()},   // non-pow2 rows, 2 chunks
		{Rows: 4, Cols: 2 * n},          // exact 2-chunk boundary
		{Rows: 6, Cols: 2*n + offset()}, // non-pow2 rows, 3 chunks
	}
}
