package server

// Version-skew interop: the traced frame format is negotiated, so a
// traced client against a pre-tracing server (Config.DisableTrace
// byte-for-byte reproduces one) must fall back to v1 frames and still
// get correct results, and a pre-tracing client speaking raw v1 frames
// against a traced server must be served identically with zero spans
// recorded.

import (
	"bufio"
	"net"
	"testing"
	"time"

	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/obs/trace"
	"cham/internal/testutil"
	"cham/internal/wire"
)

// TestTraceSkewTracedClientOldServer: the client probes with
// MsgTraceHello, the old server rejects the unknown message type, and
// the client keeps the connection on v1 — applies succeed and only
// client-side spans are recorded.
func TestTraceSkewTracedClientOldServer(t *testing.T) {
	trace.Reset()
	trace.SetSampleRate(1)
	defer trace.SetSampleRate(0)
	defer trace.Reset()

	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{Params: p, DisableTrace: true, Linger: time.Millisecond})
	cl := testClient(t, addr, p, nil)
	keys := setupKeys(t, cl, p, rng, sk)

	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}
	A := testutil.Matrix(rng, 24, 32, p.T.Q)
	pm, err := ev.Prepare(A)
	if err != nil {
		t.Fatal(err)
	}
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)

	tc, sp := trace.Root("client-edge", "apply")
	got, err := cl.ApplyTraced(tc, handle.ID, ctV)
	sp.EndErr(err)
	if err != nil {
		t.Fatalf("traced apply against an untraced server failed: %v", err)
	}
	want, err := pm.Apply(ctV)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Packed {
		if !sameCiphertext(got.Packed[i], want.Packed[i]) {
			t.Fatalf("tile %d not bit-identical to in-process apply", i)
		}
	}

	recs := trace.TraceRecords(tc.Trace)
	if len(recs) == 0 {
		t.Fatal("client recorded no spans for its own sampled request")
	}
	for _, r := range recs {
		switch r.Service {
		case "client-edge", "client":
			// expected: the edge root and the send span
		default:
			t.Errorf("old server leaked a %s/%s span into the trace", r.Service, r.Name)
		}
	}
}

// TestTraceSkewOldClientTracedServer: a pre-tracing client (raw v1
// frames, no MsgTraceHello probe) against a trace-enabled server. The
// server must serve it exactly as before and record nothing — the
// sampler only acts on requests that arrive with a sampled header or
// hit a rooting edge (the gateway), neither of which applies here.
func TestTraceSkewOldClientTracedServer(t *testing.T) {
	trace.Reset()
	trace.SetSampleRate(1)
	defer trace.SetSampleRate(0)
	defer trace.Reset()

	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{Params: p, Linger: time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	var seq uint16
	roundTrip := func(mt, want wire.MsgType, payload []byte) []byte {
		t.Helper()
		seq++
		if err := wire.WriteFrame(conn, mt, seq, payload); err != nil {
			t.Fatal(err)
		}
		rt, rseq, rp, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if rseq != seq {
			t.Fatalf("response seq %d, want %d", rseq, seq)
		}
		if rt == wire.MsgError {
			we, _ := wire.DecodeError(rp)
			t.Fatalf("server rejected %v: %v", mt, we)
		}
		if rt != want {
			t.Fatalf("response type %v, want %v", rt, want)
		}
		return rp
	}

	roundTrip(wire.MsgHello, wire.MsgHelloOK, wire.HelloFor(p).Encode())
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(wire.MsgSetupKeys, wire.MsgSetupKeysOK, wire.EncodeSetupKeys(p.R, keys))
	A := testutil.Matrix(rng, 24, 32, p.T.Q)
	mreq, err := wire.EncodeRegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	h, err := wire.DecodeMatrixHandle(roundTrip(wire.MsgRegisterMatrix, wire.MsgMatrixHandle, mreq))
	if err != nil {
		t.Fatal(err)
	}
	v := testutil.Vector(rng, 32, p.T.Q)
	ctV := core.EncryptVector(p, rng, sk, v)
	resp := roundTrip(wire.MsgApply, wire.MsgResult, wire.EncodeApply(p.R, wire.Apply{
		ID: h.ID, DeadlineMicros: uint64(10 * time.Second / time.Microsecond), Vector: ctV,
	}))
	got, err := wire.DecodeResult(p.R, resp)
	if err != nil {
		t.Fatal(err)
	}
	dec := core.DecryptResult(p, &core.Result{M: int(got.M), N: int(got.N), Packed: got.Packed}, sk)
	plain := core.PlainMatVec(p, A, v)
	for i := range plain {
		if dec[i] != plain[i] {
			t.Fatalf("row %d decrypts to %d, want %d", i, dec[i], plain[i])
		}
	}
	if recs := trace.Records(); len(recs) != 0 {
		t.Fatalf("untraced v1 request left %d spans in the ring: %+v", len(recs), recs)
	}
}
