package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/rlwe"
	rt "cham/internal/runtime"
	"cham/internal/testutil"
	"cham/internal/wire"
)

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// testServer starts a server on a loopback listener and tears it down
// with the test.
func testServer(tb testing.TB, cfg Config) (*Server, string) {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			tb.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			tb.Errorf("serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func testClient(tb testing.TB, addr string, p bfv.Params, mut func(*client.Config)) *client.Client {
	tb.Helper()
	cfg := client.Config{Addr: addr, Params: p, MaxConns: 16, Backoff: time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	cl, err := client.Dial(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cl.Close() })
	return cl
}

// setupKeys generates a client-side key set and installs it.
func setupKeys(tb testing.TB, cl *client.Client, p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey) *lwe.PackingKeys {
	tb.Helper()
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		tb.Fatal(err)
	}
	hash, err := cl.SetupKeys(keys)
	if err != nil {
		tb.Fatal(err)
	}
	if want := wire.KeyHash(p.R, keys); hash != want {
		tb.Fatalf("key hash mismatch: got %x want %x", hash[:8], want[:8])
	}
	return keys
}

func sameCiphertext(a, b *rlwe.Ciphertext) bool {
	if a.B.Levels() != b.B.Levels() || a.A.Levels() != b.A.Levels() {
		return false
	}
	for l := 0; l < a.B.Levels(); l++ {
		for i := range a.B.Coeffs[l] {
			if a.B.Coeffs[l][i] != b.B.Coeffs[l][i] {
				return false
			}
		}
	}
	for l := 0; l < a.A.Levels(); l++ {
		for i := range a.A.Coeffs[l] {
			if a.A.Coeffs[l][i] != b.A.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

// TestLoopbackEndToEnd is the acceptance loop: concurrent clients stream
// encrypted vectors over TCP and every packed result must be bit-identical
// to the in-process ApplyInto with the same keys, at both serial and
// fully parallel evaluator settings, and decrypt to the cleartext product.
func TestLoopbackEndToEnd(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	const clients = 8

	for _, workers := range []int{1, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("evalWorkers=%d", workers), func(t *testing.T) {
			_, addr := testServer(t, Config{Params: p, EvalWorkers: workers, MaxBatch: 4, Linger: time.Millisecond})
			cl := testClient(t, addr, p, nil)
			keys := setupKeys(t, cl, p, rng, sk)

			// In-process reference evaluator over the very same key set.
			ev, err := core.NewEvaluatorFromKeys(p, keys)
			if err != nil {
				t.Fatal(err)
			}
			ev.Workers = workers
			A := testutil.Matrix(rng, 24, 32, p.T.Q)
			pm, err := ev.Prepare(A)
			if err != nil {
				t.Fatal(err)
			}
			handle, err := cl.RegisterMatrix(A)
			if err != nil {
				t.Fatal(err)
			}
			if want, _ := wire.MatrixID(A); handle.ID != want {
				t.Fatalf("handle ID %x, want content hash %x", handle.ID[:8], want[:8])
			}
			if handle.Rows != 24 || handle.Cols != 32 || handle.Chunks != 1 || handle.Tiles != 1 {
				t.Fatalf("unexpected handle geometry %+v", handle)
			}

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					grng := rand.New(rand.NewSource(testutil.Seed(t) + int64(c)))
					for iter := 0; iter < 2; iter++ {
						v := testutil.Vector(grng, 32, p.T.Q)
						ctV := core.EncryptVector(p, grng, sk, v)
						got, err := cl.Apply(handle.ID, ctV)
						if err != nil {
							errs <- fmt.Errorf("client %d: %v", c, err)
							return
						}
						want, err := pm.Apply(ctV)
						if err != nil {
							errs <- err
							return
						}
						if len(got.Packed) != len(want.Packed) {
							errs <- fmt.Errorf("client %d: %d tiles, want %d", c, len(got.Packed), len(want.Packed))
							return
						}
						for i := range got.Packed {
							if !sameCiphertext(got.Packed[i], want.Packed[i]) {
								errs <- fmt.Errorf("client %d: tile %d not bit-identical to in-process apply", c, i)
								return
							}
						}
						dec := core.DecryptResult(p, &core.Result{M: int(got.M), N: int(got.N), Packed: got.Packed}, sk)
						plain := core.PlainMatVec(p, A, v)
						for i := range plain {
							if dec[i] != plain[i] {
								errs <- fmt.Errorf("client %d: row %d = %d, want %d", c, i, dec[i], plain[i])
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestBatchCoalescing drives concurrent applies through a single worker
// and asserts the dispatcher actually merged them: fewer batches than
// requests, with every live request accounted for.
func TestBatchCoalescing(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{
		Params: p, Workers: 1, MaxBatch: 8, Linger: 20 * time.Millisecond, QueueDepth: 64,
	})
	cl := testClient(t, addr, p, nil)
	setupKeys(t, cl, p, rng, sk)
	A := testutil.Matrix(rng, 8, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}

	batches0, reqs0 := mBatchSize.Count(), mBatchSize.Sum()
	const concurrent = 16
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for c := 0; c < concurrent; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(testutil.Seed(t) + 100 + int64(c)))
			ctV := core.EncryptVector(p, grng, sk, testutil.Vector(grng, 32, p.T.Q))
			if _, err := cl.Apply(handle.ID, ctV); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	batches := mBatchSize.Count() - batches0
	served := mBatchSize.Sum() - reqs0
	if served != concurrent {
		t.Fatalf("batch-size histogram accounts for %v requests, want %d", served, concurrent)
	}
	if batches >= concurrent {
		t.Fatalf("%d batches for %d requests: no coalescing happened", batches, concurrent)
	}
	t.Logf("served %v requests in %d batches", served, batches)
}

// TestOverloadTyped saturates a deliberately tiny server and asserts the
// admission controller answers with the typed overload rejection while
// still serving some requests; a retrying client then rides it out.
func TestOverloadTyped(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	card, err := rt.New(rt.NewDevice(1, 20*time.Millisecond, rt.FaultPlan{}))
	if err != nil {
		t.Fatal(err)
	}
	card.JobTimeout = time.Second
	_, addr := testServer(t, Config{
		Params: p, Workers: 1, MaxBatch: 1, QueueDepth: 1, Card: card,
	})
	cl := testClient(t, addr, p, func(c *client.Config) { c.MaxRetries = -1 }) // no retries
	setupKeys(t, cl, p, rng, sk)
	A := testutil.Matrix(rng, 8, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 12
	var wg sync.WaitGroup
	results := make(chan error, concurrent)
	for c := 0; c < concurrent; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(testutil.Seed(t) + 200 + int64(c)))
			ctV := core.EncryptVector(p, grng, sk, testutil.Vector(grng, 32, p.T.Q))
			_, err := cl.Apply(handle.ID, ctV)
			results <- err
		}(c)
	}
	wg.Wait()
	close(results)
	var ok, overloaded, other int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, wire.ErrOverloaded):
			overloaded++
		default:
			other++
			t.Errorf("unexpected error class: %v", err)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under saturation")
	}
	if overloaded == 0 {
		t.Error("no request was rejected with the typed overload error")
	}
	t.Logf("ok=%d overloaded=%d other=%d", ok, overloaded, other)

	// With retries enabled the same pressure resolves to success.
	rcl := testClient(t, addr, p, func(c *client.Config) {
		c.MaxRetries = 20
		c.Backoff = 2 * time.Millisecond
	})
	grng := rand.New(rand.NewSource(testutil.Seed(t) + 999))
	ctV := core.EncryptVector(p, grng, sk, testutil.Vector(grng, 32, p.T.Q))
	if _, err := rcl.Apply(handle.ID, ctV); err != nil {
		t.Fatalf("retrying client did not recover from overload: %v", err)
	}
}

// TestDeadlineExpiredInQueue forces every request to miss its budget and
// asserts the typed deadline rejection (not a hang, not a generic error).
func TestDeadlineExpiredInQueue(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{Params: p, DefaultDeadline: time.Nanosecond, MaxBatch: 1})
	cl := testClient(t, addr, p, func(c *client.Config) { c.MaxRetries = -1 })
	setupKeys(t, cl, p, rng, sk)
	A := testutil.Matrix(rng, 4, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	ctV := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 32, p.T.Q))
	_, err = cl.Apply(handle.ID, ctV)
	if !errors.Is(err, &wire.Error{Code: wire.CodeDeadline}) {
		t.Fatalf("expected typed deadline error, got %v", err)
	}
}

// TestDrainRejectsNewApplies flips the drain flag and asserts new applies
// get the typed (retryable) draining rejection while the registry still
// answers reads.
func TestDrainRejectsNewApplies(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	s, addr := testServer(t, Config{Params: p})
	cl := testClient(t, addr, p, func(c *client.Config) { c.MaxRetries = -1 })
	setupKeys(t, cl, p, rng, sk)
	A := testutil.Matrix(rng, 4, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}
	ctV := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 32, p.T.Q))
	if _, err := cl.Apply(handle.ID, ctV); err != nil {
		t.Fatal(err)
	}

	s.enqMu.Lock()
	s.draining = true
	s.enqMu.Unlock()
	_, err = cl.Apply(handle.ID, ctV)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeDraining {
		t.Fatalf("expected typed draining error, got %v", err)
	}
	if !we.Retryable() {
		t.Fatal("draining must be retryable (clients fail over)")
	}
}

// TestParamsMismatch asserts the handshake rejects a client built on a
// different parameter set with the typed, non-retryable mismatch error.
func TestParamsMismatch(t *testing.T) {
	p := testParams(t, 32)
	_, addr := testServer(t, Config{Params: p})
	other := testParams(t, 16)
	cl := testClient(t, addr, other, func(c *client.Config) { c.MaxRetries = -1 })
	_, err := cl.Hello() // every dial opens with the handshake
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeParamsMismatch {
		t.Fatalf("expected params mismatch, got %v", err)
	}
	if we.Retryable() {
		t.Fatal("params mismatch must not be retryable")
	}
}

// TestKeyLifecycle covers the one-key-set-per-server contract: required
// before registration, idempotent re-install, conflicting set rejected.
func TestKeyLifecycle(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{Params: p})
	cl := testClient(t, addr, p, func(c *client.Config) { c.MaxRetries = -1 })

	A := testutil.Matrix(rng, 4, 32, p.T.Q)
	_, err := cl.RegisterMatrix(A)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeKeysRequired {
		t.Fatalf("register before keys: expected keys_required, got %v", err)
	}

	keys := setupKeys(t, cl, p, rng, sk)
	h1, err := cl.SetupKeys(keys) // idempotent re-install
	if err != nil {
		t.Fatalf("idempotent SetupKeys failed: %v", err)
	}
	if h1 != wire.KeyHash(p.R, keys) {
		t.Fatal("idempotent SetupKeys returned a different hash")
	}

	sk2 := p.KeyGen(rng)
	keys2, err := lwe.GenPackingKeys(p, rng, sk2, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.SetupKeys(keys2)
	if !errors.As(err, &we) || we.Code != wire.CodeKeysConflict {
		t.Fatalf("conflicting SetupKeys: expected keys_conflict, got %v", err)
	}
}

// TestUnknownMatrix asserts an apply against an unregistered hash fails
// with the typed lookup error.
func TestUnknownMatrix(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	_, addr := testServer(t, Config{Params: p})
	cl := testClient(t, addr, p, func(c *client.Config) { c.MaxRetries = -1 })
	setupKeys(t, cl, p, rng, sk)
	ctV := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 32, p.T.Q))
	var bogus [32]byte
	bogus[0] = 0xEE
	_, err := cl.Apply(bogus, ctV)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeUnknownMatrix {
		t.Fatalf("expected unknown_matrix, got %v", err)
	}
}

// TestShutdownWhileBusy starts a burst of applies and shuts down
// mid-flight: every admitted request must still get an answer and the
// server must come down without leaking workers.
func TestShutdownWhileBusy(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	s, err := New(Config{Params: p, Workers: 2, MaxBatch: 4, Linger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	cl := testClient(t, ln.Addr().String(), p, func(c *client.Config) { c.MaxRetries = -1 })
	setupKeys(t, cl, p, rng, sk)
	A := testutil.Matrix(rng, 8, 32, p.T.Q)
	handle, err := cl.RegisterMatrix(A)
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 8
	var wg sync.WaitGroup
	answered := make(chan bool, inflight)
	for c := 0; c < inflight; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(testutil.Seed(t) + 300 + int64(c)))
			ctV := core.EncryptVector(p, grng, sk, testutil.Vector(grng, 32, p.T.Q))
			_, err := cl.Apply(handle.ID, ctV)
			// Success, typed draining, and torn connection are all legitimate
			// outcomes mid-shutdown; a hang is not (the WaitGroup catches it).
			answered <- err == nil
		}(c)
	}
	time.Sleep(time.Millisecond) // let some requests reach the queue
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	close(answered)
	n := 0
	for range answered {
		n++
	}
	if n != inflight {
		t.Fatalf("%d of %d requests answered", n, inflight)
	}
}
