// Package server is chamserve's core: a TCP job service that turns the
// in-process HMVP engine into a networked accelerator tier. Clients
// register cleartext matrices (named by content hash, prepared once into
// evaluation-ready form) and stream encrypted vectors at them; the server
// coalesces concurrent single-vector requests into batches, mirrors each
// batch as one descriptor job on the accelerator runtime's engine pool,
// and applies admission control so overload degrades into fast typed
// rejections instead of collapse.
//
// The paper's heterogeneous host+card system (§III-C) keeps engines
// saturated by interleaving transfer and compute; this package is the
// same idea one tier up: the admission queue decouples arrival from
// service, the batcher amortizes per-job dispatch across coalesced
// requests, and per-request deadlines abort work that nobody is waiting
// for anymore. Everything is observable through the cham_server_*
// families in internal/obs.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/obs"
	"cham/internal/obs/trace"
	"cham/internal/rlwe"
	rt "cham/internal/runtime"
	"cham/internal/wire"
)

// Config shapes a Server. The zero value of every field selects a
// production-reasonable default.
type Config struct {
	// Params is the parameter set every client must match (required).
	Params bfv.Params
	// MaxBatch bounds how many coalesced requests one batch may carry;
	// 1 disables coalescing. Default 16.
	MaxBatch int
	// Linger is how long the batcher waits for the batch to fill before
	// dispatching it short. Default 2ms.
	Linger time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are
	// rejected with CodeOverloaded. Default 256.
	QueueDepth int
	// DefaultDeadline bounds queue wait + service for requests that do not
	// carry their own deadline. Default 5s.
	DefaultDeadline time.Duration
	// Workers is the number of batch executors. Default GOMAXPROCS.
	Workers int
	// EvalWorkers is the per-apply parallelism of the shared evaluator
	// (Evaluator.Workers). Default 0 = GOMAXPROCS.
	EvalWorkers int
	// MaxFrame bounds one accepted wire frame. Default wire.DefaultMaxFrame.
	MaxFrame uint32
	// Card, when non-nil, mirrors every dispatched batch as one HMVP
	// descriptor job on the simulated accelerator's engine pool, so batch
	// coalescing amortizes real per-job dispatch cost.
	Card *rt.Runtime
	// LazyTiles is the shard mode of the cluster tier: RegisterMatrix
	// retains the cleartext matrix and prepares no tiles upfront; each row
	// tile is prepared on first use (a TileApply for it, a warm-up request,
	// or a full Apply, which prepares everything). A shard node that
	// normally serves its own tile range can therefore take over any tile
	// after a peer dies, paying the preparation cost only on failover.
	LazyTiles bool
	// DisableTrace pins the connection read loop to strict protocol
	// revision 1 and rejects the MsgTraceHello capability probe, exactly
	// like a pre-tracing build — the version-skew interop tests use it to
	// stand in for an old server.
	DisableTrace bool
	// Log receives the server's structured logs (per-request records at
	// Debug, lifecycle at Info; sampled requests carry their trace_id).
	// Default: discard — binaries pass a handler configured by -log-level.
	Log *slog.Logger
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Params.R == nil {
		return c, fmt.Errorf("server: Config.Params is required")
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Linger <= 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c, nil
}

// regMatrix is one registered matrix: prepared once, applied many times,
// with a pool of result buffers so steady-state applies reuse memory.
// payload is the canonical RegisterMatrix encoding (whose SHA-256 is the
// matrix ID) and feeds registry replication; A is retained only in
// LazyTiles mode, where prepMu serializes on-demand tile preparation.
type regMatrix struct {
	pm       *core.PreparedMatrix
	handle   wire.MatrixHandle
	packLog2 uint8
	payload  []byte
	pool     sync.Pool // *core.Result

	prepMu sync.Mutex
	A      [][]uint64 // nil unless lazily prepared
}

func (m *regMatrix) getResult() *core.Result {
	if res, ok := m.pool.Get().(*core.Result); ok {
		return res
	}
	return m.pm.NewResult()
}

func (m *regMatrix) putResult(res *core.Result) { m.pool.Put(res) }

// request is one admitted Apply or TileApply, from enqueue to response.
// tiles nil means a full apply; otherwise only the listed row tiles are
// computed and answered as a MsgTileResult.
type request struct {
	mat      *regMatrix
	vec      []*rlwe.Ciphertext
	tiles    []uint32
	conn     *serverConn
	seq      uint16
	enqueued time.Time
	deadline time.Time
	tc       trace.Context // propagated from the request frame's trace header
	qspan    trace.Span    // admission → batch pickup (inert when unsampled)
}

// Server is a running chamserve instance.
type Server struct {
	cfg Config

	mu          sync.RWMutex // guards ev, keyHash, keysPayload, matrices
	ev          *core.Evaluator
	haveKeys    bool
	keyHash     [32]byte
	keysPayload []byte // canonical SetupKeys encoding, for registry export
	matrices    map[[32]byte]*regMatrix

	// enqMu serializes admission against drain: enqueuers hold the read
	// side, Shutdown flips draining under the write side, so no request
	// can slip into the queue after the drain barrier.
	enqMu    sync.RWMutex
	draining bool
	queue    chan *request
	batches  chan []*request

	reqWG  sync.WaitGroup // admitted requests not yet responded to
	workWG sync.WaitGroup // dispatcher + workers

	ln        atomic.Pointer[net.Listener]
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	closeOnce sync.Once
}

// New builds a server and starts its dispatcher and worker pool; call
// Serve (or ListenAndServe) to accept connections.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		matrices: map[[32]byte]*regMatrix{},
		queue:    make(chan *request, cfg.QueueDepth),
		batches:  make(chan []*request, cfg.Workers),
		conns:    map[net.Conn]struct{}{},
	}
	s.workWG.Add(1 + cfg.Workers)
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener is closed (by
// Shutdown). It returns nil on a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.ln.Store(&ln)
	s.cfg.Log.Info("server listening", "addr", ln.Addr().String())
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		mConns.Add(1)
		go s.handleConn(c)
	}
}

// Addr reports the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	if p := s.ln.Load(); p != nil {
		return (*p).Addr()
	}
	return nil
}

func (s *Server) isDraining() bool {
	s.enqMu.RLock()
	defer s.enqMu.RUnlock()
	return s.draining
}

// Shutdown drains gracefully: stop accepting, reject new applies with
// CodeDraining, finish every admitted request, then stop the workers and
// close remaining connections. ctx bounds the wait; on expiry the error
// is returned after connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cfg.Log.Info("server draining")
	s.enqMu.Lock()
	s.draining = true
	s.enqMu.Unlock()
	if p := s.ln.Load(); p != nil {
		(*p).Close()
	}
	err := waitCtx(ctx, &s.reqWG)
	s.closeOnce.Do(func() { close(s.queue) })
	if err == nil {
		err = waitCtx(ctx, &s.workWG)
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.connMu.Unlock()
	return err
}

// waitCtx waits for wg or the context, whichever first.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Matrices reports how many matrices are registered.
func (s *Server) Matrices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.matrices)
}

// engines reports the mirrored card's engine count (0 without a card).
func (s *Server) engines() uint32 {
	if s.cfg.Card == nil {
		return 0
	}
	return uint32(s.cfg.Card.Engines())
}

// admit runs admission control for one decoded Apply and either enqueues
// it (returning true) or reports the typed rejection to send.
func (s *Server) admit(req *request) *wire.Error {
	s.enqMu.RLock()
	defer s.enqMu.RUnlock()
	if s.draining {
		return wire.Errf(wire.CodeDraining, "server is shutting down")
	}
	s.reqWG.Add(1)
	select {
	case s.queue <- req:
		mQueueDepth.Add(1)
		return nil
	default:
		s.reqWG.Done()
		return wire.Errf(wire.CodeOverloaded, "admission queue full (%d deep)", s.cfg.QueueDepth)
	}
}

// dispatch pulls admitted requests and coalesces them into batches.
func (s *Server) dispatch() {
	defer s.workWG.Done()
	defer close(s.batches)
	for {
		req, ok := <-s.queue
		if !ok {
			return
		}
		mQueueDepth.Add(-1)
		s.batches <- s.collect(req)
	}
}

// collect grows a batch around first: same matrix, up to MaxBatch
// requests, waiting at most Linger for stragglers. A request for a
// different matrix flushes the current batch and seeds the next one.
func (s *Server) collect(first *request) []*request {
	batch := []*request{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req, ok := <-s.queue:
			if !ok {
				return batch
			}
			mQueueDepth.Add(-1)
			if req.mat != batch[0].mat {
				s.batches <- batch
				batch = []*request{req}
				continue
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// worker executes batches until the batch channel closes.
func (s *Server) worker() {
	defer s.workWG.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch serves one coalesced batch: expire stale requests, mirror the
// batch as a single descriptor job on the card's engine pool, then apply
// the prepared matrix to each vector, reusing pooled result buffers.
func (s *Server) runBatch(batch []*request) {
	now := time.Now()
	live := batch[:0]
	var latest time.Time
	for _, req := range batch {
		if now.After(req.deadline) {
			req.qspan.Annotate("expired in queue")
			req.qspan.End()
			s.finishErr(req, wire.Errf(wire.CodeDeadline,
				"deadline expired after %v in queue", now.Sub(req.enqueued).Round(time.Microsecond)))
			continue
		}
		req.qspan.End()
		mWaitSec.Observe(now.Sub(req.enqueued).Seconds())
		if req.deadline.After(latest) {
			latest = req.deadline
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	mBatchSize.Observe(float64(len(live)))

	// One dispatch span per coalesced batch, hung under the first sampled
	// request (coalescing merges requests from different traces; the batch
	// has to pick one parent). It wraps the card job and every apply.
	bctx := trace.Context{}
	var bsp trace.Span
	for _, req := range live {
		if req.tc.Sampled() {
			bctx, bsp = trace.Start(req.tc, "server", "dispatch")
			bsp.Annotate(fmt.Sprintf("batch of %d", len(live)))
			break
		}
	}
	defer bsp.End()

	if s.cfg.Card != nil {
		// One descriptor job per coalesced batch: config-load, doorbell and
		// status-poll cost is paid once for up to MaxBatch vectors. The
		// context carries the latest live deadline, so a batch nobody is
		// waiting for anymore aborts while queued for an engine. Tile
		// requests narrow the descriptor to the rows actually computed, so
		// a shard's card pays for its share of the matrix, not all of it.
		rows := 0
		for _, req := range live {
			if r := s.requestRows(req); r > rows {
				rows = r
			}
		}
		ctx, cancel := context.WithDeadline(trace.NewContext(context.Background(), bctx), latest)
		err := s.cfg.Card.RunHMVPCtx(ctx, live[0].mat.descriptor(uint32(rows)))
		cancel()
		if err != nil {
			for _, req := range live {
				if time.Now().After(req.deadline) || errors.Is(err, context.DeadlineExceeded) {
					s.finishErr(req, wire.Errf(wire.CodeDeadline, "deadline expired on the engine queue"))
				} else {
					s.finishErr(req, wire.Errf(wire.CodeInternal, "accelerator job failed: %v", err))
				}
			}
			return
		}
	}

	r := s.cfg.Params.R
	for _, req := range live {
		if time.Now().After(req.deadline) {
			s.finishErr(req, wire.Errf(wire.CodeDeadline, "deadline expired before service"))
			continue
		}
		t0 := time.Now()
		mat := req.mat
		sctx, ssp := trace.Start(req.tc, "server", "serve")
		rec := trace.NewStageRecorder(sctx)
		if req.tiles != nil {
			s.runTileRequest(req, t0, rec, &ssp)
			continue
		}
		res := mat.getResult()
		if err := mat.pm.ApplyIntoSink(res, req.vec, sinkOf(rec)); err != nil {
			mat.putResult(res)
			ssp.EndErr(err)
			s.finishErr(req, wire.Errf(wire.CodeBadRequest, "apply: %v", err))
			continue
		}
		payload := wire.EncodeResult(r, wire.Result{
			M:      uint32(res.M),
			N:      uint32(res.N),
			Packed: res.Packed,
		})
		mat.putResult(res)
		mServeSec.Observe(time.Since(t0).Seconds())
		mApplies.Inc()
		rec.Emit("kernel")
		ssp.End()
		if req.tc.Sampled() {
			s.cfg.Log.Debug("apply served",
				"trace_id", req.tc.Trace.String(),
				"dur", time.Since(t0),
				"rows", mat.handle.Rows)
		}
		s.finish(req, wire.MsgResult, payload)
	}
}

// sinkOf converts a possibly-nil *StageRecorder into a StageSink without
// producing a typed-nil interface (which the kernel would dereference).
func sinkOf(rec *trace.StageRecorder) obs.StageSink {
	if rec == nil {
		return nil
	}
	return rec
}

// runTileRequest serves the tile-subset half of runBatch: only the listed
// row tiles are computed, and they come back labelled so the coordinator
// can place each at its index in the gathered result.
func (s *Server) runTileRequest(req *request, t0 time.Time, rec *trace.StageRecorder, ssp *trace.Span) {
	p := s.cfg.Params
	mat := req.mat
	tiles := make([]int, len(req.tiles))
	out := make([]*rlwe.Ciphertext, len(req.tiles))
	for i, ti := range req.tiles {
		tiles[i] = int(ti)
		out[i] = &rlwe.Ciphertext{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)}
	}
	if err := mat.pm.ApplyTilesSink(out, tiles, req.vec, sinkOf(rec)); err != nil {
		ssp.EndErr(err)
		s.finishErr(req, wire.Errf(wire.CodeBadRequest, "tile apply: %v", err))
		return
	}
	payload := wire.EncodeTileResult(p.R, wire.TileResult{
		M:      mat.handle.Rows,
		N:      uint32(p.R.N),
		Tiles:  req.tiles,
		Packed: out,
	})
	mServeSec.Observe(time.Since(t0).Seconds())
	mApplies.Inc()
	mTilesServed.Add(uint64(len(req.tiles)))
	rec.Emit("kernel")
	ssp.Annotate(fmt.Sprintf("%d tiles", len(req.tiles)))
	ssp.End()
	if req.tc.Sampled() {
		s.cfg.Log.Debug("tile apply served",
			"trace_id", req.tc.Trace.String(),
			"dur", time.Since(t0),
			"tiles", len(req.tiles))
	}
	s.finish(req, wire.MsgTileResult, payload)
}

// requestRows is the row count a request actually computes: the whole
// matrix for a full apply, the subset's rows for a tile apply.
func (s *Server) requestRows(req *request) int {
	if req.tiles == nil {
		return int(req.mat.handle.Rows)
	}
	rows := 0
	for _, ti := range req.tiles {
		rows += req.mat.pm.TileRows(int(ti))
	}
	return rows
}

// finish sends a success response and retires the request.
func (s *Server) finish(req *request, t wire.MsgType, payload []byte) {
	req.conn.send(t, req.seq, payload)
	s.reqWG.Done()
}

// finishErr sends a typed failure and retires the request.
func (s *Server) finishErr(req *request, e *wire.Error) {
	mErrors.Inc()
	countReject(e)
	req.conn.send(wire.MsgError, req.seq, e.Encode())
	s.reqWG.Done()
}

// descriptor builds the card-side job configuration for one batch over
// this matrix (fixed DDR layout; the simulation models dispatch cost, not
// data placement). rows narrows the job to the rows the batch computes —
// a tile subset on a shard node — so the card's latency model charges for
// the work actually done.
func (m *regMatrix) descriptor(rows uint32) *rt.HMVPDescriptor {
	if rows == 0 || rows > m.handle.Rows {
		rows = m.handle.Rows
	}
	return &rt.HMVPDescriptor{
		Rows:         rows,
		Cols:         m.handle.Cols,
		MatrixAddr:   0x1000_0000,
		VectorAddr:   0x2000_0000,
		KeyAddr:      0x3000_0000,
		ResultAddr:   0x4000_0000,
		PackRowsLog2: m.packLog2,
	}
}
