package server

import (
	"cham/internal/obs"
	"cham/internal/wire"
)

// Telemetry handles for the serving tier, resolved at package init so a
// scrape shows the whole family at zero before the first request.
var (
	mConns = obs.GetGauge("cham_server_connections",
		"Open client connections.")
	mMatrices = obs.GetGauge("cham_server_matrices",
		"Registered prepared matrices.")
	mQueueDepth = obs.GetGauge("cham_server_queue_depth",
		"Requests admitted but not yet picked up by the batcher.")
	mApplies = obs.GetCounter("cham_server_applies_total",
		"Apply requests served successfully.")
	mErrors = obs.GetCounter("cham_server_request_errors_total",
		"Requests answered with a wire error.")
	mBatchSize = obs.GetHistogram("cham_server_batch_size",
		"Live requests per dispatched batch.", obs.ExpBuckets(1, 2, 8))
	mWaitSec = obs.GetHistogram("cham_server_wait_seconds",
		"Admission-to-dispatch queue wait per request.", obs.DefBuckets)
	mServeSec = obs.GetHistogram("cham_server_serve_seconds",
		"Apply service time per request (excludes queue wait).", obs.DefBuckets)
	mBytesRx = obs.GetCounter("cham_server_bytes_rx_total",
		"Frame bytes received from clients.")
	mBytesTx = obs.GetCounter("cham_server_bytes_tx_total",
		"Frame bytes sent to clients.")
	mTilesServed = obs.GetCounter("cham_server_tiles_served_total",
		"Row tiles computed for tile-subset requests.")
	mTilesPrepared = obs.GetCounter("cham_server_tiles_prepared_total",
		"Row tiles prepared lazily on first use.")
	mRegistrySyncs = obs.GetCounter("cham_server_registry_syncs_total",
		"Registry pulls and pushes served.")
)

// mRequests counts inbound frames by message type.
var mRequests = map[wire.MsgType]*obs.Counter{}

// mRejects counts typed rejections by stable reason name.
var mRejects = map[string]*obs.Counter{}

func init() {
	for _, t := range []struct {
		t    wire.MsgType
		name string
	}{
		{wire.MsgHello, "hello"},
		{wire.MsgSetupKeys, "setup_keys"},
		{wire.MsgRegisterMatrix, "register_matrix"},
		{wire.MsgApply, "apply"},
		{wire.MsgTileApply, "tile_apply"},
		{wire.MsgRegistrySync, "registry_sync"},
		{wire.MsgPing, "ping"},
	} {
		mRequests[t.t] = obs.GetCounter("cham_server_requests_total",
			"Inbound requests by message type.", "type", t.name)
	}
	for _, code := range []uint16{
		wire.CodeBadRequest, wire.CodeOverloaded, wire.CodeUnknownMatrix,
		wire.CodeKeysRequired, wire.CodeKeysConflict, wire.CodeDeadline,
		wire.CodeDraining, wire.CodeParamsMismatch, wire.CodeInternal,
		wire.CodeDegraded,
	} {
		name := wire.CodeName(code)
		mRejects[name] = obs.GetCounter("cham_server_rejects_total",
			"Requests rejected, by typed reason.", "reason", name)
	}
}

// countReject bumps the reject family for a typed error (unknown codes
// fall through silently rather than minting unbounded label values).
func countReject(e *wire.Error) {
	if c, ok := mRejects[wire.CodeName(e.Code)]; ok {
		c.Inc()
	}
}
