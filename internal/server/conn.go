package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"net"
	"sort"
	"sync"
	"time"

	"cham/internal/core"
	"cham/internal/obs/trace"
	"cham/internal/wire"
)

// serverConn is one client connection. Reads happen on the connection's
// own goroutine; writes are serialized by wmu because batch workers and
// the read loop respond concurrently.
type serverConn struct {
	s   *Server
	c   net.Conn
	br  *bufio.Reader
	wmu sync.Mutex

	hello bool // parameter handshake completed
}

// send writes one frame; write errors are swallowed (the read loop will
// observe the broken connection and tear it down).
func (c *serverConn) send(t wire.MsgType, seq uint16, payload []byte) {
	buf := wire.AppendFrame(nil, t, seq, payload)
	c.wmu.Lock()
	_, err := c.c.Write(buf)
	c.wmu.Unlock()
	if err == nil {
		mBytesTx.Add(uint64(len(buf)))
	}
}

// sendErr answers a request with a typed error.
func (c *serverConn) sendErr(seq uint16, e *wire.Error) {
	mErrors.Inc()
	countReject(e)
	c.send(wire.MsgError, seq, e.Encode())
}

// handleConn runs one connection's read loop until the peer hangs up, a
// frame is malformed beyond recovery, or the server closes the socket.
func (s *Server) handleConn(nc net.Conn) {
	c := &serverConn{s: s, c: nc, br: bufio.NewReaderSize(nc, 64<<10)}
	defer func() {
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
		nc.Close()
		mConns.Add(-1)
	}()
	for {
		// The trace-aware loop accepts both frame revisions; DisableTrace
		// pins it to strict v1, behaving exactly like a pre-tracing build.
		var t wire.MsgType
		var seq uint16
		var th wire.TraceHeader
		var payload []byte
		var err error
		if s.cfg.DisableTrace {
			t, seq, payload, err = wire.ReadFrame(c.br, s.cfg.MaxFrame)
		} else {
			t, seq, th, payload, err = wire.ReadFrameAny(c.br, s.cfg.MaxFrame)
		}
		if err != nil {
			// Includes io.EOF on clean hang-up and frame-level corruption —
			// after a desync there is no way to resynchronize the stream.
			return
		}
		tc := trace.Context{Trace: trace.TraceID(th.TraceID), Span: trace.SpanID(th.SpanID), Flags: th.Flags}
		mBytesRx.Add(uint64(frameLen(payload)))
		if m, ok := mRequests[t]; ok {
			m.Inc()
		}
		if !c.hello && t != wire.MsgHello && t != wire.MsgPing {
			c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "handshake required before %v", t))
			continue
		}
		switch t {
		case wire.MsgHello:
			s.handleHello(c, seq, payload)
		case wire.MsgSetupKeys:
			s.handleSetupKeys(c, seq, payload)
		case wire.MsgRegisterMatrix:
			s.handleRegisterMatrix(c, seq, payload)
		case wire.MsgApply:
			s.handleApply(c, seq, tc, payload)
		case wire.MsgTileApply:
			s.handleTileApply(c, seq, tc, payload)
		case wire.MsgRegistrySync:
			s.handleRegistrySync(c, seq, payload)
		case wire.MsgTraceHello:
			if s.cfg.DisableTrace {
				// A pre-tracing build does not know the message type.
				c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "unexpected message type %d", t))
				continue
			}
			s.handleTraceHello(c, seq, payload)
		case wire.MsgPing:
			c.send(wire.MsgPong, seq, payload)
		default:
			c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "unexpected message type %d", t))
		}
	}
}

// handleTraceHello acknowledges the trace-capability probe: this build
// accepts version-2 (traced) request frames on any connection.
func (s *Server) handleTraceHello(c *serverConn, seq uint16, payload []byte) {
	h, err := wire.DecodeTraceHello(payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "trace hello: %v", err))
		return
	}
	v := uint8(wire.FrameVersionTraced)
	if h.MaxVersion < v {
		v = h.MaxVersion
	}
	c.send(wire.MsgTraceHelloOK, seq, wire.TraceHelloOK{Version: v}.Encode())
}

// frameLen is the on-wire size of a frame with this payload.
func frameLen(payload []byte) int { return 12 + len(payload) }

// handleHello checks the parameter handshake bit-for-bit.
func (s *Server) handleHello(c *serverConn, seq uint16, payload []byte) {
	h, err := wire.DecodeHello(payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "hello: %v", err))
		return
	}
	if want := wire.HelloFor(s.cfg.Params); h != want {
		c.sendErr(seq, wire.Errf(wire.CodeParamsMismatch,
			"client params N=%d levels=%d/%d t=%d, server has N=%d levels=%d/%d t=%d",
			h.RingN, h.Levels, h.NormalLevels, h.T,
			want.RingN, want.Levels, want.NormalLevels, want.T))
		return
	}
	c.hello = true
	ok := wire.HelloOK{
		Hello:    wire.HelloFor(s.cfg.Params),
		Engines:  s.engines(),
		MaxBatch: uint32(s.cfg.MaxBatch),
	}
	c.send(wire.MsgHelloOK, seq, ok.Encode())
}

// handleSetupKeys installs the packing-key set. One key set per server:
// re-sending the same set (by canonical hash) is idempotent, a different
// set is a conflict — registered matrices are prepared against the
// installed keys and silently swapping them would corrupt results.
func (s *Server) handleSetupKeys(c *serverConn, seq uint16, payload []byte) {
	hash, we := s.installKeys(payload)
	if we != nil {
		c.sendErr(seq, we)
		return
	}
	c.send(wire.MsgSetupKeysOK, seq, wire.SetupKeysOK{KeyHash: hash}.Encode())
}

// installKeys is the shared key-install path behind SetupKeys and the
// registry push a joining node receives.
func (s *Server) installKeys(payload []byte) ([32]byte, *wire.Error) {
	r := s.cfg.Params.R
	keys, err := wire.DecodeSetupKeys(r, payload)
	if err != nil {
		return [32]byte{}, wire.Errf(wire.CodeBadRequest, "setup keys: %v", err)
	}
	// Hash the canonical re-encoding, not the received payload, so the
	// idempotency check is about key content rather than byte layout. The
	// canonical form is kept for registry replication to joining nodes.
	canonical := wire.EncodeSetupKeys(r, keys)
	hash := sha256.Sum256(canonical)

	s.mu.Lock()
	if s.haveKeys {
		same := s.keyHash == hash
		installed := s.keyHash
		s.mu.Unlock()
		if same {
			return hash, nil
		}
		return [32]byte{}, wire.Errf(wire.CodeKeysConflict,
			"server already holds key set %x", installed[:8])
	}
	ev, err := core.NewEvaluatorFromKeys(s.cfg.Params, keys)
	if err != nil {
		s.mu.Unlock()
		return [32]byte{}, wire.Errf(wire.CodeBadRequest, "setup keys: %v", err)
	}
	ev.Workers = s.cfg.EvalWorkers
	s.ev = ev
	s.keyHash = hash
	s.keysPayload = canonical
	s.haveKeys = true
	s.mu.Unlock()
	return hash, nil
}

// handleRegisterMatrix prepares a matrix once and names it by content
// hash. Re-registering is idempotent and cheap: the hash lookup answers
// from the registry without touching the NTT.
func (s *Server) handleRegisterMatrix(c *serverConn, seq uint16, payload []byte) {
	reg, we := s.registerPayload(payload)
	if we != nil {
		c.sendErr(seq, we)
		return
	}
	c.send(wire.MsgMatrixHandle, seq, reg.handle.Encode())
}

// registerPayload is the shared registration path behind RegisterMatrix
// and the registry push. In LazyTiles mode no tile is prepared yet — the
// cleartext is retained and tiles materialize on first use.
func (s *Server) registerPayload(payload []byte) (*regMatrix, *wire.Error) {
	s.mu.RLock()
	ev := s.ev
	s.mu.RUnlock()
	if ev == nil {
		return nil, wire.Errf(wire.CodeKeysRequired, "register matrix before SetupKeys")
	}
	// The RegisterMatrix layout is canonical (rows, cols, row-major values),
	// so the payload hash IS wire.MatrixID of the decoded matrix.
	id := sha256.Sum256(payload)
	s.mu.RLock()
	reg := s.matrices[id]
	s.mu.RUnlock()
	if reg != nil {
		return reg, nil
	}
	A, err := wire.DecodeRegisterMatrix(s.cfg.Params.T.Q, payload)
	if err != nil {
		return nil, wire.Errf(wire.CodeBadRequest, "register matrix: %v", err)
	}
	// Prepare outside the lock: it is the expensive half of the pipeline and
	// must not block concurrent applies against other matrices.
	var pm *core.PreparedMatrix
	if s.cfg.LazyTiles {
		pm, err = ev.PrepareTiles(A, []int{})
	} else {
		pm, err = ev.Prepare(A)
	}
	if err != nil {
		return nil, wire.Errf(wire.CodeBadRequest, "prepare: %v", err)
	}
	reg = &regMatrix{
		pm: pm,
		handle: wire.MatrixHandle{
			ID:     id,
			Rows:   uint32(pm.Rows()),
			Cols:   uint32(pm.Cols()),
			Chunks: uint32(pm.Chunks()),
			Tiles:  uint32(pm.Tiles()),
		},
		packLog2: packRowsLog2(pm.Rows(), s.cfg.Params.R.N),
		payload:  append([]byte(nil), payload...),
	}
	if s.cfg.LazyTiles {
		reg.A = A
	}
	s.mu.Lock()
	if prior := s.matrices[id]; prior != nil {
		reg = prior // a concurrent registration won; use its prepared form
	} else {
		s.matrices[id] = reg
		mMatrices.Set(float64(len(s.matrices)))
	}
	s.mu.Unlock()
	return reg, nil
}

// packRowsLog2 is log2 of the largest padded tile for an m-row matrix
// over ring degree n (the card descriptor's pack-tree depth).
func packRowsLog2(m, n int) uint8 {
	rows := m
	if rows > n {
		rows = n
	}
	l := uint8(0)
	for 1<<l < rows {
		l++
	}
	return l
}

// handleApply decodes, validates, and admits one apply request; the
// response is sent later by a batch worker.
func (s *Server) handleApply(c *serverConn, seq uint16, tc trace.Context, payload []byte) {
	s.mu.RLock()
	haveKeys := s.haveKeys
	s.mu.RUnlock()
	if !haveKeys {
		c.sendErr(seq, wire.Errf(wire.CodeKeysRequired, "apply before SetupKeys"))
		return
	}
	a, err := wire.DecodeApply(s.cfg.Params.R, payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "apply: %v", err))
		return
	}
	s.mu.RLock()
	reg := s.matrices[a.ID]
	s.mu.RUnlock()
	if reg == nil {
		c.sendErr(seq, wire.Errf(wire.CodeUnknownMatrix, "matrix %x not registered", a.ID[:8]))
		return
	}
	if s.cfg.LazyTiles {
		// A full apply on a shard node needs every tile; prepare the
		// missing ones before admission so batch workers never block on
		// the preparation lock.
		if we := s.ensureTiles(reg, nil); we != nil {
			c.sendErr(seq, we)
			return
		}
	}
	if len(a.Vector) != int(reg.handle.Chunks) {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest,
			"vector has %d chunks, matrix needs %d", len(a.Vector), reg.handle.Chunks))
		return
	}
	budget := s.cfg.DefaultDeadline
	if a.DeadlineMicros > 0 {
		if d := time.Duration(a.DeadlineMicros) * time.Microsecond; d < budget {
			budget = d
		}
	}
	now := time.Now()
	req := &request{
		mat:      reg,
		vec:      a.Vector,
		conn:     c,
		seq:      seq,
		enqueued: now,
		deadline: now.Add(budget),
		tc:       tc,
	}
	_, req.qspan = trace.Start(tc, "server", "queue")
	if e := s.admit(req); e != nil {
		req.qspan.EndErr(e)
		c.sendErr(seq, e)
	}
}

// ensureTiles prepares any listed tiles that are still missing (nil =
// every tile). The per-matrix lock serializes preparation; applies only
// read tiles that some admission already prepared, so the lock is never
// held on the batch-worker path. Outside LazyTiles mode every tile exists
// and the loop is a cheap no-op scan.
func (s *Server) ensureTiles(reg *regMatrix, tiles []uint32) *wire.Error {
	reg.prepMu.Lock()
	defer reg.prepMu.Unlock()
	nt := int(reg.handle.Tiles)
	for i := 0; i < nt; i++ {
		ti := i
		if tiles != nil {
			if i >= len(tiles) {
				break
			}
			ti = int(tiles[i])
		}
		if reg.pm.HasTile(ti) {
			continue
		}
		if reg.A == nil {
			return wire.Errf(wire.CodeInternal,
				"tile %d unprepared and cleartext not retained (server not in lazy-tile mode)", ti)
		}
		if err := reg.pm.PrepareTile(reg.A, ti); err != nil {
			return wire.Errf(wire.CodeBadRequest, "prepare tile %d: %v", ti, err)
		}
		mTilesPrepared.Inc()
	}
	return nil
}

// handleTileApply serves the coordinator-facing tile-subset request: warm
// requests prepare the tiles and acknowledge; compute requests are
// admitted through the same queue/batcher as full applies.
func (s *Server) handleTileApply(c *serverConn, seq uint16, tc trace.Context, payload []byte) {
	s.mu.RLock()
	haveKeys := s.haveKeys
	s.mu.RUnlock()
	if !haveKeys {
		c.sendErr(seq, wire.Errf(wire.CodeKeysRequired, "tile apply before SetupKeys"))
		return
	}
	a, err := wire.DecodeTileApply(s.cfg.Params.R, payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "tile apply: %v", err))
		return
	}
	s.mu.RLock()
	reg := s.matrices[a.ID]
	s.mu.RUnlock()
	if reg == nil {
		c.sendErr(seq, wire.Errf(wire.CodeUnknownMatrix, "matrix %x not registered", a.ID[:8]))
		return
	}
	for _, ti := range a.Tiles {
		if ti >= reg.handle.Tiles {
			c.sendErr(seq, wire.Errf(wire.CodeBadRequest,
				"tile %d out of range (matrix has %d tiles)", ti, reg.handle.Tiles))
			return
		}
	}
	if we := s.ensureTiles(reg, a.Tiles); we != nil {
		c.sendErr(seq, we)
		return
	}
	if a.Warm {
		// Preparation was the work; acknowledge with an empty result
		// carrying the matrix header.
		ack := wire.EncodeTileResult(s.cfg.Params.R, wire.TileResult{
			M: reg.handle.Rows,
			N: uint32(s.cfg.Params.R.N),
		})
		c.send(wire.MsgTileResult, seq, ack)
		return
	}
	if len(a.Vector) != int(reg.handle.Chunks) {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest,
			"vector has %d chunks, matrix needs %d", len(a.Vector), reg.handle.Chunks))
		return
	}
	budget := s.cfg.DefaultDeadline
	if a.DeadlineMicros > 0 {
		if d := time.Duration(a.DeadlineMicros) * time.Microsecond; d < budget {
			budget = d
		}
	}
	now := time.Now()
	req := &request{
		mat:      reg,
		vec:      a.Vector,
		tiles:    a.Tiles,
		conn:     c,
		seq:      seq,
		enqueued: now,
		deadline: now.Add(budget),
		tc:       tc,
	}
	_, req.qspan = trace.Start(tc, "server", "queue")
	if e := s.admit(req); e != nil {
		req.qspan.EndErr(e)
		c.sendErr(seq, e)
	}
}

// handleRegistrySync replicates the matrix registry. A pull answers with
// the installed key set and every registered matrix in canonical payload
// form (sorted by content hash, so the transfer is deterministic); a push
// installs what it carries — idempotently, since payload hashes are the
// identities — and acknowledges with the resulting registry header.
func (s *Server) handleRegistrySync(c *serverConn, seq uint16, payload []byte) {
	sy, err := wire.DecodeRegistrySync(payload)
	if err != nil {
		c.sendErr(seq, wire.Errf(wire.CodeBadRequest, "registry sync: %v", err))
		return
	}
	if sy.Push {
		if len(sy.Keys) > 0 {
			if _, we := s.installKeys(sy.Keys); we != nil {
				c.sendErr(seq, we)
				return
			}
		}
		for i, m := range sy.Matrices {
			if _, we := s.registerPayload(m); we != nil {
				c.sendErr(seq, wire.Errf(we.Code, "registry push matrix %d: %s", i, we.Detail))
				return
			}
		}
		mRegistrySyncs.Inc()
		s.mu.RLock()
		st := wire.RegistryState{KeyHash: s.keyHash}
		s.mu.RUnlock()
		c.send(wire.MsgRegistryState, seq, st.Encode())
		return
	}
	s.mu.RLock()
	st := wire.RegistryState{KeyHash: s.keyHash, Keys: s.keysPayload}
	ids := make([][32]byte, 0, len(s.matrices))
	for id := range s.matrices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
	for _, id := range ids {
		st.Matrices = append(st.Matrices, s.matrices[id].payload)
	}
	s.mu.RUnlock()
	mRegistrySyncs.Inc()
	c.send(wire.MsgRegistryState, seq, st.Encode())
}
