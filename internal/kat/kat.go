// Package kat generates and verifies golden known-answer tests for the
// CHAM stack. Every KAT is produced from fixed seeds with fully
// deterministic code paths, serialized as canonical JSON (fixed field
// order, indented, trailing newline), and pinned byte-for-byte under
// testdata/. Regenerate with `go run ./cmd/chamkat -regen` after an
// intentional change; any unintentional diff is a regression in the
// numerical pipeline.
package kat

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// digest hashes a uint64 stream in little-endian order.
func digest(vals ...[]uint64) string {
	h := sha256.New()
	var w [8]byte
	for _, vs := range vals {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(w[:], v)
			h.Write(w[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// polyDigest hashes every limb of a ring polynomial.
func polyDigest(p *ring.Poly) string {
	return digest(p.Coeffs...)
}

// ctDigest hashes B then A.
func ctDigest(ct *rlwe.Ciphertext) string {
	return digest(append(append([][]uint64{}, ct.B.Coeffs...), ct.A.Coeffs...)...)
}

// lcg fills a reproducible operand stream without math/rand, so the mod
// KATs do not depend on rand's generator internals.
func lcg(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = x
	}
	return out
}

type modVector struct {
	Q          uint64   `json:"q"`
	ReduceIn   []uint64 `json:"reduce_in"`
	ReduceOut  []uint64 `json:"reduce_out"`
	MulA       []uint64 `json:"mul_a"`
	MulB       []uint64 `json:"mul_b"`
	MulOut     []uint64 `json:"mul_out"`
	CenterIn   []uint64 `json:"center_in"`
	CenterOut  []int64  `json:"center_out"`
	StreamHash string   `json:"stream_sha256"`
}

type modKAT struct {
	Comment string      `json:"comment"`
	Vectors []modVector `json:"vectors"`
}

func genMod() modKAT {
	k := modKAT{Comment: "per-modulus reduction/multiplication samples; stream_sha256 covers 4096 chained Mul/Reduce128 results"}
	for _, q := range mod.ChamModuli() {
		m := mod.New(q)
		in := lcg(q, 8)
		v := modVector{Q: q, ReduceIn: in}
		for _, x := range in {
			v.ReduceOut = append(v.ReduceOut, m.Reduce(x))
		}
		v.MulA = lcg(q^0xa5a5, 8)
		v.MulB = lcg(q^0x5a5a, 8)
		for i := range v.MulA {
			v.MulOut = append(v.MulOut, m.Mul(v.MulA[i], v.MulB[i]))
		}
		v.CenterIn = v.ReduceOut
		for _, x := range v.CenterIn {
			v.CenterOut = append(v.CenterOut, m.CenterLift(x))
		}
		stream := lcg(q^0xdead, 4096)
		acc := make([]uint64, len(stream))
		prev := uint64(1)
		for i, x := range stream {
			prev = m.Mul(prev, m.Reduce128(x, stream[len(stream)-1-i]))
			acc[i] = prev
		}
		v.StreamHash = digest(acc)
		k.Vectors = append(k.Vectors, v)
	}
	return k
}

type nttVector struct {
	N           int      `json:"n"`
	Q           uint64   `json:"q"`
	Psi         uint64   `json:"psi"`
	InputHead   []uint64 `json:"input_head"`
	ForwardHead []uint64 `json:"forward_head"`
	ForwardHash string   `json:"forward_sha256"`
	InverseHash string   `json:"inverse_sha256"`
}

type nttKAT struct {
	Comment string      `json:"comment"`
	Vectors []nttVector `json:"vectors"`
}

func genNTT() nttKAT {
	k := nttKAT{Comment: "negacyclic NTT of an LCG-filled vector; inverse_sha256 re-hashes the round trip (must equal the input stream)"}
	for _, n := range []int{256, 4096} {
		for _, q := range mod.ChamModuli() {
			tb := ntt.MustTable(n, q)
			in := lcg(uint64(n)^q, n)
			for i := range in {
				in[i] %= q
			}
			fwd := append([]uint64(nil), in...)
			tb.Forward(fwd)
			inv := append([]uint64(nil), fwd...)
			tb.Inverse(inv)
			k.Vectors = append(k.Vectors, nttVector{
				N: n, Q: q, Psi: tb.Psi,
				InputHead:   in[:4],
				ForwardHead: fwd[:4],
				ForwardHash: digest(fwd),
				InverseHash: digest(inv),
			})
		}
	}
	return k
}

type packKAT struct {
	Comment    string   `json:"comment"`
	N          int      `json:"n"`
	M          int      `json:"m"`
	Seed       int64    `json:"seed"`
	Mus        []uint64 `json:"mus"`
	PackedHash string   `json:"packed_sha256"`
	Decrypted  []uint64 `json:"decrypted"`
}

func genPack() (packKAT, error) {
	const n, m, seed = 256, 16, 1001
	p, err := bfv.NewChamParams(n)
	if err != nil {
		return packKAT{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		return packKAT{}, err
	}
	vec := make([]uint64, n)
	for i := range vec {
		vec[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, p.EncodeVector(vec), p.NormalLevels)
	cts := make([]*lwe.Ciphertext, m)
	for i := range cts {
		cts[i] = lwe.Extract(p, ct, i)
	}
	packed, err := lwe.PackLWEs(p, cts, keys)
	if err != nil {
		return packKAT{}, err
	}
	pt := p.Decrypt(packed, sk)
	stride := lwe.SlotStride(n, m)
	out := packKAT{
		Comment: "extract coefficients 0..m-1 and pack; decrypted slots must read m*mu mod t",
		N:       n, M: m, Seed: seed,
		Mus:        vec[:m],
		PackedHash: ctDigest(packed),
	}
	for i := 0; i < m; i++ {
		out.Decrypted = append(out.Decrypted, pt.Coeffs[i*stride])
	}
	return out, nil
}

type hmvpKAT struct {
	Comment    string   `json:"comment"`
	N          int      `json:"n"`
	Rows       int      `json:"rows"`
	Cols       int      `json:"cols"`
	Seed       int64    `json:"seed"`
	PackedHash []string `json:"packed_sha256"`
	Output     []uint64 `json:"output"`
	Expected   []uint64 `json:"expected"`
}

func genHMVP() (hmvpKAT, error) {
	const n, rows, cols, seed = 256, 5, 300, 2024
	p, err := bfv.NewChamParams(n)
	if err != nil {
		return hmvpKAT{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	sk := p.KeyGen(rng)
	ev, err := core.NewEvaluator(p, rng, sk, rows)
	if err != nil {
		return hmvpKAT{}, err
	}
	ev.Workers = 1 // serial; results are worker-count independent, this pins the claim
	A := make([][]uint64, rows)
	for i := range A {
		A[i] = make([]uint64, cols)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, cols)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := core.EncryptVector(p, rng, sk, v)
	res, err := ev.MatVec(A, ctV)
	if err != nil {
		return hmvpKAT{}, err
	}
	out := hmvpKAT{
		Comment: "end-to-end Alg.1 HMVP with fixed seeds; output must equal the cleartext product",
		N:       n, Rows: rows, Cols: cols, Seed: seed,
		Output:   core.DecryptResult(p, res, sk),
		Expected: core.PlainMatVec(p, A, v),
	}
	for _, ct := range res.Packed {
		out.PackedHash = append(out.PackedHash, ctDigest(ct))
	}
	return out, nil
}

// Generate produces every KAT file as canonical JSON, keyed by filename.
func Generate() (map[string][]byte, error) {
	pack, err := genPack()
	if err != nil {
		return nil, err
	}
	hmvp, err := genHMVP()
	if err != nil {
		return nil, err
	}
	files := map[string]any{
		"mod.json":  genMod(),
		"ntt.json":  genNTT(),
		"pack.json": pack,
		"hmvp.json": hmvp,
	}
	out := make(map[string][]byte, len(files))
	for name, v := range files {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("kat: marshal %s: %w", name, err)
		}
		out[name] = append(b, '\n')
	}
	return out, nil
}

// Verify regenerates every KAT and compares it byte-for-byte against the
// pinned copy in dir.
func Verify(dir string) error {
	files, err := Generate()
	if err != nil {
		return err
	}
	for name, want := range files {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("kat: %s: %w (regenerate with `go run ./cmd/chamkat -regen`)", name, err)
		}
		if string(got) != string(want) {
			return fmt.Errorf("kat: %s differs from the pinned golden file; if the change is intentional run `go run ./cmd/chamkat -regen`", name)
		}
	}
	return nil
}

// Write regenerates every KAT into dir.
func Write(dir string) error {
	files, err := Generate()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, b := range files {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
