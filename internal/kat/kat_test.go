package kat

import (
	"testing"
)

// TestGoldenKATs pins the numerical pipeline: regenerating every KAT from
// its fixed seeds must reproduce the files under testdata/ byte for byte.
func TestGoldenKATs(t *testing.T) {
	if err := Verify("testdata"); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateDeterministic guards the KAT generator itself: two
// back-to-back generations must be identical, or the golden files could
// never be stable.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("file sets differ: %d vs %d", len(a), len(b))
	}
	for name := range a {
		if string(a[name]) != string(b[name]) {
			t.Errorf("%s: generation is not deterministic", name)
		}
	}
}
