// Package codec defines the wire format the CHAM runtime/driver uses to
// move polynomials, ciphertexts and switching keys between host memory
// and the accelerator's DDR (§III-C). The format is versioned and
// self-describing:
//
//	magic(4) version(1) kind(1) flags(1) levels(1) logN(1) payload...
//
// Payload words are little-endian uint64 residues, one row per limb.
// Decoding validates structure and residue ranges against the parameter
// set, so a corrupted DMA buffer is rejected rather than decrypted.
package codec

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// Magic identifies CHAM wire objects ("CHAM" in ASCII).
const Magic = 0x4348414D

// Version is the current format revision.
const Version = 1

// Object kinds.
const (
	KindPoly       byte = 1
	KindCiphertext byte = 2
	KindSwitchKey  byte = 3
	KindPlaintext  byte = 4
)

// flag bits
const flagNTT byte = 1

const headerLen = 4 + 1 + 1 + 1 + 1 + 1

func putHeader(buf []byte, kind, flags byte, levels, logN int) {
	binary.LittleEndian.PutUint32(buf, Magic)
	buf[4] = Version
	buf[5] = kind
	buf[6] = flags
	buf[7] = byte(levels)
	buf[8] = byte(logN)
}

func parseHeader(buf []byte, wantKind byte) (flags byte, levels, n int, err error) {
	if len(buf) < headerLen {
		return 0, 0, 0, fmt.Errorf("codec: truncated header")
	}
	if binary.LittleEndian.Uint32(buf) != Magic {
		return 0, 0, 0, fmt.Errorf("codec: bad magic")
	}
	if buf[4] != Version {
		return 0, 0, 0, fmt.Errorf("codec: unsupported version %d", buf[4])
	}
	if buf[5] != wantKind {
		return 0, 0, 0, fmt.Errorf("codec: kind %d, want %d", buf[5], wantKind)
	}
	logN := int(buf[8])
	if logN > 20 {
		return 0, 0, 0, fmt.Errorf("codec: implausible logN %d", logN)
	}
	return buf[6], int(buf[7]), 1 << logN, nil
}

// polyBytes is the encoded size of one polynomial.
func polyBytes(levels, n int) int { return headerLen + 8*levels*n }

// EncodePoly serializes a polynomial.
func EncodePoly(r *ring.Ring, p *ring.Poly) []byte {
	levels := p.Levels()
	buf := make([]byte, polyBytes(levels, r.N))
	flags := byte(0)
	if p.IsNTT {
		flags |= flagNTT
	}
	putHeader(buf, KindPoly, flags, levels, bits.Len(uint(r.N))-1)
	off := headerLen
	for l := 0; l < levels; l++ {
		for _, c := range p.Coeffs[l] {
			binary.LittleEndian.PutUint64(buf[off:], c)
			off += 8
		}
	}
	return buf
}

// DecodePoly parses a polynomial and validates it against the ring.
func DecodePoly(r *ring.Ring, buf []byte) (*ring.Poly, error) {
	flags, levels, n, err := parseHeader(buf, KindPoly)
	if err != nil {
		return nil, err
	}
	if n != r.N {
		return nil, fmt.Errorf("codec: degree %d, ring has %d", n, r.N)
	}
	if levels < 1 || levels > r.Levels() {
		return nil, fmt.Errorf("codec: %d limbs out of range", levels)
	}
	if want := polyBytes(levels, n); len(buf) != want {
		return nil, fmt.Errorf("codec: %d bytes, want %d", len(buf), want)
	}
	p := r.NewPoly(levels)
	p.IsNTT = flags&flagNTT != 0
	off := headerLen
	for l := 0; l < levels; l++ {
		q := r.Moduli[l].Q
		for i := 0; i < n; i++ {
			c := binary.LittleEndian.Uint64(buf[off:])
			if c >= q {
				return nil, fmt.Errorf("codec: residue %d out of range for limb %d", c, l)
			}
			p.Coeffs[l][i] = c
			off += 8
		}
	}
	return p, nil
}

// EncodeCiphertext serializes an RLWE pair as two framed polynomials
// under a ciphertext header.
func EncodeCiphertext(r *ring.Ring, ct *rlwe.Ciphertext) []byte {
	b := EncodePoly(r, ct.B)
	a := EncodePoly(r, ct.A)
	buf := make([]byte, headerLen, headerLen+len(b)+len(a))
	putHeader(buf, KindCiphertext, 0, ct.Levels(), bits.Len(uint(r.N))-1)
	buf = append(buf, b...)
	buf = append(buf, a...)
	return buf
}

// DecodeCiphertext parses an RLWE pair.
func DecodeCiphertext(r *ring.Ring, buf []byte) (*rlwe.Ciphertext, error) {
	_, levels, n, err := parseHeader(buf, KindCiphertext)
	if err != nil {
		return nil, err
	}
	if n != r.N {
		return nil, fmt.Errorf("codec: degree mismatch")
	}
	part := polyBytes(levels, n)
	if len(buf) != headerLen+2*part {
		return nil, fmt.Errorf("codec: ciphertext length %d, want %d", len(buf), headerLen+2*part)
	}
	b, err := DecodePoly(r, buf[headerLen:headerLen+part])
	if err != nil {
		return nil, fmt.Errorf("codec: b part: %w", err)
	}
	a, err := DecodePoly(r, buf[headerLen+part:])
	if err != nil {
		return nil, fmt.Errorf("codec: a part: %w", err)
	}
	if b.IsNTT != a.IsNTT || b.Levels() != a.Levels() {
		return nil, fmt.Errorf("codec: inconsistent ciphertext halves")
	}
	return &rlwe.Ciphertext{B: b, A: a}, nil
}

// EncodeSwitchingKey serializes the dnum digit pairs of a switching key.
func EncodeSwitchingKey(r *ring.Ring, k *rlwe.SwitchingKey) []byte {
	buf := make([]byte, headerLen)
	putHeader(buf, KindSwitchKey, byte(len(k.Bs)), r.Levels(), bits.Len(uint(r.N))-1)
	for j := range k.Bs {
		buf = append(buf, EncodePoly(r, k.Bs[j])...)
		buf = append(buf, EncodePoly(r, k.As[j])...)
	}
	return buf
}

// DecodeSwitchingKey parses a switching key (digit count rides in flags).
func DecodeSwitchingKey(r *ring.Ring, buf []byte) (*rlwe.SwitchingKey, error) {
	dnum, levels, n, err := parseHeader(buf, KindSwitchKey)
	if err != nil {
		return nil, err
	}
	if n != r.N || levels != r.Levels() {
		return nil, fmt.Errorf("codec: key ring mismatch")
	}
	if dnum == 0 {
		return nil, fmt.Errorf("codec: key with no digits")
	}
	part := polyBytes(levels, n)
	if len(buf) != headerLen+2*int(dnum)*part {
		return nil, fmt.Errorf("codec: key length %d, want %d", len(buf), headerLen+2*int(dnum)*part)
	}
	k := &rlwe.SwitchingKey{}
	off := headerLen
	for j := 0; j < int(dnum); j++ {
		b, err := DecodePoly(r, buf[off:off+part])
		if err != nil {
			return nil, fmt.Errorf("codec: digit %d B: %w", j, err)
		}
		off += part
		a, err := DecodePoly(r, buf[off:off+part])
		if err != nil {
			return nil, fmt.Errorf("codec: digit %d A: %w", j, err)
		}
		off += part
		k.Bs = append(k.Bs, b)
		k.As = append(k.As, a)
	}
	// Rebuild the Shoup companion tables, which are derived data and not
	// part of the wire format.
	k.Precompute(r)
	return k, nil
}

// EncodePlaintext serializes a mod-t plaintext compactly (one row).
func EncodePlaintext(p bfv.Params, pt *bfv.Plaintext) []byte {
	buf := make([]byte, headerLen+8*len(pt.Coeffs))
	putHeader(buf, KindPlaintext, 0, 1, bits.Len(uint(p.R.N))-1)
	off := headerLen
	for _, c := range pt.Coeffs {
		binary.LittleEndian.PutUint64(buf[off:], c)
		off += 8
	}
	return buf
}

// DecodePlaintext parses a plaintext, validating residues against t.
func DecodePlaintext(p bfv.Params, buf []byte) (*bfv.Plaintext, error) {
	_, _, n, err := parseHeader(buf, KindPlaintext)
	if err != nil {
		return nil, err
	}
	if n != p.R.N {
		return nil, fmt.Errorf("codec: degree mismatch")
	}
	if len(buf) != headerLen+8*n {
		return nil, fmt.Errorf("codec: plaintext length wrong")
	}
	pt := p.NewPlaintext()
	off := headerLen
	for i := 0; i < n; i++ {
		c := binary.LittleEndian.Uint64(buf[off:])
		if c >= p.T.Q {
			return nil, fmt.Errorf("codec: plaintext residue %d exceeds t", c)
		}
		pt.Coeffs[i] = c
		off += 8
	}
	return pt, nil
}

// CiphertextWireBytes reports the encoded size of a ciphertext at the
// given parameters — the DMA payload accounting the hetero model uses.
func CiphertextWireBytes(r *ring.Ring, levels int) int {
	return headerLen + 2*polyBytes(levels, r.N)
}

// KindLWE frames a single extracted LWE ciphertext.
const KindLWE byte = 5

// EncodeLWE serializes an LWE ciphertext (β scalar + α vector per limb).
func EncodeLWE(r *ring.Ring, ct *lwe.Ciphertext) []byte {
	levels := ct.Levels()
	buf := make([]byte, headerLen+8*levels*(1+r.N))
	putHeader(buf, KindLWE, 0, levels, bits.Len(uint(r.N))-1)
	off := headerLen
	for l := 0; l < levels; l++ {
		binary.LittleEndian.PutUint64(buf[off:], ct.Beta[l])
		off += 8
		for _, a := range ct.Alpha[l] {
			binary.LittleEndian.PutUint64(buf[off:], a)
			off += 8
		}
	}
	return buf
}

// DecodeLWE parses an LWE ciphertext with residue validation.
func DecodeLWE(r *ring.Ring, buf []byte) (*lwe.Ciphertext, error) {
	_, levels, n, err := parseHeader(buf, KindLWE)
	if err != nil {
		return nil, err
	}
	if n != r.N {
		return nil, fmt.Errorf("codec: degree mismatch")
	}
	if levels < 1 || levels > r.Levels() {
		return nil, fmt.Errorf("codec: %d limbs out of range", levels)
	}
	if want := headerLen + 8*levels*(1+n); len(buf) != want {
		return nil, fmt.Errorf("codec: LWE length %d, want %d", len(buf), want)
	}
	ct := &lwe.Ciphertext{Beta: make([]uint64, levels), Alpha: make([][]uint64, levels)}
	off := headerLen
	for l := 0; l < levels; l++ {
		q := r.Moduli[l].Q
		b := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		if b >= q {
			return nil, fmt.Errorf("codec: beta out of range")
		}
		ct.Beta[l] = b
		ct.Alpha[l] = make([]uint64, n)
		for i := 0; i < n; i++ {
			a := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			if a >= q {
				return nil, fmt.Errorf("codec: alpha out of range")
			}
			ct.Alpha[l][i] = a
		}
	}
	return ct, nil
}

// SwitchingKeyWireBytes reports the encoded size of one switching key —
// used to check the accelerator's on-chip key budget.
func SwitchingKeyWireBytes(r *ring.Ring, dnum int) int {
	return headerLen + 2*dnum*polyBytes(r.Levels(), r.N)
}
