package codec

import (
	"math/rand"
	"testing"

	"cham/internal/bfv"
	"cham/internal/lwe"
	"cham/internal/mod"
	"cham/internal/ring"
)

func setup(tb testing.TB, n int) (bfv.Params, *rand.Rand) {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p, rand.New(rand.NewSource(1))
}

func TestPolyRoundTrip(t *testing.T) {
	p, rng := setup(t, 64)
	for _, levels := range []int{1, 2, 3} {
		for _, nttDomain := range []bool{false, true} {
			poly := p.R.NewPoly(levels)
			p.R.UniformPoly(rng, poly)
			poly.IsNTT = nttDomain
			buf := EncodePoly(p.R, poly)
			back, err := DecodePoly(p.R, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(poly) {
				t.Fatalf("levels=%d ntt=%v: round trip differs", levels, nttDomain)
			}
		}
	}
}

func TestPolyDecodeRejects(t *testing.T) {
	p, rng := setup(t, 64)
	poly := p.R.NewPoly(2)
	p.R.UniformPoly(rng, poly)
	good := EncodePoly(p.R, poly)

	cases := map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:4] },
		"bad magic":        func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c },
		"bad version":      func(b []byte) []byte { c := clone(b); c[4] = 99; return c },
		"wrong kind":       func(b []byte) []byte { c := clone(b); c[5] = KindCiphertext; return c },
		"huge logN":        func(b []byte) []byte { c := clone(b); c[8] = 40; return c },
		"wrong degree":     func(b []byte) []byte { c := clone(b); c[8] = 3; return c },
		"zero levels":      func(b []byte) []byte { c := clone(b); c[7] = 0; return c },
		"too many levels":  func(b []byte) []byte { c := clone(b); c[7] = 9; return c },
		"short payload":    func(b []byte) []byte { return b[:len(b)-8] },
		"long payload":     func(b []byte) []byte { return append(clone(b), 0) },
		"residue overflow": func(b []byte) []byte {
			c := clone(b)
			for i := 9; i < 17; i++ {
				c[i] = 0xFF
			}
			return c
		},
	}
	for name, corrupt := range cases {
		if _, err := DecodePoly(p.R, corrupt(good)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The pristine buffer still decodes (corruptions copied, not mutated).
	if _, err := DecodePoly(p.R, good); err != nil {
		t.Fatalf("pristine buffer rejected: %v", err)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestCiphertextRoundTrip(t *testing.T) {
	p, rng := setup(t, 64)
	sk := p.KeyGen(rng)
	pt := p.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, pt, 3)
	buf := EncodeCiphertext(p.R, ct)
	if len(buf) != CiphertextWireBytes(p.R, 3) {
		t.Errorf("wire size %d, accounting says %d", len(buf), CiphertextWireBytes(p.R, 3))
	}
	back, err := DecodeCiphertext(p.R, buf)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded ciphertext must decrypt identically.
	dec := p.Decrypt(back, sk)
	for i := range pt.Coeffs {
		if dec.Coeffs[i] != pt.Coeffs[i] {
			t.Fatalf("decoded ciphertext decrypts wrong at %d", i)
		}
	}
	// Mismatched halves are rejected.
	part := (len(buf) - 9) / 2
	bad := clone(buf)
	bad[9+6] |= 1 // flip the NTT flag of the b part
	if _, err := DecodeCiphertext(p.R, bad); err == nil {
		t.Error("inconsistent halves accepted")
	}
	_ = part
}

func TestSwitchingKeyRoundTrip(t *testing.T) {
	p, rng := setup(t, 32)
	sk := p.KeyGen(rng)
	sk2 := p.KeyGen(rng)
	key := p.SwitchingKeyGen(rng, sk, sk2.Value)
	buf := EncodeSwitchingKey(p.R, key)
	back, err := DecodeSwitchingKey(p.R, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Bs) != len(key.Bs) {
		t.Fatal("digit count changed")
	}
	for j := range key.Bs {
		if !back.Bs[j].Equal(key.Bs[j]) || !back.As[j].Equal(key.As[j]) {
			t.Fatalf("digit %d differs", j)
		}
	}
	// A decoded key must actually switch: run it end to end.
	ct := p.EncryptZeroSym(rng, sk2, 2)
	switched := p.KeySwitch(ct, back)
	if bits := p.NoiseBits(switched, sk, nil); bits > 15 {
		t.Errorf("decoded key produced %f noise bits", bits)
	}
	// Zero-digit keys rejected.
	bad := clone(buf)
	bad[6] = 0
	if _, err := DecodeSwitchingKey(p.R, bad); err == nil {
		t.Error("zero-digit key accepted")
	}
}

func TestPlaintextRoundTrip(t *testing.T) {
	p, rng := setup(t, 64)
	pt := p.NewPlaintext()
	for i := range pt.Coeffs {
		pt.Coeffs[i] = rng.Uint64() % p.T.Q
	}
	buf := EncodePlaintext(p, pt)
	back, err := DecodePlaintext(p, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pt.Coeffs {
		if back.Coeffs[i] != pt.Coeffs[i] {
			t.Fatal("plaintext round trip differs")
		}
	}
	bad := clone(buf)
	for i := 9; i < 17; i++ {
		bad[i] = 0xFF
	}
	if _, err := DecodePlaintext(p, bad); err == nil {
		t.Error("over-t residue accepted")
	}
}

// TestCrossRingRejected: objects from a different ring must not decode.
func TestCrossRingRejected(t *testing.T) {
	p64, rng := setup(t, 64)
	r32 := ring.MustNew(32, mod.ChamModuli())
	poly := p64.R.NewPoly(2)
	p64.R.UniformPoly(rng, poly)
	buf := EncodePoly(p64.R, poly)
	if _, err := DecodePoly(r32, buf); err == nil {
		t.Error("64-degree poly decoded in a 32-degree ring")
	}
}

// TestDecodeFuzz: random garbage must never decode successfully (and never
// panic).
func TestDecodeFuzz(t *testing.T) {
	p, rng := setup(t, 32)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(300)
		buf := make([]byte, n)
		rng.Read(buf)
		if _, err := DecodePoly(p.R, buf); err == nil {
			t.Fatalf("trial %d: garbage decoded as poly", trial)
		}
		if _, err := DecodeCiphertext(p.R, buf); err == nil {
			t.Fatalf("trial %d: garbage decoded as ciphertext", trial)
		}
		if _, err := DecodeSwitchingKey(p.R, buf); err == nil {
			t.Fatalf("trial %d: garbage decoded as key", trial)
		}
	}
}

func TestLWERoundTrip(t *testing.T) {
	p, rng := setup(t, 64)
	sk := p.KeyGen(rng)
	vals := make([]uint64, p.R.N)
	for i := range vals {
		vals[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, p.EncodeVector(vals), 2)
	l := lwe.Extract(p, ct, 5)
	buf := EncodeLWE(p.R, l)
	back, err := DecodeLWE(p.R, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Decrypt(p, sk); got != vals[5] {
		t.Fatalf("decoded LWE decrypts to %d, want %d", got, vals[5])
	}
	// Corruption rejected.
	bad := clone(buf)
	for i := 9; i < 17; i++ {
		bad[i] = 0xFF
	}
	if _, err := DecodeLWE(p.R, bad); err == nil {
		t.Error("out-of-range beta accepted")
	}
	if _, err := DecodeLWE(p.R, buf[:30]); err == nil {
		t.Error("truncated LWE accepted")
	}
}

// TestKeyBudgetMatchesURAM cross-checks the resource model against the
// wire format: the 12 packing keys of a full 4096-row HMVP must fit the
// pack unit's URAM allocation (150 blocks per engine) within a small
// residency factor — keys stream between URAM and DDR, but the working
// set has to fit.
func TestKeyBudgetMatchesURAM(t *testing.T) {
	p, _ := setup(t, 16) // wire size formula only needs limb counts
	r4096, err := ring.New(4096, mod.ChamModuli())
	if err != nil {
		t.Fatal(err)
	}
	perKey := SwitchingKeyWireBytes(r4096, 2)
	total := 12 * perKey // log2(4096) packing keys
	uramBytes := 150 * 288 * 1024 / 8
	if total > 2*uramBytes {
		t.Errorf("12 packing keys need %d bytes, more than 2x the %d-byte URAM budget", total, uramBytes)
	}
	if total < uramBytes/4 {
		t.Errorf("key set (%d bytes) implausibly small vs URAM budget (%d)", total, uramBytes)
	}
	_ = p
}
