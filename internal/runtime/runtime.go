package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cham/internal/obs"
	"cham/internal/obs/trace"
)

// Runtime is the application-facing layer: it owns the driver, schedules
// jobs across engines, and implements the remaining RAS features — hang
// detection with automatic reset and replay, and periodic health
// monitoring.
type Runtime struct {
	dr      *Driver
	engines int

	// JobTimeout bounds one job before the watchdog declares a hang.
	JobTimeout time.Duration
	// MaxReplays bounds how often a job is retried across resets/errors.
	MaxReplays int
	// TempTripC is the thermal ceiling; health checks above it fail.
	TempTripC float64

	mu       sync.Mutex
	free     chan int // engine pool
	replays  int
	resets   int
	gen      int // recovery generation; bumped on every reset
	statuses []HealthSample

	// Heartbeat-age tracking for the health gauges.
	lastBeat     uint64
	lastBeatSeen time.Time

	// busy holds the per-engine busy-time counters, indexed by engine.
	busy []*obs.CounterF

	// op serializes recovery against in-flight jobs: jobs hold the read
	// side for their whole execution, recovery takes the write side, so a
	// reset never wipes a job mid-flight and replays run on a quiesced
	// card.
	op sync.RWMutex
}

// HealthSample is one record from the health monitor.
type HealthSample struct {
	When     time.Time
	Alive    bool
	TempC    float64
	JobsDone int
	Resets   int
}

// New initializes the runtime over a device.
func New(dev *Device) (*Runtime, error) {
	dr := NewDriver(dev)
	if !dr.Alive() {
		return nil, fmt.Errorf("runtime: no responsive CHAM card")
	}
	engines := int(dev.ReadReg(RegEngineCnt))
	if engines < 1 {
		return nil, fmt.Errorf("runtime: card reports no engines")
	}
	rt := &Runtime{
		dr:         dr,
		engines:    engines,
		JobTimeout: 50 * time.Millisecond,
		MaxReplays: 3,
		TempTripC:  85,
		free:       make(chan int, engines),
		busy:       engineBusy(engines),
	}
	for e := 0; e < engines; e++ {
		rt.free <- e
	}
	return rt, nil
}

// Engines reports the engine count.
func (rt *Runtime) Engines() int { return rt.engines }

// Driver exposes the lower layer (for telemetry).
func (rt *Runtime) Driver() *Driver { return rt.dr }

// RunJob executes one accelerator job: acquires an engine, loads its
// configuration words, rings the doorbell, and waits. Hangs and job
// errors trigger reset-and-replay up to MaxReplays.
func (rt *Runtime) RunJob(config []uint64) error {
	return rt.RunJobCtx(context.Background(), config)
}

// RunJobCtx is RunJob bounded by a context: a request-scoped deadline or
// cancellation aborts the job while it is still queued for an engine
// (instead of occupying a slot), caps the hardware wait to the remaining
// budget, and suppresses replays once the caller has given up. A context
// abort surfaces as ctx.Err(), so callers can errors.Is it apart from
// card failures.
func (rt *Runtime) RunJobCtx(ctx context.Context, config []uint64) error {
	on := obs.On()
	tc := trace.FromContext(ctx)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if on {
				mCtxAborts.Inc()
			}
			return err
		}
		gen := rt.generation()
		// Each attempt is its own span, so RAS replays show up as sibling
		// jobs in the trace with the replay count annotated.
		_, jsp := trace.Start(tc, "runtime", "job")
		if attempt > 0 && jsp.Active() {
			jsp.Annotate(fmt.Sprintf("replay %d", attempt))
		}
		err := rt.runOnce(ctx, config)
		jsp.EndErr(err)
		if err == nil {
			if on {
				mJobsOK.Inc()
			}
			return nil
		}
		if ctx.Err() != nil {
			// The caller's deadline expired mid-job: not a card fault, so it
			// is not replayed and not counted against the RAS counters.
			if on {
				mCtxAborts.Inc()
			}
			return ctx.Err()
		}
		rt.mu.Lock()
		rt.replays++
		rt.mu.Unlock()
		if on {
			mReplays.Inc()
		}
		if attempt >= rt.MaxReplays {
			if on {
				mJobsFailed.Inc()
			}
			return fmt.Errorf("runtime: job failed after %d replays: %w", attempt, err)
		}
		rt.recoverIfStale(gen)
	}
}

func (rt *Runtime) generation() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.gen
}

func (rt *Runtime) runOnce(ctx context.Context, config []uint64) error {
	rt.op.RLock()
	defer rt.op.RUnlock()
	var engine int
	select {
	case engine = <-rt.free:
	default:
		// All engines busy: wait for a slot or the caller's context.
		select {
		case engine = <-rt.free:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer func() { rt.free <- engine }()
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
		defer func() { rt.busy[engine].Add(time.Since(t0).Seconds()) }()
	}

	base := RegScratch + uint32(0x40*engine)
	for i, w := range config {
		if err := rt.dr.LoadConfig(base+uint32(8*i), w); err != nil {
			return err
		}
	}
	if err := rt.dr.Submit(engine); err != nil {
		return err
	}
	if on {
		mSubmits.Inc()
	}
	var tw time.Time
	if on {
		tw = time.Now()
	}
	// Cap the hardware wait to the caller's remaining budget so an expired
	// request releases its engine at the deadline, not at the watchdog.
	wait := rt.JobTimeout
	capped := false
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
			capped = true
		}
	}
	status, err := rt.dr.WaitJob(engine, wait)
	if on {
		mWaitSec.Observe(time.Since(tw).Seconds())
	}
	if err != nil {
		if capped && errors.Is(err, ErrWaitTimeout) {
			// The wait was cut short by the caller's deadline, not the
			// watchdog: surface the context error (the deadline may lag the
			// capped wait by a scheduling quantum, so block on it) and don't
			// charge the card with a fault.
			<-ctx.Done()
			return ctx.Err()
		}
		return err
	}
	if status != JobDone {
		// JobError, or JobIdle after a concurrent reset wiped the engine:
		// either way the job did not complete and must be replayed.
		return fmt.Errorf("runtime: engine %d finished with status %d", engine, status)
	}
	return nil
}

// recoverIfStale resets the card unless another goroutine already
// recovered since the caller observed generation gen. The exclusive op
// lock guarantees no job is in flight during the reset.
func (rt *Runtime) recoverIfStale(gen int) {
	rt.op.Lock()
	defer rt.op.Unlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.gen != gen {
		return // a newer recovery already happened
	}
	rt.dr.Reset()
	rt.gen++
	rt.resets++
	if obs.On() {
		mResets.Inc()
	}
}

// Replays and Resets report RAS counters.
func (rt *Runtime) Replays() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.replays
}

func (rt *Runtime) Resets() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.resets
}

// HealthCheck samples liveness (heartbeat must advance), temperature and
// counters; it performs a recovery reset on a detected hang and reports
// the (post-recovery) state.
func (rt *Runtime) HealthCheck() HealthSample {
	gen := rt.generation()
	h1 := rt.dr.Heartbeat()
	h2 := rt.dr.Heartbeat()
	alive := h2 != h1 && h2 != ^uint64(0)
	if !alive {
		rt.recoverIfStale(gen)
	}
	temp := rt.dr.Temperature()
	jobs, resets := rt.deviceStats()
	now := time.Now()
	s := HealthSample{
		When:     now,
		Alive:    alive,
		TempC:    temp,
		JobsDone: jobs,
		Resets:   resets,
	}
	rt.mu.Lock()
	rt.statuses = append(rt.statuses, s)
	if h2 != rt.lastBeat || rt.lastBeatSeen.IsZero() {
		rt.lastBeat = h2
		rt.lastBeatSeen = now
	}
	age := now.Sub(rt.lastBeatSeen).Seconds()
	rt.mu.Unlock()
	if obs.On() {
		mTempC.Set(temp)
		if alive {
			mAlive.Set(1)
		} else {
			mAlive.Set(0)
		}
		mHeartbeatAge.Set(age)
	}
	return s
}

// Healthy reports whether the last sample was alive and below the thermal
// trip point.
func (rt *Runtime) Healthy() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.statuses) == 0 {
		return true
	}
	last := rt.statuses[len(rt.statuses)-1]
	return last.Alive && last.TempC < rt.TempTripC
}

// History returns the collected health samples.
func (rt *Runtime) History() []HealthSample {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]HealthSample, len(rt.statuses))
	copy(out, rt.statuses)
	return out
}

func (rt *Runtime) deviceStats() (int, int) {
	return rt.dr.dev.Stats()
}
