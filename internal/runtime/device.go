// Package runtime implements the software stack of CHAM's heterogeneous
// system (§III-C): a driver for a (simulated) CHAM FPGA card and a
// runtime that provides job submission on top, with the paper's
// reliability/availability/serviceability (RAS) features — register
// loading error handling, hang detection with reset, and health
// monitoring.
//
// The device is a faithful software stand-in: a register file with
// parity, per-engine job execution whose latency comes from the pipeline
// model, DMA accounting, and a fault-injection plan that tests use to
// exercise every recovery path.
package runtime

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Register map of the simulated card.
const (
	RegMagic     uint32 = 0x0000 // reads back MagicValue when alive
	RegVersion   uint32 = 0x0004
	RegEngineCnt uint32 = 0x0008
	RegTempMilli uint32 = 0x000C // die temperature, milli-degrees C
	RegHeartbeat uint32 = 0x0010 // increments while the card is alive
	RegDoorbell  uint32 = 0x0020 // write engine id to start its job
	RegJobStatus uint32 = 0x0030 // per-engine status base (one word each)
	RegScratch   uint32 = 0x0100 // start of the loadable configuration
)

// MagicValue identifies a responsive CHAM card.
const MagicValue = 0xC4A30001

// Job statuses stored at RegJobStatus + engine.
const (
	JobIdle uint64 = iota
	JobRunning
	JobDone
	JobError
)

// FaultPlan injects failures; zero value = healthy card.
type FaultPlan struct {
	// CorruptWriteEvery flips a bit on every k-th register write (the
	// "register loading error" the driver must catch by read-back).
	CorruptWriteEvery int
	// HangAfterJobs makes the card stop responding after n completed
	// jobs, until reset.
	HangAfterJobs int
	// FailJobEvery marks every k-th job as JobError.
	FailJobEvery int
	// OverheatAfterJobs drives the temperature register past the trip
	// point after n jobs.
	OverheatAfterJobs int
}

// Device simulates one CHAM card.
type Device struct {
	mu        sync.Mutex
	regs      map[uint32]uint64
	engines   int
	hung      bool
	writes    int
	jobsDone  int
	resets    int
	faults    FaultPlan
	jobDur    time.Duration // simulated per-job latency (flat model)
	rowBase   time.Duration // descriptor-aware model: fixed dispatch cost
	rowPer    time.Duration // descriptor-aware model: per-row pipeline cost
	pending   map[int]*time.Timer
	heartbeat uint64
}

// NewDevice creates a card with the given engine count and simulated
// per-job duration (tests use microseconds; a real HMVP takes ~100 ms).
func NewDevice(engines int, jobDur time.Duration, faults FaultPlan) *Device {
	d := &Device{
		regs:    map[uint32]uint64{},
		engines: engines,
		faults:  faults,
		jobDur:  jobDur,
		pending: map[int]*time.Timer{},
	}
	d.powerOn()
	return d
}

func (d *Device) powerOn() {
	d.regs[RegMagic] = MagicValue
	d.regs[RegVersion] = 0x0203 // "v2.3", the VU9P production build
	d.regs[RegEngineCnt] = uint64(d.engines)
	d.regs[RegTempMilli] = 45000
	for e := 0; e < d.engines; e++ {
		d.regs[RegJobStatus+uint32(4*e)] = JobIdle
	}
}

// WriteReg writes a register, possibly corrupted per the fault plan.
// The driver must verify by read-back.
func (d *Device) WriteReg(addr uint32, v uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hung {
		return // writes vanish while hung
	}
	d.writes++
	if k := d.faults.CorruptWriteEvery; k > 0 && d.writes%k == 0 {
		v ^= 1 << (uint(d.writes) % 63) // flip a bit
	}
	d.regs[addr] = v
	if addr == RegDoorbell {
		d.startJob(int(v))
	}
}

// ReadReg reads a register; a hung card returns all-ones (the PCIe
// timeout pattern a real host observes).
func (d *Device) ReadReg(addr uint32) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hung {
		return ^uint64(0)
	}
	if addr == RegHeartbeat {
		d.heartbeat++
		return d.heartbeat
	}
	return d.regs[addr]
}

// SetRowLatency switches the card to a descriptor-aware latency model:
// each job takes base + perRow × Rows, with Rows read from the engine's
// loaded configuration (word 0 carries Rows<<32|Cols under the parity
// seal). This is how the simulation reflects the pipeline-model fact that
// HMVP wall time is dominated by the per-row dot products — a shard
// serving half a matrix's tiles finishes its card job in half the time.
// perRow = 0 restores the flat jobDur model.
func (d *Device) SetRowLatency(base, perRow time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rowBase, d.rowPer = base, perRow
}

// startJob begins executing on an engine (caller holds the lock).
func (d *Device) startJob(engine int) {
	if engine < 0 || engine >= d.engines {
		return
	}
	statusAddr := RegJobStatus + uint32(4*engine)
	if d.regs[statusAddr] == JobRunning {
		return // doorbell on a busy engine is ignored
	}
	d.regs[statusAddr] = JobRunning
	dur := d.jobDur
	if d.rowPer > 0 {
		dur = d.rowBase
		// Word 0 of this engine's configuration; a corrupt word falls back
		// to the fixed cost (the driver's read-back catches it anyway).
		if w, err := checkWord(d.regs[RegScratch+uint32(0x40*engine)]); err == nil {
			dur += time.Duration(w>>32) * d.rowPer
		}
	}
	t := time.AfterFunc(dur, func() { d.finishJob(engine) })
	d.pending[engine] = t
}

func (d *Device) finishJob(engine int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hung {
		return
	}
	delete(d.pending, engine)
	d.jobsDone++
	status := JobDone
	if k := d.faults.FailJobEvery; k > 0 && d.jobsDone%k == 0 {
		status = JobError
	}
	d.regs[RegJobStatus+uint32(4*engine)] = status
	if n := d.faults.HangAfterJobs; n > 0 && d.jobsDone >= n {
		d.hung = true
		d.faults.HangAfterJobs = 0 // hang once; reset clears it
	}
	if n := d.faults.OverheatAfterJobs; n > 0 && d.jobsDone >= n {
		d.regs[RegTempMilli] = 99000
	}
}

// Reset power-cycles the card: pending jobs are lost, registers reload.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for e, t := range d.pending {
		t.Stop()
		delete(d.pending, e)
	}
	d.hung = false
	d.resets++
	d.regs = map[uint32]uint64{}
	d.powerOn()
}

// Stats reports lifetime counters for monitoring tests.
func (d *Device) Stats() (jobsDone, resets int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobsDone, d.resets
}

// parity31 computes the odd-parity bit the driver folds into
// configuration words so read-back can detect corrupted loads.
func parity31(v uint64) uint64 {
	return uint64(bits.OnesCount64(v&^(1<<63))&1) ^ 1
}

// sealWord packs a 63-bit payload with its parity bit.
func sealWord(v uint64) (uint64, error) {
	if v>>63 != 0 {
		return 0, fmt.Errorf("runtime: payload exceeds 63 bits")
	}
	return v | parity31(v)<<63, nil
}

// checkWord validates parity and strips it.
func checkWord(w uint64) (uint64, error) {
	if w>>63 != parity31(w) {
		return 0, fmt.Errorf("runtime: register parity error")
	}
	return w &^ (1 << 63), nil
}
