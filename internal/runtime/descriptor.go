package runtime

import (
	"context"
	"fmt"
)

// HMVPDescriptor is the job configuration the host loads into an engine's
// scratch registers before ringing the doorbell: the matrix geometry and
// the DDR addresses of the streamed operands. It is what the production
// runtime would build from an application-level MatVec call.
type HMVPDescriptor struct {
	Rows, Cols   uint32
	MatrixAddr   uint64 // base of the streamed plaintext matrix
	VectorAddr   uint64 // base of the encrypted vector chunks
	KeyAddr      uint64 // packing key table
	ResultAddr   uint64 // destination for packed result ciphertexts
	PackRowsLog2 uint8  // log2 of the padded tile rows
}

// maxAddr bounds DDR addresses to the card's 64 GiB space.
const maxAddr = uint64(64) << 30

// Words serializes the descriptor into 63-bit config payloads (the
// parity bit is added by Driver.LoadConfig).
func (d *HMVPDescriptor) Words() ([]uint64, error) {
	if d.Rows == 0 || d.Cols == 0 {
		return nil, fmt.Errorf("runtime: empty HMVP geometry")
	}
	if d.PackRowsLog2 > 12 {
		return nil, fmt.Errorf("runtime: pack tile 2^%d exceeds N=4096", d.PackRowsLog2)
	}
	for _, a := range []uint64{d.MatrixAddr, d.VectorAddr, d.KeyAddr, d.ResultAddr} {
		if a >= maxAddr {
			return nil, fmt.Errorf("runtime: address 0x%x outside device memory", a)
		}
		if a%64 != 0 {
			return nil, fmt.Errorf("runtime: address 0x%x not 64-byte aligned", a)
		}
	}
	return []uint64{
		uint64(d.Rows)<<32 | uint64(d.Cols),
		d.MatrixAddr,
		d.VectorAddr,
		d.KeyAddr,
		d.ResultAddr,
		uint64(d.PackRowsLog2),
	}, nil
}

// ParseHMVPDescriptor inverts Words, validating as it goes.
func ParseHMVPDescriptor(words []uint64) (*HMVPDescriptor, error) {
	if len(words) != 6 {
		return nil, fmt.Errorf("runtime: descriptor needs 6 words, got %d", len(words))
	}
	d := &HMVPDescriptor{
		Rows:         uint32(words[0] >> 32),
		Cols:         uint32(words[0]),
		MatrixAddr:   words[1],
		VectorAddr:   words[2],
		KeyAddr:      words[3],
		ResultAddr:   words[4],
		PackRowsLog2: uint8(words[5]),
	}
	if _, err := d.Words(); err != nil { // re-validate
		return nil, err
	}
	return d, nil
}

// RunHMVP loads the descriptor and executes it as one accelerator job.
func (rt *Runtime) RunHMVP(d *HMVPDescriptor) error {
	return rt.RunHMVPCtx(context.Background(), d)
}

// RunHMVPCtx is RunHMVP bounded by a context (see RunJobCtx): the serving
// tier uses it so a request whose deadline expired while queued never
// occupies an engine slot.
func (rt *Runtime) RunHMVPCtx(ctx context.Context, d *HMVPDescriptor) error {
	words, err := d.Words()
	if err != nil {
		return err
	}
	return rt.RunJobCtx(ctx, words)
}
