package runtime

import (
	"strconv"

	"cham/internal/obs"
)

// Telemetry handles for the driver/runtime layer, resolved at package
// init. Importing this package is enough to make the RAS counter
// families visible (at zero) in a metrics scrape.
var (
	mJobsOK = obs.GetCounter("cham_runtime_jobs_total",
		"Accelerator jobs by final outcome.", "result", "ok")
	mJobsFailed = obs.GetCounter("cham_runtime_jobs_total",
		"Accelerator jobs by final outcome.", "result", "failed")
	mSubmits = obs.GetCounter("cham_runtime_submits_total",
		"Doorbell submissions, including replayed attempts.")
	mWaitSec = obs.GetHistogram("cham_runtime_wait_seconds",
		"WaitJob latency per attempt.", obs.DefBuckets)
	mReplays = obs.GetCounter("cham_runtime_replays_total",
		"Job replays after a hang, error, or reset.")
	mResets = obs.GetCounter("cham_runtime_resets_total",
		"Card power-cycle recoveries.")
	mRecovered = obs.GetCounter("cham_runtime_recovered_writes_total",
		"Register loads or doorbells that needed a retry.")
	mCtxAborts = obs.GetCounter("cham_runtime_ctx_aborts_total",
		"Jobs abandoned because the caller's context expired or was canceled.")
	mTempC = obs.GetGauge("cham_runtime_temp_celsius",
		"Die temperature at the last health check.")
	mAlive = obs.GetGauge("cham_runtime_alive",
		"1 if the heartbeat advanced at the last health check, else 0.")
	mHeartbeatAge = obs.GetGauge("cham_runtime_heartbeat_age_seconds",
		"Seconds since the heartbeat counter was last seen advancing.")
)

// engineBusy returns the per-engine busy-time counters for engines
// [0,n). Series are shared registry-wide, so two runtimes over cards
// with the same engine count accumulate into the same counters.
func engineBusy(n int) []*obs.CounterF {
	out := make([]*obs.CounterF, n)
	for e := range out {
		out[e] = obs.GetCounterF("cham_runtime_engine_busy_seconds_total",
			"Cumulative seconds each engine spent executing jobs.",
			"engine", strconv.Itoa(e))
	}
	return out
}
