package runtime

import (
	"testing"
	"time"
)

func validDescriptor() *HMVPDescriptor {
	return &HMVPDescriptor{
		Rows: 4096, Cols: 4096,
		MatrixAddr: 0x1000_0000, VectorAddr: 0x2000_0000,
		KeyAddr: 0x3000_0000, ResultAddr: 0x4000_0000,
		PackRowsLog2: 12,
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := validDescriptor()
	words, err := d.Words()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 6 {
		t.Fatalf("%d words", len(words))
	}
	// Every word must fit 63 bits (parity lives in bit 63).
	for i, w := range words {
		if w>>63 != 0 {
			t.Errorf("word %d uses bit 63", i)
		}
	}
	back, err := ParseHMVPDescriptor(words)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *d {
		t.Fatalf("round trip: %+v vs %+v", back, d)
	}
}

func TestDescriptorValidation(t *testing.T) {
	cases := map[string]func(*HMVPDescriptor){
		"zero rows":      func(d *HMVPDescriptor) { d.Rows = 0 },
		"zero cols":      func(d *HMVPDescriptor) { d.Cols = 0 },
		"huge pack":      func(d *HMVPDescriptor) { d.PackRowsLog2 = 13 },
		"address range":  func(d *HMVPDescriptor) { d.MatrixAddr = maxAddr },
		"misaligned":     func(d *HMVPDescriptor) { d.VectorAddr = 0x1001 },
		"misaligned key": func(d *HMVPDescriptor) { d.KeyAddr = 7 },
	}
	for name, corrupt := range cases {
		d := validDescriptor()
		corrupt(d)
		if _, err := d.Words(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseHMVPDescriptor(make([]uint64, 5)); err == nil {
		t.Error("short descriptor accepted")
	}
	bad, _ := validDescriptor().Words()
	bad[0] = 0 // zero geometry
	if _, err := ParseHMVPDescriptor(bad); err == nil {
		t.Error("zero-geometry descriptor accepted")
	}
}

// TestDescriptorValidationEdges pins the exact accept/reject boundaries of
// every validated field: the last aligned address inside device memory is
// legal, one step past (or off alignment) is not, and the pack-tile
// exponent caps at N=4096.
func TestDescriptorValidationEdges(t *testing.T) {
	ok := validDescriptor()
	ok.ResultAddr = maxAddr - 64 // highest aligned in-range address
	ok.PackRowsLog2 = 12
	if _, err := ok.Words(); err != nil {
		t.Errorf("boundary-valid descriptor rejected: %v", err)
	}

	rejects := map[string]func(*HMVPDescriptor){
		"address one past the end":  func(d *HMVPDescriptor) { d.ResultAddr = maxAddr },
		"aligned but out of range":  func(d *HMVPDescriptor) { d.KeyAddr = maxAddr + 64 },
		"matrix addr misaligned":    func(d *HMVPDescriptor) { d.MatrixAddr += 8 },
		"result addr misaligned":    func(d *HMVPDescriptor) { d.ResultAddr = 63 },
		"pack tile above N":         func(d *HMVPDescriptor) { d.PackRowsLog2 = 255 },
		"zero geometry both fields": func(d *HMVPDescriptor) { d.Rows, d.Cols = 0, 0 },
	}
	for name, corrupt := range rejects {
		d := validDescriptor()
		corrupt(d)
		if _, err := d.Words(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Parse-side: every malformed word position must come back as an
	// error, never a panic or a silently-wrong descriptor.
	if _, err := ParseHMVPDescriptor(nil); err == nil {
		t.Error("nil word slice accepted")
	}
	if _, err := ParseHMVPDescriptor(make([]uint64, 7)); err == nil {
		t.Error("over-long descriptor accepted")
	}
	for word, val := range map[int]uint64{
		1: maxAddr,          // matrix address out of range
		2: 0x2000_0001,      // vector address misaligned
		3: ^uint64(0) &^ 63, // key address aligned but out of range
		4: maxAddr + 128,    // result address out of range
		5: 13,               // pack tile 2^13 > N
	} {
		words, err := validDescriptor().Words()
		if err != nil {
			t.Fatal(err)
		}
		words[word] = val
		if _, err := ParseHMVPDescriptor(words); err == nil {
			t.Errorf("corrupted word %d (=%#x) accepted", word, val)
		}
	}

	// A runtime must refuse malformed descriptors before touching the
	// device.
	dev := NewDevice(1, time.Millisecond, FaultPlan{})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	badD := validDescriptor()
	badD.PackRowsLog2 = 13
	if err := rt.RunHMVP(badD); err == nil {
		t.Error("runtime executed an out-of-range tile shape")
	}
}

// TestRunHMVPEndToEnd drives a descriptor through the full
// runtime/driver/device stack, including a fault-recovery pass.
func TestRunHMVPEndToEnd(t *testing.T) {
	dev := NewDevice(2, 200*time.Microsecond, FaultPlan{CorruptWriteEvery: 7})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := rt.RunHMVP(validDescriptor()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if err := rt.RunHMVP(&HMVPDescriptor{}); err == nil {
		t.Error("invalid descriptor executed")
	}
}
