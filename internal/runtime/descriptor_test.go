package runtime

import (
	"testing"
	"time"
)

func validDescriptor() *HMVPDescriptor {
	return &HMVPDescriptor{
		Rows: 4096, Cols: 4096,
		MatrixAddr: 0x1000_0000, VectorAddr: 0x2000_0000,
		KeyAddr: 0x3000_0000, ResultAddr: 0x4000_0000,
		PackRowsLog2: 12,
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := validDescriptor()
	words, err := d.Words()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 6 {
		t.Fatalf("%d words", len(words))
	}
	// Every word must fit 63 bits (parity lives in bit 63).
	for i, w := range words {
		if w>>63 != 0 {
			t.Errorf("word %d uses bit 63", i)
		}
	}
	back, err := ParseHMVPDescriptor(words)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *d {
		t.Fatalf("round trip: %+v vs %+v", back, d)
	}
}

func TestDescriptorValidation(t *testing.T) {
	cases := map[string]func(*HMVPDescriptor){
		"zero rows":      func(d *HMVPDescriptor) { d.Rows = 0 },
		"zero cols":      func(d *HMVPDescriptor) { d.Cols = 0 },
		"huge pack":      func(d *HMVPDescriptor) { d.PackRowsLog2 = 13 },
		"address range":  func(d *HMVPDescriptor) { d.MatrixAddr = maxAddr },
		"misaligned":     func(d *HMVPDescriptor) { d.VectorAddr = 0x1001 },
		"misaligned key": func(d *HMVPDescriptor) { d.KeyAddr = 7 },
	}
	for name, corrupt := range cases {
		d := validDescriptor()
		corrupt(d)
		if _, err := d.Words(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseHMVPDescriptor(make([]uint64, 5)); err == nil {
		t.Error("short descriptor accepted")
	}
	bad, _ := validDescriptor().Words()
	bad[0] = 0 // zero geometry
	if _, err := ParseHMVPDescriptor(bad); err == nil {
		t.Error("zero-geometry descriptor accepted")
	}
}

// TestRunHMVPEndToEnd drives a descriptor through the full
// runtime/driver/device stack, including a fault-recovery pass.
func TestRunHMVPEndToEnd(t *testing.T) {
	dev := NewDevice(2, 200*time.Microsecond, FaultPlan{CorruptWriteEvery: 7})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := rt.RunHMVP(validDescriptor()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if err := rt.RunHMVP(&HMVPDescriptor{}); err == nil {
		t.Error("invalid descriptor executed")
	}
}
