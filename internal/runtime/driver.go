package runtime

import (
	"errors"
	"fmt"
	"time"

	"cham/internal/obs"
)

// ErrWaitTimeout marks a WaitJob that gave up at its deadline, as
// opposed to a device-reported failure; RunJobCtx uses it to tell a
// deadline-capped wait apart from a hung card.
var ErrWaitTimeout = errors.New("timed out")

// Driver is the low-level access layer: verified register loads, job
// dispatch, and reset. It implements the first RAS feature the paper
// lists — FPGA register loading error handling — by sealing every
// configuration word with a parity bit and reading back after write.
type Driver struct {
	dev *Device
	// WriteRetries bounds re-attempts on corrupted register loads.
	WriteRetries int
	// recovered counts register loads that needed a retry.
	recovered int
}

// NewDriver attaches to a device.
func NewDriver(dev *Device) *Driver {
	return &Driver{dev: dev, WriteRetries: 3}
}

// Alive probes the magic register.
func (dr *Driver) Alive() bool {
	return dr.dev.ReadReg(RegMagic) == MagicValue
}

// LoadConfig writes a configuration word with parity sealing and
// read-back verification, retrying on corruption.
func (dr *Driver) LoadConfig(addr uint32, v uint64) error {
	sealed, err := sealWord(v)
	if err != nil {
		return err
	}
	for attempt := 0; attempt <= dr.WriteRetries; attempt++ {
		dr.dev.WriteReg(addr, sealed)
		got := dr.dev.ReadReg(addr)
		if got == ^uint64(0) {
			return fmt.Errorf("runtime: card unresponsive during config load")
		}
		if payload, err := checkWord(got); err == nil && payload == v {
			if attempt > 0 {
				dr.recovered++
				if obs.On() {
					mRecovered.Inc()
				}
			}
			return nil
		}
	}
	return fmt.Errorf("runtime: register 0x%04x failed verification after %d retries",
		addr, dr.WriteRetries)
}

// RecoveredWrites reports how many register loads needed retries — the
// counter the production RAS telemetry exports.
func (dr *Driver) RecoveredWrites() int { return dr.recovered }

// Submit rings the doorbell for an engine and verifies the engine left
// the idle state (a corrupted doorbell write is simply lost — the same
// read-back discipline as LoadConfig, with the job-status register as the
// witness). Retries a bounded number of times.
func (dr *Driver) Submit(engine int) error {
	for attempt := 0; attempt <= dr.WriteRetries; attempt++ {
		dr.dev.WriteReg(RegDoorbell, uint64(engine))
		s := dr.Status(engine)
		if s == ^uint64(0) {
			return fmt.Errorf("runtime: card unresponsive at submit")
		}
		if s != JobIdle {
			if attempt > 0 {
				dr.recovered++
				if obs.On() {
					mRecovered.Inc()
				}
			}
			return nil
		}
	}
	return fmt.Errorf("runtime: doorbell for engine %d failed after %d retries",
		engine, dr.WriteRetries)
}

// Status reads an engine's job status.
func (dr *Driver) Status(engine int) uint64 {
	return dr.dev.ReadReg(RegJobStatus + uint32(4*engine))
}

// WaitJob polls an engine until it leaves JobRunning or the deadline
// passes. An all-ones read (hung card) is reported immediately.
func (dr *Driver) WaitJob(engine int, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		s := dr.Status(engine)
		if s == ^uint64(0) {
			return 0, fmt.Errorf("runtime: card hung (bus returns all-ones)")
		}
		if s != JobRunning {
			return s, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("runtime: engine %d %w after %v", engine, ErrWaitTimeout, timeout)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// Reset power-cycles the card.
func (dr *Driver) Reset() { dr.dev.Reset() }

// Temperature returns the die temperature in degrees C.
func (dr *Driver) Temperature() float64 {
	return float64(dr.dev.ReadReg(RegTempMilli)) / 1000
}

// Heartbeat reads the liveness counter; two equal consecutive reads (or
// all-ones) indicate a hang.
func (dr *Driver) Heartbeat() uint64 { return dr.dev.ReadReg(RegHeartbeat) }
