package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

const jobDur = 200 * time.Microsecond

func healthyRuntime(t *testing.T, engines int) *Runtime {
	t.Helper()
	rt, err := New(NewDevice(engines, jobDur, FaultPlan{}))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestParitySealing(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xDEADBEEF, 1<<63 - 1} {
		w, err := sealWord(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := checkWord(w)
		if err != nil || got != v {
			t.Fatalf("seal/check round trip failed for %x", v)
		}
		// Any single bit flip must be detected... parity catches odd flips.
		if _, err := checkWord(w ^ 1); err == nil {
			t.Fatalf("flipped word accepted for %x", v)
		}
	}
	if _, err := sealWord(1 << 63); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestNewValidation(t *testing.T) {
	dev := NewDevice(2, jobDur, FaultPlan{})
	dev.WriteReg(RegMagic, 0) // corrupt the magic
	if _, err := New(dev); err == nil {
		t.Error("unresponsive card accepted")
	}
	dev2 := NewDevice(0, jobDur, FaultPlan{})
	if _, err := New(dev2); err == nil {
		t.Error("engine-less card accepted")
	}
}

func TestRunJobHappyPath(t *testing.T) {
	rt := healthyRuntime(t, 2)
	for i := 0; i < 10; i++ {
		if err := rt.RunJob([]uint64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	jobs, resets := rt.dr.dev.Stats()
	if jobs != 10 || resets != 0 {
		t.Errorf("jobs=%d resets=%d", jobs, resets)
	}
	if rt.Replays() != 0 {
		t.Errorf("unexpected replays: %d", rt.Replays())
	}
}

// TestRegisterCorruptionRecovered: the paper's "register loading error
// handling" — corrupted loads are caught by read-back and retried.
func TestRegisterCorruptionRecovered(t *testing.T) {
	dev := NewDevice(1, jobDur, FaultPlan{CorruptWriteEvery: 5})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := rt.RunJob([]uint64{7, 8, 9, 10}); err != nil {
			t.Fatal(err)
		}
	}
	if rt.dr.RecoveredWrites() == 0 {
		t.Error("no writes recovered despite injected corruption")
	}
}

// TestHangResetReplay: the paper's "FPGA hang/reset" — a hung card is
// detected by the watchdog timeout, reset, and the job replayed.
func TestHangResetReplay(t *testing.T) {
	dev := NewDevice(2, jobDur, FaultPlan{HangAfterJobs: 3})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt.JobTimeout = 5 * time.Millisecond
	for i := 0; i < 8; i++ {
		if err := rt.RunJob([]uint64{1}); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if rt.Resets() == 0 {
		t.Error("hang did not trigger a reset")
	}
	if rt.Replays() == 0 {
		t.Error("hang did not trigger a replay")
	}
	if _, resets := dev.Stats(); resets == 0 {
		t.Error("device never reset")
	}
}

// TestJobErrorReplay: transient engine errors are retried; persistent
// ones surface after MaxReplays.
func TestJobErrorReplay(t *testing.T) {
	dev := NewDevice(1, jobDur, FaultPlan{FailJobEvery: 4})
	rt, _ := New(dev)
	for i := 0; i < 6; i++ {
		if err := rt.RunJob([]uint64{1}); err != nil {
			t.Fatalf("job %d not recovered: %v", i, err)
		}
	}
	if rt.Replays() == 0 {
		t.Error("no replays recorded")
	}
	// Persistent failure: every job errors.
	devBad := NewDevice(1, jobDur, FaultPlan{FailJobEvery: 1})
	rtBad, _ := New(devBad)
	if err := rtBad.RunJob([]uint64{1}); err == nil {
		t.Error("persistently failing job reported success")
	}
}

// TestHealthMonitoring: heartbeat advances on a live card; a hang is
// detected and recovered; overheating flips Healthy.
func TestHealthMonitoring(t *testing.T) {
	rt := healthyRuntime(t, 1)
	s := rt.HealthCheck()
	if !s.Alive || s.TempC < 20 || s.TempC > 60 {
		t.Errorf("healthy card sampled as %+v", s)
	}
	if !rt.Healthy() {
		t.Error("healthy card reported unhealthy")
	}

	// Hang: heartbeat freezes; the check recovers via reset.
	devHang := NewDevice(1, jobDur, FaultPlan{HangAfterJobs: 1})
	rtHang, _ := New(devHang)
	rtHang.JobTimeout = 5 * time.Millisecond
	_ = rtHang.RunJob([]uint64{1}) // triggers the hang (replayed fine)
	sample := rtHang.HealthCheck()
	_ = sample
	if rtHang.Resets() == 0 {
		t.Error("health check/watchdog never reset the hung card")
	}
	// After recovery the card must respond again.
	if !rtHang.Driver().Alive() {
		t.Error("card not alive after recovery")
	}

	// Overheat: Healthy() goes false above the trip point.
	devHot := NewDevice(1, jobDur, FaultPlan{OverheatAfterJobs: 1})
	rtHot, _ := New(devHot)
	if err := rtHot.RunJob([]uint64{1}); err != nil {
		t.Fatal(err)
	}
	rtHot.HealthCheck()
	if rtHot.Healthy() {
		t.Error("overheated card reported healthy")
	}
	if len(rtHot.History()) != 1 {
		t.Error("history not recorded")
	}
}

// TestConcurrentSubmitters: many goroutines share the engine pool without
// losing jobs.
func TestConcurrentSubmitters(t *testing.T) {
	rt := healthyRuntime(t, 2)
	const jobs = 24
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.RunJob([]uint64{42})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	done, _ := rt.dr.dev.Stats()
	if done != jobs {
		t.Errorf("device completed %d jobs, want %d", done, jobs)
	}
}

// TestConcurrentWithHang: recovery under concurrent load still completes
// every job.
func TestConcurrentWithHang(t *testing.T) {
	dev := NewDevice(2, jobDur, FaultPlan{HangAfterJobs: 5})
	rt, _ := New(dev)
	rt.JobTimeout = 5 * time.Millisecond
	const jobs = 16
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.RunJob([]uint64{1})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeviceDoorbellEdgeCases(t *testing.T) {
	dev := NewDevice(1, jobDur, FaultPlan{})
	dr := NewDriver(dev)
	if err := dr.Submit(99); err == nil { // bogus engine: never starts
		t.Error("bogus doorbell reported success")
	}
	if s := dr.Status(0); s != JobIdle {
		t.Errorf("status %d after bogus doorbell", s)
	}
	if err := dr.Submit(0); err != nil {
		t.Fatal(err)
	}
	_ = dr.Submit(0) // doorbell on busy engine is harmless
	if s, err := dr.WaitJob(0, 50*time.Millisecond); err != nil || s != JobDone {
		t.Errorf("status %d err %v", s, err)
	}
}

// TestHistoryIsACopy: mutating a returned History slice must not bleed
// into the runtime's internal log, and History must be safe to call
// while other goroutines append samples and run jobs (run with -race).
func TestHistoryIsACopy(t *testing.T) {
	rt := healthyRuntime(t, 2)
	rt.HealthCheck()
	h := rt.History()
	if len(h) != 1 {
		t.Fatalf("history length %d, want 1", len(h))
	}
	h[0].TempC = -273
	if got := rt.History()[0].TempC; got == -273 {
		t.Error("History returned internal storage, not a copy")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rt.HealthCheck()
					_ = rt.RunJob([]uint64{7})
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, s := range rt.History() {
			_ = s.TempC // read every field the writers touch
		}
		_ = rt.Healthy()
		_ = rt.Replays()
		_ = rt.Resets()
	}
	close(stop)
	wg.Wait()
}

func TestRunJobCtxCanceledBeforeStart(t *testing.T) {
	rt := healthyRuntime(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.RunJobCtx(ctx, []uint64{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if jobs, _ := rt.dr.dev.Stats(); jobs != 0 {
		t.Fatalf("canceled job still ran (%d jobs)", jobs)
	}
	if rt.Replays() != 0 {
		t.Fatalf("context abort counted as replay")
	}
}

func TestRunJobCtxAbortsWhileQueued(t *testing.T) {
	// One slow engine: the first job occupies it, the second must abort at
	// its deadline while still waiting for the slot — it never occupies an
	// engine and never executes on the device.
	dev := NewDevice(1, 50*time.Millisecond, FaultPlan{})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt.JobTimeout = time.Second

	started := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		close(started)
		firstDone <- rt.RunJob([]uint64{1})
	}()
	<-started
	// Give the first job time to claim the engine.
	deadline := time.Now().Add(time.Second)
	for {
		if len(rt.free) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never claimed the engine")
		}
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err = rt.RunJobCtx(ctx, []uint64{2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if waited := time.Since(t0); waited > 40*time.Millisecond {
		t.Fatalf("queued abort took %v, should return at the deadline", waited)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first job: %v", err)
	}
	if jobs, _ := dev.Stats(); jobs != 1 {
		t.Fatalf("device ran %d jobs, want 1 (aborted job must not execute)", jobs)
	}
}

func TestRunJobCtxDeadlineCapsHardwareWait(t *testing.T) {
	// The job takes 50 ms but the context allows 5 ms: the wait must stop
	// at the context deadline, not the 1 s watchdog, and surface ctx.Err().
	dev := NewDevice(1, 50*time.Millisecond, FaultPlan{})
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	rt.JobTimeout = time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if err := rt.RunJobCtx(ctx, []uint64{1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if waited := time.Since(t0); waited > 40*time.Millisecond {
		t.Fatalf("deadline-capped wait took %v", waited)
	}
	if rt.Replays() != 0 {
		t.Fatalf("context abort was replayed %d times", rt.Replays())
	}
}

func TestRunHMVPCtx(t *testing.T) {
	rt := healthyRuntime(t, 2)
	d := &HMVPDescriptor{
		Rows: 16, Cols: 64,
		MatrixAddr: 0x1000, VectorAddr: 0x2000, KeyAddr: 0x3000, ResultAddr: 0x4000,
		PackRowsLog2: 4,
	}
	if err := rt.RunHMVPCtx(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.RunHMVPCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRowLatencyModel: with the descriptor-aware latency model on, a job
// over twice the rows takes measurably longer, and a half-size job
// finishes faster than a full-size one — the property that makes sharded
// serving throughput honest in the cluster benchmarks.
func TestRowLatencyModel(t *testing.T) {
	dev := NewDevice(1, jobDur, FaultPlan{})
	dev.SetRowLatency(0, 50*time.Microsecond)
	rt, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	run := func(rows uint32) time.Duration {
		d := &HMVPDescriptor{
			Rows: rows, Cols: 64,
			MatrixAddr: 0x1000, VectorAddr: 0x2000, KeyAddr: 0x3000, ResultAddr: 0x4000,
			PackRowsLog2: 6,
		}
		t0 := time.Now()
		if err := rt.RunHMVP(d); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	small, large := run(10), run(200)
	// 10 rows ≈ 0.5ms, 200 rows ≈ 10ms of simulated card time. Timer
	// granularity is far below the 9.5ms gap, so the ordering is robust.
	if large < small+5*time.Millisecond {
		t.Errorf("row latency model not applied: 10 rows took %v, 200 rows took %v", small, large)
	}

	// perRow=0 restores the flat model.
	dev.SetRowLatency(0, 0)
	flat := run(200)
	if flat > small+5*time.Millisecond && flat > 2*jobDur+5*time.Millisecond {
		t.Errorf("flat model not restored: 200-row job took %v", flat)
	}
}
