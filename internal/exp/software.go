package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/mod"
	"cham/internal/ntt"
	"cham/internal/perfmodel"
)

func init() {
	Register(Experiment{
		ID:    "software",
		Title: "Measured CPU timings of this repository vs the calibrated Xeon model",
		Paper: "(methodology check — no direct paper artifact)",
		Run:   runSoftware,
	})
}

// timeOp measures one operation with a small warm-up, capping total
// measurement time so the experiment stays interactive.
func timeOp(budget time.Duration, op func()) (perOp time.Duration, iters int) {
	op() // warm-up
	start := time.Now()
	for time.Since(start) < budget {
		op()
		iters++
	}
	if iters == 0 {
		iters = 1
	}
	return time.Since(start) / time.Duration(iters), iters
}

func runSoftware() []*Table {
	const n = 4096
	p, err := bfv.NewChamParams(n)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	sk := p.KeyGen(rng)
	cpu := perfmodel.Xeon6130()
	pm := perfmodel.ChamParams()

	t := &Table{
		ID:      "software",
		Title:   "Go implementation vs calibrated CPU model (single op, this host)",
		Columns: []string{"operation", "measured", "model (16-core Xeon)", "ratio"},
	}

	// NTT forward+inverse of one limb.
	tab := ntt.MustTable(n, mod.ChamQ0)
	poly := make([]uint64, n)
	for i := range poly {
		poly[i] = rng.Uint64() % mod.ChamQ0
	}
	nttT, _ := timeOp(150*time.Millisecond, func() {
		tab.Forward(poly)
		tab.Inverse(poly)
	})
	nttModel := float64(core.OpCounts{NTT: 1, INTT: 1}.ModMuls(n)) / cpu.ModMulsPerSec
	t.AddRow("NTT fwd+inv (1 limb)", nttT.String(), ms(nttModel), f2(nttT.Seconds()/nttModel))

	// Hybrid key switch.
	swk := p.SwitchingKeyGen(rng, sk, sk.Value)
	ct := p.EncryptZeroSym(rng, sk, 2)
	ksT, _ := timeOp(300*time.Millisecond, func() { _ = p.KeySwitch(ct, swk) })
	ksModel := cpu.KeySwitchSeconds(pm)
	t.AddRow("key switch", ksT.String(), ms(ksModel), f2(ksT.Seconds()/ksModel))

	// Small HMVP (8 rows, full width).
	ev, err := core.NewEvaluator(p, rng, sk, 8)
	if err != nil {
		panic(err)
	}
	a := make([][]uint64, 8)
	for i := range a {
		a[i] = make([]uint64, n)
		for j := range a[i] {
			a[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, n)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := core.EncryptVector(p, rng, sk, v)
	hmvpT, _ := timeOp(500*time.Millisecond, func() {
		if _, err := ev.MatVec(a, ctV); err != nil {
			panic(err)
		}
	})
	hmvpModel := cpu.HMVPSeconds(pm, 8, n)
	t.AddRow("HMVP 8x4096", hmvpT.String(), ms(hmvpModel), f2(hmvpT.Seconds()/hmvpModel))

	t.Notes = append(t.Notes,
		"the model describes a 16-core Xeon running optimized native code; this table",
		"records how far this Go prototype on this host sits from that calibration",
		fmt.Sprintf("model assumes %d threads x %.0f%% efficiency; HMVP rows ran on %d worker(s) here",
			cpu.Threads, 100*cpu.Efficiency, runtime.GOMAXPROCS(0)))
	return []*Table{t}
}
