package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "table3", "fig2a", "fig2b", "nttops",
		"fig6", "fig8", "fig7ab", "fig7c", "fig1b", "fig5", "headline", "software"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("%d experiments registered, want %d", len(All()), len(want))
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
}

// TestAllExperimentsRun executes every experiment and sanity-checks the
// rendered output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		tables := e.Run()
		if len(tables) == 0 {
			t.Errorf("%s: no tables", e.ID)
			continue
		}
		for _, tb := range tables {
			out := tb.Render()
			if !strings.Contains(out, tb.Title) {
				t.Errorf("%s: render missing title", e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", e.ID, tb.Title)
			}
			for _, r := range tb.Rows {
				if len(r) != len(tb.Columns) {
					t.Errorf("%s: row width %d != %d columns", e.ID, len(r), len(tb.Columns))
				}
			}
			if strings.Contains(out, "CALIBRATION FAILURE") {
				t.Errorf("%s: %s", e.ID, out)
			}
		}
	}
}

// parseRatio pulls a float out of strings like "123.4x" or "95.0%".
func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// TestHeadlineClaims: the reproduced headline numbers must land near the
// paper's 1800x / 36x / 144x.
func TestHeadlineClaims(t *testing.T) {
	e, _ := Find("headline")
	tb := e.Run()[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("%d headline rows", len(tb.Rows))
	}
	checks := []struct {
		claim  string
		lo, hi float64
	}{
		{"matrix-vector product", 1400, 2200},
		{"logistic regression", 25, 45},
		{"Beaver triple generation", 100, 175},
	}
	for i, c := range checks {
		if tb.Rows[i][0] != c.claim {
			t.Fatalf("row %d is %q", i, tb.Rows[i][0])
		}
		got := parseRatio(t, tb.Rows[i][2])
		if got < c.lo || got > c.hi {
			t.Errorf("%s: reproduced %.0fx outside [%.0f, %.0f] (paper %s)",
				c.claim, got, c.lo, c.hi, tb.Rows[i][1])
		}
	}
}

// TestFig7cRange: the Beaver speed-ups must span roughly the paper's
// 49x-144x band.
func TestFig7cRange(t *testing.T) {
	e, _ := Find("fig7c")
	tb := e.Run()[0]
	min, max := 1e18, 0.0
	for _, r := range tb.Rows {
		v := parseRatio(t, r[4])
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 35 || min > 80 {
		t.Errorf("min Beaver speed-up %.0f, want near the paper's 49", min)
	}
	if max < 100 || max > 185 {
		t.Errorf("max Beaver speed-up %.0f, want near the paper's 144", max)
	}
}

// TestFig7abRanges: matvec speed-ups within 30x-1800x-ish and end-to-end
// within 2x-36x-ish, both growing with dataset size.
func TestFig7abRanges(t *testing.T) {
	e, _ := Find("fig7ab")
	tables := e.Run()
	speed := tables[1]
	var prevMat, prevE2E float64
	for i, r := range speed.Rows {
		mat := parseRatio(t, r[1])
		e2e := parseRatio(t, r[3])
		if mat < 20 || mat > 2200 {
			t.Errorf("%s: matvec speed-up %.0f outside the 30-1800 band", r[0], mat)
		}
		if e2e < 1.5 || e2e > 45 {
			t.Errorf("%s: end-to-end speed-up %.1f outside the 2-36 band", r[0], e2e)
		}
		if i > 0 && (mat < prevMat*0.9 || e2e < prevE2E*0.9) {
			t.Errorf("%s: speed-ups should grow with dataset size", r[0])
		}
		prevMat, prevE2E = mat, e2e
	}
	first := speed.Rows[0]
	last := speed.Rows[len(speed.Rows)-1]
	if v := parseRatio(t, first[3]); v > 5 {
		t.Errorf("smallest dataset end-to-end %.1fx, paper starts near 2x", v)
	}
	if v := parseRatio(t, last[3]); v < 25 {
		t.Errorf("largest dataset end-to-end %.1fx, paper peaks at 36x", v)
	}
}

// TestFig8Claims: >10x over CPU at production sizes, 0.3-0.7x of GPU
// latency, >90% offload for large m.
func TestFig8Claims(t *testing.T) {
	e, _ := Find("fig8")
	for _, tb := range e.Run() {
		for _, r := range tb.Rows {
			m := r[0]
			vsCPU := parseRatio(t, r[4])
			vsGPU := parseRatio(t, r[5])
			if (m == "4096" || m == "8192") && vsCPU < 10 {
				t.Errorf("%s m=%s: CPU speed-up %.1f < 10", tb.Title, m, vsCPU)
			}
			if vsGPU < 0.2 || vsGPU > 0.8 {
				t.Errorf("%s m=%s: GPU latency ratio %.2f outside 0.3-0.7-ish", tb.Title, m, vsGPU)
			}
			if m == "4096" {
				if off := parseRatio(t, r[6]); off < 90 {
					t.Errorf("%s m=%s: offload %.1f%% < 90%%", tb.Title, m, off)
				}
			}
		}
	}
}

// TestFig6Claims: CHAM throughput beats the GPU everywhere and by ≈4.5x at
// large saturated shapes; column spill beyond N degrades throughput.
func TestFig6Claims(t *testing.T) {
	e, _ := Find("fig6")
	tb := e.Run()[0]
	cell := func(m, n string, col int) string {
		for _, r := range tb.Rows {
			if r[0] == m && r[1] == n {
				return r[col]
			}
		}
		t.Fatalf("row %s/%s missing", m, n)
		return ""
	}
	big := parseRatio(t, cell("8192", "4096", 4))
	if big < 3.5 || big > 5.5 {
		t.Errorf("large-shape CHAM/GPU %.2f, want ≈4.5", big)
	}
	// Throughput grows with m at fixed n.
	t256 := parseRatio(t, strings.TrimSuffix(cell("256", "4096", 2), "k"))
	t8192 := parseRatio(t, strings.TrimSuffix(cell("8192", "4096", 2), "k"))
	if t8192 <= t256 {
		t.Error("throughput should grow with m")
	}
	// Column spill: n=8192 slower than n=4096 at the same m.
	n4096 := parseRatio(t, strings.TrimSuffix(cell("4096", "4096", 2), "k"))
	n8192 := parseRatio(t, strings.TrimSuffix(cell("4096", "8192", 2), "k"))
	if n8192 >= n4096 {
		t.Error("column spill should reduce throughput")
	}
}

// TestFig1bOverlapWins: the overlapped schedule must beat serial offload.
func TestFig1bOverlapWins(t *testing.T) {
	e, _ := Find("fig1b")
	tb := e.Run()[0]
	sp := parseRatio(t, tb.Rows[1][3])
	if sp <= 1.05 {
		t.Errorf("overlap speed-up %.2f, want > 1", sp)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Render()
	if !strings.Contains(out, "note: hello") {
		t.Error("note missing")
	}
	if !strings.Contains(out, "--") {
		t.Error("separator missing")
	}
}
