package exp

import (
	"fmt"
	"strings"

	"cham/internal/core"

	"cham/internal/hetero"
	"cham/internal/perfmodel"
	"cham/internal/pipeline"
)

// Evaluation figures: HMVP throughput (Fig. 6), HMVP latency (Fig. 8),
// HeteroLR (Fig. 7a/7b), Beaver triples (Fig. 7c), the host/FPGA overlap
// illustration (Fig. 1b) and the headline summary.

func ksCPUSeconds() float64 {
	return perfmodel.Xeon6130().KeySwitchSeconds(perfmodel.ChamParams())
}

func init() {
	Register(Experiment{
		ID:    "fig6",
		Title: "HMVP throughput vs matrix shape (CHAM vs GPU)",
		Paper: "near-linear in m; n matters little until rows span multiple ciphertexts; 4.5x over GPU",
		Run:   runFig6,
	})
	Register(Experiment{
		ID:    "fig8",
		Title: "HMVP latency: CPU vs GPU vs CHAM",
		Paper: ">10x over CPU; 0.3-0.7x of GPU latency; >90% offloaded",
		Run:   runFig8,
	})
	Register(Experiment{
		ID:    "fig7ab",
		Title: "HeteroLR step times and end-to-end speed-up",
		Paper: "matvec 30x-1800x vs FATE Paillier; end-to-end 2x-36x",
		Run:   runFig7ab,
	})
	Register(Experiment{
		ID:    "fig7c",
		Title: "Beaver triple generation speed-up",
		Paper: "49x-144x vs the original Delphi implementation",
		Run:   runFig7c,
	})
	Register(Experiment{
		ID:    "fig1b",
		Title: "Host/FPGA pipelining (overlap vs serial offload)",
		Paper: "interleaved transfer and compute across threads and engines",
		Run:   runFig1b,
	})
	Register(Experiment{
		ID:    "headline",
		Title: "Headline speed-ups",
		Paper: "1800x HMVP, 36x logistic regression, 144x Beaver triples",
		Run:   runHeadline,
	})
}

// chamHMVPSeconds wraps the pipeline simulation plus the per-invocation
// host/DMA overhead from the heterogeneous model, which dominates small
// matrices (the "near-linear throughput in m" effect).
func chamHMVPSeconds(m, n int) float64 {
	cfg := pipeline.ChamConfig()
	job := hetero.HMVPJob(cfg, perfmodel.Xeon6130(), m, n)
	sys := hetero.ChamSystem()
	transfer := float64(job.H2DBytes+job.D2HBytes) / (sys.PCIeGBps * 1e9)
	const invoke = 0.8e-3 // driver + doorbell + completion
	return cfg.SimulateHMVP(m, n).Seconds(cfg.FreqMHz) + transfer + invoke
}

func runFig6() []*Table {
	gpu := perfmodel.TeslaV100()
	p := perfmodel.ChamParams()
	t := &Table{
		ID:      "fig6",
		Title:   "HMVP throughput (rows/s) for different matrices",
		Columns: []string{"m", "n", "CHAM rows/s", "GPU rows/s", "CHAM/GPU"},
	}
	for _, n := range []int{256, 4096, 8192} {
		for _, m := range []int{256, 1024, 4096, 8192} {
			chamSec := chamHMVPSeconds(m, n)
			gpuSec := gpu.HMVPSeconds(p, m, n)
			t.AddRow(itoa(m), itoa(n),
				kops(float64(m)/chamSec), kops(float64(m)/gpuSec),
				f2(gpuSec/chamSec)+"x")
		}
	}
	t.Notes = append(t.Notes,
		"throughput rises near-linearly with m while per-matrix overheads amortize, then saturates",
		"n>4096 rows span multiple ciphertexts and must aggregate (the paper's n>=m penalty)")
	return []*Table{t}
}

func runFig8() []*Table {
	cpu := perfmodel.Xeon6130()
	gpu := perfmodel.TeslaV100()
	p := perfmodel.ChamParams()
	var tables []*Table
	for _, n := range []int{256, 4096} {
		t := &Table{
			ID:      "fig8",
			Title:   fmt.Sprintf("HMVP latency, no. of columns = %d", n),
			Columns: []string{"m", "CPU", "GPU", "CHAM", "vs CPU", "vs GPU", "offload"},
		}
		for _, m := range []int{256, 1024, 4096, 8192} {
			cpuSec := cpu.HMVPSeconds(p, m, n)
			gpuSec := gpu.HMVPSeconds(p, m, n)
			chamSec := chamHMVPSeconds(m, n)
			job := hetero.HMVPJob(pipeline.ChamConfig(), cpu, m, n)
			t.AddRow(itoa(m), ms(cpuSec), ms(gpuSec), ms(chamSec),
				f1(cpuSec/chamSec)+"x", f2(chamSec/gpuSec)+"x",
				f1(100*hetero.OffloadFraction(job))+"%")
		}
		tables = append(tables, t)
	}
	return tables
}

// lrShape is one Fig. 7 dataset: samples × total features (split evenly
// between the parties). The gradient HMVP is features × samples.
type lrShape struct{ samples, features int }

var lrShapes = []lrShape{
	{569, 30}, // breast cancer (the FATE demo dataset)
	{1024, 1024},
	{4096, 4096},
	{8192, 4096},
	{8192, 8192},
}

// frameworkSeconds models the FATE stack around the crypto: scheduling,
// Python serialization, network round trips, and the cleartext local
// algebra — identical for every crypto backend. Calibrated so that the
// end-to-end acceleration spans the paper's 2x-36x.
func frameworkSeconds(s lrShape) float64 {
	return 0.14 + 7.5e-5*float64(s.samples) + 9e-8*float64(s.samples)*float64(s.features)
}

// lrIterSeconds returns the per-iteration step times of one HeteroLR
// iteration under a backend.
type lrSteps struct {
	Encrypt, AddVec, MatVec, Decrypt, Total float64
}

func lrPaillier(s lrShape) lrSteps {
	pl := perfmodel.FATEPaillier()
	st := lrSteps{
		Encrypt: pl.EncryptVectorSeconds(s.samples),
		AddVec:  pl.AddVecSeconds(s.samples),
		MatVec:  pl.MatVecSeconds(s.features, s.samples),
		Decrypt: pl.DecryptVectorSeconds(s.features),
	}
	st.Total = st.Encrypt + st.AddVec + st.MatVec + st.Decrypt + frameworkSeconds(s)
	return st
}

func lrBFVCPU(s lrShape) lrSteps {
	cpu := perfmodel.Xeon6130()
	p := perfmodel.ChamParams()
	st := lrSteps{
		Encrypt: cpu.EncryptVectorSeconds(p, s.samples),
		AddVec:  cpu.AddVecSeconds(p, s.samples),
		MatVec:  cpu.HMVPSeconds(p, s.features, s.samples),
		Decrypt: cpu.DecryptVectorSeconds(p, s.features),
	}
	st.Total = st.Encrypt + st.AddVec + st.MatVec + st.Decrypt + frameworkSeconds(s)
	return st
}

func lrBFVGPU(s lrShape) lrSteps {
	gpu := perfmodel.TeslaV100()
	p := perfmodel.ChamParams()
	st := lrSteps{
		Encrypt: gpu.EncryptVectorSeconds(p, s.samples),
		AddVec:  gpu.AddVecSeconds(p, s.samples),
		MatVec:  gpu.HMVPSeconds(p, s.features, s.samples),
		Decrypt: gpu.DecryptVectorSeconds(p, s.features),
	}
	st.Total = st.Encrypt + st.AddVec + st.MatVec + st.Decrypt + frameworkSeconds(s)
	return st
}

func lrCHAM(s lrShape) lrSteps {
	cpu := perfmodel.Xeon6130()
	p := perfmodel.ChamParams()
	st := lrSteps{
		Encrypt: cpu.EncryptVectorSeconds(p, s.samples), // host still encrypts
		AddVec:  cpu.AddVecSeconds(p, s.samples),
		MatVec:  chamHMVPSeconds(s.features, s.samples),
		Decrypt: cpu.DecryptVectorSeconds(p, s.features),
	}
	st.Total = st.Encrypt + st.AddVec + st.MatVec + st.Decrypt + frameworkSeconds(s)
	return st
}

func runFig7ab() []*Table {
	steps := &Table{
		ID:      "fig7ab",
		Title:   "HeteroLR per-iteration step times",
		Columns: []string{"dataset", "backend", "encrypt", "add_vec", "matvec", "decrypt", "total"},
	}
	speed := &Table{
		ID:      "fig7ab",
		Title:   "HeteroLR speed-ups vs FATE Paillier",
		Columns: []string{"dataset", "matvec speed-up (CHAM)", "end-to-end (BFV-CPU)", "end-to-end (CHAM)"},
	}
	for _, s := range lrShapes {
		name := fmt.Sprintf("%dx%d", s.samples, s.features)
		backends := []struct {
			name string
			st   lrSteps
		}{
			{"Paillier-CPU", lrPaillier(s)},
			{"BFV-CPU", lrBFVCPU(s)},
			{"BFV-GPU", lrBFVGPU(s)},
			{"BFV-CHAM", lrCHAM(s)},
		}
		for _, b := range backends {
			steps.AddRow(name, b.name, ms(b.st.Encrypt), ms(b.st.AddVec), ms(b.st.MatVec), ms(b.st.Decrypt), ms(b.st.Total))
		}
		pail, cham, bfvCPU := backends[0].st, backends[3].st, backends[1].st
		speed.AddRow(name,
			f1(pail.MatVec/cham.MatVec)+"x",
			f2(pail.Total/bfvCPU.Total)+"x",
			f1(pail.Total/cham.Total)+"x")
	}
	speed.Notes = append(speed.Notes,
		"paper: matvec 30x-1800x, end-to-end 2x-36x; large datasets gain most because matvec dominates")
	return []*Table{steps, speed}
}

// delphiLayers are representative linear-layer shapes from the Delphi /
// MiniONN CIFAR-10 networks, expressed as matvec dimensions.
var delphiLayers = []struct {
	name string
	m, n int
}{
	{"fc-small", 64, 1024},
	{"conv-3x3x64", 1024, 4096},
	{"conv-3x3x128", 4096, 4096},
	{"fc-big", 8192, 4096},
	{"conv-wide", 16384, 4096},
}

// delphiBaselineSeconds models the original Delphi preprocessing: a
// SEAL-style batch-encoded (rotate-and-sum) HMVP on the host CPU,
// O(m·log N) key switches (§II-E).
func delphiBaselineSeconds(m int) float64 {
	cpu := perfmodel.Xeon6130()
	p := perfmodel.ChamParams()
	ops := core.BatchHMVPOps(p.N, p.NormalLevels, p.FullLevels, m)
	return float64(ops.ModMuls(p.N)) / (cpu.ModMulsPerSec * float64(cpu.Threads) * cpu.Efficiency)
}

func runFig7c() []*Table {
	t := &Table{
		ID:      "fig7c",
		Title:   "Beaver triple generation per layer",
		Columns: []string{"layer", "shape", "Delphi baseline", "CHAM", "speed-up"},
	}
	minR, maxR := 1e18, 0.0
	for _, l := range delphiLayers {
		base := delphiBaselineSeconds(l.m)
		cham := chamHMVPSeconds(l.m, l.n)
		r := base / cham
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		t.AddRow(l.name, fmt.Sprintf("%dx%d", l.m, l.n), ms(base), ms(cham), f1(r)+"x")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speed-up range %.0fx-%.0fx (paper: 49x-144x)", minR, maxR))
	return []*Table{t}
}

func runFig1b() []*Table {
	sys := hetero.ChamSystem()
	cfg := pipeline.ChamConfig()
	cpu := perfmodel.Xeon6130()
	jobs := make([]hetero.Job, 12)
	for i := range jobs {
		jobs[i] = hetero.HMVPJob(cfg, cpu, 1024, 4096)
	}
	serial := sys.Simulate(jobs, false)
	over := sys.Simulate(jobs, true)
	t := &Table{
		ID:      "fig1b",
		Title:   "Pipelined execution of multi-thread CPU and FPGA (12 HMVP jobs)",
		Columns: []string{"schedule", "makespan", "engine util", "speed-up"},
	}
	t.AddRow("serial offload", ms(serial.Makespan), f1(100*serial.EngineUtilization(sys.Engines))+"%", "1.0x")
	t.AddRow("overlapped (Fig. 1b)", ms(over.Makespan), f1(100*over.EngineUtilization(sys.Engines))+"%",
		f2(serial.Makespan/over.Makespan)+"x")
	for _, line := range strings.Split(strings.TrimRight(over.Gantt(sys.Threads, sys.Engines, 64), "\n"), "\n") {
		t.Notes = append(t.Notes, line)
	}
	return []*Table{t}
}

func runHeadline() []*Table {
	t := &Table{
		ID:      "headline",
		Title:   "Headline speed-ups (abstract claims)",
		Columns: []string{"claim", "paper", "reproduced"},
	}
	// HMVP vs the FATE Paillier CPU baseline at the largest LR shape.
	pl := perfmodel.FATEPaillier()
	hm := pl.MatVecSeconds(8192, 8192) / chamHMVPSeconds(8192, 8192)
	t.AddRow("matrix-vector product", "1800x", f0(hm)+"x")
	// End-to-end HeteroLR at the largest shape.
	s := lrShapes[len(lrShapes)-1]
	lr := lrPaillier(s).Total / lrCHAM(s).Total
	t.AddRow("logistic regression", "36x", f1(lr)+"x")
	// Beaver triples: best layer.
	best := 0.0
	for _, l := range delphiLayers {
		if r := delphiBaselineSeconds(l.m) / chamHMVPSeconds(l.m, l.n); r > best {
			best = r
		}
	}
	t.AddRow("Beaver triple generation", "144x", f0(best)+"x")
	return []*Table{t}
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
