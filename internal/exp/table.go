// Package exp is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation, each regenerating its
// rows/series from the simulators and calibrated device models, alongside
// the value the paper reports. cmd/chamsim and the repository benchmarks
// are thin wrappers over this registry.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // the headline result the paper reports for this artifact
	Run   func() []*Table
}

var registry []Experiment

// Register adds an experiment (called from init functions in this package).
func Register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Experiment { return registry }

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func ms(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2f s", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2f ms", sec*1e3)
	default:
		return fmt.Sprintf("%.1f us", sec*1e6)
	}
}
func itoa(v int) string { return fmt.Sprintf("%d", v) }
func kops(v float64) string {
	return fmt.Sprintf("%.1fk", v/1e3)
}
