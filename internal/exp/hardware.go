package exp

import (
	"fmt"

	"cham/internal/dse"
	"cham/internal/fpga"
	"cham/internal/pipeline"
)

// Hardware-side experiments: Table II, Table III, Fig. 2a, Fig. 2b, and
// the §V-B.1 NTT/key-switch throughput comparison.

func init() {
	Register(Experiment{
		ID:    "table2",
		Title: "Resource utilization on the Xilinx VU9P",
		Paper: "engines 259318/259502 LUT; totals 63.68% LUT, 20.41% FF, 72.13% BRAM, 61.98% URAM, 29.04% DSP",
		Run:   runTable2,
	})
	Register(Experiment{
		ID:    "table3",
		Title: "Single NTT module comparison (CHAM strategies vs HEAX vs F1)",
		Paper: "CHAM 6144 cycles / 3324 LUT / 14 BRAM; HEAX ATP 6.71x; F1 ATP 7.36x",
		Run:   runTable3,
	})
	Register(Experiment{
		ID:    "fig2a",
		Title: "Roofline on the U200: HE operators vs fused HMVP",
		Paper: "NTT and key-switch memory-bound; HMVP compute-bound",
		Run:   runFig2a,
	})
	Register(Experiment{
		ID:    "fig2b",
		Title: "Design-space exploration",
		Paper: "optima: (6xNTT, 4-PE, 2 engines) and (6xNTT, 8-PE, 1 engine)",
		Run:   runFig2b,
	})
	Register(Experiment{
		ID:    "nttops",
		Title: "NTT and key-switch throughput (Section V-B.1)",
		Paper: "60 NTT units, 195k ops/s vs HEAX 117k vs GPU 45k; key-switch 65k ops/s = 105x CPU",
		Run:   runNTTOps,
	})
}

func runTable2() []*Table {
	rows, total, pct := fpga.Table2(fpga.ChamEngineConfig(), 2)
	t := &Table{
		ID:      "table2",
		Title:   "Resource utilization on the Xilinx VU9P FPGA",
		Columns: []string{"Module", "LUT", "FF", "BRAM", "URAM", "DSP"},
	}
	for _, r := range rows {
		t.AddRow(r.Module, itoa(r.Res.LUT), itoa(r.Res.FF), itoa(r.Res.BRAM), itoa(r.Res.URAM), itoa(r.Res.DSP))
	}
	t.AddRow("Total", itoa(total.LUT), itoa(total.FF), itoa(total.BRAM), itoa(total.URAM), itoa(total.DSP))
	t.AddRow("Total (%)",
		f2(pct["LUT"])+"%", f2(pct["FF"])+"%", f2(pct["BRAM"])+"%", f2(pct["URAM"])+"%", f2(pct["DSP"])+"%")
	if err := fpga.CheckTable2Calibration(); err != nil {
		t.Notes = append(t.Notes, "CALIBRATION FAILURE: "+err.Error())
	} else {
		t.Notes = append(t.Notes, "matches the paper's Table II exactly")
	}
	return []*Table{t}
}

func runTable3() []*Table {
	t := &Table{
		ID:      "table3",
		Title:   "Comparison of a single NTT module (N=4096)",
		Columns: []string{"Accelerator", "Latency", "Mults", "ATP(l*p)", "LUT", "BRAM", "ATP(l*u)"},
	}
	for _, r := range fpga.Table3(4096, 4) {
		lut, atpu := "-", "-"
		if r.LUT > 0 {
			lut = itoa(r.LUT)
			atpu = f2(r.ATPLUT) + "x"
		}
		bram := "-"
		if r.Name != "F1" {
			bram = itoa(r.BRAM)
		}
		t.AddRow(r.Name, itoa(r.Latency), itoa(r.Mults), f2(r.ATPMults)+"x", lut, bram, atpu)
	}
	if err := fpga.CheckTable3Calibration(); err != nil {
		t.Notes = append(t.Notes, "CALIBRATION FAILURE: "+err.Error())
	} else {
		t.Notes = append(t.Notes, "CHAM rows match the paper's Table III exactly; HEAX/F1 are published figures")
	}
	return []*Table{t}
}

func runFig2a() []*Table {
	t := &Table{
		ID:      "fig2a",
		Title:   "Roofline model on the U200 (ops = 27x18 multiplies)",
		Columns: []string{"Kernel", "Intensity (ops/B)", "Attainable (Gops/s)", "Bound"},
	}
	for _, p := range dse.Roofline(fpga.U200) {
		t.AddRow(p.Kernel, f2(p.Intensity), f1(p.Attainable/1e9), p.Bound)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ridge intensity %.1f ops/B; peak %.0f Gops/s; DDR %.0f GB/s",
			dse.Ridge(fpga.U200), fpga.U200.PeakDSPOps()/1e9, fpga.U200.DDRGBps))
	return []*Table{t}
}

func runFig2b() []*Table {
	pts := dse.Explore(fpga.VU9P)
	fitting := 0
	for _, p := range pts {
		if p.Fits {
			fitting++
		}
	}
	t := &Table{
		ID:      "fig2b",
		Title:   "Design-space exploration: Pareto frontier",
		Columns: []string{"Design point", "Freq", "rows/s", "max util", "fits"},
	}
	for _, p := range dse.Frontier(pts) {
		t.AddRow(p.Label(), f1(p.FreqMHz)+" MHz", kops(p.RowsSec), f1(100*p.MaxUtil)+"%", "yes")
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d points explored, %d fit the 75%% ceiling", len(pts), fitting))
	if best, ok := dse.Best(pts); ok {
		t.Notes = append(t.Notes, "selected (CHAM): "+best.Label())
	}
	return []*Table{t}
}

func runNTTOps() []*Table {
	c := pipeline.ChamConfig()
	t := &Table{
		ID:      "nttops",
		Title:   "Operator throughput (Section V-B.1)",
		Columns: []string{"Metric", "CHAM", "Comparison", "Ratio"},
	}
	ntt := c.NTTOpsPerSec()
	t.AddRow("NTT ops/s (15-transform bundles)", kops(ntt), "HEAX 117k", f2(ntt/117e3)+"x")
	t.AddRow("NTT ops/s vs GPU", kops(ntt), "GPU 45k", f2(ntt/45e3)+"x")
	ks := c.KeySwitchOpsPerSec()
	cpuKS := 1 / ksCPUSeconds()
	t.AddRow("Key-switch ops/s", kops(ks), fmt.Sprintf("CPU %.0f", cpuKS), f1(ks/cpuKS)+"x")
	t.AddRow("NTT units", itoa(c.NumEngines*c.Engine.TotalNTT()), "paper: 60", "-")
	t.Notes = append(t.Notes, "paper: 195k NTT ops/s, 65k key switches/s (105x CPU)")
	return []*Table{t}
}
