package exp

import (
	"fmt"

	"cham/internal/fpga"
)

func init() {
	Register(Experiment{
		ID:    "fig5",
		Title: "Floorplan rebalancing on the VU9P",
		Paper: "initial floorplan over-used BRAM; replaced some BRAM with URAM/LUTRAM to keep all classes below 75%",
		Run:   runFig5,
	})
}

func runFig5() []*Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Floorplan: initial vs rebalanced utilization",
		Columns: []string{"stage", "LUT", "FF", "BRAM", "URAM", "DSP", "fits"},
	}
	row := func(name string, fp *fpga.Floorplan) {
		u := fp.Total.Util(fpga.VU9P)
		fits := "no"
		if fp.Fits() {
			fits = "yes"
		}
		t.AddRow(name,
			f2(u["LUT"])+"%", f2(u["FF"])+"%", f2(u["BRAM"])+"%",
			f2(u["URAM"])+"%", f2(u["DSP"])+"%", fits)
	}
	fp := fpga.InitialFloorplan(fpga.VU9P, fpga.ChamEngineConfig(), 2)
	row("initial", fp)
	if err := fp.Rebalance(); err != nil {
		t.Notes = append(t.Notes, "CALIBRATION FAILURE: "+err.Error())
		return []*Table{t}
	}
	row("rebalanced", fp)
	t.Notes = append(t.Notes, fmt.Sprintf("%d conversion moves applied", len(fp.History)-2))
	return []*Table{t}
}
