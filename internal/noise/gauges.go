package noise

import (
	"math/big"

	"cham/internal/lwe"
	"cham/internal/obs"
	"cham/internal/rlwe"
)

// Noise-budget telemetry: remaining headroom (budget − estimate, in
// bits) after each noise-relevant pipeline stage, plus the measured
// output noise when a secret key is available (chamsim publishes it).
// Negative remaining bits mean predicted decryption failure.
var (
	budgetHelp = "Analytic noise budget remaining (bits) after each pipeline stage."
	gFresh     = obs.GetGauge("cham_noise_budget_remaining_bits", budgetHelp, "stage", "fresh")
	gRowMul    = obs.GetGauge("cham_noise_budget_remaining_bits", budgetHelp, "stage", "row_mul")
	gModDown   = obs.GetGauge("cham_noise_budget_remaining_bits", budgetHelp, "stage", "mod_down")
	gPack      = obs.GetGauge("cham_noise_budget_remaining_bits", budgetHelp, "stage", "pack")
	gMeasured  = obs.GetGauge("cham_noise_measured_output_bits",
		"Measured ∞-norm noise (bits) of the last checked HMVP output.")
)

// PublishBudget publishes the per-stage remaining-budget gauges for an
// m-row tile: the analytic estimates of DESIGN.md §3 subtracted from the
// decryption budget of the basis each stage lives in (the augmented
// basis before ModDown, the normal basis after).
func (e *Estimator) PublishBudget(m int) {
	fresh := e.FreshSym()
	mul := e.AfterMulPlain(fresh, float64(e.P.T.Q)/2)
	res := e.AfterRescale(mul)
	pack := e.AfterPackDeferred(res, m)
	full := e.Budget(e.P.R.Levels())
	normal := e.Budget(e.P.NormalLevels)
	gFresh.Set(full - fresh)
	gRowMul.Set(full - mul)
	gModDown.Set(normal - res)
	gPack.Set(normal - pack)
}

// MeasureTile returns the worst-case measured noise (bits) across the
// result slots of one packed HMVP tile, given the secret key and the
// expected cleartext values for the tile's rows. mPad is the padded
// (power-of-two) row count that fixes the slot stride. The packing
// factor is pre-compensated in the row encoding, so each slot's phase
// is Δ·lift(want_i) + noise.
func (e *Estimator) MeasureTile(ct *rlwe.Ciphertext, sk *rlwe.SecretKey, want []uint64, mPad int) float64 {
	p := e.P
	delta := p.Delta(p.NormalLevels)
	q := p.R.Modulus(p.NormalLevels)
	half := new(big.Int).Rsh(q, 1)
	stride := lwe.SlotStride(p.R.N, mPad)
	vals := p.R.ToBigIntCentered(p.Phase(ct, sk), p.NormalLevels)
	measured := 0.0
	diff := new(big.Int)
	for i, w := range want {
		exp := new(big.Int).Mul(delta, big.NewInt(p.T.CenterLift(w)))
		diff.Sub(vals[i*stride], exp)
		diff.Mod(diff, q)
		if diff.Cmp(half) > 0 {
			diff.Sub(diff, q)
		}
		if b := float64(new(big.Int).Abs(diff).BitLen()); b > measured {
			measured = b
		}
	}
	return measured
}

// PublishMeasured records the measured output noise gauge.
func PublishMeasured(bits float64) { gMeasured.Set(bits) }
