// Package noise provides an analytic noise-budget estimator for the CHAM
// pipeline, implementing the §II-F parameter reasoning (DESIGN.md §3):
// fresh encryption noise, plaintext-multiplication growth, the rescale
// division by the special modulus, hybrid key-switch noise, and the
// packing tree's doubling. Tests validate every estimate against noise
// measured on real ciphertexts, so the parameter headroom the paper
// claims ("reduce the noise from 30 bit to 26 bit") is checked rather
// than asserted.
//
// Estimates are high-probability bounds in bits (log2 of the ∞-norm),
// using the standard sub-Gaussian heuristics: a sum of k independent
// terms of magnitude B contributes ≈ B·sqrt(k) with a small safety
// factor.
package noise

import (
	"math"

	"cham/internal/bfv"
)

// Estimator predicts noise magnitudes for a parameter set.
type Estimator struct {
	P bfv.Params
	// Sigma is the noise standard deviation (CBD eta/2 variance).
	Sigma float64
	// Slack is the safety factor (in standard deviations) for
	// high-probability bounds; 6 keeps failures out of test runs.
	Slack float64
}

// New returns an estimator for the parameter set.
func New(p bfv.Params) *Estimator {
	return &Estimator{P: p, Sigma: math.Sqrt(float64(p.Eta) / 2), Slack: 6}
}

func log2(x float64) float64 { return math.Log2(x) }

// n returns the ring degree as float.
func (e *Estimator) n() float64 { return float64(e.P.R.N) }

// Budget returns log2(Δ/2) at the given level count: the noise ceiling
// for correct decryption.
func (e *Estimator) Budget(levels int) float64 {
	d := e.P.Delta(levels)
	return float64(d.BitLen()) - 1
}

// FreshSym bounds fresh symmetric-encryption noise: e + small rounding.
func (e *Estimator) FreshSym() float64 {
	return log2(e.Slack * e.Sigma)
}

// FreshPK bounds public-key encryption noise: b·u + e0 + e1·s, two ring
// products of ternary by noise plus noise terms.
func (e *Estimator) FreshPK() float64 {
	// ‖u·e‖ ≈ σ·sqrt(2N/3) for ternary u (variance 2/3).
	prod := e.Sigma * math.Sqrt(2*e.n()/3)
	return log2(e.Slack * (2*prod + e.Sigma))
}

// AfterMulPlain bounds noise after multiplying a ciphertext with noise
// 2^base by a plaintext with centred coefficients bounded by ptBound:
// the noise convolves with the plaintext, ≈ e·ptBound·sqrt(N).
func (e *Estimator) AfterMulPlain(base, ptBound float64) float64 {
	return base + log2(ptBound*math.Sqrt(e.n()))
}

// AfterRescale bounds noise after dividing by the special modulus p:
// the carried noise shrinks by p; rounding adds ≈ (1+‖s‖₁)/2 ≈ sqrt(N)
// with ternary s.
func (e *Estimator) AfterRescale(base float64) float64 {
	p := float64(e.P.R.Moduli[e.P.R.Levels()-1].Q)
	carried := base - log2(p)
	round := log2(e.Slack * math.Sqrt(e.n()) / 2)
	return maxF(carried, round) + 0.5 // +0.5: the two terms add
}

// KeySwitchAdditive bounds the additive noise of one hybrid key switch:
// dnum digits of magnitude ≤ q_max/2 convolved with key noise, divided by
// the special modulus, plus the ModDown rounding.
func (e *Estimator) KeySwitchAdditive() float64 {
	qMax := 0.0
	for _, m := range e.P.R.Moduli[:e.P.NormalLevels] {
		if q := float64(m.Q); q > qMax {
			qMax = q
		}
	}
	p := float64(e.P.R.Moduli[e.P.R.Levels()-1].Q)
	dnum := float64(e.P.NormalLevels)
	prod := (qMax / 2) * e.Sigma * math.Sqrt(e.n()) * math.Sqrt(dnum)
	round := math.Sqrt(e.n()) / 2
	return log2(e.Slack * (prod/p + round))
}

// KeySwitchAdditiveDeferred bounds the per-merge additive noise of the
// NTT-resident tree's key switch (DESIGN.md §12), where the b-part
// division is deferred to the tree flush. A merge then contributes the
// digit convolution (division by p is linear, so it may be accounted per
// merge even though it runs once) plus only the a-part ModDown rounding:
// the rounding error e_a is uniform in [-1/2,1/2] (variance 1/12) and
// multiplies the ternary secret, ‖e_a·s‖ ≈ sqrt(N·(2/3)·(1/12)) =
// sqrt(N/18) — slightly tighter than the eager bound's sqrt(N)/2, which
// also absorbs the per-merge b rounding.
func (e *Estimator) KeySwitchAdditiveDeferred() float64 {
	qMax := 0.0
	for _, m := range e.P.R.Moduli[:e.P.NormalLevels] {
		if q := float64(m.Q); q > qMax {
			qMax = q
		}
	}
	p := float64(e.P.R.Moduli[e.P.R.Levels()-1].Q)
	dnum := float64(e.P.NormalLevels)
	prod := (qMax / 2) * e.Sigma * math.Sqrt(e.n()) * math.Sqrt(dnum)
	roundA := math.Sqrt(e.n() / 18)
	return log2(e.Slack * (prod/p + roundA))
}

// AfterPack bounds noise after packing m = 2^l LWE ciphertexts whose
// inputs carry noise 2^base: each tree level doubles the carried noise
// and adds one key switch.
func (e *Estimator) AfterPack(base float64, m int) float64 {
	levels := 0
	for v := 1; v < m; v <<= 1 {
		levels++
	}
	carried := base + float64(levels) // ×2 per level
	ks := e.KeySwitchAdditive()
	// Σ 2^j·ks over levels ≈ 2^levels·ks.
	ksTotal := ks + float64(levels)
	return log2(math.Pow(2, carried) + math.Pow(2, ksTotal))
}

// AfterPackDeferred bounds noise after the NTT-resident deferred tree
// (DESIGN.md §12): carried noise and per-merge key-switch noise double
// per level exactly as in AfterPack, but each merge charges only the
// deferred (a-side) rounding, and the single flush division adds one
// b-side rounding of at most 1/2 per coefficient — an O(1) term with no
// secret multiplication, since only the b polynomial is rounded.
// For any m this is ≤ AfterPack: deferring ModDown never costs noise.
func (e *Estimator) AfterPackDeferred(base float64, m int) float64 {
	levels := 0
	for v := 1; v < m; v <<= 1 {
		levels++
	}
	carried := base + float64(levels) // ×2 per level
	ksTotal := e.KeySwitchAdditiveDeferred() + float64(levels)
	flush := log2(e.Slack / 2) // single deferred b division rounds by ≤ 1/2
	return log2(math.Pow(2, carried) + math.Pow(2, ksTotal) + math.Pow(2, flush))
}

// HMVPOutput bounds the end-to-end noise of Alg. 1 with an m-row tile and
// full-range plaintext rows (bounded by t/2), using the deferred tree
// bound the pipeline actually runs.
func (e *Estimator) HMVPOutput(m int) float64 {
	fresh := e.FreshSym()
	mul := e.AfterMulPlain(fresh, float64(e.P.T.Q)/2)
	res := e.AfterRescale(mul)
	return e.AfterPackDeferred(res, m)
}

// HMVPPredictor returns a closure predicting the packed output noise of
// an HMVP over an m-row tile (the AfterMulPlain→AfterRescale→
// AfterPackDeferred chain of HMVPOutput) as a function of the INPUT
// ciphertext's noise bound. All parameter-dependent terms — the
// full-range plaintext bound t/2, the rescale constants, the deferred
// tree's key-switch total — are precomputed, so the closure itself
// performs no heap allocation: hot paths (the chamnp MatMul gate) can
// re-check the budget per call without breaking their 0-alloc warm
// invariant. Tests pin it bit-equal to the composed methods.
func (e *Estimator) HMVPPredictor(m int) func(base float64) float64 {
	mulBits := log2(float64(e.P.T.Q) / 2 * math.Sqrt(e.n()))
	logP := log2(float64(e.P.R.Moduli[e.P.R.Levels()-1].Q))
	round := log2(e.Slack * math.Sqrt(e.n()) / 2)
	levels := 0
	for v := 1; v < m; v <<= 1 {
		levels++
	}
	ksTotal := e.KeySwitchAdditiveDeferred() + float64(levels)
	flush := log2(e.Slack / 2)
	lv := float64(levels)
	return func(base float64) float64 {
		rescaled := maxF(base+mulBits-logP, round) + 0.5
		return log2(math.Pow(2, rescaled+lv) + math.Pow(2, ksTotal) + math.Pow(2, flush))
	}
}

// MaxPackRows returns the largest power-of-two tile that keeps the
// end-to-end HMVP noise below the decryption budget.
func (e *Estimator) MaxPackRows() int {
	best := 0
	for m := 1; m <= e.P.R.N; m <<= 1 {
		if e.HMVPOutput(m) < e.Budget(e.P.NormalLevels) {
			best = m
		}
	}
	return best
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
