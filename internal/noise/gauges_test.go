package noise

import (
	"testing"

	"cham/internal/core"
	"cham/internal/obs"
)

// TestPublishBudgetAndMeasure: the analytic stage gauges show positive
// headroom at CHAM parameters, and the measured output noise of a real
// HMVP sits below the analytic pack-stage estimate.
func TestPublishBudgetAndMeasure(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)
	prev := obs.On()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })

	const m = 64
	est.PublishBudget(m)
	for _, g := range []struct {
		name  string
		gauge interface{ Value() float64 }
	}{
		{"fresh", gFresh}, {"row_mul", gRowMul}, {"mod_down", gModDown}, {"pack", gPack},
	} {
		if v := g.gauge.Value(); v <= 0 {
			t.Errorf("stage %s: remaining budget %.1f bits, want positive headroom", g.name, v)
		}
	}

	ev, err := core.NewEvaluator(p, rng, sk, m)
	if err != nil {
		t.Fatal(err)
	}
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, p.R.N)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, p.R.N)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	res, err := ev.MatVec(A, core.EncryptVector(p, rng, sk, v))
	if err != nil {
		t.Fatal(err)
	}
	want := core.PlainMatVec(p, A, v)
	measured := 0.0
	for ti, ct := range res.Packed {
		lo, hi := ti*res.N, (ti+1)*res.N
		if hi > m {
			hi = m
		}
		if b := est.MeasureTile(ct, sk, want[lo:hi], res.TileRows(ti)); b > measured {
			measured = b
		}
	}
	PublishMeasured(measured)
	predicted := est.HMVPOutput(m)
	if measured > predicted {
		t.Errorf("measured output noise %.1f bits exceeds analytic bound %.1f", measured, predicted)
	}
	if measured <= 0 {
		t.Error("measured output noise is zero — measurement is not seeing the ciphertext")
	}
	if gMeasured.Value() != measured {
		t.Error("measured gauge not published")
	}
}
