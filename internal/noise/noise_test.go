package noise

import (
	"math/big"
	"math/rand"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/rlwe"
)

func testSetup(tb testing.TB, n int) (bfv.Params, *Estimator, *rand.Rand, *rlwe.SecretKey) {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	return p, New(p), rng, p.KeyGen(rng)
}

// checkBound asserts measured ≤ predicted and predicted is not wildly
// pessimistic (within `slackBits` of the measurement).
func checkBound(t *testing.T, name string, measured, predicted, slackBits float64) {
	t.Helper()
	if measured > predicted {
		t.Errorf("%s: measured %.1f bits exceeds prediction %.1f", name, measured, predicted)
	}
	if predicted > measured+slackBits {
		t.Errorf("%s: prediction %.1f bits is %.1f above measurement %.1f (too loose)",
			name, predicted, predicted-measured, measured)
	}
	t.Logf("%s: measured %.1f, predicted %.1f bits", name, measured, predicted)
}

func TestFreshNoiseBounds(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)
	ct := p.EncryptZeroSym(rng, sk, 2)
	checkBound(t, "fresh symmetric", p.NoiseBits(ct, sk, nil), est.FreshSym(), 6)

	pk := p.PublicKeyGen(rng, sk)
	ctPK := p.EncryptZeroPK(rng, pk, 2)
	checkBound(t, "fresh public-key", p.NoiseBits(ctPK, sk, nil), est.FreshPK(), 8)
}

func TestMulPlainAndRescaleBounds(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)

	vec := make([]uint64, p.R.N)
	row := make([]uint64, p.R.N)
	for i := range vec {
		vec[i] = rng.Uint64() % p.T.Q
		row[i] = rng.Uint64() % p.T.Q
	}
	pt := p.EncodeRow(row, 1)
	ctAug := p.Encrypt(rng, sk, p.EncodeVector(vec), 3)

	// Expected payload for noise measurement: Δ₃·(row * vec) / P rounded.
	prodCt := p.MulPlainRescale(ctAug, pt)
	want := expectedRescaledPayload(p, pt, p.EncodeVector(vec))
	measured := p.NoiseBits(prodCt, sk, want)

	mul := est.AfterMulPlain(est.FreshSym(), float64(p.T.Q)/2)
	predicted := est.AfterRescale(mul)
	checkBound(t, "mul+rescale", measured, predicted, 10)

	// The paper's point: the rescaled noise must sit far below the direct
	// (normal-basis) multiplication noise.
	if direct := est.AfterMulPlain(est.FreshSym(), float64(p.T.Q)/2); predicted >= direct {
		t.Errorf("rescale estimate %.1f not below direct-mul estimate %.1f", predicted, direct)
	}
}

func TestKeySwitchBound(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)
	sk2 := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, sk2.Value)
	ct := p.EncryptZeroSym(rng, sk2, 2)
	switched := p.KeySwitch(ct, swk)
	measured := p.NoiseBits(switched, sk, nil)
	predicted := est.KeySwitchAdditive() + 1 // plus the carried fresh noise
	checkBound(t, "key switch", measured, predicted, 8)
}

func TestPackBound(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)
	const m = 64
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*lwe.Ciphertext, m)
	mus := make([]uint64, m)
	for i := range cts {
		mus[i] = rng.Uint64() % p.T.Q
		ct := p.Encrypt(rng, sk, p.EncodeVector([]uint64{mus[i]}), 2)
		cts[i] = lwe.Extract(p, ct, 0)
	}
	packed, err := lwe.PackLWEs(p, cts, keys)
	if err != nil {
		t.Fatal(err)
	}
	// The phase at slot i·stride must be m·Δ·lift(μ_i) + noise; positions
	// between slots carry algorithmic garbage and are excluded (downstream
	// consumers never read them).
	phase := p.Phase(packed, sk)
	vals := p.R.ToBigIntCentered(phase, 2)
	delta := p.Delta(2)
	q := p.R.Modulus(2)
	half := new(big.Int).Rsh(q, 1)
	stride := lwe.SlotStride(p.R.N, m)
	measured := 0.0
	diff := new(big.Int)
	for i := 0; i < m; i++ {
		want := new(big.Int).Mul(delta, big.NewInt(p.T.CenterLift(mus[i])))
		want.Mul(want, big.NewInt(m))
		diff.Sub(vals[i*stride], want)
		diff.Mod(diff, q)
		if diff.Cmp(half) > 0 {
			diff.Sub(diff, q)
		}
		if b := float64(new(big.Int).Abs(diff).BitLen()); b > measured {
			measured = b
		}
	}
	predicted := est.AfterPack(est.FreshSym(), m)
	checkBound(t, "pack-64", measured, predicted, 12)
	// The tree runs the deferred ModDown schedule (DESIGN.md §12), so the
	// tighter deferred bound must also hold against the same measurement.
	checkBound(t, "pack-64 deferred", measured, est.AfterPackDeferred(est.FreshSym(), m), 12)
}

// TestDeferredModDownInvariant: deferring the b-part ModDown across tree
// levels never costs noise — for every tile size the deferred bound sits
// at or below the eager bound, and the end-to-end estimate (which uses
// the deferred schedule) still clears the decryption budget.
func TestDeferredModDownInvariant(t *testing.T) {
	p, est, _, _ := testSetup(t, 256)
	for m := 1; m <= p.R.N; m <<= 1 {
		fresh := est.FreshSym()
		eager := est.AfterPack(fresh, m)
		deferred := est.AfterPackDeferred(fresh, m)
		if deferred > eager+1e-9 {
			t.Errorf("m=%d: deferred bound %.2f exceeds eager bound %.2f", m, deferred, eager)
		}
		if out := est.HMVPOutput(m); out >= est.Budget(p.NormalLevels) {
			t.Errorf("m=%d: deferred HMVP estimate %.1f exceeds budget %.1f",
				m, out, est.Budget(p.NormalLevels))
		}
	}
}

// TestHMVPBudget: the end-to-end estimate stays below the decryption
// budget at every tile size — and real HMVPs at the extremes decrypt
// correctly (the functional proof).
func TestHMVPBudget(t *testing.T) {
	p, est, rng, sk := testSetup(t, 256)
	for m := 1; m <= p.R.N; m <<= 1 {
		if est.HMVPOutput(m) >= est.Budget(2) {
			t.Errorf("m=%d: estimated noise %.1f exceeds budget %.1f",
				m, est.HMVPOutput(m), est.Budget(2))
		}
	}
	if got := est.MaxPackRows(); got != p.R.N {
		t.Errorf("MaxPackRows = %d, want full N=%d at CHAM parameters", got, p.R.N)
	}
	// Functional check at the largest tile.
	ev, err := core.NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	A := make([][]uint64, p.R.N)
	for i := range A {
		A[i] = make([]uint64, p.R.N)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, p.R.N)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	res, err := ev.MatVec(A, core.EncryptVector(p, rng, sk, v))
	if err != nil {
		t.Fatal(err)
	}
	got := core.DecryptResult(p, res, sk)
	want := core.PlainMatVec(p, A, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full-tile HMVP wrong at %d", i)
		}
	}
}

// TestBudgetMatchesDesignDoc: the DESIGN.md §3 numbers — Δ ≈ 2^51 at the
// normal basis for t=65537.
func TestBudgetMatchesDesignDoc(t *testing.T) {
	_, est, _, _ := testSetup(t, 256)
	b := est.Budget(2)
	if b < 50 || b > 53 {
		t.Errorf("budget %.1f bits, DESIGN.md expects ≈ 51", b)
	}
}

// expectedRescaledPayload computes round(Δ₃·(a*b)/P) over the integers.
func expectedRescaledPayload(p bfv.Params, a, b *bfv.Plaintext) []*big.Int {
	n := p.R.N
	conv := make([]*big.Int, n)
	for i := range conv {
		conv[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < n; i++ {
		ai := p.T.CenterLift(a.Coeffs[i])
		if ai == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			bj := p.T.CenterLift(b.Coeffs[j])
			if bj == 0 {
				continue
			}
			tmp.SetInt64(ai)
			tmp.Mul(tmp, big.NewInt(bj))
			k := i + j
			if k < n {
				conv[k].Add(conv[k], tmp)
			} else {
				conv[k-n].Sub(conv[k-n], tmp)
			}
		}
	}
	delta3 := p.Delta(3)
	pBig := new(big.Int).SetUint64(p.R.Moduli[2].Q)
	half := new(big.Int).Rsh(pBig, 1)
	out := make([]*big.Int, n)
	for i, c := range conv {
		v := new(big.Int).Mul(delta3, c)
		v.Add(v, half)
		v.Div(v, pBig)
		out[i] = v
	}
	return out
}

// TestHMVPPredictorMatchesComposition: the precomputed allocation-free
// predictor must agree exactly with the composed method chain it
// specializes, for every tile size and a spread of input noise levels.
func TestHMVPPredictorMatchesComposition(t *testing.T) {
	p, est, _, _ := testSetup(t, 64)
	for m := 1; m <= p.R.N; m <<= 1 {
		pred := est.HMVPPredictor(m)
		for _, base := range []float64{est.FreshSym(), 10, 25.5, 60} {
			want := est.AfterPackDeferred(est.AfterRescale(est.AfterMulPlain(base, float64(p.T.Q)/2)), m)
			if got := pred(base); got != want {
				t.Fatalf("m=%d base=%.1f: predictor %v, composition %v", m, base, got, want)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = est.HMVPPredictor(64) }); allocs > 1 {
		t.Errorf("building the predictor allocates %.1f/op", allocs)
	}
	pred := est.HMVPPredictor(64)
	if allocs := testing.AllocsPerRun(100, func() { _ = pred(20) }); allocs != 0 {
		t.Errorf("predictor call allocates %.1f/op, want 0", allocs)
	}
}
