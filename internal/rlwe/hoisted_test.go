// Differential tests for the hoisted key-switch split against the big.Int
// reference model. External test package: internal/ref itself imports rlwe.
package rlwe_test

import (
	"encoding/binary"
	"testing"

	"cham/internal/mod"
	"cham/internal/ref"
	"cham/internal/ring"
	"cham/internal/rlwe"
	"cham/internal/testutil"
)

func hoistedParams(tb testing.TB, n int) rlwe.Params {
	tb.Helper()
	r, err := ring.New(n, mod.ChamModuli())
	if err != nil {
		tb.Fatal(err)
	}
	p, err := rlwe.NewParams(r, 2, 21)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func moduliValues(r *ring.Ring, levels int) []uint64 {
	out := make([]uint64, levels)
	for l := 0; l < levels; l++ {
		out[l] = r.Moduli[l].Q
	}
	return out
}

// TestKeySwitchHoistedMatchesRef: DecomposeInto + KeySwitchHoistedInto must
// reproduce the reference model's exact-arithmetic key switch bit for bit
// at every benchmarked ring degree — and ONE decomposition must serve
// several switching keys (the hoisting contract: the digit-NTTs depend
// only on the ciphertext, never on the key).
func TestKeySwitchHoistedMatchesRef(t *testing.T) {
	sizes := []int{256, 512}
	if !testing.Short() {
		sizes = append(sizes, 4096)
	}
	for _, n := range sizes {
		p := hoistedParams(t, n)
		r := p.R
		rng := testutil.NewRand(t)
		sk := p.KeyGen(rng)
		src := p.KeyGen(rng)
		full := moduliValues(r, r.Levels())
		normal := moduliValues(r, p.NormalLevels)

		// Two unrelated keys: a generic re-encryption key and an
		// automorphism key. The same decomposition drives both switches.
		swks := []*rlwe.SwitchingKey{
			p.SwitchingKeyGen(rng, sk, src.Value),
			p.AutomorphismKeyGen(rng, sk, 5),
		}

		a := r.NewPoly(p.NormalLevels)
		r.UniformPoly(rng, a)
		refA := ref.Compose(a, normal)

		dec := p.GetDecomposition()
		p.DecomposeInto(dec, a)
		for ki, swk := range swks {
			outB := r.NewPoly(p.NormalLevels)
			outA := r.NewPoly(p.NormalLevels)
			p.KeySwitchHoistedInto(outB, outA, dec, swk)

			refSwk := ref.ComposeSwitchingKey(r, swk, full)
			wantB, wantA := ref.KeySwitch(refA, refSwk, full, p.NormalLevels)
			for name, pair := range map[string]struct {
				got  *ring.Poly
				want *ref.Poly
			}{"b": {outB, wantB}, "a": {outA, wantA}} {
				rows := ref.Decompose(pair.want, normal)
				for l := range rows {
					for i := range rows[l] {
						if pair.got.Coeffs[l][i] != rows[l][i] {
							t.Fatalf("N=%d key %d part %s limb %d coeff %d: hoisted %d, reference %d",
								n, ki, name, l, i, pair.got.Coeffs[l][i], rows[l][i])
						}
					}
				}
			}
		}
		p.PutDecomposition(dec)
	}
}

// TestKeySwitchIntoMatchesHoisted: the one-shot KeySwitchInto wrapper and
// an explicitly hoisted switch must agree (including when out aliases ct —
// the aliasing case the pooled b-copy exists for).
func TestKeySwitchIntoMatchesHoisted(t *testing.T) {
	p := hoistedParams(t, 256)
	r := p.R
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	src := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, src.Value)

	ct := &rlwe.Ciphertext{B: r.NewPoly(p.NormalLevels), A: r.NewPoly(p.NormalLevels)}
	r.UniformPoly(rng, ct.B)
	r.UniformPoly(rng, ct.A)

	want := &rlwe.Ciphertext{B: r.NewPoly(p.NormalLevels), A: r.NewPoly(p.NormalLevels)}
	dec := p.GetDecomposition()
	p.DecomposeInto(dec, ct.A)
	p.KeySwitchHoistedInto(want.B, want.A, dec, swk)
	p.PutDecomposition(dec)
	r.Add(want.B, want.B, ct.B)

	p.KeySwitchInto(ct, ct, swk) // aliased in-place switch
	for l := 0; l < p.NormalLevels; l++ {
		for i := 0; i < r.N; i++ {
			if ct.B.Coeffs[l][i] != want.B.Coeffs[l][i] || ct.A.Coeffs[l][i] != want.A.Coeffs[l][i] {
				t.Fatalf("limb %d coeff %d: aliased KeySwitchInto diverges from hoisted path", l, i)
			}
		}
	}
}

// TestDecomposeNTTMatchesDecompose: feeding the same polynomial through
// DecomposeNTTInto (NTT-domain input, identity rows copied, only cross
// rows transformed) must yield bit-identical digits to DecomposeInto on
// the coefficient form.
func TestDecomposeNTTMatchesDecompose(t *testing.T) {
	for _, n := range []int{32, 256} {
		p := hoistedParams(t, n)
		r := p.R
		rng := testutil.NewRand(t)
		a := r.NewPoly(p.NormalLevels)
		r.UniformPoly(rng, a)

		want := p.GetDecomposition()
		p.DecomposeInto(want, a)

		aN := a.Copy()
		r.NTT(aN)
		got := p.GetDecomposition()
		p.DecomposeNTTInto(got, aN)

		for j := 0; j < p.NormalLevels; j++ {
			if !got.Digits[j].Equal(want.Digits[j]) {
				t.Fatalf("N=%d digit %d: DecomposeNTTInto != DecomposeInto", n, j)
			}
		}
		p.PutDecomposition(want)
		p.PutDecomposition(got)
	}
}

// TestKeySwitchAccumulateMatchesHoisted: the deferred NTT-resident
// completion (KeySwitchAccumulateNTT + ring.ModDownNTTInto chain on both
// parts) must reproduce KeySwitchHoistedInto bit for bit once flushed.
func TestKeySwitchAccumulateMatchesHoisted(t *testing.T) {
	p := hoistedParams(t, 256)
	r := p.R
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	swk := p.AutomorphismKeyGen(rng, sk, 5)

	a := r.NewPoly(p.NormalLevels)
	r.UniformPoly(rng, a)

	wantB := r.NewPoly(p.NormalLevels)
	wantA := r.NewPoly(p.NormalLevels)
	dec := p.GetDecomposition()
	p.DecomposeInto(dec, a)
	p.KeySwitchHoistedInto(wantB, wantA, dec, swk)
	r.NTT(wantB)
	r.NTT(wantA)
	p.PutDecomposition(dec)

	full := r.Levels()
	aN := a.Copy()
	r.NTT(aN)
	btAcc := r.NewPoly(full)
	btAcc.Zero()
	btAcc.IsNTT = true
	c1 := r.NewPoly(full)
	c1.IsNTT = true
	dec = p.GetDecomposition()
	p.DecomposeNTTInto(dec, aN)
	p.KeySwitchAccumulateNTT(btAcc, c1, dec, swk)
	p.PutDecomposition(dec)

	gotB := r.NewPoly(p.NormalLevels)
	gotA := r.NewPoly(p.NormalLevels)
	for _, pair := range []struct{ out, in *ring.Poly }{{gotB, btAcc}, {gotA, c1}} {
		cur := pair.in
		for cur.Levels() > p.NormalLevels+1 {
			next := r.NewPoly(cur.Levels() - 1)
			r.ModDownNTTInto(next, cur)
			cur = next
		}
		r.ModDownNTTInto(pair.out, cur)
	}
	if !gotB.Equal(wantB) || !gotA.Equal(wantA) {
		t.Fatal("deferred NTT-resident key switch diverges from KeySwitchHoistedInto")
	}
}

// FuzzDecomposeHoisted drives the branch-free lazy digit-decomposition
// sweep against a naive branchy centred lift followed by the strict
// forward transform: identical digits for arbitrary inputs.
func FuzzDecomposeHoisted(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 3, 1, 4, 1, 5, 9, 2, 6})
	const fuzzN = 32
	f.Fuzz(func(t *testing.T, data []byte) {
		p := hoistedParams(t, fuzzN)
		r := p.R
		a := r.NewPoly(p.NormalLevels)
		for l := range a.Coeffs {
			q := r.Moduli[l].Q
			for i := range a.Coeffs[l] {
				var w [8]byte
				off := (l*fuzzN + i) * 8
				if off < len(data) {
					copy(w[:], data[off:])
				}
				a.Coeffs[l][i] = binary.LittleEndian.Uint64(w[:]) % q
			}
		}

		dec := p.GetDecomposition()
		defer p.PutDecomposition(dec)
		p.DecomposeInto(dec, a)

		lv := r.Levels()
		for j := 0; j < p.NormalLevels; j++ {
			qj := r.Moduli[j].Q
			half := qj / 2
			for l := 0; l < lv; l++ {
				ql := r.Moduli[l].Q
				want := make([]uint64, fuzzN)
				for i, x := range a.Coeffs[j] {
					if l == j {
						want[i] = x
					} else if x > half {
						// centred lift of a negative digit: x - q_j mod q_l
						want[i] = (x%ql + ql - qj%ql) % ql
					} else {
						want[i] = x % ql
					}
				}
				r.Tables[l].Forward(want)
				for i := range want {
					if got := dec.Digits[j].Coeffs[l][i]; got != want[i] {
						t.Fatalf("digit %d limb %d coeff %d: lazy decompose %d, naive %d",
							j, l, i, got, want[i])
					}
				}
			}
		}
	})
}
