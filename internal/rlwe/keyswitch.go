package rlwe

import (
	"math/big"
	"math/rand"

	"cham/internal/ring"
)

// Hybrid (RNS-decomposed) key switching with a special modulus, the scheme
// implied by CHAM's parameter choice p ≥ q_i (39-bit special vs 35-bit
// ciphertext limbs). A switching key from s' to s holds one digit per
// normal limb:
//
//	B_j = -A_j·s + P·ê_j·s' + E_j   over the full basis (NTT domain),
//
// where P is the product of the special limbs and ê_j is the CRT idempotent
// of Q (ê_j ≡ 1 mod q_j, ≡ 0 mod q_i for i≠j). Switching decomposes the
// ciphertext's a-part into its centred RNS digits d_j = [a]_{q_j}, so the
// digit magnitude is ≤ q_j/2 and the post-rescale noise is
// ~ √N·q_max·e/(2P) — a few bits at CHAM's sizes.

// SwitchingKeyGen produces a key that re-encrypts phases under srcKey
// (coefficient domain, full basis) to the params' secret key sk.
func (p Params) SwitchingKeyGen(rng *rand.Rand, sk *SecretKey, srcKey *ring.Poly) *SwitchingKey {
	if !p.HasSpecialModulus() {
		panic("rlwe: key switching requires a special modulus")
	}
	r := p.R
	lv := r.Levels()

	pBig := big.NewInt(1)
	for _, q := range p.SpecialModuli() {
		pBig.Mul(pBig, new(big.Int).SetUint64(q))
	}
	qBig := r.Modulus(p.NormalLevels)

	srcNTT := srcKey.Copy()
	r.NTT(srcNTT)

	swk := &SwitchingKey{
		Bs: make([]*ring.Poly, p.NormalLevels),
		As: make([]*ring.Poly, p.NormalLevels),
	}
	for j := 0; j < p.NormalLevels; j++ {
		a := r.NewPoly(lv)
		r.UniformPoly(rng, a)
		a.IsNTT = true
		e := r.NewPoly(lv)
		r.CBDPoly(rng, e, p.Eta)
		r.NTT(e)

		// w_j = P·ê_j, with ê_j = (Q/q_j)·[(Q/q_j)^-1 mod q_j] mod Q.
		qj := new(big.Int).SetUint64(r.Moduli[j].Q)
		qOver := new(big.Int).Quo(qBig, qj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qOver, qj), qj)
		eHat := new(big.Int).Mul(qOver, inv)
		eHat.Mod(eHat, qBig)
		w := eHat.Mul(eHat, pBig)

		term := r.NewPoly(lv)
		r.MulScalarBig(term, srcNTT, w)

		b := r.NewPoly(lv)
		r.MulCoeff(b, a, sk.ValueNTT)
		r.Neg(b, b)
		r.Add(b, b, e)
		r.Add(b, b, term)
		swk.Bs[j], swk.As[j] = b, a
	}
	swk.Precompute(r)
	return swk
}

// AutomorphismKeyGen produces the switching key for the automorphism
// X -> X^k, i.e. from φ_k(s) back to s.
func (p Params) AutomorphismKeyGen(rng *rand.Rand, sk *SecretKey, k int) *SwitchingKey {
	phiS := p.R.NewPoly(p.R.Levels())
	p.R.Automorph(phiS, sk.Value, k)
	return p.SwitchingKeyGen(rng, sk, phiS)
}

// KeySwitch converts a normal-basis coefficient-domain ciphertext whose
// phase decrypts under some source key into one decrypting under the
// params' key, using the matching switching key. This is the paper's
// KEYSWITCH stage (the tail of PACKTWOLWES, pipeline stages 5~9).
func (p Params) KeySwitch(ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	out := &Ciphertext{
		B: p.R.NewPoly(p.NormalLevels),
		A: p.R.NewPoly(p.NormalLevels),
	}
	p.KeySwitchInto(out, ct, swk)
	return out
}

// AutomorphCt applies X -> X^k to the ciphertext and key-switches the
// result back under the original key. swk must be the key produced by
// AutomorphismKeyGen(·, k). Input and output are normal-basis,
// coefficient-domain ciphertexts.
func (p Params) AutomorphCt(ct *Ciphertext, k int, swk *SwitchingKey) *Ciphertext {
	out := &Ciphertext{
		B: p.R.NewPoly(p.NormalLevels),
		A: p.R.NewPoly(p.NormalLevels),
	}
	p.AutomorphCtInto(out, ct, k, swk)
	return out
}

// NoiseBits returns log2 of the largest absolute difference between the
// ciphertext's phase and the expected payload (given as centred big-int
// coefficients): the consumed noise budget. Returns a negative value for
// an exact match.
func (p Params) NoiseBits(ct *Ciphertext, sk *SecretKey, want []*big.Int) float64 {
	r := p.R
	ph := p.Phase(ct, sk)
	got := r.ToBigIntCentered(ph, ct.Levels())
	q := r.Modulus(ct.Levels())
	half := new(big.Int).Rsh(q, 1)
	max := new(big.Int)
	d := new(big.Int)
	for i := range got {
		d.Set(got[i])
		if i < len(want) {
			d.Sub(d, want[i])
		}
		d.Mod(d, q)
		if d.Cmp(half) > 0 {
			d.Sub(d, q)
		}
		d.Abs(d)
		if d.Cmp(max) > 0 {
			max.Set(d)
		}
	}
	if max.Sign() == 0 {
		return -1
	}
	return float64(max.BitLen())
}
