// Package rlwe implements the RLWE encryption layer CHAM builds on:
// secret/public keys, symmetric and public-key encryption, decryption,
// automorphisms, and GHS-style key switching with a special modulus
// (the paper's 39-bit p). Plaintext encoding/decoding lives in package bfv.
//
// Ciphertexts are pairs (b, a) with b = -a·s + (payload) + e, so the phase
// b + a·s recovers payload + noise. The RNS basis is the ring's modulus
// chain with the special modulus as the last limb; "normal" ciphertexts
// live in the basis prefix without it, "augmented" ones (§II-F) include it.
//
// The random source is an injectable *rand.Rand so that tests and
// benchmarks are reproducible. This prototype is NOT hardened for
// production key material (no constant-time guarantees, no CSPRNG).
package rlwe

import (
	"fmt"
	"math/rand"

	"cham/internal/ring"
)

// Params fixes the ring and noise distribution.
type Params struct {
	R *ring.Ring
	// NormalLevels is the number of limbs of a normal (non-augmented)
	// ciphertext; the remaining limbs form the special modulus basis.
	// CHAM: 2 normal limbs {q0,q1} + 1 special limb {p}.
	NormalLevels int
	// Eta is the centred-binomial noise parameter (variance eta/2).
	Eta int
}

// NewParams validates and returns Params.
func NewParams(r *ring.Ring, normalLevels, eta int) (Params, error) {
	if normalLevels < 1 || normalLevels > r.Levels() {
		return Params{}, fmt.Errorf("rlwe: normalLevels %d out of range [1,%d]", normalLevels, r.Levels())
	}
	if eta < 1 {
		return Params{}, fmt.Errorf("rlwe: eta must be positive")
	}
	return Params{R: r, NormalLevels: normalLevels, Eta: eta}, nil
}

// HasSpecialModulus reports whether the basis includes special limbs.
func (p Params) HasSpecialModulus() bool { return p.NormalLevels < p.R.Levels() }

// SpecialModulus returns the product of the special limbs as uint64 factors.
func (p Params) SpecialModuli() []uint64 {
	var out []uint64
	for _, m := range p.R.Moduli[p.NormalLevels:] {
		out = append(out, m.Q)
	}
	return out
}

// SecretKey holds the ternary secret in coefficient domain (Value) and NTT
// domain (ValueNTT), both over the full basis.
type SecretKey struct {
	Value    *ring.Poly
	ValueNTT *ring.Poly
}

// PublicKey is an encryption of zero over the full basis, NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts a phase under source key s' to the target key s.
// It holds one RNS digit per normal limb (see keyswitch.go):
// Bs[j] = -As[j]·s + P·ê_j·s' + E_j over the full basis, NTT domain.
//
// BsShoup/AsShoup are the per-coefficient Shoup companion words of Bs/As
// (the key is a fixed multiplicand in every switch), filled by Precompute;
// the hot path falls back to Barrett multiplies when they are absent.
type SwitchingKey struct {
	Bs, As           []*ring.Poly
	BsShoup, AsShoup [][][]uint64
}

// Ciphertext is an RLWE pair. Both polynomials always share level count and
// domain.
type Ciphertext struct {
	B, A *ring.Poly
}

// Levels returns the number of RNS limbs of the ciphertext.
func (ct *Ciphertext) Levels() int { return ct.B.Levels() }

// IsNTT reports the ciphertext domain.
func (ct *Ciphertext) IsNTT() bool { return ct.B.IsNTT }

// Copy deep-copies the ciphertext.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{B: ct.B.Copy(), A: ct.A.Copy()}
}

// KeyGen samples a fresh ternary secret key.
func (p Params) KeyGen(rng *rand.Rand) *SecretKey {
	s := p.R.NewPoly(p.R.Levels())
	p.R.TernaryPoly(rng, s)
	sn := s.Copy()
	p.R.NTT(sn)
	return &SecretKey{Value: s, ValueNTT: sn}
}

// PublicKeyGen derives a public key (an encryption of zero on the full
// basis).
func (p Params) PublicKeyGen(rng *rand.Rand, sk *SecretKey) *PublicKey {
	lv := p.R.Levels()
	a := p.R.NewPoly(lv)
	p.R.UniformPoly(rng, a)
	a.IsNTT = true // uniform in either domain; declare NTT
	e := p.R.NewPoly(lv)
	p.R.CBDPoly(rng, e, p.Eta)
	p.R.NTT(e)
	b := p.R.NewPoly(lv)
	p.R.MulCoeff(b, a, sk.ValueNTT)
	p.R.Neg(b, b)
	p.R.Add(b, b, e)
	return &PublicKey{B: b, A: a}
}

// EncryptZeroSym returns a symmetric encryption of zero with `levels` limbs
// in coefficient domain: (b, a) = (-a·s + e, a).
func (p Params) EncryptZeroSym(rng *rand.Rand, sk *SecretKey, levels int) *Ciphertext {
	r := p.R
	a := r.NewPoly(levels)
	r.UniformPoly(rng, a)
	a.IsNTT = true
	e := r.NewPoly(levels)
	r.CBDPoly(rng, e, p.Eta)
	r.NTT(e)
	b := r.NewPoly(levels)
	skTrunc := truncate(sk.ValueNTT, levels)
	r.MulCoeff(b, a, skTrunc)
	r.Neg(b, b)
	r.Add(b, b, e)
	ct := &Ciphertext{B: b, A: a}
	ctINTT(r, ct)
	return ct
}

// EncryptZeroPK returns a public-key encryption of zero with `levels` limbs
// in coefficient domain: (b, a) = (pk.B·u + e0, pk.A·u + e1).
func (p Params) EncryptZeroPK(rng *rand.Rand, pk *PublicKey, levels int) *Ciphertext {
	r := p.R
	u := r.NewPoly(levels)
	r.TernaryPoly(rng, u)
	r.NTT(u)
	e0 := r.NewPoly(levels)
	r.CBDPoly(rng, e0, p.Eta)
	r.NTT(e0)
	e1 := r.NewPoly(levels)
	r.CBDPoly(rng, e1, p.Eta)
	r.NTT(e1)

	b := r.NewPoly(levels)
	r.MulCoeff(b, truncate(pk.B, levels), u)
	r.Add(b, b, e0)
	a := r.NewPoly(levels)
	r.MulCoeff(a, truncate(pk.A, levels), u)
	r.Add(a, a, e1)
	ct := &Ciphertext{B: b, A: a}
	ctINTT(r, ct)
	return ct
}

// Phase returns b + a·s over the ciphertext's limbs, in coefficient domain:
// the noisy payload.
func (p Params) Phase(ct *Ciphertext, sk *SecretKey) *ring.Poly {
	r := p.R
	levels := ct.Levels()
	a := ct.A.Copy()
	b := ct.B.Copy()
	if !a.IsNTT {
		r.NTT(a)
	}
	prod := r.NewPoly(levels)
	r.MulCoeff(prod, a, truncate(sk.ValueNTT, levels))
	r.INTT(prod)
	if b.IsNTT {
		r.INTT(b)
	}
	out := r.NewPoly(levels)
	r.Add(out, b, prod)
	return out
}

// truncate returns a view of p limited to the first `levels` limbs.
func truncate(p *ring.Poly, levels int) *ring.Poly {
	if p.Levels() == levels {
		return p
	}
	if p.Levels() < levels {
		panic("rlwe: not enough limbs")
	}
	return &ring.Poly{Coeffs: p.Coeffs[:levels], IsNTT: p.IsNTT}
}

// ctINTT moves both halves to coefficient domain.
func ctINTT(r *ring.Ring, ct *Ciphertext) {
	if ct.B.IsNTT {
		r.INTT(ct.B)
	}
	if ct.A.IsNTT {
		r.INTT(ct.A)
	}
}

// Add sets out = ct0 + ct1 component-wise. Operands must share levels and
// domain; out may alias either operand.
func (p Params) Add(out, ct0, ct1 *Ciphertext) {
	p.R.Add(out.B, ct0.B, ct1.B)
	p.R.Add(out.A, ct0.A, ct1.A)
}

// Sub sets out = ct0 - ct1 component-wise.
func (p Params) Sub(out, ct0, ct1 *Ciphertext) {
	p.R.Sub(out.B, ct0.B, ct1.B)
	p.R.Sub(out.A, ct0.A, ct1.A)
}

// MulPlainNTT multiplies the ciphertext (NTT domain) by a plaintext
// polynomial already in NTT domain — pipeline stage 2 (MULTPOLY).
func (p Params) MulPlainNTT(out, ct *Ciphertext, pt *ring.Poly) {
	p.R.MulCoeff(out.B, ct.B, pt)
	p.R.MulCoeff(out.A, ct.A, pt)
}

// MulMonomial multiplies the ciphertext by X^e (coefficient domain).
func (p Params) MulMonomial(out, ct *Ciphertext, e int) {
	p.R.MulMonomial(out.B, ct.B, e)
	p.R.MulMonomial(out.A, ct.A, e)
}

// Rescale divides an augmented ciphertext by the special modulus with
// rounding (RESCALE, pipeline stage 4), returning a normal-basis
// ciphertext. Input must be in coefficient domain with full levels.
func (p Params) Rescale(ct *Ciphertext) *Ciphertext {
	out := &Ciphertext{
		B: p.R.NewPoly(p.NormalLevels),
		A: p.R.NewPoly(p.NormalLevels),
	}
	p.RescaleInto(out, ct)
	return out
}
