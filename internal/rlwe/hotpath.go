package rlwe

// Allocation-free variants of the key-switching pipeline. The *Into forms
// write into caller-owned ciphertexts and draw every temporary from the
// ring's buffer pool, so a warm PACKTWOLWES / KEYSWITCH chain touches the
// heap zero times. The switching key's Shoup companion tables (Precompute)
// halve the cost of the digit·key MULTPOLY accumulation, the dominant
// multiply count of stages 5–9.

import (
	"sync"

	"cham/internal/ring"
)

// ctShells recycles Ciphertext headers; the polynomial buffers they carry
// come from the ring's own pool. Shells are ring-agnostic (two pointers),
// so one process-wide pool is safe.
var ctShells sync.Pool

// GetCiphertext borrows a pooled ciphertext with the given limb count.
// Coefficients are ARBITRARY; see ring.GetPoly. Release with PutCiphertext.
func (p Params) GetCiphertext(levels int) *Ciphertext {
	ct, ok := ctShells.Get().(*Ciphertext)
	if !ok {
		ct = &Ciphertext{}
	}
	ct.B = p.R.GetPoly(levels)
	ct.A = p.R.GetPoly(levels)
	return ct
}

// PutCiphertext returns a ciphertext obtained from GetCiphertext to the
// pool. The caller must not use ct afterwards.
func (p Params) PutCiphertext(ct *Ciphertext) {
	if ct == nil {
		return
	}
	p.R.PutPoly(ct.B)
	p.R.PutPoly(ct.A)
	ct.B, ct.A = nil, nil
	ctShells.Put(ct)
}

// Precompute fills the switching key's Shoup companion tables. KeyGen does
// this automatically; call it after deserializing a key. Safe to call more
// than once; not safe concurrently with use of the key.
func (k *SwitchingKey) Precompute(r *ring.Ring) {
	if k.BsShoup != nil {
		return
	}
	bs := make([][][]uint64, len(k.Bs))
	as := make([][][]uint64, len(k.As))
	for j := range k.Bs {
		bs[j] = r.ShoupPrecompPoly(k.Bs[j])
		as[j] = r.ShoupPrecompPoly(k.As[j])
	}
	k.BsShoup, k.AsShoup = bs, as
}

// CopyFrom copies o into ct. Level counts must match.
func (ct *Ciphertext) CopyFrom(o *Ciphertext) {
	ct.B.CopyFrom(o.B)
	ct.A.CopyFrom(o.A)
}

// KeySwitchInto is KeySwitch writing into a caller-owned normal-basis
// ciphertext. out may alias ct. Internally this is the hoisted pipeline
// with a pooled one-shot decomposition (see hoisted.go).
func (p Params) KeySwitchInto(out, ct *Ciphertext, swk *SwitchingKey) {
	if ct.IsNTT() {
		panic("rlwe: KeySwitch requires coefficient domain")
	}
	if ct.Levels() != p.NormalLevels || out.Levels() != p.NormalLevels {
		panic("rlwe: KeySwitch requires normal-basis ciphertexts")
	}
	r := p.R
	b := r.GetPoly(p.NormalLevels)
	b.CopyFrom(ct.B) // out may alias ct; keep b across the switch
	dec := p.GetDecomposition()
	p.DecomposeInto(dec, ct.A)
	p.KeySwitchHoistedInto(out.B, out.A, dec, swk)
	p.PutDecomposition(dec)
	r.Add(out.B, out.B, b)
	r.PutPoly(b)
}

// AutomorphCtInto is AutomorphCt writing into a caller-owned ciphertext:
// out = KeySwitch(φ_k(ct)). out may alias ct.
func (p Params) AutomorphCtInto(out, ct *Ciphertext, k int, swk *SwitchingKey) {
	r := p.R
	if ct.IsNTT() {
		panic("rlwe: AutomorphCt requires coefficient domain")
	}
	if ct.Levels() != p.NormalLevels || out.Levels() != p.NormalLevels {
		panic("rlwe: AutomorphCt requires normal-basis ciphertexts")
	}
	phiB := r.GetPoly(ct.Levels())
	phiA := r.GetPoly(ct.Levels())
	r.Automorph(phiB, ct.B, k)
	r.Automorph(phiA, ct.A, k)
	// (φb, φa) decrypts under φ(s); switch from φ(s) back to s, then add
	// the permuted b which rides along unchanged.
	dec := p.GetDecomposition()
	p.DecomposeInto(dec, phiA)
	p.KeySwitchHoistedInto(out.B, out.A, dec, swk)
	p.PutDecomposition(dec)
	r.Add(out.B, out.B, phiB)
	r.PutPoly(phiB)
	r.PutPoly(phiA)
}

// RescaleInto is Rescale writing into a caller-owned normal-basis
// ciphertext, pooling any intermediate levels.
func (p Params) RescaleInto(out, ct *Ciphertext) {
	r := p.R
	if ct.Levels() != r.Levels() {
		panic("rlwe: Rescale requires an augmented ciphertext")
	}
	if out.Levels() != p.NormalLevels {
		panic("rlwe: Rescale output must be normal basis")
	}
	b, a := ct.B, ct.A
	for b.Levels() > p.NormalLevels+1 {
		nb := r.GetPoly(b.Levels() - 1)
		na := r.GetPoly(a.Levels() - 1)
		r.ModDownInto(nb, b)
		r.ModDownInto(na, a)
		if b != ct.B {
			r.PutPoly(b)
			r.PutPoly(a)
		}
		b, a = nb, na
	}
	r.ModDownInto(out.B, b)
	r.ModDownInto(out.A, a)
	if b != ct.B {
		r.PutPoly(b)
		r.PutPoly(a)
	}
}
