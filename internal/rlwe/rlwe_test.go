package rlwe

import (
	"math/big"
	"math/rand"
	"testing"

	"cham/internal/mod"
	"cham/internal/ring"
	"cham/internal/testutil"
)

// testParams returns CHAM-moduli params at degree n.
func testParams(tb testing.TB, n int) Params {
	tb.Helper()
	r, err := ring.New(n, mod.ChamModuli())
	if err != nil {
		tb.Fatal(err)
	}
	p, err := NewParams(r, 2, 21)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestNewParamsValidation(t *testing.T) {
	r := ring.MustNew(16, mod.ChamModuli())
	if _, err := NewParams(r, 0, 21); err == nil {
		t.Error("normalLevels=0 accepted")
	}
	if _, err := NewParams(r, 4, 21); err == nil {
		t.Error("normalLevels>levels accepted")
	}
	if _, err := NewParams(r, 2, 0); err == nil {
		t.Error("eta=0 accepted")
	}
	p, err := NewParams(r, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasSpecialModulus() {
		t.Error("full-basis params should have no special modulus")
	}
}

func TestSpecialModuli(t *testing.T) {
	p := testParams(t, 16)
	sp := p.SpecialModuli()
	if len(sp) != 1 || sp[0] != mod.ChamP {
		t.Fatalf("SpecialModuli = %v, want [%d]", sp, uint64(mod.ChamP))
	}
}

// TestEncryptZeroPhaseIsSmall: the phase of a fresh encryption of zero must
// be bounded by the noise distribution.
func TestEncryptZeroPhaseIsSmall(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	for _, levels := range []int{2, 3} {
		ct := p.EncryptZeroSym(rng, sk, levels)
		if ct.IsNTT() {
			t.Fatal("fresh ciphertext should be in coefficient domain")
		}
		if bits := p.NoiseBits(ct, sk, nil); bits > 12 {
			t.Errorf("levels=%d: fresh symmetric noise %f bits, want small", levels, bits)
		}
	}
	pk := p.PublicKeyGen(rng, sk)
	ct := p.EncryptZeroPK(rng, pk, 3)
	if bits := p.NoiseBits(ct, sk, nil); bits > 16 {
		t.Errorf("fresh public-key noise %f bits, want small", bits)
	}
}

// TestPhasePayload: adding a payload into b must surface in the phase.
func TestPhasePayload(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ct := p.EncryptZeroSym(rng, sk, 2)

	payload := make([]*big.Int, p.R.N)
	vals := p.R.NewPoly(2)
	centered := make([]int64, p.R.N)
	for i := range centered {
		centered[i] = int64(i*977) % 100000
		payload[i] = big.NewInt(centered[i])
	}
	p.R.SetCentered(vals, centered)
	p.R.Add(ct.B, ct.B, vals)

	if bits := p.NoiseBits(ct, sk, payload); bits > 12 {
		t.Errorf("payload not recovered: residual %f bits", bits)
	}
	// And against the wrong payload it must NOT match.
	if bits := p.NoiseBits(ct, sk, nil); bits < 12 {
		t.Errorf("phase unexpectedly small without payload: %f bits", bits)
	}
}

func TestAddSubHomomorphism(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	mk := func(seed int64) (*Ciphertext, []*big.Int) {
		ct := p.EncryptZeroSym(rng, sk, 2)
		vals := make([]int64, p.R.N)
		r2 := rand.New(rand.NewSource(seed))
		for i := range vals {
			vals[i] = int64(r2.Intn(1 << 20))
		}
		pl := p.R.NewPoly(2)
		p.R.SetCentered(pl, vals)
		p.R.Add(ct.B, ct.B, pl)
		bigs := make([]*big.Int, len(vals))
		for i, v := range vals {
			bigs[i] = big.NewInt(v)
		}
		return ct, bigs
	}
	ct0, m0 := mk(10)
	ct1, m1 := mk(11)

	sum := &Ciphertext{B: p.R.NewPoly(2), A: p.R.NewPoly(2)}
	p.Add(sum, ct0, ct1)
	wantSum := make([]*big.Int, len(m0))
	for i := range m0 {
		wantSum[i] = new(big.Int).Add(m0[i], m1[i])
	}
	if bits := p.NoiseBits(sum, sk, wantSum); bits > 13 {
		t.Errorf("Add: residual %f bits", bits)
	}

	diff := &Ciphertext{B: p.R.NewPoly(2), A: p.R.NewPoly(2)}
	p.Sub(diff, ct0, ct1)
	wantDiff := make([]*big.Int, len(m0))
	for i := range m0 {
		wantDiff[i] = new(big.Int).Sub(m0[i], m1[i])
	}
	if bits := p.NoiseBits(diff, sk, wantDiff); bits > 13 {
		t.Errorf("Sub: residual %f bits", bits)
	}
}

// TestKeySwitchRoundTrip: encrypt under sk2, switch to sk1, verify the
// phase is preserved up to small noise.
func TestKeySwitchRoundTrip(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk1 := p.KeyGen(rng)
	sk2 := p.KeyGen(rng)

	// Ciphertext under sk2 with an embedded payload.
	pOther := p
	ctUnder2 := pOther.EncryptZeroSym(rng, sk2, 2)
	vals := make([]int64, p.R.N)
	for i := range vals {
		vals[i] = int64((i*31 + 7) % (1 << 22))
	}
	pl := p.R.NewPoly(2)
	p.R.SetCentered(pl, vals)
	p.R.Add(ctUnder2.B, ctUnder2.B, pl)
	want := make([]*big.Int, len(vals))
	for i, v := range vals {
		want[i] = big.NewInt(v)
	}

	swk := p.SwitchingKeyGen(rng, sk1, sk2.Value)
	ctUnder1 := p.KeySwitch(ctUnder2, swk)

	if bits := p.NoiseBits(ctUnder1, sk1, want); bits > 30 {
		t.Errorf("key switch residual %f bits (budget ~51)", bits)
	}
	// Sanity: it must NOT decrypt under the old key.
	if bits := p.NoiseBits(ctUnder1, sk2, want); bits < 40 {
		t.Errorf("switched ciphertext still decrypts under source key (%f bits)", bits)
	}
}

// TestAutomorphCt: applying X->X^k homomorphically must act on the payload
// polynomial exactly as ring.Automorph does.
func TestAutomorphCt(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	ct := p.EncryptZeroSym(rng, sk, 2)
	vals := make([]int64, p.R.N)
	for i := range vals {
		vals[i] = int64(i % 1024)
	}
	pl := p.R.NewPoly(2)
	p.R.SetCentered(pl, vals)
	p.R.Add(ct.B, ct.B, pl)

	for _, k := range []int{3, p.R.N + 1, 2*p.R.N - 1} {
		swk := p.AutomorphismKeyGen(rng, sk, k)
		ctK := p.AutomorphCt(ct, k, swk)

		phiPl := p.R.NewPoly(2)
		p.R.Automorph(phiPl, pl, k)
		want := p.R.ToBigIntCentered(phiPl, 2)
		if bits := p.NoiseBits(ctK, sk, want); bits > 30 {
			t.Errorf("k=%d: automorphism residual %f bits", k, bits)
		}
	}
}

func TestKeySwitchGuards(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, sk.Value)

	augmented := p.EncryptZeroSym(rng, sk, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KeySwitch accepted augmented ciphertext")
			}
		}()
		p.KeySwitch(augmented, swk)
	}()

	nttCt := p.EncryptZeroSym(rng, sk, 2)
	p.R.NTT(nttCt.B)
	p.R.NTT(nttCt.A)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KeySwitch accepted NTT-domain ciphertext")
			}
		}()
		p.KeySwitch(nttCt, swk)
	}()

	rFull := ring.MustNew(16, mod.ChamModuli())
	pFull, _ := NewParams(rFull, 3, 21)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SwitchingKeyGen without special modulus accepted")
			}
		}()
		pFull.SwitchingKeyGen(rng, sk, sk.Value)
	}()
}

// TestRescaleDividesPayload: an augmented ciphertext carrying payload P·m
// must, after Rescale, carry payload ≈ m.
func TestRescaleDividesPayload(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	ct := p.EncryptZeroSym(rng, sk, 3)
	vals := make([]int64, p.R.N)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	pl := p.R.NewPoly(3)
	p.R.SetCentered(pl, vals)
	pBig := new(big.Int).SetUint64(mod.ChamP)
	p.R.MulScalarBig(pl, pl, pBig)
	p.R.Add(ct.B, ct.B, pl)

	rescaled := p.Rescale(ct)
	if rescaled.Levels() != 2 {
		t.Fatalf("rescaled levels = %d, want 2", rescaled.Levels())
	}
	want := make([]*big.Int, len(vals))
	for i, v := range vals {
		want[i] = big.NewInt(v)
	}
	// Noise was ~e before; now ~e/P + rounding, i.e. essentially gone.
	if bits := p.NoiseBits(rescaled, sk, want); bits > 3 {
		t.Errorf("rescale residual %f bits", bits)
	}
}

func TestCiphertextCopy(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ct := p.EncryptZeroSym(rng, sk, 2)
	cp := ct.Copy()
	cp.B.Coeffs[0][0] ^= 1
	if ct.B.Coeffs[0][0] == cp.B.Coeffs[0][0] {
		t.Error("Copy aliases the original")
	}
	if ct.Levels() != 2 || cp.Levels() != 2 {
		t.Error("levels wrong")
	}
}

// TestMulPlainNTT: multiplying an encryption of m by plaintext u must give
// an encryption of m·u (ring product), with noise scaled by |u|·N.
func TestMulPlainNTT(t *testing.T) {
	p := testParams(t, 256)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	ct := p.EncryptZeroSym(rng, sk, 3)
	msg := make([]int64, p.R.N)
	for i := range msg {
		msg[i] = int64(i%251) << 30 // sizeable payload so noise stays relatively small
	}
	pl := p.R.NewPoly(3)
	p.R.SetCentered(pl, msg)
	p.R.Add(ct.B, ct.B, pl)

	// Small plaintext multiplier u.
	uVals := make([]int64, p.R.N)
	for i := range uVals {
		uVals[i] = int64(i % 17)
	}
	u := p.R.NewPoly(3)
	p.R.SetCentered(u, uVals)
	uNTT := u.Copy()
	p.R.NTT(uNTT)

	ctN := ct.Copy()
	p.R.NTT(ctN.B)
	p.R.NTT(ctN.A)
	out := &Ciphertext{B: p.R.NewPoly(3), A: p.R.NewPoly(3)}
	p.MulPlainNTT(out, ctN, uNTT)
	p.R.INTT(out.B)
	p.R.INTT(out.A)

	// Expected payload: ring product pl·u over the integers mod Q.
	prod := p.R.NewPoly(3)
	p.R.MulPoly(prod, pl, u)
	want := p.R.ToBigIntCentered(prod, 3)
	// Noise grew to ~|u|·N·e ≈ 17·256·21 ≈ 2^17.
	if bits := p.NoiseBits(out, sk, want); bits > 22 {
		t.Errorf("MulPlain residual %f bits", bits)
	}
}

// TestMultiSpecialLimbChain exercises the generic-parameter path the CHAM
// set never hits: a 5-limb chain with TWO special moduli. Rescale must
// drop both, and key switching must divide by their product.
func TestMultiSpecialLimbChain(t *testing.T) {
	primes, err := mod.NTTFriendlyPrimes(30, 128, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.New(128, primes)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(r, 3, 21) // 3 normal + 2 special limbs
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SpecialModuli()) != 2 {
		t.Fatalf("%d special limbs", len(p.SpecialModuli()))
	}
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	// Rescale: payload P·m over the full basis comes back as ≈ m.
	ct := p.EncryptZeroSym(rng, sk, 5)
	vals := make([]int64, r.N)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	pl := r.NewPoly(5)
	r.SetCentered(pl, vals)
	pBig := new(big.Int).SetUint64(primes[3])
	pBig.Mul(pBig, new(big.Int).SetUint64(primes[4]))
	r.MulScalarBig(pl, pl, pBig)
	r.Add(ct.B, ct.B, pl)
	rescaled := p.Rescale(ct)
	if rescaled.Levels() != 3 {
		t.Fatalf("rescaled to %d limbs, want 3", rescaled.Levels())
	}
	want := make([]*big.Int, len(vals))
	for i, v := range vals {
		want[i] = big.NewInt(v)
	}
	if bits := p.NoiseBits(rescaled, sk, want); bits > 4 {
		t.Errorf("two-limb rescale residual %f bits", bits)
	}

	// Key switching across the 2-special-limb basis.
	sk2 := p.KeyGen(rng)
	swk := p.SwitchingKeyGen(rng, sk, sk2.Value)
	ct2 := p.EncryptZeroSym(rng, sk2, 3)
	r.Add(ct2.B, ct2.B, truncate(plFromInts(p, vals), 3))
	switched := p.KeySwitch(ct2, swk)
	if bits := p.NoiseBits(switched, sk, want); bits > 25 {
		t.Errorf("two-limb key-switch residual %f bits", bits)
	}
}

// plFromInts builds a full-basis payload polynomial from centred ints.
func plFromInts(p Params, vals []int64) *ring.Poly {
	pl := p.R.NewPoly(p.R.Levels())
	p.R.SetCentered(pl, vals)
	return pl
}
