package rlwe

// Hoisted key switching. A key switch splits into two halves with very
// different reuse behaviour:
//
//   1. digit decomposition of the a-part — centred RNS lifts to the full
//      basis plus one forward NTT per digit and limb — which depends only
//      on the ciphertext, and
//   2. the digit·key MULTPOLY accumulation, inverse transforms, and
//      ModDown, which depend on the switching key.
//
// DecomposeInto materializes half 1 as a first-class, pooled artifact so
// callers can pay it once and reuse it: across the two key operands of one
// switch (c0 and c1 share the digit-NTTs by construction), across several
// switching keys applied to the same ciphertext (BSGS rotation batteries),
// and — as pooled scratch — across all merges a worker executes at one
// pack-tree level, which keeps the digit buffers cache-resident instead of
// bouncing through the pool per merge.
//
// The decomposition sweep itself is branch-free and lazy: row `digit` is
// the identity, and every other limb gets ReduceBarrett(x) plus a masked
// 2q-q_d correction, leaving representatives in [0, 3q) that feed straight
// into the batched lazy forward NTT (which tolerates anything below 4q and
// emits canonical residues). The digit pair of each limb shares one
// twiddle sweep via ForwardBatch; KeySwitchHoistedInto likewise pairs the
// c0/c1 inverse transforms. Results are bit-identical to the strict
// per-digit schedule at every step.

import (
	"sync"

	"cham/internal/ring"
)

// Decomposition holds the RNS digit decomposition of one a-part in the
// full basis, NTT domain: Digits[j] = NTT(lift([a]_{q_j})). Obtain with
// GetDecomposition, fill with DecomposeInto, release with PutDecomposition.
type Decomposition struct {
	Digits []*ring.Poly
}

// decShells recycles Decomposition headers; the polynomial buffers come
// from the ring's pool (two pointers, ring-agnostic — one process-wide
// pool is safe, mirroring ctShells).
var decShells sync.Pool

// GetDecomposition borrows a pooled decomposition with one full-basis
// digit polynomial per normal limb. Contents are ARBITRARY until
// DecomposeInto fills them. Release with PutDecomposition.
func (p Params) GetDecomposition() *Decomposition {
	d, ok := decShells.Get().(*Decomposition)
	if !ok {
		d = &Decomposition{}
	}
	if cap(d.Digits) < p.NormalLevels {
		d.Digits = make([]*ring.Poly, p.NormalLevels)
	}
	d.Digits = d.Digits[:p.NormalLevels]
	lv := p.R.Levels()
	for j := range d.Digits {
		if d.Digits[j] == nil || d.Digits[j].Levels() != lv {
			d.Digits[j] = p.R.GetPoly(lv)
		}
	}
	return d
}

// PutDecomposition returns a decomposition obtained from GetDecomposition
// to the pool. The caller must not use d afterwards.
func (p Params) PutDecomposition(d *Decomposition) {
	if d == nil {
		return
	}
	for j := range d.Digits {
		p.R.PutPoly(d.Digits[j])
		d.Digits[j] = nil
	}
	decShells.Put(d)
}

// DecomposeInto fills dec with the digit decomposition of the normal-basis
// coefficient-domain polynomial a: for each normal limb j,
// dec.Digits[j] = NTT(lift_centred([a]_{q_j})) over the full basis.
// This is the ciphertext-dependent half of a key switch, hoisted out so it
// can be reused across switching keys (decomposition commutes with every
// key, and with automorphisms: D_j(φ_k(a)) = φ_k(D_j(a))).
func (p Params) DecomposeInto(dec *Decomposition, a *ring.Poly) {
	r := p.R
	lv := r.Levels()
	n := r.N
	for j := 0; j < p.NormalLevels; j++ {
		md := r.Moduli[j]
		src := a.Coeffs[j][:n]
		half := md.Q / 2
		out := dec.Digits[j]
		for l := 0; l < lv; l++ {
			if l == j {
				// The centred lift is the identity modulo its own limb.
				copy(out.Coeffs[l], src)
				continue
			}
			ml := r.Moduli[l]
			// negAdd ≡ -q_j (mod q_l), kept in (q_l, 2q_l] so the masked
			// add yields lazy representatives in [0, 3q_l) — within the
			// forward transform's 4q input headroom.
			negAdd := 2*ml.Q - ml.ReduceBarrett(md.Q)
			ro := out.Coeffs[l][:n]
			for i, x := range src {
				neg := uint64(int64(half-x) >> 63) // all ones iff x > half
				ro[i] = ml.ReduceBarrett(x) + (neg & negAdd)
			}
		}
		out.IsNTT = false
	}
	// Forward-transform all digits, pairing the digit rows of each limb
	// under one twiddle sweep.
	if p.NormalLevels == 2 {
		d0, d1 := dec.Digits[0], dec.Digits[1]
		for l := 0; l < lv; l++ {
			r.Tables[l].ForwardBatch(d0.Coeffs[l], d1.Coeffs[l])
		}
	} else {
		for l := 0; l < lv; l++ {
			j := 0
			for ; j+1 < p.NormalLevels; j += 2 {
				r.Tables[l].ForwardBatch(dec.Digits[j].Coeffs[l], dec.Digits[j+1].Coeffs[l])
			}
			if j < p.NormalLevels {
				r.Tables[l].ForwardBatch(dec.Digits[j].Coeffs[l])
			}
		}
	}
	for j := 0; j < p.NormalLevels; j++ {
		dec.Digits[j].IsNTT = true
	}
}

// DecomposeNTTInto is DecomposeInto for an NTT-resident a-part, the form
// the NTT-resident packing tree feeds it (DESIGN.md §12). Digit j's own
// limb row is a verbatim copy of a's NTT row (the centred lift is the
// identity modulo its own limb, and the transform of identical inputs is
// identical), so only the cross-limb rows pay transforms: one inverse per
// normal limb to recover the coefficient view the lifts read, then one
// forward per cross row, paired per limb under one twiddle sweep. For the
// CHAM basis that is 2 inverse + 4 forward row transforms versus the 6
// forward of the coefficient path — and the caller saved the 2-row inverse
// that used to produce the coefficient input in the first place.
func (p Params) DecomposeNTTInto(dec *Decomposition, a *ring.Poly) {
	r := p.R
	if !a.IsNTT {
		panic("rlwe: DecomposeNTTInto requires an NTT-domain input")
	}
	lv := r.Levels()
	n := r.N
	nl := p.NormalLevels
	cf := r.GetPoly(nl)
	for j := 0; j < nl; j++ {
		copy(cf.Coeffs[j][:n], a.Coeffs[j][:n])
		r.Tables[j].InverseLazy(cf.Coeffs[j])
	}
	for j := 0; j < nl; j++ {
		md := r.Moduli[j]
		src := cf.Coeffs[j][:n]
		half := md.Q / 2
		out := dec.Digits[j]
		for l := 0; l < lv; l++ {
			if l == j {
				copy(out.Coeffs[l][:n], a.Coeffs[j][:n])
				continue
			}
			ml := r.Moduli[l]
			negAdd := 2*ml.Q - ml.ReduceBarrett(md.Q)
			ro := out.Coeffs[l][:n]
			for i, x := range src {
				neg := uint64(int64(half-x) >> 63) // all ones iff x > half
				ro[i] = ml.ReduceBarrett(x) + (neg & negAdd)
			}
		}
	}
	r.PutPoly(cf)
	// Forward-transform only the cross-limb rows, pairing rows that share
	// a limb (and hence a twiddle table) under one sweep.
	for l := 0; l < lv; l++ {
		var pend []uint64
		for j := 0; j < nl; j++ {
			if j == l {
				continue
			}
			row := dec.Digits[j].Coeffs[l]
			if pend == nil {
				pend = row
				continue
			}
			r.Tables[l].ForwardBatch(pend, row)
			pend = nil
		}
		if pend != nil {
			r.Tables[l].ForwardLazy(pend)
		}
	}
	for j := 0; j < nl; j++ {
		dec.Digits[j].IsNTT = true
	}
}

// KeySwitchAccumulateNTT is the NTT-resident completion of a key switch
// with the ModDown deferred: it accumulates the b-part products straight
// into the caller's full-basis NTT accumulator (btAcc += Σ_j dec_j ∘ B_j)
// and overwrites c1 with the a-part sum (c1 = Σ_j dec_j ∘ A_j). Nothing is
// inverted or rescaled here — the caller owns the c1 ModDown (see
// ring.ModDownNTTAddInto) and flushes btAcc's division once per tree.
// btAcc and c1 must be full-basis NTT-domain polynomials.
func (p Params) KeySwitchAccumulateNTT(btAcc, c1 *ring.Poly, dec *Decomposition, swk *SwitchingKey) {
	r := p.R
	shoup := swk.BsShoup != nil
	if p.NormalLevels == 2 && shoup {
		// The two-digit CHAM basis runs fused: each accumulator row is
		// written once per sweep instead of once per digit.
		d0, d1 := dec.Digits[0], dec.Digits[1]
		r.MulCoeffShoupPairAdd(btAcc, d0, swk.Bs[0], swk.BsShoup[0], d1, swk.Bs[1], swk.BsShoup[1])
		r.MulCoeffShoupPair(c1, d0, swk.As[0], swk.AsShoup[0], d1, swk.As[1], swk.AsShoup[1])
		return
	}
	for j := 0; j < p.NormalLevels; j++ {
		d := dec.Digits[j]
		switch {
		case j == 0 && shoup:
			r.MulCoeffShoupAdd(btAcc, d, swk.Bs[0], swk.BsShoup[0])
			r.MulCoeffShoup(c1, d, swk.As[0], swk.AsShoup[0])
		case shoup:
			r.MulCoeffShoupAdd(btAcc, d, swk.Bs[j], swk.BsShoup[j])
			r.MulCoeffShoupAdd(c1, d, swk.As[j], swk.AsShoup[j])
		case j == 0:
			r.MulCoeffAdd(btAcc, d, swk.Bs[0])
			r.MulCoeff(c1, d, swk.As[0])
		default:
			r.MulCoeffAdd(btAcc, d, swk.Bs[j])
			r.MulCoeffAdd(c1, d, swk.As[j])
		}
	}
}

// KeySwitchHoistedInto completes a key switch from a prepared digit
// decomposition: (outB, outA) receive the normal-basis coefficient-domain
// switched a-part contribution ModDown(INTT(Σ_j dec_j ∘ K_j)); the caller
// adds the ciphertext's b-part. outB/outA must be normal-basis polys.
// All temporaries are pooled; the c0/c1 inverse transforms of each limb
// share one twiddle sweep.
func (p Params) KeySwitchHoistedInto(outB, outA *ring.Poly, dec *Decomposition, swk *SwitchingKey) {
	r := p.R
	lv := r.Levels()
	c0 := r.GetPoly(lv)
	c1 := r.GetPoly(lv)
	shoup := swk.BsShoup != nil
	for j := 0; j < p.NormalLevels; j++ {
		d := dec.Digits[j]
		switch {
		case j == 0 && shoup:
			r.MulCoeffShoup(c0, d, swk.Bs[0], swk.BsShoup[0])
			r.MulCoeffShoup(c1, d, swk.As[0], swk.AsShoup[0])
		case shoup:
			r.MulCoeffShoupAdd(c0, d, swk.Bs[j], swk.BsShoup[j])
			r.MulCoeffShoupAdd(c1, d, swk.As[j], swk.AsShoup[j])
		case j == 0:
			r.MulCoeff(c0, d, swk.Bs[0])
			r.MulCoeff(c1, d, swk.As[0])
		default:
			r.MulCoeffAdd(c0, d, swk.Bs[j])
			r.MulCoeffAdd(c1, d, swk.As[j])
		}
	}
	for l := 0; l < lv; l++ {
		r.Tables[l].InverseBatch(c0.Coeffs[l], c1.Coeffs[l])
	}
	c0.IsNTT, c1.IsNTT = false, false

	// Divide by the special modulus (rounding) back to the normal basis.
	b, av := c0, c1
	for b.Levels() > p.NormalLevels+1 {
		nb := r.GetPoly(b.Levels() - 1)
		na := r.GetPoly(av.Levels() - 1)
		r.ModDownInto(nb, b)
		r.ModDownInto(na, av)
		if b != c0 {
			r.PutPoly(b)
			r.PutPoly(av)
		}
		b, av = nb, na
	}
	r.ModDownInto(outB, b)
	r.ModDownInto(outA, av)
	if b != c0 {
		r.PutPoly(b)
		r.PutPoly(av)
	}
	r.PutPoly(c0)
	r.PutPoly(c1)
}
