package chamnp

// RemoteBackend runs MatMul against a matrix held by a chamserve server
// (or a chamcluster gateway — the wire surface is identical): the lanes
// travel as Apply requests over the pooled client connection and the
// packed results come back over the wire. The local/remote split is
// invisible to MatMul — same Backend interface, same bit-exact output.

import (
	"fmt"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/rlwe"
	"cham/internal/wire"
)

// RemoteBackend is a MatMul backend whose prepared matrix lives behind
// a CHAM serving endpoint.
type RemoteBackend struct {
	cl *client.Client
	h  wire.MatrixHandle
	p  bfv.Params
}

// Remote wraps a registered matrix handle as a MatMul backend. The
// client must talk to the endpoint that issued the handle (and that
// already holds the packing keys for this secret).
func Remote(cl *client.Client, h wire.MatrixHandle, p bfv.Params) *RemoteBackend {
	return &RemoteBackend{cl: cl, h: h, p: p}
}

// Rows returns the prepared matrix's row count.
func (r *RemoteBackend) Rows() int { return int(r.h.Rows) }

// Cols returns the prepared matrix's column count.
func (r *RemoteBackend) Cols() int { return int(r.h.Cols) }

// Chunks returns the vector ciphertexts expected per lane.
func (r *RemoteBackend) Chunks() int { return int(r.h.Chunks) }

// NewResult allocates a Result shaped like the server's replies, so
// MatMulInto can copy them into caller-owned storage.
func (r *RemoteBackend) NewResult() *core.Result {
	res := &core.Result{M: r.Rows(), N: r.p.R.N, Packed: make([]*rlwe.Ciphertext, int(r.h.Tiles))}
	for i := range res.Packed {
		res.Packed[i] = &rlwe.Ciphertext{B: r.p.R.NewPoly(r.p.NormalLevels), A: r.p.R.NewPoly(r.p.NormalLevels)}
	}
	return res
}

// ApplyBatchInto sends one Apply round trip per lane and copies the
// packed replies into the caller's Results. The whole batch is
// validated up front — shapes come from the handle, so misuse fails
// before the first network write.
func (r *RemoteBackend) ApplyBatchInto(res []*core.Result, vecs [][]*rlwe.Ciphertext) error {
	if len(vecs) == 0 {
		return fmt.Errorf("%w: empty batch", core.ErrVectorLength)
	}
	if len(res) != len(vecs) {
		return fmt.Errorf("%w: batch has %d vectors but %d result slots", core.ErrResultShape, len(vecs), len(res))
	}
	for k, vec := range vecs {
		if len(vec) != r.Chunks() {
			return fmt.Errorf("batch vector %d: %w: matrix has %d column chunks but vector has %d ciphertexts",
				k, core.ErrVectorLength, r.Chunks(), len(vec))
		}
		if res[k] == nil || len(res[k].Packed) != int(r.h.Tiles) {
			return fmt.Errorf("batch result %d: %w: want %d tiles (allocate with NewResult)",
				k, core.ErrResultShape, r.h.Tiles)
		}
	}
	for k, vec := range vecs {
		wr, err := r.cl.Apply(r.h.ID, vec)
		if err != nil {
			return fmt.Errorf("batch vector %d: %w", k, err)
		}
		if len(wr.Packed) != len(res[k].Packed) {
			return fmt.Errorf("batch result %d: %w: server returned %d tiles, want %d",
				k, core.ErrResultShape, len(wr.Packed), len(res[k].Packed))
		}
		for ti, ct := range wr.Packed {
			res[k].Packed[ti].CopyFrom(ct)
		}
		res[k].M, res[k].N = int(wr.M), int(wr.N)
	}
	return nil
}
