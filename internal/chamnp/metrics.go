package chamnp

import (
	"errors"
	"time"

	"cham/internal/obs"
)

// Telemetry handles for the array tier, resolved once at package init.
// Per-op latency lives in its own cham_np_op_seconds family; the HMVP
// kernels running underneath MatMul/MatVec keep reporting into the
// existing cham_hmvp_stage_seconds taxonomy (and the apply/error
// families) exactly as a direct core call would — chamnp adds a view,
// it does not fork the stage accounting.
const (
	opArray = iota
	opDecrypt
	opAdd
	opSub
	opScalarMul
	opAddVector
	opCumSum
	opSquare
	opMatMul
	opMatVec
	numOps
)

var opNames = [numOps]string{
	"array", "decrypt", "add", "sub", "scalar_mul",
	"add_vector", "cumsum", "square_recrypt", "matmul", "matvec",
}

var (
	opHists = func() [numOps]*obs.Histogram {
		var hs [numOps]*obs.Histogram
		for i := range hs {
			hs[i] = obs.GetHistogram("cham_np_op_seconds",
				"chamnp array-op latency.", obs.DefBuckets, "op", opNames[i])
		}
		return hs
	}()
	opCounts = func() [numOps]*obs.Counter {
		var cs [numOps]*obs.Counter
		for i := range cs {
			cs[i] = obs.GetCounter("cham_np_ops_total",
				"Completed chamnp array ops.", "op", opNames[i])
		}
		return cs
	}()
	mLanes = obs.GetCounter("cham_np_lanes_total",
		"HMVP lanes (column blocks) driven through MatMul/MatVec backends.")
	gNoise = obs.GetGauge("cham_np_noise_bits",
		"Analytic noise bound (bits) of the last chamnp op's output.")
)

// startOp opens one op's telemetry window; the returned func closes it,
// publishing latency, count, and the output's noise gauge. With
// telemetry off both halves are no-ops (one atomic load).
func startOp(op int) func(out *EncMatrix) {
	if !obs.On() {
		return func(*EncMatrix) {}
	}
	t0 := time.Now()
	return func(out *EncMatrix) {
		opHists[op].Observe(time.Since(t0).Seconds())
		opCounts[op].Inc()
		if out != nil {
			gNoise.Set(out.noise)
		}
	}
}

const npErrHelp = "chamnp API errors by misuse class."

var npErrClasses = []struct {
	sentinel error
	counter  *obs.Counter
}{
	{ErrEmpty, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "empty")},
	{ErrShape, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "shape")},
	{ErrRagged, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "ragged")},
	{ErrAxisLayout, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "axis_layout")},
	{ErrPackedOperand, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "packed_operand")},
	{ErrEncodingMix, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "encoding_mix")},
	{ErrNoiseBudget, obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "noise_budget")},
}

var npErrOther = obs.GetCounter("cham_np_errors_total", npErrHelp, "class", "other")

// countNpErr attributes err to its class counter and passes it through
// unchanged; nil-safe and a no-op with telemetry disabled. Backend
// errors (core sentinels) land in "other" here but are already counted
// per class by cham_hmvp_errors_total.
func countNpErr(err error) error {
	if err == nil || !obs.On() {
		return err
	}
	for _, ec := range npErrClasses {
		if errors.Is(err, ec.sentinel) {
			ec.counter.Inc()
			return err
		}
	}
	npErrOther.Inc()
	return err
}
