// Package chamnp is the numpy-style encrypted-array tier over the CHAM
// HMVP engine: EncMatrix/EncVector arrays of B/FV ciphertexts with
// Array/MatMul/Add/CumSum/Decrypt ergonomics (the openfhe-numpy
// `onp.array / cumsum / @` surface, rebuilt on coefficient encoding).
//
// Layout is the load-bearing convention. An EncMatrix stores one
// coefficient-encoded ciphertext vector per LANE — its rows (RowMajor)
// or its columns (ColMajor). An HMVP computes W·v for an encrypted v,
// so one prepared cleartext matrix W serves both layouts of the same
// encrypted X without ever being transposed:
//
//	ColMajor X (lanes = columns):  MatMul(W, X) = W·X        (ColMajor)
//	RowMajor X (lanes = rows):     MatMul(W, X) = X·Wᵀ       (RowMajor)
//
// and Transpose is free: it only flips the layout label.
//
// Arrays carry one of two encodings. Dense arrays (from Array/Vector)
// hold each lane as ⌈len/N⌉ augmented-basis ciphertexts with value j at
// coefficient j — the only encoding MatMul accepts as input. Packed
// arrays (MatMul output) hold each lane as a packed HMVP Result whose
// values sit at strided slots. Add/Sub/ScalarMul/AddVector/CumSum work
// on both; crossing back from packed to dense is an interactive
// re-encryption (Recrypt/SquareRecrypt — the Delphi-style oracle the
// inference demo uses for its non-linear layers, since B/FV without
// relinearization has no ciphertext×ciphertext product).
//
// Every op updates an analytic noise bound (internal/noise) carried on
// the array, and MatMul refuses up front (ErrNoiseBudget) when the
// predicted output noise would cross the decryption budget. Op latency
// lands in cham_np_op_seconds; the kernels underneath report into the
// existing cham_hmvp_stage_seconds taxonomy unchanged.
package chamnp

import (
	"fmt"
	"math/rand"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/noise"
	"cham/internal/rlwe"
)

// Layout selects which axis of the cleartext matrix becomes the
// encrypted lanes.
type Layout int

const (
	// RowMajor encrypts each row as one coefficient-encoded vector.
	RowMajor Layout = iota
	// ColMajor encrypts each column as one coefficient-encoded vector.
	ColMajor
)

func (l Layout) String() string {
	if l == ColMajor {
		return "col-major"
	}
	return "row-major"
}

// EncVector is one encrypted vector: dense (coefficient-encoded chunks)
// or packed (an HMVP result with values at strided slots).
type EncVector struct {
	p      bfv.Params
	n      int                // logical length
	chunks []*rlwe.Ciphertext // dense encoding; nil when packed
	packed *core.Result       // packed encoding; nil when dense
	noise  float64            // analytic ∞-norm bound, bits
}

// Len returns the vector's logical length.
func (v *EncVector) Len() int { return v.n }

// Packed reports whether the vector carries the packed HMVP encoding.
func (v *EncVector) Packed() bool { return v.packed != nil }

// NoiseBits returns the analytic noise bound carried by the vector.
func (v *EncVector) NoiseBits() float64 { return v.noise }

// EncMatrix is an encrypted rows×cols matrix stored as one EncVector
// per lane of the chosen layout. All lanes share an encoding and the
// noise bound tracks the worst lane.
type EncMatrix struct {
	p          bfv.Params
	rows, cols int
	layout     Layout
	lanes      []*EncVector
	noise      float64

	// Caches for the allocation-free MatMul hot path: the lane chunk
	// slices (inputs) and packed results (outputs) in backend-call form.
	// Lanes are immutable after construction, so building these once is
	// safe; a warm MatMulInto then allocates nothing.
	vecsCache [][]*rlwe.Ciphertext
	resCache  []*core.Result
	// Noise-gate cache for MatMulInto destinations: the allocation-free
	// HMVP predictor and the normal-basis budget, built on first use so
	// the per-call budget check stays off the heap.
	predictCache func(float64) float64
	budgetCache  float64
}

// Dims returns (rows, cols).
func (m *EncMatrix) Dims() (rows, cols int) { return m.rows, m.cols }

// Layout returns the lane layout.
func (m *EncMatrix) Layout() Layout { return m.layout }

// Packed reports whether the matrix carries the packed HMVP encoding.
func (m *EncMatrix) Packed() bool { return len(m.lanes) > 0 && m.lanes[0].Packed() }

// NoiseBits returns the analytic noise bound (bits) of the worst lane.
func (m *EncMatrix) NoiseBits() float64 { return m.noise }

// BudgetBits returns the decryption noise ceiling for the basis the
// matrix currently lives in (augmented while dense, normal once packed).
func (m *EncMatrix) BudgetBits() float64 {
	est := noise.New(m.p)
	if m.Packed() {
		return est.Budget(m.p.NormalLevels)
	}
	return est.Budget(m.p.R.Levels())
}

// Lanes returns the lane count (rows for RowMajor, cols for ColMajor).
func (m *EncMatrix) Lanes() int { return len(m.lanes) }

// laneLen returns the logical length of every lane.
func (m *EncMatrix) laneLen() int {
	if m.layout == ColMajor {
		return m.rows
	}
	return m.cols
}

// T returns the transpose as a zero-cost view: the same lanes under the
// flipped layout label. The view shares ciphertexts with m — treat both
// as immutable (every op here already returns fresh arrays).
func (m *EncMatrix) T() *EncMatrix {
	flipped := RowMajor
	if m.layout == RowMajor {
		flipped = ColMajor
	}
	return &EncMatrix{p: m.p, rows: m.cols, cols: m.rows, layout: flipped,
		lanes: m.lanes, noise: m.noise, vecsCache: m.vecsCache, resCache: m.resCache}
}

// Vector encrypts v as a dense EncVector (⌈len/N⌉ augmented chunks).
func Vector(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, v []uint64) (*EncVector, error) {
	if len(v) == 0 {
		return nil, fmt.Errorf("%w (no elements)", ErrEmpty)
	}
	return &EncVector{
		p:      p,
		n:      len(v),
		chunks: core.EncryptVector(p, rng, sk, v),
		noise:  noise.New(p).FreshSym(),
	}, nil
}

// Array encrypts the cleartext matrix under the given layout: one
// coefficient-encoded vector per row (RowMajor) or per column
// (ColMajor). Values are reduced mod t.
func Array(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, data [][]uint64, layout Layout) (*EncMatrix, error) {
	done := startOp(opArray)
	m, err := array(p, rng, sk, data, layout)
	if err != nil {
		return nil, countNpErr(err)
	}
	done(m)
	return m, nil
}

func array(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, data [][]uint64, layout Layout) (*EncMatrix, error) {
	rows := len(data)
	if rows == 0 || len(data[0]) == 0 {
		return nil, fmt.Errorf("%w (no rows or no columns)", ErrEmpty)
	}
	cols := len(data[0])
	for i := range data {
		if len(data[i]) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrRagged, i, len(data[i]), cols)
		}
	}
	fresh := noise.New(p).FreshSym()
	out := &EncMatrix{p: p, rows: rows, cols: cols, layout: layout, noise: fresh}
	if layout == ColMajor {
		col := make([]uint64, rows)
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				col[i] = data[i][j]
			}
			out.lanes = append(out.lanes, &EncVector{
				p: p, n: rows, chunks: core.EncryptVector(p, rng, sk, col), noise: fresh})
		}
	} else {
		for i := 0; i < rows; i++ {
			out.lanes = append(out.lanes, &EncVector{
				p: p, n: cols, chunks: core.EncryptVector(p, rng, sk, data[i]), noise: fresh})
		}
	}
	return out, nil
}

// Decrypt reads the vector back: coefficient j per dense chunk, or the
// strided result slots of the packed encoding.
func (v *EncVector) Decrypt(sk *rlwe.SecretKey) []uint64 {
	if v.packed != nil {
		return core.DecryptResult(v.p, v.packed, sk)
	}
	out := make([]uint64, 0, v.n)
	for _, ct := range v.chunks {
		pt := v.p.Decrypt(ct, sk)
		take := v.n - len(out)
		if take > v.p.R.N {
			take = v.p.R.N
		}
		out = append(out, pt.Coeffs[:take]...)
	}
	return out
}

// Decrypt reads the full matrix back as row-major cleartext, whatever
// the layout and encoding.
func (m *EncMatrix) Decrypt(sk *rlwe.SecretKey) [][]uint64 {
	done := startOp(opDecrypt)
	out := make([][]uint64, m.rows)
	for i := range out {
		out[i] = make([]uint64, m.cols)
	}
	for li, lane := range m.lanes {
		vals := lane.Decrypt(sk)
		if m.layout == ColMajor {
			for i, x := range vals {
				out[i][li] = x
			}
		} else {
			copy(out[li], vals)
		}
	}
	done(m)
	return out
}

// Recrypt is the interactive refresh oracle: decrypt with the secret
// key, apply f to every cleartext entry (nil f is the identity), and
// re-encrypt dense under the same layout with fresh noise. This models
// the client-side hop of hybrid protocols — it is how a packed MatMul
// output becomes a dense input for the next layer, and how non-linear
// activations run (see SquareRecrypt).
func (m *EncMatrix) Recrypt(rng *rand.Rand, sk *rlwe.SecretKey, f func(uint64) uint64) (*EncMatrix, error) {
	data := m.Decrypt(sk)
	if f != nil {
		for i := range data {
			for j := range data[i] {
				data[i][j] = f(data[i][j])
			}
		}
	}
	return Array(m.p, rng, sk, data, m.layout)
}

// SquareRecrypt is the square activation x ↦ x² mod t as an interactive
// layer (Recrypt with squaring) — the polynomial activation of
// CryptoNets-style private inference.
func (m *EncMatrix) SquareRecrypt(rng *rand.Rand, sk *rlwe.SecretKey) (*EncMatrix, error) {
	done := startOp(opSquare)
	out, err := m.Recrypt(rng, sk, func(x uint64) uint64 {
		r := m.p.T.Reduce(x)
		return m.p.T.Mul(r, r)
	})
	if err != nil {
		return nil, err
	}
	done(out)
	return out, nil
}
