package chamnp

import (
	"errors"
	"net"
	"testing"

	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/ref"
	"cham/internal/rlwe"
	"cham/internal/server"
	"cham/internal/testutil"
)

// TestRemoteBackendMatchesLocal: a MatMul routed through a loopback
// chamserve server is BIT-identical to the in-process path when both
// run on the same packing keys — same Backend interface, same packed
// ciphertexts — and both decrypt to the exact reference product.
func TestRemoteBackendMatchesLocal(t *testing.T) {
	p, rng, sk, _ := setup(t, 64)

	s, err := server.New(server.Config{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { ln.Close() })

	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Params: p})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SetupKeys(keys); err != nil {
		t.Fatal(err)
	}
	// The local evaluator runs on the SAME keys the server holds, so the
	// two paths are byte-for-byte the same computation.
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		t.Fatal(err)
	}

	W := testutil.Matrix(rng, 40, 96, p.T.Q) // multi-chunk: 2 ciphertexts per lane
	h, err := cl.RegisterMatrix(W)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}
	rb := Remote(cl, h, p)
	if rb.Rows() != pm.Rows() || rb.Cols() != pm.Cols() || rb.Chunks() != pm.Chunks() {
		t.Fatalf("handle shape %dx%d/%d differs from prepared %dx%d/%d",
			rb.Rows(), rb.Cols(), rb.Chunks(), pm.Rows(), pm.Cols(), pm.Chunks())
	}

	for _, layout := range []Layout{ColMajor, RowMajor} {
		var X [][]uint64
		if layout == ColMajor {
			X = testutil.Matrix(rng, 96, 3, p.T.Q)
		} else {
			X = testutil.Matrix(rng, 3, 96, p.T.Q)
		}
		xm, err := Array(p, rng, sk, X, layout)
		if err != nil {
			t.Fatal(err)
		}
		local, err := MatMul(Local(pm), xm)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := MatMul(rb, xm)
		if err != nil {
			t.Fatal(err)
		}
		if !packedEqual(local, remote) {
			t.Fatalf("%s: remote packed ciphertexts differ from local", layout)
		}
		var want [][]uint64
		if layout == ColMajor {
			want, err = ref.MatMul(p.T.Q, W, X)
		} else {
			want, err = ref.MatMul(p.T.Q, X, ref.Transpose(W))
		}
		if err != nil {
			t.Fatal(err)
		}
		eqMat(t, layout.String()+" remote", remote.Decrypt(sk), want)
	}

	// Misuse fails up front with the core sentinels, before any network
	// write: a short vector and a misshaped result slice.
	bad := [][]*rlwe.Ciphertext{{nil}}
	if err := rb.ApplyBatchInto([]*core.Result{rb.NewResult()}, bad); !errors.Is(err, core.ErrVectorLength) {
		t.Errorf("short vector: err = %v, want ErrVectorLength", err)
	}
	goodVec := core.EncryptVector(p, rng, sk, testutil.Vector(rng, 96, p.T.Q))
	if err := rb.ApplyBatchInto([]*core.Result{nil}, [][]*rlwe.Ciphertext{goodVec}); !errors.Is(err, core.ErrResultShape) {
		t.Errorf("nil result: err = %v, want ErrResultShape", err)
	}
	if err := rb.ApplyBatchInto(nil, nil); !errors.Is(err, core.ErrVectorLength) {
		t.Errorf("empty batch: err = %v, want ErrVectorLength", err)
	}
}
