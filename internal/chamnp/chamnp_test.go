package chamnp

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/ref"
	"cham/internal/rlwe"
	"cham/internal/testutil"

	"math/rand"
)

func setup(tb testing.TB, n int) (bfv.Params, *rand.Rand, *rlwe.SecretKey, *core.Evaluator) {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	rng := testutil.NewRand(tb)
	sk := p.KeyGen(rng)
	ev, err := core.NewEvaluator(p, rng, sk, p.R.N)
	if err != nil {
		tb.Fatal(err)
	}
	return p, rng, sk, ev
}

func eqMat(tb testing.TB, name string, got, want [][]uint64) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				tb.Fatalf("%s: [%d][%d] = %d, want %d", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// packedEqual compares two packed matrices ciphertext-by-ciphertext.
func packedEqual(a, b *EncMatrix) bool {
	if len(a.lanes) != len(b.lanes) {
		return false
	}
	for li := range a.lanes {
		ra, rb := a.lanes[li].packed, b.lanes[li].packed
		if ra.M != rb.M || len(ra.Packed) != len(rb.Packed) {
			return false
		}
		for ti := range ra.Packed {
			if !reflect.DeepEqual(ra.Packed[ti].B.Coeffs, rb.Packed[ti].B.Coeffs) ||
				!reflect.DeepEqual(ra.Packed[ti].A.Coeffs, rb.Packed[ti].A.Coeffs) {
				return false
			}
		}
	}
	return true
}

// TestArrayRoundTrip: encrypt/decrypt is the identity for both layouts,
// including lanes longer than the ring degree (multi-chunk).
func TestArrayRoundTrip(t *testing.T) {
	p, rng, sk, _ := setup(t, 64)
	for _, tc := range []struct {
		name       string
		rows, cols int
		layout     Layout
	}{
		{"row-major", 5, 9, RowMajor},
		{"col-major", 9, 5, ColMajor},
		{"row-major multi-chunk", 3, 70, RowMajor}, // 70 > N=64: 2 chunks per lane
		{"col-major multi-chunk", 70, 3, ColMajor},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := testutil.Matrix(rng, tc.rows, tc.cols, p.T.Q)
			m, err := Array(p, rng, sk, data, tc.layout)
			if err != nil {
				t.Fatal(err)
			}
			if r, c := m.Dims(); r != tc.rows || c != tc.cols {
				t.Fatalf("dims %dx%d, want %dx%d", r, c, tc.rows, tc.cols)
			}
			if m.Packed() {
				t.Fatal("fresh array reports packed")
			}
			if m.NoiseBits() <= 0 {
				t.Fatalf("fresh noise %f, want positive", m.NoiseBits())
			}
			eqMat(t, "round trip", m.Decrypt(sk), data)
		})
	}
}

// TestVectorRoundTrip covers the 1-D constructor, including multi-chunk.
func TestVectorRoundTrip(t *testing.T) {
	p, rng, sk, _ := setup(t, 64)
	for _, n := range []int{1, 64, 129} {
		v := testutil.Vector(rng, n, p.T.Q)
		ev, err := Vector(p, rng, sk, v)
		if err != nil {
			t.Fatal(err)
		}
		got := ev.Decrypt(sk)
		if len(got) != n {
			t.Fatalf("len %d, want %d", len(got), n)
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("n=%d: [%d] = %d, want %d", n, i, got[i], v[i])
			}
		}
	}
}

// TestTransposeView: T() flips dims and layout without copying, and
// decrypts to the transposed cleartext.
func TestTransposeView(t *testing.T) {
	p, rng, sk, _ := setup(t, 64)
	data := testutil.Matrix(rng, 4, 7, p.T.Q)
	m, err := Array(p, rng, sk, data, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	mt := m.T()
	if r, c := mt.Dims(); r != 7 || c != 4 {
		t.Fatalf("T dims %dx%d, want 7x4", r, c)
	}
	if mt.Layout() != ColMajor {
		t.Fatalf("T layout %s, want col-major", mt.Layout())
	}
	if &mt.lanes[0].chunks[0] == &m.lanes[0].chunks[0] {
		// same backing lanes — this is the point; just assert sharing holds
	}
	eqMat(t, "transpose", mt.Decrypt(sk), ref.Transpose(data))
	eqMat(t, "double transpose", mt.T().Decrypt(sk), data)
}

// TestElementwiseOps checks Add/Sub/ScalarMul/AddVector/CumSum against
// cleartext arithmetic mod t, and that operands are never mutated.
func TestElementwiseOps(t *testing.T) {
	p, rng, sk, _ := setup(t, 64)
	T := p.T
	da := testutil.Matrix(rng, 4, 6, p.T.Q)
	db := testutil.Matrix(rng, 4, 6, p.T.Q)
	a, err := Array(p, rng, sk, da, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Array(p, rng, sk, db, RowMajor)
	if err != nil {
		t.Fatal(err)
	}

	apply := func(f func(x, y uint64) uint64) [][]uint64 {
		out := make([][]uint64, len(da))
		for i := range da {
			out[i] = make([]uint64, len(da[i]))
			for j := range da[i] {
				out[i][j] = f(da[i][j], db[i][j])
			}
		}
		return out
	}

	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	eqMat(t, "add", sum.Decrypt(sk), apply(T.Add))
	if sum.NoiseBits() <= a.NoiseBits() {
		t.Fatalf("add noise %f not above operand %f", sum.NoiseBits(), a.NoiseBits())
	}

	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	eqMat(t, "sub", diff.Decrypt(sk), apply(T.Sub))

	sm, err := a.ScalarMul(3)
	if err != nil {
		t.Fatal(err)
	}
	eqMat(t, "scalar mul", sm.Decrypt(sk), apply(func(x, _ uint64) uint64 { return T.Mul(x, 3) }))
	if want := a.NoiseBits() + math.Log2(3); math.Abs(sm.NoiseBits()-want) > 1e-9 {
		t.Fatalf("×3 noise %f, want %f", sm.NoiseBits(), want)
	}

	// t-1 is centered -1: exact negation at one doubling of nothing —
	// noise must NOT grow by log2(t-1).
	neg, err := a.ScalarMul(T.Q - 1)
	if err != nil {
		t.Fatal(err)
	}
	eqMat(t, "scalar mul t-1", neg.Decrypt(sk), apply(func(x, _ uint64) uint64 { return T.Neg(x) }))
	if neg.NoiseBits() != a.NoiseBits() {
		t.Fatalf("×(t-1) noise %f, want unchanged %f", neg.NoiseBits(), a.NoiseBits())
	}

	bias := testutil.Vector(rng, 6, p.T.Q)
	ab, err := a.AddVector(bias)
	if err != nil {
		t.Fatal(err)
	}
	wantBias := make([][]uint64, len(da))
	for i := range da {
		wantBias[i] = make([]uint64, len(da[i]))
		for j := range da[i] {
			wantBias[i][j] = T.Add(da[i][j], bias[j])
		}
	}
	eqMat(t, "add vector", ab.Decrypt(sk), wantBias)

	cs, err := a.CumSum(0) // RowMajor: axis 0 crosses lanes
	if err != nil {
		t.Fatal(err)
	}
	wantCS := make([][]uint64, len(da))
	for i := range da {
		wantCS[i] = make([]uint64, len(da[i]))
		for j := range da[i] {
			wantCS[i][j] = da[i][j]
			if i > 0 {
				wantCS[i][j] = T.Add(wantCS[i-1][j], da[i][j])
			}
		}
	}
	eqMat(t, "cumsum", cs.Decrypt(sk), wantCS)

	// Operands were never mutated by any of the above.
	eqMat(t, "a unchanged", a.Decrypt(sk), da)
	eqMat(t, "b unchanged", b.Decrypt(sk), db)
}

// TestMatMulMatchesRef: both layouts, multi-tile (rows > N) and
// multi-chunk (cols > N) prepared matrix, decrypted output must equal
// the exact big.Int reference.
func TestMatMulMatchesRef(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	W := testutil.Matrix(rng, 70, 96, p.T.Q) // 2 tiles × 2 chunks at N=64
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("col-major W·X", func(t *testing.T) {
		X := testutil.Matrix(rng, 96, 3, p.T.Q)
		xm, err := Array(p, rng, sk, X, ColMajor)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MatMul(Local(pm), xm)
		if err != nil {
			t.Fatal(err)
		}
		if r, c := out.Dims(); r != 70 || c != 3 {
			t.Fatalf("dims %dx%d, want 70x3", r, c)
		}
		if !out.Packed() {
			t.Fatal("matmul output not packed")
		}
		want, err := ref.MatMul(p.T.Q, W, X)
		if err != nil {
			t.Fatal(err)
		}
		eqMat(t, "W·X", out.Decrypt(sk), want)
		if out.NoiseBits() <= 0 || out.NoiseBits() > out.BudgetBits() {
			t.Fatalf("output noise %f outside (0, %f]", out.NoiseBits(), out.BudgetBits())
		}
	})

	t.Run("row-major X·Wt", func(t *testing.T) {
		X := testutil.Matrix(rng, 3, 96, p.T.Q)
		xm, err := Array(p, rng, sk, X, RowMajor)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MatMul(Local(pm), xm)
		if err != nil {
			t.Fatal(err)
		}
		if r, c := out.Dims(); r != 3 || c != 70 {
			t.Fatalf("dims %dx%d, want 3x70", r, c)
		}
		want, err := ref.MatMul(p.T.Q, X, ref.Transpose(W))
		if err != nil {
			t.Fatal(err)
		}
		eqMat(t, "X·Wt", out.Decrypt(sk), want)
	})
}

// TestMatMulPreparedReuse: ONE Prepare serves many column blocks and
// both layouts; repeated warm applies and any worker count produce
// bit-identical packed ciphertexts (the core engine's determinism
// surfaced through the array tier).
func TestMatMulPreparedReuse(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	W := testutil.Matrix(rng, 40, 64, p.T.Q)
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}
	b := Local(pm)

	// Same prepared matrix, both layouts.
	Xc := testutil.Matrix(rng, 64, 8, p.T.Q) // 8 column blocks
	Xr := testutil.Matrix(rng, 8, 64, p.T.Q)
	xc, err := Array(p, rng, sk, Xc, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := Array(p, rng, sk, Xr, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := ref.MatMul(p.T.Q, W, Xc)
	if err != nil {
		t.Fatal(err)
	}
	wantR, err := ref.MatMul(p.T.Q, Xr, ref.Transpose(W))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, runtime.NumCPU()} {
		ev.Workers = workers
		outC, err := MatMul(b, xc)
		if err != nil {
			t.Fatal(err)
		}
		eqMat(t, "col-major", outC.Decrypt(sk), wantC)
		outR, err := MatMul(b, xr)
		if err != nil {
			t.Fatal(err)
		}
		eqMat(t, "row-major", outR.Decrypt(sk), wantR)

		// Warm reuse: apply again into a preallocated result — the packed
		// ciphertexts must be bit-identical to the fresh run.
		dst, err := NewMatMulResult(b, xc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := MatMulInto(b, dst, xc); err != nil {
				t.Fatal(err)
			}
			if !packedEqual(dst, outC) {
				t.Fatalf("workers=%d warm apply %d diverged from fresh result", workers, i)
			}
		}
	}
}

// TestMatVec: W·v through the 1-D surface equals the cleartext mat-vec.
func TestMatVec(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	W := testutil.Matrix(rng, 20, 30, p.T.Q)
	v := testutil.Vector(rng, 30, p.T.Q)
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := Vector(p, rng, sk, v)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MatVec(Local(pm), ev2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Packed() {
		t.Fatal("matvec output not packed")
	}
	want := core.PlainMatVec(p, W, v)
	got := out.Decrypt(sk)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestPackedOps: the elementwise ops compose with packed MatMul outputs
// — bias add at the strided slots, scalar mul, packed+packed add.
func TestPackedOps(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	T := p.T
	W := testutil.Matrix(rng, 70, 64, p.T.Q) // 2 tiles: strides differ per tile
	X := testutil.Matrix(rng, 64, 2, p.T.Q)
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}
	xm, err := Array(p, rng, sk, X, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	y, err := MatMul(Local(pm), xm)
	if err != nil {
		t.Fatal(err)
	}
	WX, err := ref.MatMul(p.T.Q, W, X)
	if err != nil {
		t.Fatal(err)
	}

	bias := testutil.Vector(rng, 70, p.T.Q)
	yb, err := y.AddVector(bias)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]uint64, 70)
	for i := range want {
		want[i] = make([]uint64, 2)
		for j := range want[i] {
			want[i][j] = T.Add(WX[i][j], bias[i])
		}
	}
	eqMat(t, "packed bias add", yb.Decrypt(sk), want)

	doubled, err := y.Add(y)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := y.ScalarMul(2)
	if err != nil {
		t.Fatal(err)
	}
	eqMat(t, "packed y+y", doubled.Decrypt(sk), sm.Decrypt(sk))

	// CumSum across the packed lanes (columns of W·X under ColMajor).
	cs, err := y.CumSum(1)
	if err != nil {
		t.Fatal(err)
	}
	wantCS := make([][]uint64, 70)
	for i := range wantCS {
		wantCS[i] = make([]uint64, 2)
		wantCS[i][0] = WX[i][0]
		wantCS[i][1] = T.Add(WX[i][0], WX[i][1])
	}
	eqMat(t, "packed cumsum", cs.Decrypt(sk), wantCS)
}

// TestInferencePipeline: matmul → bias → square activation (interactive
// recrypt) → matmul → bias, bit-exact against the same composition over
// ref.MatMul — the two-layer private-inference shape examples/inference
// ships.
func TestInferencePipeline(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	T := p.T
	W1 := testutil.Matrix(rng, 16, 64, p.T.Q)
	b1 := testutil.Vector(rng, 16, p.T.Q)
	W2 := testutil.Matrix(rng, 10, 16, p.T.Q)
	b2 := testutil.Vector(rng, 10, p.T.Q)
	X := testutil.Matrix(rng, 64, 3, p.T.Q) // batch of 3 inputs, ColMajor

	pm1, err := ev.Prepare(W1)
	if err != nil {
		t.Fatal(err)
	}
	pm2, err := ev.Prepare(W2)
	if err != nil {
		t.Fatal(err)
	}

	xm, err := Array(p, rng, sk, X, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	h, err := MatMul(Local(pm1), xm)
	if err != nil {
		t.Fatal(err)
	}
	h, err = h.AddVector(b1)
	if err != nil {
		t.Fatal(err)
	}
	h, err = h.SquareRecrypt(rng, sk) // packed → dense, x² activation
	if err != nil {
		t.Fatal(err)
	}
	if h.Packed() {
		t.Fatal("recrypted layer still packed")
	}
	out, err := MatMul(Local(pm2), h)
	if err != nil {
		t.Fatal(err)
	}
	out, err = out.AddVector(b2)
	if err != nil {
		t.Fatal(err)
	}

	// Cleartext reference composition.
	L1, err := ref.MatMul(p.T.Q, W1, X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range L1 {
		for j := range L1[i] {
			a := T.Add(L1[i][j], b1[i])
			L1[i][j] = T.Mul(a, a)
		}
	}
	L2, err := ref.MatMul(p.T.Q, W2, L1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range L2 {
		for j := range L2[i] {
			L2[i][j] = T.Add(L2[i][j], b2[i])
		}
	}
	eqMat(t, "two-layer inference", out.Decrypt(sk), L2)
}

// TestErrorPaths: every misuse class fails with its typed sentinel.
func TestErrorPaths(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	W := testutil.Matrix(rng, 16, 16, p.T.Q) // square: MatMul output is shaped like its input
	pm, err := ev.Prepare(W)
	if err != nil {
		t.Fatal(err)
	}
	b := Local(pm)
	good, err := Array(p, rng, sk, testutil.Matrix(rng, 16, 2, p.T.Q), ColMajor)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, err error, want error) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}

	_, err = Array(p, rng, sk, nil, RowMajor)
	check("empty array", err, ErrEmpty)
	_, err = Array(p, rng, sk, [][]uint64{{1, 2}, {3}}, RowMajor)
	check("ragged array", err, ErrRagged)
	_, err = Vector(p, rng, sk, nil)
	check("empty vector", err, ErrEmpty)

	other, err := Array(p, rng, sk, testutil.Matrix(rng, 3, 3, p.T.Q), ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	_, err = good.Add(other)
	check("shape mismatch add", err, ErrShape)
	_, err = good.Add(good.T())
	check("layout mismatch add", err, ErrShape)

	packed, err := MatMul(b, good)
	if err != nil {
		t.Fatal(err)
	}
	_, err = good.Add(packed)
	check("dense+packed add", err, ErrEncodingMix)
	_, err = MatMul(b, packed)
	check("packed matmul operand", err, ErrPackedOperand)
	_, err = MatMul(b, other)
	check("matmul inner mismatch", err, ErrShape)

	_, err = good.CumSum(2)
	check("bad axis", err, ErrShape)
	_, err = good.CumSum(0) // ColMajor: axis 0 runs inside the vectors
	check("unreachable axis", err, ErrAxisLayout)

	_, err = good.AddVector([]uint64{1, 2, 3})
	check("bias length", err, ErrShape)

	hot := good.clone()
	hot.setNoise(1000) // simulate a ciphertext far past its budget
	_, err = MatMul(b, hot)
	check("noise budget matmul", err, ErrNoiseBudget)
	_, err = hot.ScalarMul(12345)
	check("noise budget scalar", err, ErrNoiseBudget)
}

// TestNoiseAccounting: the analytic bound moves the way the op algebra
// says it should, and stays under the decryption budget for the shapes
// the examples use.
func TestNoiseAccounting(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	a, err := Array(p, rng, sk, testutil.Matrix(rng, 64, 2, p.T.Q), ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	fresh := a.NoiseBits()

	sum, err := a.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh + 1; math.Abs(sum.NoiseBits()-want) > 1e-9 {
		t.Fatalf("x+x noise %f, want exactly one bit over %f", sum.NoiseBits(), fresh)
	}

	cs, err := a.CumSum(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh + 0.5*math.Log2(2); math.Abs(cs.NoiseBits()-want) > 1e-9 {
		t.Fatalf("cumsum noise %f, want %f", cs.NoiseBits(), want)
	}

	pm, err := ev.Prepare(testutil.Matrix(rng, 64, 64, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	out, err := MatMul(Local(pm), a)
	if err != nil {
		t.Fatal(err)
	}
	if out.NoiseBits() <= fresh {
		t.Fatalf("matmul noise %f did not grow past fresh %f", out.NoiseBits(), fresh)
	}
	if out.NoiseBits() > out.BudgetBits() {
		t.Fatalf("matmul noise %f over budget %f", out.NoiseBits(), out.BudgetBits())
	}
}
