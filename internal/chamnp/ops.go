package chamnp

// Elementwise and reduction ops. Everything here is encoding-agnostic
// ciphertext arithmetic (adds, scalar muls, plaintext adds), so it works
// on dense arrays and on packed MatMul outputs alike; only the
// plaintext-broadcast AddVector has to know where the packed slots live.
// Ops return fresh arrays — operands are never mutated.

import (
	"fmt"
	"math"

	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/rlwe"
)

// cloneLane deep-copies one lane.
func cloneLane(v *EncVector) *EncVector {
	out := &EncVector{p: v.p, n: v.n, noise: v.noise}
	if v.packed != nil {
		out.packed = &core.Result{M: v.packed.M, N: v.packed.N}
		for _, ct := range v.packed.Packed {
			out.packed.Packed = append(out.packed.Packed, ct.Copy())
		}
		return out
	}
	for _, ct := range v.chunks {
		out.chunks = append(out.chunks, ct.Copy())
	}
	return out
}

// clone deep-copies the matrix (caches are not carried over).
func (m *EncMatrix) clone() *EncMatrix {
	out := &EncMatrix{p: m.p, rows: m.rows, cols: m.cols, layout: m.layout, noise: m.noise}
	for _, lane := range m.lanes {
		out.lanes = append(out.lanes, cloneLane(lane))
	}
	return out
}

// laneCts returns the ciphertext list of one lane, whatever the encoding.
func laneCts(v *EncVector) []*rlwe.Ciphertext {
	if v.packed != nil {
		return v.packed.Packed
	}
	return v.chunks
}

// compat checks that two matrices can combine elementwise.
func compat(a, b *EncMatrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if a.layout != b.layout {
		return fmt.Errorf("%w: %s vs %s (transpose one operand with T())", ErrShape, a.layout, b.layout)
	}
	if a.Packed() != b.Packed() {
		return fmt.Errorf("%w: dense vs packed", ErrEncodingMix)
	}
	return nil
}

// logSum returns log2(2^a + 2^b) without overflow.
func logSum(a, b float64) float64 {
	if b > a {
		a, b = b, a
	}
	return a + math.Log2(1+math.Pow(2, b-a))
}

// combine runs f over every aligned ciphertext pair of a and b into a
// fresh clone of a.
func combine(a, b *EncMatrix, f func(out, x, y *rlwe.Ciphertext)) *EncMatrix {
	out := a.clone()
	for li := range out.lanes {
		oc, bc := laneCts(out.lanes[li]), laneCts(b.lanes[li])
		for i := range oc {
			f(oc[i], oc[i], bc[i])
		}
	}
	return out
}

// Add returns the elementwise sum a + b mod t.
func (m *EncMatrix) Add(o *EncMatrix) (*EncMatrix, error) {
	done := startOp(opAdd)
	if err := compat(m, o); err != nil {
		return nil, countNpErr(err)
	}
	out := combine(m, o, func(dst, x, y *rlwe.Ciphertext) { m.p.Add(dst, x, y) })
	out.setNoise(logSum(m.noise, o.noise))
	done(out)
	return out, nil
}

// Sub returns the elementwise difference a - b mod t.
func (m *EncMatrix) Sub(o *EncMatrix) (*EncMatrix, error) {
	done := startOp(opSub)
	if err := compat(m, o); err != nil {
		return nil, countNpErr(err)
	}
	out := combine(m, o, func(dst, x, y *rlwe.Ciphertext) { m.p.Sub(dst, x, y) })
	out.setNoise(logSum(m.noise, o.noise))
	done(out)
	return out, nil
}

// ScalarMul returns c·m mod t. The scalar is interpreted centered (so
// t-1 is -1, costing one bit of noise, not sixteen); noise grows by
// log2|c| and the op refuses when that would cross the budget.
func (m *EncMatrix) ScalarMul(c uint64) (*EncMatrix, error) {
	done := startOp(opScalarMul)
	cl := m.p.T.CenterLift(m.p.T.Reduce(c))
	mag := cl
	if mag < 0 {
		mag = -mag
	}
	grown := m.noise
	if mag > 1 {
		grown += math.Log2(float64(mag))
	}
	if grown > m.BudgetBits() {
		return nil, countNpErr(fmt.Errorf("%w: %.1f bits after ×%d, budget %.1f",
			ErrNoiseBudget, grown, cl, m.BudgetBits()))
	}
	out := m.clone()
	for _, lane := range out.lanes {
		for _, ct := range laneCts(lane) {
			if cl >= 0 {
				m.p.MulScalar(ct, ct, uint64(cl))
			} else {
				m.p.MulScalar(ct, ct, uint64(-cl))
				m.p.R.Neg(ct.B, ct.B)
				m.p.R.Neg(ct.A, ct.A)
			}
		}
	}
	out.setNoise(grown)
	done(out)
	return out, nil
}

// AddVector broadcasts the cleartext vector along every lane: each
// column gains v (len rows) under ColMajor, each row gains v (len cols)
// under RowMajor — the bias add of a linear layer. Plaintext addition
// is exact, so the noise bound is unchanged.
func (m *EncMatrix) AddVector(v []uint64) (*EncMatrix, error) {
	done := startOp(opAddVector)
	if len(v) != m.laneLen() {
		return nil, countNpErr(fmt.Errorf("%w: vector length %d, lanes carry %d values",
			ErrShape, len(v), m.laneLen()))
	}
	out := m.clone()
	p := m.p
	n := p.R.N
	if !m.Packed() {
		// One plaintext per chunk, shared by every lane.
		for ci := 0; ci*n < len(v); ci++ {
			lo, hi := ci*n, (ci+1)*n
			if hi > len(v) {
				hi = len(v)
			}
			pt := p.EncodeVector(v[lo:hi])
			for _, lane := range out.lanes {
				p.AddPlain(lane.chunks[ci], pt)
			}
		}
		done(out)
		return out, nil
	}
	// Packed lanes: value i of tile ti lives at slot i·stride.
	for _, lane := range out.lanes {
		res := lane.packed
		for ti, ct := range res.Packed {
			base := ti * res.N
			rows := res.M - base
			if rows > res.N {
				rows = res.N
			}
			stride := lwe.SlotStride(res.N, res.TileRows(ti))
			pt := p.NewPlaintext()
			for i := 0; i < rows; i++ {
				pt.Coeffs[i*stride] = p.T.Reduce(v[base+i])
			}
			p.AddPlain(ct, pt)
		}
	}
	done(out)
	return out, nil
}

// CumSum returns the cumulative sum along axis (numpy semantics: axis 0
// runs down the rows, axis 1 along each row). Only the axis that crosses
// lanes is reachable homomorphically — axis 0 under RowMajor, axis 1
// under ColMajor; the in-vector axis returns ErrAxisLayout (encrypt in
// the other layout to reach it). k lanes deep, the last lane sums k
// terms, so the noise bound grows by log2(√k).
func (m *EncMatrix) CumSum(axis int) (*EncMatrix, error) {
	done := startOp(opCumSum)
	if axis != 0 && axis != 1 {
		return nil, countNpErr(fmt.Errorf("%w: axis %d (want 0 or 1)", ErrShape, axis))
	}
	crossLanes := (m.layout == RowMajor && axis == 0) || (m.layout == ColMajor && axis == 1)
	if !crossLanes {
		return nil, countNpErr(fmt.Errorf("%w: axis %d under %s runs inside the packed vectors",
			ErrAxisLayout, axis, m.layout))
	}
	out := m.clone()
	for li := 1; li < len(out.lanes); li++ {
		prev, cur := laneCts(out.lanes[li-1]), laneCts(out.lanes[li])
		for i := range cur {
			m.p.Add(cur[i], cur[i], prev[i])
		}
	}
	out.setNoise(m.noise + 0.5*math.Log2(float64(len(out.lanes))))
	done(out)
	return out, nil
}

// setNoise stamps the matrix and every lane with one bound.
func (m *EncMatrix) setNoise(bits float64) {
	m.noise = bits
	for _, lane := range m.lanes {
		lane.noise = bits
	}
}
