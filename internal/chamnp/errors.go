package chamnp

import "errors"

// Typed sentinels for every misuse class of the array API. All error
// returns wrap one of these (or a core sentinel such as
// core.ErrVectorLength bubbling up from a backend) with %w, so callers
// branch with errors.Is and the telemetry layer counts failures per
// class (cham_np_errors_total).
var (
	// ErrEmpty: an array with no rows or no columns.
	ErrEmpty = errors.New("chamnp: empty array")
	// ErrShape: operand dimensions or layouts do not line up.
	ErrShape = errors.New("chamnp: shape mismatch")
	// ErrRagged: rows of differing lengths in cleartext input.
	ErrRagged = errors.New("chamnp: ragged input")
	// ErrAxisLayout: the requested axis runs inside the packed vectors of
	// this layout; re-encrypt in the other layout (or transpose the
	// cleartext before Array) to reach it.
	ErrAxisLayout = errors.New("chamnp: axis not reachable in this layout")
	// ErrPackedOperand: the operation needs a dense (coefficient-encoded)
	// operand, but this array is a packed HMVP output. Re-encrypt it
	// (e.g. through SquareRecrypt or Recrypt) first.
	ErrPackedOperand = errors.New("chamnp: operand is packed, not dense")
	// ErrEncodingMix: operands carry different encodings (dense vs
	// packed) or different packed shapes.
	ErrEncodingMix = errors.New("chamnp: operand encodings differ")
	// ErrNoiseBudget: the analytic noise bound of the op's output would
	// exceed the decryption budget — the result would decrypt to garbage.
	ErrNoiseBudget = errors.New("chamnp: predicted noise exceeds the decryption budget")
)
