package chamnp

// Encrypted matrix × prepared cleartext matrix. One PreparedMatrix
// drives every lane of the encrypted operand through the batched HMVP
// surface, so the Prepare cost amortizes over the whole matmul — and,
// because an HMVP computes W·v, the SAME prepared W serves both
// layouts without ever being transposed:
//
//	ColMajor X:  MatMul(W, X) = W·X   (one HMVP per column of X)
//	RowMajor X:  MatMul(W, X) = X·Wᵀ  (one HMVP per row of X)
//
// The hot path is allocation-free warm: NewMatMulResult preallocates
// the output once, MatMulInto reuses the operand's cached lane slices
// and the output's cached Result slices, and core.ApplyBatchInto runs
// on pooled scratch.

import (
	"fmt"
	"time"

	"cham/internal/core"
	"cham/internal/noise"
	"cham/internal/obs"
	"cham/internal/rlwe"
)

// Backend is the HMVP engine a MatMul runs on: a prepared rows×cols
// cleartext matrix that maps batches of dense encrypted vectors (Chunks
// ciphertexts each) to packed Results. *core.PreparedMatrix satisfies
// it directly; RemoteBackend reaches one held by a chamserve server or
// a chamcluster gateway.
type Backend interface {
	Rows() int
	Cols() int
	Chunks() int
	NewResult() *core.Result
	ApplyBatchInto(res []*core.Result, vecs [][]*rlwe.Ciphertext) error
}

// Local wraps an in-process PreparedMatrix as a MatMul backend. (It is
// the identity — the prepared matrix already implements Backend — but
// keeps call sites symmetric with Remote.)
func Local(pm *core.PreparedMatrix) Backend { return pm }

// matmulShape validates x as a MatMul operand for backend b and returns
// the output dimensions under the layout convention.
func matmulShape(b Backend, x *EncMatrix) (outRows, outCols int, err error) {
	if len(x.lanes) == 0 {
		return 0, 0, fmt.Errorf("%w: operand has no lanes", ErrEmpty)
	}
	if x.Packed() {
		return 0, 0, fmt.Errorf("%w: MatMul needs a dense operand; Recrypt the previous layer's output first", ErrPackedOperand)
	}
	if x.laneLen() != b.Cols() {
		return 0, 0, fmt.Errorf("%w: prepared matrix is %dx%d but %s lanes carry %d values",
			ErrShape, b.Rows(), b.Cols(), x.layout, x.laneLen())
	}
	if x.layout == ColMajor {
		return b.Rows(), x.cols, nil // W·X
	}
	return x.rows, b.Rows(), nil // X·Wᵀ
}

// matmulNoise predicts the packed output noise (bits): plaintext
// multiplication by rows bounded by t/2, the rescale to the normal
// basis, then the deferred packing tree over the largest tile. The
// predictor and budget are cached on the destination so warm calls
// stay allocation-free (Budget walks big.Ints).
func (dst *EncMatrix) matmulNoise(b Backend, x *EncMatrix) (float64, error) {
	if dst.predictCache == nil {
		est := noise.New(x.p)
		mPad := b.Rows()
		if mPad > x.p.R.N {
			mPad = x.p.R.N
		}
		pow := 1
		for pow < mPad {
			pow <<= 1
		}
		dst.predictCache = est.HMVPPredictor(pow)
		dst.budgetCache = est.Budget(x.p.NormalLevels)
	}
	out := dst.predictCache(x.noise)
	if out > dst.budgetCache {
		return 0, fmt.Errorf("%w: predicted %.1f bits, budget %.1f (operand carries %.1f bits)",
			ErrNoiseBudget, out, dst.budgetCache, x.noise)
	}
	return out, nil
}

// vecs returns (building lazily) the lanes' chunk slices in the
// backend's batch form. Lanes are immutable, so the cache never goes
// stale; the first call allocates, warm calls return the cached form.
func (m *EncMatrix) vecs() [][]*rlwe.Ciphertext {
	if m.vecsCache == nil {
		m.vecsCache = make([][]*rlwe.Ciphertext, len(m.lanes))
		for i, lane := range m.lanes {
			m.vecsCache[i] = lane.chunks
		}
	}
	return m.vecsCache
}

// results returns (building lazily) the lanes' packed Results in the
// backend's batch form.
func (m *EncMatrix) results() []*core.Result {
	if m.resCache == nil {
		m.resCache = make([]*core.Result, len(m.lanes))
		for i, lane := range m.lanes {
			m.resCache[i] = lane.packed
		}
	}
	return m.resCache
}

// NewMatMulResult allocates the packed output matrix for MatMulInto —
// one backend Result per lane of x, sized by the shape rules above.
// Allocate once, then reuse it across warm MatMulInto calls.
func NewMatMulResult(b Backend, x *EncMatrix) (*EncMatrix, error) {
	outRows, outCols, err := matmulShape(b, x)
	if err != nil {
		return nil, countNpErr(err)
	}
	out := &EncMatrix{p: x.p, rows: outRows, cols: outCols, layout: x.layout}
	laneN := b.Rows() // every output lane is one HMVP result of Rows values
	for range x.lanes {
		out.lanes = append(out.lanes, &EncVector{p: x.p, n: laneN, packed: b.NewResult()})
	}
	return out, nil
}

// MatMulInto runs the matmul into a preallocated output (from
// NewMatMulResult with the same backend and a same-shaped operand). A
// warm call — caches built, scratch pools primed — performs zero heap
// allocations.
func MatMulInto(b Backend, dst, x *EncMatrix) error {
	// Telemetry is opened inline (not via startOp's closure) to keep the
	// warm path allocation-free even with collection enabled.
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	if _, _, err := matmulShape(b, x); err != nil {
		return countNpErr(err)
	}
	outNoise, err := dst.matmulNoise(b, x)
	if err != nil {
		return countNpErr(err)
	}
	if len(dst.lanes) != len(x.lanes) || !dst.Packed() {
		return countNpErr(fmt.Errorf("%w: destination has %d packed lanes, want %d (allocate with NewMatMulResult)",
			ErrShape, len(dst.lanes), len(x.lanes)))
	}
	if err := b.ApplyBatchInto(dst.results(), x.vecs()); err != nil {
		return countNpErr(err)
	}
	dst.layout = x.layout
	if x.layout == ColMajor {
		dst.rows, dst.cols = b.Rows(), x.cols
	} else {
		dst.rows, dst.cols = x.rows, b.Rows()
	}
	dst.setNoise(outNoise)
	if on {
		opHists[opMatMul].Observe(time.Since(t0).Seconds())
		opCounts[opMatMul].Inc()
		gNoise.Set(outNoise)
		mLanes.Add(uint64(len(x.lanes)))
	}
	return nil
}

// MatMul computes the product of the backend's prepared matrix W with
// the encrypted x under the layout convention (W·X for ColMajor x,
// X·Wᵀ for RowMajor x), returning a fresh packed matrix.
func MatMul(b Backend, x *EncMatrix) (*EncMatrix, error) {
	dst, err := NewMatMulResult(b, x)
	if err != nil {
		return nil, err
	}
	if err := MatMulInto(b, dst, x); err != nil {
		return nil, err
	}
	return dst, nil
}

// MatVec applies the backend's prepared matrix to one dense encrypted
// vector: W·v as a packed EncVector of Rows values.
func MatVec(b Backend, v *EncVector) (*EncVector, error) {
	done := startOp(opMatVec)
	x := &EncMatrix{p: v.p, rows: v.n, cols: 1, layout: ColMajor,
		lanes: []*EncVector{v}, noise: v.noise}
	out, err := MatMul(b, x)
	if err != nil {
		return nil, err
	}
	done(out)
	return out.lanes[0], nil
}
