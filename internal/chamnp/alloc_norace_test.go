//go:build !race

package chamnp

// Warm-path allocation assertions. AllocsPerRun is meaningless under
// the race detector's instrumented allocator, so this file is excluded
// from `make race`; the same invariant is gated continuously by
// `chambench -np -compare` (make bench-diff).

import (
	"testing"

	"cham/internal/testutil"
)

// TestMatMulWarmZeroAllocs: once the result is preallocated and the
// lane caches built, MatMulInto performs zero heap allocations — both
// layouts, serial workers (goroutine fan-out would allocate stacks).
func TestMatMulWarmZeroAllocs(t *testing.T) {
	p, rng, sk, ev := setup(t, 64)
	ev.Workers = 1
	pm, err := ev.Prepare(testutil.Matrix(rng, 40, 64, p.T.Q))
	if err != nil {
		t.Fatal(err)
	}
	b := Local(pm)
	for _, layout := range []Layout{ColMajor, RowMajor} {
		var data [][]uint64
		if layout == ColMajor {
			data = testutil.Matrix(rng, 64, 4, p.T.Q)
		} else {
			data = testutil.Matrix(rng, 4, 64, p.T.Q)
		}
		x, err := Array(p, rng, sk, data, layout)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := NewMatMulResult(b, x)
		if err != nil {
			t.Fatal(err)
		}
		// Warm both the evaluator's scratch pools and the lane caches.
		for i := 0; i < 2; i++ {
			if err := MatMulInto(b, dst, x); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if err := MatMulInto(b, dst, x); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s warm MatMulInto allocates %.1f/op, want 0", layout, allocs)
		}
	}
}
