package chamnp

import (
	"math/rand"
	"testing"

	"cham/internal/ref"
	"cham/internal/testutil"
)

// FuzzEncMatrixShapes drives random matrix shapes, layouts, and values
// through Array → MatMul → Decrypt and requires exact agreement with
// the big.Int reference product — the shape logic (tiling, chunking,
// lane layout, strided unpacking) must hold for every geometry, not
// just the sizes the unit tests pin.
func FuzzEncMatrixShapes(f *testing.F) {
	p, _, sk, ev := setup(f, 64)

	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint64(1))
	f.Add(uint8(64), uint8(64), uint8(1), uint8(1), uint64(42))
	f.Add(uint8(70), uint8(90), uint8(2), uint8(0), uint64(7)) // multi-tile × multi-chunk
	f.Add(uint8(3), uint8(65), uint8(1), uint8(1), uint64(99))

	f.Fuzz(func(t *testing.T, wRowsRaw, wColsRaw, lanesRaw, layoutRaw uint8, seed uint64) {
		wRows := int(wRowsRaw)%96 + 1
		wCols := int(wColsRaw)%96 + 1
		lanes := int(lanesRaw)%3 + 1
		layout := RowMajor
		if layoutRaw&1 == 1 {
			layout = ColMajor
		}
		rng := rand.New(rand.NewSource(int64(seed)))

		W := testutil.Matrix(rng, wRows, wCols, p.T.Q)
		pm, err := ev.Prepare(W)
		if err != nil {
			t.Fatalf("Prepare %dx%d: %v", wRows, wCols, err)
		}
		var X, want [][]uint64
		if layout == ColMajor {
			X = testutil.Matrix(rng, wCols, lanes, p.T.Q)
			want, err = ref.MatMul(p.T.Q, W, X)
		} else {
			X = testutil.Matrix(rng, lanes, wCols, p.T.Q)
			want, err = ref.MatMul(p.T.Q, X, ref.Transpose(W))
		}
		if err != nil {
			t.Fatal(err)
		}
		xm, err := Array(p, rng, sk, X, layout)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MatMul(Local(pm), xm)
		if err != nil {
			t.Fatalf("MatMul W=%dx%d %s lanes=%d: %v", wRows, wCols, layout, lanes, err)
		}
		got := out.Decrypt(sk)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("W=%dx%d %s lanes=%d: [%d][%d] = %d, want %d",
						wRows, wCols, layout, lanes, i, j, got[i][j], want[i][j])
				}
			}
		}
	})
}
