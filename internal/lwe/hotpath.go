package lwe

// NTT-resident, allocation-free packing tree (DESIGN.md §12). The
// recursive PackLWEs of Alg. 3 is re-expressed iteratively: after ℓ levels
// the live groups sit in the buffer prefix, and level ℓ (group size
// i = 2^ℓ) merges the pairs (buf[j], buf[j+count/2]) — exactly the
// even/odd split of the recursion, verified term-for-term against packRec.
// The m/2 merges inside one level are independent, so they fan out across
// a worker pool; merges consume their inputs in place, so the whole tree
// runs in the caller's m node buffers plus one pooled scratch per worker.
//
// Tree state never leaves the NTT domain. A node carries
//
//	(BT, A)  with true ciphertext  (ModDown(BT), ModDown(A)),
//
// BOTH parts full-basis NTT accumulators whose division by the special
// modulus is DEFERRED: leaves enter as exact multiples P·ct (or as
// un-rescaled row accumulators on the core fast path), every merge adds
// its key-switch contributions to both parts un-rescaled, and the
// rounding divisions run once per tree at FlushInto. Monomials are
// pointwise multiplies, automorphisms are cached slot gathers, and the
// only per-merge rescale is of the gathered difference a-part feeding the
// digit decomposition — the one place the tree is nonlinear in a. Keeping
// the a accumulator deferred is what lets core's row leaves skip their
// per-row RESCALE entirely: the raw full-basis dot-product accumulator IS
// the leaf.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/bfv"
	"cham/internal/obs"
	"cham/internal/ring"
	"cham/internal/rlwe"
)

// Stage telemetry: each tree merge splits into PACKTWOLWES arithmetic
// (pack: monomial multiplies, sums/differences, automorphism gathers),
// the RESCALE of the gathered a-part feeding the switch (moddown), the
// hoisted digit decomposition of the automorphism key switch (decompose),
// and the key-dependent digit·key accumulation (key_switch). FlushInto's
// tree-exit transforms and the deferred divisions of both parts report
// under intt and moddown.
var (
	packSec   = obs.StageHistogram(obs.StagePack)
	decSec    = obs.StageHistogram(obs.StageDecompose)
	ksSec     = obs.StageHistogram(obs.StageKeySwitch)
	pmdSec    = obs.StageHistogram(obs.StagePackModDown)
	inttSec   = obs.StageHistogram(obs.StageINTT)
	mergesCnt = obs.GetCounter("cham_hmvp_pack_merges_total",
		"PACKTWOLWES tree merges (m-1 per packed tile).")
)

// observeStage publishes one stage duration: to the sink when a sampled
// request is tracing this apply (with the trace ID as the histogram
// exemplar), to the histogram alone otherwise. hist is the caller's
// cached obs.On().
func observeStage(h *obs.Histogram, stage int, d time.Duration, hist bool, sink obs.StageSink) {
	if sink != nil {
		sink.StageAdd(stage, d)
		if hist {
			h.ObserveExemplar(d.Seconds(), sink.ExemplarLabel())
		}
		return
	}
	if hist {
		h.Observe(d.Seconds())
	}
}

// ExtractAsRLWEInto fuses Extract and AsRLWE, writing the result into a
// caller-owned normal-basis ciphertext: out's plaintext holds coefficient
// idx of ct's plaintext at its constant coefficient. The mask double
// negation of the LWE round trip cancels, so out.A is just ct.A shifted by
// X^-idx (a plain copy at idx 0) and out.B is zero except for
// B_idx at its constant slot. Input must be in coefficient domain; out
// must not alias ct.
func ExtractAsRLWEInto(p bfv.Params, out, ct *rlwe.Ciphertext, idx int) {
	if ct.IsNTT() {
		panic("lwe: Extract requires coefficient domain")
	}
	n := p.R.N
	if idx < 0 || idx >= n {
		panic("lwe: coefficient index out of range")
	}
	if idx == 0 {
		out.A.CopyFrom(ct.A)
	} else {
		p.R.MulMonomial(out.A, ct.A, -idx)
	}
	for l := range out.B.Coeffs {
		row := out.B.Coeffs[l]
		for i := range row {
			row[i] = 0
		}
		// (X^-idx · b)_0 = b_idx: the only surviving B coefficient.
		row[0] = ct.B.Coeffs[l][idx]
	}
	out.B.IsNTT = false
}

// PackNode is one NTT-resident packing-tree operand: both parts are
// full-basis NTT accumulators with their special-modulus division
// deferred — the ciphertext it stands for is (ModDown(BT), ModDown(A)).
// Allocate with NewPackNode, fill with ResidentFromRLWE (or directly, as
// core's row apply does), fold with PackResident, and leave residency
// with FlushInto.
type PackNode struct {
	BT *ring.Poly // full basis, NTT domain; true b = ModDown(BT)
	A  *ring.Poly // full basis, NTT domain; true a = ModDown(A)
}

// NewPackNode allocates an (uninitialized) resident tree node.
func NewPackNode(p bfv.Params) *PackNode {
	return &PackNode{BT: p.R.NewPoly(p.R.Levels()), A: p.R.NewPoly(p.R.Levels())}
}

// Zero resets nd to the resident zero ciphertext (the padding value of
// partial tiles).
func (nd *PackNode) Zero() {
	nd.BT.Zero()
	nd.A.Zero()
	nd.BT.IsNTT = true
	nd.A.IsNTT = true
}

// ResidentFromRLWE loads a normal-basis coefficient-domain slot ciphertext
// into resident form: nd.BT = NTT(P·ct.B) and nd.A = NTT(P·ct.A) over the
// full basis — EXACT multiples of the special modulus product P, so
// ModDown(BT) = ct.B and ModDown(A) = ct.A with zero rounding error and
// the deferred tree is bit-identical to the eager one for a single merge.
// (P·x vanishes modulo every special limb, so those rows are zero.)
func ResidentFromRLWE(p bfv.Params, nd *PackNode, ct *rlwe.Ciphertext) {
	if ct.IsNTT() {
		panic("lwe: ResidentFromRLWE requires coefficient domain")
	}
	r := p.R
	n := r.N
	full := r.Levels()
	nl := p.NormalLevels
	for l := 0; l < nl; l++ {
		m := r.Moduli[l]
		pl := uint64(1)
		for sp := nl; sp < full; sp++ {
			pl = m.Mul(pl, m.Reduce(r.Moduli[sp].Q))
		}
		pp := m.ShoupPrecomp(pl)
		srcB, dstB := ct.B.Coeffs[l][:n], nd.BT.Coeffs[l][:n]
		for i, v := range srcB {
			dstB[i] = m.MulShoup(v, pl, pp)
		}
		r.Tables[l].ForwardLazy(dstB)
		srcA, dstA := ct.A.Coeffs[l][:n], nd.A.Coeffs[l][:n]
		for i, v := range srcA {
			dstA[i] = m.MulShoup(v, pl, pp)
		}
		r.Tables[l].ForwardLazy(dstA)
	}
	for sp := nl; sp < full; sp++ {
		rowB, rowA := nd.BT.Coeffs[sp][:n], nd.A.Coeffs[sp][:n]
		for i := range rowB {
			rowB[i] = 0
			rowA[i] = 0
		}
	}
	nd.BT.IsNTT = true
	nd.A.IsNTT = true
}

// MergeScratch is the per-worker arena of one pack-tree sweep: the hoisted
// decomposition digits plus the difference and key-switch accumulator
// polynomials a merge needs. Obtain with GetMergeScratch, release with
// PutMergeScratch; one scratch serves every merge a worker claims at a
// tree level, keeping the buffers cache-resident instead of cycling the
// pool per merge.
type MergeScratch struct {
	dec *rlwe.Decomposition
	dBT *ring.Poly // full basis: E.BT - X^z·O.BT
	dA  *ring.Poly // full basis: E.A - X^z·O.A
	c1  *ring.Poly // full basis: Σ_j dec_j ∘ A_j
	aN  *ring.Poly // normal basis, coefficient domain: rescaled gathered a
}

// msShells recycles MergeScratch headers; the buffers they carry come from
// the ring and decomposition pools. Shells are ring-agnostic (five
// pointers), so one process-wide pool is safe.
var msShells sync.Pool

// GetMergeScratch borrows a merge arena from the pools.
func GetMergeScratch(p bfv.Params) *MergeScratch {
	ms, ok := msShells.Get().(*MergeScratch)
	if !ok {
		ms = &MergeScratch{}
	}
	full := p.R.Levels()
	ms.dec = p.GetDecomposition()
	ms.dBT = p.R.GetPoly(full)
	ms.dA = p.R.GetPoly(full)
	ms.c1 = p.R.GetPoly(full)
	ms.aN = p.R.GetPoly(p.NormalLevels)
	return ms
}

// PutMergeScratch returns a merge arena to the pools. The caller must not
// use ms afterwards.
func PutMergeScratch(p bfv.Params, ms *MergeScratch) {
	if ms == nil {
		return
	}
	p.PutDecomposition(ms.dec)
	p.R.PutPoly(ms.dBT)
	p.R.PutPoly(ms.dA)
	p.R.PutPoly(ms.c1)
	p.R.PutPoly(ms.aN)
	ms.dec, ms.dBT, ms.dA, ms.c1, ms.aN = nil, nil, nil, nil, nil
	msShells.Put(ms)
}

// PackTwoResident merges two resident groups of size i without leaving the
// NTT domain:
//
//	out = (E + X^{N/2i}·O) + φ_{2i+1}(E - X^{N/2i}·O),
//
// with the automorphism realised as a slot gather, its key switch
// accumulated digit-resident, and BOTH key-switch contributions deferred
// into the full-basis accumulators un-rescaled. The only rescale is of
// the gathered difference a-part feeding the digit decomposition — the
// one place the merge is nonlinear in a. E and O are consumed
// (overwritten as scratch); out may alias E but not O.
func PackTwoResident(p bfv.Params, out *PackNode, i int, E, O *PackNode, swk *rlwe.SwitchingKey, ms *MergeScratch) {
	PackTwoResidentSink(p, out, i, E, O, swk, ms, nil)
}

// PackTwoResidentSink is PackTwoResident with per-stage durations also
// routed to sink (a traced request's recorder); nil sink is exactly
// PackTwoResident.
func PackTwoResidentSink(p bfv.Params, out *PackNode, i int, E, O *PackNode, swk *rlwe.SwitchingKey, ms *MergeScratch, sink obs.StageSink) {
	hist := obs.On()
	on := hist || sink != nil
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	r := p.R
	z := r.N / (2 * i)
	k := 2*i + 1
	// One sweep computes sum and difference without materializing X^z·O
	// (the difference lands in scratch before the sum can clobber E, which
	// out may alias); the b gather then accumulates straight into the sum,
	// while the a gather materializes into O's free buffer — the operand
	// the rescale inverts next.
	r.MonomialSplitNTT(out.BT, ms.dBT, E.BT, O.BT, z)
	r.MonomialSplitNTT(out.A, ms.dA, E.A, O.A, z)
	r.AutomorphNTTAddInto(out.BT, ms.dBT, k)
	r.AutomorphNTT(O.A, ms.dA, k)
	var t1 time.Time
	if on {
		t1 = time.Now()
	}
	// φ_k(diff) decrypts under φ_k(s); the switch brings its TRUE a-part
	// ModDown(φ_k(dA)) back under s. The rescale runs in coefficient form —
	// the view the digit lifts read anyway, so its inverse transforms
	// replace (not add to) the decomposition's.
	r.INTT(O.A)
	a := O.A
	for a.Levels() > p.NormalLevels+1 {
		na := r.GetPoly(a.Levels() - 1)
		r.ModDownInto(na, a)
		if a != O.A {
			r.PutPoly(a)
		}
		a = na
	}
	r.ModDownInto(ms.aN, a)
	if a != O.A {
		r.PutPoly(a)
	}
	var t2 time.Time
	if on {
		t2 = time.Now()
	}
	// Decomposition commutes with φ_k, so the digits are built straight
	// from the gathered, rescaled a-part.
	p.DecomposeInto(ms.dec, ms.aN)
	var t3 time.Time
	if on {
		t3 = time.Now()
	}
	p.KeySwitchAccumulateNTT(out.BT, ms.c1, ms.dec, swk)
	// The switched a-part joins the accumulator un-rescaled, mirroring the
	// b-part: both deferred divisions run once per tree, at FlushInto.
	r.Add(out.A, out.A, ms.c1)
	if on {
		t4 := time.Now()
		observeStage(packSec, obs.StagePack, t1.Sub(t0), hist, sink)
		observeStage(pmdSec, obs.StagePackModDown, t2.Sub(t1), hist, sink)
		observeStage(decSec, obs.StageDecompose, t3.Sub(t2), hist, sink)
		observeStage(ksSec, obs.StageKeySwitch, t4.Sub(t3), hist, sink)
		if hist {
			mergesCnt.Inc()
		}
	}
}

// FlushInto leaves residency: out.B = ModDown(INTT(nd.BT)) and out.A =
// ModDown(INTT(nd.A)) — the whole tree's deferred divisions, once per
// part. out must be a normal-basis ciphertext; nd is consumed.
func FlushInto(p bfv.Params, out *rlwe.Ciphertext, nd *PackNode) {
	FlushIntoSink(p, out, nd, nil)
}

// FlushIntoSink is FlushInto with per-stage durations also routed to sink;
// nil sink is exactly FlushInto.
func FlushIntoSink(p bfv.Params, out *rlwe.Ciphertext, nd *PackNode, sink obs.StageSink) {
	hist := obs.On()
	on := hist || sink != nil
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	r := p.R
	r.INTT(nd.BT)
	r.INTT(nd.A)
	var t1 time.Time
	if on {
		t1 = time.Now()
	}
	flushModDown(p, out.B, nd.BT)
	flushModDown(p, out.A, nd.A)
	if on {
		t2 := time.Now()
		observeStage(inttSec, obs.StageINTT, t1.Sub(t0), hist, sink)
		observeStage(pmdSec, obs.StagePackModDown, t2.Sub(t1), hist, sink)
	}
}

// flushModDown divides one full-basis coefficient-domain accumulator down
// to the normal basis, pooling any intermediate levels. src is consumed.
func flushModDown(p bfv.Params, dst, src *ring.Poly) {
	r := p.R
	x := src
	for x.Levels() > p.NormalLevels+1 {
		next := r.GetPoly(x.Levels() - 1)
		r.ModDownInto(next, x)
		if x != src {
			r.PutPoly(x)
		}
		x = next
	}
	r.ModDownInto(dst, x)
	if x != src {
		r.PutPoly(x)
	}
}

// PackResident folds m := len(nodes) resident slot ciphertexts into
// nodes[0], which is returned still resident (FlushInto completes the
// exit). m must be a power of two covered by keys. The entries of nodes
// are consumed: every buffer is overwritten as tree scratch.
//
// Each tree level's independent merges run on min(workers, pairs)
// goroutines; the merge for pair j touches only nodes[j] and
// nodes[j+half], so the result is bit-identical for every worker count.
func PackResident(p bfv.Params, nodes []*PackNode, keys *PackingKeys, workers int) (*PackNode, error) {
	return PackResidentSink(p, nodes, keys, workers, nil)
}

// PackResidentSink is PackResident with per-stage durations also routed to
// sink (which must be safe for concurrent StageAdd calls — the parallel
// path's workers hit it simultaneously); nil sink is exactly PackResident.
func PackResidentSink(p bfv.Params, nodes []*PackNode, keys *PackingKeys, workers int, sink obs.StageSink) (*PackNode, error) {
	m := len(nodes)
	if m < 1 || m&(m-1) != 0 || m > p.R.N {
		return nil, fmt.Errorf("lwe: cannot pack %d ciphertexts (need power of two in [1,N])", m)
	}
	if keys == nil && m > 1 {
		return nil, fmt.Errorf("lwe: packing keys required for m=%d", m)
	}
	if m > 1 && keys.M < m {
		return nil, fmt.Errorf("lwe: packing keys cover m=%d < %d", keys.M, m)
	}
	count := m
	var ms *MergeScratch // serial-path arena, shared by every level
	for i := 1; i < m; i <<= 1 {
		half := count / 2
		swk := keys.Keys[2*i+1]
		if swk == nil {
			PutMergeScratch(p, ms)
			return nil, fmt.Errorf("lwe: missing packing key for k=%d", 2*i+1)
		}
		if workers > 1 && half > 1 {
			nw := workers
			if nw > half {
				nw = half
			}
			packLevelParallel(p, nodes, i, half, swk, nw, sink)
		} else {
			if ms == nil {
				ms = GetMergeScratch(p)
			}
			for j := 0; j < half; j++ {
				PackTwoResidentSink(p, nodes[j], i, nodes[j], nodes[j+half], swk, ms, sink)
			}
		}
		count = half
	}
	PutMergeScratch(p, ms)
	return nodes[0], nil
}

// packLevelParallel fans one tree level's merges across nw goroutines,
// each reusing one merge arena for every merge it claims at this level.
// It lives in its own function so the goroutine closure's captures don't
// force the caller's loop variables onto the heap on the serial path.
func packLevelParallel(p bfv.Params, nodes []*PackNode, i, half int, swk *rlwe.SwitchingKey, nw int, sink obs.StageSink) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			ms := GetMergeScratch(p)
			defer PutMergeScratch(p, ms)
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= half {
					return
				}
				PackTwoResidentSink(p, nodes[j], i, nodes[j], nodes[j+half], swk, ms, sink)
			}
		}()
	}
	wg.Wait()
}

// PackTwoInto is PackTwoLWEs writing into a caller-owned ciphertext:
// out = (ct_e + X^{N/2i}·ct_o) + φ_{2i+1}(ct_e - X^{N/2i}·ct_o).
// ctE and ctO are consumed (overwritten as scratch); out may alias ctE but
// not ctO. All temporaries are pooled. A single merge's deferred divisions
// are exact (the leaves enter as P·b and P·a), so the result is
// bit-identical to the eager per-merge ModDown schedule.
func PackTwoInto(p bfv.Params, out *rlwe.Ciphertext, i int, ctE, ctO *rlwe.Ciphertext, swk *rlwe.SwitchingKey) {
	r := p.R
	e := getPackNode(p)
	o := getPackNode(p)
	ResidentFromRLWE(p, e, ctE)
	ResidentFromRLWE(p, o, ctO)
	ms := GetMergeScratch(p)
	PackTwoResident(p, e, i, e, o, swk, ms)
	PutMergeScratch(p, ms)
	FlushInto(p, out, e)
	putPackNode(r, e)
	putPackNode(r, o)
}

// PackRLWEs packs m := len(cts) RLWE slot ciphertexts (the AsRLWE form of
// LWE extractions, normal basis, coefficient domain) into cts[0], which is
// returned. m must be a power of two covered by keys. The entries of cts
// are consumed: every buffer is overwritten as tree scratch.
//
// The tree itself runs NTT-resident with the b-part division deferred to
// one flush (see PackResident); the packed plaintext is unchanged, and
// the output noise is slightly LOWER than the eager schedule's (one
// rounding instead of one per merge level).
func PackRLWEs(p bfv.Params, cts []*rlwe.Ciphertext, keys *PackingKeys, workers int) (*rlwe.Ciphertext, error) {
	m := len(cts)
	if m == 1 {
		return cts[0], nil
	}
	r := p.R
	nodes := make([]*PackNode, m)
	ok := m >= 1 && m&(m-1) == 0 && m <= r.N
	for j := range nodes {
		nodes[j] = getPackNode(p)
		if ok {
			ResidentFromRLWE(p, nodes[j], cts[j])
		}
	}
	root, err := PackResident(p, nodes, keys, workers)
	if err == nil {
		FlushInto(p, cts[0], root)
	}
	for _, nd := range nodes {
		putPackNode(r, nd)
	}
	if err != nil {
		return nil, err
	}
	return cts[0], nil
}

// getPackNode borrows a resident node whose polynomial buffers come from
// the ring pools (contents arbitrary).
func getPackNode(p bfv.Params) *PackNode {
	return &PackNode{BT: p.R.GetPoly(p.R.Levels()), A: p.R.GetPoly(p.R.Levels())}
}

func putPackNode(r *ring.Ring, nd *PackNode) {
	r.PutPoly(nd.BT)
	r.PutPoly(nd.A)
}
