package lwe

// Allocation-free packing tree. The recursive PackLWEs of Alg. 3 is
// re-expressed iteratively: after ℓ levels the live groups sit in the
// buffer prefix, and level ℓ (group size i = 2^ℓ) merges the pairs
// (buf[j], buf[j+count/2]) — exactly the even/odd split of the recursion,
// verified term-for-term against packRec. The m/2 merges inside one level
// are independent, so they fan out across a worker pool; merges consume
// their inputs in place, so the whole tree runs in the caller's m buffers
// plus one pooled temporary per worker.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cham/internal/bfv"
	"cham/internal/obs"
	"cham/internal/rlwe"
)

// Stage telemetry: each tree merge splits into PACKTWOLWES arithmetic
// (pack), the hoisted digit decomposition of the automorphism key switch
// (decompose: centred RNS lifts + digit NTTs), and the key-dependent
// remainder of the switch (key_switch: digit·key MULTPOLY, inverse
// transforms, ModDown) — the stage families of the reduce buffer in the
// hardware pipeline.
var (
	packSec   = obs.StageHistogram(obs.StagePack)
	decSec    = obs.StageHistogram(obs.StageDecompose)
	ksSec     = obs.StageHistogram(obs.StageKeySwitch)
	mergesCnt = obs.GetCounter("cham_hmvp_pack_merges_total",
		"PACKTWOLWES tree merges (m-1 per packed tile).")
)

// ExtractAsRLWEInto fuses Extract and AsRLWE, writing the result into a
// caller-owned normal-basis ciphertext: out's plaintext holds coefficient
// idx of ct's plaintext at its constant coefficient. The mask double
// negation of the LWE round trip cancels, so out.A is just ct.A shifted by
// X^-idx (a plain copy at idx 0) and out.B is zero except for
// B_idx at its constant slot. Input must be in coefficient domain; out
// must not alias ct.
func ExtractAsRLWEInto(p bfv.Params, out, ct *rlwe.Ciphertext, idx int) {
	if ct.IsNTT() {
		panic("lwe: Extract requires coefficient domain")
	}
	n := p.R.N
	if idx < 0 || idx >= n {
		panic("lwe: coefficient index out of range")
	}
	if idx == 0 {
		out.A.CopyFrom(ct.A)
	} else {
		p.R.MulMonomial(out.A, ct.A, -idx)
	}
	for l := range out.B.Coeffs {
		row := out.B.Coeffs[l]
		for i := range row {
			row[i] = 0
		}
		// (X^-idx · b)_0 = b_idx: the only surviving B coefficient.
		row[0] = ct.B.Coeffs[l][idx]
	}
	out.B.IsNTT = false
}

// PackTwoInto is PackTwoLWEs writing into a caller-owned ciphertext:
// out = (ct_e + X^{N/2i}·ct_o) + φ_{2i+1}(ct_e - X^{N/2i}·ct_o).
// ctE and ctO are consumed (overwritten as scratch); out may alias ctE but
// not ctO. All temporaries are pooled.
func PackTwoInto(p bfv.Params, out *rlwe.Ciphertext, i int, ctE, ctO *rlwe.Ciphertext, swk *rlwe.SwitchingKey) {
	dec := p.GetDecomposition()
	PackTwoHoisted(p, out, i, ctE, ctO, swk, dec)
	p.PutDecomposition(dec)
}

// PackTwoHoisted is PackTwoInto with caller-owned hoisted key-switch
// scratch: dec (from GetDecomposition) carries the digit buffers, so a
// worker sweeping many merges reuses one cache-resident decomposition
// arena for the whole pack-tree level instead of cycling the pool per
// merge. The automorphism is applied in the coefficient domain first
// (decomposition commutes with φ_k), then the switch runs decompose →
// hoisted completion, with the two halves timed as separate stages.
func PackTwoHoisted(p bfv.Params, out *rlwe.Ciphertext, i int, ctE, ctO *rlwe.Ciphertext, swk *rlwe.SwitchingKey, dec *rlwe.Decomposition) {
	on := obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	r := p.R
	z := r.N / (2 * i)
	k := 2*i + 1
	p.MulMonomial(ctO, ctO, z) // ctO ← X^z·ctO, in place
	minus := p.GetCiphertext(ctE.Levels())
	p.Sub(minus, ctE, ctO)
	p.Add(out, ctE, ctO)
	// φ_k in the coefficient domain: minus decrypts under φ_k(s) after the
	// permutation; the switch brings it back under s.
	phiB := r.GetPoly(minus.Levels())
	phiA := r.GetPoly(minus.Levels())
	r.Automorph(phiB, minus.B, k)
	r.Automorph(phiA, minus.A, k)
	var t1 time.Time
	if on {
		t1 = time.Now()
	}
	p.DecomposeInto(dec, phiA)
	var t2 time.Time
	if on {
		t2 = time.Now()
	}
	p.KeySwitchHoistedInto(minus.B, minus.A, dec, swk)
	r.Add(minus.B, minus.B, phiB)
	r.PutPoly(phiB)
	r.PutPoly(phiA)
	var t3 time.Time
	if on {
		t3 = time.Now()
	}
	p.Add(out, out, minus)
	p.PutCiphertext(minus)
	if on {
		t4 := time.Now()
		packSec.Observe(t1.Sub(t0).Seconds() + t4.Sub(t3).Seconds())
		decSec.Observe(t2.Sub(t1).Seconds())
		ksSec.Observe(t3.Sub(t2).Seconds())
		mergesCnt.Inc()
	}
}

// PackRLWEs packs m := len(cts) RLWE slot ciphertexts (the AsRLWE form of
// LWE extractions, normal basis, coefficient domain) into cts[0], which is
// returned. m must be a power of two covered by keys. The entries of cts
// are consumed: every buffer is overwritten as tree scratch.
//
// Each tree level's independent merges run on min(workers, pairs)
// goroutines; the merge for pair j touches only cts[j] and cts[j+half], so
// the result is bit-identical for every worker count.
func PackRLWEs(p bfv.Params, cts []*rlwe.Ciphertext, keys *PackingKeys, workers int) (*rlwe.Ciphertext, error) {
	m := len(cts)
	if m < 1 || m&(m-1) != 0 || m > p.R.N {
		return nil, fmt.Errorf("lwe: cannot pack %d ciphertexts (need power of two in [1,N])", m)
	}
	if keys == nil && m > 1 {
		return nil, fmt.Errorf("lwe: packing keys required for m=%d", m)
	}
	if m > 1 && keys.M < m {
		return nil, fmt.Errorf("lwe: packing keys cover m=%d < %d", keys.M, m)
	}
	count := m
	for i := 1; i < m; i <<= 1 {
		half := count / 2
		swk := keys.Keys[2*i+1]
		if swk == nil {
			return nil, fmt.Errorf("lwe: missing packing key for k=%d", 2*i+1)
		}
		if workers > 1 && half > 1 {
			nw := workers
			if nw > half {
				nw = half
			}
			packLevelParallel(p, cts, i, half, swk, nw)
		} else {
			dec := p.GetDecomposition()
			for j := 0; j < half; j++ {
				PackTwoHoisted(p, cts[j], i, cts[j], cts[j+half], swk, dec)
			}
			p.PutDecomposition(dec)
		}
		count = half
	}
	return cts[0], nil
}

// packLevelParallel fans one tree level's merges across nw goroutines,
// each reusing one hoisted decomposition arena for every merge it claims
// at this level. It lives in its own function so the goroutine closure's
// captures don't force the caller's loop variables onto the heap on the
// serial path.
func packLevelParallel(p bfv.Params, cts []*rlwe.Ciphertext, i, half int, swk *rlwe.SwitchingKey, nw int) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			dec := p.GetDecomposition()
			defer p.PutDecomposition(dec)
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= half {
					return
				}
				PackTwoHoisted(p, cts[j], i, cts[j], cts[j+half], swk, dec)
			}
		}()
	}
	wg.Wait()
}
