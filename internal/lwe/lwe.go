// Package lwe implements the LWE side of CHAM's ciphertext conversions:
// EXTRACTLWES (Eq. 3), which pulls a single coefficient of an RLWE
// ciphertext out as an LWE ciphertext, and PACKTWOLWES / PACKLWES
// (Alg. 2 / Alg. 3, after Chen-Dai-Kim-Song), which repack up to N LWE
// ciphertexts into one RLWE ciphertext.
//
// Packing m = 2^ℓ LWE ciphertexts with values μ_i yields an RLWE ciphertext
// whose plaintext holds 2^ℓ·μ_i at coefficient i·N/m (natural order);
// positions between slots carry garbage that callers must ignore. The 2^ℓ
// factor is cancelled by folding bfv.InvPow2(ℓ) into the matrix encoding
// (see bfv.EncodeRow's scale argument).
package lwe

import (
	"fmt"
	"math/rand"

	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// Ciphertext is an LWE ciphertext in RNS form: Beta[l] is the scalar part
// modulo limb l and Alpha[l] the mask vector modulo limb l. It decrypts as
// Beta + <Alpha, s> = Δ·μ + e.
type Ciphertext struct {
	Beta  []uint64
	Alpha [][]uint64
}

// Levels returns the number of RNS limbs.
func (ct *Ciphertext) Levels() int { return len(ct.Beta) }

// Extract returns the LWE ciphertext encrypting coefficient idx of the
// RLWE ciphertext's plaintext (RLWE-TO-LWE). The input must be in
// coefficient domain. Extraction is free of noise growth.
func Extract(p bfv.Params, ct *rlwe.Ciphertext, idx int) *Ciphertext {
	if ct.IsNTT() {
		panic("lwe: Extract requires coefficient domain")
	}
	n := p.R.N
	if idx < 0 || idx >= n {
		panic("lwe: coefficient index out of range")
	}
	src := ct
	if idx != 0 {
		// Shift coefficient idx into the constant slot: multiply by X^-idx.
		shifted := &rlwe.Ciphertext{B: p.R.NewPoly(ct.Levels()), A: p.R.NewPoly(ct.Levels())}
		p.MulMonomial(shifted, ct, -idx)
		src = shifted
	}
	lv := src.Levels()
	out := &Ciphertext{Beta: make([]uint64, lv), Alpha: make([][]uint64, lv)}
	for l := 0; l < lv; l++ {
		m := p.R.Moduli[l]
		out.Beta[l] = src.B.Coeffs[l][0]
		a := src.A.Coeffs[l]
		// LWE mask: α_0 = a_0, α_j = -a_{N-j} for j >= 1, so that
		// <α, s> equals the constant coefficient of the ring product a·s.
		alpha := make([]uint64, n)
		alpha[0] = a[0]
		for j := 1; j < n; j++ {
			alpha[j] = m.Neg(a[n-j])
		}
		out.Alpha[l] = alpha
	}
	return out
}

// AsRLWE embeds the LWE ciphertext back into RLWE shape (Eq. 3's output
// as used by Alg. 2): B is the constant polynomial β and A carries the
// mask as its coefficients. The constant coefficient of the result's
// phase equals the LWE phase; other coefficients are garbage.
func (ct *Ciphertext) AsRLWE(p bfv.Params) *rlwe.Ciphertext {
	lv := ct.Levels()
	out := &rlwe.Ciphertext{B: p.R.NewPoly(lv), A: p.R.NewPoly(lv)}
	n := p.R.N
	for l := 0; l < lv; l++ {
		m := p.R.Moduli[l]
		out.B.Coeffs[l][0] = ct.Beta[l]
		a := out.A.Coeffs[l]
		// Invert the Extract transform: a_0 = α_0, a_{N-j} = -α_j.
		a[0] = ct.Alpha[l][0]
		for j := 1; j < n; j++ {
			a[n-j] = m.Neg(ct.Alpha[l][j])
		}
	}
	return out
}

// Decrypt recovers the value μ = ⌊t·(β + <α,s>)/Q⌉ mod t.
func (ct *Ciphertext) Decrypt(p bfv.Params, sk *rlwe.SecretKey) uint64 {
	pt := p.Decrypt(ct.AsRLWE(p), sk)
	return pt.Coeffs[0]
}

// PackingKeys holds the automorphism switching keys PACKLWES needs:
// Keys[k] switches φ_k(s) back to s for k = 2i+1, i = 1, 2, 4, ..., m/2.
type PackingKeys struct {
	M    int
	Keys map[int]*rlwe.SwitchingKey
}

// GenPackingKeys generates the ⌈log2 m⌉ switching keys needed to pack m
// LWE ciphertexts. m must be a power of two, 1 <= m <= N.
func GenPackingKeys(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, m int) (*PackingKeys, error) {
	if m < 1 || m&(m-1) != 0 || m > p.R.N {
		return nil, fmt.Errorf("lwe: m=%d must be a power of two in [1,N]", m)
	}
	pk := &PackingKeys{M: m, Keys: map[int]*rlwe.SwitchingKey{}}
	for i := 1; i < m; i <<= 1 {
		k := 2*i + 1
		pk.Keys[k] = p.AutomorphismKeyGen(rng, sk, k)
	}
	return pk, nil
}

// PackTwoLWEs merges two packed groups of size i into one of size 2i
// (Alg. 2): ct = (ct_e + X^{N/2i}·ct_o) + φ_{2i+1}(ct_e - X^{N/2i}·ct_o),
// with the automorphism realised homomorphically via the switching key.
func PackTwoLWEs(p bfv.Params, i int, ctE, ctO *rlwe.Ciphertext, swk *rlwe.SwitchingKey) *rlwe.Ciphertext {
	lv := ctE.Levels()
	out := &rlwe.Ciphertext{B: p.R.NewPoly(lv), A: p.R.NewPoly(lv)}
	// PackTwoInto consumes its odd operand; work on a pooled copy so this
	// non-destructive API keeps its contract.
	o := p.GetCiphertext(lv)
	o.CopyFrom(ctO)
	PackTwoInto(p, out, i, ctE, o, swk)
	p.PutCiphertext(o)
	return out
}

// PackLWEs packs the given LWE ciphertexts (Alg. 3) into a single RLWE
// ciphertext. len(cts) must be a power of two not exceeding N, and keys
// must cover that size. Element i of the result's plaintext lives at
// coefficient i·N/len(cts), scaled by len(cts) (fold bfv.InvPow2 into the
// upstream encoding to cancel it).
func PackLWEs(p bfv.Params, cts []*Ciphertext, keys *PackingKeys) (*rlwe.Ciphertext, error) {
	m := len(cts)
	if m < 1 || m&(m-1) != 0 || m > p.R.N {
		return nil, fmt.Errorf("lwe: cannot pack %d ciphertexts (need power of two in [1,N])", m)
	}
	if keys.M < m {
		return nil, fmt.Errorf("lwe: packing keys cover m=%d < %d", keys.M, m)
	}
	rl := make([]*rlwe.Ciphertext, m)
	for i, c := range cts {
		rl[i] = c.AsRLWE(p)
	}
	return PackRLWEs(p, rl, keys, 1)
}

// PackReductions returns the number of PACKTWOLWES invocations needed to
// pack m ciphertexts: m-1 (the paper's "4095 reductions to pack 4096").
func PackReductions(m int) int { return m - 1 }

// SlotStride returns the coefficient stride between packed values: N/m.
func SlotStride(n, m int) int { return n / m }

// PackCoefficients compacts chosen coefficients of one RLWE ciphertext:
// it extracts the plaintext coefficients at the given indices and repacks
// them contiguously (stride N/2^ceil(log2(len))) into a fresh ciphertext.
// This is the ciphertext-compaction use of the Alg. 2/3 machinery: after
// a convolution or dot-product batch, only the useful coefficients
// survive, at 2^ℓ scale (cancel with bfv.InvPow2 upstream, or multiply
// the result by it downstream when t is odd).
func PackCoefficients(p bfv.Params, ct *rlwe.Ciphertext, indices []int, keys *PackingKeys) (*rlwe.Ciphertext, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("lwe: no indices")
	}
	mPad := 1
	for mPad < len(indices) {
		mPad <<= 1
	}
	if mPad > p.R.N {
		return nil, fmt.Errorf("lwe: %d indices exceed N", len(indices))
	}
	cts := make([]*Ciphertext, mPad)
	for i, idx := range indices {
		cts[i] = Extract(p, ct, idx)
	}
	for i := len(indices); i < mPad; i++ {
		lv := ct.Levels()
		z := &Ciphertext{Beta: make([]uint64, lv), Alpha: make([][]uint64, lv)}
		for l := 0; l < lv; l++ {
			z.Alpha[l] = make([]uint64, p.R.N)
		}
		cts[i] = z
	}
	return PackLWEs(p, cts, keys)
}
